#!/usr/bin/env bash
# chaos-smoke.sh — rehearse a mid-sweep crash and assert byte-identical recovery.
#
# The drill, end to end:
#
#   1. Baseline: run bcp-serve undisturbed, submit a small sweep, save
#      its results.csv.
#   2. Chaos: fresh state/cache dirs, BULKTX_FAULTS slows every cell
#      down, submit the same sweep, SIGKILL the process mid-sweep.
#   3. Recovery: start a fresh process on the same dirs (no faults).
#      The journal must resurrect the job under its original id, the
#      disk cache must serve the pre-crash cells, and the recovered
#      results.csv must be byte-identical to the baseline.
#   4. Retry: a run where one cell panics twice must still succeed via
#      per-cell retries — and still match the baseline bytes.
#
# Used by CI (.github/workflows/ci.yml); run it locally before touching
# the journal, recovery, or retry code. Requires curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

for tool in curl jq; do
  command -v "$tool" >/dev/null || { echo "chaos-smoke: $tool not found" >&2; exit 1; }
done

PORT="${CHAOS_PORT:-18090}"
BASE="http://127.0.0.1:$PORT"
WORK=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

BIN="$WORK/bcp-serve"
go build -o "$BIN" ./cmd/bcp-serve

# Small but multi-cell: 2 models x 2 sender counts = 4 cells.
SWEEP='{"models":["dual","sensor"],"senders":[5,10],"bursts":[100],"runs":1,"duration_s":30}'

# start STATE_DIR CACHE_DIR [FAULT_PLAN [EXTRA_FLAGS...]]
start() {
  local state=$1 cache=$2 faults=${3:-}
  shift; shift; [ $# -gt 0 ] && shift
  BULKTX_FAULTS="$faults" "$BIN" -addr "127.0.0.1:$PORT" \
    -state-dir "$state" -cache-dir "$cache" \
    -job-workers 1 -workers 1 "$@" &
  PID=$!
  for i in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "chaos-smoke: service on :$PORT never became healthy" >&2
  return 1
}

stop() { kill -TERM "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; PID=""; }

submit_sweep() { curl -sf "$BASE/v1/sweeps" -d "$SWEEP" | jq -r .id; }

job_field() { curl -sf "$BASE/v1/jobs/$1" | jq -r "$2"; }

wait_done() {
  local id=$1 st=""
  for i in $(seq 1 300); do
    st=$(job_field "$id" .state)
    [ "$st" = done ] && return 0
    case "$st" in failed|canceled) break ;; esac
    sleep 0.2
  done
  echo "chaos-smoke: job $id never reached done (last state: $st)" >&2
  curl -s "$BASE/v1/jobs/$id" >&2 || true
  return 1
}

metric() { curl -sf "$BASE/metrics" | awk -v m="$1" '$1 == m { print $2 }'; }

echo "== phase 1: baseline (undisturbed run)"
start "$WORK/state-a" "$WORK/cache-a"
JOB=$(submit_sweep)
test -n "$JOB"
wait_done "$JOB"
curl -sf "$BASE/v1/jobs/$JOB/artifacts/results.csv" > "$WORK/baseline.csv"
head -1 "$WORK/baseline.csv" | grep -q '^model,'
stop

echo "== phase 2: chaos (stall faults, SIGKILL mid-sweep)"
start "$WORK/state-b" "$WORK/cache-b" 'cell.stall:delay=500ms'
CHAOS_JOB=$(submit_sweep)
# Content-keyed ids: the same sweep document must map to the same job
# id in every process, or recovery could not be tracked across crashes.
[ "$CHAOS_JOB" = "$JOB" ] || {
  echo "chaos-smoke: job id drifted across processes ($JOB vs $CHAOS_JOB)" >&2; exit 1; }
# Let at least one cell land in the disk cache, then crash rudely while
# the rest of the sweep is still in flight.
for i in $(seq 1 100); do
  DONE=$(job_field "$JOB" '.cells_done // 0')
  [ "${DONE:-0}" -ge 1 ] && break
  sleep 0.1
done
[ "${DONE:-0}" -ge 1 ]
STATE=$(job_field "$JOB" .state)
[ "$STATE" = running ] || {
  echo "chaos-smoke: expected to kill a running job, state=$STATE" >&2; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== phase 3: recovery (same dirs, no faults)"
start "$WORK/state-b" "$WORK/cache-b"
REC=$(metric bulktx_jobs_recovered_total)
[ "${REC:-0}" -ge 1 ] || {
  echo "chaos-smoke: journal did not recover any jobs" >&2; exit 1; }
wait_done "$JOB"
CACHED=$(metric bulktx_cells_cached_total)
[ "${CACHED:-0}" -ge 1 ] || {
  echo "chaos-smoke: recovery re-simulated every cell (disk cache unused)" >&2; exit 1; }
curl -sf "$BASE/v1/jobs/$JOB/artifacts/results.csv" > "$WORK/recovered.csv"
stop
cmp "$WORK/baseline.csv" "$WORK/recovered.csv" || {
  echo "chaos-smoke: recovered results.csv differs from the baseline" >&2; exit 1; }

echo "== phase 4: fault-injected retries (panic twice, succeed on the third attempt)"
start "$WORK/state-c" "$WORK/cache-c" 'cell.panic:count=2' -cell-attempts 3
RETRY_JOB=$(submit_sweep)
wait_done "$RETRY_JOB"
RETRIES=$(metric bulktx_cell_retries_total)
[ "${RETRIES:-0}" -ge 2 ] || {
  echo "chaos-smoke: expected >=2 cell retries, saw ${RETRIES:-0}" >&2; exit 1; }
FAILED=$(job_field "$RETRY_JOB" '.cells_failed // 0')
[ "${FAILED:-0}" -eq 0 ] || {
  echo "chaos-smoke: $FAILED cells failed despite retry budget" >&2; exit 1; }
curl -sf "$BASE/v1/jobs/$RETRY_JOB/artifacts/results.csv" > "$WORK/retried.csv"
stop
cmp "$WORK/baseline.csv" "$WORK/retried.csv" || {
  echo "chaos-smoke: retried results.csv differs from the baseline" >&2; exit 1; }

echo "chaos-smoke: OK (crash recovery and retries are byte-identical to the baseline)"
