#!/usr/bin/env bash
# loadgen-smoke.sh — drive bcp-serve with bcp-loadgen and prove the
# generator's two contracts:
#
#   1. Determinism: two invocations with the same seed against the
#      same still-running server must issue the identical request
#      schedule and produce identical deterministic counters
#      (requests, dedupe hits, 429 rejections) — compared field by
#      field, not approximately.
#   2. Regression gate: a run on a freshly started server must pass
#      -compare against the committed BENCH_SERVE.json baseline. The
#      gate needs a fresh server because repeated runs progressively
#      fill the result cache until canceled jobs finish before their
#      DELETEs (see internal/loadgen's package docs).
#
# The server shape (-queue/-job-workers/-workers) must match the
# loadgen profile; this script pins both sides to the short profile's
# shape. Used by CI (.github/workflows/ci.yml); run it locally before
# touching internal/loadgen, the service queue, or the SSE layer.
# Requires jq.
#
# Environment knobs:
#   LOADGEN_PORT         listen port (default 18110)
#   LOADGEN_SEED         schedule seed (default 1, matching the baseline)
#   LOADGEN_PROFILE      profile name (default short)
#   LOADGEN_MAX_REGRESS  gate threshold (default 0.5)
#   LOADGEN_BASELINE     baseline path for phase 2 (default
#                        BENCH_SERVE.json); set empty to skip the gate —
#                        the soak profile's schedule intentionally does
#                        not match the committed short baseline
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

command -v jq >/dev/null || { echo "loadgen-smoke: jq not found" >&2; exit 1; }

PORT="${LOADGEN_PORT:-18110}"
SEED="${LOADGEN_SEED:-1}"
PROFILE="${LOADGEN_PROFILE:-short}"
MAX_REGRESS="${LOADGEN_MAX_REGRESS:-0.5}"
BASELINE="${LOADGEN_BASELINE-BENCH_SERVE.json}"
BASE="http://127.0.0.1:$PORT"
WORK=$(mktemp -d)
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/bcp-serve" ./cmd/bcp-serve
go build -o "$WORK/bcp-loadgen" ./cmd/bcp-loadgen

start() {
  "$WORK/bcp-serve" -addr "127.0.0.1:$PORT" \
    -queue 4 -job-workers 2 -workers 2 >"$WORK/serve.log" 2>&1 &
  PID=$!
  for i in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "loadgen-smoke: bcp-serve on :$PORT never became healthy" >&2
  tail -20 "$WORK/serve.log" >&2 || true
  return 1
}

stop() { kill -TERM "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; PID=""; }

loadgen() {
  "$WORK/bcp-loadgen" -base "$BASE" -seed "$SEED" -profile "$PROFILE" "$@"
}

# clean REPORT — a run is only meaningful if the server got every
# behavior right.
clean() {
  jq -e '.counters.unexpected_errors == 0 and .counters.sse_replay_errors == 0' "$1" >/dev/null || {
    echo "loadgen-smoke: run $1 was not clean:" >&2
    jq '.errors' "$1" >&2
    return 1
  }
}

echo "== phase 1: determinism (same seed, same live server, twice)"
start
loadgen -o "$WORK/run1.json"
loadgen -o "$WORK/run2.json"
clean "$WORK/run1.json"
clean "$WORK/run2.json"
if ! diff <(jq -S .counters "$WORK/run1.json") <(jq -S .counters "$WORK/run2.json"); then
  echo "loadgen-smoke: deterministic counters diverged between identical runs" >&2
  exit 1
fi
SHA1=$(jq -r .schedule_sha256 "$WORK/run1.json")
SHA2=$(jq -r .schedule_sha256 "$WORK/run2.json")
if [ "$SHA1" != "$SHA2" ]; then
  echo "loadgen-smoke: schedule hashes diverged: $SHA1 vs $SHA2" >&2
  exit 1
fi
echo "   counters and schedule hash identical across runs ($SHA1)"
stop

if [ -n "$BASELINE" ]; then
  echo "== phase 2: regression gate against $BASELINE (fresh server)"
  start
  loadgen -compare "$BASELINE" -max-regress "$MAX_REGRESS"
  stop
else
  echo "== phase 2 skipped (LOADGEN_BASELINE is empty)"
fi

echo "loadgen-smoke: OK"
