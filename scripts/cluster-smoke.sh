#!/usr/bin/env bash
# cluster-smoke.sh — rehearse distributed sweep execution with a worker
# killed mid-run, and assert the merged results are byte-identical.
#
# The drill, end to end:
#
#   1. Baseline: run one bcp-serve undisturbed, submit a sweep, save
#      its results.csv.
#   2. Cluster: start a coordinator (short -lease-ttl) plus two worker
#      processes. Worker w1 is fault-slowed so it reliably holds leases
#      mid-batch; w2 runs clean. Submit the same sweep.
#   3. Kill: SIGKILL w1 while it holds leased cells. Its leases must
#      expire and requeue, w2 must finish the sweep, and the merged
#      results.csv must be byte-identical to the baseline.
#
# Used by CI (.github/workflows/ci.yml); run it locally before touching
# internal/cluster or the lease scheduler. Requires curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

for tool in curl jq; do
  command -v "$tool" >/dev/null || { echo "cluster-smoke: $tool not found" >&2; exit 1; }
done

COORD_PORT="${CLUSTER_PORT:-18100}"
W1_PORT=$((COORD_PORT + 1))
W2_PORT=$((COORD_PORT + 2))
BASE="http://127.0.0.1:$COORD_PORT"
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

BIN="$WORK/bcp-serve"
go build -o "$BIN" ./cmd/bcp-serve

# 2 models x 3 sender counts x 2 reps = 12 cells: enough that a killed
# worker actually holds work when it dies.
SWEEP='{"models":["dual","sensor"],"senders":[5,10,15],"bursts":[100],"runs":2,"duration_s":30}'

wait_healthy() {
  local url=$1
  for i in $(seq 1 50); do
    curl -sf "$url/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "cluster-smoke: service at $url never became healthy" >&2
  return 1
}

submit_sweep() { curl -sf "$BASE/v1/sweeps" -d "$SWEEP" | jq -r .id; }

job_field() { curl -sf "$BASE/v1/jobs/$1" | jq -r "$2"; }

wait_done() {
  local id=$1 st=""
  for i in $(seq 1 300); do
    st=$(job_field "$id" .state)
    [ "$st" = done ] && return 0
    case "$st" in failed|canceled) break ;; esac
    sleep 0.2
  done
  echo "cluster-smoke: job $id never reached done (last state: $st)" >&2
  curl -s "$BASE/v1/jobs/$id" >&2 || true
  curl -s "$BASE/v1/cluster" >&2 || true
  return 1
}

metric() { curl -sf "$BASE/metrics" | awk -v m="$1" '$1 == m { print $2 }'; }

cluster_field() { curl -sf "$BASE/v1/cluster" | jq -r "$1"; }

echo "== phase 1: baseline (single process, undisturbed)"
"$BIN" -addr "127.0.0.1:$COORD_PORT" -job-workers 1 &
BASE_PID=$!
PIDS+=("$BASE_PID")
wait_healthy "$BASE"
JOB=$(submit_sweep)
test -n "$JOB"
wait_done "$JOB"
curl -sf "$BASE/v1/jobs/$JOB/artifacts/results.csv" > "$WORK/baseline.csv"
head -1 "$WORK/baseline.csv" | grep -q '^model,'
kill -TERM "$BASE_PID"; wait "$BASE_PID" 2>/dev/null || true
PIDS=()

echo "== phase 2: coordinator + 2 workers"
"$BIN" -addr "127.0.0.1:$COORD_PORT" -lease-ttl 2s &
PIDS+=("$!")
wait_healthy "$BASE"
# w1 is the doomed worker: every cell stalls 500ms so it reliably sits
# mid-batch holding leases when we kill it. Stalls only add latency —
# results stay deterministic.
BULKTX_FAULTS='cell.stall:delay=500ms' "$BIN" -addr "127.0.0.1:$W1_PORT" \
  -worker -coordinator "$BASE" -worker-name w1 &
W1_PID=$!
PIDS+=("$W1_PID")
"$BIN" -addr "127.0.0.1:$W2_PORT" -worker -coordinator "$BASE" -worker-name w2 &
PIDS+=("$!")
wait_healthy "http://127.0.0.1:$W1_PORT"
wait_healthy "http://127.0.0.1:$W2_PORT"
for i in $(seq 1 50); do
  LIVE=$(cluster_field .live_workers)
  [ "${LIVE:-0}" -ge 2 ] && break
  sleep 0.2
done
[ "${LIVE:-0}" -ge 2 ] || {
  echo "cluster-smoke: only $LIVE of 2 workers registered" >&2; exit 1; }

CJOB=$(submit_sweep)
# Content-keyed ids: the same sweep maps to the same job id whether the
# service runs alone or coordinates a fleet.
[ "$CJOB" = "$JOB" ] || {
  echo "cluster-smoke: job id drifted between modes ($JOB vs $CJOB)" >&2; exit 1; }

echo "== phase 3: SIGKILL w1 while it holds leases"
for i in $(seq 1 100); do
  HELD=$(cluster_field '.workers[] | select(.name=="w1") | .cells_leased')
  [ "${HELD:-0}" -ge 1 ] && break
  sleep 0.1
done
[ "${HELD:-0}" -ge 1 ] || {
  echo "cluster-smoke: w1 never held a lease to lose" >&2; exit 1; }
kill -9 "$W1_PID"
wait "$W1_PID" 2>/dev/null || true

wait_done "$CJOB"
FAILED=$(job_field "$CJOB" '.cells_failed // 0')
[ "${FAILED:-0}" -eq 0 ] || {
  echo "cluster-smoke: $FAILED cells failed after the worker loss" >&2; exit 1; }
curl -sf "$BASE/v1/jobs/$CJOB/artifacts/results.csv" > "$WORK/cluster.csv"
cmp "$WORK/baseline.csv" "$WORK/cluster.csv" || {
  echo "cluster-smoke: cluster results.csv differs from the single-process baseline" >&2; exit 1; }

EXPIRED=$(metric bulktx_cluster_workers_expired_total)
[ "${EXPIRED:-0}" -ge 1 ] || {
  echo "cluster-smoke: the killed worker never expired" >&2; exit 1; }
REQUEUED=$(metric bulktx_cluster_leases_requeued_total)
[ "${REQUEUED:-0}" -ge 1 ] || {
  echo "cluster-smoke: no leases requeued after the worker loss" >&2; exit 1; }
RESULTS=$(metric bulktx_cluster_results_total)
[ "${RESULTS:-0}" -ge 12 ] || {
  echo "cluster-smoke: fleet uploaded ${RESULTS:-0} cells, want all 12" >&2; exit 1; }
LOCAL=$(metric bulktx_cluster_cells_local_total)
[ "${LOCAL:-0}" -eq 0 ] || {
  echo "cluster-smoke: $LOCAL cells leaked to the coordinator's local pool" >&2; exit 1; }

echo "cluster-smoke: OK (worker killed mid-sweep; merged results byte-identical)"
