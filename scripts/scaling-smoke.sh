#!/usr/bin/env bash
# scaling-smoke.sh — run the big-topology scaling sweep at reduced node
# counts and gate it against the committed BENCH_PR6.json curve:
#
#   1. Exact event-count equality per N: the sweep's event counts are
#      fully deterministic in (nodes, duration), so any drift from the
#      committed curve means simulation behavior changed — that belongs
#      in a fingerprint-reviewed PR, not a perf run.
#   2. Throughput gate: events/s per N may not fall more than
#      SCALING_MAX_REGRESS below the baseline. CI runners are far
#      noisier than the machine that captured the baseline, so the
#      default threshold is deliberately generous — the gate exists to
#      catch order-of-magnitude rot (an accidental O(N^2) path coming
#      back), not small wobbles.
#
# The full five-point curve including N=100k takes about a minute;
# baseline regeneration (go run ./cmd/bcp-bench -scaling) is a manual
# step done alongside the fingerprint review, never in CI. Used by CI
# (.github/workflows/ci.yml); run it locally before touching
# internal/sim's queues, internal/topo's spatial hash, or the pooled
# allocators.
#
# Environment knobs:
#   SCALING_NODES        comma-separated node counts (default 1000,5000)
#   SCALING_MAX_REGRESS  events/s gate threshold (default 0.75)
#   SCALING_BASELINE     baseline path (default BENCH_PR6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${SCALING_NODES:-1000,5000}"
MAX_REGRESS="${SCALING_MAX_REGRESS:-0.75}"
BASELINE="${SCALING_BASELINE:-BENCH_PR6.json}"

go run ./cmd/bcp-bench -scaling-compare "$BASELINE" -scaling-n "$NODES" -max-regress "$MAX_REGRESS"

echo "scaling-smoke OK (N=$NODES vs $BASELINE)"
