package topo

import (
	"math/rand"
	"testing"

	"bulktx/internal/units"
)

// spatialTestLayouts returns layouts spanning the shapes the hash must
// handle: random fields, clustered hotspots, regular grids, a line,
// all nodes co-located, and tiny N.
func spatialTestLayouts(t *testing.T, rng *rand.Rand) map[string]*Layout {
	t.Helper()
	mk := func(l *Layout, err error) *Layout {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	samePoint := make([]Position, 40)
	for i := range samePoint {
		samePoint[i] = Position{X: 17, Y: 23}
	}
	return map[string]*Layout{
		"random-small":  mk(Random(60, 200, rng)),
		"random-large":  mk(Random(600, 400, rng)),
		"clustered":     mk(Clustered(500, 7, 300, 12, rng)),
		"grid-small":    mk(Grid(36, 200)),
		"grid-large":    mk(Grid(1024, 1280)),
		"line":          mk(Line(300, 40)),
		"colocated":     NewLayout(samePoint),
		"pair":          mk(Grid(2, 100)),
		"triple":        mk(Grid(3, 100)),
		"single":        mk(Grid(1, 100)),
		"random-sparse": mk(Random(400, 100000, rng)),
	}
}

// TestSpatialHashMatchesBruteForce requires EachInRange to report
// exactly the brute-force neighbor set for every node, on every layout
// shape, across ranges including 0 (all out of range unless co-located)
// and huge (everyone in range).
func TestSpatialHashMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, l := range spatialTestLayouts(t, rng) {
		for _, r := range []units.Meters{0, 1, 40, 57.3, 500, 1e6} {
			h := NewSpatialHash(l, r)
			for i := 0; i < l.Len(); i++ {
				var got []int
				h.EachInRange(i, r, func(j int) { got = append(got, j) })
				want := l.Neighbors(i, r)
				if len(got) != len(want) {
					t.Fatalf("%s r=%v node %d: hash found %d neighbors, brute force %d",
						name, r, i, len(got), len(want))
				}
				seen := make(map[int]bool, len(got))
				for _, j := range got {
					seen[j] = true
				}
				for _, j := range want {
					if !seen[j] {
						t.Fatalf("%s r=%v node %d: hash missed neighbor %d", name, r, i, j)
					}
				}
			}
		}
	}
}

// TestAdjacencyPathsIdentical holds the hash-backed adjacency
// construction to the pairwise pass's exact output — same lists, same
// order, same aligned distances — on layouts both below and above the
// switching threshold.
func TestAdjacencyPathsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, l := range spatialTestLayouts(t, rng) {
		for _, r := range []units.Meters{0, 40, 120} {
			n := l.Len()
			// Pairwise reference, forced regardless of size.
			refNb := make([][]int, n)
			refDist := make([][]units.Meters, n)
			for i := 0; i < n; i++ {
				pi := l.positions[i]
				for j := i + 1; j < n; j++ {
					d := Distance(pi, l.positions[j])
					if d <= r {
						refNb[i] = append(refNb[i], j)
						refNb[j] = append(refNb[j], i)
						refDist[i] = append(refDist[i], d)
						refDist[j] = append(refDist[j], d)
					}
				}
			}
			hashNb, hashDist := l.hashAdjacency(r, true)
			prodNb, prodDist := l.Adjacency(r)
			for i := 0; i < n; i++ {
				assertIntRows(t, name, "hash", i, hashNb[i], refNb[i])
				assertIntRows(t, name, "prod", i, prodNb[i], refNb[i])
				assertDistRows(t, name, "hash", i, hashDist[i], refDist[i])
				assertDistRows(t, name, "prod", i, prodDist[i], refDist[i])
			}
		}
	}
}

func assertIntRows(t *testing.T, layout, path string, i int, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s/%s node %d: %d neighbors, want %d", layout, path, i, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s/%s node %d: neighbor[%d] = %d, want %d", layout, path, i, k, got[k], want[k])
		}
	}
}

func assertDistRows(t *testing.T, layout, path string, i int, got, want []units.Meters) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s/%s node %d: %d distances, want %d", layout, path, i, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s/%s node %d: dist[%d] = %v, want %v (must be bit-identical)",
				layout, path, i, k, got[k], want[k])
		}
	}
}

// TestBFSPathsAgree checks Connected and HopCounts give the same
// answers through the hash-backed iterator as through the brute-force
// scan, including on a layout big enough to take the hash path.
func TestBFSPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, l := range spatialTestLayouts(t, rng) {
		for _, r := range []units.Meters{0, 40, 200} {
			// Brute-force reference BFS.
			refHops := make([]int, l.Len())
			for i := range refHops {
				refHops[i] = -1
			}
			refHops[0] = 0
			queue := []int{0}
			count := 1
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				l.EachNeighbor(cur, r, func(nb int) {
					if refHops[nb] == -1 {
						refHops[nb] = refHops[cur] + 1
						count++
						queue = append(queue, nb)
					}
				})
			}
			if got, want := l.Connected(0, r), count == l.Len(); got != want {
				t.Fatalf("%s r=%v: Connected = %v, reference %v", name, r, got, want)
			}
			hops := l.HopCounts(0, r)
			for i := range refHops {
				if hops[i] != refHops[i] {
					t.Fatalf("%s r=%v: hops[%d] = %d, reference %d", name, r, i, hops[i], refHops[i])
				}
			}
		}
	}
}

// TestSpatialHashCellCap keeps the grid memory bounded on sparse
// layouts: a tiny range over a huge field must not materialize a cell
// per range-quantum.
func TestSpatialHashCellCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := Random(1000, 1e7, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := NewSpatialHash(l, 1)
	if cells := h.cols * h.rows; cells > 4*l.Len()+4 {
		t.Fatalf("cell cap failed: %d cells for %d nodes", cells, l.Len())
	}
}
