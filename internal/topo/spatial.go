package topo

import (
	"math"
	"sort"

	"bulktx/internal/units"
)

// spatialThreshold is the node count above which the geometry passes
// (adjacency construction, connectivity BFS) switch from the pairwise
// O(N^2) scan to the uniform-grid spatial hash. Below it the pairwise
// pass is faster in practice and serves as the reference
// implementation; the equivalence tests in spatial_test.go force both
// paths onto the same layouts and require identical output.
const spatialThreshold = 256

// SpatialHash is a uniform-grid index over a Layout's node positions:
// the bounding box is tiled with square cells and every node is binned
// by position, stored in compressed (CSR) form. Construction is O(N);
// an in-range query visits only the cells overlapping the query disk.
//
// Within a cell, node indices are stored ascending (the counting sort
// fills them in index order), but a multi-cell query yields nodes in
// cell order, not index order — callers needing globally sorted
// neighbor lists must sort the collected result.
type SpatialHash struct {
	l          *Layout
	minX, minY float64
	cell       float64 // cell edge length in meters, > 0
	cols, rows int
	start      []int32 // CSR offsets per cell, len cols*rows+1
	ids        []int32 // node indices grouped by cell, ascending within
}

// NewSpatialHash builds the index with the given cell size (typically
// the radio range, so an in-range query inspects at most a 3x3 cell
// window). Non-positive cell sizes fall back to a size derived from the
// bounding box, and the total cell count is capped near 4N by doubling
// the cell size, bounding memory on sparse layouts.
func NewSpatialHash(l *Layout, cell units.Meters) *SpatialHash {
	n := len(l.positions)
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range l.positions {
		minX = math.Min(minX, float64(p.X))
		minY = math.Min(minY, float64(p.Y))
		maxX = math.Max(maxX, float64(p.X))
		maxY = math.Max(maxY, float64(p.Y))
	}
	if n == 0 {
		minX, minY, maxX, maxY = 0, 0, 0, 0
	}
	w, h := maxX-minX, maxY-minY
	c := float64(cell)
	if c <= 0 {
		// Degenerate range (e.g. r = 0 queries): any positive cell size
		// is correct; aim for ~1 node per cell.
		c = math.Max(w, h) / math.Sqrt(float64(n)+1)
		if c <= 0 {
			c = 1
		}
	}
	// Cap the grid near 4 cells per node (the float comparison avoids
	// integer overflow on huge bounding boxes with tiny cells).
	limit := math.Max(4*float64(n), 1)
	for (w/c+1)*(h/c+1) > limit {
		c *= 2
	}
	cols := int(w/c) + 1
	rows := int(h/c) + 1

	hsh := &SpatialHash{
		l: l, minX: minX, minY: minY, cell: c, cols: cols, rows: rows,
		start: make([]int32, cols*rows+1),
		ids:   make([]int32, n),
	}
	// Counting sort into CSR form; filling in node-index order leaves
	// each cell's ids ascending.
	for _, p := range l.positions {
		hsh.start[hsh.cellOf(p)+1]++
	}
	for i := 1; i < len(hsh.start); i++ {
		hsh.start[i] += hsh.start[i-1]
	}
	fill := make([]int32, cols*rows)
	copy(fill, hsh.start[:cols*rows])
	for i, p := range l.positions {
		cIdx := hsh.cellOf(p)
		hsh.ids[fill[cIdx]] = int32(i)
		fill[cIdx]++
	}
	return hsh
}

// cellOf maps a position to its cell index, clamped to the grid (float
// rounding at the bounding-box edge must not escape it).
func (h *SpatialHash) cellOf(p Position) int {
	cx := int((float64(p.X) - h.minX) / h.cell)
	cy := int((float64(p.Y) - h.minY) / h.cell)
	cx = max(0, min(cx, h.cols-1))
	cy = max(0, min(cy, h.rows-1))
	return cy*h.cols + cx
}

// EachInRange calls fn for every node within range r of node i,
// excluding i itself, using the exact same distance comparison as
// InRange (so the reported set is identical to a brute-force scan).
// Visit order is cell-major (row by row, ascending node index within a
// cell), not globally ascending.
func (h *SpatialHash) EachInRange(i int, r units.Meters, fn func(j int)) {
	p := h.l.positions[i]
	rr := float64(r)
	cx0 := max(0, int(math.Floor((float64(p.X)-rr-h.minX)/h.cell)))
	cx1 := min(h.cols-1, int(math.Floor((float64(p.X)+rr-h.minX)/h.cell)))
	cy0 := max(0, int(math.Floor((float64(p.Y)-rr-h.minY)/h.cell)))
	cy1 := min(h.rows-1, int(math.Floor((float64(p.Y)+rr-h.minY)/h.cell)))
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * h.cols
		for cx := cx0; cx <= cx1; cx++ {
			c := row + cx
			for _, id := range h.ids[h.start[c]:h.start[c+1]] {
				j := int(id)
				if j != i && InRange(p, h.l.positions[j], r) {
					fn(j)
				}
			}
		}
	}
}

// eachNeighborFn returns the neighbor-iteration function for BFS-style
// traversals: the brute-force scan for small layouts, a freshly built
// spatial hash above the threshold. Hash-backed iteration visits
// neighbors in cell order rather than ascending index order, which BFS
// reachability and hop counts are insensitive to.
func (l *Layout) eachNeighborFn(r units.Meters) func(i int, fn func(j int)) {
	if len(l.positions) <= spatialThreshold {
		return func(i int, fn func(j int)) { l.EachNeighbor(i, r, fn) }
	}
	h := NewSpatialHash(l, r)
	return func(i int, fn func(j int)) { h.EachInRange(i, r, fn) }
}

// hashAdjacency is the spatial-hash construction of adjacency's
// output, byte-identical to the pairwise pass: per-node neighbor lists
// in ascending index order with aligned distances computed by the same
// Distance call.
func (l *Layout) hashAdjacency(r units.Meters, withDist bool) (nb [][]int, dist [][]units.Meters) {
	n := len(l.positions)
	h := NewSpatialHash(l, r)
	nb = make([][]int, n)
	if withDist {
		dist = make([][]units.Meters, n)
	}
	var scratch []int
	for i := 0; i < n; i++ {
		scratch = scratch[:0]
		h.EachInRange(i, r, func(j int) { scratch = append(scratch, j) })
		if len(scratch) == 0 {
			continue
		}
		sort.Ints(scratch)
		row := make([]int, len(scratch))
		copy(row, scratch)
		nb[i] = row
		if withDist {
			ds := make([]units.Meters, len(row))
			pi := l.positions[i]
			for k, j := range row {
				ds[k] = Distance(pi, l.positions[j])
			}
			dist[i] = ds
		}
	}
	return nb, dist
}
