package topo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bulktx/internal/units"
)

func TestDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b Position
		want float64
	}{
		{"same point", Position{0, 0}, Position{0, 0}, 0},
		{"horizontal", Position{0, 0}, Position{40, 0}, 40},
		{"vertical", Position{0, 0}, Position{0, 30}, 30},
		{"pythagorean", Position{0, 0}, Position{30, 40}, 50},
		{"negative coords", Position{-10, -10}, Position{-10, 30}, 40},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Distance(tt.a, tt.b); math.Abs(float64(got)-tt.want) > 1e-9 {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGridPaperGeometry(t *testing.T) {
	// The paper's 36-node grid over 200x200 m: 6x6 with 40 m spacing.
	l, err := Grid(36, 200)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 36 {
		t.Fatalf("Len = %d, want 36", l.Len())
	}
	if got := l.Position(0); got.X != 0 || got.Y != 0 {
		t.Errorf("corner node at %v, want origin", got)
	}
	if got := l.Position(35); math.Abs(float64(got.X)-200) > 1e-9 || math.Abs(float64(got.Y)-200) > 1e-9 {
		t.Errorf("far corner at %v, want (200,200)", got)
	}
	// Grid neighbours are exactly 40 m apart: in sensor range.
	if d := Distance(l.Position(0), l.Position(1)); math.Abs(float64(d)-40) > 1e-9 {
		t.Errorf("grid spacing = %v, want 40 m", d)
	}
	// Corner node sees its two axial neighbours plus nothing else at 40 m.
	nb := l.Neighbors(0, 40)
	if len(nb) != 2 {
		t.Errorf("corner neighbours at 40m = %v, want 2", nb)
	}
	// Interior node: four axial neighbours.
	nb = l.Neighbors(7, 40)
	if len(nb) != 4 {
		t.Errorf("interior neighbours at 40m = %v, want 4", nb)
	}
}

func TestGridConnectedAtSensorRange(t *testing.T) {
	l, err := Grid(36, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Connected(0, 40) {
		t.Error("paper grid not connected at 40 m sensor range")
	}
	if l.Connected(0, 39) {
		t.Error("grid connected below spacing — spacing wrong")
	}
}

func TestGridSingleNode(t *testing.T) {
	l, err := Grid(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Connected(0, 1) {
		t.Error("single node not connected to itself")
	}
	if p := l.Position(0); p.X != 100 || p.Y != 100 {
		t.Errorf("single node at %v, want field center (100,100)", p)
	}
}

func TestGridDegenerateSizes(t *testing.T) {
	// n = 2 and 3 must not fall through the square-grid arithmetic (which
	// would scatter them over a corner of a 2x2 frame with full-field
	// spacing): they form a mid-field row with spacing field/(n-1).
	for _, n := range []int{2, 3} {
		l, err := Grid(n, 200)
		if err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
		spacing := 200.0 / float64(n-1)
		for i := 0; i < n; i++ {
			p := l.Position(i)
			if p.Y != 100 {
				t.Errorf("Grid(%d) node %d at y=%v, want mid-field row y=100", n, i, p.Y)
			}
			if want := float64(i) * spacing; float64(p.X) != want {
				t.Errorf("Grid(%d) node %d at x=%v, want %v", n, i, p.X, want)
			}
		}
		if !l.Connected(0, units.Meters(spacing)) {
			t.Errorf("Grid(%d) not connected at its own spacing", n)
		}
	}
}

// Property: every generator keeps every node within [0, field] on both
// axes, for arbitrary sizes.
func TestLayoutsStayInFieldProperty(t *testing.T) {
	const field = units.Meters(200)
	inField := func(name string, l *Layout) {
		t.Helper()
		for i := 0; i < l.Len(); i++ {
			p := l.Position(i)
			if p.X < 0 || p.X > field || p.Y < 0 || p.Y > field {
				t.Errorf("%s node %d at %v outside [0, %v]", name, i, p, field)
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= 50; n++ {
		g, err := Grid(n, field)
		if err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
		inField(fmt.Sprintf("Grid(%d)", n), g)
		r, err := Random(n, field, rng)
		if err != nil {
			t.Fatalf("Random(%d): %v", n, err)
		}
		inField(fmt.Sprintf("Random(%d)", n), r)
		k := n/4 + 1
		c, err := Clustered(n, k, field, 30, rng)
		if err != nil {
			t.Fatalf("Clustered(%d,%d): %v", n, k, err)
		}
		inField(fmt.Sprintf("Clustered(%d,%d)", n, k), c)
	}
}

func TestClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, err := Clustered(40, 4, 200, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 40 {
		t.Fatalf("Len = %d", l.Len())
	}
	for _, tc := range []struct {
		n, k   int
		field  units.Meters
		spread units.Meters
	}{
		{0, 1, 200, 10},
		{10, 0, 200, 10},
		{10, 11, 200, 10},
		{10, 2, 0, 10},
		{10, 2, 200, -1},
	} {
		if _, err := Clustered(tc.n, tc.k, tc.field, tc.spread, rng); err == nil {
			t.Errorf("Clustered(%d,%d,%v,%v) did not error", tc.n, tc.k, tc.field, tc.spread)
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid(0, 200); err == nil {
		t.Error("Grid(0) did not error")
	}
	if _, err := Grid(10, 0); err == nil {
		t.Error("Grid with zero field did not error")
	}
}

func TestLinePaperScenario(t *testing.T) {
	// Section 2.2: source and destination 200 m apart; sensor radios (40m)
	// need 5 hops, 802.11 at 250 m reaches in one.
	l, err := Line(6, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(l.Position(0), l.Position(5)); math.Abs(float64(d)-200) > 1e-9 {
		t.Fatalf("endpoints %v apart, want 200 m", d)
	}
	hops := l.HopCounts(5, 40)
	if hops[0] != 5 {
		t.Errorf("sensor hops source->dest = %d, want 5", hops[0])
	}
	hops = l.HopCounts(5, 250)
	if hops[0] != 1 {
		t.Errorf("802.11 hops source->dest = %d, want 1", hops[0])
	}
}

func TestLineErrors(t *testing.T) {
	if _, err := Line(0, 40); err == nil {
		t.Error("Line(0) did not error")
	}
	if _, err := Line(3, -1); err == nil {
		t.Error("Line with negative spacing did not error")
	}
}

func TestRandomLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, err := Random(50, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 50 {
		t.Fatalf("Len = %d, want 50", l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		p := l.Position(i)
		if p.X < 0 || p.X > 200 || p.Y < 0 || p.Y > 200 {
			t.Errorf("node %d at %v outside field", i, p)
		}
	}
	if _, err := Random(0, 200, rng); err == nil {
		t.Error("Random(0) did not error")
	}
	if _, err := Random(5, -1, rng); err == nil {
		t.Error("Random with negative field did not error")
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := Random(30, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.Len(); i++ {
		for _, j := range l.Neighbors(i, 60) {
			found := false
			for _, k := range l.Neighbors(j, 60) {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbour relation asymmetric between %d and %d", i, j)
			}
		}
	}
}

func TestHopCountsUnreachable(t *testing.T) {
	l := NewLayout([]Position{{0, 0}, {1000, 0}})
	hops := l.HopCounts(0, 40)
	if hops[1] != -1 {
		t.Errorf("unreachable node hops = %d, want -1", hops[1])
	}
	if hops[0] != 0 {
		t.Errorf("root hops = %d, want 0", hops[0])
	}
}

func TestHopCountsBadRoot(t *testing.T) {
	l := NewLayout([]Position{{0, 0}})
	for _, root := range []int{-1, 5} {
		hops := l.HopCounts(root, 40)
		if hops[0] != -1 {
			t.Errorf("HopCounts(root=%d) = %v, want all -1", root, hops)
		}
		if l.Connected(root, 40) {
			t.Errorf("Connected(root=%d) = true", root)
		}
	}
}

func TestNewLayoutCopies(t *testing.T) {
	src := []Position{{1, 2}}
	l := NewLayout(src)
	src[0].X = 99
	if l.Position(0).X != 1 {
		t.Error("NewLayout aliases caller slice")
	}
	got := l.Positions()
	got[0].Y = 77
	if l.Position(0).Y != 2 {
		t.Error("Positions() aliases internal slice")
	}
}

// Property: hop counts respect the triangle property — every node's hop
// count is at most 1 more than some neighbour's.
func TestHopCountsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := Random(20, 100, rng)
		if err != nil {
			return false
		}
		const r = 45
		hops := l.HopCounts(0, r)
		for i, h := range hops {
			if h <= 0 {
				continue
			}
			best := math.MaxInt
			for _, nb := range l.Neighbors(i, r) {
				if hops[nb] >= 0 && hops[nb] < best {
					best = hops[nb]
				}
			}
			if best == math.MaxInt || h != best+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInRange(t *testing.T) {
	a, b := Position{0, 0}, Position{0, units.Meters(40)}
	if !InRange(a, b, 40) {
		t.Error("boundary distance not in range (should be inclusive)")
	}
	if InRange(a, b, 39.9) {
		t.Error("beyond range reported in range")
	}
}
