// Package topo provides node placement and connectivity geometry for the
// evaluation scenarios: the paper's 6x6 grid over a 200x200 m field, the
// linear source-destination layout of Section 2.2, and random layouts for
// robustness tests.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"bulktx/internal/units"
)

// Position is a node location on the deployment plane.
type Position struct {
	// X and Y are the plane coordinates in meters.
	X, Y units.Meters
}

// Distance returns the Euclidean distance between two positions.
func Distance(a, b Position) units.Meters {
	dx := float64(a.X - b.X)
	dy := float64(a.Y - b.Y)
	return units.Meters(math.Hypot(dx, dy))
}

// InRange reports whether b is within radio range r of a.
func InRange(a, b Position, r units.Meters) bool {
	return Distance(a, b) <= r
}

// Layout is an indexed set of node positions. Index 0 conventionally
// hosts the sink in the evaluation scenarios.
type Layout struct {
	positions []Position
}

// NewLayout copies the given positions into a Layout.
func NewLayout(positions []Position) *Layout {
	ps := make([]Position, len(positions))
	copy(ps, positions)
	return &Layout{positions: ps}
}

// Grid places n nodes on the smallest square grid covering a field x field
// area, row-major from the origin corner. The paper's evaluation uses
// Grid(36, 200) — a 6x6 grid with 40 m spacing, matching the sensor radio
// range so each node reaches its grid neighbours.
//
// Degenerate sizes are handled explicitly instead of falling through the
// square-grid arithmetic: a single node sits at the field center, and
// n = 2 or 3 (where ceil(sqrt(n)) = 2 would scatter the nodes over a
// corner of a 2x2 frame with full-field spacing) become a mid-field row
// with spacing field/(n-1). Every generated position lies within
// [0, field] on both axes for every n.
func Grid(n int, field units.Meters) (*Layout, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: grid size %d must be positive (want at least one node)", n)
	}
	if field <= 0 {
		return nil, fmt.Errorf("topo: field size %v must be positive", field)
	}
	ps := make([]Position, 0, n)
	switch {
	case n == 1:
		ps = append(ps, Position{X: field / 2, Y: field / 2})
	case n <= 3:
		spacing := float64(field) / float64(n-1)
		for i := 0; i < n; i++ {
			ps = append(ps, Position{
				X: units.Meters(float64(i) * spacing),
				Y: field / 2,
			})
		}
	default:
		side := int(math.Ceil(math.Sqrt(float64(n))))
		spacing := float64(field) / float64(side-1)
		for i := 0; i < n; i++ {
			row, col := i/side, i%side
			ps = append(ps, Position{
				X: units.Meters(float64(col) * spacing),
				Y: units.Meters(float64(row) * spacing),
			})
		}
	}
	return &Layout{positions: ps}, nil
}

// Line places n nodes on a straight line with the given spacing, node 0
// at the origin. Section 2.2's multi-hop feasibility study uses a linear
// topology with the source and destination 200 m apart.
func Line(n int, spacing units.Meters) (*Layout, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: line size %d must be positive", n)
	}
	if spacing < 0 {
		return nil, fmt.Errorf("topo: spacing %v must be non-negative", spacing)
	}
	ps := make([]Position, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, Position{X: units.Meters(float64(i) * float64(spacing))})
	}
	return &Layout{positions: ps}, nil
}

// Random places n nodes uniformly at random over a field x field area
// using the given source.
func Random(n int, field units.Meters, rng *rand.Rand) (*Layout, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: random size %d must be positive", n)
	}
	if field <= 0 {
		return nil, fmt.Errorf("topo: field size %v must be positive", field)
	}
	ps := make([]Position, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, Position{
			X: units.Meters(rng.Float64() * float64(field)),
			Y: units.Meters(rng.Float64() * float64(field)),
		})
	}
	return &Layout{positions: ps}, nil
}

// Clustered places n nodes in k hotspots over a field x field area:
// cluster centers fall uniformly at random, and members scatter around
// their center (round-robin assignment, node i to cluster i mod k) with
// Gaussian spread, clamped to the field. It models event-driven
// deployments where sensing density follows phenomena rather than a
// survey grid.
func Clustered(n, k int, field, spread units.Meters, rng *rand.Rand) (*Layout, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: clustered size %d must be positive", n)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("topo: cluster count %d outside [1, %d]", k, n)
	}
	if field <= 0 {
		return nil, fmt.Errorf("topo: field size %v must be positive", field)
	}
	if spread < 0 {
		return nil, fmt.Errorf("topo: cluster spread %v must be non-negative", spread)
	}
	centers := make([]Position, k)
	for i := range centers {
		centers[i] = Position{
			X: units.Meters(rng.Float64() * float64(field)),
			Y: units.Meters(rng.Float64() * float64(field)),
		}
	}
	clamp := func(v float64) units.Meters {
		return units.Meters(math.Min(math.Max(v, 0), float64(field)))
	}
	ps := make([]Position, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%k]
		ps = append(ps, Position{
			X: clamp(float64(c.X) + rng.NormFloat64()*float64(spread)),
			Y: clamp(float64(c.Y) + rng.NormFloat64()*float64(spread)),
		})
	}
	return &Layout{positions: ps}, nil
}

// Len returns the number of nodes.
func (l *Layout) Len() int { return len(l.positions) }

// Position returns node i's location.
func (l *Layout) Position(i int) Position { return l.positions[i] }

// Positions returns a copy of all positions.
func (l *Layout) Positions() []Position {
	out := make([]Position, len(l.positions))
	copy(out, l.positions)
	return out
}

// Neighbors returns the indices of all nodes within range r of node i,
// excluding i itself.
func (l *Layout) Neighbors(i int, r units.Meters) []int {
	var out []int
	l.EachNeighbor(i, r, func(j int) { out = append(out, j) })
	return out
}

// Adjacency returns, for every node, the indices of its in-range
// neighbors (excluding itself) in ascending order, together with the
// corresponding link distances. It is the shared geometry pass behind
// the routing layer's tree construction. Small layouts use a pairwise
// O(N^2) scan (each unordered pair measured once; appending j>i during
// pass i and i<j during pass j leaves every per-node list sorted
// without an explicit sort); layouts above the spatial-hash threshold
// are built from a uniform-grid index in O(N + edges) with identical
// output.
func (l *Layout) Adjacency(r units.Meters) (nb [][]int, dist [][]units.Meters) {
	return l.adjacency(r, true)
}

// AdjacencyLists is Adjacency without materializing the distance
// slices, for callers that only need connectivity.
func (l *Layout) AdjacencyLists(r units.Meters) [][]int {
	nb, _ := l.adjacency(r, false)
	return nb
}

func (l *Layout) adjacency(r units.Meters, withDist bool) (nb [][]int, dist [][]units.Meters) {
	n := len(l.positions)
	if n > spatialThreshold {
		// Large layouts go through the spatial hash: O(N) grid build plus
		// per-node window queries instead of the O(N^2) pairwise pass.
		// The output contract is identical (ascending lists, aligned
		// distances); spatial_test.go holds both paths to the same bytes.
		return l.hashAdjacency(r, withDist)
	}
	nb = make([][]int, n)
	if withDist {
		dist = make([][]units.Meters, n)
	}
	for i := 0; i < n; i++ {
		pi := l.positions[i]
		for j := i + 1; j < n; j++ {
			d := Distance(pi, l.positions[j])
			if d <= r {
				nb[i] = append(nb[i], j)
				nb[j] = append(nb[j], i)
				if withDist {
					dist[i] = append(dist[i], d)
					dist[j] = append(dist[j], d)
				}
			}
		}
	}
	return nb, dist
}

// EachNeighbor calls fn for every node within range r of node i
// (excluding i itself), in ascending index order. It is the
// allocation-free form of Neighbors for BFS-style traversals.
func (l *Layout) EachNeighbor(i int, r units.Meters, fn func(j int)) {
	pi := l.positions[i]
	for j := range l.positions {
		if j == i {
			continue
		}
		if InRange(pi, l.positions[j], r) {
			fn(j)
		}
	}
}

// Connected reports whether every node can reach node root over links of
// range r (breadth-first search).
func (l *Layout) Connected(root int, r units.Meters) bool {
	if root < 0 || root >= len(l.positions) {
		return false
	}
	each := l.eachNeighborFn(r)
	seen := make([]bool, len(l.positions))
	queue := []int{root}
	seen[root] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		each(cur, func(nb int) {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		})
	}
	return count == len(l.positions)
}

// HopCounts returns the minimum hop count from every node to root over
// links of range r; unreachable nodes get -1.
func (l *Layout) HopCounts(root int, r units.Meters) []int {
	hops := make([]int, len(l.positions))
	for i := range hops {
		hops[i] = -1
	}
	if root < 0 || root >= len(l.positions) {
		return hops
	}
	hops[root] = 0
	each := l.eachNeighborFn(r)
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		each(cur, func(nb int) {
			if hops[nb] == -1 {
				hops[nb] = hops[cur] + 1
				queue = append(queue, nb)
			}
		})
	}
	return hops
}
