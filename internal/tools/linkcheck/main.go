// Command linkcheck fails when relative markdown links are broken —
// the CI docs gate that keeps README/docs/examples cross-references
// resolving as files move.
//
// Usage:
//
//	go run ./internal/tools/linkcheck
//
// It walks every .md file under the current directory (skipping
// hidden directories, testdata and vendor), extracts inline links
// ([text](target)) and checks that each relative target — after
// stripping any #fragment — exists on disk, resolved against the
// linking file's directory. Absolute URLs (http, https, mailto) and
// pure-fragment links are ignored. Each broken link is reported as
// file:line, and any broken link makes the exit status non-zero.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links and images. The target
// group stops at whitespace or ')' so optional link titles are not
// swallowed.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	broken, err := check(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Println(b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken relative links\n", len(broken))
		os.Exit(1)
	}
}

// check walks root for markdown files and returns one "file:line:
// message" string per broken relative link.
func check(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(path), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		broken = append(broken, checkFile(path, string(data))...)
		return nil
	})
	return broken, err
}

// checkFile scans one markdown document line by line, so reports carry
// line numbers. Fenced code blocks are skipped: they hold example
// output, not navigable links.
func checkFile(path, content string) []string {
	var out []string
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			if frag := strings.IndexByte(target, '#'); frag >= 0 {
				target = target[:frag]
				if target == "" {
					continue // same-document fragment
				}
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
			}
		}
	}
	return out
}

// skipTarget reports whether a link target is out of scope: absolute
// URLs and non-file schemes.
func skipTarget(target string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, prefix) {
			return true
		}
	}
	return false
}
