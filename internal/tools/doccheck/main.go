// Command doccheck fails when exported identifiers lack doc comments —
// the CI docs gate behind the repository's godoc-complete policy.
//
// Usage:
//
//	go run ./internal/tools/doccheck ./...
//
// It walks the named packages (pattern "./..." from the module root),
// skipping test files. An exported identifier is documented if it
// carries its own doc comment or sits inside a documented
// const/var/type block. Exported fields of exported structs are
// checked too, honoring the repository's grouping idiom: one doc
// comment covers the documented field plus the line-adjacent fields
// immediately below it. Declarations inside package main are exempt
// (commands and examples export nothing), but every main package —
// each cmd/ binary, each example — must document itself through a
// package comment on at least one of its files. Each violation is
// reported as file:line, and any violation makes the exit status
// non-zero.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 && os.Args[1] != "./..." {
		root = strings.TrimSuffix(os.Args[1], "/...")
	}
	violations, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments\n", len(violations))
		os.Exit(1)
	}
}

// check parses every non-test Go file under root and returns one
// "file:line: message" string per undocumented exported identifier or
// undocumented main package.
func check(root string) ([]string, error) {
	var violations []string
	// mainDocs tracks, per main-package directory, whether any file
	// carries a package doc comment; mainFirst remembers a
	// representative file to report against.
	mainDocs := make(map[string]bool)
	mainFirst := make(map[string]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if file.Name.Name == "main" {
			// Commands and examples export nothing; their contract is a
			// package comment describing usage.
			dir := filepath.Dir(path)
			if _, seen := mainFirst[dir]; !seen {
				mainFirst[dir] = path
			}
			if file.Doc != nil {
				mainDocs[dir] = true
			}
			return nil
		}
		violations = append(violations, checkFile(fset, path, file)...)
		return nil
	})
	if err != nil {
		return violations, err
	}
	var mains []string
	for dir := range mainFirst {
		if !mainDocs[dir] {
			mains = append(mains, fmt.Sprintf("%s:1: main package %s has no package doc comment", mainFirst[dir], dir))
		}
	}
	sort.Strings(mains)
	return append(violations, mains...), nil
}

// checkFile inspects one parsed file's top-level declarations.
func checkFile(fset *token.FileSet, path string, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", path, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods count when their receiver type is exported.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			// A doc comment on the const/var/type block covers every
			// spec inside it — the repository's grouped-constant idiom.
			blockDocumented := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDocumented && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
						out = append(out, checkFields(fset, path, s.Name.Name, st)...)
					}
				case *ast.ValueSpec:
					if blockDocumented || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// checkFields inspects an exported struct's exported fields. A field
// is documented if it carries its own doc or line comment, or if it
// sits directly below a documented field with no blank line between
// them (the grouped-fields idiom: "Models, Senders and Bursts are the
// swept axes" above the first of an adjacent run).
func checkFields(fset *token.FileSet, path, typeName string, st *ast.StructType) []string {
	var out []string
	prevLine, prevCovered := -2, false
	for _, field := range st.Fields.List {
		line := fset.Position(field.Pos()).Line
		covered := field.Doc != nil || field.Comment != nil ||
			(prevCovered && line == prevLine+1)
		prevLine, prevCovered = fset.Position(field.End()).Line, covered
		if covered || len(field.Names) == 0 { // embedded fields inherit their type's docs
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			p := fset.Position(name.Pos())
			out = append(out, fmt.Sprintf("%s:%d: exported field %s.%s has no doc comment",
				path, p.Line, typeName, name.Name))
		}
	}
	return out
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
