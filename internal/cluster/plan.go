// Package cluster turns bcp-serve into a coordinator/worker fleet over
// the existing HTTP/JSON surface. A Coordinator owns the membership
// table, lease table, shard planner, steal scheduler and result merger;
// Workers are plain bcp-serve peers running the pull loop in Worker.
//
// Identity is content-based end to end: every cell travels with its
// sweep cache key (sweep.Key of the configuration), so the whole fleet
// agrees on which cells are the same simulation — a worker's disk
// cache, the coordinator's cache and the lease table all dedupe on the
// same key, and a straggler's late duplicate upload is recognized and
// dropped instead of corrupting the merge. Because the simulator is
// deterministic and sweep.MergeOutcome places results by job index, a
// sweep executed across the fleet produces an Outcome — and a
// results.csv — byte-identical to single-process execution.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Assign shard-plans cells across workers with rendezvous
// (highest-random-weight) hashing: each cell key goes to the worker
// with the highest hash of (worker, key). The plan is deterministic in
// (keys, workers) as sets — independent of slice order — and minimally
// disruptive: adding or removing one worker only moves the cells that
// worker wins or held, never reshuffles the rest. Ties break toward
// the lexically smallest worker id. The plan is advisory: pass-1 of
// the lease scheduler prefers it, but stealing overrides it whenever a
// planned worker lags.
func Assign(keys []string, workers []string) map[string]string {
	plan := make(map[string]string, len(keys))
	if len(workers) == 0 {
		return plan
	}
	sorted := append([]string(nil), workers...)
	sort.Strings(sorted)
	for _, key := range keys {
		var (
			best     string
			bestRank uint64
			have     bool
		)
		for _, w := range sorted {
			h := fnv.New64a()
			h.Write([]byte(w))
			h.Write([]byte{0})
			h.Write([]byte(key))
			rank := mix64(h.Sum64())
			if !have || rank > bestRank {
				best, bestRank, have = w, rank, true
			}
		}
		plan[key] = best
	}
	return plan
}

// mix64 is splitmix64's finalizer: a full-avalanche bijection over the
// FNV sum. FNV-1a alone mixes trailing bytes weakly — without this,
// the worker prefix dominates the ordering and one worker wins nearly
// every key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
