package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

// Timing defaults. The lease TTL doubles as the liveness window: a
// worker silent for longer is expired and its leased cells requeued.
// StealAfter bounds straggler damage: a cell leased for longer may be
// duplicated onto an idle worker, first result wins (determinism makes
// both results identical, so the race is benign).
const (
	DefaultLeaseTTL   = 10 * time.Second
	DefaultStealAfter = 5 * time.Second
	DefaultLeaseCells = 4
)

// localWorker is the lease-table sentinel for cells the coordinator
// claimed for its own pool when the fleet went dark. It is not a
// registered worker, so the reaper never expires it; straggler
// duplication still applies, letting a rejoining worker take over.
const localWorker = "(local)"

// cell lease states.
const (
	cellPending = iota // waiting for a worker (or the local fallback)
	cellLeased         // handed to leasedTo, liveness-monitored
	cellDone           // resolved; res/err are final
)

// Options configures a Coordinator. The zero value is usable with
// defaults; Pool should be the serving pool so fleet results land in
// the shared cache and the local fallback reuses its concurrency.
type Options struct {
	// LeaseTTL is the worker liveness window (DefaultLeaseTTL if zero).
	LeaseTTL time.Duration
	// StealAfter is the straggler-duplication threshold
	// (DefaultStealAfter if zero; negative disables duplication).
	StealAfter time.Duration
	// LeaseCells caps the cells handed out per lease call
	// (DefaultLeaseCells if zero).
	LeaseCells int
	// Pool executes the local fallback and holds the shared cache.
	Pool *sweep.Pool
	// Log receives membership and lease-table events.
	Log *slog.Logger
}

// Counters is a snapshot of the coordinator's monotonic event counts,
// the source of the bulktx_cluster_* metrics.
type Counters struct {
	Registered int64 // workers registered
	Expired    int64 // workers expired after a lapsed liveness window
	Dispatched int64 // cell leases handed out (including steals)
	Stolen     int64 // leases that took another worker's planned or overdue cell
	Requeued   int64 // leased cells returned to pending after their worker expired
	Results    int64 // cell results accepted from workers
	Duplicates int64 // uploads for cells already resolved (dropped)
	LocalCells int64 // cells the coordinator ran on its own pool (no live workers)
}

type counters struct {
	registered, expired, dispatched, stolen atomic.Int64
	requeued, results, duplicates, local    atomic.Int64
}

// workerState is one membership-table row.
type workerState struct {
	id          string
	name        string
	seq         int
	lastSeen    time.Time
	cellsDone   int64
	cellsStolen int64
}

// cell is one unique configuration of a dispatched sweep. indices
// lists every job-list position carrying this configuration, primary
// first; aliases are fanned out at emit time exactly like the local
// pool does.
type cell struct {
	key     string
	cfg     netsim.Config
	indices []int

	state    int
	planned  string // shard plan hint; advisory, stealing overrides it
	leasedTo string
	leasedAt time.Time

	res      netsim.Result
	err      error
	attempts int
	worker   string
	dur      time.Duration
	cached   bool
}

// dispatch is one sweep in flight across the fleet.
type dispatch struct {
	jobs      []sweep.Job
	cells     []*cell // unique configurations, first-appearance order
	byKey     map[string]*cell
	remaining int        // cells not yet done (guarded by Coordinator.mu)
	resolved  chan *cell // buffered len(cells): never blocks a resolver
}

// Coordinator owns the fleet: membership, the lease table, the shard
// plan, the steal scheduler and the result merger. All methods are
// safe for concurrent use. It degrades gracefully to a single node —
// with no live workers, dispatched cells run on the local pool — so a
// coordinator is always at least as capable as a plain bcp-serve.
type Coordinator struct {
	leaseTTL   time.Duration
	stealAfter time.Duration
	leaseCells int
	pool       *sweep.Pool
	log        *slog.Logger

	counters counters
	cellHist *telemetry.HistogramVec // per-worker cell simulation seconds

	mu         sync.Mutex
	seq        int
	workers    map[string]*workerState
	dispatches []*dispatch
}

// New builds a Coordinator from o, applying defaults for zero fields.
func New(o Options) *Coordinator {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.StealAfter == 0 {
		o.StealAfter = DefaultStealAfter
	}
	if o.LeaseCells <= 0 {
		o.LeaseCells = DefaultLeaseCells
	}
	if o.Pool == nil {
		o.Pool = &sweep.Pool{}
	}
	if o.Log == nil {
		o.Log = slog.New(slog.DiscardHandler)
	}
	return &Coordinator{
		leaseTTL:   o.LeaseTTL,
		stealAfter: o.StealAfter,
		leaseCells: o.LeaseCells,
		pool:       o.Pool,
		log:        o.Log,
		cellHist:   telemetry.NewHistogramVec("worker", telemetry.ExpBuckets(0.001, 2, 15)),
		workers:    make(map[string]*workerState),
	}
}

// Register admits a worker and assigns its identity.
func (c *Coordinator) Register(name string) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	c.workers[id] = &workerState{id: id, name: name, seq: c.seq, lastSeen: time.Now()}
	c.counters.registered.Add(1)
	c.log.Info("cluster: worker registered", "worker", id, "name", name)
	return RegisterResponse{
		WorkerID:  id,
		LeaseTTLS: c.leaseTTL.Seconds(),
		PollS:     (c.leaseTTL / 5).Seconds(),
	}
}

// Heartbeat refreshes a worker's liveness window.
func (c *Coordinator) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	return nil
}

// LiveWorkers counts workers inside their liveness window.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveCountLocked(time.Now())
}

func (c *Coordinator) liveLocked(id string, now time.Time) bool {
	w := c.workers[id]
	return w != nil && now.Sub(w.lastSeen) <= c.leaseTTL
}

func (c *Coordinator) liveCountLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.leaseTTL {
			n++
		}
	}
	return n
}

func (c *Coordinator) liveIDsLocked(now time.Time) []string {
	var ids []string
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.leaseTTL {
			ids = append(ids, id)
		}
	}
	return ids
}

// reapLocked expires workers whose liveness window lapsed and requeues
// their leased cells so another worker (or the local fallback) picks
// them up. Reaping is lazy — it runs on lease calls and dispatch
// pulses — so an idle coordinator spends nothing on it.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.leaseTTL {
			continue
		}
		delete(c.workers, id)
		c.counters.expired.Add(1)
		requeued := 0
		for _, d := range c.dispatches {
			for _, cl := range d.cells {
				if cl.state == cellLeased && cl.leasedTo == id {
					cl.state = cellPending
					cl.leasedTo = ""
					cl.planned = "" // open to any worker now
					requeued++
				}
			}
		}
		if requeued > 0 {
			c.counters.requeued.Add(int64(requeued))
		}
		c.log.Warn("cluster: worker expired", "worker", id, "name", w.name, "requeued", requeued)
	}
}

// Lease hands the calling worker a batch of cells. Selection runs in
// three passes: (1) pending cells planned for this worker, unplanned,
// or planned for a worker that is gone; (2) work stealing — pending
// cells planned for other live workers, when pass 1 found nothing;
// (3) straggler duplication — cells leased elsewhere for longer than
// StealAfter, re-leased to the caller (first upload wins). The call
// also counts as a heartbeat.
func (c *Coordinator) Lease(workerID string, max int) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return LeaseResponse{}, ErrUnknownWorker
	}
	now := time.Now()
	w.lastSeen = now
	c.reapLocked(now)
	if max <= 0 || max > c.leaseCells {
		max = c.leaseCells
	}

	var cells []LeasedCell
	lease := func(cl *cell, stolen bool) {
		cl.state = cellLeased
		cl.leasedTo = workerID
		cl.leasedAt = now
		cells = append(cells, LeasedCell{Key: cl.key, Config: cl.cfg, Stolen: stolen})
		c.counters.dispatched.Add(1)
		if stolen {
			c.counters.stolen.Add(1)
			w.cellsStolen++
		}
	}

	// Pass 1: the worker's own share of the plan.
	for _, d := range c.dispatches {
		for _, cl := range d.cells {
			if len(cells) >= max {
				break
			}
			if cl.state != cellPending {
				continue
			}
			if cl.planned == "" || cl.planned == workerID || !c.liveLocked(cl.planned, now) {
				lease(cl, false)
			}
		}
	}
	// Pass 2: steal pending work planned for other (live) workers.
	if len(cells) == 0 {
		for _, d := range c.dispatches {
			for _, cl := range d.cells {
				if len(cells) >= max {
					break
				}
				if cl.state == cellPending {
					lease(cl, true)
				}
			}
		}
	}
	// Pass 3: duplicate a straggler's overdue lease.
	if len(cells) == 0 && c.stealAfter > 0 {
		for _, d := range c.dispatches {
			for _, cl := range d.cells {
				if len(cells) >= max {
					break
				}
				if cl.state == cellLeased && cl.leasedTo != workerID && now.Sub(cl.leasedAt) > c.stealAfter {
					lease(cl, true)
					c.log.Info("cluster: straggler cell duplicated", "cell", cl.key[:16], "worker", workerID)
				}
			}
		}
	}

	wait := 1.0
	if len(c.dispatches) > 0 {
		wait = 0.2
	}
	return LeaseResponse{Cells: cells, WaitS: wait}, nil
}

// resolveLocked finalizes one cell; the caller holds c.mu and must
// push cl onto d.resolved after unlocking (the channel is buffered to
// the cell count, so the push never blocks). It reports false when the
// cell was already done — a duplicate from a straggler race.
func (c *Coordinator) resolveLocked(d *dispatch, cl *cell, res netsim.Result, err error, attempts int, worker string, dur time.Duration, cached bool) bool {
	if cl.state == cellDone {
		return false
	}
	cl.state = cellDone
	cl.res, cl.err = res, err
	cl.attempts, cl.worker, cl.dur, cl.cached = attempts, worker, dur, cached
	d.remaining--
	return true
}

// resolve is resolveLocked plus locking and the channel push, for
// resolvers that handle one cell at a time (the local fallback).
func (c *Coordinator) resolve(d *dispatch, cl *cell, res netsim.Result, err error, attempts int, worker string, dur time.Duration, cached bool) {
	c.mu.Lock()
	ok := c.resolveLocked(d, cl, res, err, attempts, worker, dur, cached)
	c.mu.Unlock()
	if ok {
		d.resolved <- cl
	}
}

// Complete accepts a worker's executed batch. Results are matched by
// content key against every active dispatch, so an upload outlives the
// particular lease that produced it (a coordinator restart resubmits
// the journaled job; in-flight workers then complete the new dispatch
// without re-registering their old leases). Successful results are
// written through to the shared cache. The call counts as a heartbeat.
func (c *Coordinator) Complete(workerID string, results []CellResult) (CompleteResponse, error) {
	c.mu.Lock()
	w := c.workers[workerID]
	if w == nil {
		c.mu.Unlock()
		return CompleteResponse{}, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	var resp CompleteResponse
	var done []struct {
		d  *dispatch
		cl *cell
	}
	for _, r := range results {
		matched := false
		var cellErr error
		if r.Error != "" {
			// Preserve the worker pool's error text verbatim so a
			// merged Outcome reads like a local one.
			cellErr = errors.New(r.Error)
		}
		var res netsim.Result
		if r.Result != nil {
			res = *r.Result
		}
		for _, d := range c.dispatches {
			cl := d.byKey[r.Key]
			if cl == nil {
				continue
			}
			if c.resolveLocked(d, cl, res, cellErr, r.Attempts, workerID, time.Duration(r.DurationS*float64(time.Second)), false) {
				matched = true
				done = append(done, struct {
					d  *dispatch
					cl *cell
				}{d, cl})
			}
		}
		if matched {
			w.cellsDone++
			resp.Accepted++
			c.counters.results.Add(1)
		} else {
			resp.Duplicate++
			c.counters.duplicates.Add(1)
		}
	}
	c.mu.Unlock()

	for _, e := range done {
		e.d.resolved <- e.cl
	}
	hist := c.cellHist.With(workerID)
	for _, r := range results {
		if r.Error == "" && r.Result != nil {
			// Cache write failures are non-fatal exactly as in the
			// local pool: the result is already merged in memory.
			_ = c.pool.Cache.Put(r.Key, *r.Result)
		}
		hist.Observe(r.DurationS)
	}
	return resp, nil
}

// RunJobs executes a compiled job list across the fleet and merges the
// partial outcomes into an Outcome indistinguishable from local pool
// execution: per-cell JobUpdates with strictly incrementing Done,
// cache hits and intra-sweep duplicates marked Cached, quarantined
// cells on Outcome.Errors, Results index-aligned with jobs — so the
// exported results.csv is byte-identical to a single-process run.
func (c *Coordinator) RunJobs(ctx context.Context, jobs []sweep.Job, onJob func(sweep.JobUpdate)) (*sweep.Outcome, error) {
	keys, err := sweep.JobKeys(jobs)
	if err != nil {
		return nil, err
	}

	// Collapse the job list to unique cells; later indices with the
	// same key become aliases resolved by the primary's result.
	d := &dispatch{jobs: jobs, byKey: make(map[string]*cell)}
	for i, key := range keys {
		cl := d.byKey[key]
		if cl == nil {
			cl = &cell{key: key, cfg: jobs[i].Config, state: cellPending}
			d.byKey[key] = cl
			d.cells = append(d.cells, cl)
		}
		cl.indices = append(cl.indices, i)
	}
	// Pre-resolve cache hits: cells the fleet already computed (this
	// sweep's shard plan only covers the misses).
	for _, cl := range d.cells {
		if res, ok := c.pool.Cache.Get(cl.key); ok {
			cl.state = cellDone
			cl.res = res
			cl.cached = true
		} else {
			d.remaining++
		}
	}
	d.resolved = make(chan *cell, len(d.cells))

	// Progress bookkeeping, all in this goroutine: emit fans a
	// resolved cell out to its job indices, primary first, with the
	// same Cached/Attempts semantics as the local pool.
	total := len(jobs)
	emitted := 0
	outcomes := make([]sweep.CellOutcome, 0, total)
	emit := func(cl *cell) {
		for n, idx := range cl.indices {
			co := sweep.CellOutcome{Index: idx}
			u := sweep.JobUpdate{Index: idx, Point: jobs[idx].Point, Rep: jobs[idx].Rep, Worker: cl.worker}
			switch {
			case cl.err != nil:
				co.Err, co.Attempts = cl.err, cl.attempts
				u.Err, u.Attempts = cl.err, cl.attempts
			case n == 0:
				co.Result, co.Cached, co.Attempts, co.Duration = cl.res, cl.cached, cl.attempts, cl.dur
				u.Cached, u.Attempts, u.Duration = cl.cached, cl.attempts, cl.dur
			default:
				co.Result, co.Cached = cl.res, true
				u.Cached = true
				u.Worker = ""
			}
			emitted++
			u.Done, u.Total = emitted, total
			outcomes = append(outcomes, co)
			if onJob != nil {
				onJob(u)
			}
		}
	}

	if d.remaining > 0 {
		c.mu.Lock()
		now := time.Now()
		c.reapLocked(now)
		var pend []string
		for _, cl := range d.cells {
			if cl.state == cellPending {
				pend = append(pend, cl.key)
			}
		}
		plan := Assign(pend, c.liveIDsLocked(now))
		for _, cl := range d.cells {
			if cl.state == cellPending {
				cl.planned = plan[cl.key]
			}
		}
		c.dispatches = append(c.dispatches, d)
		c.mu.Unlock()
		defer c.removeDispatch(d)
	}

	for _, cl := range d.cells {
		if cl.state == cellDone {
			emit(cl)
		}
	}
	if emitted == total {
		return sweep.MergeOutcome(jobs, outcomes)
	}

	// Drive the dispatch: emit cells as the fleet resolves them, and
	// pulse periodically to reap dead workers and fall back to the
	// local pool when nobody is left to lease.
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	c.pulse(ctx, d)
	for {
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case cl := <-d.resolved:
			emit(cl)
			if emitted == total {
				return sweep.MergeOutcome(jobs, outcomes)
			}
		case <-ticker.C:
			c.pulse(ctx, d)
		}
	}
}

func (c *Coordinator) removeDispatch(d *dispatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.dispatches {
		if e == d {
			c.dispatches = append(c.dispatches[:i], c.dispatches[i+1:]...)
			return
		}
	}
}

// pulse reaps lapsed workers and, when no live worker remains, claims
// the dispatch's pending cells for the local pool so a sweep never
// hangs on an empty fleet. Locally claimed cells stay in the lease
// table under the localWorker sentinel: a worker that (re)joins can
// still duplicate them through the straggler pass.
func (c *Coordinator) pulse(ctx context.Context, d *dispatch) {
	c.mu.Lock()
	now := time.Now()
	c.reapLocked(now)
	if c.liveCountLocked(now) > 0 {
		c.mu.Unlock()
		return
	}
	var claim []*cell
	for _, cl := range d.cells {
		if cl.state == cellPending {
			cl.state = cellLeased
			cl.leasedTo = localWorker
			cl.leasedAt = now
			claim = append(claim, cl)
		}
	}
	c.mu.Unlock()
	if len(claim) == 0 {
		return
	}
	c.counters.local.Add(int64(len(claim)))
	c.log.Info("cluster: no live workers, running cells on local pool", "cells", len(claim))
	go c.runLocal(ctx, d, claim)
}

// runLocal executes locally claimed cells on the coordinator's own
// pool, resolving each as it lands (successes are read back through
// the shared cache the pool just wrote).
func (c *Coordinator) runLocal(ctx context.Context, d *dispatch, claim []*cell) {
	jobs := make([]sweep.Job, len(claim))
	for i, cl := range claim {
		jobs[i] = d.jobs[cl.indices[0]]
	}
	out, err := c.pool.RunJobsProgressContext(ctx, jobs, func(u sweep.JobUpdate) {
		cl := claim[u.Index]
		if u.Err != nil {
			c.resolve(d, cl, netsim.Result{}, u.Err, u.Attempts, "", 0, false)
			return
		}
		if res, ok := c.pool.Cache.Get(cl.key); ok {
			c.resolve(d, cl, res, nil, u.Attempts, "", u.Duration, u.Cached)
		}
	})
	if err != nil {
		return // ctx ended; RunJobs unwinds through its own ctx select
	}
	// Sweep up anything the incremental path missed (cache-less pools
	// cannot read results back per update); resolve is idempotent.
	failed := make(map[int]sweep.CellError, len(out.Errors))
	for _, ce := range out.Errors {
		failed[ce.Index] = ce
	}
	for i, cl := range claim {
		if ce, bad := failed[i]; bad {
			c.resolve(d, cl, netsim.Result{}, ce.Err, ce.Attempts, "", 0, false)
			continue
		}
		c.resolve(d, cl, out.Results[i], nil, 1, "", 0, false)
	}
}

// Status snapshots the fleet for GET /v1/cluster.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	leasedBy := make(map[string]int)
	st := Status{ActiveJobs: len(c.dispatches)}
	for _, d := range c.dispatches {
		for _, cl := range d.cells {
			switch cl.state {
			case cellPending:
				st.CellsPending++
			case cellLeased:
				st.CellsLeased++
				leasedBy[cl.leasedTo]++
			}
		}
	}
	rows := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		rows = append(rows, w)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].seq < rows[b].seq })
	st.Workers = make([]WorkerStatus, 0, len(rows))
	for _, w := range rows {
		live := now.Sub(w.lastSeen) <= c.leaseTTL
		if live {
			st.LiveWorkers++
		}
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Live: live,
			LastSeenS:   now.Sub(w.lastSeen).Seconds(),
			CellsDone:   w.cellsDone,
			CellsStolen: w.cellsStolen,
			CellsLeased: leasedBy[w.id],
		})
	}
	return st
}

// Counters snapshots the monotonic event counts.
func (c *Coordinator) Counters() Counters {
	return Counters{
		Registered: c.counters.registered.Load(),
		Expired:    c.counters.expired.Load(),
		Dispatched: c.counters.dispatched.Load(),
		Stolen:     c.counters.stolen.Load(),
		Requeued:   c.counters.requeued.Load(),
		Results:    c.counters.results.Load(),
		Duplicates: c.counters.duplicates.Load(),
		LocalCells: c.counters.local.Load(),
	}
}

// CellHist exposes the per-worker cell simulation latency histogram
// (bulktx_cluster_cell_seconds) for the metrics endpoint.
func (c *Coordinator) CellHist() *telemetry.HistogramVec {
	return c.cellHist
}
