package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"bulktx/internal/sweep"
)

// Worker is the pull loop a bcp-serve peer runs against a coordinator
// (the -worker -coordinator=<url> mode): register, lease a batch of
// cells, simulate them on the local pool (with its own disk cache and
// retry budget), upload the results, repeat. A heartbeat goroutine
// keeps the lease alive while a batch simulates; a 404 from any call
// means the coordinator forgot us (restart, expiry) and triggers
// re-registration — the rejoin path needs no operator action.
type Worker struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name is the advertised worker name (informational).
	Name string
	// Pool executes leased cells; its cache and retry policy apply.
	Pool *sweep.Pool
	// Client is the HTTP client (http.DefaultClient if nil).
	Client *http.Client
	// Log receives lifecycle events (discarded if nil).
	Log *slog.Logger
	// HeartbeatEvery is the in-batch heartbeat interval (2s if zero).
	HeartbeatEvery time.Duration
	// MaxCells caps the cells requested per lease (coordinator's
	// default if zero).
	MaxCells int
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.New(slog.DiscardHandler)
}

func (w *Worker) heartbeatEvery() time.Duration {
	if w.HeartbeatEvery > 0 {
		return w.HeartbeatEvery
	}
	return 2 * time.Second
}

// post sends one JSON request to the coordinator, decoding the reply
// into out when non-nil. A 404 maps to ErrUnknownWorker (the caller
// re-registers); other non-2xx statuses are plain errors.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		enc, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(w.Coordinator, "/")+path, body)
	if err != nil {
		return fmt.Errorf("cluster: building %s request: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("cluster: decoding %s response: %w", path, err)
		}
	}
	return nil
}

// register announces the worker, retrying with capped backoff until
// the coordinator answers or ctx ends — a worker may legitimately
// start before its coordinator does.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	backoff := 500 * time.Millisecond
	for {
		var reg RegisterResponse
		err := w.post(ctx, "/v1/cluster/workers", RegisterRequest{Name: w.Name}, &reg)
		if err == nil {
			w.log().Info("cluster: registered with coordinator",
				"coordinator", w.Coordinator, "worker", reg.WorkerID)
			return reg, nil
		}
		if ctx.Err() != nil {
			return RegisterResponse{}, context.Cause(ctx)
		}
		w.log().Warn("cluster: registration failed, retrying", "error", err, "backoff", backoff)
		if !sleepCtx(ctx, backoff) {
			return RegisterResponse{}, context.Cause(ctx)
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// Run drives the worker until ctx ends. The only non-nil return is
// ctx's cause: every transient failure — coordinator down, lease or
// upload errors, expiry — is retried or re-registered through.
func (w *Worker) Run(ctx context.Context) error {
	reg, err := w.register(ctx)
	if err != nil {
		return err
	}
	idle := time.Duration(reg.PollS * float64(time.Second))
	if idle <= 0 {
		idle = time.Second
	}
	for {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		var lease LeaseResponse
		err := w.post(ctx, "/v1/cluster/lease", LeaseRequest{WorkerID: reg.WorkerID, MaxCells: w.MaxCells}, &lease)
		switch {
		case err == ErrUnknownWorker:
			// Coordinator restarted or expired us; rejoin.
			if reg, err = w.register(ctx); err != nil {
				return err
			}
			continue
		case err != nil:
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			w.log().Warn("cluster: lease failed", "error", err)
			if !sleepCtx(ctx, idle) {
				return context.Cause(ctx)
			}
			continue
		}
		if len(lease.Cells) == 0 {
			wait := time.Duration(lease.WaitS * float64(time.Second))
			if wait <= 0 {
				wait = idle
			}
			if !sleepCtx(ctx, wait) {
				return context.Cause(ctx)
			}
			continue
		}

		results, err := w.execute(ctx, reg.WorkerID, lease.Cells)
		if err != nil {
			return err // ctx ended mid-batch; leases expire and requeue
		}
		if err := w.upload(ctx, &reg, results); err != nil {
			return err
		}
	}
}

// execute simulates one leased batch on the local pool, heartbeating
// concurrently so long cells do not expire the lease.
func (w *Worker) execute(ctx context.Context, workerID string, cells []LeasedCell) ([]CellResult, error) {
	jobs := make([]sweep.Job, len(cells))
	for i, lc := range cells {
		jobs[i] = sweep.Job{Config: lc.Config}
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		for sleepCtx(hbCtx, w.heartbeatEvery()) {
			// Heartbeat errors (including 404) are deliberately not
			// fatal here: the next lease call handles re-registration.
			_ = w.post(hbCtx, "/v1/cluster/workers/"+workerID+"/heartbeat", nil, nil)
		}
	}()

	results := make([]CellResult, len(cells))
	for i := range results {
		results[i].Key = cells[i].Key
	}
	out, err := w.Pool.RunJobsProgressContext(ctx, jobs, func(u sweep.JobUpdate) {
		r := &results[u.Index]
		r.Attempts = u.Attempts
		r.DurationS = u.Duration.Seconds()
		if u.Err != nil {
			r.Error = u.Err.Error()
		}
	})
	if err != nil {
		return nil, context.Cause(ctx)
	}
	for i := range results {
		if results[i].Error == "" {
			res := out.Results[i]
			results[i].Result = &res
		}
	}
	return results, nil
}

// upload delivers a batch's results, retrying transient failures and
// re-registering on 404 so results computed across a coordinator
// restart are never dropped (they match the resubmitted job by key).
func (w *Worker) upload(ctx context.Context, reg *RegisterResponse, results []CellResult) error {
	backoff := 250 * time.Millisecond
	for {
		var ack CompleteResponse
		err := w.post(ctx, "/v1/cluster/results", CompleteRequest{WorkerID: reg.WorkerID, Results: results}, &ack)
		if err == nil {
			w.log().Debug("cluster: results uploaded",
				"accepted", ack.Accepted, "duplicate", ack.Duplicate)
			return nil
		}
		if err == ErrUnknownWorker {
			nreg, rerr := w.register(ctx)
			if rerr != nil {
				return rerr
			}
			*reg = nreg
			continue
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		w.log().Warn("cluster: result upload failed, retrying", "error", err, "backoff", backoff)
		if !sleepCtx(ctx, backoff) {
			return context.Cause(ctx)
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// sleepCtx sleeps for d or until ctx ends, reporting whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
