package cluster

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/sweep"
)

// fabJobs builds n jobs with distinct configurations. The configs are
// never simulated in the tests that use them — workers fabricate the
// results — so only key distinctness matters.
func fabJobs(n int) []sweep.Job {
	jobs := make([]sweep.Job, n)
	for i := range jobs {
		jobs[i] = sweep.Job{Rep: i, Config: netsim.Config{Seed: int64(i + 1)}}
	}
	return jobs
}

// drain leases cells as workerID and completes them with fabricated
// results until the dispatch goroutine signals done, failing the test
// on the deadline instead of hanging.
func drain(t *testing.T, c *Coordinator, workerID string, done <-chan struct{}) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-done:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatch did not complete in time")
		}
		lease, err := c.Lease(workerID, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(lease.Cells) == 0 {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		results := make([]CellResult, len(lease.Cells))
		for i, lc := range lease.Cells {
			results[i] = CellResult{Key: lc.Key, Result: &netsim.Result{}, Attempts: 1, DurationS: 0.001}
		}
		if _, err := c.Complete(workerID, results); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCoordinatorWorkStealing: a deliberately slow worker registers
// but never leases; the fast worker drains its own share of the plan,
// then pass 2 of the lease scheduler steals the slow worker's planned
// cells, so the sweep completes without waiting on the straggler.
func TestCoordinatorWorkStealing(t *testing.T) {
	c := New(Options{Pool: &sweep.Pool{Cache: sweep.NewCache()}, LeaseCells: 100})
	c.Register("slow") // never leases: the deliberate straggler
	fast := c.Register("fast")

	jobs := fabJobs(10)
	var (
		mu       sync.Mutex
		byWorker = map[string]int{}
		outcome  *sweep.Outcome
		runErr   error
		done     = make(chan struct{})
	)
	go func() {
		defer close(done)
		outcome, runErr = c.RunJobs(context.Background(), jobs, func(u sweep.JobUpdate) {
			mu.Lock()
			byWorker[u.Worker]++
			mu.Unlock()
		})
	}()
	drain(t, c, fast.WorkerID, done)

	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(outcome.Results) != len(jobs) || len(outcome.Errors) != 0 {
		t.Fatalf("outcome: %d results, %d errors; want %d results, 0 errors",
			len(outcome.Results), len(outcome.Errors), len(jobs))
	}
	if got := c.Counters().Stolen; got < 1 {
		t.Errorf("stolen counter = %d, want >= 1 (slow worker's share must be stolen)", got)
	}
	if byWorker[fast.WorkerID] != len(jobs) {
		t.Errorf("fast worker resolved %d cells, want all %d (by-worker: %v)",
			byWorker[fast.WorkerID], len(jobs), byWorker)
	}
}

// TestCoordinatorRequeueOnWorkerLoss: a worker leases cells and goes
// silent; after the liveness window its leases requeue and a surviving
// worker finishes the sweep. Straggler duplication is disabled so the
// expiry path is the only recovery route.
func TestCoordinatorRequeueOnWorkerLoss(t *testing.T) {
	c := New(Options{
		Pool:     &sweep.Pool{Cache: sweep.NewCache()},
		LeaseTTL: 150 * time.Millisecond, StealAfter: -1, LeaseCells: 3,
	})
	doomed := c.Register("doomed")
	jobs := fabJobs(6)
	done := make(chan struct{})
	var runErr error
	var outcome *sweep.Outcome
	go func() {
		defer close(done)
		outcome, runErr = c.RunJobs(context.Background(), jobs, nil)
	}()

	// The doomed worker grabs a batch, then never speaks again.
	grabbed := 0
	for deadline := time.Now().Add(10 * time.Second); grabbed == 0; {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		lease, err := c.Lease(doomed.WorkerID, 3)
		if err != nil {
			t.Fatal(err)
		}
		grabbed = len(lease.Cells)
		time.Sleep(2 * time.Millisecond)
	}

	surv := c.Register("survivor")
	drain(t, c, surv.WorkerID, done)

	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(outcome.Errors) != 0 {
		t.Fatalf("outcome errors: %v", outcome.Errors)
	}
	cc := c.Counters()
	if cc.Expired != 1 {
		t.Errorf("expired counter = %d, want 1", cc.Expired)
	}
	if int(cc.Requeued) != grabbed {
		t.Errorf("requeued counter = %d, want %d (the doomed worker's leases)", cc.Requeued, grabbed)
	}
}

// TestCoordinatorLocalFallback: with no workers at all, a dispatched
// sweep runs on the coordinator's own pool and completes with the same
// outcome a plain pool run produces.
func TestCoordinatorLocalFallback(t *testing.T) {
	spec, err := sweep.ParseSpecJSON([]byte(`{
		"models": ["sensor"], "senders": [5, 10],
		"runs": 1, "duration_s": 30, "rate_bps": 2000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	c := New(Options{Pool: &sweep.Pool{Cache: sweep.NewCache()}})
	out, err := c.RunJobs(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Counters().LocalCells; int(got) != len(jobs) {
		t.Errorf("local cells = %d, want %d", got, len(jobs))
	}

	want, err := (&sweep.Pool{Cache: sweep.NewCache()}).RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV, wantCSV bytes.Buffer
	if err := sweep.WriteCSV(&gotCSV, out); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteCSV(&wantCSV, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("local-fallback CSV diverges from plain pool run:\n got: %s\nwant: %s",
			gotCSV.Bytes(), wantCSV.Bytes())
	}
}

// TestCompleteDuplicateDropped: a second upload for an already
// resolved cell (the straggler race after a steal) is counted and
// dropped, never double-resolved.
func TestCompleteDuplicateDropped(t *testing.T) {
	c := New(Options{Pool: &sweep.Pool{Cache: sweep.NewCache()}, LeaseCells: 10})
	a := c.Register("a")
	b := c.Register("b")
	jobs := fabJobs(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.RunJobs(context.Background(), jobs, nil) //nolint:errcheck // outcome asserted via counters
	}()

	var lease LeaseResponse
	for deadline := time.Now().Add(10 * time.Second); len(lease.Cells) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no lease in time")
		}
		var err error
		if lease, err = c.Lease(a.WorkerID, 10); err != nil {
			t.Fatal(err)
		}
	}
	res := []CellResult{{Key: lease.Cells[0].Key, Result: &netsim.Result{}, Attempts: 1}}
	first, err := c.Complete(a.WorkerID, res)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Complete(b.WorkerID, res)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if first.Accepted != 1 || first.Duplicate != 0 {
		t.Errorf("first upload: %+v, want accepted 1", first)
	}
	if second.Accepted != 0 || second.Duplicate != 1 {
		t.Errorf("second upload: %+v, want duplicate 1", second)
	}
	if got := c.Counters().Duplicates; got != 1 {
		t.Errorf("duplicates counter = %d, want 1", got)
	}
}

// TestUnknownWorker: lease, heartbeat and upload from an id the
// coordinator never issued (or already expired) answer
// ErrUnknownWorker, the signal to re-register.
func TestUnknownWorker(t *testing.T) {
	c := New(Options{Pool: &sweep.Pool{}})
	if _, err := c.Lease("ghost", 1); err != ErrUnknownWorker {
		t.Errorf("Lease(ghost) = %v, want ErrUnknownWorker", err)
	}
	if err := c.Heartbeat("ghost"); err != ErrUnknownWorker {
		t.Errorf("Heartbeat(ghost) = %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Complete("ghost", nil); err != ErrUnknownWorker {
		t.Errorf("Complete(ghost) = %v, want ErrUnknownWorker", err)
	}
}
