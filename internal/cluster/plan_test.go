package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-key-%04d", i)
	}
	return keys
}

// TestAssignCoversEveryKey: every key lands on exactly one worker from
// the given set.
func TestAssignCoversEveryKey(t *testing.T) {
	keys := testKeys(100)
	workers := []string{"w1", "w2", "w3"}
	plan := Assign(keys, workers)
	if len(plan) != len(keys) {
		t.Fatalf("plan covers %d keys, want %d", len(plan), len(keys))
	}
	valid := map[string]bool{"w1": true, "w2": true, "w3": true}
	for key, w := range plan {
		if !valid[w] {
			t.Errorf("key %s assigned to unknown worker %q", key, w)
		}
	}
}

// TestAssignDeterministic: the plan is a pure function of the key and
// worker sets, independent of slice order.
func TestAssignDeterministic(t *testing.T) {
	keys := testKeys(50)
	a := Assign(keys, []string{"w1", "w2", "w3"})
	b := Assign(keys, []string{"w3", "w1", "w2"})
	if !reflect.DeepEqual(a, b) {
		t.Error("plan depends on worker slice order")
	}
	c := Assign(keys, []string{"w1", "w2", "w3"})
	if !reflect.DeepEqual(a, c) {
		t.Error("plan not deterministic across calls")
	}
}

// TestAssignMinimalDisruption: removing one worker only reassigns the
// keys that worker held; everyone else's share is untouched (the
// rendezvous-hashing property the requeue path relies on).
func TestAssignMinimalDisruption(t *testing.T) {
	keys := testKeys(200)
	full := Assign(keys, []string{"w1", "w2", "w3"})
	without := Assign(keys, []string{"w1", "w3"})
	moved := 0
	for _, key := range keys {
		switch {
		case full[key] == "w2":
			moved++
		case full[key] != without[key]:
			t.Errorf("key %s moved %s -> %s though its worker survived", key, full[key], without[key])
		}
	}
	if moved == 0 {
		t.Error("w2 held no keys; test grid too small to exercise disruption")
	}
}

// TestAssignSpread: with enough keys, every worker gets a share (HRW
// balances in expectation).
func TestAssignSpread(t *testing.T) {
	plan := Assign(testKeys(500), []string{"w1", "w2", "w3", "w4"})
	got := map[string]int{}
	for _, w := range plan {
		got[w]++
	}
	for _, w := range []string{"w1", "w2", "w3", "w4"} {
		if got[w] == 0 {
			t.Errorf("worker %s got no keys out of 500", w)
		}
	}
}

// TestAssignNoWorkers: an empty fleet yields an empty plan, not a
// panic.
func TestAssignNoWorkers(t *testing.T) {
	if plan := Assign(testKeys(5), nil); len(plan) != 0 {
		t.Errorf("plan over zero workers = %v, want empty", plan)
	}
}
