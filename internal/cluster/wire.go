package cluster

import (
	"errors"

	"bulktx/internal/netsim"
)

// ErrUnknownWorker marks a lease, result upload or heartbeat from a
// worker id the coordinator does not know — never registered, or
// expired after missing its heartbeats. The HTTP layer maps it to 404;
// a worker receiving it re-registers and continues (the rejoin path).
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// RegisterRequest is the body of POST /v1/cluster/workers: a worker
// announcing itself to the coordinator.
type RegisterRequest struct {
	// Name is the worker's advertised name (informational; identity is
	// the worker id the coordinator assigns).
	Name string `json:"name,omitempty"`
}

// RegisterResponse acknowledges a registration with the assigned
// identity and the coordinator's timing contract.
type RegisterResponse struct {
	// WorkerID is the assigned identity; every subsequent request
	// carries it.
	WorkerID string `json:"worker_id"`
	// LeaseTTLS is the liveness window in seconds: a worker silent for
	// longer is expired and its leased cells are requeued.
	LeaseTTLS float64 `json:"lease_ttl_s"`
	// PollS is the suggested idle poll interval in seconds.
	PollS float64 `json:"poll_s"`
}

// LeaseRequest is the body of POST /v1/cluster/lease: a worker asking
// for a batch of cells to simulate.
type LeaseRequest struct {
	// WorkerID is the identity assigned at registration.
	WorkerID string `json:"worker_id"`
	// MaxCells caps the batch (0 or anything above the coordinator's
	// limit selects the coordinator's lease-cells setting).
	MaxCells int `json:"max_cells,omitempty"`
}

// LeasedCell is one cell handed to a worker: the full run
// configuration plus its fleet-wide content key (the same key the
// sweep cache uses, so every node agrees on cell identity).
type LeasedCell struct {
	// Key is the cell's content key (sweep.Key of the configuration).
	Key string `json:"key"`
	// Config is the fully resolved run configuration to simulate.
	Config netsim.Config `json:"config"`
	// Stolen marks cells taken off another worker's plan — work
	// stealing — or duplicated from a straggler's overdue lease.
	Stolen bool `json:"stolen,omitempty"`
}

// LeaseResponse carries the leased batch; empty Cells with a WaitS
// hint means "nothing to do right now, poll again later".
type LeaseResponse struct {
	// Cells is the leased batch (possibly empty).
	Cells []LeasedCell `json:"cells"`
	// WaitS suggests how long to sleep before the next poll when Cells
	// is empty.
	WaitS float64 `json:"wait_s,omitempty"`
}

// CellResult is one executed cell reported back by a worker.
type CellResult struct {
	// Key identifies the cell (LeasedCell.Key).
	Key string `json:"key"`
	// Result is the simulation result; nil when the cell failed.
	Result *netsim.Result `json:"result,omitempty"`
	// Error is the cell's final failure after the worker's retry
	// budget; the coordinator quarantines the cell.
	Error string `json:"error,omitempty"`
	// Attempts is how many executions the worker's pool consumed.
	Attempts int `json:"attempts,omitempty"`
	// DurationS is the cell's simulation wall-clock in seconds.
	DurationS float64 `json:"duration_s,omitempty"`
}

// CompleteRequest is the body of POST /v1/cluster/results: a batch of
// executed cells. An upload also counts as a heartbeat.
type CompleteRequest struct {
	// WorkerID is the identity assigned at registration.
	WorkerID string `json:"worker_id"`
	// Results is the executed batch.
	Results []CellResult `json:"results"`
}

// CompleteResponse acknowledges an upload.
type CompleteResponse struct {
	// Accepted counts results that resolved a pending cell.
	Accepted int `json:"accepted"`
	// Duplicate counts results for cells already resolved elsewhere
	// (straggler races after a steal) — harmless, the first result won
	// and determinism makes both identical.
	Duplicate int `json:"duplicate"`
}

// WorkerStatus is one worker's row in the cluster status.
type WorkerStatus struct {
	// ID and Name identify the worker.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Live reports whether the worker is inside its liveness window.
	Live bool `json:"live"`
	// LastSeenS is how long ago the worker was last heard from.
	LastSeenS float64 `json:"last_seen_s"`
	// CellsDone counts results the worker delivered; CellsStolen
	// counts cells it took off other workers' plans.
	CellsDone   int64 `json:"cells_done"`
	CellsStolen int64 `json:"cells_stolen"`
	// CellsLeased counts cells currently leased to the worker.
	CellsLeased int `json:"cells_leased"`
}

// Status is the coordinator snapshot served by GET /v1/cluster.
type Status struct {
	// Workers lists every registered worker, most recently registered
	// last.
	Workers []WorkerStatus `json:"workers"`
	// LiveWorkers counts workers inside their liveness window.
	LiveWorkers int `json:"live_workers"`
	// ActiveJobs counts sweeps currently dispatched across the fleet.
	ActiveJobs int `json:"active_jobs"`
	// CellsPending and CellsLeased are the dispatch backlog gauges.
	CellsPending int `json:"cells_pending"`
	CellsLeased  int `json:"cells_leased"`
}
