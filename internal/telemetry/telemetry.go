// Package telemetry is the shared observability layer of the bcp-*
// suite: structured logging on log/slog, fixed-bucket latency
// histograms rendered in the Prometheus text exposition format, build
// stamping from the binary's embedded VCS metadata, request-id
// propagation, and profiling hooks (net/http/pprof mux, CPU/heap
// profile writers).
//
// The package follows the repository's zero-cost-when-off discipline
// established by internal/trace: nothing here touches the simulation
// core, loggers default to discarding, histograms are plain atomics
// with no background goroutines, and pprof is opt-in on a separate
// mux so it can never leak onto a public surface. Fixed-seed
// simulator fingerprints are byte-identical with telemetry enabled or
// disabled.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
)

// NewLogger is the shared logger constructor of the bcp-* commands: a
// slog.Logger writing to w in the given format ("text" or "json") at
// the given minimum level ("debug", "info", "warn", "error"). Unknown
// formats and levels are errors so typos on the command line fail
// loudly instead of silently logging everything.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// ParseLevel maps a level name to its slog.Level. The empty string
// selects Info, matching the flag default.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NopLogger returns a logger that discards every record — the default
// wherever a *slog.Logger is optional, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// RequestIDHeader is the request-id propagation header: clients may
// set it to correlate their own traces with the service's access log;
// the service generates a fresh id when it is absent and always
// echoes the effective id back on the response.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied request ids so a
// hostile client cannot bloat the access log.
const maxRequestIDLen = 128

// RequestID returns the request's propagated id (the RequestIDHeader
// value, when present and sane) or a freshly generated one.
func RequestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get(RequestIDHeader)); id != "" && len(id) <= maxRequestIDLen {
		return id
	}
	return NewRequestID()
}

// NewRequestID generates a 16-hex-character random request id.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand.Read never fails (it panics instead)
	return hex.EncodeToString(b[:])
}
