package telemetry

import (
	"flag"
	"io"
	"log/slog"
)

// Flags is the telemetry command-line surface shared by every bcp-*
// binary: -version, -log-level and -log-format. Register it on the
// command's flag set before parsing, then call HandleVersion and
// Logger after.
type Flags struct {
	// Version requests the one-line build banner instead of running.
	Version bool
	// LogLevel is the minimum level logged: debug, info, warn, error.
	LogLevel string
	// LogFormat is the log encoding: text or json.
	LogFormat string
}

// RegisterFlags registers the shared telemetry flags on fs (pass
// flag.CommandLine for commands using the global flag set) and
// returns the struct their parsed values land in.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Version, "version", false, "print version and build info, then exit")
	fs.StringVar(&f.LogLevel, "log-level", "info", "log verbosity: debug|info|warn|error")
	fs.StringVar(&f.LogFormat, "log-format", "text", "log encoding: text|json")
	return f
}

// HandleVersion prints the -version banner for the named command when
// requested, reporting whether the command should exit instead of
// running.
func (f *Flags) HandleVersion(w io.Writer, name string) bool {
	if !f.Version {
		return false
	}
	PrintVersion(w, name)
	return true
}

// Logger builds the command's logger from the parsed flags (see
// NewLogger). Commands log to stderr so stdout stays reserved for
// results.
func (f *Flags) Logger(w io.Writer) (*slog.Logger, error) {
	return NewLogger(w, f.LogFormat, f.LogLevel)
}
