package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewLoggerFormatsAndLevels(t *testing.T) {
	var b bytes.Buffer
	log, err := NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("output not one JSON record: %q (%v)", b.String(), err)
	}
	if rec["msg"] != "kept" || rec["k"] != "v" {
		t.Errorf("bad record %v", rec)
	}
	if strings.Contains(b.String(), "dropped") {
		t.Error("info record leaked past warn level")
	}

	b.Reset()
	log, err = NewLogger(&b, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("visible")
	if !strings.Contains(b.String(), "msg=visible") {
		t.Errorf("text handler output %q", b.String())
	}

	if _, err := NewLogger(io.Discard, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(io.Discard, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":      slog.LevelInfo,
		"debug": slog.LevelDebug,
		"INFO":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	NopLogger().Info("into the void") // must not panic
	if NopLogger().Enabled(t.Context(), slog.LevelError) {
		t.Error("nop logger claims to be enabled")
	}
}

func TestRegisterFlagsAndLogger(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json", "-version"}); err != nil {
		t.Fatal(err)
	}
	if !f.Version || f.LogLevel != "debug" || f.LogFormat != "json" {
		t.Fatalf("parsed flags %+v", f)
	}
	var b bytes.Buffer
	if !f.HandleVersion(&b, "bcp-test") {
		t.Error("HandleVersion = false with -version set")
	}
	if !strings.HasPrefix(b.String(), "bcp-test ") {
		t.Errorf("version banner %q", b.String())
	}
	if _, err := f.Logger(io.Discard); err != nil {
		t.Errorf("Logger: %v", err)
	}
}

func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	if b.Version == "" || b.Revision == "" || b.GoVersion == "" {
		t.Errorf("BuildInfo has empty fields: %+v", b)
	}
	if !strings.Contains(b.String(), b.Version) {
		t.Errorf("String %q omits version", b.String())
	}
	var out bytes.Buffer
	WriteBuildInfoMetric(&out)
	if !strings.Contains(out.String(), "bulktx_build_info{version=") {
		t.Errorf("build info metric %q", out.String())
	}
	if errs := LintExposition(out.Bytes()); len(errs) > 0 {
		t.Errorf("build info metric does not lint: %v", errs)
	}
}

func TestRequestID(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.Header.Set(RequestIDHeader, "client-id-1")
	if got := RequestID(r); got != "client-id-1" {
		t.Errorf("propagated id = %q", got)
	}
	r.Header.Set(RequestIDHeader, strings.Repeat("x", 200))
	if got := RequestID(r); len(got) != 16 {
		t.Errorf("oversized client id not replaced: %q", got)
	}
	r.Header.Del(RequestIDHeader)
	a, b := RequestID(r), RequestID(r)
	if len(a) != 16 || a == b {
		t.Errorf("generated ids %q, %q", a, b)
	}
}

func TestPprofMuxServesIndex(t *testing.T) {
	ts := httptest.NewServer(PprofMux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d", resp.StatusCode)
	}
}

func TestProfileWriters(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartCPUProfile(dir + "/cpu.prof")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("stop cpu profile: %v", err)
	}
	if err := WriteHeapProfile(dir + "/mem.prof"); err != nil {
		t.Errorf("heap profile: %v", err)
	}
}
