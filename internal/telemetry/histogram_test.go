package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	WriteHistogram(&b, "t_seconds", "Test histogram.", h)
	out := b.String()
	for _, want := range []string{
		"# HELP t_seconds Test histogram.",
		"# TYPE t_seconds histogram",
		`t_seconds_bucket{le="0.01"} 2`, // 0.005 and the boundary value 0.01 (le is inclusive)
		`t_seconds_bucket{le="0.1"} 3`,
		`t_seconds_bucket{le="1"} 4`,
		`t_seconds_bucket{le="+Inf"} 5`,
		"t_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition([]byte(out)); len(errs) > 0 {
		t.Errorf("self-lint failed: %v", errs)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.001, 10, 4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-80) > 1e-6 {
		t.Errorf("sum = %g, want 80", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sum = %g, want 0.5", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec("route", []float64{0.1, 1})
	v.With("GET /healthz").Observe(0.05)
	v.With("POST /v1/runs").Observe(2)
	v.With("GET /healthz").Observe(0.5)
	var b strings.Builder
	WriteHistogramVec(&b, "t_http_seconds", "Test vec.", v)
	out := b.String()
	for _, want := range []string{
		`t_http_seconds_bucket{route="GET /healthz",le="0.1"} 1`,
		`t_http_seconds_bucket{route="GET /healthz",le="+Inf"} 2`,
		`t_http_seconds_count{route="GET /healthz"} 2`,
		`t_http_seconds_bucket{route="POST /v1/runs",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vec exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE t_http_seconds histogram"); n != 1 {
		t.Errorf("TYPE emitted %d times, want once", n)
	}
	// GET sorts before POST: label values render deterministically.
	if strings.Index(out, "GET /healthz") > strings.Index(out, "POST /v1/runs") {
		t.Error("series not in sorted label order")
	}
	if errs := LintExposition([]byte(out)); len(errs) > 0 {
		t.Errorf("self-lint failed: %v", errs)
	}
}

func TestNewHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":     {},
		"unsorted":  {1, 0.5},
		"dup":       {1, 1},
		"inf-bound": {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds %v did not panic", name, bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
