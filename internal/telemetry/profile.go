package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// PprofMux builds the opt-in profiling mux: the standard
// net/http/pprof index plus its named profiles. It is deliberately a
// separate mux — serve it on its own (typically loopback-only)
// listener so the profiling surface never leaks onto the public API;
// the public mux keeps answering 404 for /debug/pprof/.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartCPUProfile begins a CPU profile into path, returning the stop
// function to defer — the flag-to-profile plumbing behind the
// -cpuprofile flag on bcp-bench and bcp-sweep.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile writes an allocation profile to path after a final
// GC, so the profile reflects live objects — the plumbing behind the
// -memprofile flag.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	runtime.GC()
	if err := runtimepprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
