package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-format exposition
// (version 0.0.4) without external dependencies — the expfmt-style
// line lint behind the repository's metrics tests. It checks that:
//
//   - every line is a well-formed comment or sample (metric and label
//     names match the Prometheus charset, values parse as floats),
//   - HELP and TYPE appear at most once per family, TYPE names a valid
//     metric type and precedes the family's first sample,
//   - every sample belongs to a family with a TYPE declaration, and
//     histogram samples use only the _bucket/_sum/_count suffixes,
//   - no two samples repeat the same name and label set,
//   - each histogram series has cumulative (non-decreasing) bucket
//     counts ending in an le="+Inf" bucket that equals its _count, and
//     carries exactly one _sum and _count.
//
// It returns every violation found, so tests can report them all at
// once; a nil slice means the exposition is clean.
func LintExposition(data []byte) []error {
	l := &expoLint{
		types:  map[string]string{},
		helped: map[string]bool{},
		seen:   map[string]bool{},
		sealed: map[string]bool{},
		hists:  map[string]*histSeries{},
	}
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		l.line(i+1, line)
	}
	l.finishHistograms()
	return l.errs
}

// expoLint accumulates lint state across exposition lines.
type expoLint struct {
	errs   []error
	types  map[string]string      // family -> declared TYPE
	helped map[string]bool        // family -> HELP seen
	seen   map[string]bool        // name+labels -> sample seen (duplicate check)
	sealed map[string]bool        // family -> samples seen (TYPE must precede)
	hists  map[string]*histSeries // family + "\x00" + labels-without-le -> histogram series
}

// histSeries collects one histogram series' samples for the
// cumulative/bucket/count cross-checks.
type histSeries struct {
	family, labels string
	buckets        []bucket
	sum, count     *float64
	sums, counts   int
}

// bucket is one _bucket sample: its le bound and cumulative count.
type bucket struct {
	le    float64
	value float64
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// splitSample tears one sample line into metric name, brace-enclosed
// label block (or ""), and value. The label block is scanned
// quote-aware, since label values may contain any character —
// including braces, as in route="GET /v1/jobs/{id}".
func splitSample(line string) (name, rawLabels, value string, ok bool) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", "", "", false
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		inQuotes, esc, end := false, false, -1
		for j := 1; j < len(rest); j++ {
			switch {
			case esc:
				esc = false
			case rest[j] == '\\':
				esc = true
			case rest[j] == '"':
				inQuotes = !inQuotes
			case rest[j] == '}' && !inQuotes:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", "", false
		}
		rawLabels, rest = rest[:end+1], rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", false
	}
	if len(fields) == 2 { // optional timestamp: integer milliseconds
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", "", false
		}
	}
	return name, rawLabels, fields[0], true
}

// errf records one violation with its line number.
func (l *expoLint) errf(n int, format string, a ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: "+format, append([]any{n}, a...)...))
}

// line lints one exposition line.
func (l *expoLint) line(n int, line string) {
	switch {
	case strings.TrimSpace(line) == "":
		return
	case strings.HasPrefix(line, "# HELP "):
		rest := strings.TrimPrefix(line, "# HELP ")
		name, _, _ := strings.Cut(rest, " ")
		if !metricNameRe.MatchString(name) {
			l.errf(n, "HELP names invalid metric %q", name)
			return
		}
		if l.helped[name] {
			l.errf(n, "second HELP for %s", name)
		}
		l.helped[name] = true
	case strings.HasPrefix(line, "# TYPE "):
		fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
		if len(fields) != 2 {
			l.errf(n, "malformed TYPE line %q", line)
			return
		}
		name, typ := fields[0], fields[1]
		if !metricNameRe.MatchString(name) {
			l.errf(n, "TYPE names invalid metric %q", name)
			return
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown metric type %q for %s", typ, name)
			return
		}
		if _, dup := l.types[name]; dup {
			l.errf(n, "second TYPE for %s", name)
			return
		}
		if l.sealed[name] {
			l.errf(n, "TYPE for %s after its samples", name)
		}
		l.types[name] = typ
	case strings.HasPrefix(line, "#"):
		// Arbitrary comments are legal; only HELP/TYPE carry meaning.
	default:
		l.sample(n, line)
	}
}

// sample lints one sample line and files it under its family.
func (l *expoLint) sample(num int, text string) {
	name, rawLabels, rawValue, ok := splitSample(text)
	if !ok || !metricNameRe.MatchString(name) {
		l.errf(num, "malformed sample line %q", text)
		return
	}
	value, err := parseSampleValue(rawValue)
	if err != nil {
		l.errf(num, "%s: bad value %q", name, rawValue)
		return
	}
	labels, le, ok := parseLabels(rawLabels)
	if !ok {
		l.errf(num, "%s: malformed labels %q", name, rawLabels)
		return
	}
	family, suffix := name, ""
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name && l.types[base] == "histogram" {
			family, suffix = base, sfx
			break
		}
	}
	typ, declared := l.types[family]
	if !declared {
		l.errf(num, "sample %s has no TYPE declaration", name)
		return
	}
	key := name + "\x00" + labels + "\x00" + le
	if l.seen[key] {
		l.errf(num, "duplicate series %s{%s}", name, labels)
	}
	l.seen[key] = true
	l.sealed[family] = true

	if typ != "histogram" {
		return
	}
	if suffix == "" {
		l.errf(num, "histogram %s has non-histogram sample %s", family, name)
		return
	}
	hk := family + "\x00" + labels
	hs := l.hists[hk]
	if hs == nil {
		hs = &histSeries{family: family, labels: labels}
		l.hists[hk] = hs
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			l.errf(num, "%s_bucket missing le label", family)
			return
		}
		bound, err := parseSampleValue(le)
		if err != nil {
			l.errf(num, "%s_bucket: bad le %q", family, le)
			return
		}
		hs.buckets = append(hs.buckets, bucket{le: bound, value: value})
	case "_sum":
		hs.sum, hs.sums = &value, hs.sums+1
	case "_count":
		hs.count, hs.counts = &value, hs.counts+1
	}
}

// finishHistograms runs the whole-series checks once every line is in.
func (l *expoLint) finishHistograms() {
	keys := make([]string, 0, len(l.hists))
	for k := range l.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		hs := l.hists[k]
		where := hs.family
		if hs.labels != "" {
			where += "{" + hs.labels + "}"
		}
		if len(hs.buckets) == 0 {
			l.errs = append(l.errs, fmt.Errorf("histogram %s has no buckets", where))
			continue
		}
		sort.Slice(hs.buckets, func(i, j int) bool { return hs.buckets[i].le < hs.buckets[j].le })
		last := hs.buckets[len(hs.buckets)-1]
		if !isInf(last.le) {
			l.errs = append(l.errs, fmt.Errorf("histogram %s buckets do not end with le=\"+Inf\"", where))
		}
		for i := 1; i < len(hs.buckets); i++ {
			if hs.buckets[i].value < hs.buckets[i-1].value {
				l.errs = append(l.errs, fmt.Errorf("histogram %s buckets not cumulative at le=%g", where, hs.buckets[i].le))
			}
		}
		if hs.sums != 1 {
			l.errs = append(l.errs, fmt.Errorf("histogram %s has %d _sum samples, want 1", where, hs.sums))
		}
		if hs.counts != 1 {
			l.errs = append(l.errs, fmt.Errorf("histogram %s has %d _count samples, want 1", where, hs.counts))
		} else if isInf(last.le) && *hs.count != last.value {
			l.errs = append(l.errs, fmt.Errorf("histogram %s _count %g != +Inf bucket %g", where, *hs.count, last.value))
		}
	}
}

// isInf reports a +Inf bound.
func isInf(v float64) bool { return v > 1e308*1.5 }

// parseSampleValue parses a sample or le value, accepting the
// exposition's special floats.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a brace-enclosed label list, returning the label
// set without the le pair (canonically re-joined, sorted), the le
// value if present, and whether the list was well-formed.
func parseLabels(raw string) (labels, le string, ok bool) {
	if raw == "" {
		return "", "", true
	}
	body := strings.TrimSuffix(strings.TrimPrefix(raw, "{"), "}")
	if strings.TrimSpace(body) == "" {
		return "", "", true
	}
	var pairs []string
	rest := body
	for rest != "" {
		name, after, found := strings.Cut(rest, "=")
		if !found || !labelNameRe.MatchString(strings.TrimSpace(name)) {
			return "", "", false
		}
		name = strings.TrimSpace(name)
		value, remainder, valOK := cutQuoted(strings.TrimSpace(after))
		if !valOK {
			return "", "", false
		}
		rest = strings.TrimPrefix(strings.TrimSpace(remainder), ",")
		rest = strings.TrimSpace(rest)
		if name == "le" {
			le = value
			continue
		}
		pairs = append(pairs, name+`="`+value+`"`)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ","), le, true
}

// cutQuoted consumes one quoted label value (honoring \" escapes),
// returning the unquoted value and the remainder of the input.
func cutQuoted(s string) (value, rest string, ok bool) {
	if len(s) < 2 || s[0] != '"' {
		return "", "", false
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", false
			}
		case '"':
			return b.String(), s[i+1:], true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}
