package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative-bucket model: Observe is lock-free (atomic adds plus a
// CAS loop for the sum), so hot paths can record into a shared
// histogram without contention, and rendering takes a best-effort
// snapshot (Prometheus semantics do not require cross-field
// atomicity). The zero value is not usable; build one with
// NewHistogram.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow last
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds (exclusive of the implicit +Inf bucket). It panics on
// unsorted or empty bounds — bucket layouts are compile-time
// constants, so a bad layout is a programming error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %v", bounds))
		}
	}
	if math.IsInf(bounds[len(bounds)-1], +1) {
		panic("telemetry: +Inf bound is implicit; do not pass it")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// ExpBuckets builds n ascending bucket bounds starting at start and
// growing by factor — the usual exponential latency bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: cumulative le semantics
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a wall-clock span in seconds, the unit of
// every duration histogram in the exposition.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count reports the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// writeSeries renders the histogram's _bucket/_sum/_count series.
// labels is a pre-rendered `name="value"` pair list without braces,
// or "" for an unlabeled family.
func (h *Histogram) writeSeries(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

// WriteHistogram renders h as one complete Prometheus histogram
// family: HELP, TYPE, cumulative _bucket series ending at le="+Inf",
// then _sum and _count.
func WriteHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	h.writeSeries(w, name, "")
}

// HistogramVec is a family of Histograms sharing one bucket layout,
// partitioned by a single label (e.g. HTTP route). Series are created
// on first use and never evicted, matching the bounded route set of
// the service mux.
type HistogramVec struct {
	label  string
	bounds []float64

	mu     sync.Mutex
	series map[string]*Histogram
}

// NewHistogramVec builds an empty family partitioned by the given
// label name over the given bucket bounds (see NewHistogram).
func NewHistogramVec(label string, bounds []float64) *HistogramVec {
	NewHistogram(bounds) // validate the layout once, loudly
	return &HistogramVec{label: label, bounds: bounds, series: make(map[string]*Histogram)}
}

// With returns the histogram of one label value, creating it on first
// use. The returned histogram is shared: callers may cache it.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[value]
	if !ok {
		h = NewHistogram(v.bounds)
		v.series[value] = h
	}
	return h
}

// WriteHistogramVec renders every series of the family under one
// HELP/TYPE header, label values in sorted order so the exposition is
// deterministic.
func WriteHistogramVec(w io.Writer, name, help string, v *HistogramVec) {
	v.mu.Lock()
	values := make([]string, 0, len(v.series))
	for val := range v.series {
		values = append(values, val)
	}
	sort.Strings(values)
	series := make([]*Histogram, len(values))
	for i, val := range values {
		series[i] = v.series[val]
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, val := range values {
		series[i].writeSeries(w, name, v.label+`="`+escapeLabel(val)+`"`)
	}
}

// formatFloat renders a sample value or le bound the way Prometheus
// clients do: shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}
