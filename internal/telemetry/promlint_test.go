package telemetry

import (
	"strings"
	"testing"
)

// validExposition is a hand-written exposition exercising every
// family shape the service emits.
const validExposition = `# HELP t_jobs_total Jobs accepted.
# TYPE t_jobs_total counter
t_jobs_total 4
# HELP t_queue_depth Queued jobs.
# TYPE t_queue_depth gauge
t_queue_depth 0
# HELP t_req_seconds Request latency.
# TYPE t_req_seconds histogram
t_req_seconds_bucket{route="GET /x",le="0.1"} 1
t_req_seconds_bucket{route="GET /x",le="+Inf"} 2
t_req_seconds_sum{route="GET /x"} 1.5
t_req_seconds_count{route="GET /x"} 2
# HELP t_build_info Build metadata.
# TYPE t_build_info gauge
t_build_info{version="(devel)",revision="unknown"} 1
`

func TestLintAcceptsValidExposition(t *testing.T) {
	if errs := LintExposition([]byte(validExposition)); len(errs) > 0 {
		t.Fatalf("valid exposition rejected: %v", errs)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]struct {
		doc  string
		want string // substring of some reported error
	}{
		"sample without TYPE": {
			doc:  "t_x 1\n",
			want: "no TYPE declaration",
		},
		"bad value": {
			doc:  "# TYPE t_x counter\nt_x notanumber\n",
			want: "bad value",
		},
		"bad metric name": {
			doc:  "# TYPE 0bad counter\n",
			want: "invalid metric",
		},
		"unknown type": {
			doc:  "# TYPE t_x flurble\n",
			want: "unknown metric type",
		},
		"duplicate TYPE": {
			doc:  "# TYPE t_x counter\n# TYPE t_x counter\n",
			want: "second TYPE",
		},
		"TYPE after samples": {
			doc:  "# TYPE t_x counter\nt_x 1\n# TYPE t_y counter\n# TYPE t_x gauge\n",
			want: "second TYPE",
		},
		"duplicate series": {
			doc:  "# TYPE t_x counter\nt_x 1\nt_x 2\n",
			want: "duplicate series",
		},
		"malformed labels": {
			doc:  "# TYPE t_x counter\nt_x{route=unquoted} 1\n",
			want: "malformed",
		},
		"histogram without +Inf": {
			doc: "# TYPE t_h histogram\n" +
				"t_h_bucket{le=\"1\"} 1\nt_h_sum 1\nt_h_count 1\n",
			want: `do not end with le="+Inf"`,
		},
		"non-cumulative buckets": {
			doc: "# TYPE t_h histogram\n" +
				"t_h_bucket{le=\"1\"} 5\nt_h_bucket{le=\"2\"} 3\nt_h_bucket{le=\"+Inf\"} 5\n" +
				"t_h_sum 1\nt_h_count 5\n",
			want: "not cumulative",
		},
		"count disagrees with +Inf bucket": {
			doc: "# TYPE t_h histogram\n" +
				"t_h_bucket{le=\"1\"} 1\nt_h_bucket{le=\"+Inf\"} 2\nt_h_sum 1\nt_h_count 7\n",
			want: "_count 7 != +Inf bucket 2",
		},
		"histogram missing sum": {
			doc: "# TYPE t_h histogram\n" +
				"t_h_bucket{le=\"+Inf\"} 1\nt_h_count 1\n",
			want: "_sum samples",
		},
	}
	for name, tc := range cases {
		errs := LintExposition([]byte(tc.doc))
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", name, tc.want, errs)
		}
	}
}

func TestLintSeparatesHistogramLabelSets(t *testing.T) {
	// Two label sets of one histogram family lint independently: one
	// valid series must not mask the other's missing +Inf bucket.
	doc := "# TYPE t_h histogram\n" +
		"t_h_bucket{route=\"a\",le=\"1\"} 1\nt_h_bucket{route=\"a\",le=\"+Inf\"} 1\n" +
		"t_h_sum{route=\"a\"} 0.5\nt_h_count{route=\"a\"} 1\n" +
		"t_h_bucket{route=\"b\",le=\"1\"} 1\n" +
		"t_h_sum{route=\"b\"} 0.5\nt_h_count{route=\"b\"} 1\n"
	errs := LintExposition([]byte(doc))
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `route="b"`) {
		t.Fatalf("want exactly one error for route b, got %v", errs)
	}
}
