package telemetry

import (
	"fmt"
	"io"
	"runtime/debug"
)

// Build describes the running binary, read from the metadata the Go
// toolchain embeds at link time (runtime/debug.ReadBuildInfo).
type Build struct {
	// Version is the main module version — "(devel)" for plain local
	// builds, a semver tag for released module builds.
	Version string
	// Revision is the VCS commit hash the binary was built from, or
	// "unknown" when the build ran outside a checkout (or with
	// -buildvcs=off).
	Revision string
	// Modified reports that the working tree was dirty at build time,
	// so Revision alone does not pin the sources.
	Modified bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// BuildInfo reads the binary's embedded build metadata. It never
// fails: fields the toolchain did not stamp come back as "unknown".
func BuildInfo() Build {
	b := Build{Version: "unknown", Revision: "unknown", GoVersion: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line human form used by the -version flag:
// version, abbreviated revision (with a -dirty suffix for modified
// trees) and toolchain.
func (b Build) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s (%s, %s)", b.Version, rev, b.GoVersion)
}

// PrintVersion writes the shared -version banner for the named
// command. Every bcp-* binary funnels its -version flag through here
// so the banner format cannot drift across the suite.
func PrintVersion(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, BuildInfo())
}

// WriteBuildInfoMetric renders the bulktx_build_info gauge: constant
// value 1 with the build metadata as labels, the standard Prometheus
// idiom for joining version info onto other series.
func WriteBuildInfoMetric(w io.Writer) {
	b := BuildInfo()
	fmt.Fprintf(w, "# HELP bulktx_build_info Build metadata of the serving binary; constant 1, versions carried as labels.\n")
	fmt.Fprintf(w, "# TYPE bulktx_build_info gauge\n")
	fmt.Fprintf(w, "bulktx_build_info{version=%q,revision=%q,modified=%q,go=%q} 1\n",
		escapeLabel(b.Version), escapeLabel(b.Revision), fmt.Sprintf("%t", b.Modified), escapeLabel(b.GoVersion))
}
