// Package mempool provides arena-style allocators for per-run
// simulation state. A 100k-node run allocates hundreds of thousands of
// small objects (transceivers, neighbor lists, MAC queues) that all die
// together when the run ends; handing them out from growable slabs and
// recycling whole slabs between runs keeps concurrent sweep workers
// from fighting the garbage collector over per-object churn.
//
// Reuse is determinism-safe by construction: Reset zeroes every
// handed-out item before rewinding, so memory obtained from a recycled
// slab is indistinguishable from a fresh allocation.
package mempool

// slabMinBlock and slabMaxBlock bound the geometric block growth of
// Slab and Arena. The first block is small so sparse users stay cheap;
// blocks double up to the cap so dense users (100k nodes) need only a
// few dozen block allocations ever.
const (
	slabMinBlock = 64
	slabMaxBlock = 65536
)

// Slab is an arena of values of type T handed out one at a time. Get
// returns a pointer into the current block; blocks are never moved or
// freed, so returned pointers stay valid until Reset. The zero Slab is
// ready to use.
type Slab[T any] struct {
	blocks [][]T
	cur    int // block currently being filled
	used   int // items handed out from blocks[cur]
}

// Get returns a pointer to a zeroed T. The pointer stays valid (and is
// never re-issued) until Reset.
func (s *Slab[T]) Get() *T {
	if s.cur == len(s.blocks) || s.used == len(s.blocks[s.cur]) {
		if s.cur < len(s.blocks) {
			s.cur++
		}
		if s.cur == len(s.blocks) {
			size := slabMinBlock
			if s.cur > 0 {
				size = min(2*len(s.blocks[s.cur-1]), slabMaxBlock)
			}
			s.blocks = append(s.blocks, make([]T, size))
		}
		s.used = 0
	}
	p := &s.blocks[s.cur][s.used]
	s.used++
	return p
}

// Reset zeroes all handed-out values and rewinds the slab, invalidating
// every pointer Get has returned. The blocks themselves are retained
// for reuse.
func (s *Slab[T]) Reset() {
	for i := 0; i < s.cur && i < len(s.blocks); i++ {
		clear(s.blocks[i])
	}
	if s.cur < len(s.blocks) {
		clear(s.blocks[s.cur][:s.used])
	}
	s.cur, s.used = 0, 0
}

// Arena is a bump allocator for slices of T. Alloc returns zeroed
// slices carved from shared blocks; like Slab, blocks never move, so
// returned slices stay valid until Reset. The zero Arena is ready to
// use.
type Arena[T any] struct {
	blocks [][]T
	cur    int
	used   int
	// big holds dedicated blocks for oversize requests; they are
	// released (not recycled) at Reset.
	big [][]T
}

// Alloc returns a zeroed slice of length n (capacity exactly n, so an
// append never silently overwrites a neighboring allocation). Requests
// larger than the block cap get a dedicated block.
func (a *Arena[T]) Alloc(n int) []T {
	if n <= 0 {
		return nil
	}
	if n > slabMaxBlock {
		b := make([]T, n)
		a.big = append(a.big, b)
		return b[0:n:n]
	}
	if a.cur == len(a.blocks) || a.used+n > len(a.blocks[a.cur]) {
		if a.cur < len(a.blocks) {
			a.cur++
		}
		if a.cur == len(a.blocks) || n > len(a.blocks[a.cur]) {
			size := slabMinBlock
			if a.cur > 0 {
				size = min(2*len(a.blocks[a.cur-1]), slabMaxBlock)
			}
			for size < n {
				size *= 2
			}
			block := make([]T, size)
			if a.cur == len(a.blocks) {
				a.blocks = append(a.blocks, block)
			} else {
				// The retained block is too small for this request;
				// replace it with a bigger one.
				a.blocks[a.cur] = block
			}
		}
		a.used = 0
	}
	b := a.blocks[a.cur][a.used : a.used+n : a.used+n]
	a.used += n
	return b
}

// Reset zeroes all handed-out memory and rewinds the arena,
// invalidating every slice Alloc has returned. Regular blocks are
// retained; oversized dedicated blocks are released.
func (a *Arena[T]) Reset() {
	for i := 0; i < a.cur && i < len(a.blocks); i++ {
		clear(a.blocks[i])
	}
	if a.cur < len(a.blocks) {
		clear(a.blocks[a.cur][:a.used])
	}
	a.cur, a.used = 0, 0
	a.big = nil
}
