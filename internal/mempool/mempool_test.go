package mempool

import "testing"

func TestSlabHandsOutZeroedStableDistinctPointers(t *testing.T) {
	var s Slab[int]
	const n = 1000
	ptrs := make([]*int, n)
	for i := 0; i < n; i++ {
		p := s.Get()
		if *p != 0 {
			t.Fatalf("item %d not zeroed: %d", i, *p)
		}
		*p = i + 1
		ptrs[i] = p
	}
	seen := make(map[*int]bool, n)
	for i, p := range ptrs {
		if seen[p] {
			t.Fatalf("pointer %d re-issued", i)
		}
		seen[p] = true
		if *p != i+1 {
			t.Fatalf("item %d moved or overwritten: got %d", i, *p)
		}
	}
}

func TestSlabResetZeroesAndReusesBlocks(t *testing.T) {
	var s Slab[int]
	for i := 0; i < 500; i++ {
		*s.Get() = 7
	}
	firstBlocks := len(s.blocks)
	s.Reset()
	for i := 0; i < 500; i++ {
		p := s.Get()
		if *p != 0 {
			t.Fatalf("recycled item %d not zeroed: %d", i, *p)
		}
		*p = 9
	}
	if len(s.blocks) != firstBlocks {
		t.Fatalf("reset did not reuse blocks: %d -> %d", firstBlocks, len(s.blocks))
	}
}

func TestArenaAllocLengthsAndIsolation(t *testing.T) {
	var a Arena[byte]
	sizes := []int{1, 3, 64, 65, 1000, 0, -2, slabMaxBlock + 1}
	var slices [][]byte
	for _, n := range sizes {
		b := a.Alloc(n)
		want := n
		if want < 0 {
			want = 0
		}
		if len(b) != want {
			t.Fatalf("Alloc(%d) returned len %d", n, len(b))
		}
		if want > 0 && cap(b) != want {
			t.Fatalf("Alloc(%d) returned cap %d, want exactly %d", n, cap(b), want)
		}
		for i := range b {
			b[i] = byte(n)
		}
		slices = append(slices, b)
	}
	for k, b := range slices {
		n := sizes[k]
		for i := range b {
			if b[i] != byte(n) {
				t.Fatalf("slice %d (len %d) overwritten at %d", k, n, i)
			}
		}
	}
}

func TestArenaResetZeroesAndReusesBlocks(t *testing.T) {
	var a Arena[int]
	for i := 0; i < 100; i++ {
		b := a.Alloc(37)
		for j := range b {
			b[j] = 1
		}
	}
	a.Alloc(slabMaxBlock + 5) // oversize: dedicated block
	blocks := len(a.blocks)
	a.Reset()
	if a.big != nil {
		t.Fatal("reset retained an oversize block")
	}
	for i := 0; i < 100; i++ {
		b := a.Alloc(37)
		for j, v := range b {
			if v != 0 {
				t.Fatalf("recycled slice %d not zeroed at %d", i, j)
			}
		}
	}
	if len(a.blocks) != blocks {
		t.Fatalf("reset did not reuse blocks: %d -> %d", blocks, len(a.blocks))
	}
}

func TestArenaReplacesTooSmallRetainedBlock(t *testing.T) {
	var a Arena[int]
	a.Alloc(10) // creates the minimum-size first block
	a.Reset()
	b := a.Alloc(slabMinBlock + 1) // cannot fit the retained block
	if len(b) != slabMinBlock+1 {
		t.Fatalf("got len %d", len(b))
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("replacement block not zeroed")
		}
	}
}
