package routing

import (
	"fmt"

	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// Mesh holds all-pairs next-hop routing over one radio's connectivity
// graph. BCP needs it to forward wake-up messages over the low-power
// radio toward arbitrary high-power next hops, which are not always
// ancestors in the data-collection tree.
type Mesh struct {
	next [][]int
	hops [][]int
}

// BuildMesh runs a breadth-first search from every node, producing
// shortest-path next hops between all pairs. Ties break toward the
// geographically closest neighbour, then the lowest index, matching
// BuildTree.
func BuildMesh(layout *topo.Layout, r units.Meters) (*Mesh, error) {
	if layout == nil || layout.Len() == 0 {
		return nil, fmt.Errorf("routing: empty layout")
	}
	if r <= 0 {
		return nil, fmt.Errorf("routing: non-positive range %v", r)
	}
	n := layout.Len()
	m := &Mesh{
		next: make([][]int, n),
		hops: make([][]int, n),
	}
	// One adjacency pass (O(N^2) geometry) shared by all N BFS runs.
	adj := buildAdjacency(layout, r)
	for dst := 0; dst < n; dst++ {
		tree := treeFromAdjacency(adj, dst)
		m.next[dst] = tree.nextHop
		m.hops[dst] = tree.hops
	}
	return m, nil
}

// NextHop returns the next hop on the shortest path from node from to
// node to, and whether a route exists. from == to yields (from, false).
func (m *Mesh) NextHop(from, to int) (int, bool) {
	if !m.valid(from) || !m.valid(to) || from == to {
		return NoRoute, false
	}
	nh := m.next[to][from]
	if nh == NoRoute {
		return NoRoute, false
	}
	return nh, true
}

// Hops returns the shortest hop count between two nodes, or -1 when
// disconnected.
func (m *Mesh) Hops(from, to int) int {
	if !m.valid(from) || !m.valid(to) {
		return -1
	}
	return m.hops[to][from]
}

// Len returns the number of nodes covered.
func (m *Mesh) Len() int { return len(m.next) }

func (m *Mesh) valid(i int) bool { return i >= 0 && i < len(m.next) }
