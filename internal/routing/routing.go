// Package routing builds the per-radio routing state of the paper's
// evaluation: shortest-path trees toward the sink over each radio's
// connectivity graph, the dual-radio address mapping BCP needs to
// translate between low-power and high-power identities, and the route
// shortcut learning of Section 3 (senders learn the farthest node along
// the low-power route that their high-power radio reaches directly).
package routing

import (
	"fmt"

	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// NoRoute marks the absence of a next hop.
const NoRoute = -1

// Tree is a shortest-path tree toward a single sink. Ties between
// equal-hop parents break toward the geographically closest parent, then
// the lowest node index, so tree construction is deterministic.
type Tree struct {
	sink    int
	nextHop []int
	hops    []int
}

// BuildTree computes the tree for the given layout, sink and radio range.
// Unreachable nodes get NoRoute/-1 entries.
func BuildTree(layout *topo.Layout, sink int, r units.Meters) (*Tree, error) {
	if layout == nil || layout.Len() == 0 {
		return nil, fmt.Errorf("routing: empty layout")
	}
	if sink < 0 || sink >= layout.Len() {
		return nil, fmt.Errorf("routing: sink %d outside layout of %d nodes", sink, layout.Len())
	}
	if r <= 0 {
		return nil, fmt.Errorf("routing: non-positive range %v", r)
	}
	return treeFromAdjacency(buildAdjacency(layout, r), sink), nil
}

// adjacency caches each node's in-range neighbors (ascending) with the
// corresponding link distances, so repeated BFS passes (BuildMesh runs
// one per node) cost O(N+E) each instead of O(N^2) range checks.
type adjacency struct {
	nb   [][]int
	dist [][]units.Meters
}

func buildAdjacency(layout *topo.Layout, r units.Meters) *adjacency {
	nb, dist := layout.Adjacency(r)
	return &adjacency{nb: nb, dist: dist}
}

// treeFromAdjacency is BuildTree's core: a BFS for hop counts followed
// by the closest-then-lowest-index parent pick, identical in order and
// tie-breaks to scanning the layout directly.
func treeFromAdjacency(adj *adjacency, sink int) *Tree {
	n := len(adj.nb)
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[sink] = 0
	queue := make([]int, 1, n)
	queue[0] = sink
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, nb := range adj.nb[cur] {
			if hops[nb] == -1 {
				hops[nb] = hops[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[i] = NoRoute
		if i == sink || hops[i] <= 0 {
			continue
		}
		best := NoRoute
		var bestDist units.Meters
		for k, nb := range adj.nb[i] {
			if hops[nb] != hops[i]-1 {
				continue
			}
			d := adj.dist[i][k]
			if best == NoRoute || d < bestDist || (d == bestDist && nb < best) {
				best, bestDist = nb, d
			}
		}
		next[i] = best
	}
	return &Tree{sink: sink, nextHop: next, hops: hops}
}

// Sink returns the tree's sink node.
func (t *Tree) Sink() int { return t.sink }

// Len returns the number of nodes the tree covers.
func (t *Tree) Len() int { return len(t.nextHop) }

// NextHop returns the next hop from node i toward the sink, and whether
// one exists (false at the sink itself and for disconnected nodes).
func (t *Tree) NextHop(i int) (int, bool) {
	if i < 0 || i >= len(t.nextHop) || t.nextHop[i] == NoRoute {
		return NoRoute, false
	}
	return t.nextHop[i], true
}

// Hops returns node i's hop count to the sink (-1 if unreachable).
func (t *Tree) Hops(i int) int {
	if i < 0 || i >= len(t.hops) {
		return -1
	}
	return t.hops[i]
}

// Path returns the node sequence from i to the sink, inclusive of both
// endpoints, or nil if i has no route.
func (t *Tree) Path(i int) []int {
	if i == t.sink {
		return []int{i}
	}
	if i < 0 || i >= len(t.hops) || t.hops[i] < 0 {
		return nil
	}
	path := make([]int, 0, t.hops[i]+1)
	cur := i
	for cur != t.sink {
		path = append(path, cur)
		nh, ok := t.NextHop(cur)
		if !ok {
			return nil
		}
		cur = nh
	}
	return append(path, t.sink)
}

// OnPath reports whether node b lies on node a's path to the sink
// (excluding a itself).
func (t *Tree) OnPath(a, b int) bool {
	for _, n := range t.Path(a) {
		if n == b && n != a {
			return true
		}
	}
	return false
}

// AddrMap translates between a node's low-power and high-power radio
// addresses (paper Section 3: "BCP needs to be able to map the low-power
// and high-power radio addresses for the receiver"). Our simulated
// platforms use one logical index per node, but the protocol goes through
// this map so that split address spaces remain supported.
type AddrMap struct {
	lowToHigh map[int]int
	highToLow map[int]int
}

// NewAddrMap builds an address map from explicit pairs.
func NewAddrMap(pairs map[int]int) (*AddrMap, error) {
	m := &AddrMap{
		lowToHigh: make(map[int]int, len(pairs)),
		highToLow: make(map[int]int, len(pairs)),
	}
	for low, high := range pairs {
		if _, dup := m.highToLow[high]; dup {
			return nil, fmt.Errorf("routing: high address %d mapped twice", high)
		}
		m.lowToHigh[low] = high
		m.highToLow[high] = low
	}
	return m, nil
}

// IdentityAddrMap maps each of n nodes to itself on both radios.
func IdentityAddrMap(n int) *AddrMap {
	pairs := make(map[int]int, n)
	for i := 0; i < n; i++ {
		pairs[i] = i
	}
	m, err := NewAddrMap(pairs)
	if err != nil {
		// Unreachable: identity pairs cannot collide.
		panic(err)
	}
	return m
}

// High returns the high-power address of a low-power address.
func (m *AddrMap) High(low int) (int, bool) {
	h, ok := m.lowToHigh[low]
	return h, ok
}

// Low returns the low-power address of a high-power address.
func (m *AddrMap) Low(high int) (int, bool) {
	l, ok := m.highToLow[high]
	return l, ok
}

// Shortcut returns the farthest node along tree's path from node i to the
// sink that is within wifiRange of i — the steady state of Section 3's
// route-optimization learning (the sender hears its packet forwarded and
// adopts the last forwarder it can reach directly). It returns i's tree
// next hop when no farther node is reachable, and NoRoute when i has no
// route at all.
func Shortcut(tree *Tree, layout *topo.Layout, i int, wifiRange units.Meters) int {
	path := tree.Path(i)
	if len(path) < 2 {
		return NoRoute
	}
	best := path[1]
	for _, n := range path[2:] {
		if topo.InRange(layout.Position(i), layout.Position(n), wifiRange) {
			best = n
		} else {
			break
		}
	}
	return best
}

// Learner tracks per-node high-power next hops with optional shortcut
// learning. Before any burst, the high-power route copies the low-power
// tree (Section 3: "we advocate using the existing routes over the
// low-power radios initially"); after a node's first burst it learns the
// shortcut when learning is enabled.
type Learner struct {
	tree      *Tree
	layout    *topo.Layout
	wifiRange units.Meters
	enabled   bool
	learned   map[int]int
}

// NewLearner builds a learner over the sensor tree.
func NewLearner(tree *Tree, layout *topo.Layout, wifiRange units.Meters, enabled bool) *Learner {
	return &Learner{
		tree:      tree,
		layout:    layout,
		wifiRange: wifiRange,
		enabled:   enabled,
		learned:   make(map[int]int),
	}
}

// NextHop returns node i's current high-power next hop.
func (l *Learner) NextHop(i int) (int, bool) {
	if nh, ok := l.learned[i]; ok {
		return nh, true
	}
	return l.tree.NextHop(i)
}

// ObserveBurst records that node i completed a burst, triggering shortcut
// learning when enabled.
func (l *Learner) ObserveBurst(i int) {
	if !l.enabled {
		return
	}
	if _, done := l.learned[i]; done {
		return
	}
	if sc := Shortcut(l.tree, l.layout, i, l.wifiRange); sc != NoRoute {
		l.learned[i] = sc
	}
}

// Learned reports whether node i has adopted a shortcut.
func (l *Learner) Learned(i int) bool {
	_, ok := l.learned[i]
	return ok
}
