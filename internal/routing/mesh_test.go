package routing

import (
	"testing"
	"testing/quick"

	"bulktx/internal/topo"
)

func TestBuildMeshGrid(t *testing.T) {
	l := gridLayout(t)
	m, err := BuildMesh(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 36 {
		t.Fatalf("Len = %d, want 36", m.Len())
	}
	// Hop counts are symmetric on an undirected graph.
	for a := 0; a < 36; a += 7 {
		for b := 0; b < 36; b += 5 {
			if m.Hops(a, b) != m.Hops(b, a) {
				t.Errorf("Hops(%d,%d)=%d != Hops(%d,%d)=%d",
					a, b, m.Hops(a, b), b, a, m.Hops(b, a))
			}
		}
	}
	// Corner to far corner: 10 grid hops.
	if got := m.Hops(0, 35); got != 10 {
		t.Errorf("Hops(0,35) = %d, want 10", got)
	}
	if got := m.Hops(5, 5); got != 0 {
		t.Errorf("Hops(self) = %d, want 0", got)
	}
}

func TestMeshNextHopWalk(t *testing.T) {
	l := gridLayout(t)
	m, err := BuildMesh(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Walking next hops from 35 to 0 takes exactly Hops steps.
	cur, steps := 35, 0
	for cur != 0 {
		nh, ok := m.NextHop(cur, 0)
		if !ok {
			t.Fatalf("no next hop from %d", cur)
		}
		cur = nh
		steps++
		if steps > 36 {
			t.Fatal("walk did not terminate")
		}
	}
	if steps != m.Hops(35, 0) {
		t.Errorf("walk took %d steps, Hops says %d", steps, m.Hops(35, 0))
	}
}

func TestMeshEdgeCases(t *testing.T) {
	l := gridLayout(t)
	m, err := BuildMesh(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.NextHop(3, 3); ok {
		t.Error("NextHop to self returned a route")
	}
	if _, ok := m.NextHop(-1, 3); ok {
		t.Error("NextHop from invalid node returned a route")
	}
	if _, ok := m.NextHop(3, 99); ok {
		t.Error("NextHop to invalid node returned a route")
	}
	if got := m.Hops(-1, 3); got != -1 {
		t.Errorf("Hops invalid = %d, want -1", got)
	}
}

func TestMeshDisconnected(t *testing.T) {
	l := topo.NewLayout([]topo.Position{{X: 0}, {X: 1000}})
	m, err := BuildMesh(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.NextHop(0, 1); ok {
		t.Error("route across partition")
	}
	if got := m.Hops(0, 1); got != -1 {
		t.Errorf("Hops across partition = %d, want -1", got)
	}
}

func TestBuildMeshErrors(t *testing.T) {
	if _, err := BuildMesh(nil, 40); err == nil {
		t.Error("nil layout accepted")
	}
	l := gridLayout(t)
	if _, err := BuildMesh(l, 0); err == nil {
		t.Error("zero range accepted")
	}
}

// Property: every mesh next hop reduces the hop count by exactly one.
func TestMeshNextHopProgress(t *testing.T) {
	l := gridLayout(t)
	m, err := BuildMesh(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		from, to := int(a)%36, int(b)%36
		if from == to {
			return true
		}
		nh, ok := m.NextHop(from, to)
		if !ok {
			return false
		}
		return m.Hops(nh, to) == m.Hops(from, to)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the mesh's route toward any destination agrees with a tree
// built at that destination.
func TestMeshAgreesWithTree(t *testing.T) {
	l := gridLayout(t)
	m, err := BuildMesh(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	f := func(dst uint8) bool {
		d := int(dst) % 36
		tree, err := BuildTree(l, d, 40)
		if err != nil {
			return false
		}
		for i := 0; i < 36; i++ {
			if i == d {
				continue
			}
			mh, okM := m.NextHop(i, d)
			th, okT := tree.NextHop(i)
			if okM != okT || mh != th {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
