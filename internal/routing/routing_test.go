package routing

import (
	"testing"
	"testing/quick"

	"bulktx/internal/topo"
	"bulktx/internal/units"
)

func gridLayout(t *testing.T) *topo.Layout {
	t.Helper()
	l, err := topo.Grid(36, 200)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuildTreePaperGrid(t *testing.T) {
	l := gridLayout(t)
	tree, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Sink() != 0 || tree.Len() != 36 {
		t.Fatalf("sink=%d len=%d", tree.Sink(), tree.Len())
	}
	// Sink has no next hop.
	if _, ok := tree.NextHop(0); ok {
		t.Error("sink has a next hop")
	}
	if tree.Hops(0) != 0 {
		t.Errorf("sink hops = %d", tree.Hops(0))
	}
	// Far corner (node 35) is 10 grid hops away (5 right + 5 down).
	if got := tree.Hops(35); got != 10 {
		t.Errorf("far corner hops = %d, want 10", got)
	}
	// Every non-sink node has a next hop one hop closer.
	for i := 1; i < 36; i++ {
		nh, ok := tree.NextHop(i)
		if !ok {
			t.Fatalf("node %d has no route", i)
		}
		if tree.Hops(nh) != tree.Hops(i)-1 {
			t.Errorf("node %d next hop %d has hops %d, want %d",
				i, nh, tree.Hops(nh), tree.Hops(i)-1)
		}
	}
}

func TestBuildTreeDeterministic(t *testing.T) {
	l := gridLayout(t)
	a, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.Len(); i++ {
		na, _ := a.NextHop(i)
		nb, _ := b.NextHop(i)
		if na != nb {
			t.Fatalf("node %d: non-deterministic next hop %d vs %d", i, na, nb)
		}
	}
}

func TestBuildTreeErrors(t *testing.T) {
	l := gridLayout(t)
	if _, err := BuildTree(nil, 0, 40); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := BuildTree(l, -1, 40); err == nil {
		t.Error("negative sink accepted")
	}
	if _, err := BuildTree(l, 99, 40); err == nil {
		t.Error("out-of-range sink accepted")
	}
	if _, err := BuildTree(l, 0, 0); err == nil {
		t.Error("zero range accepted")
	}
}

func TestPathTerminatesAtSink(t *testing.T) {
	l := gridLayout(t)
	tree, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	p := tree.Path(35)
	if len(p) != 11 {
		t.Fatalf("path length %d, want 11 (10 hops)", len(p))
	}
	if p[0] != 35 || p[len(p)-1] != 0 {
		t.Errorf("path endpoints %d..%d, want 35..0", p[0], p[len(p)-1])
	}
	if got := tree.Path(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Path(sink) = %v", got)
	}
}

func TestPathDisconnected(t *testing.T) {
	l := topo.NewLayout([]topo.Position{{X: 0}, {X: 1000}})
	tree, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p := tree.Path(1); p != nil {
		t.Errorf("Path of disconnected node = %v, want nil", p)
	}
	if _, ok := tree.NextHop(1); ok {
		t.Error("disconnected node has next hop")
	}
	if tree.Hops(1) != -1 {
		t.Errorf("Hops = %d, want -1", tree.Hops(1))
	}
}

func TestOnPath(t *testing.T) {
	l := gridLayout(t)
	tree, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	p := tree.Path(35)
	for _, mid := range p[1:] {
		if !tree.OnPath(35, mid) {
			t.Errorf("OnPath(35, %d) = false for path member", mid)
		}
	}
	if tree.OnPath(35, 35) {
		t.Error("OnPath includes the node itself")
	}
}

func TestAddrMap(t *testing.T) {
	m, err := NewAddrMap(map[int]int{1: 101, 2: 102})
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := m.High(1); !ok || h != 101 {
		t.Errorf("High(1) = %d,%v", h, ok)
	}
	if l, ok := m.Low(102); !ok || l != 2 {
		t.Errorf("Low(102) = %d,%v", l, ok)
	}
	if _, ok := m.High(9); ok {
		t.Error("High(9) found")
	}
	if _, err := NewAddrMap(map[int]int{1: 5, 2: 5}); err == nil {
		t.Error("duplicate high address accepted")
	}
}

func TestIdentityAddrMap(t *testing.T) {
	m := IdentityAddrMap(4)
	for i := 0; i < 4; i++ {
		if h, ok := m.High(i); !ok || h != i {
			t.Errorf("High(%d) = %d,%v", i, h, ok)
		}
	}
}

func TestShortcutLinearTopology(t *testing.T) {
	// Section 2.2 scenario: 6 nodes, 40 m apart, sink at node 5 (200 m
	// from node 0). Sensor radio: 5 hops; Cabletron at 250 m: direct.
	l, err := topo.Line(6, 40)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(l, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := Shortcut(tree, l, 0, 250); got != 5 {
		t.Errorf("Shortcut at 250 m = %d, want sink 5", got)
	}
	// 100 m wifi range: node 0 reaches node 2 (80 m) but not 3 (120 m).
	if got := Shortcut(tree, l, 0, 100); got != 2 {
		t.Errorf("Shortcut at 100 m = %d, want 2", got)
	}
	// Range below one hop: falls back to the tree next hop.
	if got := Shortcut(tree, l, 0, 40); got != 1 {
		t.Errorf("Shortcut at 40 m = %d, want tree next hop 1", got)
	}
	// Sink has no shortcut.
	if got := Shortcut(tree, l, 5, 250); got != NoRoute {
		t.Errorf("Shortcut(sink) = %d, want NoRoute", got)
	}
}

func TestLearner(t *testing.T) {
	l, err := topo.Line(6, 40)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(l, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	on := NewLearner(tree, l, 250, true)
	// Before any burst: tree next hop.
	if nh, ok := on.NextHop(0); !ok || nh != 1 {
		t.Errorf("initial NextHop = %d,%v, want 1", nh, ok)
	}
	on.ObserveBurst(0)
	if !on.Learned(0) {
		t.Error("no shortcut learned after burst")
	}
	if nh, ok := on.NextHop(0); !ok || nh != 5 {
		t.Errorf("learned NextHop = %d,%v, want 5", nh, ok)
	}
	// Repeat observation is a no-op.
	on.ObserveBurst(0)
	if nh, _ := on.NextHop(0); nh != 5 {
		t.Error("second ObserveBurst changed the learned hop")
	}

	off := NewLearner(tree, l, 250, false)
	off.ObserveBurst(0)
	if off.Learned(0) {
		t.Error("disabled learner learned a shortcut")
	}
	if nh, _ := off.NextHop(0); nh != 1 {
		t.Errorf("disabled learner NextHop = %d, want 1", nh)
	}
}

// Property: on random connected layouts, every path reaches the sink in
// exactly Hops steps and hop counts decrease by one along it.
func TestTreePathsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		l, err := topo.Grid(25, 160) // 5x5, 40 m spacing: connected at 40 m
		if err != nil {
			return false
		}
		sink := int(seed%25+25) % 25
		tree, err := BuildTree(l, sink, 40)
		if err != nil {
			return false
		}
		for i := 0; i < l.Len(); i++ {
			p := tree.Path(i)
			if len(p) != tree.Hops(i)+1 {
				return false
			}
			for k := 0; k+1 < len(p); k++ {
				if tree.Hops(p[k+1]) != tree.Hops(p[k])-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: shortcuts never leave the path and never increase hop count.
func TestShortcutOnPathProperty(t *testing.T) {
	l, err := topo.Grid(36, 200)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(l, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	f := func(node uint8, rangeM uint8) bool {
		i := int(node) % 36
		if i == 0 {
			return true
		}
		r := units.Meters(40 + float64(rangeM))
		sc := Shortcut(tree, l, i, r)
		if sc == NoRoute {
			return false
		}
		return sc == mustNextHop(tree, i) || tree.OnPath(i, sc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustNextHop(tree *Tree, i int) int {
	nh, _ := tree.NextHop(i)
	return nh
}
