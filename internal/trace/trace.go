// Package trace is the simulator's per-node observability layer: a
// streaming probe that records where every joule and every packet goes
// during a run.
//
// The paper's argument rests on per-radio, per-state energy accounting
// — sleep/idle/rx/tx/wake costs are what justify bulk transfer over the
// high-power radio — so the probe records three complementary views:
//
//   - Per-node per-radio per-state energy and residency breakdowns
//     (built from the energy meters at the end of the run; they sum
//     back to the run's TotalEnergy).
//   - A stream of events: radio power-state transitions and packet
//     provenance (generation, per-hop forward, sink delivery, drops),
//     each provenance event carrying the latency since the packet's
//     previous hop.
//   - Periodic time-series samples of each radio's cumulative energy.
//
// Tracing is strictly opt-in and zero-cost when disabled: every probe
// call site in netsim, mac, radio and energy is guarded by a nil check
// (netsim wires the hooks only when a Scenario carries WithTrace), so
// the untraced hot path executes no extra instructions beyond those
// checks and fixed-seed results stay byte-identical to the untraced
// baselines.
package trace

import (
	"fmt"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/metrics"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// Options selects what a traced run records. The zero value records
// only the end-of-run per-node energy breakdowns — the cheapest useful
// configuration; event and sample streams are opt-in because their
// volume grows with simulated time.
type Options struct {
	// Packets enables packet-provenance events (generation, per-hop
	// forward, delivery, drops).
	Packets bool
	// States enables radio power-state transition events. State flips
	// happen on every frame, so this is the highest-volume stream.
	States bool
	// SampleEvery, when positive, records each radio's cumulative
	// energy (and current state) every interval of simulated time.
	SampleEvery time.Duration
	// MaxEvents caps the event log; once reached, further events are
	// dropped and Recording.Truncated is set. Zero means unlimited.
	MaxEvents int
}

// Kind labels a trace event.
type Kind uint8

// Trace event kinds.
const (
	// KindGenerated marks a packet's creation at its source.
	KindGenerated Kind = iota + 1
	// KindForwarded marks a packet passing through an intermediate
	// node (hop-by-hop forwarders and BCP store-and-forward alike).
	KindForwarded
	// KindDelivered marks a packet reaching its destination.
	KindDelivered
	// KindDropped marks a packet abandoned (buffer overflow, routing
	// failure, MAC retry exhaustion, radio shutdown).
	KindDropped
	// KindState marks a radio power-state transition.
	KindState
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGenerated:
		return "generated"
	case KindForwarded:
		return "forwarded"
	case KindDelivered:
		return "delivered"
	case KindDropped:
		return "dropped"
	case KindState:
		return "state"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace record. Kind discriminates which fields are
// meaningful: packet-provenance events carry Src/Dst/Seq/HopLatency,
// state events carry Radio/From/To, drops additionally carry Reason.
type Event struct {
	// At is the simulated time of the event.
	At time.Duration
	// Kind discriminates the record.
	Kind Kind
	// Node is where the event happened.
	Node int
	// Src, Dst and Seq identify the packet end-to-end (provenance
	// events only).
	Src, Dst int
	Seq      uint64
	// HopLatency is the time since the packet's previous provenance
	// event — per-hop latency for forwards, last-hop latency for
	// deliveries (zero at generation).
	HopLatency time.Duration
	// Radio names the radio of a state transition ("sensor", "wifi").
	Radio string
	// From and To are the power states of a KindState transition.
	From, To energy.State
	// Reason explains a KindDropped event ("buffer-full", "no-route",
	// "retry-limit", ...).
	Reason string
}

// Sample is one periodic time-series point: a radio's cumulative
// energy and current power state at a sampling instant.
type Sample struct {
	// At is the simulated sampling time.
	At time.Duration
	// Node and Radio identify the meter sampled.
	Node  int
	Radio string
	// Energy is the radio's cumulative charged energy at At.
	Energy units.Energy
	// State is the radio's power state at At.
	State energy.State
}

// Recording is the immutable result of a traced run.
type Recording struct {
	// Events is the recorded event stream in simulated-time order.
	Events []Event
	// Samples is the periodic energy time series in simulated-time
	// order (empty unless Options.SampleEvery was set).
	Samples []Sample
	// PerNode is the end-of-run energy breakdown, ordered by node
	// index (the same slice netsim surfaces as Result.PerNode).
	PerNode []metrics.NodeEnergy
	// Truncated reports that the event stream hit Options.MaxEvents
	// and later events were dropped.
	Truncated bool
}

// pktKey identifies a packet across hops for hop-latency tracking.
type pktKey struct {
	src int
	seq uint64
}

// meterRef is one registered radio meter.
type meterRef struct {
	node  int
	radio string
	m     *energy.Meter
}

// Collector is the live probe of one traced run. It is owned by the
// simulation goroutine and is not concurrency-safe, matching the
// scheduler's execution model. netsim creates one per traced run and
// threads it through the radio, MAC and forwarding layers; callers
// receive the finished Recording via Result.Trace.
type Collector struct {
	opts  Options
	clock func() sim.Time

	events    []Event
	samples   []Sample
	truncated bool

	lastHop map[pktKey]sim.Time
	meters  []meterRef
}

// NewCollector builds a collector reading simulated time from clock.
func NewCollector(opts Options, clock func() sim.Time) *Collector {
	c := &Collector{opts: opts, clock: clock}
	if opts.Packets {
		c.lastHop = make(map[pktKey]sim.Time)
	}
	return c
}

// Options returns the collector's configuration.
func (c *Collector) Options() Options { return c.opts }

// append records an event, honoring the MaxEvents cap.
func (c *Collector) append(ev Event) {
	if c.opts.MaxEvents > 0 && len(c.events) >= c.opts.MaxEvents {
		c.truncated = true
		return
	}
	c.events = append(c.events, ev)
}

// hopLatency returns the time since the packet's previous provenance
// event and advances (or, when final, clears) its hop clock.
func (c *Collector) hopLatency(key pktKey, now sim.Time, final bool) time.Duration {
	var lat time.Duration
	if prev, ok := c.lastHop[key]; ok {
		lat = now - prev
	}
	if final {
		delete(c.lastHop, key)
	} else {
		c.lastHop[key] = now
	}
	return lat
}

// PacketGenerated records a packet's creation at node.
func (c *Collector) PacketGenerated(node, src, dst int, seq uint64) {
	if !c.opts.Packets {
		return
	}
	now := c.clock()
	c.lastHop[pktKey{src, seq}] = now
	c.append(Event{At: now, Kind: KindGenerated, Node: node, Src: src, Dst: dst, Seq: seq})
}

// PacketForwarded records a packet transiting an intermediate node.
func (c *Collector) PacketForwarded(node, src, dst int, seq uint64) {
	if !c.opts.Packets {
		return
	}
	now := c.clock()
	c.append(Event{
		At: now, Kind: KindForwarded, Node: node, Src: src, Dst: dst, Seq: seq,
		HopLatency: c.hopLatency(pktKey{src, seq}, now, false),
	})
}

// PacketDelivered records a packet reaching its destination.
func (c *Collector) PacketDelivered(node, src, dst int, seq uint64) {
	if !c.opts.Packets {
		return
	}
	now := c.clock()
	c.append(Event{
		At: now, Kind: KindDelivered, Node: node, Src: src, Dst: dst, Seq: seq,
		HopLatency: c.hopLatency(pktKey{src, seq}, now, true),
	})
}

// PacketDropped records a packet abandoned at node for the given
// reason.
func (c *Collector) PacketDropped(node, src, dst int, seq uint64, reason string) {
	if !c.opts.Packets {
		return
	}
	now := c.clock()
	c.append(Event{
		At: now, Kind: KindDropped, Node: node, Src: src, Dst: dst, Seq: seq,
		HopLatency: c.hopLatency(pktKey{src, seq}, now, true),
		Reason:     reason,
	})
}

// StateChange records a radio power-state transition at node.
func (c *Collector) StateChange(node int, radio string, from, to energy.State) {
	if !c.opts.States {
		return
	}
	c.append(Event{
		At: c.clock(), Kind: KindState, Node: node,
		Radio: radio, From: from, To: to,
	})
}

// RegisterMeter adds a radio meter to the breakdown and sampling sets.
// netsim registers every attached radio in node order (sensor before
// wifi on dual-radio nodes), which fixes the order of PerNode and of
// the sample stream.
func (c *Collector) RegisterMeter(node int, radio string, m *energy.Meter) {
	c.meters = append(c.meters, meterRef{node: node, radio: radio, m: m})
}

// SampleInterval returns the configured sampling period (zero when
// sampling is disabled).
func (c *Collector) SampleInterval() time.Duration { return c.opts.SampleEvery }

// TakeSample appends one time-series point per registered meter at the
// current simulated time.
func (c *Collector) TakeSample() {
	now := c.clock()
	for _, ref := range c.meters {
		c.samples = append(c.samples, Sample{
			At: now, Node: ref.node, Radio: ref.radio,
			Energy: ref.m.Total(), State: ref.m.State(),
		})
	}
}

// Finish settles every registered meter and assembles the Recording:
// the event and sample streams plus the per-node breakdown in node
// order. Energies within one radio are taken from the meter's
// canonical-order snapshot, so TotalPerNode over the breakdown
// reproduces the run's TotalEnergy bit-stably.
func (c *Collector) Finish() *Recording {
	rec := &Recording{
		Events:    c.events,
		Samples:   c.samples,
		Truncated: c.truncated,
	}
	var cur *metrics.NodeEnergy
	for _, ref := range c.meters {
		if cur == nil || cur.Node != ref.node {
			rec.PerNode = append(rec.PerNode, metrics.NodeEnergy{Node: ref.node})
			cur = &rec.PerNode[len(rec.PerNode)-1]
		}
		re := metrics.RadioEnergy{Radio: ref.radio, Wakeups: ref.m.Wakeups()}
		for _, snap := range ref.m.Snapshot() {
			re.States = append(re.States, metrics.StateEnergy{
				State:  snap.State.String(),
				Energy: snap.Energy,
				Time:   snap.Time,
			})
			re.Total += snap.Energy
		}
		cur.Total += re.Total
		cur.Radios = append(cur.Radios, re)
	}
	return rec
}
