package trace

import (
	"testing"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/metrics"
	"bulktx/internal/sim"
)

// fakeClock is a manually advanced simulated clock.
type fakeClock struct{ now sim.Time }

func (f *fakeClock) read() sim.Time { return f.now }

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindGenerated: "generated",
		KindForwarded: "forwarded",
		KindDelivered: "delivered",
		KindDropped:   "dropped",
		KindState:     "state",
		Kind(99):      "Kind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

func TestHopLatencyTracking(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(Options{Packets: true}, clk.read)

	c.PacketGenerated(1, 1, 9, 42)
	clk.now = 10 * time.Millisecond
	c.PacketForwarded(2, 1, 9, 42)
	clk.now = 25 * time.Millisecond
	c.PacketDelivered(9, 1, 9, 42)

	rec := c.Finish()
	if len(rec.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(rec.Events))
	}
	wantLat := []time.Duration{0, 10 * time.Millisecond, 15 * time.Millisecond}
	wantKind := []Kind{KindGenerated, KindForwarded, KindDelivered}
	for i, ev := range rec.Events {
		if ev.Kind != wantKind[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKind[i])
		}
		if ev.HopLatency != wantLat[i] {
			t.Errorf("event %d hop latency = %v, want %v", i, ev.HopLatency, wantLat[i])
		}
		if ev.Src != 1 || ev.Dst != 9 || ev.Seq != 42 {
			t.Errorf("event %d identity = (%d,%d,%d), want (1,9,42)", i, ev.Src, ev.Dst, ev.Seq)
		}
	}

	// Delivery is final: the packet's hop clock is gone, so an aberrant
	// later event restarts from zero latency rather than measuring
	// against stale state.
	clk.now = 40 * time.Millisecond
	c.PacketForwarded(3, 1, 9, 42)
	rec = c.Finish()
	if lat := rec.Events[3].HopLatency; lat != 0 {
		t.Errorf("post-delivery forward latency = %v, want 0 (clock cleared)", lat)
	}
}

func TestDropClearsHopClock(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(Options{Packets: true}, clk.read)
	c.PacketGenerated(1, 1, 9, 7)
	clk.now = 5 * time.Millisecond
	c.PacketDropped(1, 1, 9, 7, "buffer-full")
	rec := c.Finish()
	if rec.Events[1].Reason != "buffer-full" {
		t.Errorf("drop reason = %q", rec.Events[1].Reason)
	}
	if rec.Events[1].HopLatency != 5*time.Millisecond {
		t.Errorf("drop latency = %v, want 5ms", rec.Events[1].HopLatency)
	}
	if len(c.lastHop) != 0 {
		t.Errorf("hop clock leaked %d entries after terminal event", len(c.lastHop))
	}
}

func TestOptionsGateStreams(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(Options{}, clk.read) // breakdowns only
	c.PacketGenerated(0, 0, 1, 1)
	c.StateChange(0, "sensor", energy.Idle, energy.Tx)
	if rec := c.Finish(); len(rec.Events) != 0 {
		t.Errorf("disabled streams recorded %d events", len(rec.Events))
	}

	c = NewCollector(Options{States: true}, clk.read)
	c.PacketGenerated(0, 0, 1, 1) // packets still off
	c.StateChange(0, "sensor", energy.Idle, energy.Tx)
	rec := c.Finish()
	if len(rec.Events) != 1 || rec.Events[0].Kind != KindState {
		t.Fatalf("states-only collector recorded %v", rec.Events)
	}
	if rec.Events[0].From != energy.Idle || rec.Events[0].To != energy.Tx {
		t.Errorf("state event = %+v", rec.Events[0])
	}
}

func TestMaxEventsTruncates(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(Options{Packets: true, MaxEvents: 2}, clk.read)
	for seq := uint64(0); seq < 5; seq++ {
		c.PacketGenerated(0, 0, 1, seq)
	}
	rec := c.Finish()
	if len(rec.Events) != 2 {
		t.Errorf("got %d events, want cap of 2", len(rec.Events))
	}
	if !rec.Truncated {
		t.Error("Truncated not set after hitting MaxEvents")
	}
}

func TestFinishGroupsBreakdownByNode(t *testing.T) {
	clk := &fakeClock{}
	profile := energy.Micaz()
	mkMeter := func() *energy.Meter { return energy.NewMeter(profile, clk.read) }

	// Node 0 with two radios, node 1 with one; drive some charges.
	s0, w0, s1 := mkMeter(), mkMeter(), mkMeter()
	c := NewCollector(Options{}, clk.read)
	c.RegisterMeter(0, "sensor", s0)
	c.RegisterMeter(0, "wifi", w0)
	c.RegisterMeter(1, "sensor", s1)

	s0.Transition(energy.Tx)
	s1.Transition(energy.Rx)
	clk.now = time.Second
	s0.Transition(energy.Idle)
	s1.Transition(energy.Idle)

	rec := c.Finish()
	if len(rec.PerNode) != 2 {
		t.Fatalf("got %d nodes, want 2", len(rec.PerNode))
	}
	n0 := rec.PerNode[0]
	if n0.Node != 0 || len(n0.Radios) != 2 {
		t.Fatalf("node 0 breakdown = %+v", n0)
	}
	if n0.Radios[0].Radio != "sensor" || n0.Radios[1].Radio != "wifi" {
		t.Errorf("radio order = %q, %q", n0.Radios[0].Radio, n0.Radios[1].Radio)
	}
	// 1 s of Tx at the Micaz profile.
	wantTx := profile.Tx.Over(time.Second)
	if got := n0.Radios[0].Total; got != wantTx {
		t.Errorf("node 0 sensor total = %v, want %v", got, wantTx)
	}
	if got := metrics.TotalPerNode(rec.PerNode); got != wantTx+profile.Rx.Over(time.Second) {
		t.Errorf("TotalPerNode = %v, want tx+rx second", got)
	}
	// Per-state entries carry residency and are canonically ordered.
	states := n0.Radios[0].States
	if len(states) == 0 || states[len(states)-1].State != "tx" {
		t.Fatalf("sensor states = %+v, want trailing tx entry", states)
	}
	if states[len(states)-1].Time != time.Second {
		t.Errorf("tx residency = %v, want 1s", states[len(states)-1].Time)
	}
}

func TestSamplesRecordRegisteredMeters(t *testing.T) {
	clk := &fakeClock{}
	m := energy.NewMeter(energy.Micaz(), clk.read)
	c := NewCollector(Options{SampleEvery: time.Second}, clk.read)
	c.RegisterMeter(3, "sensor", m)

	m.Transition(energy.Tx)
	clk.now = time.Second
	c.TakeSample()
	clk.now = 2 * time.Second
	c.TakeSample()

	rec := c.Finish()
	if len(rec.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(rec.Samples))
	}
	first := rec.Samples[0]
	if first.Node != 3 || first.Radio != "sensor" || first.State != energy.Tx {
		t.Errorf("sample = %+v", first)
	}
	if first.Energy <= 0 || rec.Samples[1].Energy <= first.Energy {
		t.Errorf("cumulative energy not increasing: %v then %v",
			first.Energy, rec.Samples[1].Energy)
	}
}
