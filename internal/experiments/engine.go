package experiments

import (
	"bulktx/internal/sweep"
)

// engine is the shared sweep executor behind every simulation figure
// and ablation: one process-wide worker pool plus a result cache.
// Figures that share grid cells (fig5/fig6 share every single-hop dual
// cell, fig8/fig9 every multi-hop one, and the delay figures reuse
// both) only simulate each cell once per process; the pool spreads the
// remaining cells over all cores.
var engine = &sweep.Pool{Cache: sweep.NewCache()}

// ConfigureEngine replaces the shared executor's concurrency limit
// (workers < 1 keeps runtime.NumCPU) and cache (nil selects a fresh
// in-memory cache; pass a sweep.NewDiskCache to persist results across
// processes). Call it before running experiments, not concurrently
// with them.
func ConfigureEngine(workers int, cache *sweep.Cache) {
	if cache == nil {
		cache = sweep.NewCache()
	}
	engine = &sweep.Pool{Workers: workers, Cache: cache}
}
