package experiments

import (
	"fmt"
	"time"

	"bulktx/internal/metrics"
	"bulktx/internal/netsim"
	"bulktx/internal/params"
	"bulktx/internal/sweep"
	"bulktx/internal/units"
)

// Scale trades fidelity for wall-clock time. Full reproduces the paper's
// exact scenario; Quick preserves every qualitative shape at a fraction
// of the cost (validated against Full in EXPERIMENTS.md).
type Scale struct {
	// Duration is the simulated run length.
	Duration time.Duration
	// Runs is the number of seeded repetitions per point.
	Runs int
	// BaseSeed seeds the repetitions (seed, seed+1, ...).
	BaseSeed int64
	// Senders are the swept sender counts.
	Senders []int
	// Bursts are the swept alpha-s* thresholds (sensor packets).
	Bursts []int
	// SHRate and MHRate are the per-sender rates for the single-hop and
	// multi-hop scenarios.
	SHRate, MHRate units.BitRate
}

// FullScale is the paper's configuration: 5000 s, 20 runs, 0.2 Kbps
// single-hop and 2 Kbps multi-hop, bursts 10-2500.
func FullScale() Scale {
	return Scale{
		Duration: params.SimDuration,
		Runs:     params.Runs,
		BaseSeed: 1,
		Senders:  []int{5, 10, 15, 20, 25, 30, 35},
		Bursts:   params.BurstSizes(),
		SHRate:   params.LowRate,
		MHRate:   params.HighRate,
	}
}

// QuickScale shrinks runs to seconds of wall-clock: 600 s simulated,
// 3 runs, 2 Kbps everywhere (so every burst size fires within the run),
// bursts 10-1000.
func QuickScale() Scale {
	return Scale{
		Duration: 600 * time.Second,
		Runs:     3,
		BaseSeed: 1,
		Senders:  []int{5, 15, 25, 35},
		Bursts:   []int{10, 100, 500, 1000},
		SHRate:   params.HighRate,
		MHRate:   params.HighRate,
	}
}

// Case selects the radio scenario of Section 4.1.
type Case int

// Simulation cases.
const (
	// SingleHop is Lucent 11 Mbps with sensor-equal range.
	SingleHop Case = iota + 1
	// MultiHop is Cabletron reaching the sink in one hop.
	MultiHop
)

// String names the case.
func (c Case) String() string {
	if c == MultiHop {
		return "MH"
	}
	return "SH"
}

// baseConfig builds the scenario config for a case.
func (s Scale) baseConfig(c Case, model netsim.Model, senders, burst int) netsim.Config {
	var cfg netsim.Config
	if c == MultiHop {
		cfg = netsim.MultiHopConfig(senders, burst, s.BaseSeed)
		cfg.Rate = s.MHRate
	} else {
		cfg = netsim.DefaultConfig(model, senders, burst, s.BaseSeed)
		cfg.Rate = s.SHRate
	}
	cfg.Model = model
	cfg.Duration = s.Duration
	if model != netsim.ModelDual {
		cfg.BurstPackets = 1 // unused but validated
	}
	return cfg
}

// sweepResult holds the summarized metrics of one (model, senders, burst)
// cell.
type sweepResult struct {
	goodput metrics.Summary
	normE   metrics.Summary
	idealE  metrics.Summary
	delay   time.Duration
}

func summarize(results []netsim.Result) sweepResult {
	g, e, ie, d := netsim.Summaries(results)
	return sweepResult{goodput: g, normE: e, idealE: ie, delay: d}
}

// dualSpec declares the figure's dual-radio grid: senders x bursts x
// seeds at the case's scenario.
func (s Scale) dualSpec(c Case) sweep.Spec {
	return sweep.Spec{
		Base:     s.baseConfig(c, netsim.ModelDual, s.Senders[0], s.Bursts[0]),
		Senders:  s.Senders,
		Bursts:   s.Bursts,
		Runs:     s.Runs,
		BaseSeed: s.BaseSeed,
	}
}

// baselineSpec declares the baseline-model curves (burst axis
// collapses for non-dual models).
func (s Scale) baselineSpec(c Case, models ...netsim.Model) sweep.Spec {
	return sweep.Spec{
		Base:     s.baseConfig(c, models[0], s.Senders[0], 0),
		Models:   models,
		Senders:  s.Senders,
		Runs:     s.Runs,
		BaseSeed: s.BaseSeed,
	}
}

// gridOutcome batches the dual grid plus any baseline curves into one
// parallel, cached sweep execution.
func (s Scale) gridOutcome(c Case, baselines ...netsim.Model) (*sweep.Outcome, error) {
	jobs, err := s.dualSpec(c).Jobs()
	if err != nil {
		return nil, err
	}
	if len(baselines) > 0 {
		bj, err := s.baselineSpec(c, baselines...).Jobs()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, bj...)
	}
	return engine.RunJobs(jobs)
}

// dualCell and baselineCell pull one summarized grid point out of an
// executed outcome.
func dualCell(out *sweep.Outcome, senders, burst int) sweepResult {
	return summarize(out.PointResults(sweep.Point{
		Model: netsim.ModelDual, Senders: senders, Burst: burst,
	}))
}

func baselineCell(out *sweep.Outcome, model netsim.Model, senders int) sweepResult {
	return summarize(out.PointResults(sweep.Point{Model: model, Senders: senders}))
}

// goodputFigure builds Figures 5 (SH) and 8 (MH).
func (s Scale) goodputFigure(c Case, title string) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  title,
		XLabel: "senders",
		YLabel: "goodput",
	}
	out, err := s.gridOutcome(c, netsim.ModelSensor, netsim.ModelWifi)
	if err != nil {
		return tbl, err
	}
	for _, burst := range s.Bursts {
		series := metrics.Series{Label: fmt.Sprintf("DualRadio-%d", burst)}
		for _, n := range s.Senders {
			r := dualCell(out, n, burst)
			series.X = append(series.X, float64(n))
			series.Y = append(series.Y, r.goodput)
		}
		tbl.Series = append(tbl.Series, series)
	}
	for _, model := range []netsim.Model{netsim.ModelSensor, netsim.ModelWifi} {
		series := metrics.Series{Label: modelLabel(model)}
		for _, n := range s.Senders {
			r := baselineCell(out, model, n)
			series.X = append(series.X, float64(n))
			series.Y = append(series.Y, r.goodput)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return tbl, nil
}

// energyFigure builds Figures 6 (SH) and 9 (MH).
func (s Scale) energyFigure(c Case, title string) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  title,
		XLabel: "senders",
		YLabel: "normalized energy (J/Kbit)",
	}
	out, err := s.gridOutcome(c, netsim.ModelSensor)
	if err != nil {
		return tbl, err
	}
	for _, burst := range s.Bursts {
		series := metrics.Series{Label: fmt.Sprintf("DualRadio-%d", burst)}
		for _, n := range s.Senders {
			r := dualCell(out, n, burst)
			series.X = append(series.X, float64(n))
			series.Y = append(series.Y, r.normE)
		}
		tbl.Series = append(tbl.Series, series)
	}
	ideal := metrics.Series{Label: "Sensor-ideal"}
	header := metrics.Series{Label: "Sensor-header"}
	for _, n := range s.Senders {
		r := baselineCell(out, netsim.ModelSensor, n)
		ideal.X = append(ideal.X, float64(n))
		ideal.Y = append(ideal.Y, r.idealE)
		header.X = append(header.X, float64(n))
		header.Y = append(header.Y, r.normE)
	}
	tbl.Series = append(tbl.Series, ideal, header)
	return tbl, nil
}

// delayFigure builds Figures 7 (SH) and 10 (MH): normalized energy vs
// mean delay, one series per sender count, one point per burst size.
func (s Scale) delayFigure(c Case, title string) (metrics.Table, error) {
	rate := s.SHRate
	if c == MultiHop {
		rate = s.MHRate
	}
	tbl := metrics.Table{
		Title:  title,
		XLabel: "delay(s)",
		YLabel: "normalized energy (J/Kbit)",
	}
	out, err := s.gridOutcome(c)
	if err != nil {
		return tbl, err
	}
	for _, n := range s.Senders {
		series := metrics.Series{
			Label: fmt.Sprintf("%.1fKbps-%d", rate.BitsPerSecond()/1000, n),
		}
		for _, burst := range s.Bursts {
			r := dualCell(out, n, burst)
			series.X = append(series.X, r.delay.Seconds())
			series.Y = append(series.Y, r.normE)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return tbl, nil
}

// Fig5 reproduces Figure 5: single-hop goodput vs number of senders.
func Fig5(s Scale) (metrics.Table, error) {
	return s.goodputFigure(SingleHop, "Figure 5: SH goodput vs senders")
}

// Fig6 reproduces Figure 6: single-hop normalized energy vs senders.
func Fig6(s Scale) (metrics.Table, error) {
	return s.energyFigure(SingleHop, "Figure 6: SH normalized energy vs senders")
}

// Fig7 reproduces Figure 7: single-hop normalized energy vs delay.
func Fig7(s Scale) (metrics.Table, error) {
	return s.delayFigure(SingleHop, "Figure 7: SH normalized energy vs delay")
}

// Fig8 reproduces Figure 8: multi-hop goodput vs senders.
func Fig8(s Scale) (metrics.Table, error) {
	return s.goodputFigure(MultiHop, "Figure 8: MH goodput vs senders")
}

// Fig9 reproduces Figure 9: multi-hop normalized energy vs senders.
func Fig9(s Scale) (metrics.Table, error) {
	return s.energyFigure(MultiHop, "Figure 9: MH normalized energy vs senders")
}

// Fig10 reproduces Figure 10: multi-hop normalized energy vs delay.
func Fig10(s Scale) (metrics.Table, error) {
	return s.delayFigure(MultiHop, "Figure 10: MH normalized energy vs delay")
}

func modelLabel(m netsim.Model) string {
	switch m {
	case netsim.ModelSensor:
		return "Sensor"
	case netsim.ModelWifi:
		return "802.11"
	default:
		return m.String()
	}
}
