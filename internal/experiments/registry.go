package experiments

import (
	"fmt"
	"sort"

	"bulktx/internal/metrics"
)

// Runner regenerates one paper artifact at the given scale.
type Runner func(Scale) (metrics.Table, error)

// Registry maps experiment names to runners. Analytic artifacts ignore
// the scale.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(Scale) (metrics.Table, error) { return Table1(), nil },
		"fig1":   func(Scale) (metrics.Table, error) { return Fig1() },
		"fig2":   func(Scale) (metrics.Table, error) { return Fig2() },
		"fig3":   func(Scale) (metrics.Table, error) { return Fig3() },
		"fig4":   func(Scale) (metrics.Table, error) { return Fig4() },
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"fig11":  func(Scale) (metrics.Table, error) { return Fig11() },
		"fig12":  func(Scale) (metrics.Table, error) { return Fig12() },

		"ablation-shortcut":   AblationShortcut,
		"ablation-linger":     AblationLinger,
		"ablation-mingrant":   AblationMinGrant,
		"ablation-loss":       AblationLoss,
		"ablation-adaptive":   AblationAdaptive,
		"ablation-delaybound": AblationDelayBound,
		"ablation-topology":   AblationTopology,
		"ablation-churn":      AblationChurn,
	}
}

// Names returns the registry keys in stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run looks up and executes one experiment by name.
func Run(name string, s Scale) (metrics.Table, error) {
	runner, ok := Registry()[name]
	if !ok {
		return metrics.Table{}, fmt.Errorf("experiments: unknown experiment %q (have %v)",
			name, Names())
	}
	return runner(s)
}
