package experiments

import (
	"fmt"
	"sort"

	"bulktx/internal/metrics"
)

// Runner regenerates one paper artifact at the given scale.
type Runner func(Scale) (metrics.Table, error)

// Registry maps experiment names to runners. Analytic artifacts ignore
// the scale.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(Scale) (metrics.Table, error) { return Table1(), nil },
		"fig1":   func(Scale) (metrics.Table, error) { return Fig1() },
		"fig2":   func(Scale) (metrics.Table, error) { return Fig2() },
		"fig3":   func(Scale) (metrics.Table, error) { return Fig3() },
		"fig4":   func(Scale) (metrics.Table, error) { return Fig4() },
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"fig11":  func(Scale) (metrics.Table, error) { return Fig11() },
		"fig12":  func(Scale) (metrics.Table, error) { return Fig12() },

		"ablation-shortcut":   AblationShortcut,
		"ablation-linger":     AblationLinger,
		"ablation-mingrant":   AblationMinGrant,
		"ablation-loss":       AblationLoss,
		"ablation-adaptive":   AblationAdaptive,
		"ablation-delaybound": AblationDelayBound,
		"ablation-topology":   AblationTopology,
		"ablation-churn":      AblationChurn,
	}
}

// descriptions maps registry names to the paper artifact each runner
// reproduces and the method behind it. The README's "Reproducing the
// paper" walkthrough and the bcp-report generator both render from
// this table, so it is the single source of the name -> figure mapping.
var descriptions = map[string]string{
	"table1": "Paper Table 1 — the radio energy characteristics (analytic; read straight from the profile definitions).",
	"fig1":   "Paper Figure 1 — energy consumption vs data size on a single hop with free idling (Section 2 break-even model).",
	"fig2":   "Paper Figure 2 — break-even data size vs high-power idle time (Section 2 break-even model).",
	"fig3":   "Paper Figure 3 — break-even data size vs multi-hop forward progress (Section 2 break-even model).",
	"fig4":   "Paper Figure 4 — energy savings vs burst size under the wake-up/idle cost model (Section 2).",
	"fig5":   "Paper Figure 5 — single-hop goodput vs number of senders (simulated; dual-radio curves per burst size plus Sensor and 802.11 baselines).",
	"fig6":   "Paper Figure 6 — single-hop normalized energy (J/Kbit) vs senders (simulated; includes Sensor-ideal and Sensor-header charging policies).",
	"fig7":   "Paper Figure 7 — single-hop normalized energy vs mean delay, one point per burst size (simulated).",
	"fig8":   "Paper Figure 8 — multi-hop goodput vs senders (simulated; Cabletron reaches the sink in one hop).",
	"fig9":   "Paper Figure 9 — multi-hop normalized energy vs senders (simulated).",
	"fig10":  "Paper Figure 10 — multi-hop normalized energy vs mean delay (simulated).",
	"fig11":  "Paper Figure 11 — prototype energy per packet vs the alpha-s* threshold (mote emulation, Section 4.2).",
	"fig12":  "Paper Figure 12 — prototype energy per packet vs delay per packet (mote emulation, Section 4.2).",

	"ablation-shortcut":   "Beyond the paper: Section 3's route shortcut learning vs a plain wifi routing tree.",
	"ablation-linger":     "Beyond the paper: post-burst idle linger, quantifying Figure 4's \"idle\" scenario in simulation.",
	"ablation-mingrant":   "Beyond the paper: the give-up extension — aborting handshakes whose grant falls below s*.",
	"ablation-loss":       "Beyond the paper: goodput under injected sensor-channel loss.",
	"ablation-adaptive":   "Beyond the paper: static vs adaptive thresholds under 802.11 loss (the paper's future-work direction).",
	"ablation-delaybound": "Beyond the paper: the delay-bound extension rerouting overdue packets over the low-power radio.",
	"ablation-topology":   "Beyond the paper: normalized energy across deployment topologies (grid, uniform, clustered, linear).",
	"ablation-churn":      "Beyond the paper: goodput under random node failure and recovery.",
}

// Describe returns a one-line account of which paper artifact an
// experiment reproduces (or, for ablations, what question it answers).
// Unknown names return an empty string.
func Describe(name string) string { return descriptions[name] }

// Names returns the registry keys in stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run looks up and executes one experiment by name.
func Run(name string, s Scale) (metrics.Table, error) {
	runner, ok := Registry()[name]
	if !ok {
		return metrics.Table{}, fmt.Errorf("experiments: unknown experiment %q (have %v)",
			name, Names())
	}
	return runner(s)
}
