package experiments

import (
	"fmt"
	"time"

	"bulktx/internal/metrics"
	"bulktx/internal/netsim"
)

// Ablations probe the design choices DESIGN.md calls out. They are not
// paper artifacts but sensitivity studies around them. Each ablation
// compiles its whole configuration list up front and executes it as a
// single batch on the shared sweep engine, so the cells run in
// parallel and repeat runs hit the cache.

// AblationShortcut compares the multi-hop dual model routing bursts over
// a wifi tree (the evaluation default) against sensor-tree next hops
// upgraded by Section 3's shortcut learning.
func AblationShortcut(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: wifi-tree routing vs shortcut learning (MH, burst 100)",
		XLabel: "senders",
		YLabel: "normalized energy (J/Kbit)",
	}
	learners := []bool{false, true}
	var cfgs []netsim.Config
	for _, learner := range learners {
		for _, n := range s.Senders {
			cfg := s.baseConfig(MultiHop, netsim.ModelDual, n, 100)
			cfg.UseShortcutLearner = learner
			cfgs = append(cfgs, cfg)
		}
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	for i, learner := range learners {
		label := "wifi-tree"
		if learner {
			label = "shortcut-learner"
		}
		series := metrics.Series{Label: label}
		for j, n := range s.Senders {
			_, e, _, _ := netsim.Summaries(groups[i*len(s.Senders)+j])
			series.X = append(series.X, float64(n))
			series.Y = append(series.Y, e)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return tbl, nil
}

// AblationLinger sweeps the post-burst idle linger (Figure 4's "idle"
// scenario carried into the full simulation): energy rises as radios
// linger longer before shutting down.
func AblationLinger(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: post-burst linger (SH, burst 500, 15 senders)",
		XLabel: "linger(ms)",
		YLabel: "normalized energy (J/Kbit)",
	}
	lingers := []time.Duration{
		0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
	}
	var cfgs []netsim.Config
	for _, linger := range lingers {
		cfg := s.baseConfig(SingleHop, netsim.ModelDual, 15, 500)
		cfg.PostBurstLinger = linger
		cfgs = append(cfgs, cfg)
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	series := metrics.Series{Label: "DualRadio-500"}
	for i, linger := range lingers {
		_, e, _, _ := netsim.Summaries(groups[i])
		series.X = append(series.X, float64(linger.Milliseconds()))
		series.Y = append(series.Y, e)
	}
	tbl.Series = append(tbl.Series, series)
	return tbl, nil
}

// AblationMinGrant evaluates the paper's unevaluated extension: senders
// give up when the receiver grants less than the break-even amount.
func AblationMinGrant(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: give-up-below-s* extension (SH, burst 500)",
		XLabel: "senders",
		YLabel: "goodput",
	}
	minGrants := []int{0, 40}
	var cfgs []netsim.Config
	for _, minGrant := range minGrants {
		for _, n := range s.Senders {
			cfg := s.baseConfig(SingleHop, netsim.ModelDual, n, 500)
			cfg.MinGrantPackets = minGrant
			cfgs = append(cfgs, cfg)
		}
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	for i, minGrant := range minGrants {
		label := "accept-any-grant"
		if minGrant > 0 {
			label = fmt.Sprintf("decline-below-%d", minGrant)
		}
		series := metrics.Series{Label: label}
		for j, n := range s.Senders {
			g, _, _, _ := netsim.Summaries(groups[i*len(s.Senders)+j])
			series.X = append(series.X, float64(n))
			series.Y = append(series.Y, g)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return tbl, nil
}

// AblationAdaptive compares static burst thresholds against the adaptive
// extension (the paper's stated future work: adapt s* to observed
// retransmissions) under wifi loss, where the static threshold is
// miscalibrated.
func AblationAdaptive(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: static vs adaptive threshold under 802.11 loss (SH, 15 senders)",
		XLabel: "wifi loss",
		YLabel: "normalized energy (J/Kbit)",
	}
	alphas := []float64{0, 2}
	losses := []float64{0, 0.1, 0.3}
	var cfgs []netsim.Config
	for _, alpha := range alphas {
		for _, loss := range losses {
			cfg := s.baseConfig(SingleHop, netsim.ModelDual, 15, 500)
			cfg.WifiLoss = loss
			cfg.AdaptiveThresholdAlpha = alpha
			cfgs = append(cfgs, cfg)
		}
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	for i, alpha := range alphas {
		label := "static-500"
		if alpha > 0 {
			label = fmt.Sprintf("adaptive-alpha-%g", alpha)
		}
		series := metrics.Series{Label: label}
		for j, loss := range losses {
			_, e, _, _ := netsim.Summaries(groups[i*len(losses)+j])
			series.X = append(series.X, loss)
			series.Y = append(series.Y, e)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return tbl, nil
}

// AblationDelayBound measures the delay-constrained extension (paper
// Section 5 future work): how much energy does honoring a delay bound
// cost when traffic trickles below the threshold?
func AblationDelayBound(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: delay-bound reroute over the low-power radio (SH, 5 senders, burst 1000)",
		XLabel: "bound(s)",
		YLabel: "normalized energy (J/Kbit)",
	}
	bounds := []time.Duration{
		0, 60 * time.Second, 20 * time.Second, 5 * time.Second,
	}
	var cfgs []netsim.Config
	for _, bound := range bounds {
		cfg := s.baseConfig(SingleHop, netsim.ModelDual, 5, 1000)
		cfg.DelayBound = bound
		cfgs = append(cfgs, cfg)
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	energySeries := metrics.Series{Label: "energy"}
	delaySeries := metrics.Series{Label: "mean-delay(s)"}
	for i, bound := range bounds {
		_, e, _, d := netsim.Summaries(groups[i])
		x := bound.Seconds()
		energySeries.X = append(energySeries.X, x)
		energySeries.Y = append(energySeries.Y, e)
		delaySeries.X = append(delaySeries.X, x)
		delaySeries.Y = append(delaySeries.Y, point(d.Seconds()))
	}
	tbl.Series = append(tbl.Series, energySeries, delaySeries)
	return tbl, nil
}

// AblationLoss sweeps sensor-channel loss to exercise the wake-up
// retry machinery (handshake robustness).
func AblationLoss(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: sensor-channel loss vs goodput (SH, burst 100, 15 senders)",
		XLabel: "loss",
		YLabel: "goodput",
	}
	losses := []float64{0, 0.1, 0.2, 0.4}
	var cfgs []netsim.Config
	for _, loss := range losses {
		cfg := s.baseConfig(SingleHop, netsim.ModelDual, 15, 100)
		cfg.SensorLoss = loss
		cfgs = append(cfgs, cfg)
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	series := metrics.Series{Label: "DualRadio-100"}
	for i, loss := range losses {
		g, _, _, _ := netsim.Summaries(groups[i])
		series.X = append(series.X, loss)
		series.Y = append(series.Y, g)
	}
	tbl.Series = append(tbl.Series, series)
	return tbl, nil
}

// AblationTopology re-asks the paper's central energy question on every
// layout family the Scenario API offers: does bulk transmission keep
// beating the sensor network when the deployment is not a survey grid?
func AblationTopology(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: deployment topology vs normalized energy (SH, burst 500)",
		XLabel: "senders",
		YLabel: "normalized energy (J/Kbit)",
	}
	topologies := []string{netsim.TopoGrid, netsim.TopoClustered, netsim.TopoLinear}
	var cfgs []netsim.Config
	for _, topol := range topologies {
		for _, n := range s.Senders {
			cfg := s.baseConfig(SingleHop, netsim.ModelDual, n, 500)
			// Grid cells keep the default empty topology (and no
			// placement seed) so their cache keys coincide with the
			// default-grid runs every other figure already produces.
			if topol != netsim.TopoGrid {
				cfg.Topology = topol
			}
			if topol == netsim.TopoClustered {
				// Placement fixed across seeds and sender counts.
				cfg.TopologySeed = 1
			}
			cfgs = append(cfgs, cfg)
		}
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	for i, topol := range topologies {
		series := metrics.Series{Label: topol}
		for j, n := range s.Senders {
			_, e, _, _ := netsim.Summaries(groups[i*len(s.Senders)+j])
			series.X = append(series.X, float64(n))
			series.Y = append(series.Y, e)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return tbl, nil
}

// AblationChurn sweeps the node failure rate: goodput degrades
// gracefully (the sink survives; only traffic transiting failed nodes
// is lost) while the energy advantage persists.
func AblationChurn(s Scale) (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Ablation: node churn vs goodput (SH, burst 100, 15 senders)",
		XLabel: "failures per node-hour",
		YLabel: "goodput",
	}
	rates := []float64{0, 1, 2, 4, 8}
	var cfgs []netsim.Config
	for _, rate := range rates {
		cfg := s.baseConfig(SingleHop, netsim.ModelDual, 15, 100)
		cfg.ChurnRate = rate
		cfg.ChurnMeanDowntime = 30 * time.Second
		cfgs = append(cfgs, cfg)
	}
	groups, err := engine.Grid(cfgs, s.Runs, s.BaseSeed)
	if err != nil {
		return tbl, err
	}
	series := metrics.Series{Label: "DualRadio-100"}
	for i, rate := range rates {
		g, _, _, _ := netsim.Summaries(groups[i])
		series.X = append(series.X, rate)
		series.Y = append(series.Y, g)
	}
	tbl.Series = append(tbl.Series, series)
	return tbl, nil
}
