package experiments

import (
	"strings"
	"testing"
	"time"

	"bulktx/internal/metrics"
	"bulktx/internal/params"
)

// tinyScale keeps simulation experiments to fractions of a second.
func tinyScale() Scale {
	return Scale{
		Duration: 120 * time.Second,
		Runs:     2,
		BaseSeed: 1,
		Senders:  []int{5, 15},
		Bursts:   []int{10, 100},
		SHRate:   params.HighRate,
		MHRate:   params.HighRate,
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be regenerable: Table 1 and Figures 1-12.
	want := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	}
	reg := Registry()
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("registry missing paper artifact %q", name)
		}
	}
	if len(Names()) != len(reg) {
		t.Errorf("Names() length %d != registry %d", len(Names()), len(reg))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", tinyScale()); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestTable1Artifact(t *testing.T) {
	tbl := Table1()
	if !strings.Contains(tbl.Title, "Table 1") {
		t.Errorf("title %q", tbl.Title)
	}
	if len(tbl.Series) != 5 {
		t.Fatalf("series = %d, want 5 columns", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		if len(s.X) != 6 {
			t.Errorf("series %s has %d rows, want 6 radios", s.Label, len(s.X))
		}
	}
	out := tbl.Render()
	for _, want := range []string{"1400", "59.1", "1.328"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing Table 1 value %s", want)
		}
	}
}

func TestAnalyticFigures(t *testing.T) {
	tests := []struct {
		name   string
		run    func() (metrics.Table, error)
		series int
	}{
		{"fig1", Fig1, 6},
		{"fig2", Fig2, 7},
		{"fig3", Fig3, 6},
		{"fig4", Fig4, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tbl, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Series) != tt.series {
				t.Errorf("series = %d, want %d", len(tbl.Series), tt.series)
			}
			for _, s := range tbl.Series {
				if len(s.X) == 0 && tt.name != "fig3" {
					t.Errorf("series %s empty", s.Label)
				}
				if len(s.X) != len(s.Y) {
					t.Errorf("series %s x/y mismatch", s.Label)
				}
			}
		})
	}
}

func TestFig3InfeasibleCurvesStartLate(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Series {
		if !strings.Contains(s.Label, "Micaz") {
			continue
		}
		// Micaz combos are infeasible at fp=1-2: their curves must not
		// include those points.
		for _, x := range s.X {
			if x < 3 {
				t.Errorf("%s has a point at fp=%v, should start at >= 3", s.Label, x)
			}
		}
		if len(s.X) == 0 {
			t.Errorf("%s has no feasible points at all", s.Label)
		}
	}
}

func TestFig4SavingsWithinUnitInterval(t *testing.T) {
	tbl, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Series {
		for i, y := range s.Y {
			if y.Mean < 0 || y.Mean >= 1 {
				t.Errorf("%s point %d savings %v outside [0,1)", s.Label, i, y.Mean)
			}
		}
	}
}

func TestSimulationFigures(t *testing.T) {
	sc := tinyScale()
	tests := []struct {
		name   string
		run    Runner
		series int
	}{
		{"fig5", Fig5, 4}, // 2 bursts + Sensor + 802.11
		{"fig6", Fig6, 4}, // 2 bursts + Sensor-ideal + Sensor-header
		{"fig7", Fig7, 2}, // one per sender count
		{"fig8", Fig8, 4},
		{"fig9", Fig9, 4},
		{"fig10", Fig10, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tbl, err := tt.run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Series) != tt.series {
				t.Errorf("series = %d, want %d", len(tbl.Series), tt.series)
			}
			for _, s := range tbl.Series {
				if len(s.X) == 0 || len(s.X) != len(s.Y) {
					t.Errorf("series %s malformed (%d x, %d y)", s.Label, len(s.X), len(s.Y))
				}
			}
		})
	}
}

func TestGoodputFigureValuesAreRatios(t *testing.T) {
	tbl, err := Fig5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Series {
		for i, y := range s.Y {
			if y.Mean < 0 || y.Mean > 1.0001 {
				t.Errorf("%s point %d goodput %v outside [0,1]", s.Label, i, y.Mean)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	sc := tinyScale()
	for _, name := range []string{
		"ablation-shortcut", "ablation-linger", "ablation-mingrant", "ablation-loss",
		"ablation-adaptive", "ablation-delaybound", "ablation-topology",
		"ablation-churn",
	} {
		t.Run(name, func(t *testing.T) {
			tbl, err := Run(name, sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Series) == 0 {
				t.Error("no series")
			}
		})
	}
}

func TestCaseString(t *testing.T) {
	if SingleHop.String() != "SH" || MultiHop.String() != "MH" {
		t.Error("case names wrong")
	}
}
