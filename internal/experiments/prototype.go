package experiments

import (
	"bulktx/internal/metrics"
	"bulktx/internal/mote"
	"bulktx/internal/units"
)

// prototypeThresholds sweeps alpha-s* over the paper's 500-5000 B range
// in 250 B steps (fine enough to expose the packet-quantization teeth).
func prototypeThresholds() []units.ByteSize {
	var out []units.ByteSize
	for th := units.ByteSize(500); th <= 5000; th += 250 {
		out = append(out, th)
	}
	return out
}

// Fig11 reproduces Figure 11: prototype energy per packet vs threshold
// for the dual-radio scheme against the flat sensor-radio baseline.
func Fig11() (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Figure 11: Prototype energy per packet vs threshold (alpha-s*)",
		XLabel: "threshold(B)",
		YLabel: "energy per packet (uJ)",
	}
	dual := metrics.Series{Label: "Dual-Radio"}
	sensor := metrics.Series{Label: "Sensor Radio"}
	for _, th := range prototypeThresholds() {
		res, err := mote.Run(mote.DefaultConfig(th))
		if err != nil {
			return tbl, err
		}
		x := float64(th)
		dual.X = append(dual.X, x)
		dual.Y = append(dual.Y, point(res.DualEnergyPerPacket.Microjoules()))
		sensor.X = append(sensor.X, x)
		sensor.Y = append(sensor.Y, point(res.SensorEnergyPerPacket.Microjoules()))
	}
	tbl.Series = append(tbl.Series, dual, sensor)
	return tbl, nil
}

// Fig12 reproduces Figure 12: prototype energy per packet vs delay per
// packet (parametric in the threshold).
func Fig12() (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Figure 12: Prototype energy per packet vs delay per packet",
		XLabel: "delay(ms)",
		YLabel: "energy per packet (uJ)",
	}
	series := metrics.Series{Label: "Dual-Radio"}
	for _, th := range prototypeThresholds() {
		res, err := mote.Run(mote.DefaultConfig(th))
		if err != nil {
			return tbl, err
		}
		series.X = append(series.X, float64(res.MeanDelayPerPacket.Milliseconds()))
		series.Y = append(series.Y, point(res.DualEnergyPerPacket.Microjoules()))
	}
	tbl.Series = append(tbl.Series, series)
	return tbl, nil
}
