// Package experiments regenerates every table and figure of the paper's
// evaluation. Each runner returns a metrics.Table whose series mirror the
// paper's curves; cmd/bcp-experiments prints them and bench_test.go
// measures their regeneration cost.
//
// Analytic artifacts (Table 1, Figures 1-4) come from internal/analysis;
// simulation artifacts (Figures 5-10) from internal/netsim; prototype
// artifacts (Figures 11-12) from internal/mote.
package experiments

import (
	"fmt"
	"time"

	"bulktx/internal/analysis"
	"bulktx/internal/energy"
	"bulktx/internal/metrics"
	"bulktx/internal/params"
	"bulktx/internal/units"
)

// point wraps a single no-uncertainty value as a summary.
func point(v float64) metrics.Summary {
	return metrics.Summary{Mean: v, N: 1}
}

// Table1 reproduces the paper's Table 1 (radio energy characteristics).
func Table1() metrics.Table {
	tbl := metrics.Table{
		Title:  "Table 1: Energy characteristics (mW, mJ)",
		XLabel: "radio#",
		YLabel: "rate Mbps | Ptx mW | Prx mW | Pi mW | Ewakeup mJ",
		Series: []metrics.Series{
			{Label: "rate(Mbps)"}, {Label: "Ptx(mW)"}, {Label: "Prx(mW)"},
			{Label: "Pi(mW)"}, {Label: "Ewakeup(mJ)"},
		},
	}
	for i, p := range energy.Table1() {
		x := float64(i + 1)
		vals := []float64{
			p.Rate.BitsPerSecond() / 1e6,
			p.Tx.Milliwatts(),
			p.Rx.Milliwatts(),
			p.Idle.Milliwatts(),
			p.Wakeup.Millijoules(),
		}
		for s := range tbl.Series {
			tbl.Series[s].X = append(tbl.Series[s].X, x)
			tbl.Series[s].Y = append(tbl.Series[s].Y, point(vals[s]))
		}
	}
	return tbl
}

// fig1Sizes is the paper's 0.1-10 KB log-spaced x axis.
func fig1Sizes() []units.ByteSize {
	var out []units.ByteSize
	for kb := 0.1; kb <= 10.01; kb *= 1.25 {
		out = append(out, units.ByteSize(kb*1024))
	}
	return out
}

// Fig1 reproduces Figure 1: single-hop energy consumption vs data size
// for the three sensor radios alone and the three 802.11+Micaz duals.
func Fig1() (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Figure 1: Energy consumption vs data size (single hop, E_idle=0)",
		XLabel: "data(KB)",
		YLabel: "energy (mJ)",
	}
	sizes := fig1Sizes()

	for _, low := range energy.LowPowerProfiles() {
		m, err := analysis.NewModel(low, energy.Lucent11())
		if err != nil {
			return tbl, err
		}
		s := metrics.Series{Label: low.Name}
		for _, size := range sizes {
			s.X = append(s.X, size.Kilobytes())
			s.Y = append(s.Y, point(m.SensorEnergy(size).Millijoules()))
		}
		tbl.Series = append(tbl.Series, s)
	}
	for _, high := range energy.HighPowerProfiles() {
		m, err := analysis.NewModel(energy.Micaz(), high)
		if err != nil {
			return tbl, err
		}
		s := metrics.Series{Label: high.Name + "-Micaz"}
		for _, size := range sizes {
			s.X = append(s.X, size.Kilobytes())
			s.Y = append(s.Y, point(m.WifiEnergy(size).Millijoules()))
		}
		tbl.Series = append(tbl.Series, s)
	}
	return tbl, nil
}

// fig2Combos are the feasible dual combinations plotted in Figure 2.
func fig2Combos() [][2]energy.Profile {
	return [][2]energy.Profile{
		{energy.Mica(), energy.Cabletron()},
		{energy.Mica2(), energy.Cabletron()},
		{energy.Mica(), energy.Lucent2()},
		{energy.Mica2(), energy.Lucent2()},
		{energy.Mica(), energy.Lucent11()},
		{energy.Mica2(), energy.Lucent11()},
		{energy.Micaz(), energy.Lucent11()},
	}
}

// Fig2 reproduces Figure 2: break-even size vs total idle time.
func Fig2() (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Figure 2: Break-even data size vs idle time",
		XLabel: "idle(s)",
		YLabel: "s* (KB)",
	}
	var idles []time.Duration
	for ms := 1.0; ms <= 10000.1; ms *= 2 {
		idles = append(idles, time.Duration(ms*float64(time.Millisecond)))
	}
	for _, combo := range fig2Combos() {
		low, high := combo[0], combo[1]
		s := metrics.Series{Label: fmt.Sprintf("%s-%s", high.Name, low.Name)}
		for _, idle := range idles {
			m, err := analysis.NewModel(low, high, analysis.WithIdleTime(idle))
			if err != nil {
				return tbl, err
			}
			se, err := m.BreakEven()
			if err != nil {
				return tbl, err
			}
			s.X = append(s.X, idle.Seconds())
			s.Y = append(s.Y, point(se.Kilobytes()))
		}
		tbl.Series = append(tbl.Series, s)
	}
	return tbl, nil
}

// Fig3 reproduces Figure 3: break-even size vs forward progress for the
// 2 Mbps radios against all three sensor radios.
func Fig3() (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Figure 3: Break-even data size vs forward progress",
		XLabel: "fp(hops)",
		YLabel: "s* (KB)",
	}
	lows := energy.LowPowerProfiles()
	highs := []energy.Profile{energy.Cabletron(), energy.Lucent2()}
	for _, high := range highs {
		for _, low := range lows {
			m, err := analysis.NewModel(low, high)
			if err != nil {
				return tbl, err
			}
			s := metrics.Series{Label: fmt.Sprintf("%s-%s", high.Name, low.Name)}
			for fp := 1; fp <= 6; fp++ {
				se, err := m.BreakEvenMH(fp)
				if err != nil {
					continue // infeasible at this fp: the paper's curves start later
				}
				s.X = append(s.X, float64(fp))
				s.Y = append(s.Y, point(se.Kilobytes()))
			}
			tbl.Series = append(tbl.Series, s)
		}
	}
	return tbl, nil
}

// Fig4 reproduces Figure 4: fraction of energy saved by sending n
// packets in one burst vs n single-packet wake-ups, with and without a
// 100 ms post-burst idle.
func Fig4() (metrics.Table, error) {
	tbl := metrics.Table{
		Title:  "Figure 4: Energy savings vs burst size",
		XLabel: "packets",
		YLabel: "fraction of energy saved",
	}
	var ns []int
	for n := 1; n <= 1000; n *= 2 {
		ns = append(ns, n)
	}
	ns = append(ns, 1000)
	for _, variant := range []struct {
		suffix string
		idle   time.Duration
	}{
		{"", 0},
		{"-Idle", params.PostBurstIdle},
	} {
		for _, high := range energy.HighPowerProfiles() {
			m, err := analysis.NewModel(energy.Micaz(), high,
				analysis.WithIdleTime(variant.idle))
			if err != nil {
				return tbl, err
			}
			s := metrics.Series{Label: high.Name + variant.suffix}
			for _, n := range ns {
				sav, err := m.BurstSavings(n)
				if err != nil {
					return tbl, err
				}
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, point(sav))
			}
			tbl.Series = append(tbl.Series, s)
		}
	}
	return tbl, nil
}
