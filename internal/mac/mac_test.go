package mac

import (
	"errors"
	"testing"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/radio"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
)

// testLink builds n nodes on a 30 m-spaced line with sensor MACs.
func testLink(t *testing.T, n int, lossProb float64, p Params) (*sim.Scheduler, []*MAC) {
	t.Helper()
	sched := sim.NewScheduler(99)
	layout, err := topo.Line(n, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name:       "sensor",
		Profile:    energy.Micaz(),
		LossProb:   lossProb,
		HeaderSize: 11,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	macs := make([]*MAC, n)
	for i := 0; i < n; i++ {
		x, err := ch.Attach(radio.NodeID(i), radio.OverhearFree, true)
		if err != nil {
			t.Fatal(err)
		}
		macs[i], err = New(p, sched, x)
		if err != nil {
			t.Fatal(err)
		}
	}
	return sched, macs
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{SensorParams(), WifiParams()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v", p.Name, err)
		}
	}
	bad := SensorParams()
	bad.CWMin = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted CWMin=0")
	}
	bad = SensorParams()
	bad.CWMax = bad.CWMin - 1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted CWMax < CWMin")
	}
	bad = SensorParams()
	bad.SlotTime = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero slot time")
	}
	bad = SensorParams()
	bad.QueueCap = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero queue capacity")
	}
	bad = SensorParams()
	bad.AckSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero ack size")
	}
	bad = SensorParams()
	bad.RetryLimit = -1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted negative retry limit")
	}
}

func TestUnicastDeliveryWithAck(t *testing.T) {
	sched, macs := testLink(t, 2, 0, SensorParams())
	var delivered []radio.Frame
	macs[1].SetOnReceive(func(f radio.Frame) { delivered = append(delivered, f) })
	var sent []radio.Frame
	macs[0].SetOnSent(func(f radio.Frame) { sent = append(sent, f) })

	err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43, Payload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(delivered) != 1 || delivered[0].Payload != "x" {
		t.Fatalf("delivered %v", delivered)
	}
	if len(sent) != 1 {
		t.Fatalf("onSent fired %d times, want 1", len(sent))
	}
	st := macs[0].Stats()
	if st.Sent != 1 || st.Retries != 0 {
		t.Errorf("sender stats %+v", st)
	}
	if !macs[0].Idle() {
		t.Error("sender MAC not idle after completion")
	}
}

func TestQueuedFramesAllDelivered(t *testing.T) {
	sched, macs := testLink(t, 2, 0, SensorParams())
	got := 0
	macs[1].SetOnReceive(func(radio.Frame) { got++ })
	for i := 0; i < 20; i++ {
		if err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if got != 20 {
		t.Errorf("delivered %d frames, want 20", got)
	}
}

func TestRetransmissionUnderLoss(t *testing.T) {
	// 40% frame loss: retries must recover most frames.
	sched, macs := testLink(t, 2, 0.4, SensorParams())
	got := 0
	macs[1].SetOnReceive(func(radio.Frame) { got++ })
	dropped := 0
	macs[0].SetOnDrop(func(radio.Frame, DropReason) { dropped++ })
	const n = 50
	for i := 0; i < n; i++ {
		if err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if got+dropped < n {
		t.Errorf("got %d + dropped %d < sent %d", got, dropped, n)
	}
	if got < n*8/10 {
		t.Errorf("delivered only %d/%d under 40%% loss with retries", got, n)
	}
	if st := macs[0].Stats(); st.Retries == 0 {
		t.Error("no retries recorded under 40% loss")
	}
}

func TestRetryLimitDrops(t *testing.T) {
	// Receiver off: every attempt times out and the frame is dropped
	// after RetryLimit retries.
	sched := sim.NewScheduler(5)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name: "sensor", Profile: energy.Micaz(), HeaderSize: 11,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	xa, err := ch.Attach(0, radio.OverhearFree, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = ch.Attach(1, radio.OverhearFree, false); err != nil { // off
		t.Fatal(err)
	}
	m, err := New(SensorParams(), sched, xa)
	if err != nil {
		t.Fatal(err)
	}
	var reason DropReason
	drops := 0
	m.SetOnDrop(func(_ radio.Frame, r DropReason) { drops++; reason = r })
	if err := m.Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if drops != 1 || reason != DropRetryLimit {
		t.Errorf("drops=%d reason=%v, want 1 retry-limit", drops, reason)
	}
	if st := m.Stats(); st.Retries != uint64(SensorParams().RetryLimit)+1 {
		t.Errorf("Retries = %d, want %d", st.Retries, SensorParams().RetryLimit+1)
	}
}

func TestQueueOverflow(t *testing.T) {
	p := SensorParams()
	p.QueueCap = 4
	_, macs := testLink(t, 2, 0, p)
	// Synchronous rejection must notify through the error alone — the
	// onDrop callback is reserved for accepted-then-abandoned frames,
	// so callers handling both never double-count a rejection.
	callbacks := 0
	macs[0].SetOnDrop(func(_ radio.Frame, r DropReason) {
		if r == DropQueueFull {
			callbacks++
		}
	})
	var lastErr error
	rejected := 0
	for i := 0; i < 6; i++ {
		if err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			lastErr = err
			rejected++
		}
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Errorf("overflow error = %v, want ErrQueueFull", lastErr)
	}
	if rejected != 2 {
		t.Errorf("rejected sends = %d, want 2", rejected)
	}
	if callbacks != 0 {
		t.Errorf("onDrop fired %d times on synchronous rejection, want 0", callbacks)
	}
	if got := macs[0].Stats().Drops[DropQueueFull]; got != 2 {
		t.Errorf("Drops[DropQueueFull] = %d, want 2", got)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Kill the ack path by keeping the receiver's ack from arriving: use
	// heavy loss but deliver data: easiest deterministic approach is to
	// drop acks by powering the *sender's* receive path — instead we
	// simulate at the protocol level: send the same frame twice via a raw
	// transceiver and verify the MAC delivers once.
	sched := sim.NewScheduler(3)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name: "sensor", Profile: energy.Micaz(), HeaderSize: 11,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ch.Attach(0, radio.OverhearFree, true)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := ch.Attach(1, radio.OverhearFree, true)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(SensorParams(), sched, xb)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	m.SetOnReceive(func(radio.Frame) { got++ })

	f := radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43, Seq: 42}
	if err := raw.Transmit(f); err != nil {
		t.Fatal(err)
	}
	sched.After(50*time.Millisecond, func() {
		if err := raw.Transmit(f); err != nil {
			t.Error(err)
		}
	})
	sched.Run()
	if got != 1 {
		t.Errorf("delivered %d copies of a retransmitted frame, want 1", got)
	}
	if st := m.Stats(); st.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", st.Duplicates)
	}
}

func TestBroadcastNoAck(t *testing.T) {
	sched, macs := testLink(t, 3, 0, SensorParams())
	got := 0
	macs[0].SetOnReceive(func(radio.Frame) { got++ })
	got2 := 0
	macs[2].SetOnReceive(func(radio.Frame) { got2++ })
	// Node 1 is in range of 0 and 2.
	if err := macs[1].Send(radio.Frame{Kind: radio.KindControl, Dst: radio.Broadcast, Size: 27}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 || got2 != 1 {
		t.Errorf("broadcast delivered to %d/%d, want 1/1", got, got2)
	}
	// No acks should have been transmitted for broadcast.
	if st := macs[1].Transceiver().Channel().Stats(); st.Transmissions != 1 {
		t.Errorf("channel transmissions = %d, want 1 (no acks)", st.Transmissions)
	}
}

func TestContentionBothDeliver(t *testing.T) {
	// Nodes 0 and 2 both send to middle node 1; CSMA backoff must
	// eventually deliver both despite initial collisions.
	sched, macs := testLink(t, 3, 0, SensorParams())
	got := 0
	macs[1].SetOnReceive(func(radio.Frame) { got++ })
	for i := 0; i < 10; i++ {
		if err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			t.Fatal(err)
		}
		if err := macs[2].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if got != 20 {
		t.Errorf("delivered %d frames under contention, want 20", got)
	}
}

func TestFlushDropsQueue(t *testing.T) {
	sched, macs := testLink(t, 2, 0, SensorParams())
	dropped := 0
	macs[0].SetOnDrop(func(_ radio.Frame, r DropReason) {
		if r == DropRadioOff {
			dropped++
		}
	})
	for i := 0; i < 5; i++ {
		if err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			t.Fatal(err)
		}
	}
	macs[0].Flush()
	if dropped != 5 {
		t.Errorf("flush dropped %d, want 5", dropped)
	}
	if !macs[0].Idle() {
		t.Error("MAC not idle after flush")
	}
	// MAC must remain usable after a flush.
	got := 0
	macs[1].SetOnReceive(func(radio.Frame) { got++ })
	if err := macs[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 {
		t.Errorf("post-flush send delivered %d, want 1", got)
	}
}

func TestWifiParamsFasterThanSensor(t *testing.T) {
	// The DCF timing constants must be an order of magnitude tighter than
	// the sensor MAC's (the premise of fast bulk transfer).
	w, s := WifiParams(), SensorParams()
	if w.SlotTime >= s.SlotTime || w.SIFS >= s.SIFS || w.DIFS >= s.DIFS {
		t.Errorf("wifi timing not tighter: %+v vs %+v", w, s)
	}
}

func TestDCFDelivery(t *testing.T) {
	sched := sim.NewScheduler(11)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name: "wifi", Profile: energy.Lucent11(), Range: 40, HeaderSize: 58,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	var ms [2]*MAC
	for i := 0; i < 2; i++ {
		x, err := ch.Attach(radio.NodeID(i), radio.OverhearFull, true)
		if err != nil {
			t.Fatal(err)
		}
		if ms[i], err = New(WifiParams(), sched, x); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	ms[1].SetOnReceive(func(radio.Frame) { got++ })
	start := sched.Now()
	for i := 0; i < 10; i++ {
		if err := ms[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 1082}); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if got != 10 {
		t.Fatalf("delivered %d, want 10", got)
	}
	elapsed := sched.Now() - start
	// 10 x 1082 B at 11 Mbps is ~7.9 ms of airtime; MAC overhead should
	// keep the total well under 5x that.
	if elapsed > 40*time.Millisecond {
		t.Errorf("10-frame burst took %v, expected low MAC overhead", elapsed)
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	_, macs := testLink(t, 2, 0, SensorParams())
	st := macs[0].Stats()
	st.Drops[DropRetryLimit] = 999
	if macs[0].Stats().Drops[DropRetryLimit] == 999 {
		t.Error("Stats() exposes internal map")
	}
}

func TestDropReasonString(t *testing.T) {
	tests := []struct {
		r    DropReason
		want string
	}{
		{DropRetryLimit, "retry-limit"},
		{DropQueueFull, "queue-full"},
		{DropRadioOff, "radio-off"},
		{DropReason(77), "DropReason(77)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSendToOffRadioViaQueue(t *testing.T) {
	// Frames queued while the radio is off are dropped at sense time with
	// DropRadioOff.
	sched := sim.NewScheduler(5)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name: "wifi", Profile: energy.Lucent11(), Range: 40, HeaderSize: 58,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.Attach(0, radio.OverhearFull, false) // off
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(WifiParams(), sched, x)
	if err != nil {
		t.Fatal(err)
	}
	var reason DropReason
	m.SetOnDrop(func(_ radio.Frame, r DropReason) { reason = r })
	if err := m.Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 1082}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if reason != DropRadioOff {
		t.Errorf("drop reason = %v, want radio-off", reason)
	}
}
