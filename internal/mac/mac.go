// Package mac implements the two link layers of the paper's evaluation:
// a CSMA MAC for the sensor radio ("a simpler MAC layer that complies
// with MAC protocols for sensor platforms (e.g., no RTS/CTS)") and an
// IEEE 802.11-DCF-style MAC for the high-power radio (DIFS/SIFS timing,
// binary exponential backoff, link-layer acknowledgements, retry limit).
//
// Both are instances of one contention state machine differing only in
// their timing constants; neither uses RTS/CTS. The DCF model simplifies
// the standard in one documented way: backoff slots are not frozen while
// the medium is busy — the station re-samples a full backoff instead.
// Under the paper's traffic loads the observable effect (collision rate
// growth with contention) is preserved.
package mac

import (
	"errors"
	"fmt"
	"time"

	"bulktx/internal/radio"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// DropReason explains why the MAC abandoned a frame.
type DropReason int

// Drop reasons.
const (
	// DropRetryLimit means the retry limit was exhausted without an ack.
	DropRetryLimit DropReason = iota + 1
	// DropQueueFull means the transmit queue had no space.
	DropQueueFull
	// DropRadioOff means the radio was powered off with frames queued or
	// in flight.
	DropRadioOff
)

// String returns the reason name.
func (r DropReason) String() string {
	switch r {
	case DropRetryLimit:
		return "retry-limit"
	case DropQueueFull:
		return "queue-full"
	case DropRadioOff:
		return "radio-off"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// ErrQueueFull is returned by Send when the transmit queue is at capacity.
var ErrQueueFull = errors.New("mac: transmit queue full")

// Params are the timing and persistence constants of a contention MAC.
type Params struct {
	// Name labels the MAC in logs.
	Name string
	// SlotTime is the contention slot duration.
	SlotTime time.Duration
	// SIFS is the short interframe space (data -> ack turnaround).
	SIFS time.Duration
	// DIFS is the interframe space sensed idle before transmitting.
	DIFS time.Duration
	// CWMin and CWMax bound the contention window (slots).
	CWMin, CWMax int
	// RetryLimit is the number of retransmissions before dropping.
	RetryLimit int
	// AckSize is the on-air size of link-layer acks.
	AckSize units.ByteSize
	// AckTimeout is how long to wait for an ack before retrying; zero
	// derives SIFS + ack airtime + one slot of slack at Attach time.
	AckTimeout time.Duration
	// QueueCap bounds the transmit queue (frames).
	QueueCap int
}

// SensorParams returns the sensor-radio MAC constants: CC2420-class
// unslotted CSMA/CA with link-layer acks and a shallow contention window.
func SensorParams() Params {
	return Params{
		Name:       "sensor-csma",
		SlotTime:   320 * time.Microsecond, // 802.15.4 aUnitBackoffPeriod
		SIFS:       192 * time.Microsecond, // 802.15.4 t_ack turnaround
		DIFS:       640 * time.Microsecond,
		CWMin:      7,
		CWMax:      127,
		RetryLimit: 5,
		AckSize:    11, // ack frame: header-sized
		QueueCap:   64,
	}
}

// WifiParams returns IEEE 802.11b DCF constants.
func WifiParams() Params {
	return Params{
		Name:       "802.11-dcf",
		SlotTime:   20 * time.Microsecond,
		SIFS:       10 * time.Microsecond,
		DIFS:       50 * time.Microsecond,
		CWMin:      31,
		CWMax:      1023,
		RetryLimit: 7,
		AckSize:    38, // 14 B ack + PLCP preamble equivalent
		QueueCap:   256,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.SlotTime <= 0 || p.SIFS <= 0 || p.DIFS <= 0:
		return fmt.Errorf("mac %q: non-positive timing constants", p.Name)
	case p.CWMin < 1 || p.CWMax < p.CWMin:
		return fmt.Errorf("mac %q: invalid contention window [%d,%d]", p.Name, p.CWMin, p.CWMax)
	case p.RetryLimit < 0:
		return fmt.Errorf("mac %q: negative retry limit", p.Name)
	case p.AckSize <= 0:
		return fmt.Errorf("mac %q: non-positive ack size", p.Name)
	case p.QueueCap < 1:
		return fmt.Errorf("mac %q: queue capacity %d < 1", p.Name, p.QueueCap)
	}
	return nil
}

// Stats counts MAC-level outcomes.
type Stats struct {
	// Sent counts frames acknowledged (unicast) or transmitted
	// (broadcast).
	Sent uint64
	// Retries counts retransmission attempts.
	Retries uint64
	// Drops counts abandoned frames by reason.
	Drops map[DropReason]uint64
	// Received counts frames delivered to the upper layer.
	Received uint64
	// Duplicates counts suppressed duplicate receptions.
	Duplicates uint64
}

// MAC is a contention-based link layer over one transceiver.
type MAC struct {
	params Params
	sched  *sim.Scheduler
	xcvr   *radio.Transceiver

	// queue[head:] holds the frames waiting to transmit. Dequeuing
	// advances head instead of reslicing, so the backing array is reused
	// once drained rather than crawling forward and reallocating.
	queue       []radio.Frame
	head        int
	inflight    bool
	retries     int
	cw          int
	seq         uint64
	pendingAcks int

	ackTimer     sim.Timer
	pendingSense sim.Timer

	// ackQueue[ackHead:] holds committed link-layer acks awaiting their
	// SIFS gap, in fire order; fireAckFn is bound once so sendAck never
	// allocates. Entries fire strictly FIFO because every ack is
	// scheduled SIFS from its own (monotone) reception time.
	ackQueue  []radio.Frame
	ackHead   int
	fireAckFn func()

	lastSeq map[radio.NodeID]uint64
	stats   Stats

	onReceive func(radio.Frame)
	onSent    func(radio.Frame)
	onDrop    func(radio.Frame, DropReason)
}

// New binds a MAC to a transceiver. The transceiver's receive and
// tx-done callbacks are taken over by the MAC.
func New(params Params, sched *sim.Scheduler, xcvr *radio.Transceiver) (*MAC, error) {
	return NewPooled(params, sched, xcvr, nil)
}

// NewPooled is New drawing the MAC struct, queue arrays and bookkeeping
// maps from a per-run pool (nil pool falls back to plain allocation).
// The MAC behaves identically either way; the pool only changes where
// the memory comes from and lets Pool.Reset recycle it between runs.
func NewPooled(params Params, sched *sim.Scheduler, xcvr *radio.Transceiver, pool *Pool) (*MAC, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.AckTimeout == 0 {
		params.AckTimeout = params.SIFS +
			xcvr.Channel().Airtime(params.AckSize) +
			2*params.SlotTime
	}
	var m *MAC
	if pool != nil {
		m = pool.macs.Get()
		m.queue = pool.getQueue()
		m.ackQueue = pool.getQueue()
		m.lastSeq = pool.getSeqMap()
		m.stats = Stats{Drops: pool.getDropsMap()}
		pool.inUse = append(pool.inUse, m)
	} else {
		m = &MAC{
			lastSeq: make(map[radio.NodeID]uint64),
			stats:   Stats{Drops: make(map[DropReason]uint64)},
		}
	}
	m.params = params
	m.sched = sched
	m.xcvr = xcvr
	m.cw = params.CWMin
	m.ackTimer.Init(sched, m.onAckTimeout)
	m.pendingSense.Init(sched, m.senseAndTransmit)
	m.fireAckFn = m.fireAck
	xcvr.SetOnReceive(m.handleReceive)
	xcvr.SetOnTxDone(m.handleTxDone)
	return m, nil
}

// Params returns the MAC constants (with the derived ack timeout).
func (m *MAC) Params() Params { return m.params }

// Transceiver returns the bound radio.
func (m *MAC) Transceiver() *radio.Transceiver { return m.xcvr }

// Stats returns a copy of the MAC counters.
func (m *MAC) Stats() Stats {
	out := m.stats
	out.Drops = make(map[DropReason]uint64, len(m.stats.Drops))
	for k, v := range m.stats.Drops {
		out.Drops[k] = v
	}
	return out
}

// QueueLen returns the number of frames waiting (excluding in-flight).
func (m *MAC) QueueLen() int { return m.queueLen() }

func (m *MAC) queueLen() int { return len(m.queue) - m.head }

// dequeue removes and returns the head frame. Once the queue drains the
// backing array is reset and reused by later Sends; under saturation
// (never empty) the live region is periodically copied to the front so
// the dead prefix cannot grow without bound.
func (m *MAC) dequeue() radio.Frame {
	f := m.queue[m.head]
	m.queue[m.head] = radio.Frame{} // release the payload reference
	m.head++
	m.queue, m.head = compactQueue(m.queue, m.head)
	return f
}

// compactQueue reclaims a frame queue's consumed prefix: fully drained
// queues reset to the array start, and a dead prefix larger than the
// live remainder (past a small threshold) is compacted away.
func compactQueue(q []radio.Frame, head int) ([]radio.Frame, int) {
	if head == len(q) {
		return q[:0], 0
	}
	if head > 32 && head > len(q)-head {
		n := copy(q, q[head:])
		clear(q[n:])
		return q[:n], 0
	}
	return q, head
}

// SetOnReceive registers the upper-layer delivery callback.
func (m *MAC) SetOnReceive(fn func(radio.Frame)) { m.onReceive = fn }

// SetOnSent registers the successful-transmission callback.
func (m *MAC) SetOnSent(fn func(radio.Frame)) { m.onSent = fn }

// SetOnDrop registers the frame-abandoned callback.
func (m *MAC) SetOnDrop(fn func(radio.Frame, DropReason)) { m.onDrop = fn }

// Send enqueues a frame for transmission. The MAC assigns the sequence
// number. Unicast data and control frames are acknowledged and retried;
// broadcast frames are fire-and-forget.
//
// A full queue rejects the frame through the returned error alone (plus
// the DropQueueFull counter): the caller holding the frame is the one
// notified. The onDrop callback fires only for frames that were
// accepted and later abandoned, so a caller handling both the error
// and the callback never sees the same frame twice.
func (m *MAC) Send(f radio.Frame) error {
	if m.queueLen() >= m.params.QueueCap {
		m.stats.Drops[DropQueueFull]++
		return fmt.Errorf("%w: %q at %d frames", ErrQueueFull, m.params.Name, m.queueLen())
	}
	m.seq++
	f.Seq = m.seq
	m.queue = append(m.queue, f)
	m.kick()
	return nil
}

// Flush drops all queued frames (radio going off). In-flight frames are
// allowed to finish.
func (m *MAC) Flush() {
	for _, f := range m.queue[m.head:] {
		m.stats.Drops[DropRadioOff]++
		if m.onDrop != nil {
			m.onDrop(f, DropRadioOff)
		}
	}
	clear(m.queue[m.head:]) // release the payload references
	m.queue = m.queue[:0]
	m.head = 0
	m.pendingSense.Stop()
	m.ackTimer.Stop()
	m.inflight = false
}

// Idle reports whether the MAC has nothing queued, in flight, or owed —
// including link-layer acks it has committed to send. Power management
// must not turn the radio off while an ack is pending, or the peer
// retries into the void.
func (m *MAC) Idle() bool {
	return !m.inflight && m.queueLen() == 0 && !m.pendingSense.Armed() &&
		m.pendingAcks == 0
}

// kick starts the channel-access procedure if work is pending.
func (m *MAC) kick() {
	if m.inflight || m.queueLen() == 0 || m.pendingSense.Armed() {
		return
	}
	m.inflight = true
	m.retries = 0
	m.cw = m.params.CWMin
	m.scheduleAttempt(false)
}

// scheduleAttempt arms the sense timer after DIFS plus, when backing off,
// a uniformly random number of contention slots.
func (m *MAC) scheduleAttempt(backoff bool) {
	wait := m.params.DIFS
	if backoff {
		slots := m.sched.Rand().Intn(m.cw + 1)
		wait += time.Duration(slots) * m.params.SlotTime
	}
	m.pendingSense.Reset(wait)
}

// senseAndTransmit performs the carrier-sense check and either transmits
// or backs off.
func (m *MAC) senseAndTransmit() {
	if m.queueLen() == 0 {
		m.inflight = false
		return
	}
	if !m.xcvr.On() {
		m.dropHead(DropRadioOff)
		return
	}
	if m.xcvr.Busy() {
		// Medium busy: resample a backoff (no CW growth — the window
		// widens only on failed transmissions, per DCF).
		m.scheduleAttempt(true)
		return
	}
	if idle, ok := m.xcvr.IdleFor(); ok && idle < m.params.DIFS {
		// The medium has not yet been idle a full DIFS: deferring here is
		// what protects SIFS-spaced acks from being trampled.
		m.pendingSense.Reset(m.params.DIFS - idle)
		return
	}
	f := m.queue[m.head]
	if err := m.xcvr.Transmit(f); err != nil {
		// The transceiver raced into a state we cannot use (e.g. an ack
		// transmission in progress); back off and retry.
		m.scheduleAttempt(true)
		return
	}
}

// handleTxDone fires when our transmission leaves the air.
func (m *MAC) handleTxDone(f radio.Frame) {
	if f.Kind == radio.KindAck {
		// Ack transmissions are not queued; resume any pending attempt.
		return
	}
	if m.queueLen() == 0 || m.queue[m.head].Seq != f.Seq {
		return
	}
	if !f.IsUnicast() {
		m.completeHead()
		return
	}
	m.ackTimer.Reset(m.params.AckTimeout)
}

// onAckTimeout retries the head frame or drops it past the retry limit.
func (m *MAC) onAckTimeout() {
	if m.queueLen() == 0 {
		m.inflight = false
		return
	}
	m.retries++
	m.stats.Retries++
	if m.retries > m.params.RetryLimit {
		m.dropHead(DropRetryLimit)
		return
	}
	m.growCW()
	m.scheduleAttempt(true)
}

func (m *MAC) growCW() {
	m.cw = min(2*m.cw+1, m.params.CWMax)
}

// completeHead reports success for the head frame and moves on.
func (m *MAC) completeHead() {
	f := m.dequeue()
	m.stats.Sent++
	m.inflight = false
	if m.onSent != nil {
		m.onSent(f)
	}
	m.kick()
}

// dropHead abandons the head frame and moves on.
func (m *MAC) dropHead(reason DropReason) {
	f := m.dequeue()
	m.stats.Drops[reason]++
	m.inflight = false
	if m.onDrop != nil {
		m.onDrop(f, reason)
	}
	m.kick()
}

// handleReceive processes a clean reception from the transceiver.
func (m *MAC) handleReceive(f radio.Frame) {
	switch f.Kind {
	case radio.KindAck:
		m.handleAck(f)
	default:
		m.handleData(f)
	}
}

// handleAck matches an ack against the in-flight frame.
func (m *MAC) handleAck(f radio.Frame) {
	if !m.inflight || m.queueLen() == 0 {
		return
	}
	head := m.queue[m.head]
	if f.Src != head.Dst || f.Seq != head.Seq {
		return
	}
	if !m.ackTimer.Stop() {
		// Ack arrived outside the timeout window (frame still on air or
		// already retried); ignore.
		return
	}
	m.completeHead()
}

// handleData acknowledges unicast frames, suppresses duplicates and
// delivers new frames upward.
func (m *MAC) handleData(f radio.Frame) {
	if f.IsUnicast() {
		m.sendAck(f)
		if last, seen := m.lastSeq[f.Src]; seen && last == f.Seq {
			m.stats.Duplicates++
			return
		}
		m.lastSeq[f.Src] = f.Seq
	}
	m.stats.Received++
	if m.onReceive != nil {
		m.onReceive(f)
	}
}

// sendAck transmits a link-layer ack after SIFS, regardless of carrier
// (per 802.11: the SIFS gap guarantees priority over new transmissions).
func (m *MAC) sendAck(data radio.Frame) {
	ack := radio.Frame{
		Kind: radio.KindAck,
		Dst:  data.Src,
		Size: m.params.AckSize,
		Seq:  data.Seq,
	}
	m.pendingAcks++
	m.ackQueue = append(m.ackQueue, ack)
	m.sched.After(m.params.SIFS, m.fireAckFn)
}

// fireAck transmits the oldest committed ack once its SIFS gap elapses.
func (m *MAC) fireAck() {
	ack := m.ackQueue[m.ackHead]
	m.ackQueue[m.ackHead] = radio.Frame{}
	m.ackHead++
	m.ackQueue, m.ackHead = compactQueue(m.ackQueue, m.ackHead)
	m.pendingAcks--
	if !m.xcvr.On() {
		return
	}
	// If we are mid-transmission the ack is lost; the sender retries.
	_ = m.xcvr.Transmit(ack)
}
