package mac

import (
	"testing"

	"bulktx/internal/energy"
	"bulktx/internal/radio"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
)

// BenchmarkUnicastExchange measures a full data+ack MAC exchange between
// two nodes, including carrier sensing, DIFS deferral and timers.
func BenchmarkUnicastExchange(b *testing.B) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Line(2, 30)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name: "sensor", Profile: energy.Micaz(), HeaderSize: 11,
	}, layout)
	if err != nil {
		b.Fatal(err)
	}
	var ms [2]*MAC
	for i := 0; i < 2; i++ {
		x, err := ch.Attach(radio.NodeID(i), radio.OverhearFree, true)
		if err != nil {
			b.Fatal(err)
		}
		if ms[i], err = New(SensorParams(), sched, x); err != nil {
			b.Fatal(err)
		}
	}
	got := 0
	ms[1].SetOnReceive(func(radio.Frame) { got++ })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ms[0].Send(radio.Frame{Kind: radio.KindData, Dst: 1, Size: 43}); err != nil {
			b.Fatal(err)
		}
		sched.Run()
	}
	if got != b.N {
		b.Fatalf("delivered %d/%d", got, b.N)
	}
}
