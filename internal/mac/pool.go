package mac

import (
	"bulktx/internal/mempool"
	"bulktx/internal/radio"
)

// Pool recycles the per-run allocations of MAC instances across
// repeated simulations: the MAC structs themselves, the frame-queue
// backing arrays (transmit and ack queues), and the per-peer
// bookkeeping maps. MACs built with NewPooled register themselves;
// Reset harvests their storage once the run owning them is finished.
// Not safe for concurrent use; sweep workers each own one.
type Pool struct {
	macs   mempool.Slab[MAC]
	queues [][]radio.Frame
	seqs   []map[radio.NodeID]uint64
	drops  []map[DropReason]uint64
	inUse  []*MAC
}

// getQueue hands out a recycled (cleared) frame-queue backing array, or
// an empty slice that the MAC's appends will grow.
func (p *Pool) getQueue() []radio.Frame {
	if n := len(p.queues); n > 0 {
		q := p.queues[n-1]
		p.queues = p.queues[:n-1]
		return q
	}
	return nil
}

// getSeqMap hands out a recycled (cleared) duplicate-suppression map.
func (p *Pool) getSeqMap() map[radio.NodeID]uint64 {
	if n := len(p.seqs); n > 0 {
		m := p.seqs[n-1]
		p.seqs = p.seqs[:n-1]
		return m
	}
	return make(map[radio.NodeID]uint64)
}

// getDropsMap hands out a recycled (cleared) drop-counter map.
func (p *Pool) getDropsMap() map[DropReason]uint64 {
	if n := len(p.drops); n > 0 {
		m := p.drops[n-1]
		p.drops = p.drops[:n-1]
		return m
	}
	return make(map[DropReason]uint64)
}

// Reset reclaims the storage of every MAC built from the pool since the
// previous reset: queue backing arrays are cleared (releasing payload
// references) and kept, maps are cleared and kept, and the MAC slab
// rewinds. Callers must not touch the harvested MACs afterwards.
func (p *Pool) Reset() {
	for _, m := range p.inUse {
		if q := m.queue[:cap(m.queue)]; cap(q) > 0 {
			clear(q)
			p.queues = append(p.queues, q[:0])
		}
		if q := m.ackQueue[:cap(m.ackQueue)]; cap(q) > 0 {
			clear(q)
			p.queues = append(p.queues, q[:0])
		}
		clear(m.lastSeq)
		p.seqs = append(p.seqs, m.lastSeq)
		clear(m.stats.Drops)
		p.drops = append(p.drops, m.stats.Drops)
	}
	p.inUse = p.inUse[:0]
	p.macs.Reset()
}
