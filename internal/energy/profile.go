// Package energy models radio energy consumption: the per-radio power
// profiles of Table 1, a radio power-state machine, and per-node energy
// meters that integrate power over state residency.
//
// Everything downstream — the break-even analysis (paper Section 2), the
// network simulation (Section 4.1) and the mote emulation (Section 4.2) —
// draws its numbers from the profiles defined here.
package energy

import (
	"fmt"

	"bulktx/internal/units"
)

// Class distinguishes the two radio families of a dual-radio platform.
type Class int

// Radio classes.
const (
	// LowPower is a sensor radio (Mica/Mica2/Micaz class).
	LowPower Class = iota + 1
	// HighPower is an IEEE 802.11 radio.
	HighPower
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case LowPower:
		return "low-power"
	case HighPower:
		return "high-power"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile is one row of the paper's Table 1 plus the PHY attributes
// (range) given in Section 2.2.
type Profile struct {
	// Name identifies the radio (e.g. "Micaz", "Lucent (11Mbps)").
	Name string
	// Class is LowPower for sensor radios, HighPower for 802.11 radios.
	Class Class
	// Rate is the radio bit rate.
	Rate units.BitRate
	// Tx is transmission power draw.
	Tx units.Power
	// Rx is reception power draw.
	Rx units.Power
	// Idle is the idle-listening power draw. Table 1 reports N/A for
	// Mica2/Micaz; the paper's sensor model treats sensor idling as a
	// base cost outside the analysis, so those profiles carry Idle = Rx
	// (CC1000/CC2420 idle-listening draws receive-level current).
	Idle units.Power
	// Wakeup is the fixed energy charged for an off->on transition
	// (Table 1 E_wakeup; zero where not applicable).
	Wakeup units.Energy
	// Range is the nominal transmission range (Section 2.2).
	Range units.Meters
}

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("energy: profile missing name")
	case p.Class != LowPower && p.Class != HighPower:
		return fmt.Errorf("energy: profile %q has invalid class %d", p.Name, p.Class)
	case p.Rate <= 0:
		return fmt.Errorf("energy: profile %q has non-positive rate %v", p.Name, p.Rate)
	case p.Tx <= 0 || p.Rx <= 0:
		return fmt.Errorf("energy: profile %q has non-positive tx/rx power", p.Name)
	case p.Idle < 0 || p.Wakeup < 0:
		return fmt.Errorf("energy: profile %q has negative idle/wakeup", p.Name)
	case p.Range <= 0:
		return fmt.Errorf("energy: profile %q has non-positive range %v", p.Name, p.Range)
	}
	return nil
}

// TxEnergyPerBit is the energy the transmitter spends per payload bit on
// the air (excludes the receiver side).
func (p Profile) TxEnergyPerBit() units.Energy {
	return units.Energy(p.Tx.Watts() / p.Rate.BitsPerSecond())
}

// LinkEnergyPerBit is the combined transmitter+receiver energy per bit,
// i.e. (P_tx + P_rx) / R as used throughout the paper's Section 2.
func (p Profile) LinkEnergyPerBit() units.Energy {
	return units.Energy((p.Tx.Watts() + p.Rx.Watts()) / p.Rate.BitsPerSecond())
}

// Table 1 of the paper (powers in mW, wake-up energies in mJ), plus the
// Section 2.2 ranges. Idle for Mica2/Micaz follows the Rx draw (see the
// Profile.Idle doc comment).
func table1() []Profile {
	mw := units.Milliwatt
	mj := units.Millijoule
	return []Profile{
		{
			Name: "Cabletron", Class: HighPower, Rate: 2 * units.Mbps,
			Tx: 1400 * mw, Rx: 1000 * mw, Idle: 830 * mw,
			Wakeup: 1.328 * mj, Range: 250,
		},
		{
			Name: "Lucent (2Mbps)", Class: HighPower, Rate: 2 * units.Mbps,
			Tx: 1327.2 * mw, Rx: 966.9 * mw, Idle: 843.7 * mw,
			Wakeup: 0.6 * mj, Range: 250,
		},
		{
			Name: "Lucent (11Mbps)", Class: HighPower, Rate: 11 * units.Mbps,
			Tx: 1346.1 * mw, Rx: 900.6 * mw, Idle: 739.4 * mw,
			Wakeup: 0.6 * mj, Range: 40,
		},
		{
			Name: "Mica", Class: LowPower, Rate: 40 * units.Kbps,
			Tx: 81 * mw, Rx: 30 * mw, Idle: 30 * mw,
			Wakeup: 0, Range: 40,
		},
		{
			Name: "Mica2", Class: LowPower, Rate: 38.4 * units.Kbps,
			Tx: 42 * mw, Rx: 29 * mw, Idle: 29 * mw,
			Wakeup: 0, Range: 40,
		},
		{
			Name: "Micaz", Class: LowPower, Rate: 250 * units.Kbps,
			Tx: 51 * mw, Rx: 59.1 * mw, Idle: 59.1 * mw,
			Wakeup: 0, Range: 40,
		},
	}
}

// Table1 returns a fresh copy of the paper's Table 1 profiles in paper
// order.
func Table1() []Profile {
	return table1()
}

// ProfileByName retrieves a Table 1 profile by its exact name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range table1() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("energy: unknown radio profile %q", name)
}

// Convenience accessors for the six Table 1 radios. Each returns a copy.
func Cabletron() Profile { return mustProfile("Cabletron") }

// Lucent2 returns the Lucent 2 Mbps profile.
func Lucent2() Profile { return mustProfile("Lucent (2Mbps)") }

// Lucent11 returns the Lucent 11 Mbps profile.
func Lucent11() Profile { return mustProfile("Lucent (11Mbps)") }

// Mica returns the Mica profile.
func Mica() Profile { return mustProfile("Mica") }

// Mica2 returns the Mica2 profile.
func Mica2() Profile { return mustProfile("Mica2") }

// Micaz returns the Micaz profile.
func Micaz() Profile { return mustProfile("Micaz") }

// HighPowerProfiles returns the Table 1 IEEE 802.11 radios.
func HighPowerProfiles() []Profile {
	return filterProfiles(HighPower)
}

// LowPowerProfiles returns the Table 1 sensor radios.
func LowPowerProfiles() []Profile {
	return filterProfiles(LowPower)
}

func filterProfiles(c Class) []Profile {
	var out []Profile
	for _, p := range table1() {
		if p.Class == c {
			out = append(out, p)
		}
	}
	return out
}

func mustProfile(name string) Profile {
	p, err := ProfileByName(name)
	if err != nil {
		// Unreachable: the names above are table1 literals. A typo here is
		// a programming error caught by the package tests.
		panic(err)
	}
	return p
}
