package energy

import (
	"fmt"
	"time"

	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// State is a radio power state.
type State int

// Radio power states. Off draws nothing; WakingUp models the off->on
// transition (charged as fixed energy, with idle draw over the latency
// accounted separately by the radio layer's timing).
const (
	Off State = iota + 1
	WakingUp
	Idle
	Rx
	Tx
	// Overhear is a ledger-only pseudo-state: fixed charges for
	// receptions not addressed to the node land here so evaluation models
	// can separate overhearing cost from useful reception (the paper's
	// Sensor-ideal vs Sensor-header distinction).
	Overhear
)

// States lists every power state in a fixed canonical order. Callers
// aggregating per-state ledgers (e.g. summing float energies across
// states) must iterate in this order, not in map order, so that totals
// are bit-identical across runs.
func States() []State {
	return []State{Off, WakingUp, Idle, Rx, Tx, Overhear}
}

// String returns the state name.
func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case WakingUp:
		return "waking-up"
	case Idle:
		return "idle"
	case Rx:
		return "rx"
	case Tx:
		return "tx"
	case Overhear:
		return "overhear"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Meter integrates a single radio's energy use over time. The radio layer
// drives it with state transitions; the meter charges the profile's power
// draw for the residency in each state and fixed wake-up energy on
// Off -> WakingUp transitions.
//
// Meters are owned by a single simulation goroutine and are not
// concurrency-safe, matching the scheduler's execution model.
type Meter struct {
	profile Profile
	clock   func() sim.Time

	state   State
	since   sim.Time
	total   units.Energy
	byState map[State]units.Energy
	inState map[State]time.Duration
	wakeups int

	// Charging policy: the paper's "Sensor-ideal" model charges only
	// tx/rx on sensor radios (idle/overhear free). Free states draw zero.
	freeStates map[State]bool

	// onTransition, when set, observes every effective state change.
	// Nil costs a single pointer check per Transition — the trace
	// subsystem's zero-cost-when-disabled contract rests on it.
	onTransition func(from, to State)
}

// NewMeter returns a meter for the given profile starting in state Off at
// the clock's current time.
func NewMeter(p Profile, clock func() sim.Time) *Meter {
	return &Meter{
		profile:    p,
		clock:      clock,
		state:      Off,
		since:      clock(),
		byState:    make(map[State]units.Energy),
		inState:    make(map[State]time.Duration),
		freeStates: make(map[State]bool),
	}
}

// SetFreeState marks a state as drawing no energy (used by the
// Sensor-ideal evaluation model which ignores sensor idling costs).
func (m *Meter) SetFreeState(s State, free bool) {
	m.settle()
	m.freeStates[s] = free
}

// Profile returns the radio profile the meter charges against.
func (m *Meter) Profile() Profile { return m.profile }

// State returns the current radio state.
func (m *Meter) State() State { return m.state }

// SetOnTransition registers an observer fired on every effective state
// change (from != to), after the previous state's residency has been
// charged. Nil disables observation; a disabled meter costs only a nil
// check on the transition path.
func (m *Meter) SetOnTransition(fn func(from, to State)) { m.onTransition = fn }

// Transition moves the radio to state s, charging for the residency in
// the previous state. Transitioning Off -> WakingUp charges the profile's
// fixed wake-up energy.
func (m *Meter) Transition(s State) {
	m.settle()
	if m.state == Off && s == WakingUp {
		m.addEnergy(WakingUp, m.profile.Wakeup)
		m.wakeups++
	}
	from := m.state
	m.state = s
	if m.onTransition != nil && s != from {
		m.onTransition(from, s)
	}
}

// ChargeEnergy adds a fixed energy amount attributed to state s; used for
// overhearing charges and externally computed costs.
func (m *Meter) ChargeEnergy(s State, e units.Energy) {
	m.settle()
	m.addEnergy(s, e)
}

// Total returns the total energy consumed up to the clock's current time.
func (m *Meter) Total() units.Energy {
	m.settle()
	return m.total
}

// ByState returns a copy of the per-state energy breakdown up to now.
func (m *Meter) ByState() map[State]units.Energy {
	m.settle()
	out := make(map[State]units.Energy, len(m.byState))
	for k, v := range m.byState {
		out[k] = v
	}
	return out
}

// TimeIn returns the cumulative residency in state s up to now.
func (m *Meter) TimeIn(s State) time.Duration {
	m.settle()
	return m.inState[s]
}

// StateSnapshot is one power state's accumulated ledger entry: the
// energy charged to the state and the time spent in it.
type StateSnapshot struct {
	// State is the power state the entry describes.
	State State
	// Energy is the total energy charged to the state so far.
	Energy units.Energy
	// Time is the cumulative residency in the state so far (zero for
	// ledger-only pseudo-states such as Overhear).
	Time time.Duration
}

// Snapshot settles the meter and returns its per-state ledger in
// canonical state order (see States), including only states that have
// accumulated energy or residency. The fixed order makes snapshots
// safe to aggregate with float arithmetic: summing entries in slice
// order is bit-stable across runs, unlike iterating the ByState map.
func (m *Meter) Snapshot() []StateSnapshot {
	m.settle()
	out := make([]StateSnapshot, 0, len(m.byState))
	for _, s := range States() {
		e, t := m.byState[s], m.inState[s]
		if e == 0 && t == 0 {
			continue
		}
		out = append(out, StateSnapshot{State: s, Energy: e, Time: t})
	}
	return out
}

// Wakeups returns the number of Off -> WakingUp transitions.
func (m *Meter) Wakeups() int { return m.wakeups }

// settle charges the current state's power draw for the time elapsed
// since the last settlement.
func (m *Meter) settle() {
	now := m.clock()
	if now < m.since {
		// Clock regression would corrupt the ledger; the scheduler never
		// moves backwards, so treat it as "no time elapsed".
		m.since = now
		return
	}
	d := now - m.since
	m.since = now
	if d == 0 {
		return
	}
	m.inState[m.state] += d
	if m.freeStates[m.state] {
		return
	}
	m.addEnergy(m.state, m.draw(m.state).Over(d))
}

func (m *Meter) addEnergy(s State, e units.Energy) {
	if e <= 0 {
		return
	}
	m.total += e
	m.byState[s] += e
}

// draw maps a state to the profile's power draw.
func (m *Meter) draw(s State) units.Power {
	switch s {
	case Off:
		return 0
	case WakingUp:
		// The fixed wake-up energy covers the transition; the residency
		// itself is additionally charged at idle draw, modelling the
		// radio settling in an active (but not yet useful) state.
		return m.profile.Idle
	case Idle:
		return m.profile.Idle
	case Rx:
		return m.profile.Rx
	case Tx:
		return m.profile.Tx
	default:
		return 0
	}
}
