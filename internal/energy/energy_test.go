package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bulktx/internal/sim"
	"bulktx/internal/units"
)

func TestTable1MatchesPaper(t *testing.T) {
	tests := []struct {
		name       string
		profile    Profile
		rate       units.BitRate
		txMW, rxMW float64
		idleMW     float64
		wakeupMJ   float64
	}{
		{"Cabletron", Cabletron(), 2 * units.Mbps, 1400, 1000, 830, 1.328},
		{"Lucent (2Mbps)", Lucent2(), 2 * units.Mbps, 1327.2, 966.9, 843.7, 0.6},
		{"Lucent (11Mbps)", Lucent11(), 11 * units.Mbps, 1346.1, 900.6, 739.4, 0.6},
		{"Mica", Mica(), 40 * units.Kbps, 81, 30, 30, 0},
		{"Mica2", Mica2(), 38.4 * units.Kbps, 42, 29, 29, 0},
		{"Micaz", Micaz(), 250 * units.Kbps, 51, 59.1, 59.1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := tt.profile
			if p.Name != tt.name {
				t.Errorf("Name = %q, want %q", p.Name, tt.name)
			}
			if p.Rate != tt.rate {
				t.Errorf("Rate = %v, want %v", p.Rate, tt.rate)
			}
			if math.Abs(p.Tx.Milliwatts()-tt.txMW) > 1e-9 {
				t.Errorf("Tx = %v mW, want %v", p.Tx.Milliwatts(), tt.txMW)
			}
			if math.Abs(p.Rx.Milliwatts()-tt.rxMW) > 1e-9 {
				t.Errorf("Rx = %v mW, want %v", p.Rx.Milliwatts(), tt.rxMW)
			}
			if math.Abs(p.Idle.Milliwatts()-tt.idleMW) > 1e-9 {
				t.Errorf("Idle = %v mW, want %v", p.Idle.Milliwatts(), tt.idleMW)
			}
			if math.Abs(p.Wakeup.Millijoules()-tt.wakeupMJ) > 1e-9 {
				t.Errorf("Wakeup = %v mJ, want %v", p.Wakeup.Millijoules(), tt.wakeupMJ)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("Validate() = %v", err)
			}
		})
	}
}

func TestTable1Partition(t *testing.T) {
	if got := len(Table1()); got != 6 {
		t.Fatalf("Table1 has %d rows, want 6", got)
	}
	if got := len(HighPowerProfiles()); got != 3 {
		t.Errorf("HighPowerProfiles() = %d, want 3", got)
	}
	if got := len(LowPowerProfiles()); got != 3 {
		t.Errorf("LowPowerProfiles() = %d, want 3", got)
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nonexistent"); err == nil {
		t.Error("ProfileByName(nonexistent) did not error")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Micaz()
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"bad class", func(p *Profile) { p.Class = 0 }},
		{"zero rate", func(p *Profile) { p.Rate = 0 }},
		{"zero tx", func(p *Profile) { p.Tx = 0 }},
		{"negative idle", func(p *Profile) { p.Idle = -1 }},
		{"negative wakeup", func(p *Profile) { p.Wakeup = -1 }},
		{"zero range", func(p *Profile) { p.Range = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted an invalid profile")
			}
		})
	}
}

func TestEnergyPerBit(t *testing.T) {
	// Micaz: (51 + 59.1) mW at 250 Kbps = 0.1101 / 250000 J/bit.
	p := Micaz()
	want := (0.051 + 0.0591) / 250000
	if got := p.LinkEnergyPerBit().Joules(); math.Abs(got-want) > 1e-15 {
		t.Errorf("LinkEnergyPerBit = %v, want %v", got, want)
	}
	wantTx := 0.051 / 250000
	if got := p.TxEnergyPerBit().Joules(); math.Abs(got-wantTx) > 1e-15 {
		t.Errorf("TxEnergyPerBit = %v, want %v", got, wantTx)
	}
}

func TestHighPowerBeatsLowPowerPerBit(t *testing.T) {
	// The premise of the paper: 802.11 radios cost less energy per bit in
	// active transfer than Mica-class radios (Lucent 11 vs all; and all
	// high-power vs Mica/Mica2).
	l11 := Lucent11().LinkEnergyPerBit()
	for _, lp := range LowPowerProfiles() {
		if l11 >= lp.LinkEnergyPerBit() {
			t.Errorf("Lucent11 per-bit %v not below %s per-bit %v",
				l11, lp.Name, lp.LinkEnergyPerBit())
		}
	}
	// ... except Micaz beats the 2 Mbps radios (the paper's infeasible
	// single-hop combinations).
	micaz := Micaz().LinkEnergyPerBit()
	for _, hp := range []Profile{Cabletron(), Lucent2()} {
		if hp.LinkEnergyPerBit() <= micaz {
			t.Errorf("%s per-bit %v unexpectedly below Micaz %v",
				hp.Name, hp.LinkEnergyPerBit(), micaz)
		}
	}
}

// meterClock is a manually advanced clock for meter tests.
type meterClock struct{ now sim.Time }

func (c *meterClock) time() sim.Time { return c.now }

func TestMeterChargesStateResidency(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Cabletron(), clk.time)

	m.Transition(WakingUp) // charges 1.328 mJ fixed
	clk.now += 2 * time.Millisecond
	m.Transition(Idle) // waking-up residency at idle draw: 0.830 * 0.002
	clk.now += 100 * time.Millisecond
	m.Transition(Tx) // idle residency: 0.830 * 0.1
	clk.now += 10 * time.Millisecond
	m.Transition(Off) // tx residency: 1.4 * 0.01

	want := 1.328e-3 + 0.830*0.002 + 0.830*0.100 + 1.4*0.010
	if got := m.Total().Joules(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Total = %v J, want %v J", got, want)
	}
	if m.Wakeups() != 1 {
		t.Errorf("Wakeups = %d, want 1", m.Wakeups())
	}
	clk.now += time.Hour // off draws nothing
	if got := m.Total().Joules(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Total after off hour = %v J, want %v J", got, want)
	}
}

func TestMeterByStateBreakdown(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Micaz(), clk.time)
	m.Transition(Tx)
	clk.now += time.Second
	m.Transition(Rx)
	clk.now += 2 * time.Second
	m.Transition(Off)

	by := m.ByState()
	if got, want := by[Tx].Joules(), 0.051; math.Abs(got-want) > 1e-12 {
		t.Errorf("Tx energy = %v, want %v", got, want)
	}
	if got, want := by[Rx].Joules(), 2*0.0591; math.Abs(got-want) > 1e-12 {
		t.Errorf("Rx energy = %v, want %v", got, want)
	}
	if got := m.TimeIn(Tx); got != time.Second {
		t.Errorf("TimeIn(Tx) = %v, want 1s", got)
	}
	if got := m.TimeIn(Rx); got != 2*time.Second {
		t.Errorf("TimeIn(Rx) = %v, want 2s", got)
	}
}

func TestMeterFreeState(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Micaz(), clk.time)
	m.SetFreeState(Idle, true)
	m.Transition(Idle)
	clk.now += time.Hour
	if got := m.Total(); got != 0 {
		t.Errorf("free idle accrued %v", got)
	}
	if got := m.TimeIn(Idle); got != time.Hour {
		t.Errorf("TimeIn(Idle) = %v, want 1h (time still tracked)", got)
	}
	m.SetFreeState(Idle, false)
	clk.now += time.Second
	if got, want := m.Total().Joules(), 0.0591; math.Abs(got-want) > 1e-12 {
		t.Errorf("Total after unfree = %v, want %v", got, want)
	}
}

func TestMeterChargeEnergy(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Micaz(), clk.time)
	m.ChargeEnergy(Rx, 5*units.Millijoule)
	m.ChargeEnergy(Rx, -1) // ignored
	if got, want := m.Total().Joules(), 5e-3; math.Abs(got-want) > 1e-15 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestMeterNoWakeupChargeFromIdle(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Lucent11(), clk.time)
	m.Transition(Idle)
	m.Transition(WakingUp) // not from Off: no fixed charge
	if m.Wakeups() != 0 {
		t.Errorf("Wakeups = %d, want 0", m.Wakeups())
	}
	if m.Total() != 0 {
		t.Errorf("Total = %v, want 0", m.Total())
	}
}

// Property: total equals the sum of the per-state breakdown for any
// transition sequence.
func TestMeterTotalEqualsBreakdownSum(t *testing.T) {
	states := []State{Off, WakingUp, Idle, Rx, Tx}
	f := func(steps []uint8) bool {
		clk := &meterClock{}
		m := NewMeter(Cabletron(), clk.time)
		for _, s := range steps {
			m.Transition(states[int(s)%len(states)])
			clk.now += time.Duration(s%50) * time.Millisecond
		}
		var sum units.Energy
		for _, e := range m.ByState() {
			sum += e
		}
		return math.Abs(sum.Joules()-m.Total().Joules()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy is monotone non-decreasing in time.
func TestMeterMonotone(t *testing.T) {
	states := []State{Off, WakingUp, Idle, Rx, Tx}
	f := func(steps []uint8) bool {
		clk := &meterClock{}
		m := NewMeter(Lucent2(), clk.time)
		prev := m.Total()
		for _, s := range steps {
			m.Transition(states[int(s)%len(states)])
			clk.now += time.Duration(s%20) * time.Millisecond
			cur := m.Total()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Off, "off"}, {WakingUp, "waking-up"}, {Idle, "idle"},
		{Rx, "rx"}, {Tx, "tx"}, {State(99), "State(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
	if got := LowPower.String(); got != "low-power" {
		t.Errorf("LowPower.String() = %q", got)
	}
	if got := HighPower.String(); got != "high-power" {
		t.Errorf("HighPower.String() = %q", got)
	}
	if got := Class(9).String(); got != "Class(9)" {
		t.Errorf("Class(9).String() = %q", got)
	}
}

func TestMeterSnapshotCanonicalOrder(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Cabletron(), clk.time)

	m.Transition(WakingUp)
	clk.now += 2 * time.Millisecond
	m.Transition(Tx)
	clk.now += 10 * time.Millisecond
	m.Transition(Rx)
	clk.now += 5 * time.Millisecond
	m.Transition(Idle)
	clk.now += 100 * time.Millisecond
	m.ChargeEnergy(Overhear, 1e-3)

	snap := m.Snapshot()
	// Entries follow States() order and only active states appear (the
	// meter never idled in Off with accumulated time: it started there
	// with zero residency).
	var prev int = -1
	order := States()
	index := make(map[State]int, len(order))
	for i, s := range order {
		index[s] = i
	}
	var sum units.Energy
	for _, e := range snap {
		i, ok := index[e.State]
		if !ok {
			t.Fatalf("snapshot carries unknown state %v", e.State)
		}
		if i <= prev {
			t.Fatalf("snapshot out of canonical order: %+v", snap)
		}
		prev = i
		if e.Energy == 0 && e.Time == 0 {
			t.Errorf("snapshot carries empty entry %+v", e)
		}
		sum += e.Energy
	}
	if got := m.Total(); sum != got {
		t.Errorf("snapshot energies sum to %v, Total() = %v", sum, got)
	}
	// The Overhear ledger entry has energy but no residency.
	last := snap[len(snap)-1]
	if last.State != Overhear || last.Time != 0 || last.Energy != 1e-3 {
		t.Errorf("overhear entry = %+v", last)
	}
}

func TestMeterOnTransitionFiresOnChangeOnly(t *testing.T) {
	clk := &meterClock{}
	m := NewMeter(Micaz(), clk.time)
	type change struct{ from, to State }
	var seen []change
	m.SetOnTransition(func(from, to State) { seen = append(seen, change{from, to}) })

	m.Transition(Idle)
	m.Transition(Idle) // same state: residency settles, no event
	clk.now += time.Millisecond
	m.Transition(Idle) // still no event
	m.Transition(Tx)
	m.Transition(Off)

	want := []change{{Off, Idle}, {Idle, Tx}, {Tx, Off}}
	if len(seen) != len(want) {
		t.Fatalf("observed %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observed %v, want %v", seen, want)
		}
	}

	// The observer sees the meter already in its new state, so probes
	// reading State() observe a consistent machine.
	m.SetOnTransition(func(from, to State) {
		if m.State() != to {
			t.Errorf("observer saw stale state %v during %v->%v", m.State(), from, to)
		}
	})
	m.Transition(Rx)
}
