package netsim

import (
	"fmt"
	"sort"

	"bulktx/internal/topo"
)

// SinkPolicy is the pluggable sink-selection part of a Scenario: given
// the materialized layout it picks the collection node.
type SinkPolicy interface {
	// Kind names the policy ("near-center", "node").
	Kind() string
	// Pick returns the sink's node index in the layout.
	Pick(l *topo.Layout) (int, error)
}

// sinkNearCenter picks the node closest to the layout centroid.
type sinkNearCenter struct{}

// SinkNearCenter selects the node closest to the deployment centroid —
// the default, matching the paper's requirement that the long-range
// radio reach the sink in one hop from everywhere.
func SinkNearCenter() SinkPolicy { return sinkNearCenter{} }

func (sinkNearCenter) Kind() string { return "near-center" }
func (sinkNearCenter) Pick(l *topo.Layout) (int, error) {
	return defaultSink(l), nil
}

// sinkAt pins the sink to an explicit node.
type sinkAt struct{ node int }

// SinkAt pins the sink to the given node index.
func SinkAt(node int) SinkPolicy { return sinkAt{node: node} }

func (s sinkAt) Kind() string { return "node" }
func (s sinkAt) Pick(l *topo.Layout) (int, error) {
	if s.node < 0 || s.node >= l.Len() {
		return 0, fmt.Errorf("netsim: sink %d outside layout of %d nodes", s.node, l.Len())
	}
	return s.node, nil
}

// SenderPolicy is the pluggable sender-selection part of a Scenario:
// given the layout and the sink it picks which n nodes generate
// traffic.
type SenderPolicy interface {
	// Kind names the policy ("stable-shuffle", "explicit", "farthest").
	Kind() string
	// Pick returns the sender node indices. Implementations must be
	// deterministic and must never include the sink.
	Pick(l *topo.Layout, sink, n int) ([]int, error)
}

// shuffledSenders draws senders from a fixed pseudo-random permutation.
type shuffledSenders struct{ permSeed int64 }

// StableShuffleSenders selects senders from a pseudo-random permutation
// fixed by the default permutation seed, independently of the run seed —
// the paper's convention: the 5-sender set is a subset of the 10-sender
// set and both are identical across repetitions.
func StableShuffleSenders() SenderPolicy {
	return shuffledSenders{permSeed: senderPermSeed}
}

// ShuffledSenders is StableShuffleSenders with an explicit permutation
// seed, for scenarios that want a different (but still
// repetition-stable) sender universe.
func ShuffledSenders(permSeed int64) SenderPolicy {
	return shuffledSenders{permSeed: permSeed}
}

func (shuffledSenders) Kind() string { return "stable-shuffle" }
func (p shuffledSenders) Pick(l *topo.Layout, sink, n int) ([]int, error) {
	if n < 1 || n >= l.Len() {
		return nil, fmt.Errorf("netsim: senders %d outside [1, %d)", n, l.Len())
	}
	return pickSendersSeeded(l.Len(), sink, n, p.permSeed), nil
}

// explicitSenders pins the sender set.
type explicitSenders struct{ nodes []int }

// ExplicitSenders pins the sender set to the given node indices.
func ExplicitSenders(nodes ...int) SenderPolicy {
	ns := make([]int, len(nodes))
	copy(ns, nodes)
	return explicitSenders{nodes: ns}
}

func (explicitSenders) Kind() string { return "explicit" }
func (p explicitSenders) Pick(l *topo.Layout, sink, n int) ([]int, error) {
	if len(p.nodes) == 0 {
		return nil, fmt.Errorf("netsim: explicit sender set is empty")
	}
	if n != 0 && n != len(p.nodes) {
		return nil, fmt.Errorf("netsim: sender count %d conflicts with %d explicit senders",
			n, len(p.nodes))
	}
	seen := make(map[int]bool, len(p.nodes))
	for _, s := range p.nodes {
		switch {
		case s < 0 || s >= l.Len():
			return nil, fmt.Errorf("netsim: sender %d outside layout of %d nodes", s, l.Len())
		case s == sink:
			return nil, fmt.Errorf("netsim: sender %d is the sink", s)
		case seen[s]:
			return nil, fmt.Errorf("netsim: duplicate sender %d", s)
		}
		seen[s] = true
	}
	out := make([]int, len(p.nodes))
	copy(out, p.nodes)
	return out, nil
}

// farthestSenders picks the nodes farthest from the sink.
type farthestSenders struct{}

// FarthestSenders selects the n nodes farthest from the sink (ties
// broken by index) — the worst case for hop count and collection
// energy.
func FarthestSenders() SenderPolicy { return farthestSenders{} }

func (farthestSenders) Kind() string { return "farthest" }
func (farthestSenders) Pick(l *topo.Layout, sink, n int) ([]int, error) {
	if n < 1 || n >= l.Len() {
		return nil, fmt.Errorf("netsim: senders %d outside [1, %d)", n, l.Len())
	}
	order := make([]int, 0, l.Len()-1)
	for i := 0; i < l.Len(); i++ {
		if i != sink {
			order = append(order, i)
		}
	}
	sp := l.Position(sink)
	sort.SliceStable(order, func(a, b int) bool {
		da := topo.Distance(l.Position(order[a]), sp)
		db := topo.Distance(l.Position(order[b]), sp)
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order[:n], nil
}
