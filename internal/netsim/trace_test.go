package netsim

import (
	"bytes"
	"math"
	"testing"
	"time"

	"bulktx/internal/metrics"
	"bulktx/internal/trace"
)

// tracedRun executes a short flat-config run with the given trace
// options layered on top.
func tracedRun(t *testing.T, cfg Config, opts trace.Options) Result {
	t.Helper()
	s, err := cfg.Scenario(WithTrace(opts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUntracedRunCarriesNoTrace(t *testing.T) {
	res := mustRun(t, shortConfig(ModelDual, 5, 100, 1))
	if res.PerNode != nil {
		t.Error("untraced run populated PerNode")
	}
	if res.Trace != nil {
		t.Error("untraced run populated Trace")
	}
}

// The acceptance bar of the trace subsystem: the per-node breakdown is
// the same energy the run already reports, just attributed — summing it
// back must reproduce TotalEnergy to within float-accumulation noise.
func TestPerNodeBreakdownSumsToTotalEnergy(t *testing.T) {
	for _, model := range []Model{ModelSensor, ModelWifi, ModelDual} {
		t.Run(model.String(), func(t *testing.T) {
			res := tracedRun(t, shortConfig(model, 5, 100, 1), trace.Options{})
			if len(res.PerNode) == 0 {
				t.Fatal("traced run produced no per-node breakdown")
			}
			sum := metrics.TotalPerNode(res.PerNode)
			if diff := math.Abs(sum.Joules() - res.TotalEnergy.Joules()); diff > 1e-9 {
				t.Errorf("breakdown sum %v != TotalEnergy %v (diff %g J)",
					sum, res.TotalEnergy, diff)
			}
			// Dual-radio nodes carry both radios, in sensor-then-wifi order.
			wantRadios := 1
			if model == ModelDual {
				wantRadios = 2
			}
			for _, n := range res.PerNode {
				if len(n.Radios) != wantRadios {
					t.Fatalf("node %d has %d radios, want %d", n.Node, len(n.Radios), wantRadios)
				}
			}
		})
	}
}

// Tracing must observe, not perturb: a traced run (without sampling,
// which legitimately settles meters mid-run) reports bit-identical
// outcomes to the untraced run of the same seed.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 1)
	plain := mustRun(t, cfg)
	traced := tracedRun(t, cfg, trace.Options{Packets: true, States: true})
	if plain.GeneratedBits != traced.GeneratedBits ||
		plain.DeliveredBits != traced.DeliveredBits ||
		plain.TotalEnergy != traced.TotalEnergy ||
		plain.Events != traced.Events {
		t.Errorf("traced run diverged: %+v vs %+v", plain.RunResult, traced.RunResult)
	}
	if len(plain.Delays) != len(traced.Delays) {
		t.Fatalf("delay counts diverged: %d vs %d", len(plain.Delays), len(traced.Delays))
	}
	for i := range plain.Delays {
		if plain.Delays[i] != traced.Delays[i] {
			t.Fatalf("delay %d diverged: %v vs %v", i, plain.Delays[i], traced.Delays[i])
		}
	}
}

func TestPacketProvenanceChain(t *testing.T) {
	res := tracedRun(t, shortConfig(ModelDual, 5, 100, 1), trace.Options{Packets: true})
	rec := res.Trace
	if rec == nil || len(rec.Events) == 0 {
		t.Fatal("no provenance events recorded")
	}
	var generated, delivered, forwarded int
	last := time.Duration(-1)
	for _, ev := range rec.Events {
		if ev.At < last {
			t.Fatalf("events out of time order at %v after %v", ev.At, last)
		}
		last = ev.At
		switch ev.Kind {
		case trace.KindGenerated:
			generated++
		case trace.KindDelivered:
			delivered++
			if ev.HopLatency < 0 {
				t.Errorf("negative hop latency %v", ev.HopLatency)
			}
		case trace.KindForwarded:
			forwarded++
		}
	}
	if generated == 0 || delivered == 0 {
		t.Fatalf("generated=%d delivered=%d, want both positive", generated, delivered)
	}
	if delivered > generated {
		t.Errorf("delivered %d > generated %d", delivered, generated)
	}
	// Deliveries in the event stream are exactly the recorder's view.
	wantDelivered := len(res.Delays)
	if delivered != wantDelivered {
		t.Errorf("trace saw %d deliveries, metrics saw %d", delivered, wantDelivered)
	}
}

func TestStateTransitionEvents(t *testing.T) {
	res := tracedRun(t, shortConfig(ModelDual, 5, 100, 1), trace.Options{States: true})
	var wifiWakes int
	for _, ev := range res.Trace.Events {
		if ev.Kind != trace.KindState {
			t.Fatalf("unexpected non-state event %v with only States enabled", ev.Kind)
		}
		if ev.Radio == "wifi" && ev.To.String() == "waking-up" {
			wifiWakes++
		}
	}
	if wifiWakes == 0 {
		t.Error("dual model recorded no wifi wake-up transitions")
	}
	// Wake transitions observed in the stream match the meters' counts.
	var meterWakes int
	for _, n := range res.PerNode {
		for _, r := range n.Radios {
			if r.Radio == "wifi" {
				meterWakes += r.Wakeups
			}
		}
	}
	if wifiWakes != meterWakes {
		t.Errorf("stream saw %d wifi wakes, meters counted %d", wifiWakes, meterWakes)
	}
}

func TestPeriodicSampling(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 1)
	res := tracedRun(t, cfg, trace.Options{SampleEvery: 30 * time.Second})
	samples := res.Trace.Samples
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	// 300 s / 30 s = 10 ticks (RunUntil processes events at the
	// deadline itself), 36 nodes x 2 radios each.
	wantTicks := int(testDuration / (30 * time.Second))
	wantPerTick := cfg.Nodes * 2
	if len(samples) != wantTicks*wantPerTick {
		t.Errorf("got %d samples, want %d ticks x %d radios = %d",
			len(samples), wantTicks, wantPerTick, wantTicks*wantPerTick)
	}
	// Cumulative energy never decreases per radio.
	lastE := make(map[[2]string]float64)
	for _, s := range samples {
		key := [2]string{s.Radio, string(rune(s.Node))}
		if e := s.Energy.Joules(); e < lastE[key] {
			t.Fatalf("cumulative energy decreased for node %d %s", s.Node, s.Radio)
		} else {
			lastE[key] = e
		}
	}
	// Sampling settles meters mid-run; totals may move by float ulps
	// but no further.
	plain := mustRun(t, cfg)
	if diff := math.Abs(plain.TotalEnergy.Joules() - res.TotalEnergy.Joules()); diff > 1e-9 {
		t.Errorf("sampling shifted TotalEnergy by %g J", diff)
	}
}

func TestTraceExportStability(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 1)
	opts := trace.Options{Packets: true, SampleEvery: time.Minute}
	a := tracedRun(t, cfg, opts)
	b := tracedRun(t, cfg, opts)
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("event counts diverged across identical runs: %d vs %d",
			len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Trace.Events[i], b.Trace.Events[i])
		}
	}
	ta := metrics.EnergyBreakdownTable(a.PerNode)
	tb := metrics.EnergyBreakdownTable(b.PerNode)
	if !bytes.Equal([]byte(ta), []byte(tb)) {
		t.Error("breakdown tables diverged across identical runs")
	}
}
