package netsim

import (
	"testing"
	"time"

	"bulktx/internal/params"
	"bulktx/internal/sim"
)

// backendMatrix names every (event queue, neighbor index) combination
// the simulator can run under. The scheduler backends and the lazy
// spatial-hash index are pure performance substitutions: a fixed-seed
// run must produce byte-identical Results under all of them.
var backendMatrix = []struct {
	name   string
	policy sim.QueuePolicy
	dense  bool
}{
	{"heap-lazy", sim.QueueHeap, false},
	{"heap-dense", sim.QueueHeap, true},
	{"calendar-lazy", sim.QueueCalendar, false},
	{"calendar-dense", sim.QueueCalendar, true},
	{"auto-lazy", sim.QueueAuto, false},
}

// TestFingerprintMatrixAcrossBackends pins the PR 2 golden fingerprints
// under every backend combination: swapping the 4-ary heap for the
// calendar queue, or the dense eager neighbor table for the lazy
// spatial-hash index, must not move a single byte of any Result.
func TestFingerprintMatrixAcrossBackends(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sensor", shortConfig(ModelSensor, 5, 100, 1)},
		{"wifi", shortConfig(ModelWifi, 5, 100, 1)},
		{"dual", shortConfig(ModelDual, 5, 100, 1)},
		{"multihop", func() Config {
			c := MultiHopConfig(5, 100, 1)
			c.Duration = testDuration
			return c
		}()},
	} {
		for _, b := range backendMatrix {
			t.Run(tc.name+"/"+b.name, func(t *testing.T) {
				s, err := tc.cfg.Scenario(
					WithEventQueue(b.policy),
					WithDenseNeighborIndex(b.dense),
				)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunScenario(s)
				if err != nil {
					t.Fatal(err)
				}
				if got := fingerprint(t, res); got != goldenPR2[tc.name] {
					t.Errorf("backend %s drifted from the PR 2 baseline:\n got %s\nwant %s",
						b.name, got, goldenPR2[tc.name])
				}
			})
		}
	}
}

// TestFingerprintMatrixLossyScenario covers the probabilistic path: a
// distance-dependent loss model draws from the channel RNG on every
// reception, so any backend that perturbed event order or neighbor
// iteration order would desynchronize the RNG stream and change the
// outcome. All backends must agree byte-for-byte with each other.
func TestFingerprintMatrixLossyScenario(t *testing.T) {
	build := func(policy sim.QueuePolicy, dense bool) *Scenario {
		t.Helper()
		s, err := NewScenario(
			WithModel(ModelSensor),
			WithSenders(5),
			WithWorkload(CBRWorkload(params.HighRate)),
			WithLinks(LinkModel{SensorLossAt: DistanceLoss(0, 0.4, 40)}),
			WithDuration(scenarioDuration),
			WithSeed(1),
			WithEventQueue(policy),
			WithDenseNeighborIndex(dense),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	baseline, err := RunScenario(build(sim.QueueHeap, true))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.SensorStats.NoiseLosses == 0 {
		t.Fatal("lossy scenario lost nothing; the matrix is not exercising the RNG path")
	}
	want := fingerprint(t, baseline)
	for _, b := range backendMatrix {
		t.Run(b.name, func(t *testing.T) {
			res, err := RunScenario(build(b.policy, b.dense))
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(t, res); got != want {
				t.Errorf("lossy run diverged under %s:\n got %s\nwant %s", b.name, got, want)
			}
		})
	}
}

// goldenScaling10k pins NewScalingScenario(10000, 2 s): a 100x100 grid
// at exact 40 m spacing with 100 CBR senders. The pending-event count
// sits well above sim.CalendarThreshold, so the auto policy runs this
// on the calendar queue while the explicit heap policy replays it on
// the 4-ary heap — both must land on this exact hash. Regenerate with:
//
//	go test ./internal/netsim -run ScalingFingerprint10k -v
//
// after any intentional behavior change (and say so in the PR).
const goldenScaling10k = "5369484b35277d748b7456aa0a767050a2751706429370f1a2dba01e7dac48a6"

// TestScalingFingerprint10kGrid holds the committed large-grid baseline
// under both queue backends and the lazy index (a 10k-node dense eager
// index is exactly the O(N^2) table this PR removes, so it is not part
// of the large matrix).
func TestScalingFingerprint10kGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node grid runs take a few seconds")
	}
	for _, policy := range []sim.QueuePolicy{sim.QueueAuto, sim.QueueHeap, sim.QueueCalendar} {
		s, err := NewScalingScenario(10000, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		s.queuePolicy = policy
		res, err := RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(t, res); got != goldenScaling10k {
			t.Errorf("10k grid fingerprint drifted under policy %d:\n got %s\nwant %s",
				policy, got, goldenScaling10k)
		}
	}
}
