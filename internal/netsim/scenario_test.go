package netsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bulktx/internal/params"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// fingerprint hashes a Result's canonical JSON encoding; two runs share
// a fingerprint iff their outcomes are byte-identical.
func fingerprint(t *testing.T, res Result) string {
	t.Helper()
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// Golden fingerprints of the PR 2 (pre-redesign) flat-config runner:
// shortConfig(model, 5, 100, 1) and MultiHopConfig(5, 100, 1) at 300 s,
// captured on the commit before the Scenario API landed. The
// compatibility layer must reproduce them byte-for-byte.
var goldenPR2 = map[string]string{
	"sensor":   "49778f110aa4544eabd3c2f915b252002fbc0066e027eb0a174c965ed914c689",
	"wifi":     "fbc255eb0518f739c800ee14a0eaf549b3f1899a1a2720af218757df6516ebda",
	"dual":     "c6b2540b5cb64ba477a00b9b808d40dd84d782309b34951ca7545c41f74f3996",
	"multihop": "e5ba45a5ad208b417944df49d1b268745f1c50ea773c89771a7267d4abbdd11c",
}

func TestGoldenFingerprintsThroughCompatLayer(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sensor", shortConfig(ModelSensor, 5, 100, 1)},
		{"wifi", shortConfig(ModelWifi, 5, 100, 1)},
		{"dual", shortConfig(ModelDual, 5, 100, 1)},
		{"multihop", func() Config {
			c := MultiHopConfig(5, 100, 1)
			c.Duration = testDuration
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := mustRun(t, tc.cfg)
			if got := fingerprint(t, res); got != goldenPR2[tc.name] {
				t.Errorf("fingerprint drifted from PR 2 baseline:\n got %s\nwant %s",
					got, goldenPR2[tc.name])
			}
		})
	}
}

// The explicit builder with equivalent parts must reproduce the same
// bytes as the compiled flat config (same defaults, same wiring).
func TestGoldenFingerprintThroughExplicitScenario(t *testing.T) {
	s, err := NewScenario(
		WithModel(ModelDual),
		WithTopology(GridTopology(params.GridNodes, params.FieldSize)),
		WithSink(SinkNearCenter()),
		WithSenders(5),
		WithSenderPolicy(StableShuffleSenders()),
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(testDuration),
		WithBurst(100),
		WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, res); got != goldenPR2["dual"] {
		t.Errorf("explicit scenario diverged from flat config:\n got %s\nwant %s",
			got, goldenPR2["dual"])
	}
}

// Subset property: under the default placement the 5-sender set
// prefixes the 10-sender set, on the grid and on a random topology.
func TestSenderSubsetProperty(t *testing.T) {
	for _, topol := range []Topology{
		GridTopology(36, 200),
		UniformTopology(36, 150, 1),
	} {
		five, err := NewScenario(WithTopology(topol), WithSenders(5))
		if err != nil {
			t.Fatalf("%s: %v", topol.Kind(), err)
		}
		ten, err := NewScenario(WithTopology(topol), WithSenders(10))
		if err != nil {
			t.Fatalf("%s: %v", topol.Kind(), err)
		}
		a, b := five.SenderIDs(), ten.SenderIDs()
		if len(a) != 5 || len(b) != 10 {
			t.Fatalf("%s: sender counts %d/%d", topol.Kind(), len(a), len(b))
		}
		for i, s := range a {
			if b[i] != s {
				t.Errorf("%s: sender sets not nested at %d: %v vs %v",
					topol.Kind(), i, a, b)
			}
		}
		for _, s := range b {
			if s == ten.Sink() {
				t.Errorf("%s: sink %d selected as sender", topol.Kind(), s)
			}
		}
	}
}

// scenarioDuration keeps the topology-matrix runs fast.
const scenarioDuration = 120 * time.Second

// All four named topology kinds run end-to-end under every model.
func TestTopologyKindsEndToEnd(t *testing.T) {
	topologies := []Topology{
		GridTopology(36, 200),
		UniformTopology(36, 150, 1),
		ClusteredTopology(36, 4, 200, 25, 1),
		LinearTopology(36, 200),
	}
	for _, topol := range topologies {
		for _, model := range []Model{ModelSensor, ModelWifi, ModelDual} {
			t.Run(topol.Kind()+"/"+model.String(), func(t *testing.T) {
				s, err := NewScenario(
					WithModel(model),
					WithTopology(topol),
					WithSenders(5),
					WithWorkload(CBRWorkload(params.HighRate)),
					WithDuration(scenarioDuration),
					WithBurst(100),
					WithSeed(1),
				)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunScenario(s)
				if err != nil {
					t.Fatal(err)
				}
				if res.GeneratedBits == 0 {
					t.Fatal("nothing generated")
				}
				if g := res.Goodput(); g < 0.5 {
					t.Errorf("goodput = %.3f, want > 0.5", g)
				}
				if res.TotalEnergy <= 0 {
					t.Errorf("no energy charged")
				}
			})
		}
	}
}

// The flat compatibility fields reach the same topologies.
func TestConfigTopologyFields(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 1)
	cfg.Duration = scenarioDuration
	for _, kind := range []string{TopoGrid, TopoClustered, TopoLinear} {
		cfg.Topology = kind
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.GeneratedBits == 0 || res.Goodput() < 0.5 {
			t.Errorf("%s: goodput %.3f", kind, res.Goodput())
		}
	}
	// Uniform at grid density over 200 m is partitioned at 40 m sensor
	// range: the builder must say so clearly instead of failing in
	// routing.
	cfg.Topology = TopoUniform
	cfg.TopologySeed = 2
	if _, err := Run(cfg); err == nil ||
		!strings.Contains(err.Error(), "not connected") {
		t.Errorf("partitioned uniform topology error = %v, want connectivity error", err)
	}
	cfg.Topology = "moebius"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown topology kind accepted")
	}
}

func TestScenarioChurn(t *testing.T) {
	base := []Option{
		WithModel(ModelDual),
		WithSenders(5),
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(scenarioDuration),
		WithBurst(100),
		WithSeed(1),
	}
	calm, err := NewScenario(base...)
	if err != nil {
		t.Fatal(err)
	}
	churny, err := NewScenario(append(base[:len(base):len(base)],
		WithChurn(RandomChurn(6, 30*time.Second, 7)))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(churny.ChurnEvents()) == 0 {
		t.Fatal("random churn produced no events")
	}
	for _, ev := range churny.ChurnEvents() {
		if ev.Node == churny.Sink() {
			t.Fatalf("churn schedule brings down the sink: %+v", ev)
		}
		if ev.At < 0 || ev.At > churny.Duration() {
			t.Fatalf("churn event outside run: %+v", ev)
		}
	}
	calmRes, err := RunScenario(calm)
	if err != nil {
		t.Fatal(err)
	}
	churnRes, err := RunScenario(churny)
	if err != nil {
		t.Fatal(err)
	}
	if churnRes.Goodput() >= calmRes.Goodput() {
		t.Errorf("churn did not hurt goodput: %.3f vs calm %.3f",
			churnRes.Goodput(), calmRes.Goodput())
	}
	if churnRes.Goodput() <= 0 {
		t.Error("churn killed all delivery (sink should survive)")
	}
	// Determinism: the schedule is part of the scenario.
	again, err := RunScenario(churny)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, again) != fingerprint(t, churnRes) {
		t.Error("churny scenario not deterministic")
	}
}

func TestScheduledChurnValidation(t *testing.T) {
	mk := func(ev ChurnEvent) error {
		_, err := NewScenario(
			WithDuration(scenarioDuration),
			WithChurn(ScheduledChurn(ev)),
		)
		return err
	}
	okEv := ChurnEvent{At: time.Second, Node: 0, Down: true}
	if err := mk(okEv); err != nil {
		t.Fatalf("valid churn event rejected: %v", err)
	}
	sink, err := NewScenario(WithDuration(scenarioDuration))
	if err != nil {
		t.Fatal(err)
	}
	for name, ev := range map[string]ChurnEvent{
		"negative time": {At: -time.Second, Node: 0, Down: true},
		"past end":      {At: scenarioDuration + time.Second, Node: 0, Down: true},
		"bad node":      {At: time.Second, Node: 99, Down: true},
		"sink":          {At: time.Second, Node: sink.Sink(), Down: true},
	} {
		if err := mk(ev); err == nil {
			t.Errorf("%s churn event accepted", name)
		}
	}
	if _, err := NewScenario(WithChurn(RandomChurn(0, time.Minute, 1))); err == nil {
		t.Error("zero churn rate accepted")
	}
	if _, err := NewScenario(WithChurn(RandomChurn(1, 0, 1))); err == nil {
		t.Error("zero churn downtime accepted")
	}
}

// Config-level churn compiles and degrades goodput deterministically.
func TestConfigChurn(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 1)
	cfg.Duration = scenarioDuration
	calm := mustRun(t, cfg)
	cfg.ChurnRate = 20
	cfg.ChurnMeanDowntime = 60 * time.Second
	churn1 := mustRun(t, cfg)
	churn2 := mustRun(t, cfg)
	if fingerprint(t, churn1) != fingerprint(t, churn2) {
		t.Error("churny config not deterministic")
	}
	if churn1.Goodput() >= calm.Goodput() {
		t.Errorf("churn did not hurt goodput: %.3f vs %.3f",
			churn1.Goodput(), calm.Goodput())
	}
}

func TestScenarioBuildValidation(t *testing.T) {
	cases := map[string][]Option{
		"nil topology":      {WithTopology(nil)},
		"bad model":         {WithModel(Model(9))},
		"one node":          {WithTopology(ExplicitTopology(topo.Position{}))},
		"zero duration":     {WithDuration(0)},
		"dual zero burst":   {WithBurst(0)},
		"negative grant":    {WithMinGrant(-1)},
		"negative alpha":    {WithAdaptiveThreshold(-1)},
		"negative bound":    {WithDelayBound(-time.Second)},
		"negative linger":   {WithPostBurstLinger(-time.Second)},
		"zero senders":      {WithSenders(0)},
		"too many senders":  {WithSenders(36)},
		"sink out of range": {WithSink(SinkAt(99))},
		"sender is sink": {WithSink(SinkAt(3)),
			WithSenderPolicy(ExplicitSenders(3)), WithSenders(0)},
		"duplicate sender": {WithSenderPolicy(ExplicitSenders(1, 1)), WithSenders(0)},
		"sender count conflict": {WithSenderPolicy(ExplicitSenders(1, 2)),
			WithSenders(3)},
		"zero rate": {WithWorkload(CBRWorkload(0))},
		"bad per-sender rate": {WithWorkload(Workload{
			Traffic: TrafficCBR, Rates: []units.BitRate{2000, 0}})},
		"bad traffic":    {WithWorkload(Workload{Traffic: Traffic(9), Rate: 2000})},
		"bad loss":       {WithLinks(LinkModel{SensorLoss: 1})},
		"bad wifi loss":  {WithLinks(LinkModel{WifiLoss: -0.1})},
		"negative range": {WithWifiRange(-1)},
	}
	for name, opts := range cases {
		if _, err := NewScenario(opts...); err == nil {
			t.Errorf("%s: NewScenario accepted invalid options", name)
		}
	}
	// The default scenario builds without any option.
	s, err := NewScenario()
	if err != nil {
		t.Fatalf("default scenario: %v", err)
	}
	if s.Nodes() != params.GridNodes || len(s.SenderIDs()) != 5 ||
		s.TopologyKind() != TopoGrid {
		t.Errorf("default scenario shape wrong: %d nodes, %d senders, %q",
			s.Nodes(), len(s.SenderIDs()), s.TopologyKind())
	}
}

func TestExplicitSendersAndSink(t *testing.T) {
	s, err := NewScenario(
		WithModel(ModelSensor),
		WithSink(SinkAt(0)),
		WithSenderPolicy(ExplicitSenders(35, 30, 5)), // count implied by the set
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(scenarioDuration),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sink() != 0 {
		t.Errorf("sink = %d, want 0", s.Sink())
	}
	got := s.SenderIDs()
	if len(got) != 3 || got[0] != 35 || got[1] != 30 || got[2] != 5 {
		t.Errorf("senders = %v, want [35 30 5]", got)
	}
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput() < 0.5 {
		t.Errorf("goodput = %.3f", res.Goodput())
	}
}

func TestFarthestSenders(t *testing.T) {
	s, err := NewScenario(
		WithSenderPolicy(FarthestSenders()),
		WithSenders(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Every selected node must be at least as far from the sink as every
	// unselected node, and the selection must come farthest-first.
	got := s.SenderIDs()
	l := s.Layout()
	sp := l.Position(s.Sink())
	selected := make(map[int]bool, len(got))
	minSel := units.Meters(-1)
	prev := units.Meters(-1)
	for _, id := range got {
		d := topo.Distance(l.Position(id), sp)
		if prev >= 0 && d > prev {
			t.Errorf("farthest senders %v not in descending distance order", got)
		}
		prev = d
		if minSel < 0 || d < minSel {
			minSel = d
		}
		selected[id] = true
	}
	for i := 0; i < l.Len(); i++ {
		if i == s.Sink() || selected[i] {
			continue
		}
		if d := topo.Distance(l.Position(i), sp); d > minSel {
			t.Errorf("unselected node %d (d=%v) farther than selected minimum %v",
				i, d, minSel)
		}
	}
}

// Heterogeneous per-sender rates tile over the sender set and shape the
// generated volume accordingly.
func TestHeterogeneousRates(t *testing.T) {
	uniform, err := NewScenario(
		WithModel(ModelSensor),
		WithSenders(4),
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(scenarioDuration),
		WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewScenario(
		WithModel(ModelSensor),
		WithSenders(4),
		WithWorkload(Workload{
			Traffic: TrafficCBR,
			Rates:   []units.BitRate{params.HighRate, params.HighRate / 10},
		}),
		WithDuration(scenarioDuration),
		WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	u, err := RunScenario(uniform)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunScenario(mixed)
	if err != nil {
		t.Fatal(err)
	}
	// Two of four senders run at a tenth the rate: generated volume must
	// land near 55% of the homogeneous case.
	frac := float64(m.GeneratedBits) / float64(u.GeneratedBits)
	if frac < 0.45 || frac > 0.65 {
		t.Errorf("mixed-rate generated fraction = %.3f, want ~0.55", frac)
	}
	if m.Goodput() < 0.9 {
		t.Errorf("mixed-rate goodput = %.3f", m.Goodput())
	}
}

// Distance-dependent loss loses more than a lossless channel and keeps
// the run deterministic.
func TestDistanceDependentLoss(t *testing.T) {
	base := []Option{
		WithModel(ModelSensor),
		WithSenders(5),
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(scenarioDuration),
		WithSeed(1),
	}
	clean, err := NewScenario(base...)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := NewScenario(append(base[:len(base):len(base)], WithLinks(LinkModel{
		SensorLossAt: DistanceLoss(0, 0.4, 40),
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := RunScenario(clean)
	if err != nil {
		t.Fatal(err)
	}
	lossyRes, err := RunScenario(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if lossyRes.SensorStats.NoiseLosses == 0 {
		t.Error("distance loss model lost nothing (grid links are at full range)")
	}
	if cleanRes.SensorStats.NoiseLosses != 0 {
		t.Error("clean channel recorded noise losses")
	}
	if lossyRes.Goodput() > cleanRes.Goodput() {
		t.Errorf("lossy goodput %.3f above clean %.3f",
			lossyRes.Goodput(), cleanRes.Goodput())
	}
	again, err := RunScenario(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, again) != fingerprint(t, lossyRes) {
		t.Error("distance-loss run not deterministic")
	}
}

func TestRunScenarioMany(t *testing.T) {
	s, err := NewScenario(
		WithSenders(5),
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(100*time.Second),
		WithBurst(100),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunScenarioMany(s, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	serial := make([]Result, 3)
	for r := range serial {
		res, err := RunScenario(s.withSeed(10 + int64(r)))
		if err != nil {
			t.Fatal(err)
		}
		serial[r] = res
	}
	for r := range serial {
		if fingerprint(t, serial[r]) != fingerprint(t, results[r]) {
			t.Errorf("rep %d: parallel result differs from serial", r)
		}
	}
	if _, err := RunScenarioMany(s, 0, 1); err == nil {
		t.Error("RunScenarioMany(0) did not error")
	}
}
