package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/energy"
	"bulktx/internal/mac"
	"bulktx/internal/metrics"
	"bulktx/internal/params"
	"bulktx/internal/radio"
	"bulktx/internal/routing"
	"bulktx/internal/sim"
	"bulktx/internal/trace"
	"bulktx/internal/units"
	"bulktx/internal/workload"
)

// forwarder is the send-immediately data plane of the two baseline
// models: packets hop along the routing tree with no buffering beyond
// the MAC queue.
type forwarder struct {
	id        int
	m         *mac.MAC
	tree      *routing.Tree
	header    units.ByteSize
	onDeliver func(core.Packet)
	// probe, when non-nil, records per-hop packet provenance. The nil
	// check per forwarded packet is the whole cost of disabled tracing
	// on this path.
	probe *trace.Collector
}

func newForwarder(
	id int,
	m *mac.MAC,
	tree *routing.Tree,
	header units.ByteSize,
	onDeliver func(core.Packet),
	probe *trace.Collector,
) *forwarder {
	f := &forwarder{id: id, m: m, tree: tree, header: header, onDeliver: onDeliver, probe: probe}
	m.SetOnReceive(f.receive)
	return f
}

// submit routes one packet: deliver locally or send to the next hop.
func (f *forwarder) submit(p core.Packet) {
	if p.Dst == f.id {
		if f.onDeliver != nil {
			f.onDeliver(p)
		}
		return
	}
	nh, ok := f.tree.NextHop(f.id)
	if !ok {
		// Disconnected (a churn-failed relay, or a layout hole): the
		// packet is lost here, and traced provenance must say so or the
		// packet would vanish from the stream without a terminal event.
		if f.probe != nil {
			f.probe.PacketDropped(f.id, p.Src, p.Dst, p.Seq, "no-route")
		}
		return
	}
	frame := radio.Frame{
		Kind:    radio.KindData,
		Dst:     radio.NodeID(nh),
		Size:    p.Size + f.header,
		Payload: p,
	}
	// Queue overflow is the model's loss mechanism under contention; the
	// MAC counts the rejection and reports it through the error alone.
	if err := f.m.Send(frame); err != nil && f.probe != nil {
		f.probe.PacketDropped(f.id, p.Src, p.Dst, p.Seq, "queue-full")
	}
}

func (f *forwarder) receive(frame radio.Frame) {
	p, ok := frame.Payload.(core.Packet)
	if !ok {
		return
	}
	if f.probe != nil && p.Dst != f.id {
		f.probe.PacketForwarded(f.id, p.Src, p.Dst, p.Seq)
	}
	f.submit(p)
}

// Run executes one simulation described by the flat compatibility
// Config and returns its outcomes. New code should prefer NewScenario +
// RunScenario.
func Run(cfg Config) (Result, error) {
	s, err := cfg.Scenario()
	if err != nil {
		return Result{}, err
	}
	return runInstrumented(s, nil)
}

// RunScenario executes one simulation of a built Scenario.
func RunScenario(s *Scenario) (Result, error) {
	return runInstrumented(s, nil)
}

// runArena bundles the per-run allocation pools of one simulation: the
// radio, MAC and agent layers all draw their per-node objects from it,
// and the whole set is recycled through a sync.Pool between runs so
// concurrent sweep workers stop churning the garbage collector.
type runArena struct {
	// radio, mac and core are the layer pools threaded into the model
	// builders for one run at a time.
	radio radio.Pool
	mac   mac.Pool
	core  core.Pool
}

// arenaPool recycles runArenas across runs. Each checked-out arena is
// owned by exactly one run at a time (the engine is single-threaded
// within a run), so the layer pools need no locking.
var arenaPool = sync.Pool{New: func() any { return new(runArena) }}

// runInstrumented executes a scenario with an optional per-node wifi
// meter probe.
func runInstrumented(s *Scenario, probe func(i int, wifi *energy.Meter, on bool)) (Result, error) {
	arena := arenaPool.Get().(*runArena)
	// Reset after the result is assembled (deferred calls run after the
	// return value is computed): everything collected into the Result is
	// a copy, and energy meters — which RunDebug probes hand out past
	// the run — are individually heap-allocated, never pooled.
	defer func() {
		arena.core.Reset()
		arena.mac.Reset()
		arena.radio.Reset()
		arenaPool.Put(arena)
	}()
	sched := sim.NewSchedulerPolicy(s.seed, s.queuePolicy)
	recorder := workload.NewRecorder(sched)
	var tr *trace.Collector
	if s.traceOn {
		tr = trace.NewCollector(s.traceOpts, sched.Now)
	}
	var (
		res     Result
		emit    []func(core.Packet) // per-node packet entry point
		sensorM []*mac.MAC
		wifiM   []*mac.MAC
		agents  []*core.Agent
		err     error
	)

	switch s.model {
	case ModelSensor:
		sensorM, emit, err = buildSensorModel(s, sched, recorder, tr, arena)
	case ModelWifi:
		wifiM, emit, err = buildWifiModel(s, sched, recorder, tr, arena)
	case ModelDual:
		sensorM, wifiM, agents, emit, err = buildDualModel(s, sched, recorder, tr, arena)
	default:
		err = fmt.Errorf("netsim: unhandled model %v", s.model)
	}
	if err != nil {
		return Result{}, err
	}

	// Workload: senders toward the sink. Dual-model CBR senders stagger
	// their start across one burst-accumulation interval so threshold
	// crossings do not synchronize into an artificial burst storm (the
	// random processes desynchronize naturally).
	var generators []source
	for i, sender := range s.senderIDs {
		rate := s.workload.RateFor(i)
		var startWindow time.Duration
		if s.model == ModelDual {
			period := time.Duration(float64(params.SensorPayload.Bits()) /
				rate.BitsPerSecond() * float64(time.Second))
			startWindow = period * time.Duration(s.burstPackets)
		}
		emitFn := emit[sender]
		if tr != nil {
			node, inner := sender, emitFn
			emitFn = func(p core.Packet) {
				tr.PacketGenerated(node, p.Src, p.Dst, p.Seq)
				inner(p)
			}
		}
		g, err := newSource(s, sched, rate, sender, s.sinkID, startWindow, emitFn)
		if err != nil {
			return Result{}, err
		}
		generators = append(generators, g)
	}

	// Periodic energy sampling rides the ordinary event queue; it is
	// scheduled at all only when the trace options ask for it, so the
	// untraced queue carries no extra events.
	if tr != nil && tr.SampleInterval() > 0 {
		interval := tr.SampleInterval()
		var tick func()
		tick = func() {
			tr.TakeSample()
			sched.After(interval, tick)
		}
		sched.After(interval, tick)
	}

	// Churn: the schedule was resolved and validated at build time; each
	// event toggles every radio of its node.
	for _, ev := range s.churnEvents {
		ev := ev
		if _, err := sched.Schedule(sim.Time(ev.At), func() {
			if ev.Node < len(sensorM) && sensorM != nil {
				sensorM[ev.Node].Transceiver().SetFailed(ev.Down)
			}
			if ev.Node < len(wifiM) && wifiM != nil {
				wifiM[ev.Node].Transceiver().SetFailed(ev.Down)
			}
		}); err != nil {
			return Result{}, err
		}
	}

	sched.RunUntil(s.duration)
	for _, g := range generators {
		g.Stop()
	}

	// Collect metrics.
	for _, g := range generators {
		_, bits := g.Generated()
		res.GeneratedBits += bits
	}
	res.DeliveredBits = recorder.DeliveredBits()
	res.Delays = recorder.Delays()
	res.Events = sched.Processed

	var overhear units.Energy
	for _, m := range sensorM {
		by := m.Transceiver().Meter().ByState()
		// Sum in canonical state order: float addition is not
		// associative, and map-order iteration would make TotalEnergy
		// vary in its last bits from run to run.
		for _, state := range energy.States() {
			e, ok := by[state]
			if !ok {
				continue
			}
			if state == energy.Overhear {
				overhear += e
			}
			res.TotalEnergy += e
		}
		addStats := m.Transceiver().Channel().Stats()
		res.SensorStats = addStats
	}
	for _, m := range wifiM {
		res.TotalEnergy += m.Transceiver().Meter().Total()
		res.WifiStats = m.Transceiver().Channel().Stats()
	}
	res.IdealEnergy = res.TotalEnergy - overhear
	for _, a := range agents {
		res.AgentStats = addAgentStats(res.AgentStats, a.Stats())
	}
	if tr != nil {
		rec := tr.Finish()
		res.PerNode = rec.PerNode
		res.Trace = rec
	}
	if probe != nil {
		for i, m := range wifiM {
			x := m.Transceiver()
			probe(i, x.Meter(), x.On() || x.Waking())
		}
	}
	return res, nil
}

// wireTraceRadio registers a radio's meter with the collector and
// forwards its effective state transitions as trace events. A nil
// collector leaves the meter's transition hook nil — the zero-cost
// fast path.
func wireTraceRadio(tr *trace.Collector, node int, name string, x *radio.Transceiver) {
	if tr == nil {
		return
	}
	tr.RegisterMeter(node, name, x.Meter())
	x.Meter().SetOnTransition(func(from, to energy.State) {
		tr.StateChange(node, name, from, to)
	})
}

// tracedDeliver wraps a sink delivery callback with provenance
// recording (identity on untraced runs or non-sink nodes).
func tracedDeliver(tr *trace.Collector, node int, deliver func(core.Packet)) func(core.Packet) {
	if tr == nil || deliver == nil {
		return deliver
	}
	return func(p core.Packet) {
		tr.PacketDelivered(node, p.Src, p.Dst, p.Seq)
		deliver(p)
	}
}

// wireTraceMACDrops records data packets a MAC accepted and later
// abandoned (retry limit, radio off). Synchronous queue-full
// rejections are not among them — Send reports those through its
// error, and the rejected frame's holder records the drop — and
// control/burst frames carry non-Packet payloads and are skipped (the
// agent reports those losses through its own packet observer), so each
// lost packet traces exactly once.
func wireTraceMACDrops(tr *trace.Collector, node int, m *mac.MAC) {
	if tr == nil {
		return
	}
	m.SetOnDrop(func(f radio.Frame, reason mac.DropReason) {
		if p, ok := f.Payload.(core.Packet); ok {
			tr.PacketDropped(node, p.Src, p.Dst, p.Seq, reason.String())
		}
	})
}

// wireTraceAgent maps a BCP agent's packet observer onto the collector:
// store-and-forward events become forwards, everything else a drop
// named by the event.
func wireTraceAgent(tr *trace.Collector, node int, a *core.Agent) {
	if tr == nil {
		return
	}
	a.SetOnPacket(func(ev core.PacketEvent, p core.Packet) {
		if ev == core.PacketForwarded {
			tr.PacketForwarded(node, p.Src, p.Dst, p.Seq)
			return
		}
		tr.PacketDropped(node, p.Src, p.Dst, p.Seq, ev.String())
	})
}

// buildSensorModel attaches only sensor radios with hop-by-hop
// forwarding. Idle is free (a base cost, per the paper); overhearing is
// charged into the Overhear ledger so both Sensor-ideal and
// Sensor-header totals come out of one run.
func buildSensorModel(
	s *Scenario,
	sched *sim.Scheduler,
	recorder *workload.Recorder,
	tr *trace.Collector,
	arena *runArena,
) ([]*mac.MAC, []func(core.Packet), error) {
	layout, sink := s.layout, s.sinkID
	nodes := layout.Len()
	ch, err := radio.NewChannel(sched, radio.Config{
		Name:       "sensor",
		Profile:    s.sensorProfile,
		LossProb:   s.links.SensorLoss,
		LossAt:     s.links.SensorLossAt,
		HeaderSize: params.SensorHeader,
		EagerIndex: s.denseIndex,
		Pool:       &arena.radio,
	}, layout)
	if err != nil {
		return nil, nil, err
	}
	tree, err := routing.BuildTree(layout, sink, s.sensorProfile.Range)
	if err != nil {
		return nil, nil, err
	}
	macs := make([]*mac.MAC, nodes)
	emit := make([]func(core.Packet), nodes)
	for i := 0; i < nodes; i++ {
		x, err := ch.Attach(radio.NodeID(i), radio.OverhearHeaderOnly, true)
		if err != nil {
			return nil, nil, err
		}
		x.Meter().SetFreeState(energy.Idle, true)
		m, err := mac.NewPooled(mac.SensorParams(), sched, x, &arena.mac)
		if err != nil {
			return nil, nil, err
		}
		macs[i] = m
		wireTraceRadio(tr, i, "sensor", x)
		wireTraceMACDrops(tr, i, m)
		var deliver func(core.Packet)
		if i == sink {
			deliver = tracedDeliver(tr, i, recorder.Receive)
		}
		f := newForwarder(i, m, tree, params.SensorHeader, deliver, tr)
		emit[i] = f.submit
	}
	return macs, emit, nil
}

// buildWifiModel attaches only 802.11 radios, always on, fully charged.
func buildWifiModel(
	s *Scenario,
	sched *sim.Scheduler,
	recorder *workload.Recorder,
	tr *trace.Collector,
	arena *runArena,
) ([]*mac.MAC, []func(core.Packet), error) {
	layout, sink := s.layout, s.sinkID
	nodes := layout.Len()
	wifiRange := s.wifiRange
	if wifiRange == 0 {
		wifiRange = s.wifiProfile.Range
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name:       "wifi",
		Profile:    s.wifiProfile,
		Range:      wifiRange,
		LossProb:   s.links.WifiLoss,
		LossAt:     s.links.WifiLossAt,
		HeaderSize: params.WifiHeader,
		EagerIndex: s.denseIndex,
		Pool:       &arena.radio,
	}, layout)
	if err != nil {
		return nil, nil, err
	}
	tree, err := routing.BuildTree(layout, sink, wifiRange)
	if err != nil {
		return nil, nil, err
	}
	macs := make([]*mac.MAC, nodes)
	emit := make([]func(core.Packet), nodes)
	for i := 0; i < nodes; i++ {
		x, err := ch.Attach(radio.NodeID(i), radio.OverhearFull, true)
		if err != nil {
			return nil, nil, err
		}
		m, err := mac.NewPooled(mac.WifiParams(), sched, x, &arena.mac)
		if err != nil {
			return nil, nil, err
		}
		macs[i] = m
		wireTraceRadio(tr, i, "wifi", x)
		wireTraceMACDrops(tr, i, m)
		var deliver func(core.Packet)
		if i == sink {
			deliver = tracedDeliver(tr, i, recorder.Receive)
		}
		// The pure-802.11 model sends each sensor packet as its own
		// (inefficient) small frame, as nodes have no reason to batch.
		f := newForwarder(i, m, tree, params.WifiHeader, deliver, tr)
		emit[i] = f.submit
	}
	return macs, emit, nil
}

// buildDualModel attaches both radios and a BCP agent per node.
func buildDualModel(
	s *Scenario,
	sched *sim.Scheduler,
	recorder *workload.Recorder,
	tr *trace.Collector,
	arena *runArena,
) ([]*mac.MAC, []*mac.MAC, []*core.Agent, []func(core.Packet), error) {
	layout, sink := s.layout, s.sinkID
	nodes := layout.Len()
	sensorCh, err := radio.NewChannel(sched, radio.Config{
		Name:       "sensor",
		Profile:    s.sensorProfile,
		LossProb:   s.links.SensorLoss,
		LossAt:     s.links.SensorLossAt,
		HeaderSize: params.SensorHeader,
		EagerIndex: s.denseIndex,
		Pool:       &arena.radio,
	}, layout)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	wifiRange := s.wifiRange
	if wifiRange == 0 {
		wifiRange = s.wifiProfile.Range
	}
	wifiCh, err := radio.NewChannel(sched, radio.Config{
		Name:          "wifi",
		Profile:       s.wifiProfile,
		Range:         wifiRange,
		LossProb:      s.links.WifiLoss,
		LossAt:        s.links.WifiLossAt,
		WakeupLatency: params.WifiWakeupLatency,
		HeaderSize:    params.WifiHeader,
		EagerIndex:    s.denseIndex,
		Pool:          &arena.radio,
	}, layout)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	mesh, err := routing.BuildMesh(layout, s.sensorProfile.Range)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var wifiRoute core.NextHopper
	if s.useShortcutLearner {
		sensorTree, err := routing.BuildTree(layout, sink, s.sensorProfile.Range)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		wifiRoute = routing.NewLearner(sensorTree, layout, wifiRange, true)
	} else {
		wifiTree, err := routing.BuildTree(layout, sink, wifiRange)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		wifiRoute = wifiTree
	}
	addr := routing.IdentityAddrMap(nodes)

	sensorM := make([]*mac.MAC, nodes)
	wifiM := make([]*mac.MAC, nodes)
	agents := make([]*core.Agent, nodes)
	emit := make([]func(core.Packet), nodes)
	for i := 0; i < nodes; i++ {
		sx, err := sensorCh.Attach(radio.NodeID(i), radio.OverhearFree, true)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		sx.Meter().SetFreeState(energy.Idle, true)
		wx, err := wifiCh.Attach(radio.NodeID(i), radio.OverhearFull, false)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		sm, err := mac.NewPooled(mac.SensorParams(), sched, sx, &arena.mac)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		wm, err := mac.NewPooled(mac.WifiParams(), sched, wx, &arena.mac)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		sensorM[i], wifiM[i] = sm, wm
		wireTraceRadio(tr, i, "sensor", sx)
		wireTraceRadio(tr, i, "wifi", wx)
		// The agent owns the wifi MAC's drop callback (burst-frame
		// accounting) but leaves the sensor MAC's free; wiring it
		// catches delay-bound data packets the CSMA MAC abandons.
		wireTraceMACDrops(tr, i, sm)

		agentCfg := core.DefaultConfig(i, s.burstPackets)
		agentCfg.Pool = &arena.core
		agentCfg.PostBurstLinger = s.postBurstLinger
		if s.minGrantPackets > 0 {
			agentCfg.MinGrant = units.ByteSize(s.minGrantPackets) * params.SensorPayload
		}
		if s.adaptiveAlpha > 0 {
			agentCfg.AdaptiveThreshold = true
			agentCfg.ThresholdAlpha = s.adaptiveAlpha
		}
		agentCfg.DelayBound = s.delayBound
		var deliver func(core.Packet)
		if i == sink {
			deliver = tracedDeliver(tr, i, recorder.Receive)
		}
		a, err := core.NewAgent(agentCfg, sched, sm, wm, mesh, wifiRoute, addr, deliver)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		agents[i] = a
		wireTraceAgent(tr, i, a)
		emit[i] = a.Buffer
	}
	return sensorM, wifiM, agents, emit, nil
}

// source is the common surface of the workload generators.
type source interface {
	Stop()
	Generated() (packets uint64, bits int64)
}

// newSource builds and starts the configured traffic model for one
// sender.
func newSource(
	s *Scenario,
	sched *sim.Scheduler,
	rate units.BitRate,
	sender, sink int,
	startWindow time.Duration,
	emit func(core.Packet),
) (source, error) {
	switch s.workload.Traffic {
	case TrafficPoisson:
		g, err := workload.NewPoisson(sched, sender, sink, rate, params.SensorPayload, emit)
		if err != nil {
			return nil, err
		}
		g.Start()
		return g, nil
	case TrafficOnOff:
		// Mean 2 s ON at 16x the mean rate; OFF sized so the long-run
		// average matches the configured rate: duty = 1/16 ->
		// meanOff = 15 * meanOn.
		const burstiness = 16
		meanOn := 2 * time.Second
		meanOff := (burstiness - 1) * meanOn
		g, err := workload.NewOnOff(sched, sender, sink,
			rate*burstiness, params.SensorPayload, meanOn, meanOff, emit)
		if err != nil {
			return nil, err
		}
		g.Start()
		return g, nil
	default:
		g, err := workload.NewCBR(sched, sender, sink, rate, params.SensorPayload, emit)
		if err != nil {
			return nil, err
		}
		g.StartWithin(startWindow)
		return g, nil
	}
}

func addAgentStats(a, b core.Stats) core.Stats {
	a.PacketsBuffered += b.PacketsBuffered
	a.PacketsDropped += b.PacketsDropped
	a.PacketsDelivered += b.PacketsDelivered
	a.PacketsForwarded += b.PacketsForwarded
	a.PacketsLost += b.PacketsLost
	a.Handshakes += b.Handshakes
	a.HandshakeFailures += b.HandshakeFailures
	a.WakeupResends += b.WakeupResends
	a.GrantsDenied += b.GrantsDenied
	a.GrantsReduced += b.GrantsReduced
	a.GrantsDeclined += b.GrantsDeclined
	a.BurstsSent += b.BurstsSent
	a.BurstsReceived += b.BurstsReceived
	a.FramesSent += b.FramesSent
	a.FramesLost += b.FramesLost
	a.ReceiverTimeouts += b.ReceiverTimeouts
	a.ThresholdAdaptations += b.ThresholdAdaptations
	a.SensorSends += b.SensorSends
	a.SensorForwards += b.SensorForwards
	return a
}

// RunMany executes n runs with seeds base..base+n-1 and returns results
// in seed order. Repetitions execute concurrently (up to
// runtime.NumCPU workers); every run derives all of its randomness
// from its own seed and shares no state with its siblings, so the
// output is identical to serial execution. Grid sweeps should prefer
// the sweep package, which adds cross-cell batching and result
// caching on top of the same parallelism.
func RunMany(cfg Config, runs int, baseSeed int64) ([]Result, error) {
	return RunManyWorkers(cfg, runs, baseSeed, 0)
}

// RunManyWorkers is RunMany with an explicit concurrency limit
// (workers < 1 selects runtime.NumCPU()).
func RunManyWorkers(cfg Config, runs int, baseSeed int64, workers int) ([]Result, error) {
	return runSeeded(runs, workers, func(r int) (Result, error) {
		c := cfg
		c.Seed = baseSeed + int64(r)
		return Run(c)
	})
}

// RunScenarioMany executes runs seeded repetitions of a scenario
// (seeds base..base+runs-1) concurrently, in seed order. The scenario's
// placement and churn schedule are part of the scenario and stay fixed
// across repetitions; only the run seed (channel noise, MAC backoff,
// arrival processes) varies.
func RunScenarioMany(s *Scenario, runs int, baseSeed int64) ([]Result, error) {
	return runSeeded(runs, 0, func(r int) (Result, error) {
		return RunScenario(s.withSeed(baseSeed + int64(r)))
	})
}

// runSeeded fans repetitions over a worker pool, preserving order.
func runSeeded(runs, workers int, run func(r int) (Result, error)) ([]Result, error) {
	if runs < 1 {
		return nil, fmt.Errorf("netsim: runs %d < 1", runs)
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > runs {
		workers = runs
	}
	out := make([]Result, runs)
	errs := make([]error, runs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= runs {
					return
				}
				out[r], errs[r] = run(r)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Summaries reduces repeated runs to the paper's three metrics.
func Summaries(results []Result) (goodput, normEnergy, idealEnergy metrics.Summary, meanDelay time.Duration) {
	gs := make([]float64, 0, len(results))
	es := make([]float64, 0, len(results))
	is := make([]float64, 0, len(results))
	var delaySum time.Duration
	var delayN int
	for _, r := range results {
		gs = append(gs, r.Goodput())
		es = append(es, r.NormalizedEnergy())
		ideal := r.RunResult
		ideal.TotalEnergy = r.IdealEnergy
		is = append(is, ideal.NormalizedEnergy())
		delaySum += r.MeanDelay() * time.Duration(1)
		delayN++
	}
	if delayN > 0 {
		meanDelay = delaySum / time.Duration(delayN)
	}
	return metrics.Summarize(gs), metrics.Summarize(es), metrics.Summarize(is), meanDelay
}

// RunDebug executes one run and reports each node's wifi meter to probe
// (test/diagnostic hook; the callback receives the node index, its wifi
// meter and whether the radio is still on at the end of the run).
func RunDebug(cfg Config, probe func(i int, wifi *energy.Meter, on bool)) (Result, error) {
	s, err := cfg.Scenario()
	if err != nil {
		return Result{}, err
	}
	return runInstrumented(s, probe)
}
