package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// ChurnEvent is one scheduled availability change: at offset At into
// the run, Node crashes (Down=true) or recovers (Down=false). A crashed
// node's radios neither hear nor transmit until recovery; its
// application keeps generating (and losing) traffic, which is the
// observable cost of churn.
type ChurnEvent struct {
	// At is the event's offset into the run.
	At time.Duration
	// Node is the affected node index.
	Node int
	// Down is true for a crash, false for a recovery.
	Down bool
}

// Churn is the pluggable failure model of a Scenario: it expands into
// the run's full failure/recovery schedule at build time, so the
// schedule is validated (and inspectable) before any event executes.
type Churn interface {
	// Kind names the model ("scheduled", "random").
	Kind() string
	// Events returns the failure/recovery schedule for a deployment of
	// nodes nodes with the given sink, covering [0, duration]. The sink
	// must never be brought down. Implementations must be deterministic.
	Events(nodes, sink int, duration time.Duration) ([]ChurnEvent, error)
}

// scheduledChurn replays an explicit event list.
type scheduledChurn struct{ events []ChurnEvent }

// ScheduledChurn replays the given failure/recovery events verbatim
// (validated and sorted by time at scenario build).
func ScheduledChurn(events ...ChurnEvent) Churn {
	es := make([]ChurnEvent, len(events))
	copy(es, events)
	return scheduledChurn{events: es}
}

func (scheduledChurn) Kind() string { return "scheduled" }
func (c scheduledChurn) Events(nodes, sink int, duration time.Duration) ([]ChurnEvent, error) {
	out := make([]ChurnEvent, len(c.events))
	copy(out, c.events)
	for _, ev := range out {
		switch {
		case ev.At < 0 || ev.At > duration:
			return nil, fmt.Errorf("netsim: churn event at %v outside run of %v", ev.At, duration)
		case ev.Node < 0 || ev.Node >= nodes:
			return nil, fmt.Errorf("netsim: churn event for node %d outside layout of %d nodes",
				ev.Node, nodes)
		case ev.Node == sink:
			return nil, fmt.Errorf("netsim: churn must not bring down the sink (node %d)", ev.Node)
		}
	}
	sortChurn(out)
	return out, nil
}

// randomChurn alternates exponential up/down times per node.
type randomChurn struct {
	rate     float64 // expected failures per node per simulated hour
	meanDown time.Duration
	seed     int64
}

// RandomChurn fails each non-sink node independently at the given rate
// (expected failures per node per simulated hour), with exponentially
// distributed uptimes and downtimes (mean downtime meanDown). The seed
// fixes the schedule independently of the run seed.
func RandomChurn(rate float64, meanDown time.Duration, seed int64) Churn {
	return randomChurn{rate: rate, meanDown: meanDown, seed: seed}
}

func (randomChurn) Kind() string { return "random" }
func (c randomChurn) Events(nodes, sink int, duration time.Duration) ([]ChurnEvent, error) {
	if c.rate <= 0 {
		return nil, fmt.Errorf("netsim: churn rate %v must be positive", c.rate)
	}
	if c.meanDown <= 0 {
		return nil, fmt.Errorf("netsim: churn mean downtime %v must be positive", c.meanDown)
	}
	meanUp := time.Duration(float64(time.Hour) / c.rate)
	rng := rand.New(rand.NewSource(c.seed))
	expSample := func(mean time.Duration) time.Duration {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		return time.Duration(-math.Log(u) * float64(mean))
	}
	var out []ChurnEvent
	for node := 0; node < nodes; node++ {
		if node == sink {
			continue
		}
		for at := expSample(meanUp); at <= duration; {
			out = append(out, ChurnEvent{At: at, Node: node, Down: true})
			at += expSample(c.meanDown)
			if at > duration {
				break
			}
			out = append(out, ChurnEvent{At: at, Node: node, Down: false})
			at += expSample(meanUp)
		}
	}
	sortChurn(out)
	return out, nil
}

// sortChurn orders events by time, then node, then recovery-first —
// a total order, so the schedule is deterministic however it was
// generated.
func sortChurn(events []ChurnEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return !a.Down && b.Down
	})
}
