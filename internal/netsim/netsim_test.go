package netsim

import (
	"errors"
	"testing"
	"time"

	"bulktx/internal/params"
	"bulktx/internal/topo"
	"testing/quick"
)

// Scaled-down scenario constants: 300 s instead of 5000 s keeps each test
// run under a second while preserving every qualitative shape (verified
// against the full-length runs recorded in EXPERIMENTS.md).
const testDuration = 300 * time.Second

func shortConfig(model Model, senders, burst int, seed int64) Config {
	cfg := DefaultConfig(model, senders, burst, seed)
	cfg.Duration = testDuration
	cfg.Rate = params.HighRate
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Model, err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	good := shortConfig(ModelDual, 5, 100, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad model", func(c *Config) { c.Model = 0 }},
		{"one node", func(c *Config) { c.Nodes = 1 }},
		{"zero field", func(c *Config) { c.Field = 0 }},
		{"zero senders", func(c *Config) { c.Senders = 0 }},
		{"too many senders", func(c *Config) { c.Senders = c.Nodes }},
		{"zero rate", func(c *Config) { c.Rate = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"dual needs burst", func(c *Config) { c.BurstPackets = 0 }},
		{"bad loss", func(c *Config) { c.SensorLoss = 1 }},
		{"bad wifi loss", func(c *Config) { c.WifiLoss = -0.1 }},
		{"negative min grant", func(c *Config) { c.MinGrantPackets = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate accepted invalid config")
			}
		})
	}
}

func TestModelString(t *testing.T) {
	if ModelSensor.String() != "sensor" || ModelWifi.String() != "802.11" ||
		ModelDual.String() != "dual-radio" {
		t.Error("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Error("unknown model name wrong")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 77)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Goodput() != b.Goodput() || a.TotalEnergy != b.TotalEnergy ||
		a.Events != b.Events {
		t.Errorf("same seed diverged: %+v vs %+v", a.RunResult, b.RunResult)
	}
	c := mustRun(t, shortConfig(ModelDual, 5, 100, 78))
	if a.Events == c.Events && a.TotalEnergy == c.TotalEnergy {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestSensorModelDelivers(t *testing.T) {
	res := mustRun(t, shortConfig(ModelSensor, 5, 0, 1))
	if g := res.Goodput(); g < 0.95 {
		t.Errorf("sensor goodput at 5 senders = %.3f, want ~1", g)
	}
	if res.MeanDelay() > time.Second {
		t.Errorf("sensor delay = %v, want sub-second (no buffering)", res.MeanDelay())
	}
	if res.IdealEnergy >= res.TotalEnergy {
		t.Error("ideal energy not below header-model energy")
	}
}

func TestWifiModelDeliversButBurnsEnergy(t *testing.T) {
	wifi := mustRun(t, shortConfig(ModelWifi, 5, 0, 1))
	sensor := mustRun(t, shortConfig(ModelSensor, 5, 0, 1))
	if g := wifi.Goodput(); g < 0.99 {
		t.Errorf("802.11 goodput = %.3f, want ~1", g)
	}
	// "the IEEE 802.11 model has very high energy consumption": orders of
	// magnitude above the sensor model due to idling.
	if wifi.NormalizedEnergy() < 50*sensor.NormalizedEnergy() {
		t.Errorf("802.11 normE %.4f not far above sensor %.4f",
			wifi.NormalizedEnergy(), sensor.NormalizedEnergy())
	}
}

func TestPaperShapeSingleHopEnergy(t *testing.T) {
	// Figure 6: DualRadio-500 beats the sensor models; DualRadio-10 does
	// not save energy.
	sensor := mustRun(t, shortConfig(ModelSensor, 10, 0, 1))
	dual10 := mustRun(t, shortConfig(ModelDual, 10, 10, 1))
	dual500 := mustRun(t, shortConfig(ModelDual, 10, 500, 1))

	sensorIdeal := sensor.RunResult
	sensorIdeal.TotalEnergy = sensor.IdealEnergy

	if dual500.NormalizedEnergy() >= sensor.NormalizedEnergy() {
		t.Errorf("DualRadio-500 %.4f not below Sensor-header %.4f",
			dual500.NormalizedEnergy(), sensor.NormalizedEnergy())
	}
	if dual10.NormalizedEnergy() <= sensor.NormalizedEnergy() {
		t.Errorf("DualRadio-10 %.4f unexpectedly below Sensor-header %.4f (below s*)",
			dual10.NormalizedEnergy(), sensor.NormalizedEnergy())
	}
}

func TestPaperShapeSingleHopGoodput(t *testing.T) {
	// Figure 5: small bursts track the 802.11 model; large bursts degrade
	// goodput through buffering.
	d100 := mustRun(t, shortConfig(ModelDual, 10, 100, 1))
	d1000 := mustRun(t, shortConfig(ModelDual, 10, 1000, 1))
	if d100.Goodput() < 0.9 {
		t.Errorf("DualRadio-100 goodput = %.3f, want > 0.9", d100.Goodput())
	}
	if d1000.Goodput() >= d100.Goodput() {
		t.Errorf("DualRadio-1000 goodput %.3f not below DualRadio-100 %.3f",
			d1000.Goodput(), d100.Goodput())
	}
}

func TestPaperShapeDelayGrowsWithBurst(t *testing.T) {
	// Figures 7/10: delay grows with the burst size.
	prev := time.Duration(0)
	for _, b := range []int{10, 100, 500} {
		res := mustRun(t, shortConfig(ModelDual, 5, b, 1))
		if res.MeanDelay() <= prev {
			t.Errorf("burst %d delay %v not above smaller burst's %v",
				b, res.MeanDelay(), prev)
		}
		prev = res.MeanDelay()
	}
}

func TestPaperShapeMultiHop(t *testing.T) {
	// Figures 8/9: the sensor model's goodput collapses at high sender
	// counts; the dual model stays high and beats Sensor-ideal energy.
	sensorCfg := MultiHopConfig(35, 10, 1)
	sensorCfg.Model = ModelSensor
	sensorCfg.Duration = testDuration
	sensor := mustRun(t, sensorCfg)

	dualCfg := MultiHopConfig(35, 500, 1)
	dualCfg.Duration = testDuration
	dual := mustRun(t, dualCfg)

	if sensor.Goodput() > 0.7 {
		t.Errorf("sensor goodput at 35 senders = %.3f, want collapse (< 0.7)",
			sensor.Goodput())
	}
	if dual.Goodput() < 0.8 {
		t.Errorf("dual goodput at 35 senders = %.3f, want > 0.8", dual.Goodput())
	}
	sensorIdeal := sensor.RunResult
	sensorIdeal.TotalEnergy = sensor.IdealEnergy
	if dual.NormalizedEnergy() >= sensorIdeal.NormalizedEnergy() {
		t.Errorf("MH dual-500 %.4f not below Sensor-ideal %.4f",
			dual.NormalizedEnergy(), sensorIdeal.NormalizedEnergy())
	}
}

func TestMultiHopUsesOneWifiHop(t *testing.T) {
	cfg := MultiHopConfig(5, 100, 1)
	cfg.Duration = testDuration
	res := mustRun(t, cfg)
	// One-hop wifi: no store-and-forward, so no packets re-buffered.
	if res.AgentStats.PacketsForwarded != 0 {
		t.Errorf("MH case forwarded %d packets, want 0 (one-hop wifi)",
			res.AgentStats.PacketsForwarded)
	}
	if res.Goodput() < 0.9 {
		t.Errorf("MH goodput = %.3f, want > 0.9", res.Goodput())
	}
}

func TestShortcutLearnerAblation(t *testing.T) {
	// With learning enabled the dual model starts from sensor-tree hops
	// and converges to long wifi hops; it must still deliver.
	cfg := MultiHopConfig(5, 100, 1)
	cfg.Duration = testDuration
	cfg.UseShortcutLearner = true
	res := mustRun(t, cfg)
	if res.Goodput() < 0.85 {
		t.Errorf("learner goodput = %.3f, want > 0.85", res.Goodput())
	}
	// Early bursts relay store-and-forward before shortcuts kick in.
	if res.AgentStats.PacketsForwarded == 0 {
		t.Error("learner never forwarded (should start on sensor-tree hops)")
	}
}

func TestLossyChannelsStillDeliver(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 1)
	cfg.SensorLoss = 0.2
	cfg.WifiLoss = 0.05
	res := mustRun(t, cfg)
	if res.Goodput() < 0.7 {
		t.Errorf("goodput under loss = %.3f, want > 0.7", res.Goodput())
	}
}

func TestRunMany(t *testing.T) {
	cfg := shortConfig(ModelDual, 5, 100, 0)
	cfg.Duration = 100 * time.Second
	results, err := RunMany(cfg, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	goodput, normE, idealE, delay := Summaries(results)
	if goodput.N != 3 || normE.N != 3 || idealE.N != 3 {
		t.Errorf("summaries N wrong: %d/%d/%d", goodput.N, normE.N, idealE.N)
	}
	if goodput.Mean <= 0 || goodput.Mean > 1 {
		t.Errorf("goodput mean = %v", goodput.Mean)
	}
	if delay <= 0 {
		t.Errorf("delay = %v", delay)
	}
	if _, err := RunMany(cfg, 0, 1); err == nil {
		t.Error("RunMany(0) did not error")
	}
}

func TestPickSenders(t *testing.T) {
	five := pickSenders(36, 14, 5)
	ten := pickSenders(36, 14, 10)
	if len(five) != 5 || len(ten) != 10 {
		t.Fatalf("sender counts %d/%d", len(five), len(ten))
	}
	// Nested subsets: the 5-sender set prefixes the 10-sender set.
	for i, s := range five {
		if ten[i] != s {
			t.Errorf("sender sets not nested at %d: %v vs %v", i, five, ten)
		}
	}
	for _, s := range ten {
		if s == 14 {
			t.Error("sink selected as sender")
		}
	}
}

func TestDefaultSinkNearCenter(t *testing.T) {
	cfg := shortConfig(ModelSensor, 5, 0, 1)
	res := mustRun(t, cfg)
	_ = res
	// Indirect check: the default sink of the 6x6 grid must allow a
	// Cabletron radio (250 m) to reach it from every node, the paper's MH
	// premise.
	layout, err := topoGridForTest()
	if err != nil {
		t.Fatal(err)
	}
	sink := defaultSink(layout)
	for i := 0; i < layout.Len(); i++ {
		d := distanceForTest(layout, i, sink)
		if d > 250 {
			t.Errorf("node %d is %.0f m from default sink: MH premise broken", i, d)
		}
	}
}

func topoGridForTest() (*topo.Layout, error) {
	return topo.Grid(params.GridNodes, params.FieldSize)
}

func distanceForTest(l *topo.Layout, a, b int) float64 {
	return float64(topo.Distance(l.Position(a), l.Position(b)))
}

func TestTrafficModels(t *testing.T) {
	for _, traffic := range []Traffic{TrafficCBR, TrafficPoisson, TrafficOnOff} {
		t.Run(traffic.String(), func(t *testing.T) {
			cfg := shortConfig(ModelDual, 5, 100, 1)
			cfg.Traffic = traffic
			res := mustRun(t, cfg)
			if res.GeneratedBits == 0 {
				t.Fatal("nothing generated")
			}
			if g := res.Goodput(); g < 0.8 {
				t.Errorf("%v goodput = %.3f, want > 0.8", traffic, g)
			}
		})
	}
	if TrafficCBR.String() != "cbr" || TrafficPoisson.String() != "poisson" ||
		TrafficOnOff.String() != "onoff" || Traffic(9).String() != "Traffic(9)" {
		t.Error("traffic names wrong")
	}
	bad := shortConfig(ModelDual, 5, 100, 1)
	bad.Traffic = Traffic(9)
	if err := bad.Validate(); err == nil {
		t.Error("invalid traffic model accepted")
	}
}

// Property: for arbitrary small configurations, the metrics stay within
// their physical ranges (goodput in [0,1], non-negative energies, ideal
// energy never above the header-model energy).
func TestRunInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(modelSel, senders, burst uint8, seed int64) bool {
		models := []Model{ModelSensor, ModelWifi, ModelDual}
		cfg := DefaultConfig(models[int(modelSel)%3], int(senders)%10+1,
			int(burst)%200+1, seed)
		cfg.Duration = 60 * time.Second
		cfg.Rate = params.HighRate
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		g := res.Goodput()
		return g >= 0 && g <= 1 &&
			res.TotalEnergy >= 0 &&
			res.IdealEnergy >= 0 &&
			res.IdealEnergy <= res.TotalEnergy &&
			res.DeliveredBits <= res.GeneratedBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestValidateNamesOffendingField(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		field  string
	}{
		{func(c *Config) { c.Model = 0 }, "Model"},
		{func(c *Config) { c.Nodes = 1 }, "Nodes"},
		{func(c *Config) { c.Senders = 99 }, "Senders"},
		{func(c *Config) { c.Duration = 0 }, "Duration"},
		{func(c *Config) { c.BurstPackets = 0 }, "BurstPackets"},
		{func(c *Config) { c.SensorLoss = 1.5 }, "SensorLoss"},
		{func(c *Config) { c.WifiLoss = -0.1 }, "WifiLoss"},
		{func(c *Config) { c.ChurnRate = -1 }, "ChurnRate"},
		{func(c *Config) { c.Topology = "torus" }, "Topology"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(ModelDual, 5, 100, 1)
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config validated", tc.field)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a FieldError", tc.field, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("error %v names field %q, want %q", err, fe.Field, tc.field)
		}
	}
	if err := DefaultConfig(ModelDual, 5, 100, 1).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
