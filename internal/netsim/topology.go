package netsim

import (
	"fmt"
	"math/rand"

	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// Topology is the pluggable node-placement part of a Scenario. A
// Topology is pure data: Layout materializes the node positions
// deterministically, with all randomness coming from the topology's own
// configuration (never from the run seed), so one topology instance
// describes the same deployment across every repetition of a sweep.
type Topology interface {
	// Kind names the topology family ("grid", "uniform", "clustered",
	// "linear", "explicit") for logs, sweep axes and cache keys.
	Kind() string
	// Layout materializes the node positions.
	Layout() (*topo.Layout, error)
}

// Topology kind names, as accepted by Config.Topology and sweep specs.
const (
	TopoGrid      = "grid"
	TopoUniform   = "uniform"
	TopoClustered = "clustered"
	TopoLinear    = "linear"
	TopoExplicit  = "explicit"
)

// TopologyKinds lists the named topology families constructible from a
// flat Config (the explicit topology carries its own positions and has
// no flat form).
func TopologyKinds() []string {
	return []string{TopoGrid, TopoUniform, TopoClustered, TopoLinear}
}

// gridTopology is the paper's survey layout: the smallest square grid
// covering the field.
type gridTopology struct {
	nodes int
	field units.Meters
}

// GridTopology places nodes on the smallest square grid covering a
// field x field area — the paper's evaluation deployment
// (GridTopology(36, 200): a 6x6 grid with 40 m spacing).
func GridTopology(nodes int, field units.Meters) Topology {
	return gridTopology{nodes: nodes, field: field}
}

func (t gridTopology) Kind() string { return TopoGrid }
func (t gridTopology) Layout() (*topo.Layout, error) {
	return topo.Grid(t.nodes, t.field)
}

// uniformTopology is a uniform-random geometric deployment.
type uniformTopology struct {
	nodes int
	field units.Meters
	seed  int64
}

// UniformTopology scatters nodes uniformly at random over a
// field x field area. The seed fixes the placement independently of the
// run seed, so repetitions share one deployment.
func UniformTopology(nodes int, field units.Meters, seed int64) Topology {
	return uniformTopology{nodes: nodes, field: field, seed: seed}
}

func (t uniformTopology) Kind() string { return TopoUniform }
func (t uniformTopology) Layout() (*topo.Layout, error) {
	return topo.Random(t.nodes, t.field, rand.New(rand.NewSource(t.seed)))
}

// clusteredTopology groups nodes around random hotspots.
type clusteredTopology struct {
	nodes    int
	clusters int
	field    units.Meters
	spread   units.Meters
	seed     int64
}

// ClusteredTopology places nodes in clusters hotspots over a
// field x field area with Gaussian spread around each cluster center —
// the shape of event-driven deployments. The seed fixes the placement
// independently of the run seed.
func ClusteredTopology(nodes, clusters int, field, spread units.Meters, seed int64) Topology {
	return clusteredTopology{
		nodes: nodes, clusters: clusters,
		field: field, spread: spread, seed: seed,
	}
}

func (t clusteredTopology) Kind() string { return TopoClustered }
func (t clusteredTopology) Layout() (*topo.Layout, error) {
	return topo.Clustered(t.nodes, t.clusters, t.field, t.spread,
		rand.New(rand.NewSource(t.seed)))
}

// linearTopology is a corridor deployment.
type linearTopology struct {
	nodes  int
	length units.Meters
}

// LinearTopology places nodes evenly along a straight corridor of the
// given length (pipelines, tunnels, roadsides; the shape of the paper's
// Section 2.2 feasibility study).
func LinearTopology(nodes int, length units.Meters) Topology {
	return linearTopology{nodes: nodes, length: length}
}

func (t linearTopology) Kind() string { return TopoLinear }
func (t linearTopology) Layout() (*topo.Layout, error) {
	if t.nodes < 2 {
		return nil, fmt.Errorf("netsim: linear topology needs at least 2 nodes, got %d", t.nodes)
	}
	if t.length <= 0 {
		return nil, fmt.Errorf("netsim: linear topology length %v must be positive", t.length)
	}
	return topo.Line(t.nodes, t.length/units.Meters(float64(t.nodes-1)))
}

// explicitTopology wraps caller-supplied positions.
type explicitTopology struct {
	positions []topo.Position
}

// ExplicitTopology uses the given node positions verbatim (surveyed
// deployments, imported traces).
func ExplicitTopology(positions ...topo.Position) Topology {
	ps := make([]topo.Position, len(positions))
	copy(ps, positions)
	return explicitTopology{positions: ps}
}

func (t explicitTopology) Kind() string { return TopoExplicit }
func (t explicitTopology) Layout() (*topo.Layout, error) {
	if len(t.positions) == 0 {
		return nil, fmt.Errorf("netsim: explicit topology needs at least one position")
	}
	return topo.NewLayout(t.positions), nil
}
