package netsim

import (
	"fmt"
	"math"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/params"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/trace"
	"bulktx/internal/units"
)

// Workload is the pluggable traffic part of a Scenario: the arrival
// process and per-sender application rates.
type Workload struct {
	// Traffic selects the arrival process (CBR, Poisson, OnOff).
	Traffic Traffic
	// Rate is the per-sender application rate.
	Rate units.BitRate
	// Rates, when non-empty, overrides Rate per sender: sender i (in
	// placement order) runs at Rates[i mod len(Rates)], so a short list
	// tiles over a large sender set (e.g. alternating fast and slow
	// sensors).
	Rates []units.BitRate
}

// RateFor returns sender i's application rate.
func (w Workload) RateFor(i int) units.BitRate {
	if len(w.Rates) == 0 {
		return w.Rate
	}
	return w.Rates[i%len(w.Rates)]
}

func (w Workload) validate() error {
	if w.Traffic < TrafficCBR || w.Traffic > TrafficOnOff {
		return fmt.Errorf("netsim: invalid traffic model %d", int(w.Traffic))
	}
	if len(w.Rates) == 0 && w.Rate <= 0 {
		return fmt.Errorf("netsim: non-positive rate %v", w.Rate)
	}
	for i, r := range w.Rates {
		if r <= 0 {
			return fmt.Errorf("netsim: non-positive rate %v for sender %d", r, i)
		}
	}
	return nil
}

// CBRWorkload is the paper's constant-bit-rate workload at the given
// per-sender rate.
func CBRWorkload(rate units.BitRate) Workload {
	return Workload{Traffic: TrafficCBR, Rate: rate}
}

// PoissonWorkload generates exponentially distributed inter-arrivals at
// the given mean per-sender rate.
func PoissonWorkload(rate units.BitRate) Workload {
	return Workload{Traffic: TrafficPoisson, Rate: rate}
}

// OnOffWorkload alternates peak-rate bursts with silences preserving
// the given mean per-sender rate.
func OnOffWorkload(rate units.BitRate) Workload {
	return Workload{Traffic: TrafficOnOff, Rate: rate}
}

// LinkModel is the pluggable channel-quality part of a Scenario:
// per-channel noise loss, either flat or distance-dependent.
type LinkModel struct {
	// SensorLoss and WifiLoss are flat per-reception loss probabilities
	// in [0, 1).
	SensorLoss, WifiLoss float64
	// SensorLossAt and WifiLossAt, when non-nil, replace the flat
	// probabilities with distance-dependent ones (see DistanceLoss).
	SensorLossAt, WifiLossAt func(d units.Meters) float64
}

func (l LinkModel) validate() error {
	if l.SensorLoss < 0 || l.SensorLoss >= 1 || l.WifiLoss < 0 || l.WifiLoss >= 1 {
		return fmt.Errorf("netsim: loss probabilities outside [0,1)")
	}
	return nil
}

// DistanceLoss returns a link-loss curve growing quadratically with
// distance: floor at zero range rising to ceil at refRange (clamped
// beyond). It is the standard shape of noise-floor loss under
// free-space path loss with a fixed transmit power.
func DistanceLoss(floor, ceil float64, refRange units.Meters) func(units.Meters) float64 {
	return func(d units.Meters) float64 {
		if refRange <= 0 {
			return floor
		}
		frac := float64(d) / float64(refRange)
		if frac > 1 {
			frac = 1
		}
		return floor + (ceil-floor)*frac*frac
	}
}

// Scenario is a fully resolved simulation setup: topology, placement,
// workload, link quality and churn, assembled and validated by
// NewScenario. A Scenario is immutable after construction; run it with
// RunScenario (or RunScenarioMany for seeded repetitions).
type Scenario struct {
	model       Model
	topology    Topology
	sink        SinkPolicy
	senders     SenderPolicy
	nSenders    int
	nSendersSet bool
	workload    Workload
	links       LinkModel
	churn       Churn

	duration     time.Duration
	burstPackets int
	seed         int64

	sensorProfile, wifiProfile energy.Profile
	wifiRange                  units.Meters

	postBurstLinger    time.Duration
	useShortcutLearner bool
	minGrantPackets    int
	adaptiveAlpha      float64
	delayBound         time.Duration

	traceOn   bool
	traceOpts trace.Options

	// queuePolicy selects the scheduler's event-queue backend (zero
	// value sim.QueueAuto); denseIndex forces eager neighbor-index
	// materialization on the radio channels. Both are performance
	// toggles with no effect on results — the fingerprint matrix test
	// holds every combination to identical bytes.
	queuePolicy sim.QueuePolicy
	denseIndex  bool

	// Resolved at build time.
	layout      *topo.Layout
	sinkID      int
	senderIDs   []int
	churnEvents []ChurnEvent
}

// Option configures a Scenario under construction; apply with
// NewScenario. All validation happens at build time, so an option never
// fails in isolation.
type Option func(*Scenario)

// WithModel selects the evaluation model (sensor / 802.11 / dual;
// default dual).
func WithModel(m Model) Option { return func(s *Scenario) { s.model = m } }

// WithTopology selects the node deployment (default the paper's
// GridTopology(36, 200)).
func WithTopology(t Topology) Option { return func(s *Scenario) { s.topology = t } }

// WithSink selects the sink-placement policy (default SinkNearCenter).
func WithSink(p SinkPolicy) Option { return func(s *Scenario) { s.sink = p } }

// WithSenders sets how many nodes generate traffic (default 5),
// selected by the current sender policy. ExplicitSenders carries its
// own count; combining it with a conflicting WithSenders is a build
// error.
func WithSenders(n int) Option {
	return func(s *Scenario) {
		s.nSenders = n
		s.nSendersSet = true
	}
}

// WithSenderPolicy selects the sender-selection strategy (default
// StableShuffleSenders). ExplicitSenders implies the sender count.
func WithSenderPolicy(p SenderPolicy) Option { return func(s *Scenario) { s.senders = p } }

// WithWorkload sets the traffic model (default the paper's CBR at
// 0.2 Kbps per sender).
func WithWorkload(w Workload) Option { return func(s *Scenario) { s.workload = w } }

// WithLinks sets the channel-quality model (default lossless beyond
// collisions).
func WithLinks(l LinkModel) Option { return func(s *Scenario) { s.links = l } }

// WithChurn enables a node failure/recovery model (default none).
func WithChurn(c Churn) Option { return func(s *Scenario) { s.churn = c } }

// WithDuration sets the simulated time (default the paper's 5000 s).
func WithDuration(d time.Duration) Option { return func(s *Scenario) { s.duration = d } }

// WithBurst sets the dual model's alpha-s* threshold in sensor packets
// (default 100).
func WithBurst(packets int) Option { return func(s *Scenario) { s.burstPackets = packets } }

// WithSeed sets the seed driving all run randomness (default 1).
func WithSeed(seed int64) Option { return func(s *Scenario) { s.seed = seed } }

// WithRadios selects the sensor and wifi energy profiles (default
// Micaz and Lucent 11 Mbps).
func WithRadios(sensor, wifi energy.Profile) Option {
	return func(s *Scenario) {
		s.sensorProfile = sensor
		s.wifiProfile = wifi
	}
}

// WithWifiRange overrides the wifi profile's transmission range (the
// paper gives Lucent 11 Mbps the sensor radio's 40 m range; zero keeps
// the profile range).
func WithWifiRange(r units.Meters) Option { return func(s *Scenario) { s.wifiRange = r } }

// WithPostBurstLinger keeps dual-model radios idling after bursts
// (Figure 4's "idle" scenario; default immediate shutdown).
func WithPostBurstLinger(d time.Duration) Option {
	return func(s *Scenario) { s.postBurstLinger = d }
}

// WithShortcutLearner routes dual-model bursts over sensor-tree next
// hops upgraded by shortcut learning (Section 3) instead of a wifi
// tree.
func WithShortcutLearner(on bool) Option {
	return func(s *Scenario) { s.useShortcutLearner = on }
}

// WithMinGrant enables the give-up extension: grants below this many
// packets abort the handshake (default off).
func WithMinGrant(packets int) Option { return func(s *Scenario) { s.minGrantPackets = packets } }

// WithAdaptiveThreshold enables the adaptive-s* extension with the
// given alpha when positive (default off).
func WithAdaptiveThreshold(alpha float64) Option {
	return func(s *Scenario) { s.adaptiveAlpha = alpha }
}

// WithDelayBound enables the delay-constrained extension: buffered
// packets older than the bound are sent over the low-power radio
// (default off).
func WithDelayBound(d time.Duration) Option { return func(s *Scenario) { s.delayBound = d } }

// WithTrace enables per-run observability: every run of the scenario
// records per-node per-radio per-state energy breakdowns
// (Result.PerNode), and — as the options select — packet-provenance
// and state-transition event streams plus periodic energy samples
// (Result.Trace). Tracing never perturbs the simulated trajectory:
// goodput, delays and the sequence of protocol events are identical to
// an untraced run of the same seed (sampling ticks do grow the Events
// counter, and settling meters at sample instants can shift energy
// totals by float-rounding ulps). Scenarios without WithTrace pay
// nothing: the probe hooks stay nil, which is the benchmarked
// zero-cost fast path.
func WithTrace(o trace.Options) Option {
	return func(s *Scenario) {
		s.traceOn = true
		s.traceOpts = o
	}
}

// WithEventQueue selects the scheduler's event-queue backend (default
// sim.QueueAuto: 4-ary heap, migrating to the calendar queue on large
// pending sets). All backends produce byte-identical results for a
// given seed; the option exists for benchmarking and for pinning a
// backend in equivalence tests.
func WithEventQueue(p sim.QueuePolicy) Option {
	return func(s *Scenario) { s.queuePolicy = p }
}

// WithDenseNeighborIndex forces the radio channels to materialize their
// full neighbor index at construction instead of memoizing rows from
// the spatial hash on first use (the default). Deliveries and results
// are identical either way; eager materialization only changes when the
// work happens and costs O(N + edges) memory up front.
func WithDenseNeighborIndex(on bool) Option {
	return func(s *Scenario) { s.denseIndex = on }
}

// NewScenario assembles and validates a Scenario from its parts. Every
// default is explicit — the zero Scenario does not exist — and every
// constraint (topology well-formedness, sink and sender placement,
// rates, the churn schedule) is checked here, at build time, so
// RunScenario cannot fail on configuration.
//
// Defaults: the paper's single-hop evaluation — dual model on a 6x6
// grid over 200 m, near-center sink, 5 stable-shuffled CBR senders at
// 0.2 Kbps, 5000 s, burst threshold 100, Micaz + Lucent 11 Mbps at
// 40 m, no loss, no churn, seed 1.
func NewScenario(opts ...Option) (*Scenario, error) {
	s := &Scenario{
		model:         ModelDual,
		topology:      GridTopology(params.GridNodes, params.FieldSize),
		sink:          SinkNearCenter(),
		senders:       StableShuffleSenders(),
		nSenders:      5,
		workload:      CBRWorkload(params.LowRate),
		duration:      params.SimDuration,
		burstPackets:  100,
		seed:          1,
		sensorProfile: energy.Micaz(),
		wifiProfile:   energy.Lucent11(),
		wifiRange:     params.WifiShortRange,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.build(); err != nil {
		return nil, err
	}
	return s, nil
}

// build materializes and validates the composed parts.
func (s *Scenario) build() error {
	switch {
	case s.model < ModelSensor || s.model > ModelDual:
		return fmt.Errorf("netsim: invalid model %d", int(s.model))
	case s.topology == nil:
		return fmt.Errorf("netsim: nil topology")
	case s.sink == nil:
		return fmt.Errorf("netsim: nil sink policy")
	case s.senders == nil:
		return fmt.Errorf("netsim: nil sender policy")
	case s.duration <= 0:
		return fmt.Errorf("netsim: non-positive duration %v", s.duration)
	case s.model == ModelDual && s.burstPackets < 1:
		return fmt.Errorf("netsim: dual model needs positive burst size")
	case s.minGrantPackets < 0:
		return fmt.Errorf("netsim: negative min grant")
	case s.adaptiveAlpha < 0:
		return fmt.Errorf("netsim: negative adaptive alpha")
	case s.delayBound < 0:
		return fmt.Errorf("netsim: negative delay bound")
	case s.postBurstLinger < 0:
		return fmt.Errorf("netsim: negative post-burst linger")
	case s.wifiRange < 0:
		return fmt.Errorf("netsim: negative wifi range %v", s.wifiRange)
	case s.queuePolicy < sim.QueueAuto || s.queuePolicy > sim.QueueCalendar:
		return fmt.Errorf("netsim: invalid event-queue policy %d", int(s.queuePolicy))
	}
	if err := s.workload.validate(); err != nil {
		return err
	}
	if err := s.links.validate(); err != nil {
		return err
	}

	layout, err := s.topology.Layout()
	if err != nil {
		return err
	}
	if layout.Len() < 2 {
		return fmt.Errorf("netsim: need at least 2 nodes, got %d", layout.Len())
	}
	sink, err := s.sink.Pick(layout)
	if err != nil {
		return err
	}
	if sink < 0 || sink >= layout.Len() {
		return fmt.Errorf("netsim: sink %d outside layout", sink)
	}
	// The default sender count only applies to counting policies: an
	// explicit sender set carries its own size, and the builder's
	// untouched default must not conflict with it.
	nWanted := s.nSenders
	if !s.nSendersSet {
		if _, explicit := s.senders.(explicitSenders); explicit {
			nWanted = 0
		}
	}
	senderIDs, err := s.senders.Pick(layout, sink, nWanted)
	if err != nil {
		return err
	}
	if len(senderIDs) == 0 {
		return fmt.Errorf("netsim: no senders selected")
	}
	for _, id := range senderIDs {
		if id < 0 || id >= layout.Len() || id == sink {
			return fmt.Errorf("netsim: sender policy %q picked invalid sender %d",
				s.senders.Kind(), id)
		}
	}

	// Connectivity is a build-time property of the composed scenario:
	// catching a partitioned deployment here yields one clear error
	// instead of a routing failure mid-run. The sensor fabric must span
	// the network for the sensor and dual models; the pure-802.11 model
	// only needs connectivity at wifi range.
	reqRange := s.sensorProfile.Range
	radioName := "sensor"
	if s.model == ModelWifi {
		reqRange = s.wifiRange
		if reqRange == 0 {
			reqRange = s.wifiProfile.Range
		}
		radioName = "wifi"
	}
	if !layout.Connected(sink, reqRange) {
		return fmt.Errorf("netsim: %q topology (%d nodes) is not connected at the %s radio's %v range from sink %d; increase density, shrink the field, or try another topology seed",
			s.topology.Kind(), layout.Len(), radioName, reqRange, sink)
	}

	s.layout = layout
	s.sinkID = sink
	s.senderIDs = senderIDs
	s.nSenders = len(senderIDs)

	if s.churn != nil {
		events, err := s.churn.Events(layout.Len(), sink, s.duration)
		if err != nil {
			return err
		}
		s.churnEvents = events
	}
	return nil
}

// Model returns the evaluation model.
func (s *Scenario) Model() Model { return s.model }

// Layout returns the materialized node positions.
func (s *Scenario) Layout() *topo.Layout { return s.layout }

// Nodes returns the deployment size.
func (s *Scenario) Nodes() int { return s.layout.Len() }

// Sink returns the resolved sink node index.
func (s *Scenario) Sink() int { return s.sinkID }

// SenderIDs returns a copy of the resolved sender node indices, in
// placement order.
func (s *Scenario) SenderIDs() []int {
	out := make([]int, len(s.senderIDs))
	copy(out, s.senderIDs)
	return out
}

// Seed returns the run seed.
func (s *Scenario) Seed() int64 { return s.seed }

// Duration returns the simulated run length.
func (s *Scenario) Duration() time.Duration { return s.duration }

// TopologyKind names the scenario's topology family.
func (s *Scenario) TopologyKind() string { return s.topology.Kind() }

// ChurnEvents returns a copy of the resolved failure/recovery
// schedule (empty without churn).
func (s *Scenario) ChurnEvents() []ChurnEvent {
	out := make([]ChurnEvent, len(s.churnEvents))
	copy(out, s.churnEvents)
	return out
}

// NewScalingScenario builds the canonical big-topology scaling setup
// used by the scaling benchmark and the large-grid golden fingerprint:
// the sensor model on a square grid sized to hold nodes with exactly
// the sensor radio's 40 m spacing (field = 40 m * (side - 1), the same
// geometry as the paper's 6x6 evaluation grid, extended), near-center
// sink, CBR senders at the sensor high rate — max(10, nodes/100)
// senders, capped at nodes-1 — and seed 1. Everything is deterministic
// in (nodes, duration), so a fixed-seed run fingerprints stably.
func NewScalingScenario(nodes int, duration time.Duration) (*Scenario, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("netsim: scaling scenario needs at least 2 nodes, got %d", nodes)
	}
	side := int(math.Ceil(math.Sqrt(float64(nodes))))
	field := units.Meters(float64(side-1)) * energy.Micaz().Range
	senders := max(10, nodes/100)
	if senders > nodes-1 {
		senders = nodes - 1
	}
	return NewScenario(
		WithModel(ModelSensor),
		WithTopology(GridTopology(nodes, field)),
		WithSenders(senders),
		WithWorkload(CBRWorkload(params.HighRate)),
		WithDuration(duration),
	)
}

// withSeed returns a shallow copy of the scenario rebuilt with a
// different run seed. Placement and churn schedules do not depend on
// the run seed, so the copy shares the layout and reuses the resolved
// IDs; only random topologies seeded from the run seed would differ,
// and those carry their own seeds by construction.
func (s *Scenario) withSeed(seed int64) *Scenario {
	c := *s
	c.seed = seed
	return &c
}
