// Package netsim assembles full-network simulations of the paper's three
// evaluation models (Section 4.1):
//
//   - Sensor: a pure sensor network forwarding every packet hop-by-hop
//     over the low-power radio. Charged under two policies at once: the
//     ideal model (tx/rx only) and the header model (plus header
//     overhearing); idle is a base cost and ignored, as in the paper.
//   - Wifi: a pure IEEE 802.11 network with always-on radios, charged in
//     full (including idling).
//   - Dual: BCP over both radios — control on the sensor radio, bulk
//     data on the 802.11 radio, which is fully charged (tx, rx, idle,
//     wake-up, overhearing).
//
// The default scenario is the paper's: a 6x6 grid over 200x200 m, a
// near-center sink, N CBR senders, 5000 s runs. Beyond it, the
// composable Scenario API (NewScenario with functional options)
// assembles runs from pluggable parts — Topology, sink and sender
// placement policies, Workload, LinkModel and Churn — validated at
// build time; the flat Config is the serializable compatibility layer
// that compiles onto a Scenario via Config.Scenario.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/energy"
	"bulktx/internal/metrics"
	"bulktx/internal/params"
	"bulktx/internal/radio"
	"bulktx/internal/topo"
	"bulktx/internal/trace"
	"bulktx/internal/units"
)

// Model selects the evaluation model.
type Model int

// Evaluation models.
const (
	// ModelSensor is the pure sensor network.
	ModelSensor Model = iota + 1
	// ModelWifi is the pure 802.11 network with always-on radios.
	ModelWifi
	// ModelDual is BCP over the dual-radio platform.
	ModelDual
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelSensor:
		return "sensor"
	case ModelWifi:
		return "802.11"
	case ModelDual:
		return "dual-radio"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// senderPermSeed fixes the sender-selection shuffle independently of the
// run seed so that the 5-sender set is a subset of the 10-sender set and
// both are identical across repetitions.
const senderPermSeed = 0xBEEF

// Traffic selects the arrival process of the senders.
type Traffic int

// Traffic models.
const (
	// TrafficCBR is the paper's constant-bit-rate workload (default).
	TrafficCBR Traffic = iota
	// TrafficPoisson uses exponentially distributed inter-arrivals at
	// the same mean rate.
	TrafficPoisson
	// TrafficOnOff alternates peak-rate bursts (mean 2 s ON) with
	// silences sized to preserve the configured mean rate — the shape of
	// event-triggered acoustic capture.
	TrafficOnOff
)

// String names the traffic model.
func (t Traffic) String() string {
	switch t {
	case TrafficCBR:
		return "cbr"
	case TrafficPoisson:
		return "poisson"
	case TrafficOnOff:
		return "onoff"
	default:
		return fmt.Sprintf("Traffic(%d)", int(t))
	}
}

// Config is the flat, serializable description of one simulation run —
// the compatibility and wire format behind the composable Scenario API.
// New code should prefer NewScenario with functional options
// (WithTopology, WithSenders, WithChurn, ...), which makes every
// default explicit and validates at build time; a Config compiles to a
// Scenario via Config.Scenario, and fixed-seed results through either
// surface are identical. Direct field access remains supported for
// sweeps, JSON specs and caches, where a flat struct is the right
// shape; prefer the builder everywhere else.
//
// Deprecated sentinels kept for compatibility: Sink < 0 selects the
// near-center default (the builder's explicit SinkNearCenter), and
// zero-valued fields inherit scenario defaults at compile time.
type Config struct {
	// Model selects sensor / 802.11 / dual-radio.
	Model Model

	// Nodes and Field define the grid (paper: 36 over 200 m).
	Nodes int
	Field units.Meters

	// Sink is the collection node index; negative selects the default
	// near-center node.
	//
	// Deprecated: the negative sentinel is the flat layer's legacy
	// encoding of "no explicit sink" and is honored forever so that
	// serialized configs and sweep cache keys keep working, but new
	// code should express placement through the builder instead:
	// WithSink(SinkNearCenter()) for the default, WithSink(SinkAt(i))
	// for a pinned node. No further sentinel values will be added.
	Sink int

	// Senders is how many nodes stream CBR traffic to the sink (5-35).
	Senders int

	// Rate is the per-sender application rate (0.2 or 2 Kbps).
	Rate units.BitRate

	// Traffic selects the arrival process (default CBR, as in the paper).
	Traffic Traffic

	// Duration is the simulated time (paper: 5000 s).
	Duration time.Duration

	// BurstPackets is the dual-radio alpha-s* threshold in sensor packets
	// (10/100/500/1000/2500).
	BurstPackets int

	// Seed drives all randomness of the run.
	Seed int64

	// SensorProfile and WifiProfile pick the radios (default Micaz and,
	// for the single-hop case, Lucent 11 Mbps).
	SensorProfile, WifiProfile energy.Profile

	// WifiRange overrides the wifi profile range (the paper gives Lucent
	// 11 Mbps the sensor radio's 40 m range).
	WifiRange units.Meters

	// SensorLoss injects random frame loss on the sensor channel.
	SensorLoss float64

	// WifiLoss injects random frame loss on the 802.11 channel.
	WifiLoss float64

	// PostBurstLinger keeps dual-model radios idling after bursts
	// (Figure 4's "idle" scenario; zero = immediate shutdown).
	PostBurstLinger time.Duration

	// UseShortcutLearner routes the dual model's bursts over sensor-tree
	// next hops upgraded by shortcut learning instead of a wifi tree
	// (Section 3 route optimization; an ablation in this codebase).
	UseShortcutLearner bool

	// MinGrantPackets enables the paper's give-up extension: grants below
	// this many packets abort the handshake.
	MinGrantPackets int

	// AdaptiveThresholdAlpha enables the adaptive-s* extension (paper
	// future work) with the given alpha when positive: agents recompute
	// their thresholds from observed retransmissions after every burst.
	AdaptiveThresholdAlpha float64

	// DelayBound enables the delay-constrained extension (paper future
	// work): buffered packets older than this are sent over the
	// low-power radio. Zero disables.
	DelayBound time.Duration

	// Topology selects the layout family: "" or "grid" (default),
	// "uniform", "clustered", "linear". The new fields below are the
	// flat forms of the Scenario API's pluggable parts; they carry
	// omitempty JSON tags so configurations that do not use them keep
	// their pre-redesign encoding (and sweep cache keys) byte-for-byte.
	Topology string `json:",omitempty"`

	// TopologySeed fixes the placement of random topologies (uniform,
	// clustered) independently of the run seed, so seeded repetitions
	// share one deployment (the senderPermSeed convention applied to
	// geometry). Zero selects a fixed default placement.
	TopologySeed int64 `json:",omitempty"`

	// Clusters is the hotspot count of the clustered topology
	// (default 4).
	Clusters int `json:",omitempty"`

	// ChurnRate enables random node churn: the expected number of
	// failures per node per simulated hour. Zero disables churn.
	ChurnRate float64 `json:",omitempty"`

	// ChurnMeanDowntime is the mean outage length under churn
	// (default 60 s).
	ChurnMeanDowntime time.Duration `json:",omitempty"`
}

// DefaultConfig returns the paper's scenario for a model, sender count,
// burst size and seed.
func DefaultConfig(model Model, senders, burstPackets int, seed int64) Config {
	return Config{
		Model:         model,
		Nodes:         params.GridNodes,
		Field:         params.FieldSize,
		Sink:          -1,
		Senders:       senders,
		Rate:          params.LowRate,
		Duration:      params.SimDuration,
		BurstPackets:  burstPackets,
		Seed:          seed,
		SensorProfile: energy.Micaz(),
		WifiProfile:   energy.Lucent11(),
		WifiRange:     params.WifiShortRange,
	}
}

// MultiHopConfig returns the paper's multi-hop scenario: Cabletron
// reaching the sink in one hop.
func MultiHopConfig(senders, burstPackets int, seed int64) Config {
	cfg := DefaultConfig(ModelDual, senders, burstPackets, seed)
	cfg.WifiProfile = energy.Cabletron()
	cfg.WifiRange = params.WifiLongRange
	cfg.Rate = params.HighRate
	return cfg
}

// FieldError is a validation failure annotated with the name of the
// offending field — a Config field ("Senders") or, when wrapped by the
// spec layers, a JSON document field ("senders"). Callers that turn
// validation failures into structured responses (the HTTP service's
// 400 bodies) extract it with errors.As; everyone else sees a plain
// error whose text leads with the field name.
type FieldError struct {
	// Field names the offending field.
	Field string
	// Reason describes why the field's value is unusable.
	Reason string
}

// Error renders "invalid <field>: <reason>".
func (e *FieldError) Error() string { return "invalid " + e.Field + ": " + e.Reason }

// Validate reports whether the configuration is usable. Failures are
// FieldErrors naming the offending Config field (wrapped under a
// "netsim:" prefix).
func (c Config) Validate() error {
	bad := func(field, format string, a ...any) error {
		return fmt.Errorf("netsim: %w", &FieldError{Field: field, Reason: fmt.Sprintf(format, a...)})
	}
	switch {
	case c.Model < ModelSensor || c.Model > ModelDual:
		return bad("Model", "unknown model %d", int(c.Model))
	case c.Nodes < 2:
		return bad("Nodes", "need at least 2 nodes, got %d", c.Nodes)
	case c.Field <= 0:
		return bad("Field", "non-positive field %v", c.Field)
	case c.Senders < 1 || c.Senders >= c.Nodes:
		return bad("Senders", "senders %d outside [1, %d)", c.Senders, c.Nodes)
	case c.Rate <= 0:
		return bad("Rate", "non-positive rate %v", c.Rate)
	case c.Duration <= 0:
		return bad("Duration", "non-positive duration %v", c.Duration)
	case c.Model == ModelDual && c.BurstPackets < 1:
		return bad("BurstPackets", "dual model needs a positive burst size, got %d", c.BurstPackets)
	case c.SensorLoss < 0 || c.SensorLoss >= 1:
		return bad("SensorLoss", "loss probability %v outside [0,1)", c.SensorLoss)
	case c.WifiLoss < 0 || c.WifiLoss >= 1:
		return bad("WifiLoss", "loss probability %v outside [0,1)", c.WifiLoss)
	case c.MinGrantPackets < 0:
		return bad("MinGrantPackets", "negative min grant %d", c.MinGrantPackets)
	case c.AdaptiveThresholdAlpha < 0:
		return bad("AdaptiveThresholdAlpha", "negative adaptive alpha %v", c.AdaptiveThresholdAlpha)
	case c.DelayBound < 0:
		return bad("DelayBound", "negative delay bound %v", c.DelayBound)
	case c.Traffic < TrafficCBR || c.Traffic > TrafficOnOff:
		return bad("Traffic", "unknown traffic model %d", int(c.Traffic))
	case c.Clusters < 0:
		return bad("Clusters", "negative cluster count %d", c.Clusters)
	case c.ChurnRate < 0:
		return bad("ChurnRate", "negative churn rate %v", c.ChurnRate)
	case c.ChurnMeanDowntime < 0:
		return bad("ChurnMeanDowntime", "negative churn downtime %v", c.ChurnMeanDowntime)
	}
	switch c.Topology {
	case "", TopoGrid, TopoUniform, TopoClustered, TopoLinear:
	default:
		return bad("Topology", "unknown topology %q (want %v)", c.Topology, TopologyKinds())
	}
	return nil
}

// churnSeedSalt decorrelates the churn schedule's PRNG stream from the
// scheduler's, which is seeded with the run seed directly.
const churnSeedSalt = 0x5EED_C4A5

// defaultTopologySeed places random topologies when the config does
// not pin one. It is a fixed constant — not the run seed — so seeded
// repetitions share one deployment and a multi-rep batch cannot
// straddle connected and partitioned layouts.
const defaultTopologySeed = 1

// topology materializes the config's flat topology fields into the
// Scenario API's pluggable form.
func (c Config) topology() Topology {
	seed := c.TopologySeed
	if seed == 0 {
		seed = defaultTopologySeed
	}
	switch c.Topology {
	case TopoUniform:
		return UniformTopology(c.Nodes, c.Field, seed)
	case TopoClustered:
		clusters := c.Clusters
		if clusters == 0 {
			clusters = 4
		}
		// Spread scales with per-cluster share of the field so clusters
		// stay distinct but internally connected at sensor range.
		return ClusteredTopology(c.Nodes, clusters, c.Field, c.Field/8, seed)
	case TopoLinear:
		return LinearTopology(c.Nodes, c.Field)
	default:
		return GridTopology(c.Nodes, c.Field)
	}
}

// Scenario compiles the flat configuration into a built Scenario. The
// compilation is exact: a fixed-seed run through the compiled scenario
// is byte-identical to the pre-redesign flat-config runner (asserted by
// the golden-fingerprint tests).
//
// The optional extra options apply after the compiled ones, so callers
// can layer non-serializable concerns — WithTrace, most commonly — on
// top of a flat config without leaving the compatibility surface.
func (c Config) Scenario(extra ...Option) (*Scenario, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sink := SinkPolicy(SinkNearCenter())
	if c.Sink >= 0 {
		sink = SinkAt(c.Sink)
	}
	opts := []Option{
		WithModel(c.Model),
		WithTopology(c.topology()),
		WithSink(sink),
		WithSenders(c.Senders),
		WithSenderPolicy(StableShuffleSenders()),
		WithWorkload(Workload{Traffic: c.Traffic, Rate: c.Rate}),
		WithLinks(LinkModel{SensorLoss: c.SensorLoss, WifiLoss: c.WifiLoss}),
		WithDuration(c.Duration),
		WithSeed(c.Seed),
		WithRadios(c.SensorProfile, c.WifiProfile),
		WithWifiRange(c.WifiRange),
		WithPostBurstLinger(c.PostBurstLinger),
		WithShortcutLearner(c.UseShortcutLearner),
		WithMinGrant(c.MinGrantPackets),
		WithAdaptiveThreshold(c.AdaptiveThresholdAlpha),
		WithDelayBound(c.DelayBound),
	}
	if c.Model == ModelDual {
		opts = append(opts, WithBurst(c.BurstPackets))
	} else {
		// The baseline models validate but never consult the threshold;
		// pin it so flat configs with a zero burst still compile.
		opts = append(opts, WithBurst(1))
	}
	if c.ChurnRate > 0 {
		down := c.ChurnMeanDowntime
		if down == 0 {
			down = time.Minute
		}
		// The schedule varies per seeded repetition like any other noise
		// process, but from a decorrelated stream: seeding it with the
		// run seed verbatim would replay the exact PRNG sequence that
		// drives channel loss, backoff and arrivals.
		opts = append(opts, WithChurn(RandomChurn(c.ChurnRate, down, c.Seed^churnSeedSalt)))
	}
	opts = append(opts, extra...)
	return NewScenario(opts...)
}

// Result carries one run's outcomes.
type Result struct {
	// RunResult holds the metric inputs (TotalEnergy follows the model's
	// charging policy; for the sensor model it is the header-model total).
	// Its PerNode breakdown is populated only for traced runs.
	metrics.RunResult
	// IdealEnergy is the sensor model's total without overhearing
	// charges (equal to TotalEnergy for other models).
	IdealEnergy units.Energy
	// SensorStats and WifiStats are channel-level counters.
	SensorStats, WifiStats radio.Stats
	// AgentStats aggregates BCP counters across nodes (dual model only).
	AgentStats core.Stats
	// Events counts scheduler events processed.
	Events uint64
	// Trace holds the recorded event/sample streams of a traced run
	// (nil otherwise). It is deliberately excluded from the JSON
	// encoding — event streams are exported through the sweep trace
	// exporters, not serialized inside results; PerNode (omitempty,
	// absent when untraced) is the serializable breakdown.
	Trace *trace.Recording `json:"-"`
}

// defaultSink picks the node closest to the field center, matching the
// paper's requirement that the long-range radio reach the sink in one
// hop from everywhere.
func defaultSink(layout *topo.Layout) int {
	cx := units.Meters(0)
	cy := units.Meters(0)
	for i := 0; i < layout.Len(); i++ {
		p := layout.Position(i)
		cx += p.X / units.Meters(float64(layout.Len()))
		cy += p.Y / units.Meters(float64(layout.Len()))
	}
	center := topo.Position{X: cx, Y: cy}
	best, bestD := 0, units.Meters(-1)
	for i := 0; i < layout.Len(); i++ {
		d := topo.Distance(layout.Position(i), center)
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// pickSenders returns the stable pseudo-random sender subset of size n
// excluding the sink, under the default permutation seed.
func pickSenders(nodes, sink, n int) []int {
	return pickSendersSeeded(nodes, sink, n, senderPermSeed)
}

// pickSendersSeeded is pickSenders under an explicit permutation seed
// (the shuffled sender policies' engine). The permutation is fixed by
// permSeed alone — independent of the run seed — so sender sets nest
// (the 5-sender set prefixes the 10-sender set) and repeat across
// seeded repetitions.
func pickSendersSeeded(nodes, sink, n int, permSeed int64) []int {
	perm := rand.New(rand.NewSource(permSeed)).Perm(nodes)
	senders := make([]int, 0, n)
	for _, v := range perm {
		if v == sink {
			continue
		}
		senders = append(senders, v)
		if len(senders) == n {
			break
		}
	}
	return senders
}
