package analysis

import (
	"fmt"
	"math"

	"bulktx/internal/units"
)

// Multi-hop extension (paper Section 2.1, Equations 4-5). When the
// high-power radio reaches fp hops of sensor-radio forward progress in a
// single transmission, the sensor path pays fp times the single-hop cost
// while the high-power path pays one transfer plus forwarding the wake-up
// message across the intermediate sensor hops.

// SensorEnergyMH evaluates Equation 4: E_L^mh(s) = fp * E_L(s).
func (m *Model) SensorEnergyMH(s units.ByteSize, fp int) units.Energy {
	if fp < 1 {
		fp = 1
	}
	return units.Energy(float64(fp)) * m.SensorEnergy(s)
}

// WifiEnergyMH evaluates Equation 5:
// E_H^mh(s) = E_H(s) + (fp-1) * E_wakeup^L.
func (m *Model) WifiEnergyMH(s units.ByteSize, fp int) units.Energy {
	if fp < 1 {
		fp = 1
	}
	return m.WifiEnergy(s) + units.Energy(float64(fp-1))*m.WakeupHandshakeEnergy()
}

// FeasibleMH reports whether the high-power radio wins for some data size
// given fp hops of forward progress.
func (m *Model) FeasibleMH(fp int) bool {
	if fp < 1 {
		fp = 1
	}
	return float64(fp)*m.perBitL() > m.perBitH()
}

// BreakEvenClosedFormMH solves the multi-hop analogue of Equation 3:
//
//	s* = (E_wakeup^H + fp*E_wakeup^L + E_idle) / (fp*perBitL - perBitH)
func (m *Model) BreakEvenClosedFormMH(fp int) (units.ByteSize, error) {
	if fp < 1 {
		fp = 1
	}
	denom := float64(fp)*m.perBitL() - m.perBitH()
	if denom <= 0 {
		return 0, fmt.Errorf("%w: %s vs %s at fp=%d",
			ErrInfeasible, m.high.Name, m.low.Name, fp)
	}
	numer := (m.WakeupEnergy() +
		units.Energy(float64(fp))*m.WakeupHandshakeEnergy() +
		m.IdleEnergy() + m.overhearH).Joules() -
		float64(fp)*m.overhearL.Joules()
	if numer < 0 {
		numer = 0
	}
	return units.ByteSize(math.Ceil(numer / denom / 8)), nil
}

// BreakEvenMH finds the discrete multi-hop break-even size for fp hops of
// forward progress.
func (m *Model) BreakEvenMH(fp int) (units.ByteSize, error) {
	if !m.FeasibleMH(fp) {
		return 0, fmt.Errorf("%w: %s vs %s at fp=%d",
			ErrInfeasible, m.high.Name, m.low.Name, fp)
	}
	return m.breakEven(
		func(s units.ByteSize) units.Energy { return m.SensorEnergyMH(s, fp) },
		func(s units.ByteSize) units.Energy { return m.WifiEnergyMH(s, fp) },
	)
}

// SavingsMH is the multi-hop analogue of Savings.
func (m *Model) SavingsMH(s units.ByteSize, fp int) float64 {
	el := m.SensorEnergyMH(s, fp).Joules()
	if el == 0 {
		return 0
	}
	return 1 - m.WifiEnergyMH(s, fp).Joules()/el
}
