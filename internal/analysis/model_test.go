package analysis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/units"
)

func mustModel(t *testing.T, low, high energy.Profile, opts ...Option) *Model {
	t.Helper()
	m, err := NewModel(low, high, opts...)
	if err != nil {
		t.Fatalf("NewModel(%s, %s): %v", low.Name, high.Name, err)
	}
	return m
}

func TestNewModelRejectsSwappedClasses(t *testing.T) {
	if _, err := NewModel(energy.Cabletron(), energy.Micaz()); err == nil {
		t.Error("NewModel accepted swapped low/high profiles")
	}
	if _, err := NewModel(energy.Micaz(), energy.Mica()); err == nil {
		t.Error("NewModel accepted two low-power profiles")
	}
}

func TestNewModelRejectsBadOptions(t *testing.T) {
	if _, err := NewModel(energy.Micaz(), energy.Lucent11(),
		WithIdleTime(-time.Second)); err == nil {
		t.Error("NewModel accepted negative idle time")
	}
	if _, err := NewModel(energy.Micaz(), energy.Lucent11(),
		WithIdleRadios(-1)); err == nil {
		t.Error("NewModel accepted negative idle radios")
	}
	bad := DefaultLink()
	bad.RetxL = 0.5
	if _, err := NewModel(energy.Micaz(), energy.Lucent11(), WithLink(bad)); err == nil {
		t.Error("NewModel accepted expected transmissions < 1")
	}
}

func TestLinkValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Link)
		wantOK bool
	}{
		{"default", func(l *Link) {}, true},
		{"zero payloadL", func(l *Link) { l.PayloadL = 0 }, false},
		{"zero payloadH", func(l *Link) { l.PayloadH = 0 }, false},
		{"negative header", func(l *Link) { l.HeaderL = -1 }, false},
		{"negative control", func(l *Link) { l.Control = -1 }, false},
		{"retx below one", func(l *Link) { l.RetxH = 0 }, false},
		{"lossy links ok", func(l *Link) { l.RetxL, l.RetxH = 1.5, 2 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := DefaultLink()
			tt.mutate(&l)
			err := l.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, wantOK=%v", err, tt.wantOK)
			}
		})
	}
}

func TestNumPackets(t *testing.T) {
	tests := []struct {
		s, payload units.ByteSize
		want       int64
	}{
		{0, 32, 0},
		{-5, 32, 0},
		{1, 32, 1},
		{32, 32, 1},
		{33, 32, 2},
		{1024, 32, 32},
		{1025, 1024, 2},
	}
	for _, tt := range tests {
		if got := NumPackets(tt.s, tt.payload); got != tt.want {
			t.Errorf("NumPackets(%d, %d) = %d, want %d", tt.s, tt.payload, got, tt.want)
		}
	}
}

func TestSensorEnergyHandComputed(t *testing.T) {
	// Micaz moving 4096 B: 128 frames of 43 B at 4.404e-7 J/bit.
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	perBit := (0.051 + 0.0591) / 250000.0
	want := 128 * 43 * 8 * perBit
	if got := m.SensorEnergy(4096 * units.Byte).Joules(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("SensorEnergy(4096) = %v, want %v", got, want)
	}
}

func TestWifiEnergyHandComputed(t *testing.T) {
	// Lucent11 moving 4096 B: 4 frames of 1082 B plus wake-up overheads.
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	perBitH := (1.3461 + 0.9006) / 11e6
	perBitL := (0.051 + 0.0591) / 250000.0
	handshake := 2 * perBitL * float64((16+11)*8)
	want := 2*0.6e-3 + handshake + 4*1082*8*perBitH
	if got := m.WifiEnergy(4096 * units.Byte).Joules(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("WifiEnergy(4096) = %v, want %v", got, want)
	}
}

func TestPaperClaimSingleHopFeasibility(t *testing.T) {
	// Section 2.2: "Both Cabletron and Lucent (2 Mb/s) do not provide any
	// energy savings with Micaz ... However, Lucent (11 Mbps) achieves a
	// 50% energy savings compared to Micaz at around 4 KB."
	micaz := energy.Micaz()
	if mustModel(t, micaz, energy.Cabletron()).Feasible() {
		t.Error("Cabletron-Micaz should be infeasible single-hop")
	}
	if mustModel(t, micaz, energy.Lucent2()).Feasible() {
		t.Error("Lucent2-Micaz should be infeasible single-hop")
	}
	m := mustModel(t, micaz, energy.Lucent11())
	if !m.Feasible() {
		t.Fatal("Lucent11-Micaz should be feasible single-hop")
	}
	savings := m.Savings(4 * units.Kilobyte)
	if savings < 0.35 || savings > 0.65 {
		t.Errorf("Savings(4KB) = %.3f, want ~0.5 (paper claim)", savings)
	}
}

func TestPaperClaimBreakEvenBelow1KB(t *testing.T) {
	// Section 2.2: "for both the single-hop and multi-hop case, s* is at
	// most at 1 KB" for the feasible combinations with E_idle = 0.
	combos := []struct {
		low, high energy.Profile
	}{
		{energy.Mica(), energy.Cabletron()},
		{energy.Mica(), energy.Lucent2()},
		{energy.Mica(), energy.Lucent11()},
		{energy.Mica2(), energy.Cabletron()},
		{energy.Mica2(), energy.Lucent2()},
		{energy.Mica2(), energy.Lucent11()},
		{energy.Micaz(), energy.Lucent11()},
	}
	for _, c := range combos {
		m := mustModel(t, c.low, c.high)
		s, err := m.BreakEven()
		if err != nil {
			t.Errorf("%s-%s: BreakEven: %v", c.high.Name, c.low.Name, err)
			continue
		}
		if s > 1*units.Kilobyte {
			t.Errorf("%s-%s: s* = %v, want <= 1 KB", c.high.Name, c.low.Name, s)
		}
		if s <= 0 {
			t.Errorf("%s-%s: s* = %v, want positive", c.high.Name, c.low.Name, s)
		}
	}
}

func TestBreakEvenIsActualCrossover(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	s, err := m.BreakEven()
	if err != nil {
		t.Fatalf("BreakEven: %v", err)
	}
	if m.WifiEnergy(s) > m.SensorEnergy(s) {
		t.Errorf("at s*=%v wifi %v > sensor %v", s, m.WifiEnergy(s), m.SensorEnergy(s))
	}
	prev := s - m.Link().PayloadL
	if prev > 0 && m.WifiEnergy(prev) <= m.SensorEnergy(prev) {
		t.Errorf("s* not minimal: wifi already wins at %v", prev)
	}
}

func TestBreakEvenClosedFormAgreesWithDiscrete(t *testing.T) {
	m := mustModel(t, energy.Mica(), energy.Cabletron())
	cf, err := m.BreakEvenClosedForm()
	if err != nil {
		t.Fatalf("closed form: %v", err)
	}
	disc, err := m.BreakEven()
	if err != nil {
		t.Fatalf("discrete: %v", err)
	}
	// The discrete model quantizes to 32 B sensor and 1024 B wifi packets,
	// so allow one wifi packet of slack.
	diff := math.Abs(float64(cf - disc))
	if diff > float64(m.Link().PayloadH) {
		t.Errorf("closed form %v vs discrete %v differ by more than one wifi packet", cf, disc)
	}
}

func TestBreakEvenInfeasible(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Cabletron())
	if _, err := m.BreakEven(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("BreakEven = %v, want ErrInfeasible", err)
	}
	if _, err := m.BreakEvenClosedForm(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("BreakEvenClosedForm = %v, want ErrInfeasible", err)
	}
}

func TestPaperClaimIdleTimeGrowsBreakEven(t *testing.T) {
	// Figure 2: s* grows with idle time; around 1 s of idling s* lands in
	// the tens-to-hundreds-of-KB band (66-480 KB across combinations in
	// the paper; our headers shift the band slightly).
	var prev units.ByteSize
	for _, idle := range []time.Duration{
		0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second,
	} {
		m := mustModel(t, energy.Mica(), energy.Lucent11(), WithIdleTime(idle))
		s, err := m.BreakEven()
		if err != nil {
			t.Fatalf("idle=%v: %v", idle, err)
		}
		if s < prev {
			t.Errorf("s* not monotone in idle time: %v at %v after %v", s, idle, prev)
		}
		prev = s
	}
	oneSec := mustModel(t, energy.Mica(), energy.Lucent11(), WithIdleTime(time.Second))
	s, err := oneSec.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if s < 20*units.Kilobyte || s > 800*units.Kilobyte {
		t.Errorf("s* at 1s idle = %v, want within the paper's tens-to-hundreds KB band", s)
	}
}

func TestSavingsAsymptote(t *testing.T) {
	// As s grows, savings approach 1 - perBitH/perBitL.
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	asym := 1 - m.perBitH()/m.perBitL()
	got := m.Savings(10 * units.Megabyte)
	if math.Abs(got-asym) > 0.01 {
		t.Errorf("Savings(10MB) = %.4f, want near asymptote %.4f", got, asym)
	}
}

func TestWakeupRadiosOption(t *testing.T) {
	one := mustModel(t, energy.Micaz(), energy.Lucent11(), WithWakeupRadios(1))
	two := mustModel(t, energy.Micaz(), energy.Lucent11())
	if got, want := one.WakeupEnergy(), two.WakeupEnergy()/2; got != want {
		t.Errorf("WakeupEnergy with 1 radio = %v, want %v", got, want)
	}
}

func TestOverhearingShiftsBreakEven(t *testing.T) {
	// Charging the sensor path for overhearing makes the high-power path
	// win earlier.
	base := mustModel(t, energy.Micaz(), energy.Lucent11())
	oh := mustModel(t, energy.Micaz(), energy.Lucent11(),
		WithOverhearing(2*units.Millijoule, 0))
	s0, err := base.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := oh.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if s1 > s0 {
		t.Errorf("sensor overhearing raised s* (%v -> %v)", s0, s1)
	}
}

// Property: both energy models are monotone non-decreasing in data size.
func TestEnergyMonotoneInSize(t *testing.T) {
	m := mustModel(t, energy.Mica2(), energy.Lucent2())
	f := func(a, b uint16) bool {
		lo, hi := units.ByteSize(a), units.ByteSize(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.SensorEnergy(lo) <= m.SensorEnergy(hi) &&
			m.WifiEnergy(lo) <= m.WifiEnergy(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: at whole wifi-packet multiples, savings are non-decreasing in
// size for a feasible combo (between multiples, packet quantization can
// produce the saw-teeth of Figure 11).
func TestSavingsMonotoneAtPacketMultiples(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	f := func(a uint8) bool {
		n := int(a%100) + 1
		s1 := units.ByteSize(n) * m.Link().PayloadH
		s2 := s1 + m.Link().PayloadH
		return m.Savings(s2) >= m.Savings(s1)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: higher expected retransmissions on the sensor link never
// raise the break-even point.
func TestRetxLowersBreakEven(t *testing.T) {
	f := func(extra uint8) bool {
		link := DefaultLink()
		link.RetxL = 1 + float64(extra%10)/10
		m, err := NewModel(energy.Micaz(), energy.Lucent11(), WithLink(link))
		if err != nil {
			return false
		}
		s, err := m.BreakEven()
		if err != nil {
			return false
		}
		base, err := mustBreakEven(energy.Micaz(), energy.Lucent11())
		if err != nil {
			return false
		}
		return s <= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustBreakEven(low, high energy.Profile) (units.ByteSize, error) {
	m, err := NewModel(low, high)
	if err != nil {
		return 0, err
	}
	return m.BreakEven()
}

func TestZeroSize(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	if got := m.SensorEnergy(0); got != 0 {
		t.Errorf("SensorEnergy(0) = %v, want 0", got)
	}
	// Wifi still pays wake-up overheads even for zero data.
	if got := m.WifiEnergy(0); got <= 0 {
		t.Errorf("WifiEnergy(0) = %v, want positive overheads", got)
	}
	if got := m.Savings(0); got != 0 {
		t.Errorf("Savings(0) = %v, want 0", got)
	}
}
