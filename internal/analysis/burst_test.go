package analysis

import (
	"testing"
	"testing/quick"

	"bulktx/internal/energy"
	"bulktx/internal/params"
	"bulktx/internal/units"
)

func TestBurstSavingsPaperShape(t *testing.T) {
	// Figure 4: savings rise quickly up to ~10 packets, then continue at
	// a much slower rate; "the majority of savings are obtained when
	// n = 10".
	for _, high := range energy.HighPowerProfiles() {
		m := mustModel(t, energy.Micaz(), high)
		s10, err := m.BurstSavings(10)
		if err != nil {
			t.Fatal(err)
		}
		s1000, err := m.BurstSavings(1000)
		if err != nil {
			t.Fatal(err)
		}
		if s1000 <= 0 {
			t.Errorf("%s: BurstSavings(1000) = %.3f, want positive", high.Name, s1000)
			continue
		}
		if frac := s10 / s1000; frac < 0.75 {
			t.Errorf("%s: savings at n=10 are %.0f%% of n=1000, want majority",
				high.Name, frac*100)
		}
	}
}

func TestBurstSavingsIdleVariantSavesMore(t *testing.T) {
	// Figure 4: "The energy savings are greater when nodes idle 100 ms
	// before turning off."
	for _, high := range energy.HighPowerProfiles() {
		base := mustModel(t, energy.Micaz(), high)
		idle := mustModel(t, energy.Micaz(), high, WithIdleTime(params.PostBurstIdle))
		for _, n := range []int{2, 10, 100, 1000} {
			sBase, err := base.BurstSavings(n)
			if err != nil {
				t.Fatal(err)
			}
			sIdle, err := idle.BurstSavings(n)
			if err != nil {
				t.Fatal(err)
			}
			if sIdle <= sBase {
				t.Errorf("%s n=%d: idle savings %.3f not above base %.3f",
					high.Name, n, sIdle, sBase)
			}
		}
	}
}

func TestBurstSavingsOneIsZero(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	got, err := m.BurstSavings(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("BurstSavings(1) = %v, want 0 (burst of one IS one wake-up)", got)
	}
}

func TestBurstSavingsInvalidN(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	if _, err := m.BurstSavings(0); err == nil {
		t.Error("BurstSavings(0) did not error")
	}
	if _, err := m.BurstSavings(-5); err == nil {
		t.Error("BurstSavings(-5) did not error")
	}
}

func TestBurstEnergyEdges(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent11())
	if got := m.BurstEnergy(0); got != 0 {
		t.Errorf("BurstEnergy(0) = %v, want 0", got)
	}
	if got := m.PerPacketEnergy(-1); got != 0 {
		t.Errorf("PerPacketEnergy(-1) = %v, want 0", got)
	}
	if got, want := m.BurstEnergy(1), m.PerPacketEnergy(1); got != want {
		t.Errorf("BurstEnergy(1) = %v != PerPacketEnergy(1) = %v", got, want)
	}
}

// Property: burst savings are monotone non-decreasing in n and bounded
// within [0, 1).
func TestBurstSavingsMonotoneBounded(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Cabletron(),
		WithIdleTime(params.PostBurstIdle))
	f := func(a uint16) bool {
		n := int(a%2000) + 1
		s1, err1 := m.BurstSavings(n)
		s2, err2 := m.BurstSavings(n + 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 >= s1-1e-12 && s1 >= 0 && s1 < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: burst energy equals per-packet energy minus the amortized
// overheads: E_burst(n) = n*transfer + overhead, E_per(n) = n*(transfer +
// overhead), so E_per - E_burst = (n-1)*overhead.
func TestBurstOverheadAmortization(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Lucent2())
	overhead := m.WakeupEnergy() + m.WakeupHandshakeEnergy() + m.IdleEnergy()
	f := func(a uint16) bool {
		n := int(a%500) + 1
		diff := m.PerPacketEnergy(n) - m.BurstEnergy(n)
		want := units.Energy(float64(n-1)) * overhead
		rel := (diff - want).Joules()
		if want > 0 {
			rel /= want.Joules()
		}
		return rel < 1e-9 && rel > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
