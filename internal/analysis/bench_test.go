package analysis

import (
	"testing"

	"bulktx/internal/energy"
	"bulktx/internal/units"
)

// BenchmarkEnergyModels measures one evaluation of both Section 2 cost
// curves.
func BenchmarkEnergyModels(b *testing.B) {
	m, err := NewModel(energy.Micaz(), energy.Lucent11())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sink units.Energy
	for i := 0; i < b.N; i++ {
		s := units.ByteSize(i%10000 + 1)
		sink += m.SensorEnergy(s) + m.WifiEnergy(s)
	}
	_ = sink
}

// BenchmarkBreakEvenMH measures the multi-hop break-even search.
func BenchmarkBreakEvenMH(b *testing.B) {
	m, err := NewModel(energy.Mica(), energy.Cabletron())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.BreakEvenMH(i%6 + 1); err != nil {
			b.Fatal(err)
		}
	}
}
