package analysis

import (
	"fmt"

	"bulktx/internal/units"
)

// Burst-size analysis (paper Section 2.2, Figure 4): the fraction of
// energy saved by accumulating n high-power packets and sending them in
// one burst (one wake-up) instead of waking the radio n times to send one
// packet each time.

// BurstEnergy returns the energy of one wake-up carrying n high-power
// packets.
func (m *Model) BurstEnergy(n int) units.Energy {
	if n <= 0 {
		return 0
	}
	return m.WifiEnergy(units.ByteSize(n) * m.link.PayloadH)
}

// PerPacketEnergy returns the energy of waking up n separate times and
// sending a single high-power packet each time.
func (m *Model) PerPacketEnergy(n int) units.Energy {
	if n <= 0 {
		return 0
	}
	return units.Energy(float64(n)) * m.WifiEnergy(m.link.PayloadH)
}

// BurstSavings returns 1 - BurstEnergy(n)/PerPacketEnergy(n), the Figure 4
// metric. It returns an error for non-positive n.
func (m *Model) BurstSavings(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("analysis: burst size %d must be positive", n)
	}
	per := m.PerPacketEnergy(n).Joules()
	if per == 0 {
		return 0, nil
	}
	return 1 - m.BurstEnergy(n).Joules()/per, nil
}
