// Package analysis implements the break-even analysis of the paper's
// Section 2: the single-hop energy models E_L(s) and E_H(s, R)
// (Equations 1 and 2), the break-even data size s* (Equation 3), the
// multi-hop extensions (Equations 4 and 5) and the burst-size savings
// model behind Figure 4.
//
// The models are purely analytic — no simulation — and are the reference
// against which the discrete-event results of internal/netsim are
// validated.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/params"
	"bulktx/internal/units"
)

// ErrInfeasible is returned by break-even computations when the
// high-power radio never beats the low-power radio (the denominator of
// Equation 3 is non-positive), as for Cabletron/Lucent-2 Mbps vs Micaz in
// the single-hop case.
var ErrInfeasible = errors.New("analysis: high-power radio is never more efficient")

// Link describes the packetization both radios apply to a data stream.
type Link struct {
	// PayloadL and HeaderL are the sensor-radio data payload and frame
	// header sizes.
	PayloadL, HeaderL units.ByteSize
	// PayloadH and HeaderH are the 802.11 data payload and frame header
	// sizes.
	PayloadH, HeaderH units.ByteSize
	// Control is the payload of BCP control messages (wake-up, ack)
	// carried over the sensor radio.
	Control units.ByteSize
	// RetxL and RetxH are the expected number of transmissions per packet
	// (the paper's n_i; 1 means no losses). Values below 1 are invalid.
	RetxL, RetxH float64
}

// DefaultLink returns the packetization used throughout the paper's
// evaluation: 32 B sensor packets, 1024 B 802.11 packets, loss-free links.
func DefaultLink() Link {
	return Link{
		PayloadL: params.SensorPayload,
		HeaderL:  params.SensorHeader,
		PayloadH: params.WifiPayload,
		HeaderH:  params.WifiHeader,
		Control:  params.ControlPayload,
		RetxL:    1,
		RetxH:    1,
	}
}

// Validate reports whether the link parameters are usable.
func (l Link) Validate() error {
	switch {
	case l.PayloadL <= 0 || l.PayloadH <= 0:
		return fmt.Errorf("analysis: non-positive payload sizes %v/%v", l.PayloadL, l.PayloadH)
	case l.HeaderL < 0 || l.HeaderH < 0 || l.Control < 0:
		return fmt.Errorf("analysis: negative header/control size")
	case l.RetxL < 1 || l.RetxH < 1:
		return fmt.Errorf("analysis: expected transmissions below 1 (%v/%v)", l.RetxL, l.RetxH)
	}
	return nil
}

// Model is a configured dual-radio energy model: one low-power and one
// high-power profile plus the operational parameters of Equations 1-2.
type Model struct {
	low  energy.Profile
	high energy.Profile
	link Link

	idleTime     time.Duration
	idleRadios   int
	wakeupRadios int
	overhearL    units.Energy
	overhearH    units.Energy
}

// Option configures a Model.
type Option func(*Model)

// WithLink overrides the packetization.
func WithLink(l Link) Option {
	return func(m *Model) { m.link = l }
}

// WithIdleTime sets the total time the high-power radios idle per
// transfer (the paper's E_idle contributor; Figure 2 sweeps this).
func WithIdleTime(d time.Duration) Option {
	return func(m *Model) { m.idleTime = d }
}

// WithIdleRadios sets how many high-power radios are charged for idling
// (default 2: sender and receiver).
func WithIdleRadios(n int) Option {
	return func(m *Model) { m.idleRadios = n }
}

// WithWakeupRadios sets how many high-power radios are charged the fixed
// wake-up energy (default 2: sender and receiver).
func WithWakeupRadios(n int) Option {
	return func(m *Model) { m.wakeupRadios = n }
}

// WithOverhearing sets the fixed per-transfer overhearing energies E_o^L
// and E_o^H (both zero in the paper's Section 2 analysis; non-zero in the
// Section 4 sensitivity).
func WithOverhearing(low, high units.Energy) Option {
	return func(m *Model) {
		m.overhearL = low
		m.overhearH = high
	}
}

// NewModel builds a dual-radio model from a low-power and a high-power
// profile. It returns an error if the profiles are invalid or swapped.
func NewModel(low, high energy.Profile, opts ...Option) (*Model, error) {
	if err := low.Validate(); err != nil {
		return nil, err
	}
	if err := high.Validate(); err != nil {
		return nil, err
	}
	if low.Class != energy.LowPower {
		return nil, fmt.Errorf("analysis: %q is not a low-power profile", low.Name)
	}
	if high.Class != energy.HighPower {
		return nil, fmt.Errorf("analysis: %q is not a high-power profile", high.Name)
	}
	m := &Model{
		low:          low,
		high:         high,
		link:         DefaultLink(),
		idleRadios:   2,
		wakeupRadios: 2,
	}
	for _, opt := range opts {
		opt(m)
	}
	if err := m.link.Validate(); err != nil {
		return nil, err
	}
	if m.idleRadios < 0 || m.wakeupRadios < 0 {
		return nil, fmt.Errorf("analysis: negative radio counts")
	}
	if m.idleTime < 0 {
		return nil, fmt.Errorf("analysis: negative idle time %v", m.idleTime)
	}
	return m, nil
}

// Low returns the model's low-power profile.
func (m *Model) Low() energy.Profile { return m.low }

// High returns the model's high-power profile.
func (m *Model) High() energy.Profile { return m.high }

// Link returns the model's packetization.
func (m *Model) Link() Link { return m.link }

// NumPackets returns ceil(s / payload), the packet count for s bytes.
func NumPackets(s, payload units.ByteSize) int64 {
	if s <= 0 {
		return 0
	}
	return (s.Bytes() + payload.Bytes() - 1) / payload.Bytes()
}

// SensorEnergy evaluates Equation 1: the energy to move s bytes one hop
// over the low-power radio, charging transmitter and receiver for every
// (payload+header) frame, n_i expected transmissions per frame, plus the
// configured overhearing energy.
func (m *Model) SensorEnergy(s units.ByteSize) units.Energy {
	n := NumPackets(s, m.link.PayloadL)
	perFrameBits := float64((m.link.PayloadL + m.link.HeaderL).Bits())
	joules := m.low.LinkEnergyPerBit().Joules() * perFrameBits * float64(n) * m.link.RetxL
	return units.Energy(joules) + m.overhearL
}

// WakeupHandshakeEnergy is E_wakeup^L of Equation 2: the cost of the
// wake-up message and its ack over the low-power radio (two control
// frames, transmitter+receiver).
func (m *Model) WakeupHandshakeEnergy() units.Energy {
	frameBits := float64((m.link.Control + m.link.HeaderL).Bits())
	perFrame := m.low.LinkEnergyPerBit().Joules() * frameBits * m.link.RetxL
	return units.Energy(2 * perFrame)
}

// IdleEnergy is E_idle of Equation 2 for the configured idle time.
func (m *Model) IdleEnergy() units.Energy {
	return units.Energy(float64(m.idleRadios)*m.high.Idle.Watts()) *
		units.Energy(m.idleTime.Seconds())
}

// WakeupEnergy is E_wakeup^H of Equation 2: the fixed switch-on energy
// for the configured number of endpoints.
func (m *Model) WakeupEnergy() units.Energy {
	return units.Energy(float64(m.wakeupRadios)) * m.high.Wakeup
}

// WifiEnergy evaluates Equation 2: the energy to move s bytes one hop over
// the high-power radio, including both endpoints' wake-up energy, the
// low-power handshake, idling and the data transfer itself.
func (m *Model) WifiEnergy(s units.ByteSize) units.Energy {
	n := NumPackets(s, m.link.PayloadH)
	perFrameBits := float64((m.link.PayloadH + m.link.HeaderH).Bits())
	transfer := m.high.LinkEnergyPerBit().Joules() * perFrameBits * float64(n) * m.link.RetxH
	return m.WakeupEnergy() + m.WakeupHandshakeEnergy() + m.IdleEnergy() +
		m.overhearH + units.Energy(transfer)
}

// perBitL is the effective per-payload-bit cost of the low-power path
// including header amortization and expected retransmissions:
// (P_tx+P_rx)/R_L * (1 + hs_L/ps_L) * n_L.
func (m *Model) perBitL() float64 {
	overhead := 1 + float64(m.link.HeaderL)/float64(m.link.PayloadL)
	return m.low.LinkEnergyPerBit().Joules() * overhead * m.link.RetxL
}

// perBitH is the high-power analogue of perBitL.
func (m *Model) perBitH() float64 {
	overhead := 1 + float64(m.link.HeaderH)/float64(m.link.PayloadH)
	return m.high.LinkEnergyPerBit().Joules() * overhead * m.link.RetxH
}

// Feasible reports whether the high-power radio ever wins, i.e. whether
// the denominator of Equation 3 is positive.
func (m *Model) Feasible() bool {
	return m.perBitL() > m.perBitH()
}

// BreakEvenClosedForm evaluates Equation 3 directly: the continuous
// approximation of the break-even size
//
//	s* = (E_wakeup^H + E_wakeup^L + E_idle) /
//	     ((P_tx^L+P_rx^L)/R_L (1+hs_L/ps_L) - (P_tx^H+P_rx^H)/R_H (1+hs_H/ps_H))
//
// It returns ErrInfeasible when the denominator is non-positive.
func (m *Model) BreakEvenClosedForm() (units.ByteSize, error) {
	denomPerBit := m.perBitL() - m.perBitH()
	if denomPerBit <= 0 {
		return 0, fmt.Errorf("%w: %s vs %s", ErrInfeasible, m.high.Name, m.low.Name)
	}
	numer := (m.WakeupEnergy() + m.WakeupHandshakeEnergy() + m.IdleEnergy() +
		m.overhearH - m.overhearL).Joules()
	if numer < 0 {
		numer = 0
	}
	bits := numer / denomPerBit
	return units.ByteSize(math.Ceil(bits / 8)), nil
}

// BreakEven finds the smallest data size (in whole sensor packets) at
// which the packetized high-power model (Equation 2) is no more expensive
// than the packetized low-power model (Equation 1). It refines the
// closed-form estimate against the discrete step functions.
func (m *Model) BreakEven() (units.ByteSize, error) {
	if !m.Feasible() {
		return 0, fmt.Errorf("%w: %s vs %s", ErrInfeasible, m.high.Name, m.low.Name)
	}
	return m.breakEven(m.SensorEnergy, m.WifiEnergy)
}

// breakEven searches for the smallest whole-sensor-packet crossover of
// the given cost curves. Callers must have established feasibility (the
// curves' slopes eventually cross); the packet-count cap below is a
// backstop only.
func (m *Model) breakEven(
	sensor func(units.ByteSize) units.Energy,
	wifi func(units.ByteSize) units.Energy,
) (units.ByteSize, error) {
	step := m.link.PayloadL
	// Exponential search for an upper bound in sensor-packet multiples.
	hi := int64(1)
	const maxPackets = int64(1) << 32 // 128 GiB of 32 B packets: unreachable
	for ; hi < maxPackets; hi *= 2 {
		s := units.ByteSize(hi) * step
		if wifi(s) <= sensor(s) {
			break
		}
	}
	if hi >= maxPackets {
		return 0, fmt.Errorf("%w: no crossover below %d packets", ErrInfeasible, maxPackets)
	}
	lo := hi / 2
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		s := units.ByteSize(mid) * step
		if wifi(s) <= sensor(s) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return units.ByteSize(hi) * step, nil
}

// Savings returns the fractional energy saved by the high-power path at
// data size s: 1 - E_H(s)/E_L(s). Negative values mean the high-power
// path costs more.
func (m *Model) Savings(s units.ByteSize) float64 {
	el := m.SensorEnergy(s).Joules()
	if el == 0 {
		return 0
	}
	return 1 - m.WifiEnergy(s).Joules()/el
}
