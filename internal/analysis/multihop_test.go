package analysis

import (
	"errors"
	"testing"
	"testing/quick"

	"bulktx/internal/energy"
	"bulktx/internal/units"
)

func TestMultiHopEquations(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Cabletron())
	s := 4 * units.Kilobyte
	// Equation 4: E_L^mh = fp * E_L.
	if got, want := m.SensorEnergyMH(s, 5), 5*m.SensorEnergy(s); got != want {
		t.Errorf("SensorEnergyMH = %v, want %v", got, want)
	}
	// Equation 5: E_H^mh = E_H + (fp-1) * E_wakeup^L.
	want := m.WifiEnergy(s) + 4*m.WakeupHandshakeEnergy()
	if got := m.WifiEnergyMH(s, 5); got != want {
		t.Errorf("WifiEnergyMH = %v, want %v", got, want)
	}
}

func TestMultiHopFPOneEqualsSingleHop(t *testing.T) {
	m := mustModel(t, energy.Mica(), energy.Cabletron())
	s := 2 * units.Kilobyte
	if m.SensorEnergyMH(s, 1) != m.SensorEnergy(s) {
		t.Error("fp=1 sensor energy differs from single-hop")
	}
	if m.WifiEnergyMH(s, 1) != m.WifiEnergy(s) {
		t.Error("fp=1 wifi energy differs from single-hop")
	}
	seMH, err := m.BreakEvenMH(1)
	if err != nil {
		t.Fatal(err)
	}
	seSH, err := m.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if seMH != seSH {
		t.Errorf("BreakEvenMH(1) = %v, BreakEven() = %v", seMH, seSH)
	}
}

func TestFPBelowOneClamped(t *testing.T) {
	m := mustModel(t, energy.Mica(), energy.Cabletron())
	s := 1 * units.Kilobyte
	if m.SensorEnergyMH(s, 0) != m.SensorEnergy(s) {
		t.Error("fp=0 not clamped to 1")
	}
	if m.WifiEnergyMH(s, -3) != m.WifiEnergy(s) {
		t.Error("negative fp not clamped to 1")
	}
}

func TestPaperClaimMulithopFeasibility(t *testing.T) {
	// Section 2.2 / Figure 3: Cabletron-Micaz and Lucent2-Micaz, both
	// infeasible single-hop, become feasible once the 802.11 radio covers
	// several sensor hops in one transmission (paper: 4 and 3 hops; the
	// exact hop depends on header conventions, so we assert the crossover
	// lies in {2,3,4} and record the measured value in EXPERIMENTS.md).
	for _, high := range []energy.Profile{energy.Cabletron(), energy.Lucent2()} {
		m := mustModel(t, energy.Micaz(), high)
		if m.FeasibleMH(1) {
			t.Errorf("%s-Micaz feasible at fp=1, should not be", high.Name)
		}
		crossover := 0
		for fp := 2; fp <= 6; fp++ {
			if m.FeasibleMH(fp) {
				crossover = fp
				break
			}
		}
		if crossover < 2 || crossover > 4 {
			t.Errorf("%s-Micaz MH feasibility crossover = %d, want within 2..4",
				high.Name, crossover)
		}
	}
}

func TestPaperClaimMultihopLowersBreakEven(t *testing.T) {
	// Section 2.2: "s* for Cabletron and Lucent (2 Mbps) radios is lower
	// for the multi-hop case (i.e., 0.15-0.75 KB)" with Mica/Mica2.
	for _, c := range []struct {
		low, high energy.Profile
	}{
		{energy.Mica(), energy.Cabletron()},
		{energy.Mica2(), energy.Cabletron()},
		{energy.Mica(), energy.Lucent2()},
		{energy.Mica2(), energy.Lucent2()},
	} {
		m := mustModel(t, c.low, c.high)
		sh, err := m.BreakEven()
		if err != nil {
			t.Fatal(err)
		}
		mh, err := m.BreakEvenMH(5) // 5 sensor hops covered in one 802.11 hop
		if err != nil {
			t.Fatal(err)
		}
		if mh >= sh {
			t.Errorf("%s-%s: MH s* %v not below SH s* %v", c.high.Name, c.low.Name, mh, sh)
		}
		if mh < 32*units.Byte || mh > 1*units.Kilobyte {
			t.Errorf("%s-%s: MH s* = %v, want sub-KB", c.high.Name, c.low.Name, mh)
		}
	}
}

func TestBreakEvenMHForSingleHopInfeasiblePair(t *testing.T) {
	// Regression: BreakEvenMH must work for pairs that are infeasible at
	// fp=1 (Cabletron-Micaz) once fp makes them profitable — an earlier
	// version re-checked single-hop feasibility inside the search.
	m := mustModel(t, energy.Micaz(), energy.Cabletron())
	if _, err := m.BreakEven(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("single-hop should be infeasible, got %v", err)
	}
	var prev units.ByteSize
	for fp := 3; fp <= 6; fp++ {
		s, err := m.BreakEvenMH(fp)
		if err != nil {
			t.Fatalf("BreakEvenMH(%d): %v", fp, err)
		}
		if s <= 0 || s > 1*units.Kilobyte {
			t.Errorf("fp=%d: s* = %v, want sub-KB (paper Section 2.2)", fp, s)
		}
		if prev > 0 && s > prev {
			t.Errorf("fp=%d: s* = %v above fp-1's %v", fp, s, prev)
		}
		prev = s
	}
}

func TestBreakEvenMHInfeasible(t *testing.T) {
	m := mustModel(t, energy.Micaz(), energy.Cabletron())
	if _, err := m.BreakEvenMH(1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("BreakEvenMH(1) err = %v, want ErrInfeasible", err)
	}
	if _, err := m.BreakEvenClosedFormMH(1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("BreakEvenClosedFormMH(1) err = %v, want ErrInfeasible", err)
	}
}

// Property: s* is non-increasing in forward progress (Figure 3's shape).
func TestBreakEvenMonotoneInForwardProgress(t *testing.T) {
	m := mustModel(t, energy.Mica(), energy.Cabletron())
	f := func(a uint8) bool {
		fp := int(a%5) + 1
		s1, err1 := m.BreakEvenMH(fp)
		s2, err2 := m.BreakEvenMH(fp + 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 <= s1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSavingsMHGrowsWithFP(t *testing.T) {
	m := mustModel(t, energy.Mica(), energy.Cabletron())
	s := 4 * units.Kilobyte
	prev := -1.0
	for fp := 1; fp <= 6; fp++ {
		got := m.SavingsMH(s, fp)
		if got <= prev {
			t.Errorf("SavingsMH(fp=%d) = %.4f, not above fp-1's %.4f", fp, got, prev)
		}
		prev = got
	}
}

func TestSavingsMHZeroSize(t *testing.T) {
	m := mustModel(t, energy.Mica(), energy.Cabletron())
	if got := m.SavingsMH(0, 3); got != 0 {
		t.Errorf("SavingsMH(0, 3) = %v, want 0", got)
	}
}
