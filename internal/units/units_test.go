package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPowerOver(t *testing.T) {
	tests := []struct {
		name string
		p    Power
		d    time.Duration
		want Energy
	}{
		{"one watt one second", 1 * Watt, time.Second, 1 * Joule},
		{"milliwatt second", 50 * Milliwatt, time.Second, 50 * Millijoule},
		{"watt millisecond", 2 * Watt, time.Millisecond, 2 * Millijoule},
		{"zero power", 0, time.Hour, 0},
		{"zero duration", 5 * Watt, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.Over(tt.d)
			if math.Abs(got.Joules()-tt.want.Joules()) > 1e-12 {
				t.Errorf("Over() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBitRateTimeFor(t *testing.T) {
	tests := []struct {
		name string
		r    BitRate
		s    ByteSize
		want time.Duration
	}{
		{"1Mbps 1KB", 1 * Mbps, 1024 * Byte, time.Duration(8192 * float64(time.Second) / 1e6)},
		{"250Kbps 32B", 250 * Kbps, 32 * Byte, time.Duration(256 * float64(time.Second) / 250e3)},
		{"zero rate", 0, 100 * Byte, 0},
		{"negative rate", -5, 100 * Byte, 0},
		{"zero size", 11 * Mbps, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.r.TimeFor(tt.s)
			if diff := got - tt.want; diff < -time.Nanosecond || diff > time.Nanosecond {
				t.Errorf("TimeFor() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestByteSizeBits(t *testing.T) {
	if got := (1 * Kilobyte).Bits(); got != 8192 {
		t.Errorf("Kilobyte.Bits() = %d, want 8192", got)
	}
	if got := (32 * Byte).Bits(); got != 256 {
		t.Errorf("32B.Bits() = %d, want 256", got)
	}
}

func TestEnergyConversions(t *testing.T) {
	e := 1500 * Microjoule
	if math.Abs(e.Millijoules()-1.5) > 1e-9 {
		t.Errorf("Millijoules() = %v, want 1.5", e.Millijoules())
	}
	if math.Abs(e.Microjoules()-1500) > 1e-6 {
		t.Errorf("Microjoules() = %v, want 1500", e.Microjoules())
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{(1.5 * Joule).String(), "1.500 J"},
		{(2 * Millijoule).String(), "2.000 mJ"},
		{(3 * Microjoule).String(), "3.000 µJ"},
		{Energy(0).String(), "0 J"},
		{(250 * Kbps).String(), "250.0 Kbps"},
		{(11 * Mbps).String(), "11.0 Mbps"},
		{BitRate(12).String(), "12 bps"},
		{(32 * Byte).String(), "32 B"},
		{(4 * Kilobyte).String(), "4.00 KB"},
		{(3 * Megabyte).String(), "3.00 MB"},
		{(830 * Milliwatt).String(), "830.000 mW"},
		{(1.4 * Watt).String(), "1.400 W"},
		{Meters(40).String(), "40.0 m"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

// Property: energy accumulated over two consecutive durations equals the
// energy over their sum (additivity of the power integral).
func TestPowerOverAdditive(t *testing.T) {
	f := func(milliwatts uint16, ms1, ms2 uint16) bool {
		p := Power(milliwatts) * Milliwatt
		d1 := time.Duration(ms1) * time.Millisecond
		d2 := time.Duration(ms2) * time.Millisecond
		split := p.Over(d1) + p.Over(d2)
		whole := p.Over(d1 + d2)
		return math.Abs(split.Joules()-whole.Joules()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transmission time scales linearly with data size.
func TestTimeForLinear(t *testing.T) {
	f := func(kb uint8) bool {
		r := 2 * Mbps
		s := ByteSize(kb) * Kilobyte
		double := r.TimeFor(2 * s)
		single := r.TimeFor(s)
		diff := double - 2*single
		return diff > -time.Microsecond && diff < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a faster rate never takes longer for the same payload.
func TestTimeForMonotoneInRate(t *testing.T) {
	f := func(kb uint8, kbpsA, kbpsB uint16) bool {
		if kbpsA == 0 || kbpsB == 0 {
			return true
		}
		lo, hi := BitRate(kbpsA)*Kbps, BitRate(kbpsB)*Kbps
		if lo > hi {
			lo, hi = hi, lo
		}
		s := ByteSize(kb) * Kilobyte
		return hi.TimeFor(s) <= lo.TimeFor(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
