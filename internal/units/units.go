// Package units provides typed physical quantities used throughout the
// bulktx codebase: energy, power, bit rate, data size and distance.
//
// The simulator and the analytic models of the paper mix quantities with
// very different magnitudes (nanojoule-scale per-bit costs against
// joule-scale idling costs, 32 B sensor packets against multi-megabyte
// buffers). Dedicated types keep the arithmetic honest and the call sites
// self-documenting.
package units

import (
	"fmt"
	"time"
)

// Energy is an amount of energy in joules.
type Energy float64

// Common energy quantities.
const (
	Joule      Energy = 1
	Millijoule Energy = 1e-3
	Microjoule Energy = 1e-6
	Nanojoule  Energy = 1e-9
)

// Joules returns the energy as a float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) }

// Millijoules returns the energy in millijoules.
func (e Energy) Millijoules() float64 { return float64(e) * 1e3 }

// Microjoules returns the energy in microjoules.
func (e Energy) Microjoules() float64 { return float64(e) * 1e6 }

// String formats the energy with an adaptive SI prefix.
func (e Energy) String() string {
	switch abs := absF(float64(e)); {
	case abs == 0:
		return "0 J"
	case abs < 1e-6:
		return fmt.Sprintf("%.3f nJ", float64(e)*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.3f µJ", float64(e)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3f mJ", float64(e)*1e3)
	default:
		return fmt.Sprintf("%.3f J", float64(e))
	}
}

// Power is a rate of energy use in watts.
type Power float64

// Common power quantities.
const (
	Watt      Power = 1
	Milliwatt Power = 1e-3
	Microwatt Power = 1e-6
)

// Watts returns the power as a float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// Milliwatts returns the power in milliwatts.
func (p Power) Milliwatts() float64 { return float64(p) * 1e3 }

// String formats the power with an adaptive SI prefix.
func (p Power) String() string {
	switch abs := absF(float64(p)); {
	case abs == 0:
		return "0 W"
	case abs < 1e-3:
		return fmt.Sprintf("%.3f µW", float64(p)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3f mW", float64(p)*1e3)
	default:
		return fmt.Sprintf("%.3f W", float64(p))
	}
}

// Over returns the energy consumed by drawing power p for duration d.
func (p Power) Over(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// BitRate is a data rate in bits per second.
type BitRate float64

// Common bit rates.
const (
	BitPerSecond  BitRate = 1
	Kbps          BitRate = 1e3
	Mbps          BitRate = 1e6
	KilobitPerSec         = Kbps
	MegabitPerSec         = Mbps
)

// BitsPerSecond returns the rate as a float64 number of bits per second.
func (r BitRate) BitsPerSecond() float64 { return float64(r) }

// TimeFor returns the wall-clock time required to move size at rate r.
// A non-positive rate yields zero duration so callers need not special-case
// disabled radios; the radio layer validates rates at construction time.
func (r BitRate) TimeFor(size ByteSize) time.Duration {
	if r <= 0 {
		return 0
	}
	seconds := float64(size.Bits()) / float64(r)
	return time.Duration(seconds * float64(time.Second))
}

// String formats the rate with an adaptive prefix.
func (r BitRate) String() string {
	switch abs := absF(float64(r)); {
	case abs == 0:
		return "0 bps"
	case abs < 1e3:
		return fmt.Sprintf("%.0f bps", float64(r))
	case abs < 1e6:
		return fmt.Sprintf("%.1f Kbps", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.1f Mbps", float64(r)/1e6)
	}
}

// ByteSize is a quantity of data in bytes.
type ByteSize int64

// Common data sizes.
const (
	Byte     ByteSize = 1
	Kilobyte ByteSize = 1024
	Megabyte ByteSize = 1024 * 1024
)

// Bytes returns the size as an int64 byte count.
func (s ByteSize) Bytes() int64 { return int64(s) }

// Bits returns the size as a bit count.
func (s ByteSize) Bits() int64 { return int64(s) * 8 }

// Kilobytes returns the size in KiB as a float64.
func (s ByteSize) Kilobytes() float64 { return float64(s) / 1024 }

// String formats the size with an adaptive prefix.
func (s ByteSize) String() string {
	switch abs := s; {
	case abs < 0:
		return fmt.Sprintf("%d B", int64(s))
	case abs < Kilobyte:
		return fmt.Sprintf("%d B", int64(s))
	case abs < Megabyte:
		return fmt.Sprintf("%.2f KB", float64(s)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%.2f MB", float64(s)/float64(Megabyte))
	}
}

// Meters is a distance in metres.
type Meters float64

// String formats the distance.
func (m Meters) String() string { return fmt.Sprintf("%.1f m", float64(m)) }

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
