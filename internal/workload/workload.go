// Package workload generates the evaluation traffic of Section 4.1:
// constant-bit-rate senders streaming fixed-size sensor packets toward a
// sink, plus the sink-side recorder that turns deliveries into the
// metrics inputs (delivered bits, per-packet delays).
package workload

import (
	"fmt"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// CBR is a constant-bit-rate packet source. Senders start with a random
// phase offset within one packet interval so that simultaneous sources do
// not synchronize their generation instants.
type CBR struct {
	sched   *sim.Scheduler
	src     int
	dst     int
	payload units.ByteSize
	period  time.Duration
	emit    func(core.Packet)

	seq       uint64
	generated uint64
	running   bool
	timer     sim.Timer
}

// NewCBR builds a source generating rate bits per second of payload from
// src to dst, delivered to emit (typically the node's BCP agent or
// forwarder).
func NewCBR(
	sched *sim.Scheduler,
	src, dst int,
	rate units.BitRate,
	payload units.ByteSize,
	emit func(core.Packet),
) (*CBR, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: non-positive rate %v", rate)
	}
	if payload <= 0 {
		return nil, fmt.Errorf("workload: non-positive payload %v", payload)
	}
	if emit == nil {
		return nil, fmt.Errorf("workload: nil emit")
	}
	period := time.Duration(float64(payload.Bits()) / rate.BitsPerSecond() * float64(time.Second))
	if period <= 0 {
		return nil, fmt.Errorf("workload: rate %v too fast for payload %v", rate, payload)
	}
	g := &CBR{
		sched:   sched,
		src:     src,
		dst:     dst,
		payload: payload,
		period:  period,
		emit:    emit,
	}
	g.timer.Init(sched, g.tick)
	return g, nil
}

// Period returns the inter-packet generation interval.
func (g *CBR) Period() time.Duration { return g.period }

// Start begins generation with a random phase within one period.
func (g *CBR) Start() {
	g.StartWithin(g.period)
}

// StartWithin begins generation with a random phase within the given
// window (at least one period). Staggering senders across a window the
// size of one burst-accumulation interval prevents every BCP sender from
// crossing its threshold at the same instant, which no real deployment
// exhibits.
func (g *CBR) StartWithin(window time.Duration) {
	if g.running {
		return
	}
	if window < g.period {
		window = g.period
	}
	g.running = true
	phase := time.Duration(g.sched.Rand().Int63n(int64(window)))
	g.timer.Reset(phase)
}

// Stop halts generation.
func (g *CBR) Stop() {
	g.running = false
	g.timer.Stop()
}

// Generated returns packets and payload bits produced so far.
func (g *CBR) Generated() (packets uint64, bits int64) {
	return g.generated, int64(g.generated) * g.payload.Bits()
}

func (g *CBR) tick() {
	if !g.running {
		return
	}
	g.seq++
	g.generated++
	g.emit(core.Packet{
		Src:     g.src,
		Dst:     g.dst,
		Seq:     g.seq,
		Size:    g.payload,
		Created: g.sched.Now(),
	})
	g.timer.Reset(g.period)
}

// Recorder accumulates sink-side deliveries.
type Recorder struct {
	sched *sim.Scheduler

	deliveredBits    int64
	deliveredPackets uint64
	delays           []time.Duration
}

// NewRecorder builds a sink recorder.
func NewRecorder(sched *sim.Scheduler) *Recorder {
	return &Recorder{sched: sched}
}

// Receive records one delivered packet.
func (r *Recorder) Receive(p core.Packet) {
	r.deliveredPackets++
	r.deliveredBits += p.Size.Bits()
	r.delays = append(r.delays, r.sched.Now()-p.Created)
}

// DeliveredBits returns payload bits received so far.
func (r *Recorder) DeliveredBits() int64 { return r.deliveredBits }

// DeliveredPackets returns packets received so far.
func (r *Recorder) DeliveredPackets() uint64 { return r.deliveredPackets }

// Delays returns a copy of the recorded per-packet delays.
func (r *Recorder) Delays() []time.Duration {
	out := make([]time.Duration, len(r.delays))
	copy(out, r.delays)
	return out
}
