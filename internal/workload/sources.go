package workload

import (
	"fmt"
	"math"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// Beyond the paper's CBR evaluation traffic, two further source models
// exercise BCP under realistic arrival processes: Poisson (memoryless
// event detection) and OnOff (EnviroMic-style acoustic events: silence
// punctuated by high-rate recording bursts).

// Poisson is a packet source with exponentially distributed
// inter-arrival times averaging the configured rate.
type Poisson struct {
	sched   *sim.Scheduler
	src     int
	dst     int
	payload units.ByteSize
	mean    time.Duration
	emit    func(core.Packet)

	seq       uint64
	generated uint64
	running   bool
	timer     sim.Timer
}

// NewPoisson builds a Poisson source averaging rate bits per second.
func NewPoisson(
	sched *sim.Scheduler,
	src, dst int,
	rate units.BitRate,
	payload units.ByteSize,
	emit func(core.Packet),
) (*Poisson, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: non-positive rate %v", rate)
	}
	if payload <= 0 {
		return nil, fmt.Errorf("workload: non-positive payload %v", payload)
	}
	if emit == nil {
		return nil, fmt.Errorf("workload: nil emit")
	}
	mean := time.Duration(float64(payload.Bits()) / rate.BitsPerSecond() * float64(time.Second))
	if mean <= 0 {
		return nil, fmt.Errorf("workload: rate %v too fast for payload %v", rate, payload)
	}
	g := &Poisson{
		sched:   sched,
		src:     src,
		dst:     dst,
		payload: payload,
		mean:    mean,
		emit:    emit,
	}
	g.timer.Init(sched, g.tick)
	return g, nil
}

// Start begins generation.
func (g *Poisson) Start() {
	if g.running {
		return
	}
	g.running = true
	g.timer.Reset(g.nextGap())
}

// Stop halts generation.
func (g *Poisson) Stop() {
	g.running = false
	g.timer.Stop()
}

// Generated returns packets and payload bits produced so far.
func (g *Poisson) Generated() (packets uint64, bits int64) {
	return g.generated, int64(g.generated) * g.payload.Bits()
}

func (g *Poisson) nextGap() time.Duration {
	// Inverse-CDF sampling of Exp(1/mean); clamp u away from 0 so the
	// logarithm stays finite.
	u := g.sched.Rand().Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return time.Duration(-math.Log(u) * float64(g.mean))
}

func (g *Poisson) tick() {
	if !g.running {
		return
	}
	g.seq++
	g.generated++
	g.emit(core.Packet{
		Src:     g.src,
		Dst:     g.dst,
		Seq:     g.seq,
		Size:    g.payload,
		Created: g.sched.Now(),
	})
	g.timer.Reset(g.nextGap())
}

// OnOff alternates exponentially distributed ON periods, during which it
// streams CBR packets at a peak rate, with exponentially distributed OFF
// silences — the shape of event-triggered acoustic capture.
type OnOff struct {
	sched   *sim.Scheduler
	src     int
	dst     int
	payload units.ByteSize
	period  time.Duration // packet spacing while ON
	meanOn  time.Duration
	meanOff time.Duration
	emit    func(core.Packet)

	seq       uint64
	generated uint64
	running   bool
	on        bool
	onUntil   sim.Time
	timer     sim.Timer
}

// NewOnOff builds an on/off source: peakRate while ON, with mean ON and
// OFF durations.
func NewOnOff(
	sched *sim.Scheduler,
	src, dst int,
	peakRate units.BitRate,
	payload units.ByteSize,
	meanOn, meanOff time.Duration,
	emit func(core.Packet),
) (*OnOff, error) {
	if peakRate <= 0 {
		return nil, fmt.Errorf("workload: non-positive peak rate %v", peakRate)
	}
	if payload <= 0 {
		return nil, fmt.Errorf("workload: non-positive payload %v", payload)
	}
	if meanOn <= 0 || meanOff < 0 {
		return nil, fmt.Errorf("workload: invalid on/off durations %v/%v", meanOn, meanOff)
	}
	if emit == nil {
		return nil, fmt.Errorf("workload: nil emit")
	}
	period := time.Duration(float64(payload.Bits()) / peakRate.BitsPerSecond() * float64(time.Second))
	if period <= 0 {
		return nil, fmt.Errorf("workload: peak rate %v too fast for payload %v", peakRate, payload)
	}
	g := &OnOff{
		sched:   sched,
		src:     src,
		dst:     dst,
		payload: payload,
		period:  period,
		meanOn:  meanOn,
		meanOff: meanOff,
		emit:    emit,
	}
	g.timer.Init(sched, g.tick)
	return g, nil
}

// Start begins in an OFF silence of random length.
func (g *OnOff) Start() {
	if g.running {
		return
	}
	g.running = true
	g.on = false
	g.timer.Reset(g.expSample(g.meanOff))
}

// Stop halts generation.
func (g *OnOff) Stop() {
	g.running = false
	g.timer.Stop()
}

// Generated returns packets and payload bits produced so far.
func (g *OnOff) Generated() (packets uint64, bits int64) {
	return g.generated, int64(g.generated) * g.payload.Bits()
}

// On reports whether the source is currently in an ON period.
func (g *OnOff) On() bool { return g.on }

func (g *OnOff) expSample(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := g.sched.Rand().Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

func (g *OnOff) tick() {
	if !g.running {
		return
	}
	if !g.on {
		// Silence over: start an ON period.
		g.on = true
		g.onUntil = g.sched.Now() + g.expSample(g.meanOn)
	}
	if g.sched.Now() >= g.onUntil {
		// ON period over: fall silent.
		g.on = false
		g.timer.Reset(g.expSample(g.meanOff))
		return
	}
	g.seq++
	g.generated++
	g.emit(core.Packet{
		Src:     g.src,
		Dst:     g.dst,
		Seq:     g.seq,
		Size:    g.payload,
		Created: g.sched.Now(),
	})
	g.timer.Reset(g.period)
}
