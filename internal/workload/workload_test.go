package workload

import (
	"testing"
	"testing/quick"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

func TestCBRRate(t *testing.T) {
	sched := sim.NewScheduler(1)
	var got []core.Packet
	g, err := NewCBR(sched, 3, 9, 2000, 32, func(p core.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	// 32 B at 2 Kbps: one packet per 128 ms.
	if want := 128 * time.Millisecond; g.Period() != want {
		t.Fatalf("Period = %v, want %v", g.Period(), want)
	}
	g.Start()
	sched.RunUntil(10 * time.Second)
	g.Stop()
	sched.Run()

	// 10 s / 128 ms = 78.1 periods; phase offset removes at most one.
	if n := len(got); n < 77 || n > 79 {
		t.Errorf("generated %d packets in 10s, want ~78", n)
	}
	packets, bits := g.Generated()
	if int(packets) != len(got) {
		t.Errorf("Generated() = %d, emitted %d", packets, len(got))
	}
	if bits != int64(packets)*256 {
		t.Errorf("bits = %d, want %d", bits, int64(packets)*256)
	}
}

func TestCBRPacketFields(t *testing.T) {
	sched := sim.NewScheduler(1)
	var got []core.Packet
	g, err := NewCBR(sched, 7, 2, 200, 32, func(p core.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	sched.RunUntil(5 * time.Second)
	if len(got) == 0 {
		t.Fatal("nothing generated")
	}
	for i, p := range got {
		if p.Src != 7 || p.Dst != 2 || p.Size != 32 {
			t.Fatalf("packet %d fields wrong: %+v", i, p)
		}
		if p.Seq != uint64(i+1) {
			t.Fatalf("packet %d seq = %d", i, p.Seq)
		}
		if i > 0 && got[i].Created-got[i-1].Created != g.Period() {
			t.Fatalf("irregular spacing at %d", i)
		}
	}
}

func TestCBRStartIdempotentStopHalts(t *testing.T) {
	sched := sim.NewScheduler(1)
	count := 0
	g, err := NewCBR(sched, 0, 1, 2000, 32, func(core.Packet) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	g.Start() // no-op
	sched.RunUntil(time.Second)
	atStop := count
	g.Stop()
	sched.RunUntil(10 * time.Second)
	if count != atStop {
		t.Errorf("generated %d more packets after Stop", count-atStop)
	}
}

func TestCBRStartWithin(t *testing.T) {
	// A large window defers the first packet beyond one period for most
	// seeds; with a fixed seed we just check the first emission lands
	// within the window.
	sched := sim.NewScheduler(42)
	var first sim.Time = -1
	g, err := NewCBR(sched, 0, 1, 2000, 32, func(p core.Packet) {
		if first < 0 {
			first = p.Created
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	window := 64 * time.Second
	g.StartWithin(window)
	sched.RunUntil(2 * window)
	if first < 0 {
		t.Fatal("nothing generated")
	}
	if first > window {
		t.Errorf("first packet at %v, beyond window %v", first, window)
	}
}

func TestCBRValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	emit := func(core.Packet) {}
	if _, err := NewCBR(sched, 0, 1, 0, 32, emit); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewCBR(sched, 0, 1, 200, 0, emit); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := NewCBR(sched, 0, 1, 200, 32, nil); err == nil {
		t.Error("nil emit accepted")
	}
}

// Property: generated packet count matches elapsed time / period within
// one packet, for any rate and duration.
func TestCBRCountProperty(t *testing.T) {
	f := func(rateKbps uint8, seconds uint8) bool {
		rate := units.BitRate(int(rateKbps%50)+1) * units.Kbps
		dur := time.Duration(int(seconds%60)+1) * time.Second
		sched := sim.NewScheduler(9)
		count := 0
		g, err := NewCBR(sched, 0, 1, rate, 32, func(core.Packet) { count++ })
		if err != nil {
			return false
		}
		g.Start()
		sched.RunUntil(dur)
		expect := int(dur / g.Period())
		return count >= expect-1 && count <= expect+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRecorder(t *testing.T) {
	sched := sim.NewScheduler(1)
	r := NewRecorder(sched)
	sched.After(2*time.Second, func() {
		r.Receive(core.Packet{Size: 32, Created: 0})
	})
	sched.After(3*time.Second, func() {
		r.Receive(core.Packet{Size: 32, Created: sim.Time(time.Second)})
	})
	sched.Run()

	if got := r.DeliveredPackets(); got != 2 {
		t.Errorf("DeliveredPackets = %d, want 2", got)
	}
	if got := r.DeliveredBits(); got != 512 {
		t.Errorf("DeliveredBits = %d, want 512", got)
	}
	delays := r.Delays()
	if len(delays) != 2 || delays[0] != 2*time.Second || delays[1] != 2*time.Second {
		t.Errorf("Delays = %v, want [2s 2s]", delays)
	}
	// Returned slice is a copy.
	delays[0] = 0
	if r.Delays()[0] != 2*time.Second {
		t.Error("Delays() aliases internal slice")
	}
}
