package workload

import (
	"math"
	"testing"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

func TestPoissonMeanRate(t *testing.T) {
	sched := sim.NewScheduler(7)
	count := 0
	g, err := NewPoisson(sched, 0, 1, 2*units.Kbps, 32, func(core.Packet) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	sched.RunUntil(1000 * time.Second)
	g.Stop()
	// 2 Kbps / 256 bits = 7.8125 pkt/s -> ~7812 packets over 1000 s.
	// Poisson stddev ~ sqrt(7812) ~ 88; allow 5 sigma.
	expect := 7812.5
	if math.Abs(float64(count)-expect) > 5*math.Sqrt(expect) {
		t.Errorf("Poisson generated %d packets, want ~%.0f", count, expect)
	}
	packets, bits := g.Generated()
	if int(packets) != count || bits != int64(count)*256 {
		t.Errorf("Generated() = (%d, %d), emitted %d", packets, bits, count)
	}
}

func TestPoissonInterArrivalsVary(t *testing.T) {
	sched := sim.NewScheduler(7)
	var times []sim.Time
	g, err := NewPoisson(sched, 0, 1, 2*units.Kbps, 32, func(p core.Packet) {
		times = append(times, p.Created)
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	sched.RunUntil(100 * time.Second)
	if len(times) < 10 {
		t.Fatalf("too few packets: %d", len(times))
	}
	gaps := make(map[time.Duration]bool)
	for i := 1; i < len(times); i++ {
		gaps[times[i]-times[i-1]] = true
	}
	if len(gaps) < len(times)/2 {
		t.Errorf("inter-arrivals look constant: %d distinct gaps over %d packets",
			len(gaps), len(times))
	}
}

func TestPoissonValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	emit := func(core.Packet) {}
	if _, err := NewPoisson(sched, 0, 1, 0, 32, emit); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoisson(sched, 0, 1, 200, 0, emit); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := NewPoisson(sched, 0, 1, 200, 32, nil); err == nil {
		t.Error("nil emit accepted")
	}
}

func TestPoissonStop(t *testing.T) {
	sched := sim.NewScheduler(1)
	count := 0
	g, err := NewPoisson(sched, 0, 1, 2*units.Kbps, 32, func(core.Packet) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	g.Start() // idempotent
	sched.RunUntil(10 * time.Second)
	at := count
	g.Stop()
	sched.RunUntil(100 * time.Second)
	if count != at {
		t.Errorf("generated %d packets after Stop", count-at)
	}
}

func TestOnOffAlternates(t *testing.T) {
	sched := sim.NewScheduler(3)
	var times []sim.Time
	g, err := NewOnOff(sched, 0, 1, 64*units.Kbps, 32,
		2*time.Second, 10*time.Second, func(p core.Packet) {
			times = append(times, p.Created)
		})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	sched.RunUntil(600 * time.Second)
	g.Stop()
	if len(times) < 100 {
		t.Fatalf("too few packets: %d", len(times))
	}
	// Packets must cluster: many 4 ms peak-rate gaps plus some long
	// silences far above the mean ON duration.
	peakGap := time.Duration(float64(32*8) / 64000 * float64(time.Second))
	peak, silence := 0, 0
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		switch {
		case gap <= 2*peakGap:
			peak++
		case gap > 4*time.Second:
			silence++
		}
	}
	if peak < len(times)/2 {
		t.Errorf("only %d/%d peak-rate gaps: not bursty", peak, len(times))
	}
	if silence < 5 {
		t.Errorf("only %d silences in 600 s with mean 10 s OFF", silence)
	}
	// Duty cycle sanity: mean ON 2 s of every 12 s -> 1/6 of the 250
	// packet/s peak -> ~25000 packets over 600 s (wide tolerance: the
	// cycle count is only ~50, so the duty ratio is noisy).
	if len(times) < 15000 || len(times) > 35000 {
		t.Errorf("generated %d packets, want ~25000 (duty-cycled)", len(times))
	}
}

func TestOnOffValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	emit := func(core.Packet) {}
	if _, err := NewOnOff(sched, 0, 1, 0, 32, time.Second, time.Second, emit); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewOnOff(sched, 0, 1, 64*units.Kbps, 0, time.Second, time.Second, emit); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := NewOnOff(sched, 0, 1, 64*units.Kbps, 32, 0, time.Second, emit); err == nil {
		t.Error("zero mean-on accepted")
	}
	if _, err := NewOnOff(sched, 0, 1, 64*units.Kbps, 32, time.Second, -1, emit); err == nil {
		t.Error("negative mean-off accepted")
	}
	if _, err := NewOnOff(sched, 0, 1, 64*units.Kbps, 32, time.Second, time.Second, nil); err == nil {
		t.Error("nil emit accepted")
	}
}

func TestOnOffStopAndCounters(t *testing.T) {
	sched := sim.NewScheduler(5)
	count := 0
	g, err := NewOnOff(sched, 2, 9, 64*units.Kbps, 32,
		time.Second, time.Second, func(p core.Packet) {
			count++
			if p.Src != 2 || p.Dst != 9 {
				t.Fatalf("bad endpoints %+v", p)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	g.Start()
	sched.RunUntil(60 * time.Second)
	at := count
	g.Stop()
	sched.RunUntil(120 * time.Second)
	if count != at {
		t.Errorf("generated after Stop")
	}
	packets, bits := g.Generated()
	if int(packets) != count || bits != int64(count)*256 {
		t.Errorf("Generated() = (%d, %d), emitted %d", packets, bits, count)
	}
}
