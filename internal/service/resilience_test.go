package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bulktx/internal/faultinject"
	"bulktx/internal/sweep"
)

// activateFaults installs a fault plan for the test's duration.
func activateFaults(t *testing.T, spec string) {
	t.Helper()
	plan, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Activate(plan)
	t.Cleanup(restore)
}

// del issues DELETE /v1/jobs/{id} and returns the response + body.
func del(t *testing.T, base, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	bufio.NewReader(resp.Body).WriteTo(&buf) //nolint:errcheck // short test body
	return resp, []byte(buf.String())
}

// waitState polls until the job reports the wanted state.
func waitState(t *testing.T, base, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st JobStatus
	for time.Now().Before(deadline) {
		_, data := getBody(t, base+"/v1/jobs/"+id)
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
	return st
}

func TestCancelQueuedJob(t *testing.T) {
	svc, ts := newTestService(t, Options{JobWorkers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	setGate(svc, func(*job) { started <- struct{}{}; <-release })
	defer close(release)

	// First job occupies the single executor; the second stays queued.
	blocker := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)
	<-started
	queued := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)

	resp, body := del(t, ts.URL, queued.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job = %d: %s", resp.StatusCode, body)
	}
	if st := waitState(t, ts.URL, queued.ID, string(jobCanceled)); st.CellsDone != 0 {
		t.Errorf("canceled-while-queued job simulated %d cells", st.CellsDone)
	}
	// Canceling a terminal job conflicts.
	if resp, _ := del(t, ts.URL, queued.ID); resp.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE = %d, want 409", resp.StatusCode)
	}
	// The canceled job's artifacts are gone too.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+queued.ID+"/artifacts/results.csv"); resp.StatusCode != http.StatusConflict {
		t.Errorf("artifact of canceled job = %d, want 409", resp.StatusCode)
	}
	if v := metricValue(t, ts.URL, "bulktx_jobs_canceled_total"); v != 1 {
		t.Errorf("bulktx_jobs_canceled_total = %g, want 1", v)
	}
	_ = blocker
}

func TestCancelRunningJobUnwindsBetweenCells(t *testing.T) {
	// Every cell stalls for far longer than the test; cancellation must
	// interrupt the stall (it is context-aware) and unwind the job.
	activateFaults(t, "cell.stall:delay=30s")
	_, ts := newTestService(t, Options{JobWorkers: 1, Workers: 1})

	st := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)
	waitState(t, ts.URL, st.ID, string(jobRunning))
	resp, body := del(t, ts.URL, st.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job = %d: %s", resp.StatusCode, body)
	}
	waitState(t, ts.URL, st.ID, string(jobCanceled))

	// A canceled spec is resubmittable: the job slot is replaced.
	activateFaults(t, "") // lift the stall
	st2 := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)
	if st2.ID != st.ID {
		t.Fatalf("resubmitted spec got id %s, want the original %s", st2.ID, st.ID)
	}
	if done := waitDone(t, ts.URL, st2.ID); done.State != string(jobDone) {
		t.Fatalf("resubmitted job ended %s: %s", done.State, done.Error)
	}
}

func TestJobDeadlineFailsJob(t *testing.T) {
	activateFaults(t, "cell.stall:delay=30s")
	_, ts := newTestService(t, Options{})

	body := `{"model": "sensor", "senders": 5, "duration_s": 30, "rate_bps": 2000, "deadline_s": 0.05}`
	st := submit(t, ts.URL+"/v1/runs", body, http.StatusAccepted)
	if st.DeadlineS != 0.05 {
		t.Errorf("accepted status deadline_s = %g, want 0.05", st.DeadlineS)
	}
	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobFailed) || !strings.Contains(done.Error, "deadline") {
		t.Fatalf("deadline job ended %s (%q), want failed with a deadline error", done.State, done.Error)
	}
}

func TestNegativeDeadlineRejected(t *testing.T) {
	_, ts := newTestService(t, Options{})
	resp, data := postJSON(t, ts.URL+"/v1/runs", `{"senders": 5, "deadline_s": -1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline = %d: %s", resp.StatusCode, data)
	}
	var body apiError
	if err := json.Unmarshal(data, &body); err != nil || body.Field != "deadline_s" {
		t.Errorf("error body %s does not name deadline_s", data)
	}
}

func TestPartialFailureReportsCellDetail(t *testing.T) {
	// One fault budget, four cells: exactly one cell quarantines (the
	// service's default retry policy is one attempt) and the job still
	// completes with the three survivors.
	activateFaults(t, "cell.panic:count=1")
	_, ts := newTestService(t, Options{})

	st := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)
	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobDone) {
		t.Fatalf("partially failed sweep ended %s: %s", done.State, done.Error)
	}
	if done.CellsFailed != 1 || len(done.CellErrors) != 1 {
		t.Fatalf("cells_failed=%d cell_errors=%d, want 1/1", done.CellsFailed, len(done.CellErrors))
	}
	ce := done.CellErrors[0]
	if ce.Attempts != 1 || !strings.Contains(ce.Error, "panic") || ce.Point == "" {
		t.Errorf("cell error detail %+v lacks attempts/panic/point", ce)
	}
	// The JSON artifact carries the quarantine summary...
	_, data := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.json")
	var doc struct {
		// Failed and Cells mirror the export shape under test.
		Failed int               `json:"failed"`
		Errors []json.RawMessage `json:"errors"`
		Cells  []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Failed != 1 || len(doc.Errors) != 1 || len(doc.Cells) != 3 {
		t.Errorf("results.json failed=%d errors=%d cells=%d, want 1/1/3", doc.Failed, len(doc.Errors), len(doc.Cells))
	}
	// ...and the counters add up.
	if v := metricValue(t, ts.URL, "bulktx_cells_failed_total"); v != 1 {
		t.Errorf("bulktx_cells_failed_total = %g, want 1", v)
	}
}

func TestAllCellsFailedFailsJob(t *testing.T) {
	activateFaults(t, "cell.panic")
	_, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobFailed) || !strings.Contains(done.Error, "all 1 cells failed") {
		t.Fatalf("fully failed job ended %s (%q)", done.State, done.Error)
	}
	if done.CellsFailed != 1 || len(done.CellErrors) != 1 {
		t.Errorf("cells_failed=%d cell_errors=%d, want 1/1", done.CellsFailed, len(done.CellErrors))
	}
}

func TestCellRetrySucceedsBehindService(t *testing.T) {
	// Two injected panics, three attempts: the cell recovers and the
	// retry counter records the two extra attempts.
	activateFaults(t, "cell.panic:count=2")
	_, ts := newTestService(t, Options{
		Workers: 1,
		Retry:   sweep.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobDone) || done.CellsFailed != 0 {
		t.Fatalf("retried job ended %s with %d failed cells", done.State, done.CellsFailed)
	}
	if v := metricValue(t, ts.URL, "bulktx_cell_retries_total"); v != 2 {
		t.Errorf("bulktx_cell_retries_total = %g, want 2", v)
	}
}

func TestJournalReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	lines := `{"op":"submitted","id":"aaaa","kind":"run","doc":{"senders":[5]}}
{"op":"done","id":"aaaa"}
{"op":"submitted","id":"bbbb","kind":"sweep","doc":{"senders":[5,10]}}
{"op":"subm` // torn final line: crashed mid-append
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, pending, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	if len(pending) != 1 || pending[0].ID != "bbbb" || pending[0].Kind != "sweep" {
		t.Fatalf("pending = %+v, want exactly the unfinished bbbb", pending)
	}
	// Compaction rewrote the file down to the live backlog.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 1 || !strings.Contains(string(data), "bbbb") {
		t.Fatalf("compacted journal has %d lines (%q), want 1 line for bbbb", got, data)
	}
	// New appends land after the compacted content and replay in order.
	jl.append(journalRecord{Op: opSubmitted, ID: "cccc", Kind: "run", Doc: json.RawMessage(`{}`)})
	jl.append(journalRecord{Op: opCanceled, ID: "bbbb"})
	jl.close()
	_, pending2, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending2) != 1 || pending2[0].ID != "cccc" {
		t.Fatalf("second replay pending = %+v, want exactly cccc", pending2)
	}
}

func TestJournalAppendFailureDegradesGracefully(t *testing.T) {
	activateFaults(t, "journal.append")
	_, ts := newTestService(t, Options{StateDir: t.TempDir()})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	if done := waitDone(t, ts.URL, st.ID); done.State != string(jobDone) {
		t.Fatalf("job with failing journal ended %s: %s", done.State, done.Error)
	}
	if v := metricValue(t, ts.URL, "bulktx_journal_write_errors_total"); v < 2 {
		t.Errorf("bulktx_journal_write_errors_total = %g, want >= 2 (submitted + done)", v)
	}
}

// TestCrashRecoveryResumesJobs is the crash-safety acceptance test: a
// service with a state dir accepts a job and "crashes" (is abandoned
// without draining) before the job finishes; a second service on the
// same state dir replays the journal, resubmits the job under its
// original id, and runs it to completion — while a subscriber whose
// first SSE connection died rudely mid-stream reconnects against the
// restarted service and still receives the full event history.
func TestCrashRecoveryResumesJobs(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := t.TempDir()

	// --- first incarnation: accepts the job, never finishes it.
	cache1, err := sweep.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := New(Options{StateDir: stateDir, Cache: cache1, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hang := make(chan struct{})
	defer close(hang)
	setGate(svc1, func(*job) { <-hang }) // executor wedges: the crash stand-in
	ts1 := httptest.NewServer(svc1)
	defer ts1.Close()

	st := submit(t, ts1.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)

	// A rude subscriber: connects to the event stream, reads the first
	// event, then slams the connection shut mid-stream.
	resp, err := http.Get(ts1.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(resp.Body)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "id: 1") {
		t.Fatalf("first SSE line %q (%v)", line, err)
	}
	resp.Body.Close() // rude: mid-stream, no draining

	// svc1 is now abandoned without Close — the process-crash stand-in.
	// Its journal holds the submitted record with no terminal.

	// --- second incarnation: same state dir, working executors.
	cache2, err := sweep.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := New(Options{StateDir: stateDir, Cache: cache2, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc2.Close(ctx) //nolint:errcheck // best-effort teardown
	})

	// The pre-crash job id resolves immediately — no resubmission.
	recovered := waitDone(t, ts2.URL, st.ID)
	if recovered.State != string(jobDone) {
		t.Fatalf("recovered job ended %s: %s", recovered.State, recovered.Error)
	}
	if v := metricValue(t, ts2.URL, "bulktx_jobs_recovered_total"); v != 1 {
		t.Errorf("bulktx_jobs_recovered_total = %g, want 1", v)
	}

	// The rude subscriber reconnects against the restarted service and
	// replays the full history, terminal event included.
	resp2, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events := readSSEEventNames(t, resp2.Body, "done")
	for _, want := range []string{"queued", "started", "cell", "done"} {
		if !events[want] {
			t.Errorf("replayed history after restart lacks %q event (got %v)", want, events)
		}
	}

	// Recovery replayed through the shared disk cache: submitting the
	// same spec again is served without simulating anything.
	again := submit(t, ts2.URL+"/v1/sweeps", sweepBody, http.StatusOK)
	if !again.Deduped {
		t.Errorf("post-recovery resubmission was not deduped: %+v", again)
	}

	// The journal compacts back to empty on the next restart: nothing
	// is pending anymore.
	svc3, err := New(Options{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close(context.Background()) //nolint:errcheck // empty service
	if v := svc3.counters.recovered.Load(); v != 0 {
		t.Errorf("third incarnation recovered %d jobs, want 0", v)
	}
}

// readSSEEventNames consumes the stream until the terminal event name
// (or EOF) and reports the set of event names seen.
func readSSEEventNames(t *testing.T, body interface{ Read([]byte) (int, error) }, terminal string) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			names[name] = true
			if name == terminal {
				break
			}
		}
	}
	return names
}

func TestAdaptiveRetryAfterTracksDrainRate(t *testing.T) {
	svc, err := New(Options{RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background()) //nolint:errcheck // no jobs accepted

	now := time.Now()
	// No drain evidence: the configured floor is advertised.
	if got := svc.retryAfterHint(now); got != 2*time.Second {
		t.Errorf("hint with no history = %v, want the 2s floor", got)
	}
	// Ten completions over the last ~10s ≈ 1 job/s; a backlog of 19+1
	// should advertise ~20s.
	for i := 0; i < 10; i++ {
		svc.drains.record(now.Add(-time.Duration(10-i) * time.Second))
	}
	svc.counters.queued.Store(19)
	got := svc.retryAfterHint(now)
	if got < 15*time.Second || got > 25*time.Second {
		t.Errorf("hint with 1 job/s drain and backlog 20 = %v, want ~20s", got)
	}
	// A huge backlog is clamped to the cap.
	svc.counters.queued.Store(100000)
	if got := svc.retryAfterHint(now); got != maxRetryAfter {
		t.Errorf("hint with huge backlog = %v, want the %v cap", got, maxRetryAfter)
	}
	// Stamps outside the window expire: back to the floor.
	svc.counters.queued.Store(0)
	if got := svc.retryAfterHint(now.Add(drainWindow + time.Minute)); got != 2*time.Second {
		t.Errorf("hint after the window = %v, want the 2s floor", got)
	}
}

func TestCacheWriteFailureCountsAndFallsBack(t *testing.T) {
	activateFaults(t, "cache.put")
	cache, err := sweep.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestService(t, Options{Cache: cache})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	if done := waitDone(t, ts.URL, st.ID); done.State != string(jobDone) {
		t.Fatalf("job with failing cache disk ended %s: %s", done.State, done.Error)
	}
	if v := metricValue(t, ts.URL, "bulktx_cache_write_errors_total"); v != 1 {
		t.Errorf("bulktx_cache_write_errors_total = %g, want 1", v)
	}
}
