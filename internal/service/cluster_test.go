package service

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"bulktx/internal/cluster"
	"bulktx/internal/sweep"
)

// clusterSweepBody is a wider grid than sweepBody (2 models x 3 sender
// counts x 2 reps = 12 cells) so a lost worker actually holds leases
// when it dies.
const clusterSweepBody = `{
	"models": ["sensor", "dual"],
	"senders": [5, 10, 15],
	"bursts": [10],
	"runs": 2,
	"duration_s": 30,
	"rate_bps": 2000
}`

// startWorker runs a cluster.Worker pull loop against the service URL
// until test cleanup. Each worker gets its own pool and cache — a fully
// independent "process".
func startWorker(t *testing.T, url, name string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	w := &cluster.Worker{
		Coordinator:    url,
		Name:           name,
		Pool:           &sweep.Pool{Cache: sweep.NewCache()},
		HeartbeatEvery: 50 * time.Millisecond,
	}
	go w.Run(ctx) //nolint:errcheck // exits with ctx at cleanup
}

// waitLiveWorkers blocks until the coordinator sees n live workers.
func waitLiveWorkers(t *testing.T, svc *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for svc.Cluster().LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered in time", svc.Cluster().LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// resultsCSV submits body to a fresh single-process service and returns
// the finished sweep's results.csv — the byte-identity baseline.
func resultsCSV(t *testing.T, body string) []byte {
	t.Helper()
	_, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/sweeps", body, http.StatusAccepted)
	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobDone) || done.CellsFailed != 0 {
		t.Fatalf("baseline job: state %s, %d failed cells", done.State, done.CellsFailed)
	}
	resp, data := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline results.csv = %d", resp.StatusCode)
	}
	return data
}

// TestClusterSweepByteIdentical is the tentpole acceptance test: a
// sweep dispatched across an in-process 3-worker fleet completes with a
// results.csv byte-identical to single-process execution.
func TestClusterSweepByteIdentical(t *testing.T) {
	want := resultsCSV(t, clusterSweepBody)

	svc, ts := newTestService(t, Options{})
	for _, name := range []string{"alpha", "beta", "gamma"} {
		startWorker(t, ts.URL, name)
	}
	waitLiveWorkers(t, svc, 3)

	st := submit(t, ts.URL+"/v1/sweeps", clusterSweepBody, http.StatusAccepted)
	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobDone) || done.CellsFailed != 0 {
		t.Fatalf("cluster job: state %s, %d failed cells", done.State, done.CellsFailed)
	}
	resp, got := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster results.csv = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cluster results.csv diverges from single-process run:\n got: %s\nwant: %s", got, want)
	}
	// The fleet — not the coordinator's local pool — must have done the
	// work for the comparison to mean anything.
	if v := metricValue(t, ts.URL, "bulktx_cluster_results_total"); v < 1 {
		t.Errorf("bulktx_cluster_results_total = %v, want >= 1 (fleet never executed a cell)", v)
	}
	if v := metricValue(t, ts.URL, "bulktx_cluster_cells_local_total"); v != 0 {
		t.Errorf("bulktx_cluster_cells_local_total = %v, want 0 (work leaked to the local pool)", v)
	}
}

// TestClusterWorkerLossByteIdentical is the fault half of the
// acceptance criterion: a worker takes leases and dies mid-sweep; its
// cells requeue after the liveness window, a surviving worker finishes,
// and results.csv is still byte-identical to a single-process run.
func TestClusterWorkerLossByteIdentical(t *testing.T) {
	want := resultsCSV(t, clusterSweepBody)

	svc, ts := newTestService(t, Options{
		ClusterLeaseTTL:   500 * time.Millisecond,
		ClusterStealAfter: -1, // disable straggler duplication: expiry is the only recovery
		ClusterLeaseCells: 3,
	})
	// The doomed worker is driven by hand through the coordinator so the
	// test controls exactly when it falls silent.
	c := svc.Cluster()
	doomed := c.Register("doomed")

	st := submit(t, ts.URL+"/v1/sweeps", clusterSweepBody, http.StatusAccepted)

	grabbed := 0
	for deadline := time.Now().Add(10 * time.Second); grabbed == 0; {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		lease, err := c.Lease(doomed.WorkerID, 3)
		if err != nil {
			t.Fatal(err)
		}
		grabbed = len(lease.Cells)
		time.Sleep(2 * time.Millisecond)
	}
	// SIGKILL equivalent: the worker holds `grabbed` leases and never
	// speaks again. The survivor joins and the sweep must still finish.
	startWorker(t, ts.URL, "survivor")

	done := waitDone(t, ts.URL, st.ID)
	if done.State != string(jobDone) || done.CellsFailed != 0 {
		t.Fatalf("job after worker loss: state %s, %d failed cells", done.State, done.CellsFailed)
	}
	resp, got := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results.csv = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("results.csv after worker loss diverges from single-process run:\n got: %s\nwant: %s", got, want)
	}
	if v := metricValue(t, ts.URL, "bulktx_cluster_leases_requeued_total"); v < float64(grabbed) {
		t.Errorf("bulktx_cluster_leases_requeued_total = %v, want >= %d (the dead worker's leases)", v, grabbed)
	}
	if v := metricValue(t, ts.URL, "bulktx_cluster_workers_expired_total"); v < 1 {
		t.Errorf("bulktx_cluster_workers_expired_total = %v, want >= 1", v)
	}
}

// TestClusterStatusEndpoint: GET /v1/cluster reflects registrations and
// liveness.
func TestClusterStatusEndpoint(t *testing.T) {
	svc, ts := newTestService(t, Options{})
	resp, body := getBody(t, ts.URL+"/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster = %d: %s", resp.StatusCode, body)
	}
	startWorker(t, ts.URL, "peer")
	waitLiveWorkers(t, svc, 1)

	status := svc.Cluster().Status()
	if status.LiveWorkers != 1 || len(status.Workers) != 1 {
		t.Fatalf("cluster status = %+v, want 1 live worker", status)
	}
	if status.Workers[0].Name != "peer" || !status.Workers[0].Live {
		t.Errorf("worker entry = %+v, want live peer", status.Workers[0])
	}
}

// TestClusterRegistrationRoutes exercises the worker-facing HTTP
// surface directly: register, heartbeat, bad lease, unknown ids.
func TestClusterRegistrationRoutes(t *testing.T) {
	_, ts := newTestService(t, Options{})

	resp, body := postJSON(t, ts.URL+"/v1/cluster/workers", `{"name": "probe"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"worker_id"`)) {
		t.Fatalf("register response carries no worker_id: %s", body)
	}

	// Empty worker_id is a client error, not an unknown worker.
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/lease", `{"worker_id": ""}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lease with empty worker_id = %d, want 400", resp.StatusCode)
	}
	// Unknown ids answer 404 — the worker's signal to re-register.
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/lease", `{"worker_id": "nosuchworker"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("lease with unknown worker = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/workers/nosuchworker/heartbeat", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("heartbeat for unknown worker = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/results", `{"worker_id": "nosuchworker", "results": []}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("results from unknown worker = %d, want 404", resp.StatusCode)
	}
}
