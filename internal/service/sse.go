package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// subscriberBuffer is each SSE subscriber's event buffer. A subscriber
// that falls this far behind the live stream is evicted (its
// connection ends); reconnecting replays the full history, so nothing
// is lost — slow clients just cannot stall the executors.
const subscriberBuffer = 256

// event is one record of a job's SSE stream.
type event struct {
	// id is the monotonically increasing SSE id within the stream.
	id int
	// name is the SSE event name: queued, started, cell, done, failed,
	// canceled.
	name string
	// data is the JSON payload.
	data []byte
}

// stream is one job's progress feed: an append-only history replayed
// to every subscriber, plus live fan-out. Publishing never blocks on
// subscribers.
type stream struct {
	mu      sync.Mutex
	events  []event
	subs    map[chan event]struct{}
	closedC bool
}

// newStream returns an open, empty stream.
func newStream() *stream {
	return &stream{subs: make(map[chan event]struct{})}
}

// publish marshals v, appends it to the history and fans it out.
// Subscribers whose buffers are full are evicted.
func (st *stream) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Payloads are service-defined structs; a marshal failure is a
		// programming error. Encode it visibly instead of panicking an
		// executor.
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	st.mu.Lock()
	ev := event{id: len(st.events) + 1, name: name, data: data}
	st.events = append(st.events, ev)
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
			delete(st.subs, ch)
			close(ch)
		}
	}
	st.mu.Unlock()
}

// close ends the stream after the terminal event: live subscribers'
// channels close, and future subscribers get history only.
func (st *stream) close() {
	st.mu.Lock()
	st.closedC = true
	for ch := range st.subs {
		close(ch)
	}
	st.subs = make(map[chan event]struct{})
	st.mu.Unlock()
}

// subscribe returns the history so far and, for a still-open stream, a
// live channel (nil when the stream has closed) plus a cancel func.
func (st *stream) subscribe() (history []event, ch chan event, cancel func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	history = append([]event(nil), st.events...)
	if st.closedC {
		return history, nil, func() {}
	}
	ch = make(chan event, subscriberBuffer)
	st.subs[ch] = struct{}{}
	return history, ch, func() {
		st.mu.Lock()
		if _, ok := st.subs[ch]; ok {
			delete(st.subs, ch)
			close(ch)
		}
		st.mu.Unlock()
	}
}

// writeSSE renders one event in the text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.name, ev.data)
}

// handleJobEvents streams a job's progress as Server-Sent Events. The
// full history is replayed first (so subscribing to a finished job
// yields every event, terminated by done/failed), then live events
// until the job completes or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	// bcp-serve runs its http.Server with real read/write timeouts so
	// stuck clients cannot pin connections forever — but an SSE stream
	// legitimately outlives them. Clear the per-connection deadlines
	// for this response only (best-effort: the test server's recorder
	// has none to clear).
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})  //nolint:errcheck // unsupported writer: keep the server default
	rc.SetWriteDeadline(time.Time{}) //nolint:errcheck // unsupported writer: keep the server default
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	history, ch, cancel := j.stream.subscribe()
	defer cancel()
	for _, ev := range history {
		writeSSE(w, ev)
	}
	flusher.Flush()
	if ch == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		}
	}
}
