package service

import (
	"net/http"
	"time"

	"bulktx/internal/telemetry"
)

// jobIDHeader carries the affected job's content-keyed id on
// submission responses, so clients (and the access logger) can
// correlate a request with its job without parsing the body.
const jobIDHeader = "X-Job-ID"

// statusWriter captures the response status for the access log while
// passing streaming (http.Flusher) through, so SSE keeps working
// behind the instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer's Flusher when it has one,
// preserving the SSE handler's flusher type-assertion.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, so the
// SSE handler can clear the server's per-connection deadlines through
// the instrumentation wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// ServeHTTP dispatches to the service's routes (a Server plugs
// directly into http.Server{Handler: svc}), wrapped in the telemetry
// middleware: a request id is propagated from X-Request-ID or
// generated and always echoed back, the request duration lands in the
// per-route latency histogram, and exactly one structured access-log
// line is emitted per request — method, route pattern, status,
// duration, request id, and the job's content-keyed id when the
// request touched one.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := telemetry.RequestID(r)
	w.Header().Set(telemetry.RequestIDHeader, reqID)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)
	// ServeMux stamps the matched pattern onto the request, so the
	// histogram label set stays bounded by the route table instead of
	// exploding with per-job paths.
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	s.hist.httpDuration.With(route).ObserveDuration(dur)
	attrs := []any{
		"method", r.Method,
		"route", route,
		"path", r.URL.Path,
		"status", sw.status,
		"duration_ms", float64(dur.Microseconds()) / 1e3,
		"request_id", reqID,
	}
	if id := sw.Header().Get(jobIDHeader); id != "" {
		attrs = append(attrs, "job", id)
	} else if id := r.PathValue("id"); id != "" {
		attrs = append(attrs, "job", id)
	}
	s.log.Info("request", attrs...)
}
