package service

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// docSmokeCase is one executable example extracted from docs/API.md.
type docSmokeCase struct {
	method, path string
	wantStatus   int
	body         string // POST request body (the marker's adjacent json block)
	line         int
}

// smokeMarker matches the machine-checkable example markers:
// <!-- smoke: METHOD PATH STATUS -->.
var smokeMarker = regexp.MustCompile(`^<!-- smoke: (GET|POST|DELETE) (\S+) (\d{3}) -->$`)

// parseDocSmoke extracts the markers (and, for POSTs, the first fenced
// json block after each marker) from the API reference.
func parseDocSmoke(t *testing.T, doc string) []docSmokeCase {
	t.Helper()
	lines := strings.Split(doc, "\n")
	var cases []docSmokeCase
	for i := 0; i < len(lines); i++ {
		m := smokeMarker.FindStringSubmatch(strings.TrimSpace(lines[i]))
		if m == nil {
			continue
		}
		status, err := strconv.Atoi(m[3])
		if err != nil {
			t.Fatalf("API.md line %d: bad status %q", i+1, m[3])
		}
		c := docSmokeCase{method: m[1], path: m[2], wantStatus: status, line: i + 1}
		if c.method == http.MethodPost {
			body, ok := nextJSONBlock(lines, i+1)
			if !ok {
				t.Fatalf("API.md line %d: POST marker without a following ```json block", i+1)
			}
			if !json.Valid([]byte(body)) {
				t.Fatalf("API.md line %d: example body is not valid JSON:\n%s", i+1, body)
			}
			c.body = body
		}
		cases = append(cases, c)
	}
	if len(cases) == 0 {
		t.Fatal("API.md carries no smoke markers")
	}
	return cases
}

// nextJSONBlock returns the contents of the first ```json fence at or
// after line start.
func nextJSONBlock(lines []string, start int) (string, bool) {
	for i := start; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```json" {
			continue
		}
		var body []string
		for j := i + 1; j < len(lines); j++ {
			if strings.TrimSpace(lines[j]) == "```" {
				return strings.Join(body, "\n"), true
			}
			body = append(body, lines[j])
		}
		return "", false
	}
	return "", false
}

// TestAPIDocExamples replays every documented request against a live
// service, in document order, asserting the documented status codes.
// {id} in paths resolves to the most recently submitted job's id;
// artifact requests wait for that job to finish first (as the document
// instructs readers to).
func TestAPIDocExamples(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	cases := parseDocSmoke(t, string(doc))

	_, ts := newTestService(t, Options{})
	lastID := ""
	for _, c := range cases {
		path := c.path
		if strings.Contains(path, "{id}") {
			if lastID == "" {
				t.Fatalf("API.md line %d: {id} path before any successful submission", c.line)
			}
			path = strings.ReplaceAll(path, "{id}", lastID)
			// Artifact reads and the documented DELETE example both
			// address a finished job (the document says so), so the
			// replay waits for the terminal state first — that keeps the
			// DELETE example deterministic (409: nothing left to cancel).
			if strings.Contains(path, "/artifacts/") || c.method == http.MethodDelete {
				waitDone(t, ts.URL, lastID)
			}
		}
		var (
			resp *http.Response
			body []byte
		)
		switch c.method {
		case http.MethodPost:
			resp, body = postJSON(t, ts.URL+path, c.body)
		case http.MethodDelete:
			req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ = io.ReadAll(r.Body)
			r.Body.Close()
			resp = r
		default:
			resp, body = getBody(t, ts.URL+path)
		}
		if resp.StatusCode != c.wantStatus {
			t.Errorf("API.md line %d: %s %s = %d, want %d\nbody: %.300s",
				c.line, c.method, c.path, resp.StatusCode, c.wantStatus, body)
			continue
		}
		if c.method == http.MethodPost && resp.StatusCode < 300 {
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Errorf("API.md line %d: submit response not a job status: %v", c.line, err)
				continue
			}
			lastID = st.ID
		}
	}
}

// TestAPIDocCoversEveryRoute pins the documented surface to the routed
// one: every pattern the service registers must appear in API.md, so
// adding an endpoint without documenting it fails CI.
func TestAPIDocCoversEveryRoute(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{
		"POST /v1/runs",
		"POST /v1/sweeps",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"DELETE /v1/jobs/{id}",
		"GET /v1/jobs/{id}/events",
		"GET /v1/jobs/{id}/artifacts/{name}",
		"GET /healthz",
		"GET /metrics",
		"GET /v1/cluster",
		"POST /v1/cluster/workers",
		"POST /v1/cluster/workers/{id}/heartbeat",
		"POST /v1/cluster/lease",
		"POST /v1/cluster/results",
	} {
		if !strings.Contains(string(doc), route) {
			t.Errorf("route %q undocumented in docs/API.md", route)
		}
	}
	// The documented artifact names must match the served set.
	for _, name := range []string{"results.json", "results.csv", "report.md", "trace.jsonl"} {
		if !strings.Contains(string(doc), name) {
			t.Errorf("artifact %q undocumented in docs/API.md", name)
		}
	}
	// Every exported metric must be documented.
	for _, name := range []string{
		"bulktx_jobs_submitted_total", "bulktx_jobs_deduped_total",
		"bulktx_jobs_rejected_total", "bulktx_jobs_done_total",
		"bulktx_jobs_failed_total", "bulktx_jobs_canceled_total",
		"bulktx_jobs_recovered_total", "bulktx_jobs_queued",
		"bulktx_jobs_running", "bulktx_cells_simulated_total",
		"bulktx_cells_cached_total", "bulktx_cells_failed_total",
		"bulktx_cell_retries_total", "bulktx_cache_write_errors_total",
		"bulktx_journal_write_errors_total", "bulktx_cells_per_sec",
		"bulktx_build_info",
		"bulktx_cluster_workers", "bulktx_cluster_workers_registered_total",
		"bulktx_cluster_workers_expired_total", "bulktx_cluster_cells_dispatched_total",
		"bulktx_cluster_cells_stolen_total", "bulktx_cluster_leases_requeued_total",
		"bulktx_cluster_results_total", "bulktx_cluster_results_duplicate_total",
		"bulktx_cluster_cells_local_total", "bulktx_cluster_cell_seconds",
		"bulktx_http_request_duration_seconds",
		"bulktx_job_queue_wait_seconds",
		"bulktx_job_execution_seconds",
		"bulktx_cell_simulation_seconds",
	} {
		if !strings.Contains(string(doc), name) {
			t.Errorf("metric %q undocumented in docs/API.md", name)
		}
	}
}
