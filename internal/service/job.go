package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/sweep"
	"bulktx/internal/trace"
)

// Job kinds.
const (
	// kindRun is a single-scenario submission (POST /v1/runs).
	kindRun = "run"
	// kindSweep is a grid submission (POST /v1/sweeps).
	kindSweep = "sweep"
)

// jobState is a job's lifecycle stage.
type jobState string

// Job lifecycle states, terminal last.
const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one accepted submission: a compiled job list plus its
// execution state and event stream.
type job struct {
	id     string
	kind   string
	jobs   []sweep.Job
	stream *stream

	// submittedAt is stamped once at acceptance and never mutated, so
	// it is readable without the lock.
	submittedAt time.Time

	mu          sync.Mutex
	state       jobState
	startedAt   time.Time // execution start (zero while queued)
	finishedAt  time.Time // terminal transition (zero until done/failed)
	errText     string
	outcome     *sweep.Outcome
	cellsDone   int
	cellsCached int
	traced      []sweep.TracedRun // lazy trace.jsonl artifact (run jobs)
	tracedErr   error
}

// JobStatus is the serialized status of one job, returned by the
// submit, status and list endpoints.
type JobStatus struct {
	// ID is the content-keyed job identifier.
	ID string `json:"id"`
	// Kind is "run" or "sweep".
	Kind string `json:"kind"`
	// State is queued, running, done or failed.
	State string `json:"state"`
	// Error carries the failure of a failed job.
	Error string `json:"error,omitempty"`
	// Cells is the number of simulations the spec compiled to;
	// CellsDone counts resolved ones and CellsCached how many of those
	// were served without simulating.
	Cells       int `json:"cells"`
	CellsDone   int `json:"cells_done"`
	CellsCached int `json:"cells_cached"`
	// Deduped marks a submission answered by an existing job with the
	// same content key (submit responses only).
	Deduped bool `json:"deduped,omitempty"`
	// Artifacts lists the downloadable artifact names of a completed
	// job.
	Artifacts []string `json:"artifacts,omitempty"`
	// Timings is the job's wall-clock phase breakdown, growing as the
	// job advances through its lifecycle.
	Timings *JobTimings `json:"timings,omitempty"`
}

// JobTimings attributes a job's wall-clock to its lifecycle phases,
// so a slow sweep is diagnosable as queueing vs. execution without
// scraping histograms: submitted→started is time spent waiting for an
// executor, started→finished is time spent simulating (and exporting).
type JobTimings struct {
	// SubmittedAt is when the service accepted the job.
	SubmittedAt time.Time `json:"submitted_at"`
	// StartedAt is when an executor picked the job up; absent while
	// the job is queued.
	StartedAt *time.Time `json:"started_at,omitempty"`
	// FinishedAt is when the job reached done or failed; absent
	// before that.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// QueueWaitS is StartedAt-SubmittedAt in seconds, present once
	// the job started.
	QueueWaitS float64 `json:"queue_wait_s,omitempty"`
	// ExecutionS is FinishedAt-StartedAt in seconds, present once the
	// job finished.
	ExecutionS float64 `json:"execution_s,omitempty"`
}

// timingsLocked snapshots the phase breakdown; j.mu must be held.
func (j *job) timingsLocked() *JobTimings {
	t := &JobTimings{SubmittedAt: j.submittedAt}
	if !j.startedAt.IsZero() {
		started := j.startedAt
		t.StartedAt = &started
		t.QueueWaitS = started.Sub(j.submittedAt).Seconds()
	}
	if !j.finishedAt.IsZero() {
		finished := j.finishedAt
		t.FinishedAt = &finished
		t.ExecutionS = finished.Sub(j.startedAt).Seconds()
	}
	return t
}

// status snapshots the job for serialization.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: string(j.state), Error: j.errText,
		Cells: len(j.jobs), CellsDone: j.cellsDone, CellsCached: j.cellsCached,
		Timings: j.timingsLocked(),
	}
	if j.state == jobDone {
		st.Artifacts = []string{"results.json", "results.csv", "report.md"}
		if j.kind == kindRun {
			st.Artifacts = append(st.Artifacts, "trace.jsonl")
		}
	}
	return st
}

// Server is the HTTP simulation service: a bounded job queue over one
// shared sweep pool and cache, plus the route handlers. Build one with
// New; it implements http.Handler.
type Server struct {
	mux        *http.ServeMux
	pool       *sweep.Pool
	queueLimit int
	maxCells   int
	maxJobs    int
	retryAfter time.Duration
	log        *slog.Logger
	hist       *histograms

	mu     sync.Mutex
	closed bool
	jobs   map[string]*job
	order  []*job
	queue  chan *job
	wg     sync.WaitGroup

	counters counters

	// testGate, when non-nil, blocks each job between dequeue and
	// execution — test-only scaffolding for deterministic queue-full
	// and drain scenarios.
	testGate func(*job)
}

// submitOutcome classifies what adopt did with a submission.
type submitOutcome int

// Submission outcomes.
const (
	submitNew submitOutcome = iota
	submitDeduped
	submitFull
	submitClosed
)

// jobID derives the content-keyed identifier of a submission: a hash
// over the kind and the compiled job list, so identical specs share a
// job no matter how their JSON was spelled.
func jobID(kind string, jobs []sweep.Job) (string, error) {
	key, err := sweep.JobsKey(jobs)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(kind + ":" + key))
	return hex.EncodeToString(h[:8]), nil
}

// currentState snapshots the job's lifecycle stage.
func (j *job) currentState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// adopt resolves a compiled submission against the job store: an
// existing queued/running/done job with the same content key answers
// the submission (dedupe); a failed one is replaced so the spec can be
// retried; otherwise a new job is enqueued — unless the queue is full
// or the service is draining.
func (s *Server) adopt(kind string, jobs []sweep.Job) (*job, submitOutcome) {
	id, err := jobID(kind, jobs)
	if err != nil {
		// Key derivation only fails on unencodable configs, which
		// Spec.Jobs already validated; treat as a full queue to stay
		// safe rather than crash.
		return nil, submitFull
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.jobs[id]
	if prev != nil && prev.currentState() != jobFailed {
		s.counters.deduped.Add(1)
		return prev, submitDeduped
	}
	if s.closed {
		return nil, submitClosed
	}
	if len(s.queue) >= s.queueLimit {
		return nil, submitFull
	}
	j := &job{id: id, kind: kind, jobs: jobs, state: jobQueued, stream: newStream(), submittedAt: time.Now()}
	j.stream.publish("queued", struct {
		// ID and Kind identify the job; Cells is its simulation count.
		ID    string `json:"id"`
		Kind  string `json:"kind"`
		Cells int    `json:"cells"`
	}{j.id, j.kind, len(j.jobs)})
	s.jobs[id] = j
	if prev != nil {
		// Retrying a failed spec replaces its job in the listing; the
		// old stream already closed with its failure.
		for i, o := range s.order {
			if o == prev {
				s.order[i] = j
				break
			}
		}
	} else {
		s.order = append(s.order, j)
		s.evictLocked()
	}
	s.counters.submitted.Add(1)
	s.counters.queued.Add(1)
	s.queue <- j // cannot block: len(queue) < queueLimit under s.mu
	s.log.Info("job queued", "job", j.id, "kind", j.kind, "cells", len(j.jobs))
	return j, submitNew
}

// evictLocked drops the oldest terminal jobs once the store exceeds
// its retention cap, so a long-lived service does not accumulate every
// outcome ever computed. Queued and running jobs are never evicted
// (their number is already bounded by the queue and the executors).
// Called with s.mu held.
func (s *Server) evictLocked() {
	for len(s.order) > s.maxJobs {
		evicted := false
		for i, j := range s.order {
			st := j.currentState()
			if st != jobDone && st != jobFailed {
				continue
			}
			delete(s.jobs, j.id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// executor drains the job queue until Close closes it.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.counters.queued.Add(-1)
		s.runJob(j)
	}
}

// cellEvent is the SSE payload of one resolved cell.
type cellEvent struct {
	// Index, Point and Rep identify the resolved job within the sweep.
	Index int    `json:"index"`
	Point string `json:"point"`
	Rep   int    `json:"rep"`
	// Cached marks cells served without simulating.
	Cached bool `json:"cached"`
	// DurationS is the cell's simulation wall-clock in seconds; 0 for
	// cached cells, which never simulate.
	DurationS float64 `json:"duration_s"`
	// Done and Total are the job's progress counters.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// runJob executes one job on the shared pool, streaming per-cell
// progress and publishing the terminal event.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	gate := s.testGate
	s.mu.Unlock()
	if gate != nil {
		gate(j)
	}
	start := time.Now()
	j.mu.Lock()
	j.state = jobRunning
	j.startedAt = start
	j.mu.Unlock()
	queueWait := start.Sub(j.submittedAt)
	s.hist.queueWait.ObserveDuration(queueWait)
	s.counters.running.Add(1)
	s.log.Info("job running", "job", j.id, "kind", j.kind,
		"cells", len(j.jobs), "queue_wait_s", queueWait.Seconds())
	j.stream.publish("started", struct {
		// Cells is the number of simulations about to run.
		Cells int `json:"cells"`
	}{len(j.jobs)})

	outcome, err := s.pool.RunJobsProgress(j.jobs, func(u sweep.JobUpdate) {
		if !u.Cached {
			s.hist.cellSim.ObserveDuration(u.Duration)
		}
		j.mu.Lock()
		j.cellsDone = u.Done
		if u.Cached {
			j.cellsCached++
		}
		j.mu.Unlock()
		j.stream.publish("cell", cellEvent{
			Index: u.Index, Point: u.Point.String(), Rep: u.Rep,
			Cached: u.Cached, DurationS: u.Duration.Seconds(),
			Done: u.Done, Total: u.Total,
		})
	})

	s.counters.running.Add(-1)
	finished := time.Now()
	execution := finished.Sub(start)
	s.counters.busyNanos.Add(int64(execution))
	s.hist.execution.ObserveDuration(execution)
	j.mu.Lock()
	j.finishedAt = finished
	if err != nil {
		j.state = jobFailed
		j.errText = err.Error()
		j.mu.Unlock()
		s.counters.failed.Add(1)
		s.log.Error("job failed", "job", j.id, "kind", j.kind,
			"execution_s", execution.Seconds(), "error", err.Error())
		j.stream.publish("failed", apiError{Error: err.Error()})
		j.stream.close()
		return
	}
	j.state = jobDone
	j.outcome = outcome
	cached := j.cellsCached
	j.mu.Unlock()
	s.counters.done.Add(1)
	s.log.Info("job done", "job", j.id, "kind", j.kind,
		"execution_s", execution.Seconds(),
		"cells", len(j.jobs), "cells_cached", cached)
	s.counters.cellsCached.Add(int64(cached))
	s.counters.cellsSimulated.Add(int64(len(j.jobs) - cached))
	j.stream.publish("done", struct {
		// CellsDone and CellsCached are the final progress counters.
		CellsDone   int `json:"cells_done"`
		CellsCached int `json:"cells_cached"`
	}{len(j.jobs), cached})
	j.stream.close()
}

// Close drains the service: no new submissions are accepted (503),
// already-accepted jobs — queued and running — finish, then the
// executors exit. The context bounds the wait.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// serveTrace renders the lazy trace.jsonl artifact of a run job: the
// job's scenario re-simulated once at the base seed with tracing on
// (packet provenance + state transitions), exported through the sweep
// trace exporters. Sweep jobs do not carry traces — tracing every grid
// cell would dwarf the sweep itself.
func (s *Server) serveTrace(w http.ResponseWriter, j *job) {
	if j.kind != kindRun {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("trace.jsonl is only available for run jobs (job %s is a %s)", j.id, j.kind))
		return
	}
	j.mu.Lock()
	runs, err := j.traced, j.tracedErr
	j.mu.Unlock()
	if runs == nil && err == nil {
		// Simulate outside the lock so status polls never block behind
		// the traced re-run; concurrent first requests may both
		// simulate, but the result is deterministic, so last-write-wins
		// is harmless.
		runs, err = traceRuns(j)
		j.mu.Lock()
		j.traced, j.tracedErr = runs, err
		j.mu.Unlock()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	sweep.WriteTraceJSONL(w, runs) //nolint:errcheck // streaming to a gone client
}

// traceRuns executes the traced repetition behind serveTrace.
func traceRuns(j *job) ([]sweep.TracedRun, error) {
	cfg := j.jobs[0].Config
	sc, err := cfg.Scenario(netsim.WithTrace(trace.Options{Packets: true, States: true}))
	if err != nil {
		return nil, fmt.Errorf("building traced scenario: %w", err)
	}
	res, err := netsim.RunScenario(sc)
	if err != nil {
		return nil, fmt.Errorf("traced run: %w", err)
	}
	return []sweep.TracedRun{{Label: j.jobs[0].Point.String(), Result: res}}, nil
}
