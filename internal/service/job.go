package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"bulktx/internal/cluster"
	"bulktx/internal/netsim"
	"bulktx/internal/sweep"
	"bulktx/internal/trace"
)

// Job kinds.
const (
	// kindRun is a single-scenario submission (POST /v1/runs).
	kindRun = "run"
	// kindSweep is a grid submission (POST /v1/sweeps).
	kindSweep = "sweep"
)

// jobState is a job's lifecycle stage.
type jobState string

// Job lifecycle states, terminal last.
const (
	jobQueued   jobState = "queued"
	jobRunning  jobState = "running"
	jobDone     jobState = "done"
	jobFailed   jobState = "failed"
	jobCanceled jobState = "canceled"
)

// errJobCanceled is the cancellation cause a DELETE request injects
// into a running job's context, distinguishing an operator cancel from
// a deadline or an internal failure.
var errJobCanceled = errors.New("job canceled")

// maxCellErrorDetails caps how many per-cell errors a job status
// carries, so a pathologically failing mega-sweep cannot balloon every
// status poll; CellsFailed always counts the full total.
const maxCellErrorDetails = 100

// job is one accepted submission: a compiled job list plus its
// execution state and event stream.
type job struct {
	id     string
	kind   string
	jobs   []sweep.Job
	stream *stream

	// rawDoc is the submitted spec document (lowered sweep.SpecDoc
	// JSON) as journaled for crash recovery; nil when the service runs
	// without a state dir.
	rawDoc json.RawMessage
	// deadline bounds the job's execution wall-clock (0 = unbounded).
	deadline time.Duration

	// submittedAt is stamped once at acceptance and never mutated, so
	// it is readable without the lock.
	submittedAt time.Time

	mu          sync.Mutex
	state       jobState
	startedAt   time.Time // execution start (zero while queued)
	finishedAt  time.Time // terminal transition (zero until done/failed/canceled)
	errText     string
	outcome     *sweep.Outcome
	cellsDone   int
	cellsCached int
	cellsFailed int
	cellErrs    []CellErrorDetail // capped at maxCellErrorDetails
	canceled    bool              // cancellation requested via DELETE
	cancel      context.CancelCauseFunc
	traced      []sweep.TracedRun // lazy trace.jsonl artifact (run jobs)
	tracedErr   error
}

// CellErrorDetail is the serialized record of one quarantined cell of
// a partially failed job.
type CellErrorDetail struct {
	// Index is the cell's position in the job's compiled job list.
	Index int `json:"index"`
	// Point identifies the grid cell; Rep is the seeded repetition.
	Point string `json:"point"`
	// Rep is the repetition index within the point.
	Rep int `json:"rep"`
	// Attempts is how many executions the cell got before quarantine.
	Attempts int `json:"attempts"`
	// Error is the cell's final failure.
	Error string `json:"error"`
}

// JobStatus is the serialized status of one job, returned by the
// submit, status and list endpoints.
type JobStatus struct {
	// ID is the content-keyed job identifier.
	ID string `json:"id"`
	// Kind is "run" or "sweep".
	Kind string `json:"kind"`
	// State is queued, running, done, failed or canceled.
	State string `json:"state"`
	// Error carries the failure of a failed job.
	Error string `json:"error,omitempty"`
	// Cells is the number of simulations the spec compiled to;
	// CellsDone counts resolved ones and CellsCached how many of those
	// were served without simulating.
	Cells       int `json:"cells"`
	CellsDone   int `json:"cells_done"`
	CellsCached int `json:"cells_cached"`
	// CellsFailed counts cells quarantined after exhausting their
	// retry budget; the job still completes with the surviving cells.
	CellsFailed int `json:"cells_failed,omitempty"`
	// CellErrors details the quarantined cells (capped at 100 entries;
	// CellsFailed is the uncapped total).
	CellErrors []CellErrorDetail `json:"cell_errors,omitempty"`
	// CellErrorsTruncated marks that more cells failed than CellErrors
	// lists: the detail list hit its cap and was cut off, while
	// CellsFailed kept counting.
	CellErrorsTruncated bool `json:"cell_errors_truncated,omitempty"`
	// DeadlineS is the job's execution deadline in seconds (absent
	// when unbounded).
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// Deduped marks a submission answered by an existing job with the
	// same content key (submit responses only).
	Deduped bool `json:"deduped,omitempty"`
	// Artifacts lists the downloadable artifact names of a completed
	// job.
	Artifacts []string `json:"artifacts,omitempty"`
	// Timings is the job's wall-clock phase breakdown, growing as the
	// job advances through its lifecycle.
	Timings *JobTimings `json:"timings,omitempty"`
}

// JobTimings attributes a job's wall-clock to its lifecycle phases,
// so a slow sweep is diagnosable as queueing vs. execution without
// scraping histograms: submitted→started is time spent waiting for an
// executor, started→finished is time spent simulating (and exporting).
type JobTimings struct {
	// SubmittedAt is when the service accepted the job.
	SubmittedAt time.Time `json:"submitted_at"`
	// StartedAt is when an executor picked the job up; absent while
	// the job is queued.
	StartedAt *time.Time `json:"started_at,omitempty"`
	// FinishedAt is when the job reached done or failed; absent
	// before that.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// QueueWaitS is StartedAt-SubmittedAt in seconds, present once
	// the job started.
	QueueWaitS float64 `json:"queue_wait_s,omitempty"`
	// ExecutionS is FinishedAt-StartedAt in seconds, present once the
	// job finished.
	ExecutionS float64 `json:"execution_s,omitempty"`
}

// timingsLocked snapshots the phase breakdown; j.mu must be held.
func (j *job) timingsLocked() *JobTimings {
	t := &JobTimings{SubmittedAt: j.submittedAt}
	if !j.startedAt.IsZero() {
		started := j.startedAt
		t.StartedAt = &started
		t.QueueWaitS = started.Sub(j.submittedAt).Seconds()
	}
	if !j.finishedAt.IsZero() {
		finished := j.finishedAt
		t.FinishedAt = &finished
		if !j.startedAt.IsZero() {
			t.ExecutionS = finished.Sub(j.startedAt).Seconds()
		}
	}
	return t
}

// status snapshots the job for serialization.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: string(j.state), Error: j.errText,
		Cells: len(j.jobs), CellsDone: j.cellsDone, CellsCached: j.cellsCached,
		CellsFailed: j.cellsFailed, CellErrors: j.cellErrs,
		CellErrorsTruncated: j.cellsFailed > len(j.cellErrs),
		DeadlineS:           j.deadline.Seconds(),
		Timings:             j.timingsLocked(),
	}
	if j.state == jobDone {
		st.Artifacts = []string{"results.json", "results.csv", "report.md"}
		if j.kind == kindRun {
			st.Artifacts = append(st.Artifacts, "trace.jsonl")
		}
	}
	return st
}

// Server is the HTTP simulation service: a bounded job queue over one
// shared sweep pool and cache, plus the route handlers. Build one with
// New; it implements http.Handler.
type Server struct {
	mux        *http.ServeMux
	pool       *sweep.Pool
	cluster    *cluster.Coordinator
	queueLimit int
	maxCells   int
	maxJobs    int
	retryAfter time.Duration
	log        *slog.Logger
	hist       *histograms
	journal    *journal

	mu     sync.Mutex
	closed bool
	jobs   map[string]*job
	order  []*job
	queue  chan *job
	wg     sync.WaitGroup

	counters counters
	drains   drainStats

	// cacheErrOnce and journalErrOnce gate the first-occurrence error
	// logs of the degradation paths (every occurrence still counts in
	// the metrics).
	cacheErrOnce, journalErrOnce sync.Once

	// testGate, when non-nil, blocks each job between dequeue and
	// execution — test-only scaffolding for deterministic queue-full
	// and drain scenarios.
	testGate func(*job)
}

// submitOutcome classifies what adopt did with a submission.
type submitOutcome int

// Submission outcomes.
const (
	submitNew submitOutcome = iota
	submitDeduped
	submitFull
	submitClosed
)

// jobID derives the content-keyed identifier of a submission: a hash
// over the kind and the compiled job list, so identical specs share a
// job no matter how their JSON was spelled.
func jobID(kind string, jobs []sweep.Job) (string, error) {
	key, err := sweep.JobsKey(jobs)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(kind + ":" + key))
	return hex.EncodeToString(h[:8]), nil
}

// currentState snapshots the job's lifecycle stage.
func (j *job) currentState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminal reports whether the state is a lifecycle end.
func (st jobState) terminal() bool {
	return st == jobDone || st == jobFailed || st == jobCanceled
}

// adopt resolves a compiled submission against the job store: an
// existing queued/running/done job with the same content key answers
// the submission (dedupe); a failed or canceled one is replaced so the
// spec can be retried; otherwise a new job is enqueued — unless the
// queue is full or the service is draining. journalize records the
// acceptance in the job journal (recovery resubmissions skip it: their
// submitted record already survives in the compacted journal).
func (s *Server) adopt(kind string, jobs []sweep.Job, rawDoc json.RawMessage, deadline time.Duration, journalize bool) (*job, submitOutcome) {
	id, err := jobID(kind, jobs)
	if err != nil {
		// Key derivation only fails on unencodable configs, which
		// Spec.Jobs already validated; treat as a full queue to stay
		// safe rather than crash.
		return nil, submitFull
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.jobs[id]
	if prev != nil {
		if st := prev.currentState(); st != jobFailed && st != jobCanceled {
			s.counters.deduped.Add(1)
			return prev, submitDeduped
		}
	}
	if s.closed {
		return nil, submitClosed
	}
	if len(s.queue) >= s.queueLimit {
		return nil, submitFull
	}
	j := &job{
		id: id, kind: kind, jobs: jobs, state: jobQueued,
		rawDoc: rawDoc, deadline: deadline,
		stream: newStream(), submittedAt: time.Now(),
	}
	j.stream.publish("queued", struct {
		// ID and Kind identify the job; Cells is its simulation count.
		ID    string `json:"id"`
		Kind  string `json:"kind"`
		Cells int    `json:"cells"`
	}{j.id, j.kind, len(j.jobs)})
	s.jobs[id] = j
	if prev != nil {
		// Retrying a failed or canceled spec replaces its job in the
		// listing; the old stream already closed with its outcome.
		for i, o := range s.order {
			if o == prev {
				s.order[i] = j
				break
			}
		}
	} else {
		s.order = append(s.order, j)
		s.evictLocked()
	}
	s.counters.submitted.Add(1)
	s.counters.queued.Add(1)
	if journalize {
		s.journal.append(journalRecord{
			Op: opSubmitted, ID: j.id, Kind: j.kind,
			Doc: j.rawDoc, DeadlineS: j.deadline.Seconds(),
		})
	}
	s.queue <- j // cannot block: the queue was sized for limit + recovery backlog
	s.log.Info("job queued", "job", j.id, "kind", j.kind, "cells", len(j.jobs))
	return j, submitNew
}

// evictLocked drops the oldest terminal jobs once the store exceeds
// its retention cap, so a long-lived service does not accumulate every
// outcome ever computed. Queued and running jobs are never evicted
// (their number is already bounded by the queue and the executors).
// Called with s.mu held.
func (s *Server) evictLocked() {
	for len(s.order) > s.maxJobs {
		evicted := false
		for i, j := range s.order {
			if !j.currentState().terminal() {
				continue
			}
			delete(s.jobs, j.id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// recoverPending resubmits the journal's unfinished jobs after a
// restart: each record recompiles through the same validation path as
// a live submission and re-enters the queue under its original id, so
// clients polling a pre-crash job id see it progress to completion.
// Records that no longer compile or no longer produce the same id
// (cache-schema or validation drift across versions) are retired with
// a dropped record instead of replaying forever.
func (s *Server) recoverPending(pending []journalRecord) {
	for _, rec := range pending {
		var doc sweep.SpecDoc
		drop := func(why string, err error) {
			s.log.Warn("journal record dropped", "job", rec.ID, "reason", why, "error", err)
			s.journal.append(journalRecord{Op: opDropped, ID: rec.ID})
		}
		if err := json.Unmarshal(rec.Doc, &doc); err != nil {
			drop("undecodable spec document", err)
			continue
		}
		spec, err := doc.Spec()
		if err != nil {
			drop("spec no longer validates", err)
			continue
		}
		jobs, err := spec.Jobs()
		if err != nil || len(jobs) == 0 {
			drop("spec no longer compiles", err)
			continue
		}
		id, err := jobID(rec.Kind, jobs)
		if err != nil || id != rec.ID {
			// The spec now keys differently (schema drift). Retire the
			// old id and adopt under the new one, journaled as a fresh
			// submission.
			drop("content key changed", err)
			s.adopt(rec.Kind, jobs, rec.Doc, time.Duration(rec.DeadlineS*float64(time.Second)), true)
			continue
		}
		j, outcome := s.adopt(rec.Kind, jobs, rec.Doc, time.Duration(rec.DeadlineS*float64(time.Second)), false)
		if outcome != submitNew {
			drop("not adoptable after restart", nil)
			continue
		}
		s.counters.recovered.Add(1)
		s.log.Info("job recovered", "job", j.id, "kind", j.kind, "cells", len(j.jobs))
	}
}

// executor drains the job queue until Close closes it.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.counters.queued.Add(-1)
		s.runJob(j)
	}
}

// cellEvent is the SSE payload of one resolved cell.
type cellEvent struct {
	// Index, Point and Rep identify the resolved job within the sweep.
	Index int    `json:"index"`
	Point string `json:"point"`
	Rep   int    `json:"rep"`
	// Cached marks cells served without simulating.
	Cached bool `json:"cached"`
	// Attempts is how many executions the cell took (retries included;
	// 0 for cached cells).
	Attempts int `json:"attempts,omitempty"`
	// Error marks a quarantined cell: it failed every attempt and the
	// sweep continued without it.
	Error string `json:"error,omitempty"`
	// DurationS is the cell's simulation wall-clock in seconds; 0 for
	// cached cells, which never simulate.
	DurationS float64 `json:"duration_s"`
	// Worker names the fleet worker that simulated the cell when the
	// job ran on a cluster dispatch; empty for local and cached cells.
	Worker string `json:"worker,omitempty"`
	// Done and Total are the job's progress counters.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// finish moves the job to a terminal state under its lock and stamps
// the transition, returning the snapshot time.
func (j *job) finish(state jobState, errText string) time.Time {
	now := time.Now()
	j.mu.Lock()
	j.state = state
	j.errText = errText
	j.finishedAt = now
	j.mu.Unlock()
	return now
}

// runJob executes one job on the shared pool, streaming per-cell
// progress and publishing the terminal event. Execution runs under a
// per-job context so DELETE and the job's deadline can unwind it
// between cells.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	gate := s.testGate
	s.mu.Unlock()
	if gate != nil {
		gate(j)
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	if j.deadline > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeoutCause(ctx, j.deadline,
			fmt.Errorf("job deadline (%s) exceeded: %w", j.deadline, context.DeadlineExceeded))
		defer cancelT()
	}

	start := time.Now()
	j.mu.Lock()
	if j.state == jobCanceled {
		// Canceled while still queued: already terminal, nothing to run.
		j.mu.Unlock()
		return
	}
	j.state = jobRunning
	j.startedAt = start
	j.cancel = cancel
	j.mu.Unlock()
	queueWait := start.Sub(j.submittedAt)
	s.hist.queueWait.ObserveDuration(queueWait)
	s.counters.running.Add(1)
	s.log.Info("job running", "job", j.id, "kind", j.kind,
		"cells", len(j.jobs), "queue_wait_s", queueWait.Seconds())
	// Dispatch across the fleet when live workers exist, else run on
	// the local pool. Both paths deliver identical JobUpdates and
	// produce identical Outcomes (merge invariant), so everything below
	// is dispatch-agnostic.
	fleet := s.cluster.LiveWorkers()
	execute := s.pool.RunJobsProgressContext
	if fleet > 0 {
		execute = s.cluster.RunJobs
	}
	j.stream.publish("started", struct {
		// Cells is the number of simulations about to run; Workers is
		// the live fleet size when the job dispatches across a cluster
		// (absent for local execution).
		Cells   int `json:"cells"`
		Workers int `json:"workers,omitempty"`
	}{len(j.jobs), fleet})

	outcome, err := execute(ctx, j.jobs, func(u sweep.JobUpdate) {
		if !u.Cached && u.Err == nil {
			s.hist.cellSim.ObserveDuration(u.Duration)
		}
		if u.Attempts > 1 {
			s.counters.cellRetries.Add(int64(u.Attempts - 1))
		}
		ev := cellEvent{
			Index: u.Index, Point: u.Point.String(), Rep: u.Rep,
			Cached: u.Cached, Attempts: u.Attempts,
			DurationS: u.Duration.Seconds(),
			Worker:    u.Worker,
			Done:      u.Done, Total: u.Total,
		}
		j.mu.Lock()
		j.cellsDone = u.Done
		if u.Cached {
			j.cellsCached++
		}
		if u.Err != nil {
			ev.Error = u.Err.Error()
			j.cellsFailed++
			if len(j.cellErrs) < maxCellErrorDetails {
				j.cellErrs = append(j.cellErrs, CellErrorDetail{
					Index: u.Index, Point: u.Point.String(), Rep: u.Rep,
					Attempts: u.Attempts, Error: u.Err.Error(),
				})
			}
		}
		j.mu.Unlock()
		if u.Err != nil {
			s.counters.cellsFailed.Add(1)
		}
		j.stream.publish("cell", ev)
	})

	s.counters.running.Add(-1)
	execution := time.Since(start)
	s.counters.busyNanos.Add(int64(execution))
	s.hist.execution.ObserveDuration(execution)

	if err != nil {
		if errors.Is(err, errJobCanceled) {
			s.finishCanceled(j, execution)
			return
		}
		finished := j.finish(jobFailed, err.Error())
		_ = finished
		s.counters.failed.Add(1)
		s.drains.record(time.Now())
		s.journal.append(journalRecord{Op: opFailed, ID: j.id, Error: err.Error()})
		s.log.Error("job failed", "job", j.id, "kind", j.kind,
			"execution_s", execution.Seconds(), "error", err.Error())
		j.stream.publish("failed", apiError{Error: err.Error()})
		j.stream.close()
		return
	}

	j.mu.Lock()
	failedCells := j.cellsFailed
	j.mu.Unlock()
	if failedCells > 0 && failedCells == len(j.jobs) {
		// Nothing survived: report the job itself as failed, with the
		// per-cell detail still attached for diagnosis.
		msg := fmt.Sprintf("all %d cells failed; first: %s", failedCells, outcome.Errors[0].Error())
		j.finish(jobFailed, msg)
		s.counters.failed.Add(1)
		s.drains.record(time.Now())
		s.journal.append(journalRecord{Op: opFailed, ID: j.id, Error: msg})
		s.log.Error("job failed", "job", j.id, "kind", j.kind,
			"execution_s", execution.Seconds(), "error", msg)
		j.stream.publish("failed", apiError{Error: msg})
		j.stream.close()
		return
	}

	j.mu.Lock()
	j.state = jobDone
	j.finishedAt = time.Now()
	j.outcome = outcome
	cached := j.cellsCached
	j.mu.Unlock()
	s.counters.done.Add(1)
	s.drains.record(time.Now())
	s.journal.append(journalRecord{Op: opDone, ID: j.id})
	s.log.Info("job done", "job", j.id, "kind", j.kind,
		"execution_s", execution.Seconds(),
		"cells", len(j.jobs), "cells_cached", cached, "cells_failed", failedCells)
	s.counters.cellsCached.Add(int64(cached))
	s.counters.cellsSimulated.Add(int64(len(j.jobs) - cached - failedCells))
	j.stream.publish("done", struct {
		// CellsDone, CellsCached and CellsFailed are the final progress
		// counters; a nonzero CellsFailed marks a partial completion.
		CellsDone   int `json:"cells_done"`
		CellsCached int `json:"cells_cached"`
		CellsFailed int `json:"cells_failed,omitempty"`
	}{len(j.jobs), cached, failedCells})
	j.stream.close()
}

// finishCanceled finalizes a DELETE-canceled job that was unwound
// mid-execution.
func (s *Server) finishCanceled(j *job, execution time.Duration) {
	j.finish(jobCanceled, "")
	s.counters.canceled.Add(1)
	s.drains.record(time.Now())
	s.journal.append(journalRecord{Op: opCanceled, ID: j.id})
	s.log.Info("job canceled", "job", j.id, "kind", j.kind,
		"execution_s", execution.Seconds())
	j.stream.publish("canceled", struct {
		// ID names the canceled job.
		ID string `json:"id"`
	}{j.id})
	j.stream.close()
}

// cancelJob implements DELETE: queued jobs terminate immediately,
// running jobs get their context canceled and unwind between cells,
// terminal jobs answer false (nothing to cancel).
func (s *Server) cancelJob(j *job) (accepted bool) {
	j.mu.Lock()
	switch j.state {
	case jobDone, jobFailed, jobCanceled:
		j.mu.Unlock()
		return false
	case jobRunning:
		j.canceled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errJobCanceled)
		}
		s.log.Info("job cancel requested", "job", j.id)
		return true
	default: // queued
		j.canceled = true
		j.state = jobCanceled
		j.finishedAt = time.Now()
		j.mu.Unlock()
		s.counters.canceled.Add(1)
		s.drains.record(time.Now())
		s.journal.append(journalRecord{Op: opCanceled, ID: j.id})
		s.log.Info("job canceled", "job", j.id, "kind", j.kind, "while", "queued")
		j.stream.publish("canceled", struct {
			// ID names the canceled job.
			ID string `json:"id"`
		}{j.id})
		j.stream.close()
		return true
	}
}

// Close drains the service: no new submissions are accepted (503),
// already-accepted jobs — queued and running — finish, then the
// executors exit and the journal closes. The context bounds the wait.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.journal.close()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// serveTrace renders the lazy trace.jsonl artifact of a run job: the
// job's scenario re-simulated once at the base seed with tracing on
// (packet provenance + state transitions), exported through the sweep
// trace exporters. Sweep jobs do not carry traces — tracing every grid
// cell would dwarf the sweep itself.
func (s *Server) serveTrace(w http.ResponseWriter, j *job) {
	if j.kind != kindRun {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("trace.jsonl is only available for run jobs (job %s is a %s)", j.id, j.kind))
		return
	}
	j.mu.Lock()
	runs, err := j.traced, j.tracedErr
	j.mu.Unlock()
	if runs == nil && err == nil {
		// Simulate outside the lock so status polls never block behind
		// the traced re-run; concurrent first requests may both
		// simulate, but the result is deterministic, so last-write-wins
		// is harmless.
		runs, err = traceRuns(j)
		j.mu.Lock()
		j.traced, j.tracedErr = runs, err
		j.mu.Unlock()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	sweep.WriteTraceJSONL(w, runs) //nolint:errcheck // streaming to a gone client
}

// traceRuns executes the traced repetition behind serveTrace.
func traceRuns(j *job) ([]sweep.TracedRun, error) {
	cfg := j.jobs[0].Config
	sc, err := cfg.Scenario(netsim.WithTrace(trace.Options{Packets: true, States: true}))
	if err != nil {
		return nil, fmt.Errorf("building traced scenario: %w", err)
	}
	res, err := netsim.RunScenario(sc)
	if err != nil {
		return nil, fmt.Errorf("traced run: %w", err)
	}
	return []sweep.TracedRun{{Label: j.jobs[0].Point.String(), Result: res}}, nil
}
