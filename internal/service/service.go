// Package service exposes the sweep engine as a long-lived HTTP/JSON
// simulation service — simulation-as-a-service over the content-keyed
// result cache, so many clients amortize one pool instead of re-running
// sweeps per CLI invocation.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST   /v1/runs                       submit one scenario (seeded repetitions)
//	POST   /v1/sweeps                     submit a sweep.SpecDoc grid
//	GET    /v1/jobs                       list jobs in submission order
//	GET    /v1/jobs/{id}                  job status
//	DELETE /v1/jobs/{id}                  cancel a queued or running job
//	GET    /v1/jobs/{id}/events           SSE progress stream (history replayed)
//	GET    /v1/jobs/{id}/artifacts/{name} results.json | results.csv | report.md | trace.jsonl
//	GET    /healthz                       liveness + queue depth
//	GET    /metrics                       Prometheus text metrics
//	GET    /v1/cluster                    fleet membership + lease-table snapshot
//	POST   /v1/cluster/workers            worker registration
//	POST   /v1/cluster/workers/{id}/heartbeat  worker liveness refresh
//	POST   /v1/cluster/lease              lease a batch of cells to a worker
//	POST   /v1/cluster/results            upload a batch of cell results
//
// Submissions are content-keyed: the job id is a hash over the compiled
// job list, so identical specs — regardless of JSON formatting —
// collapse onto one queued, running or completed job, and the second
// client is answered immediately with the first job's id. Beneath that,
// the shared sweep.Pool dedupes identical in-flight configurations
// across concurrent jobs and serves repeated cells from its cache. The
// job queue is bounded: when full, submissions are rejected with 429
// and a Retry-After header computed from the observed drain rate
// (backpressure instead of unbounded memory). Close drains the service
// gracefully: accepted jobs finish, new submissions get 503.
//
// Cluster mode: the service doubles as a fleet coordinator. Worker
// peers (bcp-serve -worker -coordinator=<url>) register, lease cells,
// and upload content-keyed results; any submitted job is sharded
// across live workers — with work stealing and lease requeue on worker
// loss — and the merged outcome (and its results.csv) is byte-identical
// to single-process execution. With no live workers the routes stay
// registered and jobs run on the local pool as before.
//
// Resilience: with Options.StateDir set, every accepted job is recorded
// in an append-only journal before the submission is acknowledged, and
// a restarted service resubmits the unfinished ones — paired with a
// disk cache, recovery re-serves already-computed cells for free.
// Cells that panic are retried with capped exponential backoff and
// quarantined after Options.Retry.MaxAttempts, so one poisoned cell
// yields a partial result instead of sinking the whole sweep.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"bulktx/internal/cluster"
	"bulktx/internal/netsim"
	"bulktx/internal/report"
	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

// Defaults for zero-valued Options fields.
const (
	// DefaultQueueLimit bounds the queued-jobs backlog.
	DefaultQueueLimit = 64
	// DefaultMaxCells bounds how many simulations one submission may
	// compile to.
	DefaultMaxCells = 10000
	// DefaultMaxJobs bounds how many terminal jobs the store retains
	// before the oldest are evicted.
	DefaultMaxJobs = 1024
	// DefaultRetryAfter is the advertised backoff on 429 responses.
	DefaultRetryAfter = time.Second
	// maxBodyBytes bounds request bodies; specs are small JSON
	// documents.
	maxBodyBytes = 1 << 20
)

// Options configures a Server. The zero value is usable: all cores, a
// fresh in-memory cache, one job executor and the default limits.
type Options struct {
	// Workers is the sweep pool's worker count (<= 0 selects all
	// cores). Cells of one job run on this pool in parallel.
	Workers int
	// Cache memoizes simulation results across jobs; nil selects a
	// fresh in-memory cache (pass a disk cache to persist results
	// across service restarts).
	Cache *sweep.Cache
	// QueueLimit bounds how many jobs may wait behind the executors
	// before submissions are rejected with 429 (<= 0 selects
	// DefaultQueueLimit).
	QueueLimit int
	// JobWorkers is how many jobs execute concurrently (<= 0 selects
	// 1; cells within a job are already parallel).
	JobWorkers int
	// MaxCells rejects submissions whose spec compiles to more than
	// this many simulations (<= 0 selects DefaultMaxCells).
	MaxCells int
	// MaxJobs bounds the job store: once more than this many jobs
	// exist, the oldest done/failed jobs — including their outcomes
	// and event histories — are evicted and their ids answer 404
	// (<= 0 selects DefaultMaxJobs). An evicted spec resubmits as a
	// fresh job; its cells still hit the result cache.
	MaxJobs int
	// RetryAfter is the backoff advertised on 429 responses (<= 0
	// selects DefaultRetryAfter).
	RetryAfter time.Duration
	// Logger receives the service's structured logs: one access-log
	// line per request and one lifecycle line per job state
	// transition. nil discards them.
	Logger *slog.Logger
	// StateDir, when non-empty, enables the crash-safe job journal:
	// accepted jobs are recorded under this directory before the
	// submission is acknowledged, and a restarted service resubmits the
	// unfinished ones. Empty disables journaling (jobs die with the
	// process, the pre-journal behavior).
	StateDir string
	// Retry is the per-cell retry policy handed to the sweep pool. The
	// zero value means one attempt per cell (no retries).
	Retry sweep.RetryPolicy
	// ClusterLeaseTTL is the cluster coordinator's worker liveness
	// window (cluster.DefaultLeaseTTL if zero): a worker silent for
	// longer is expired and its leased cells requeued.
	ClusterLeaseTTL time.Duration
	// ClusterStealAfter is how long a cell may stay leased before an
	// idle worker duplicates it (cluster.DefaultStealAfter if zero).
	ClusterStealAfter time.Duration
	// ClusterLeaseCells caps cells per lease call
	// (cluster.DefaultLeaseCells if zero).
	ClusterLeaseCells int
}

// New builds a Server and starts its job executors. It fails only when
// a configured StateDir cannot be opened or its journal is unreadable.
func New(o Options) (*Server, error) {
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.MaxCells <= 0 {
		o.MaxCells = DefaultMaxCells
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = DefaultMaxJobs
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	cache := o.Cache
	if cache == nil {
		cache = sweep.NewCache()
	}
	log := o.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	s := &Server{
		pool:       &sweep.Pool{Workers: o.Workers, Cache: cache, Retry: o.Retry},
		queueLimit: o.QueueLimit,
		maxCells:   o.MaxCells,
		maxJobs:    o.MaxJobs,
		retryAfter: o.RetryAfter,
		log:        log,
		hist:       newHistograms(),
		jobs:       make(map[string]*job),
	}
	s.cluster = cluster.New(cluster.Options{
		LeaseTTL:   o.ClusterLeaseTTL,
		StealAfter: o.ClusterStealAfter,
		LeaseCells: o.ClusterLeaseCells,
		Pool:       s.pool,
		Log:        log,
	})
	// A full disk degrades the cache to its memory tier instead of
	// failing cells: log once, count every occurrence, keep the result.
	s.pool.OnCacheError = func(_ string, err error) {
		s.counters.cacheWriteErrors.Add(1)
		s.cacheErrOnce.Do(func() {
			s.log.Warn("disk cache write failed; falling back to in-memory results", "error", err)
		})
	}

	var pending []journalRecord
	if o.StateDir != "" {
		jl, recs, err := openJournal(o.StateDir, func(err error) {
			s.counters.journalErrors.Add(1)
			s.journalErrOnce.Do(func() {
				s.log.Warn("job journal append failed; accepted jobs may not survive a crash", "error", err)
			})
		})
		if err != nil {
			return nil, err
		}
		s.journal = jl
		pending = recs
	}
	// Size the queue for the configured limit plus the recovery
	// backlog, so resubmitting every journaled job can never block (or
	// get bounced by) the very startup doing it.
	s.queue = make(chan *job, o.QueueLimit+len(pending))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleJobArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/cluster", s.handleClusterStatus)
	mux.HandleFunc("POST /v1/cluster/workers", s.handleClusterRegister)
	mux.HandleFunc("POST /v1/cluster/workers/{id}/heartbeat", s.handleClusterHeartbeat)
	mux.HandleFunc("POST /v1/cluster/lease", s.handleClusterLease)
	mux.HandleFunc("POST /v1/cluster/results", s.handleClusterResults)
	s.mux = mux
	s.recoverPending(pending)
	for w := 0; w < o.JobWorkers; w++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// apiError is the JSON body of every non-2xx response. Field names the
// offending request field when the failure is a validation error.
type apiError struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
	// Field names the offending spec field, when known.
	Field string `json:"field,omitempty"`
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing left to report to
}

// writeError writes err as an apiError body, extracting the offending
// field name from netsim.FieldError validation failures.
func writeError(w http.ResponseWriter, status int, err error) {
	body := apiError{Error: err.Error()}
	var fe *netsim.FieldError
	if errors.As(err, &fe) {
		body.Field = fe.Field
	}
	writeJSON(w, status, body)
}

// RunRequest is the body of POST /v1/runs: one simulation scenario in
// friendly units, executed as Runs seeded repetitions of a single grid
// point. Omitted fields inherit the paper's scenario exactly like the
// bcp-sim flags; the field names mirror sweep.SpecDoc's singular forms.
type RunRequest struct {
	// Case selects the scenario template: "single-hop" (default) or
	// "multi-hop".
	Case string `json:"case,omitempty"`
	// Model is the evaluation model: "dual" (default), "sensor",
	// "802.11".
	Model string `json:"model,omitempty"`
	// Senders is the CBR sender count (default 15).
	Senders int `json:"senders,omitempty"`
	// Burst is the dual model's alpha-s* threshold in sensor packets
	// (default 100).
	Burst int `json:"burst,omitempty"`
	// Traffic is the arrival process: "cbr" (default), "poisson",
	// "onoff".
	Traffic string `json:"traffic,omitempty"`
	// RateBps and DurationS override the per-sender rate and the
	// simulated run length.
	RateBps   float64 `json:"rate_bps,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	// Runs is the number of seeded repetitions (default 1); Seed is
	// the base seed.
	Runs int   `json:"runs,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Topology, TopologySeed and Clusters select the deployment shape
	// ("grid" default; "uniform", "clustered", "linear").
	Topology     string `json:"topology,omitempty"`
	TopologySeed int64  `json:"topology_seed,omitempty"`
	Clusters     int    `json:"clusters,omitempty"`
	// ChurnRate and ChurnMeanDownS enable random node churn.
	ChurnRate      float64 `json:"churn_rate,omitempty"`
	ChurnMeanDownS float64 `json:"churn_mean_down_s,omitempty"`
	// SensorLoss and WifiLoss inject random frame loss per channel.
	SensorLoss float64 `json:"sensor_loss,omitempty"`
	WifiLoss   float64 `json:"wifi_loss,omitempty"`
	// DeadlineS bounds the job's execution wall-clock in seconds; a job
	// still running when it expires is unwound between cells and
	// reported failed. 0 (the default) means unbounded. The deadline is
	// not part of the job's content key: resubmitting a spec with a
	// different deadline dedupes onto the existing job.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// sweepRequest is the body of POST /v1/sweeps: a sweep.SpecDoc — the
// same document cmd/bcp-sweep -spec reads — plus the service-level
// execution deadline.
type sweepRequest struct {
	sweep.SpecDoc
	// DeadlineS bounds the job's execution wall-clock in seconds
	// (0 = unbounded); see RunRequest.DeadlineS.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// specDoc lowers the singular run request onto the sweep document
// shape, so both submission kinds validate and compile through one
// path.
func (r RunRequest) specDoc() sweep.SpecDoc {
	doc := sweep.SpecDoc{
		Case:           r.Case,
		RateBps:        r.RateBps,
		DurationS:      r.DurationS,
		Runs:           r.Runs,
		Seed:           r.Seed,
		TopologySeed:   r.TopologySeed,
		Clusters:       r.Clusters,
		ChurnMeanDownS: r.ChurnMeanDownS,
		SensorLoss:     r.SensorLoss,
		WifiLoss:       r.WifiLoss,
	}
	if r.Model != "" {
		doc.Models = []string{r.Model}
	}
	if r.Senders != 0 {
		doc.Senders = []int{r.Senders}
	}
	if r.Burst != 0 {
		doc.Bursts = []int{r.Burst}
	}
	if r.Traffic != "" {
		doc.Traffics = []string{r.Traffic}
	}
	if r.Topology != "" {
		doc.Topologies = []string{r.Topology}
	}
	if r.ChurnRate != 0 {
		doc.ChurnRates = []float64{r.ChurnRate}
	}
	return doc
}

// decodeBody decodes the request body into v, rejecting unknown fields
// and oversized bodies.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeBodyLimit(w, r, v, maxBodyBytes)
}

// decodeBodyLimit is decodeBody with an explicit size cap, for routes
// whose legitimate bodies outgrow the spec-sized default (cluster
// result uploads).
func decodeBodyLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing request body: %w", err)
	}
	return nil
}

// handleSubmitRun accepts a single-scenario job.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submit(w, kindRun, req.specDoc(), req.DeadlineS)
}

// handleSubmitSweep accepts a sweep grid in the sweep.SpecDoc shape —
// the same document cmd/bcp-sweep -spec reads.
func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submit(w, kindSweep, req.SpecDoc, req.DeadlineS)
}

// submit compiles the document, content-keys it, and either adopts an
// existing job, enqueues a new one, or rejects with backpressure.
func (s *Server) submit(w http.ResponseWriter, kind string, doc sweep.SpecDoc, deadlineS float64) {
	if deadlineS < 0 {
		writeError(w, http.StatusBadRequest,
			&netsim.FieldError{Field: "deadline_s", Reason: "must be >= 0"})
		return
	}
	spec, err := doc.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, err := spec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("spec compiles to zero simulations"))
		return
	}
	if len(jobs) > s.maxCells {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec compiles to %d simulations, limit %d", len(jobs), s.maxCells))
		return
	}
	rawDoc, err := json.Marshal(doc)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("encoding spec for the journal: %w", err))
		return
	}
	deadline := time.Duration(deadlineS * float64(time.Second))
	j, outcome := s.adopt(kind, jobs, rawDoc, deadline, true)
	switch outcome {
	case submitClosed:
		writeError(w, http.StatusServiceUnavailable, errors.New("service is shutting down"))
	case submitFull:
		s.counters.rejected.Add(1)
		hint := s.retryAfterHint(time.Now())
		w.Header().Set("Retry-After", strconv.Itoa(int((hint+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("job queue full (%d queued); retry in ~%s", s.queueLimit, hint.Round(time.Second)))
	case submitDeduped:
		w.Header().Set(jobIDHeader, j.id)
		st := j.status()
		st.Deduped = true
		writeJSON(w, http.StatusOK, st)
	default:
		w.Header().Set(jobIDHeader, j.id)
		writeJSON(w, http.StatusAccepted, j.status())
	}
}

// handleListJobs reports every job's status in submission order.
func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		list = append(list, j.status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		// Jobs is the status list in submission order.
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: list})
}

// lookup resolves a job id, writing the 404 itself when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j
}

// handleJobStatus reports one job's status.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleCancelJob cancels a queued or running job: queued jobs
// terminate immediately, running ones unwind at the next cell
// boundary. Either way the response is 202 with the job's current
// status — poll or subscribe to observe the terminal "canceled" state.
// Jobs already terminal answer 409.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if !s.cancelJob(j) {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is already %s; nothing to cancel", j.id, j.currentState()))
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobArtifact serves a completed job's exports.
func (s *Server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, outcome := j.state, j.outcome
	j.mu.Unlock()
	switch state {
	case jobFailed, jobCanceled:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s; no artifacts", j.id, state))
		return
	case jobQueued, jobRunning:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; artifacts appear when it completes", j.id, state))
		return
	}
	switch name := r.PathValue("name"); name {
	case "results.json":
		w.Header().Set("Content-Type", "application/json")
		sweep.WriteJSON(w, outcome) //nolint:errcheck // streaming to a gone client
	case "results.csv":
		w.Header().Set("Content-Type", "text/csv")
		sweep.WriteCSV(w, outcome) //nolint:errcheck // streaming to a gone client
	case "report.md":
		w.Header().Set("Content-Type", "text/markdown")
		w.Write(report.SweepMarkdown("bulktx job "+j.id, outcome)) //nolint:errcheck
	case "trace.jsonl":
		s.serveTrace(w, j)
	default:
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown artifact %q (want results.json, results.csv, report.md or trace.jsonl)", name))
	}
}

// handleHealthz is the liveness probe: 200 with queue depths, status
// "draining" once Close has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	status := "ok"
	if closed {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		// Status is "ok", or "draining" during graceful shutdown.
		Status string `json:"status"`
		// JobsQueued and JobsRunning are the live queue depths.
		JobsQueued  int64 `json:"jobs_queued"`
		JobsRunning int64 `json:"jobs_running"`
	}{status, s.counters.queued.Load(), s.counters.running.Load()})
}
