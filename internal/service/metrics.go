package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bulktx/internal/telemetry"
)

// counters are the service's Prometheus-exported counters and gauges.
// All fields are atomically updated; /metrics renders a consistent-
// enough snapshot (Prometheus semantics do not require cross-metric
// atomicity).
type counters struct {
	// submitted counts accepted new jobs; deduped counts submissions
	// answered by an existing job; rejected counts 429 backpressure
	// responses.
	submitted, deduped, rejected atomic.Int64
	// done, failed and canceled count terminal jobs.
	done, failed, canceled atomic.Int64
	// recovered counts journaled jobs resubmitted after a restart.
	recovered atomic.Int64
	// queued and running are live gauges of the job pipeline.
	queued, running atomic.Int64
	// cellsSimulated counts simulations actually executed;
	// cellsCached counts cells served from the cache, an intra-job
	// duplicate, or another job's in-flight execution.
	cellsSimulated, cellsCached atomic.Int64
	// cellsFailed counts cells quarantined after exhausting their
	// retry budget; cellRetries counts the extra execution attempts
	// retried cells consumed.
	cellsFailed, cellRetries atomic.Int64
	// cacheWriteErrors counts disk-cache writes that failed (the cache
	// degrades to its memory tier); journalErrors counts journal
	// appends that failed (jobs keep running, durability degrades).
	cacheWriteErrors, journalErrors atomic.Int64
	// busyNanos accumulates wall-clock time spent executing jobs, the
	// denominator of the cells-per-second gauge.
	busyNanos atomic.Int64
}

// Adaptive Retry-After tuning.
const (
	// drainWindow is how far back the drain-rate estimate looks.
	drainWindow = 5 * time.Minute
	// maxRetryAfter caps the advertised backoff so a stalled service
	// never tells clients to go away for hours.
	maxRetryAfter = 60 * time.Second
)

// drainStats tracks recent terminal job transitions, the basis of the
// adaptive Retry-After hint: how fast the service has actually been
// draining its queue lately.
type drainStats struct {
	mu     sync.Mutex
	stamps []time.Time
}

// record stamps one terminal transition.
func (d *drainStats) record(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stamps = append(d.stamps, t)
	d.trimLocked(t)
}

// trimLocked drops stamps older than the window; d.mu must be held.
func (d *drainStats) trimLocked(now time.Time) {
	cut := now.Add(-drainWindow)
	i := 0
	for i < len(d.stamps) && d.stamps[i].Before(cut) {
		i++
	}
	d.stamps = d.stamps[i:]
}

// rate estimates the recent drain rate in jobs per second; 0 when no
// job finished inside the window (no evidence to extrapolate from).
func (d *drainStats) rate(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trimLocked(now)
	if len(d.stamps) == 0 {
		return 0
	}
	elapsed := now.Sub(d.stamps[0])
	if elapsed < time.Second {
		elapsed = time.Second
	}
	return float64(len(d.stamps)) / elapsed.Seconds()
}

// retryAfterHint computes the 429 Retry-After value: the estimated
// time to drain the current backlog at the recently observed rate,
// clamped between the configured floor and maxRetryAfter. With no
// recent completions to extrapolate from, the floor is advertised.
func (s *Server) retryAfterHint(now time.Time) time.Duration {
	hint := s.retryAfter
	if rate := s.drains.rate(now); rate > 0 {
		backlog := s.counters.queued.Load() + s.counters.running.Load() + 1
		if est := time.Duration(float64(backlog) / rate * float64(time.Second)); est > hint {
			hint = est
		}
	}
	if hint > maxRetryAfter {
		hint = maxRetryAfter
	}
	return hint
}

// Latency bucket layouts, in seconds. Request buckets start sub-ms
// (status polls are in-memory map reads); phase buckets stretch to 10
// minutes (queue waits and sweep executions are as long as the grid);
// cell buckets start at 100us (a quick-scale cell simulates in well
// under a millisecond).
var (
	httpDurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
	jobPhaseBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
		1, 5, 10, 30, 60, 300, 600}
	cellDurationBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025,
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
)

// histograms are the service's latency histogram families — the
// regression-gate source of truth for where time goes, replacing the
// single cells-per-second gauge as the primary performance signal.
type histograms struct {
	// httpDuration is request latency partitioned by route pattern.
	httpDuration *telemetry.HistogramVec
	// queueWait spans job acceptance to execution start; execution
	// spans execution start to the terminal state. Together they
	// attribute a slow job to queueing vs. running.
	queueWait, execution *telemetry.Histogram
	// cellSim is per-cell simulation wall-clock, simulated cells only
	// (cached cells never run, so they would only flatten the
	// distribution).
	cellSim *telemetry.Histogram
}

// newHistograms builds the empty histogram families.
func newHistograms() *histograms {
	return &histograms{
		httpDuration: telemetry.NewHistogramVec("route", httpDurationBuckets),
		queueWait:    telemetry.NewHistogram(jobPhaseBuckets),
		execution:    telemetry.NewHistogram(jobPhaseBuckets),
		cellSim:      telemetry.NewHistogram(cellDurationBuckets),
	}
}

// handleMetrics renders the Prometheus text exposition format. The
// output is pinned by the exposition-lint test
// (TestMetricsExpositionLints), so every family stays well-formed.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c := &s.counters
	emit := func(name, kind, help string, value float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, value)
	}
	telemetry.WriteBuildInfoMetric(w)
	emit("bulktx_jobs_submitted_total", "counter",
		"Jobs accepted and enqueued.", float64(c.submitted.Load()))
	emit("bulktx_jobs_deduped_total", "counter",
		"Submissions answered by an existing job with the same content key.", float64(c.deduped.Load()))
	emit("bulktx_jobs_rejected_total", "counter",
		"Submissions rejected with 429 because the queue was full.", float64(c.rejected.Load()))
	emit("bulktx_jobs_done_total", "counter",
		"Jobs completed successfully.", float64(c.done.Load()))
	emit("bulktx_jobs_failed_total", "counter",
		"Jobs that ended in failure.", float64(c.failed.Load()))
	emit("bulktx_jobs_canceled_total", "counter",
		"Jobs canceled via DELETE before completing.", float64(c.canceled.Load()))
	emit("bulktx_jobs_recovered_total", "counter",
		"Journaled jobs resubmitted after a service restart.", float64(c.recovered.Load()))
	emit("bulktx_jobs_queued", "gauge",
		"Jobs waiting for an executor.", float64(c.queued.Load()))
	emit("bulktx_jobs_running", "gauge",
		"Jobs currently executing.", float64(c.running.Load()))
	emit("bulktx_cells_simulated_total", "counter",
		"Grid cells actually simulated.", float64(c.cellsSimulated.Load()))
	emit("bulktx_cells_cached_total", "counter",
		"Grid cells served from the cache or an in-flight duplicate.", float64(c.cellsCached.Load()))
	emit("bulktx_cells_failed_total", "counter",
		"Grid cells quarantined after exhausting their retry budget.", float64(c.cellsFailed.Load()))
	emit("bulktx_cell_retries_total", "counter",
		"Extra execution attempts consumed by retried cells.", float64(c.cellRetries.Load()))
	emit("bulktx_cache_write_errors_total", "counter",
		"Disk cache writes that failed; results continued in memory only.", float64(c.cacheWriteErrors.Load()))
	emit("bulktx_journal_write_errors_total", "counter",
		"Job journal appends that failed; jobs continued, durability degraded.", float64(c.journalErrors.Load()))
	// The throughput gauge only exists once busy time has accrued:
	// cache-only jobs complete in ~zero wall-clock, and dividing by
	// that would report 0 cells/sec right after the service served
	// thousands of cached cells. Cached volume is already visible in
	// bulktx_cells_cached_total; the latency histograms below are the
	// finer-grained signal either way.
	if ns := c.busyNanos.Load(); ns > 0 {
		perSec := float64(c.cellsSimulated.Load()+c.cellsCached.Load()) / (float64(ns) / 1e9)
		emit("bulktx_cells_per_sec", "gauge",
			"Cells resolved per second of cumulative job-execution wall-clock; absent until at least one job has accrued nonzero execution time.", perSec)
	}
	cc := s.cluster.Counters()
	emit("bulktx_cluster_workers", "gauge",
		"Workers currently inside their liveness window.", float64(s.cluster.LiveWorkers()))
	emit("bulktx_cluster_workers_registered_total", "counter",
		"Workers admitted into the fleet.", float64(cc.Registered))
	emit("bulktx_cluster_workers_expired_total", "counter",
		"Workers expired after a lapsed liveness window.", float64(cc.Expired))
	emit("bulktx_cluster_cells_dispatched_total", "counter",
		"Cell leases handed to workers (steals included).", float64(cc.Dispatched))
	emit("bulktx_cluster_cells_stolen_total", "counter",
		"Leases that took another worker's planned or overdue cell.", float64(cc.Stolen))
	emit("bulktx_cluster_leases_requeued_total", "counter",
		"Leased cells returned to pending after their worker expired.", float64(cc.Requeued))
	emit("bulktx_cluster_results_total", "counter",
		"Cell results accepted from workers.", float64(cc.Results))
	emit("bulktx_cluster_results_duplicate_total", "counter",
		"Uploads for cells already resolved elsewhere (dropped).", float64(cc.Duplicates))
	emit("bulktx_cluster_cells_local_total", "counter",
		"Dispatched cells the coordinator ran on its own pool because no live worker remained.", float64(cc.LocalCells))
	telemetry.WriteHistogramVec(w, "bulktx_cluster_cell_seconds",
		"Per-cell simulation wall-clock as reported by each fleet worker.", s.cluster.CellHist())
	telemetry.WriteHistogramVec(w, "bulktx_http_request_duration_seconds",
		"HTTP request latency by route pattern, SSE streams measured to stream end.", s.hist.httpDuration)
	telemetry.WriteHistogram(w, "bulktx_job_queue_wait_seconds",
		"Wall-clock from job acceptance to execution start.", s.hist.queueWait)
	telemetry.WriteHistogram(w, "bulktx_job_execution_seconds",
		"Wall-clock from execution start to the job's terminal state.", s.hist.execution)
	telemetry.WriteHistogram(w, "bulktx_cell_simulation_seconds",
		"Per-cell simulation wall-clock, simulated cells only (cached cells never run).", s.hist.cellSim)
}
