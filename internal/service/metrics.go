package service

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// counters are the service's Prometheus-exported counters and gauges.
// All fields are atomically updated; /metrics renders a consistent-
// enough snapshot (Prometheus semantics do not require cross-metric
// atomicity).
type counters struct {
	// submitted counts accepted new jobs; deduped counts submissions
	// answered by an existing job; rejected counts 429 backpressure
	// responses.
	submitted, deduped, rejected atomic.Int64
	// done and failed count terminal jobs.
	done, failed atomic.Int64
	// queued and running are live gauges of the job pipeline.
	queued, running atomic.Int64
	// cellsSimulated counts simulations actually executed;
	// cellsCached counts cells served from the cache, an intra-job
	// duplicate, or another job's in-flight execution.
	cellsSimulated, cellsCached atomic.Int64
	// busyNanos accumulates wall-clock time spent executing jobs, the
	// denominator of the cells-per-second gauge.
	busyNanos atomic.Int64
}

// handleMetrics renders the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c := &s.counters
	emit := func(name, kind, help string, value float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, value)
	}
	emit("bulktx_jobs_submitted_total", "counter",
		"Jobs accepted and enqueued.", float64(c.submitted.Load()))
	emit("bulktx_jobs_deduped_total", "counter",
		"Submissions answered by an existing job with the same content key.", float64(c.deduped.Load()))
	emit("bulktx_jobs_rejected_total", "counter",
		"Submissions rejected with 429 because the queue was full.", float64(c.rejected.Load()))
	emit("bulktx_jobs_done_total", "counter",
		"Jobs completed successfully.", float64(c.done.Load()))
	emit("bulktx_jobs_failed_total", "counter",
		"Jobs that ended in failure.", float64(c.failed.Load()))
	emit("bulktx_jobs_queued", "gauge",
		"Jobs waiting for an executor.", float64(c.queued.Load()))
	emit("bulktx_jobs_running", "gauge",
		"Jobs currently executing.", float64(c.running.Load()))
	emit("bulktx_cells_simulated_total", "counter",
		"Grid cells actually simulated.", float64(c.cellsSimulated.Load()))
	emit("bulktx_cells_cached_total", "counter",
		"Grid cells served from the cache or an in-flight duplicate.", float64(c.cellsCached.Load()))
	perSec := 0.0
	if ns := c.busyNanos.Load(); ns > 0 {
		perSec = float64(c.cellsSimulated.Load()+c.cellsCached.Load()) / (float64(ns) / 1e9)
	}
	emit("bulktx_cells_per_sec", "gauge",
		"Cells resolved per second of job-execution time (cumulative).", perSec)
}
