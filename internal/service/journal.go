package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bulktx/internal/faultinject"
)

// Journal operations. A job's journal lifecycle is one "submitted"
// record followed by exactly one terminal record; a "submitted" with
// no terminal is an unfinished job that recovery resubmits.
const (
	// opSubmitted records an accepted job: its content-keyed id, kind,
	// spec document and deadline — everything needed to resubmit it.
	opSubmitted = "submitted"
	// opDone, opFailed and opCanceled are the terminal operations.
	opDone     = "done"
	opFailed   = "failed"
	opCanceled = "canceled"
	// opDropped retires a submitted record without execution — written
	// when a journaled spec no longer compiles (or re-keys) after a
	// schema change, so it cannot replay forever.
	opDropped = "dropped"
)

// journalFile is the journal's name under the state directory.
const journalFile = "journal.jsonl"

// journalRecord is one line of the append-only job journal.
type journalRecord struct {
	// Op is the operation: submitted, done, failed, canceled, dropped.
	Op string `json:"op"`
	// ID is the job's content-keyed identifier.
	ID string `json:"id"`
	// Kind is "run" or "sweep" (submitted records only).
	Kind string `json:"kind,omitempty"`
	// Doc is the submitted spec document (the lowered sweep.SpecDoc
	// JSON), sufficient to recompile the job after a restart.
	Doc json.RawMessage `json:"doc,omitempty"`
	// DeadlineS is the job's execution deadline in seconds (0 = none).
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// Error carries the failure of a failed terminal record.
	Error string `json:"error,omitempty"`
	// At stamps when the record was written.
	At time.Time `json:"at"`
}

// journal is the append-only, fsynced job journal under a state
// directory. Appends never fail the calling job: write errors go to
// onError (the service logs and counts them) and the service keeps
// running — availability over durability, the tradeoff documented in
// docs/OPERATIONS.md.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	onError func(error)
}

// openJournal opens (creating if absent) the journal under dir,
// replays it, compacts it down to the unfinished submissions, and
// returns those submissions in original order — the jobs a restarted
// service must resubmit. A truncated final line (torn write at crash)
// is tolerated and discarded.
func openJournal(dir string, onError func(error)) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: creating state dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	pending, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}

	// Compact: rewrite the journal to hold only the unfinished
	// submissions, atomically, so the file stays proportional to the
	// live job backlog instead of the service's whole history.
	tmp, err := os.CreateTemp(dir, journalFile+".tmp-*")
	if err != nil {
		return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
	}
	for _, rec := range pending {
		line, err := json.Marshal(rec)
		if err == nil {
			_, err = fmt.Fprintf(tmp, "%s\n", line)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	if onError == nil {
		onError = func(error) {}
	}
	return &journal{f: f, path: path, onError: onError}, pending, nil
}

// replayJournal reads the journal and returns the unfinished
// submissions in first-submission order. Records are processed in file
// order, so a resubmission after a terminal record re-adds the job.
func replayJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}
	defer f.Close()

	open := make(map[string]journalRecord)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A torn or corrupt line — most likely the crash the journal
			// exists to survive hit mid-append. Skip it; every complete
			// record still counts.
			continue
		}
		if rec.Op == opSubmitted {
			if _, dup := open[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			open[rec.ID] = rec
			continue
		}
		delete(open, rec.ID)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}
	var pending []journalRecord
	for _, id := range order {
		if rec, ok := open[id]; ok {
			pending = append(pending, rec)
		}
	}
	return pending, nil
}

// append writes one record followed by an fsync, so an acknowledged
// submission survives an immediate power cut. Errors are reported to
// onError, never to the caller: losing durability must not fail jobs.
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	rec.At = time.Now().UTC()
	line, err := json.Marshal(rec)
	if err == nil {
		err = faultinject.Error(faultinject.JournalAppend, rec.ID)
	}
	if err == nil {
		jl.mu.Lock()
		_, err = fmt.Fprintf(jl.f, "%s\n", line)
		if err == nil {
			err = jl.f.Sync()
		}
		jl.mu.Unlock()
	}
	if err != nil {
		jl.onError(fmt.Errorf("service: journal append (%s %s): %w", rec.Op, rec.ID, err))
	}
}

// close releases the journal file.
func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.f.Close() //nolint:errcheck // append already fsyncs; nothing left to flush
}
