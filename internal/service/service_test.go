package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

// sweepBody is a fast 2-axis grid used across the tests: 2 models x 2
// sender counts = 4 cells (one burst, one rep each; the sensor model
// collapses the burst axis anyway).
const sweepBody = `{
	"models": ["sensor", "dual"],
	"senders": [5, 10],
	"bursts": [10],
	"runs": 1,
	"duration_s": 30,
	"rate_bps": 2000
}`

// runBody is a fast single-scenario submission.
const runBody = `{"model": "sensor", "senders": 5, "duration_s": 30, "rate_bps": 2000}`

// setGate installs the executor test gate under the store lock (the
// executors read it the same way).
func setGate(svc *Server, gate func(*job)) {
	svc.mu.Lock()
	svc.testGate = gate
	svc.mu.Unlock()
}

func newTestService(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx) //nolint:errcheck // best-effort teardown
	})
	return svc, ts
}

// postJSON submits body and decodes the JobStatus (or error) response.
func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func submit(t *testing.T, url, body string, wantStatus int) JobStatus {
	t.Helper()
	resp, data := postJSON(t, url, body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d; body %s", url, resp.StatusCode, wantStatus, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad status body %s: %v", data, err)
	}
	return st
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitDone polls the job until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := getBody(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job = %d: %s", resp.StatusCode, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if jobState(st.State).terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobStatus{}
}

// metricValue extracts one metric's value from the /metrics exposition.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, data := getBody(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func TestSubmitPollArtifactHappyPath(t *testing.T) {
	_, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)
	if st.ID == "" || st.Kind != "sweep" {
		t.Fatalf("bad submit status %+v", st)
	}
	done := waitDone(t, ts.URL, st.ID)
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.CellsDone != done.Cells || done.Cells == 0 {
		t.Errorf("cells %d/%d", done.CellsDone, done.Cells)
	}

	// results.csv must be byte-identical to the sweep engine's own
	// export of the same spec (the bcp-sweep CSV path).
	resp, got := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results.csv = %d: %s", resp.StatusCode, got)
	}
	spec, err := sweep.ParseSpecJSON([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&sweep.Pool{Cache: sweep.NewCache()}).RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.WriteCSV(&want, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("results.csv diverges from the sweep engine's export:\n got: %s\nwant: %s", got, want.Bytes())
	}

	resp, data := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.json")
	if resp.StatusCode != http.StatusOK || !json.Valid(data) {
		t.Errorf("results.json = %d, valid JSON %v", resp.StatusCode, json.Valid(data))
	}
	resp, data = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/report.md")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "## Goodput") {
		t.Errorf("report.md = %d: %.80s", resp.StatusCode, data)
	}
	// Sweep jobs carry no trace artifact.
	resp, _ = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/trace.jsonl")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("sweep trace.jsonl = %d, want 404", resp.StatusCode)
	}
	// The job list includes the job.
	resp, data = getBody(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), st.ID) {
		t.Errorf("job list = %d: %s", resp.StatusCode, data)
	}
}

func TestRunJobTraceArtifact(t *testing.T) {
	_, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	if st.Kind != "run" || st.Cells != 1 {
		t.Fatalf("bad run status %+v", st)
	}
	if done := waitDone(t, ts.URL, st.ID); done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	resp, data := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/trace.jsonl")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace.jsonl = %d: %s", resp.StatusCode, data)
	}
	first := data[:bytes.IndexByte(data, '\n')]
	var rec struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(first, &rec); err != nil || rec.Type != "node-energy" {
		t.Errorf("first trace record %s (err %v)", first, err)
	}
}

func TestIdenticalSpecDedupe(t *testing.T) {
	_, ts := newTestService(t, Options{})
	first := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)
	waitDone(t, ts.URL, first.ID)
	simulated := metricValue(t, ts.URL, "bulktx_cells_simulated_total")

	// Same spec, different JSON spelling: answered by the first job.
	respelled := strings.ReplaceAll(strings.ReplaceAll(sweepBody, "\n", " "), "\t", "")
	second := submit(t, ts.URL+"/v1/sweeps", respelled, http.StatusOK)
	if second.ID != first.ID {
		t.Errorf("dedupe returned job %s, want %s", second.ID, first.ID)
	}
	if !second.Deduped {
		t.Error("deduped submission not flagged")
	}
	if v := metricValue(t, ts.URL, "bulktx_jobs_deduped_total"); v != 1 {
		t.Errorf("jobs_deduped_total = %g, want 1", v)
	}
	if v := metricValue(t, ts.URL, "bulktx_cells_simulated_total"); v != simulated {
		t.Errorf("dedupe re-simulated: %g -> %g", simulated, v)
	}
	if v := metricValue(t, ts.URL, "bulktx_jobs_submitted_total"); v != 1 {
		t.Errorf("jobs_submitted_total = %g, want 1", v)
	}

	// A different spec is a different job.
	third := submit(t, ts.URL+"/v1/sweeps",
		strings.Replace(sweepBody, `"runs": 1`, `"seed": 7`, 1), http.StatusAccepted)
	if third.ID == first.ID {
		t.Error("different spec shares the first job's id")
	}
}

func TestMalformedSpecs(t *testing.T) {
	_, ts := newTestService(t, Options{})
	cases := []struct {
		name, path, body, wantField string
	}{
		{"syntax", "/v1/sweeps", `{not json`, ""},
		{"unknown-field", "/v1/sweeps", `{"bogus": 1}`, ""},
		{"bad-model", "/v1/sweeps", `{"models": ["zigbee"]}`, "models"},
		{"bad-case", "/v1/runs", `{"case": "teleport"}`, "case"},
		{"bad-topology", "/v1/runs", `{"topology": "torus"}`, "topologies"},
		{"bad-senders", "/v1/runs", `{"senders": 99}`, "Senders"},
		{"bad-loss", "/v1/runs", `{"sensor_loss": 2.0}`, "SensorLoss"},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
			continue
		}
		var e apiError
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: bad error body %s", tc.name, data)
			continue
		}
		if e.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q (error %q)", tc.name, e.Field, tc.wantField, e.Error)
		}
	}
	// Grids past the cell limit are rejected up front.
	_, ts2 := newTestService(t, Options{MaxCells: 10})
	resp, data := postJSON(t, ts2.URL+"/v1/sweeps", `{"senders": [5,6,7,8,9,10], "runs": 2}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit grid: %d (%s)", resp.StatusCode, data)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	svc, ts := newTestService(t, Options{QueueLimit: 1, JobWorkers: 1})
	entered := make(chan string, 8)
	release := make(chan struct{})
	setGate(svc, func(j *job) {
		entered <- j.id
		<-release
	})

	a := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	select {
	case <-entered: // the executor holds job A; the queue is empty again
	case <-time.After(10 * time.Second):
		t.Fatal("executor never picked job A")
	}
	b := submit(t, ts.URL+"/v1/runs",
		strings.Replace(runBody, `"senders": 5`, `"senders": 6`, 1), http.StatusAccepted)

	// Queue now full: a third distinct spec bounces with Retry-After.
	resp, data := postJSON(t, ts.URL+"/v1/runs",
		strings.Replace(runBody, `"senders": 5`, `"senders": 7`, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue = %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// A duplicate of a queued job still dedupes instead of bouncing.
	dup := submit(t, ts.URL+"/v1/runs", runBody, http.StatusOK)
	if dup.ID != a.ID || !dup.Deduped {
		t.Errorf("duplicate during backpressure: %+v", dup)
	}
	if v := metricValue(t, ts.URL, "bulktx_jobs_rejected_total"); v != 1 {
		t.Errorf("jobs_rejected_total = %g, want 1", v)
	}

	close(release)
	if st := waitDone(t, ts.URL, a.ID); st.State != "done" {
		t.Errorf("job A ended %s", st.State)
	}
	<-entered // job B enters the gate (already released)
	if st := waitDone(t, ts.URL, b.ID); st.State != "done" {
		t.Errorf("job B ended %s", st.State)
	}
}

func TestArtifactBeforeCompletion(t *testing.T) {
	svc, ts := newTestService(t, Options{})
	release := make(chan struct{})
	entered := make(chan string, 1)
	setGate(svc, func(j *job) { entered <- j.id; <-release })
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	<-entered
	resp, data := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/results.csv")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("artifact of running job = %d (%s), want 409", resp.StatusCode, data)
	}
	resp, _ = getBody(t, ts.URL+"/v1/jobs/nosuchjob")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	close(release)
	waitDone(t, ts.URL, st.ID)
}

// sseEvent is one parsed SSE record.
type sseEvent struct {
	id   int
	name string
	data map[string]any
}

// readSSE parses a text/event-stream body until EOF.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// checkEventOrdering asserts the canonical queued -> started -> cell*
// -> done sequence with strictly increasing ids.
func checkEventOrdering(t *testing.T, events []sseEvent, wantCells int) {
	t.Helper()
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.id != i+1 {
			t.Errorf("event %d has id %d", i, ev.id)
		}
	}
	if events[0].name != "queued" || events[1].name != "started" {
		t.Fatalf("stream starts %s, %s; want queued, started", events[0].name, events[1].name)
	}
	cells := 0
	for _, ev := range events[2 : len(events)-1] {
		if ev.name != "cell" {
			t.Errorf("mid-stream event %q, want cell", ev.name)
			continue
		}
		cells++
		if ev.data["done"].(float64) != float64(cells) {
			t.Errorf("cell %d carries done=%v", cells, ev.data["done"])
		}
	}
	if cells != wantCells {
		t.Errorf("cell events = %d, want %d", cells, wantCells)
	}
	if last := events[len(events)-1]; last.name != "done" {
		t.Errorf("terminal event %q, want done", last.name)
	}
}

func TestSSEEventOrdering(t *testing.T) {
	_, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/sweeps", sweepBody, http.StatusAccepted)

	// Live subscription: attach immediately, read to stream end.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Errorf("events content-type %q", resp.Header.Get("Content-Type"))
	}
	live := readSSE(t, resp.Body)
	resp.Body.Close()
	done := waitDone(t, ts.URL, st.ID)
	checkEventOrdering(t, live, done.Cells)

	// Late subscription: the full history replays, identically ordered.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp.Body)
	resp.Body.Close()
	checkEventOrdering(t, replay, done.Cells)
	if len(replay) != len(live) {
		t.Errorf("replay has %d events, live had %d", len(replay), len(live))
	}
}

func TestGracefulDrain(t *testing.T) {
	svc, ts := newTestService(t, Options{JobWorkers: 1})
	a := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	b := submit(t, ts.URL+"/v1/runs",
		strings.Replace(runBody, `"senders": 5`, `"senders": 6`, 1), http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Accepted jobs finished during the drain.
	for _, id := range []string{a.ID, b.ID} {
		if st := waitDone(t, ts.URL, id); st.State != "done" {
			t.Errorf("job %s ended %s after drain", id, st.State)
		}
	}
	// New submissions bounce; health reports draining.
	resp, data := postJSON(t, ts.URL+"/v1/runs",
		strings.Replace(runBody, `"senders": 5`, `"senders": 9`, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit = %d (%s), want 503", resp.StatusCode, data)
	}
	resp, data = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "draining") {
		t.Errorf("healthz after drain = %d: %s", resp.StatusCode, data)
	}
	// Closing again is idempotent.
	if err := svc.Close(ctx); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestHealthzAndMetricsShapes(t *testing.T) {
	_, ts := newTestService(t, Options{})
	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &h); err != nil || h.Status != "ok" {
		t.Errorf("healthz body %s", data)
	}
	for _, name := range []string{
		"bulktx_jobs_submitted_total", "bulktx_jobs_deduped_total",
		"bulktx_jobs_rejected_total", "bulktx_jobs_done_total",
		"bulktx_jobs_failed_total", "bulktx_jobs_queued",
		"bulktx_jobs_running", "bulktx_cells_simulated_total",
		"bulktx_cells_cached_total",
	} {
		metricValue(t, ts.URL, name) // fatal if absent or unparseable
	}
	// The throughput gauge is deliberately absent before any job has
	// accrued execution time: a fresh (or cache-only) service has no
	// meaningful denominator.
	_, data = getBody(t, ts.URL+"/metrics")
	if strings.Contains(string(data), "bulktx_cells_per_sec") {
		t.Error("cells_per_sec exposed with zero busy time")
	}
	// Every histogram family is declared even before traffic.
	for _, name := range []string{
		"bulktx_http_request_duration_seconds",
		"bulktx_job_queue_wait_seconds",
		"bulktx_job_execution_seconds",
		"bulktx_cell_simulation_seconds",
	} {
		if !strings.Contains(string(data), "# TYPE "+name+" histogram") {
			t.Errorf("histogram family %s not declared", name)
		}
	}
	if !strings.Contains(string(data), "bulktx_build_info{version=") {
		t.Error("build info gauge missing")
	}
}

// TestMetricsExpositionLints pins /metrics to the Prometheus text
// format: after real traffic (a completed job, a dedupe, a status
// poll), every emitted line must pass the exposition lint — types
// declared, histogram buckets cumulative and +Inf-terminated, counts
// consistent — and the latency histograms must have recorded.
func TestMetricsExpositionLints(t *testing.T) {
	_, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	waitDone(t, ts.URL, st.ID)
	submit(t, ts.URL+"/v1/runs", runBody, http.StatusOK) // dedupe for counter coverage

	resp, data := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	for _, err := range telemetry.LintExposition(data) {
		t.Errorf("exposition lint: %v", err)
	}
	for _, name := range []string{
		"bulktx_http_request_duration_seconds",
		"bulktx_job_queue_wait_seconds",
		"bulktx_job_execution_seconds",
		"bulktx_cell_simulation_seconds",
	} {
		if !histogramRecorded(string(data), name) {
			t.Errorf("histogram %s has no observations after a completed job", name)
		}
	}
	// With busy time accrued, the throughput gauge reappears.
	if v := metricValue(t, ts.URL, "bulktx_cells_per_sec"); v <= 0 {
		t.Errorf("cells_per_sec = %g after a simulated job", v)
	}
}

// histogramRecorded reports whether any _count series of the family
// is nonzero.
func histogramRecorded(expo, name string) bool {
	for _, line := range strings.Split(expo, "\n") {
		if !strings.HasPrefix(line, name+"_count") {
			continue
		}
		fields := strings.Fields(line)
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v > 0 {
			return true
		}
	}
	return false
}

// TestJobTimingsLifecycle pins the timings object of the job status:
// submitted_at from acceptance, queue-wait and execution spans once
// the job starts and finishes.
func TestJobTimingsLifecycle(t *testing.T) {
	svc, ts := newTestService(t, Options{JobWorkers: 1})
	release := make(chan struct{})
	gate := make(chan struct{})
	setGate(svc, func(*job) { close(gate); <-release })

	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	if st.Timings == nil || st.Timings.SubmittedAt.IsZero() {
		t.Fatalf("accepted status has no submitted_at: %+v", st.Timings)
	}
	if st.Timings.StartedAt != nil || st.Timings.FinishedAt != nil {
		t.Errorf("queued job already has start/finish timings: %+v", st.Timings)
	}
	<-gate // dequeued, held before running
	close(release)
	done := waitDone(t, ts.URL, st.ID)
	ti := done.Timings
	if ti == nil || ti.StartedAt == nil || ti.FinishedAt == nil {
		t.Fatalf("done job missing phase timestamps: %+v", ti)
	}
	if ti.QueueWaitS < 0 || ti.ExecutionS <= 0 {
		t.Errorf("bad spans: queue_wait_s=%g execution_s=%g", ti.QueueWaitS, ti.ExecutionS)
	}
	if got := ti.StartedAt.Sub(ti.SubmittedAt).Seconds(); got < 0 {
		t.Errorf("started %v before submitted %v", ti.StartedAt, ti.SubmittedAt)
	}
	if got := ti.FinishedAt.Sub(*ti.StartedAt).Seconds(); got <= 0 {
		t.Errorf("finished %v not after started %v", ti.FinishedAt, ti.StartedAt)
	}
}

// TestAccessLogAndRequestID pins the structured-logging contract:
// exactly one access-log line per request, carrying the request id —
// propagated when the client sent one, generated (and echoed in the
// response header) when not — and the job id on submissions.
func TestAccessLogAndRequestID(t *testing.T) {
	var buf syncBuffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	svc, err := New(Options{Logger: log})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx) //nolint:errcheck // best-effort teardown
	})

	// A propagated request id survives; the response echoes it.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "test-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-1" {
		t.Errorf("response request id %q, want propagated test-req-1", got)
	}

	// A submission logs its job id; a generated id lands on the response.
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	waitDone(t, ts.URL, st.ID)

	type accessLine struct {
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Route     string  `json:"route"`
		Status    int     `json:"status"`
		RequestID string  `json:"request_id"`
		Job       string  `json:"job"`
		Duration  float64 `json:"duration_ms"`
	}
	var access []accessLine
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec accessLine
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec.Msg == "request" {
			access = append(access, rec)
		}
	}
	var healthz, submits int
	for _, rec := range access {
		if rec.RequestID == "" {
			t.Errorf("access line without request id: %+v", rec)
		}
		switch rec.Route {
		case "GET /healthz":
			healthz++
			if rec.RequestID != "test-req-1" {
				t.Errorf("healthz logged request id %q", rec.RequestID)
			}
		case "POST /v1/runs":
			submits++
			if rec.Job != st.ID {
				t.Errorf("submit access line job %q, want %q", rec.Job, st.ID)
			}
			if rec.Status != http.StatusAccepted {
				t.Errorf("submit access line status %d", rec.Status)
			}
		}
	}
	if healthz != 1 {
		t.Errorf("%d access lines for the healthz request, want exactly 1", healthz)
	}
	if submits != 1 {
		t.Errorf("%d access lines for the submission, want exactly 1", submits)
	}
	// Job lifecycle lines: queued, running, done — one each.
	logged := buf.String()
	for _, msg := range []string{"job queued", "job running", "job done"} {
		if n := strings.Count(logged, `"msg":"`+msg+`"`); n != 1 {
			t.Errorf("%d %q lifecycle lines, want 1", n, msg)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler writes
// from request goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

// Write appends under the lock.
func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

// String snapshots the buffer under the lock.
func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestConcurrentIdenticalSubmissions(t *testing.T) {
	// Many clients racing the same spec: exactly one job exists
	// afterwards, everyone gets its id.
	svc, ts := newTestService(t, Options{})
	const clients = 8
	ids := make(chan string, clients)
	for c := 0; c < clients; c++ {
		go func() {
			resp, data := postJSON(t, ts.URL+"/v1/sweeps", sweepBody)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("racing submit = %d (%s)", resp.StatusCode, data)
				ids <- ""
				return
			}
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				t.Error(err)
				ids <- ""
				return
			}
			ids <- st.ID
		}()
	}
	first := ""
	for c := 0; c < clients; c++ {
		id := <-ids
		if first == "" {
			first = id
		}
		if id != first {
			t.Errorf("client got job %s, another got %s", id, first)
		}
	}
	svc.mu.Lock()
	n := len(svc.jobs)
	svc.mu.Unlock()
	if n != 1 {
		t.Errorf("%d jobs exist, want 1", n)
	}
	waitDone(t, ts.URL, first)
}

func TestFailedSpecIsRetryable(t *testing.T) {
	svc, ts := newTestService(t, Options{})
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	waitDone(t, ts.URL, st.ID)

	// Force the job into the failed state; a resubmission of the same
	// spec must start a fresh job instead of deduping onto the corpse.
	svc.mu.Lock()
	j := svc.jobs[st.ID]
	svc.mu.Unlock()
	j.mu.Lock()
	j.state = jobFailed
	j.errText = "injected failure"
	j.outcome = nil
	j.mu.Unlock()

	again := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)
	if again.ID != st.ID {
		t.Errorf("retry got id %s, want the content key %s", again.ID, st.ID)
	}
	if again.Deduped {
		t.Error("retry of a failed spec was deduped")
	}
	if done := waitDone(t, ts.URL, again.ID); done.State != "done" {
		t.Errorf("retried job ended %s: %s", done.State, done.Error)
	}
	// The listing holds one entry for the id, the fresh job.
	resp, data := getBody(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job list = %d", resp.StatusCode)
	}
	if n := strings.Count(string(data), st.ID); n != 1 {
		t.Errorf("job list mentions the id %d times, want 1", n)
	}
}

func TestJobStoreEviction(t *testing.T) {
	_, ts := newTestService(t, Options{MaxJobs: 2})
	bodies := []string{
		runBody,
		strings.Replace(runBody, `"senders": 5`, `"senders": 6`, 1),
		strings.Replace(runBody, `"senders": 5`, `"senders": 7`, 1),
	}
	a := submit(t, ts.URL+"/v1/runs", bodies[0], http.StatusAccepted)
	b := submit(t, ts.URL+"/v1/runs", bodies[1], http.StatusAccepted)
	waitDone(t, ts.URL, a.ID)
	waitDone(t, ts.URL, b.ID)

	// The third distinct submission evicts the oldest terminal job.
	c := submit(t, ts.URL+"/v1/runs", bodies[2], http.StatusAccepted)
	resp, _ := getBody(t, ts.URL+"/v1/jobs/"+a.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job = %d, want 404", resp.StatusCode)
	}
	resp, _ = getBody(t, ts.URL+"/v1/jobs/"+b.ID)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retained job = %d, want 200", resp.StatusCode)
	}
	if done := waitDone(t, ts.URL, c.ID); done.State != "done" {
		t.Errorf("new job ended %s", done.State)
	}

	// Resubmitting the evicted spec starts fresh — and its cell comes
	// straight from the still-warm result cache.
	re := submit(t, ts.URL+"/v1/runs", bodies[0], http.StatusAccepted)
	if re.Deduped {
		t.Error("evicted spec deduped onto a gone job")
	}
	if done := waitDone(t, ts.URL, re.ID); done.CellsCached != done.Cells {
		t.Errorf("resubmitted evicted spec simulated %d cells instead of hitting the cache",
			done.Cells-done.CellsCached)
	}
}
