package service

import (
	"bufio"
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// subscriberCount reports how many live SSE subscribers a job's stream
// holds.
func subscriberCount(svc *Server, id string) int {
	svc.mu.Lock()
	j := svc.jobs[id]
	svc.mu.Unlock()
	if j == nil {
		return 0
	}
	j.stream.mu.Lock()
	defer j.stream.mu.Unlock()
	return len(j.stream.subs)
}

// TestRudeSSEDisconnectReleasesSubscriber proves that a client that
// drops its event stream mid-job — no clean EOF, just a severed
// connection — costs the service nothing durable: the stream's
// subscriber registration disappears and the handler goroutine exits,
// measured as the process goroutine count returning to its
// pre-subscriber level while the job is still running.
func TestRudeSSEDisconnectReleasesSubscriber(t *testing.T) {
	release := make(chan struct{})
	svc, ts := newTestService(t, Options{Workers: 1})
	setGate(svc, func(*job) { <-release })
	defer close(release)
	st := submit(t, ts.URL+"/v1/runs", runBody, http.StatusAccepted)

	// Let the executor reach the gate so the goroutine count is stable
	// before measuring.
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	const rudeSubs = 4
	for i := 0; i < rudeSubs; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read through the first replayed event so the handler is past
		// its history replay and parked in the live loop.
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("reading first event: %v", err)
			}
			if line == "\n" {
				break
			}
		}
		if n := subscriberCount(svc, st.ID); n != 1 {
			t.Fatalf("subscriber count mid-stream = %d, want 1", n)
		}
		cancel() // rude: sever the request, no clean shutdown
		resp.Body.Close()

		// The handler must notice and deregister promptly.
		deadline := time.Now().Add(10 * time.Second)
		for subscriberCount(svc, st.ID) != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("subscriber %d still registered 10s after the disconnect", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// All handler goroutines must be gone, not parked: the count
	// settles back to (at most) where it started, with slack for
	// unrelated runtime/net goroutines that come and go.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d 10s after %d rude disconnects, want <= %d (leaked SSE handlers)",
				runtime.NumGoroutine(), rudeSubs, before+2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
