package service

import (
	"errors"
	"fmt"
	"net/http"

	"bulktx/internal/cluster"
	"bulktx/internal/sweep"
)

// maxResultsBodyBytes bounds result-upload bodies. Unlike spec
// submissions, a batch of simulation results carries full metric
// payloads per cell, so the limit is wider than maxBodyBytes.
const maxResultsBodyBytes = 8 << 20

// Pool exposes the server's shared sweep pool, so a worker-mode
// bcp-serve process can execute leased cells on the same pool (and
// disk cache) its own HTTP surface uses.
func (s *Server) Pool() *sweep.Pool {
	return s.pool
}

// Cluster exposes the fleet coordinator (always non-nil; with no
// registered workers it simply reports an empty fleet).
func (s *Server) Cluster() *cluster.Coordinator {
	return s.cluster
}

// writeClusterError maps coordinator errors onto API statuses:
// ErrUnknownWorker is 404 (the worker re-registers), anything else is
// a 400.
func writeClusterError(w http.ResponseWriter, err error) {
	if errors.Is(err, cluster.ErrUnknownWorker) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// handleClusterStatus reports the fleet snapshot.
func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Status())
}

// handleClusterRegister admits a worker into the fleet.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Register(req.Name))
}

// handleClusterHeartbeat refreshes a worker's liveness window. The
// body is ignored: the worker id rides in the path.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := s.cluster.Heartbeat(r.PathValue("id")); err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		// Status acknowledges the heartbeat.
		Status string `json:"status"`
	}{"ok"})
}

// handleClusterLease hands the calling worker a batch of cells.
func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker_id is required"))
		return
	}
	resp, err := s.cluster.Lease(req.WorkerID, req.MaxCells)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterResults accepts a worker's executed batch.
func (s *Server) handleClusterResults(w http.ResponseWriter, r *http.Request) {
	var req cluster.CompleteRequest
	if err := decodeBodyLimit(w, r, &req, maxResultsBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker_id is required"))
		return
	}
	resp, err := s.cluster.Complete(req.WorkerID, req.Results)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
