package sim_test

import (
	"testing"

	"bulktx/internal/bench"
)

// The bodies live in internal/bench so cmd/bcp-bench's committed JSON
// baselines measure exactly these workloads.

// BenchmarkScheduleRun measures raw event throughput: schedule + execute.
func BenchmarkScheduleRun(b *testing.B) { bench.ScheduleRun(b) }

// BenchmarkScheduleCancel measures the cancel path (lazy handle retire).
func BenchmarkScheduleCancel(b *testing.B) { bench.ScheduleCancel(b) }

// BenchmarkTimerReset measures the protocol-timer rearm pattern.
func BenchmarkTimerReset(b *testing.B) { bench.TimerReset(b) }
