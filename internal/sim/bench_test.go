package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures raw event throughput: schedule + execute.
func BenchmarkScheduleRun(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkScheduleCancel measures the cancel path (heap removal).
func BenchmarkScheduleCancel(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		s.Cancel(id)
	}
}

// BenchmarkTimerReset measures the protocol-timer rearm pattern.
func BenchmarkTimerReset(b *testing.B) {
	s := NewScheduler(1)
	tm := NewTimer(s, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond)
	}
	tm.Stop()
}
