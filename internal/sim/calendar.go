package sim

// This file implements the scheduler's calendar-queue (time-bucket)
// backend. The 4-ary heap's O(log n) push/pop degrades once the pending
// set reaches tens of thousands of events (100k-node topologies); a
// calendar queue buckets events by timestamp so both operations are
// O(1) amortized when the bucket width tracks the mean event gap.
//
// The backend is exact, not approximate: extraction always yields the
// global (time, seq) minimum, so the executed-event order is identical
// to the heap's, tie-breaking included. The fingerprint and equivalence
// tests enforce this bit-for-bit.
//
// # Invariants
//
//   - width is a positive number of nanoseconds; an event at time at
//     belongs to absolute window at/width and hashes to ring position
//     (at/width) & mask.
//   - cur is the absolute index of the search window. No live event
//     inhabits a window before cur: Schedule rewinds cur when pushing
//     an earlier event, and the scan only advances cur past windows it
//     has verified hold no live current-window entries. Cancelled
//     debris may linger anywhere; scans prune it on contact (and
//     compact() sweeps it wholesale, same policy as the heap).
//   - Entries sharing a ring position but belonging to a later year
//     (at/width > cur) are skipped by the window scan; after a full
//     fruitless lap the scan falls back to a direct minimum search and
//     jumps cur to the winner's window, bounding a pop at O(buckets).
type calendar struct {
	buckets [][]event
	width   int64 // bucket span in virtual nanoseconds, >= 1
	mask    int   // len(buckets) - 1 (bucket count is a power of two)
	cur     int64 // absolute index (at/width) of the search window
	n       int   // entries stored, live + cancelled debris
}

// Calendar sizing constants: bucket counts stay within
// [minCalendarBuckets, maxCalendarBuckets] and rebuilds aim for a load
// factor between growth (n > 2*buckets) and shrink (n < buckets/8).
const (
	minCalendarBuckets = 64
	maxCalendarBuckets = 1 << 20
	// defaultCalendarWidth is the initial bucket span before the first
	// rebuild measures the real event-time distribution: 1 ms suits
	// MAC-timescale workloads and is corrected by the first resize.
	defaultCalendarWidth = int64(1e6)
)

// calPush inserts an entry, rewinding the search window if the entry
// precedes it and growing the ring when the load factor demands.
func (s *Scheduler) calPush(e event) {
	c := s.cal
	abs := int64(e.at) / c.width
	if abs < c.cur {
		c.cur = abs
	}
	c.buckets[int(abs)&c.mask] = append(c.buckets[int(abs)&c.mask], e)
	c.n++
	if c.n > 2*len(c.buckets) && len(c.buckets) < maxCalendarBuckets {
		s.calRebuild(2 * len(c.buckets))
	}
}

// calScanWindow scans one ring bucket for the (at, seq) minimum among
// live entries belonging to absolute window abs, pruning cancelled
// debris of any window on contact. It returns the entry index within
// the bucket, or -1. Pruning swap-removes from the tail, so an already
// chosen best index (always < the scan index) stays valid.
func (s *Scheduler) calScanWindow(abs int64) int {
	c := s.cal
	bkt := c.buckets[int(abs)&c.mask]
	best := -1
	j := 0
	for j < len(bkt) {
		e := bkt[j]
		if s.slots[e.slot].seq != e.seq {
			bkt[j] = bkt[len(bkt)-1]
			bkt = bkt[:len(bkt)-1]
			s.dead--
			c.n--
			continue
		}
		if int64(e.at)/c.width == abs && (best < 0 || e.before(bkt[best])) {
			best = j
		}
		j++
	}
	c.buckets[int(abs)&c.mask] = bkt
	return best
}

// calFind locates the live minimum entry, advancing the search window
// and pruning cancelled debris along the way. It returns the bucket and
// entry index, or ok=false when nothing live remains.
func (s *Scheduler) calFind() (bucket, idx int, ok bool) {
	c := s.cal
	if c.n == 0 {
		return 0, 0, false
	}
	// One lap over the ring starting at the current window: the first
	// window with a live entry holds the global minimum, because every
	// earlier window is empty of live entries (invariant) and every
	// entry in a later ring position of this lap belongs to a window
	// >= its position's.
	for lap := 0; lap <= c.mask; lap++ {
		if j := s.calScanWindow(c.cur); j >= 0 {
			return int(c.cur) & c.mask, j, true
		}
		if c.n == 0 {
			return 0, 0, false
		}
		c.cur++
	}
	// A full lap found nothing: the next event is more than a ring
	// revolution away. Search all buckets directly for the minimum and
	// jump the window to it.
	found := false
	var be event
	for bi := range c.buckets {
		bkt := c.buckets[bi]
		j := 0
		for j < len(bkt) {
			e := bkt[j]
			if s.slots[e.slot].seq != e.seq {
				bkt[j] = bkt[len(bkt)-1]
				bkt = bkt[:len(bkt)-1]
				s.dead--
				c.n--
				continue
			}
			if !found || e.before(be) {
				found, be = true, e
			}
			j++
		}
		c.buckets[bi] = bkt
	}
	if !found {
		return 0, 0, false
	}
	c.cur = int64(be.at) / c.width
	j := s.calScanWindow(c.cur) // guaranteed hit: be lives in this window
	return int(c.cur) & c.mask, j, true
}

// calPop removes and returns the live minimum entry.
func (s *Scheduler) calPop() (event, bool) {
	bi, j, ok := s.calFind()
	if !ok {
		return event{}, false
	}
	c := s.cal
	bkt := c.buckets[bi]
	e := bkt[j]
	bkt[j] = bkt[len(bkt)-1]
	c.buckets[bi] = bkt[:len(bkt)-1]
	c.n--
	if len(c.buckets) > minCalendarBuckets && c.n < len(c.buckets)/8 {
		s.calRebuild(len(c.buckets) / 2)
	}
	return e, true
}

// calPeek returns the timestamp of the live minimum without removing
// it. Like the heap's peek it may prune cancelled debris as a side
// effect; it never perturbs live ordering.
func (s *Scheduler) calPeek() (Time, bool) {
	bi, j, ok := s.calFind()
	if !ok {
		return 0, false
	}
	return s.cal.buckets[bi][j].at, true
}

// calCompact sweeps all cancelled debris out of the buckets — the
// calendar branch of the heap's compact().
func (s *Scheduler) calCompact() {
	c := s.cal
	for bi := range c.buckets {
		bkt := c.buckets[bi]
		j := 0
		for j < len(bkt) {
			e := bkt[j]
			if s.slots[e.slot].seq != e.seq {
				bkt[j] = bkt[len(bkt)-1]
				bkt = bkt[:len(bkt)-1]
				c.n--
				continue
			}
			j++
		}
		c.buckets[bi] = bkt
	}
	s.dead = 0
}

// calRebuild resizes the ring to nb buckets (clamped to the bucket
// bounds), re-deriving the bucket width from the live entries' actual
// time span so the load factor and width track the workload. All
// cancelled debris is dropped in the process. Rebuild triggers depend
// only on deterministic counters, so rebuilds happen at identical
// points in identical runs.
func (s *Scheduler) calRebuild(nb int) {
	c := s.cal
	nb = max(minCalendarBuckets, min(nb, maxCalendarBuckets))
	live := make([]event, 0, c.n)
	for _, bkt := range c.buckets {
		for _, e := range bkt {
			if s.slots[e.slot].seq == e.seq {
				live = append(live, e)
			}
		}
	}
	s.dead = 0
	s.calInit(nb, live)
}

// calInit (re)builds the calendar from a live entry set: width from the
// entries' mean gap (falling back to the previous width, or the
// default, for degenerate spans), the window anchored at the earliest
// entry, then all entries re-inserted.
func (s *Scheduler) calInit(nb int, live []event) {
	prev := defaultCalendarWidth
	if s.cal != nil {
		prev = s.cal.width
	}
	width := prev
	if len(live) > 1 {
		mn, mx := live[0].at, live[0].at
		for _, e := range live[1:] {
			mn = min(mn, e.at)
			mx = max(mx, e.at)
		}
		if span := int64(mx - mn); span > 0 {
			width = max(1, span/int64(len(live)))
		}
	}
	c := &calendar{
		buckets: make([][]event, nb),
		width:   width,
		mask:    nb - 1,
		cur:     int64(s.now) / width,
	}
	for _, e := range live {
		abs := int64(e.at) / width
		if abs < c.cur {
			c.cur = abs
		}
		c.buckets[int(abs)&c.mask] = append(c.buckets[int(abs)&c.mask], e)
	}
	c.n = len(live)
	s.cal = c
}

// migrateToCalendar switches a heap-backed scheduler to the calendar
// backend, carrying the live pending set over and dropping cancelled
// debris. The switch is one-way: large pending sets that later shrink
// keep the calendar (whose ring shrinks with them), avoiding
// back-and-forth thrash around the threshold. Ordering is unaffected —
// both backends extract the exact (time, seq) minimum.
func (s *Scheduler) migrateToCalendar() {
	live := make([]event, 0, s.live)
	for _, e := range s.queue {
		if s.slots[e.slot].seq == e.seq {
			live = append(live, e)
		}
	}
	s.dead = 0
	s.queue = nil
	nb := minCalendarBuckets
	for nb < len(live) && nb < maxCalendarBuckets {
		nb *= 2
	}
	s.calInit(nb, live)
}
