package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	for _, at := range []Time{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		at := at
		if _, err := s.Schedule(at, func() { got = append(got, at) }); err != nil {
			t.Fatalf("Schedule(%v): %v", at, err)
		}
	}
	s.Run()
	want := []Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.Schedule(time.Second, func() { order = append(order, i) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Second, func() {})
	s.Run()
	if _, err := s.Schedule(500*time.Millisecond, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("Schedule in past returned %v, want ErrPastEvent", err)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	id := s.After(time.Second, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(id) {
		t.Error("second Cancel returned true")
	}
	s.Run()
	if ran {
		t.Error("cancelled event still ran")
	}
}

func TestCancelAfterRun(t *testing.T) {
	s := NewScheduler(1)
	id := s.After(0, func() {})
	s.Run()
	if s.Cancel(id) {
		t.Error("Cancel returned true for already-executed event")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	ids := make([]EventID, 5)
	for i := 0; i < 5; i++ {
		i := i
		ids[i] = s.After(time.Duration(i+1)*time.Second, func() { got = append(got, i) })
	}
	if !s.Cancel(ids[2]) {
		t.Fatal("Cancel failed")
	}
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var ran []string
	s.After(time.Second, func() { ran = append(ran, "a") })
	s.After(3*time.Second, func() { ran = append(ran, "b") })
	s.RunUntil(2 * time.Second)
	if len(ran) != 1 || ran[0] != "a" {
		t.Errorf("ran %v, want [a]", ran)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.RunUntil(5 * time.Second)
	if len(ran) != 2 {
		t.Errorf("second RunUntil did not run remaining event: %v", ran)
	}
}

func TestRunUntilEventAtDeadlineRuns(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.After(2*time.Second, func() { ran = true })
	s.RunUntil(2 * time.Second)
	if !ran {
		t.Error("event scheduled exactly at the deadline did not run")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Errorf("ran %d events after Stop, want 2", count)
	}
}

func TestEventScheduledDuringEvent(t *testing.T) {
	s := NewScheduler(1)
	var trace []Time
	s.After(time.Second, func() {
		trace = append(trace, s.Now())
		s.After(time.Second, func() { trace = append(trace, s.Now()) })
	})
	s.Run()
	if len(trace) != 2 || trace[0] != time.Second || trace[1] != 2*time.Second {
		t.Errorf("trace = %v, want [1s 2s]", trace)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Second, func() {})
	s.Run()
	ran := false
	s.After(-time.Hour, func() { ran = true })
	s.Run()
	if !ran {
		t.Error("After with negative delay did not run")
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewScheduler(42), NewScheduler(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestProcessedCount(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Processed != 7 {
		t.Errorf("Processed = %d, want 7", s.Processed)
	}
}

// Property: any set of schedule times is executed in sorted order.
func TestRunOrderProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		s := NewScheduler(7)
		var got []Time
		for _, d := range delaysMs {
			at := Time(d) * time.Millisecond
			if _, err := s.Schedule(at, func() { got = append(got, at) }); err != nil {
				return false
			}
		}
		s.Run()
		if len(got) != len(delaysMs) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset runs exactly the complement.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		s := NewScheduler(1)
		total := int(n%64) + 1
		ran := make([]bool, total)
		ids := make([]EventID, total)
		for i := 0; i < total; i++ {
			i := i
			ids[i] = s.After(time.Duration(i)*time.Millisecond, func() { ran[i] = true })
		}
		rng := rand.New(rand.NewSource(seed))
		cancelled := make(map[int]bool)
		for i := 0; i < total/2; i++ {
			k := rng.Intn(total)
			if !cancelled[k] {
				if !s.Cancel(ids[k]) {
					return false
				}
				cancelled[k] = true
			}
		}
		s.Run()
		for i := 0; i < total; i++ {
			if ran[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Lazy cancellation leaves retired entries buried in the heap until they
// surface; none of that debris may leak into the pending count, the
// processed count, or the clock.
func TestPendingExcludesCancelled(t *testing.T) {
	s := NewScheduler(1)
	ids := make([]EventID, 6)
	for i := 0; i < 6; i++ {
		ids[i] = s.After(time.Duration(i+1)*time.Second, func() {})
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending() = %d, want 6", got)
	}
	s.Cancel(ids[0]) // head of the heap
	s.Cancel(ids[3]) // buried in the middle
	if got := s.Pending(); got != 4 {
		t.Errorf("Pending() after 2 cancels = %d, want 4", got)
	}
	// The cancelled head must not advance the clock or count as work.
	if !s.Step() {
		t.Fatal("Step() found no live event")
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s (cancelled 1s head skipped)", s.Now())
	}
	if s.Processed != 1 {
		t.Errorf("Processed = %d, want 1", s.Processed)
	}
	if got := s.Pending(); got != 3 {
		t.Errorf("Pending() after Step = %d, want 3", got)
	}
	s.Run()
	if s.Processed != 4 {
		t.Errorf("Processed = %d after Run, want 4", s.Processed)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() after Run = %d, want 0", got)
	}
}

// An all-cancelled queue is empty for every observable purpose.
func TestAllCancelledQueueIsEmpty(t *testing.T) {
	s := NewScheduler(1)
	ids := make([]EventID, 5)
	for i := range ids {
		ids[i] = s.After(time.Duration(i+1)*time.Second, func() {})
	}
	for _, id := range ids {
		if !s.Cancel(id) {
			t.Fatal("Cancel failed")
		}
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() = %d, want 0", got)
	}
	if s.Step() {
		t.Error("Step() executed a cancelled event")
	}
	s.RunUntil(10 * time.Second)
	if s.Now() != 10*time.Second {
		t.Errorf("Now() = %v, want 10s", s.Now())
	}
	if s.Processed != 0 {
		t.Errorf("Processed = %d, want 0", s.Processed)
	}
}

// RunUntil must not execute a live event that sits behind cancelled
// debris with a timestamp past the deadline.
func TestRunUntilSkipsCancelledPastDeadline(t *testing.T) {
	s := NewScheduler(1)
	id := s.After(1*time.Second, func() {})
	ran := false
	s.After(5*time.Second, func() { ran = true })
	s.Cancel(id)
	s.RunUntil(2 * time.Second)
	if ran {
		t.Error("RunUntil(2s) executed the 5s event")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
}

// Heavy cancel churn (the protocol-timer pattern) must keep the heap
// compacted rather than accumulating one dead entry per reset.
func TestCancelChurnCompacts(t *testing.T) {
	s := NewScheduler(1)
	tm := NewTimer(s, func() {})
	for i := 0; i < 100000; i++ {
		tm.Reset(time.Millisecond)
	}
	if got := len(s.queue); got > 4*compactMinDead {
		t.Errorf("queue holds %d entries after churn, want <= %d", got, 4*compactMinDead)
	}
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending() = %d, want 1", got)
	}
	tm.Stop()
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() after Stop = %d, want 0", got)
	}
}

func TestTimerFires(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(time.Second)
	if !tm.Armed() {
		t.Error("timer not armed after Reset")
	}
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(time.Second)
	if !tm.Stop() {
		t.Error("Stop returned false for armed timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	s.Run()
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}
}

func TestTimerResetReplaces(t *testing.T) {
	s := NewScheduler(1)
	var at []Time
	tm := NewTimer(s, func() { at = append(at, s.Now()) })
	tm.Reset(time.Second)
	tm.Reset(3 * time.Second)
	s.Run()
	if len(at) != 1 || at[0] != 3*time.Second {
		t.Errorf("timer fired at %v, want [3s]", at)
	}
}

func TestTimerReuseAfterFire(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(time.Second)
	s.Run()
	tm.Reset(time.Second)
	s.Run()
	if fired != 2 {
		t.Errorf("fired %d times across two arms, want 2", fired)
	}
}
