package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestAutoMigrationPreservesOrder drives a QueueAuto scheduler across
// the heap-to-calendar switch mid-run — growing the pending set well
// past CalendarThreshold, then draining it — alongside a QueueHeap twin
// fed the identical script, and requires identical execution logs,
// clocks, and Pending() counts at every step. This is the regression
// guard for the migration itself: crossing the threshold must never
// reorder events, including (time, seq) ties straddling the switch.
func TestAutoMigrationPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	auto := NewSchedulerPolicy(1, QueueAuto)
	heap := NewSchedulerPolicy(1, QueueHeap)
	var gotLog, wantLog []int

	n := CalendarThreshold + CalendarThreshold/2
	autoIDs := make([]EventID, n)
	heapIDs := make([]EventID, n)
	for i := 0; i < n; i++ {
		i := i
		// 200 distinct delays over thousands of events: tie-heavy, and
		// ties planted on both sides of the migration point.
		d := time.Duration(rng.Intn(200)) * time.Millisecond
		autoIDs[i] = auto.After(d, func() { gotLog = append(gotLog, i) })
		heapIDs[i] = heap.After(d, func() { wantLog = append(wantLog, i) })
	}
	if auto.cal == nil {
		t.Fatalf("auto scheduler did not migrate: %d live events > threshold %d",
			auto.Pending(), CalendarThreshold)
	}
	if heap.cal != nil {
		t.Fatal("QueueHeap scheduler migrated to the calendar")
	}
	// Cancel a deterministic slice of handles issued before the
	// migration: their heap entries became calendar entries, and their
	// IDs must still validate.
	for i := 0; i < n; i += 7 {
		g, w := auto.Cancel(autoIDs[i]), heap.Cancel(heapIDs[i])
		if !g || !w {
			t.Fatalf("cancel %d: auto=%v heap=%v, want both true", i, g, w)
		}
	}
	for step := 0; ; step++ {
		if ap, hp := auto.Pending(), heap.Pending(); ap != hp {
			t.Fatalf("step %d: Pending() auto=%d heap=%d", step, ap, hp)
		}
		g, w := auto.Step(), heap.Step()
		if g != w {
			t.Fatalf("step %d: Step() auto=%v heap=%v", step, g, w)
		}
		if !g {
			break
		}
		if auto.Now() != heap.Now() {
			t.Fatalf("step %d: clock auto=%v heap=%v", step, auto.Now(), heap.Now())
		}
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("auto executed %d events, heap %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if gotLog[i] != wantLog[i] {
			t.Fatalf("execution order diverges at %d: auto ran %d, heap ran %d",
				i, gotLog[i], wantLog[i])
		}
	}
	if auto.Processed != heap.Processed {
		t.Fatalf("Processed: auto=%d heap=%d", auto.Processed, heap.Processed)
	}
}

// TestAutoMigrationExactlyAtThreshold pins the switch point: the
// scheduler stays on the heap at exactly CalendarThreshold live events
// and migrates on the next Schedule, with Pending() unperturbed.
func TestAutoMigrationExactlyAtThreshold(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < CalendarThreshold; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	if s.cal != nil {
		t.Fatalf("migrated at %d live events; threshold is exclusive", CalendarThreshold)
	}
	if s.Pending() != CalendarThreshold {
		t.Fatalf("Pending() = %d, want %d", s.Pending(), CalendarThreshold)
	}
	s.After(time.Second, func() {})
	if s.cal == nil {
		t.Fatalf("did not migrate at %d live events", CalendarThreshold+1)
	}
	if s.Pending() != CalendarThreshold+1 {
		t.Fatalf("Pending() = %d after migration, want %d", s.Pending(), CalendarThreshold+1)
	}
}

// TestCalendarCompaction exercises the reset-heavy workload that the
// compaction path exists for, on the calendar backend: timers that are
// cancelled and rescheduled far more often than they fire. The debris
// counter must return to zero via compaction sweeps, Pending() must
// track only live events throughout, and the surviving events must all
// run.
func TestCalendarCompaction(t *testing.T) {
	s := NewSchedulerPolicy(1, QueueCalendar)
	fired := 0
	const keep = 100
	for i := 0; i < keep; i++ {
		s.After(time.Duration(i+1)*time.Second, func() { fired++ })
	}
	// Churn: schedule and immediately cancel thousands of timers.
	for i := 0; i < 5000; i++ {
		id := s.After(time.Duration(i%50)*time.Millisecond, func() { fired += 1000 })
		if !s.Cancel(id) {
			t.Fatalf("churn cancel %d failed", i)
		}
		if s.Pending() != keep {
			t.Fatalf("churn %d: Pending() = %d, want %d", i, s.Pending(), keep)
		}
	}
	if s.dead > compactMinDead && s.dead > s.cal.n/2 {
		t.Fatalf("compaction never triggered: %d dead of %d stored", s.dead, s.cal.n)
	}
	s.Run()
	if fired != keep {
		t.Fatalf("fired = %d, want %d (cancelled timers must not run)", fired, keep)
	}
	if s.Pending() != 0 || s.dead != 0 {
		t.Fatalf("after drain: Pending()=%d dead=%d, want 0/0", s.Pending(), s.dead)
	}
}

// TestCalendarSparseJump covers the fallback search: after a fruitless
// lap (the next event is many ring revolutions away), the scan must
// jump directly to the true minimum rather than walking empty windows.
func TestCalendarSparseJump(t *testing.T) {
	s := NewSchedulerPolicy(1, QueueCalendar)
	var order []int
	// Events separated by enormous gaps relative to any bucket width.
	for i, d := range []time.Duration{
		100 * 365 * 24 * time.Hour,
		time.Nanosecond,
		50 * 365 * 24 * time.Hour,
		time.Millisecond,
	} {
		i := i
		s.After(d, func() { order = append(order, i) })
	}
	s.Run()
	want := []int{1, 3, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full order %v)", i, order[i], want[i], order)
		}
	}
}
