package sim

import (
	"math/rand"
	"testing"
	"time"
)

// refScheduler is a deliberately naive reference implementation: an
// unordered pending list scanned linearly for the (at, seq) minimum,
// with eager cancellation. It defines the semantics the optimized
// value-heap scheduler must reproduce exactly.
type refScheduler struct {
	now       Time
	seq       uint64
	pending   []refEvent
	processed uint64
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

func (r *refScheduler) schedule(d time.Duration, fn func()) uint64 {
	if d < 0 {
		d = 0
	}
	r.seq++
	r.pending = append(r.pending, refEvent{at: r.now + d, seq: r.seq, fn: fn})
	return r.seq
}

func (r *refScheduler) cancel(seq uint64) bool {
	for i, e := range r.pending {
		if e.seq == seq {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return true
		}
	}
	return false
}

func (r *refScheduler) step() bool {
	if len(r.pending) == 0 {
		return false
	}
	m := 0
	for i, e := range r.pending {
		if e.at < r.pending[m].at || (e.at == r.pending[m].at && e.seq < r.pending[m].seq) {
			m = i
		}
	}
	e := r.pending[m]
	r.pending = append(r.pending[:m], r.pending[m+1:]...)
	r.now = e.at
	r.processed++
	e.fn()
	return true
}

// queuePolicies names every backend policy; the equivalence tests run
// their full scripts once per policy so the heap, the calendar, and the
// auto-migrating hybrid are all held to the reference semantics.
var queuePolicies = map[string]QueuePolicy{
	"auto":     QueueAuto,
	"heap":     QueueHeap,
	"calendar": QueueCalendar,
}

// TestSchedulerEquivalence drives the real scheduler and the reference
// with an identical random script of Schedule/Cancel/Reset/Step ops and
// asserts identical execution order, clock, pending count, and processed
// count throughout, for every queue backend policy. Colliding timestamps
// are frequent by construction (50 distinct delays across hundreds of
// events) so the (time, seq) tie-break is exercised hard; the reset op
// (cancel + reschedule, one sequence number on each side) mirrors
// Timer.Reset's churn, the workload that generates cancelled debris.
func TestSchedulerEquivalence(t *testing.T) {
	for name, policy := range queuePolicies {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				s := NewSchedulerPolicy(1, policy)
				ref := &refScheduler{}
				var gotLog, wantLog []int
				// Parallel handle tables: script slot -> per-scheduler ID.
				var simIDs []EventID
				var refIDs []uint64

				ops := 300 + rng.Intn(300)
				for op := 0; op < ops; op++ {
					switch k := rng.Intn(12); {
					case k < 6: // schedule
						l := len(simIDs)
						d := time.Duration(rng.Intn(50)) * time.Millisecond
						simIDs = append(simIDs, s.After(d, func() { gotLog = append(gotLog, l) }))
						refIDs = append(refIDs, ref.schedule(d, func() { wantLog = append(wantLog, l) }))
					case k < 8: // cancel a random script slot (possibly already dead)
						if len(simIDs) == 0 {
							continue
						}
						i := rng.Intn(len(simIDs))
						g := s.Cancel(simIDs[i])
						w := ref.cancel(refIDs[i])
						if g != w {
							t.Fatalf("trial %d op %d: Cancel(slot %d) = %v, reference says %v", trial, op, i, g, w)
						}
					case k < 10: // reset: cancel + reschedule under the same script slot
						if len(simIDs) == 0 {
							continue
						}
						i := rng.Intn(len(simIDs))
						d := time.Duration(rng.Intn(50)) * time.Millisecond
						g := s.Cancel(simIDs[i])
						w := ref.cancel(refIDs[i])
						if g != w {
							t.Fatalf("trial %d op %d: reset-cancel(slot %d) = %v, reference says %v", trial, op, i, g, w)
						}
						if g {
							i := i
							simIDs[i] = s.After(d, func() { gotLog = append(gotLog, i) })
							refIDs[i] = ref.schedule(d, func() { wantLog = append(wantLog, i) })
						}
					default: // step
						g := s.Step()
						w := ref.step()
						if g != w {
							t.Fatalf("trial %d op %d: Step() = %v, reference says %v", trial, op, g, w)
						}
					}
					if s.Pending() != len(ref.pending) {
						t.Fatalf("trial %d op %d: Pending() = %d, reference has %d",
							trial, op, s.Pending(), len(ref.pending))
					}
				}
				for s.Step() {
				}
				for ref.step() {
				}

				if len(gotLog) != len(wantLog) {
					t.Fatalf("trial %d: executed %d events, reference %d", trial, len(gotLog), len(wantLog))
				}
				for i := range wantLog {
					if gotLog[i] != wantLog[i] {
						t.Fatalf("trial %d: execution order diverges at index %d: got %d, want %d",
							trial, i, gotLog[i], wantLog[i])
					}
				}
				if s.Now() != ref.now {
					t.Fatalf("trial %d: clock %v, reference %v", trial, s.Now(), ref.now)
				}
				if s.Processed != ref.processed {
					t.Fatalf("trial %d: Processed %d, reference %d", trial, s.Processed, ref.processed)
				}
			}
		})
	}
}

// TestSchedulerEquivalenceNested repeats the exercise with reentrancy:
// every executed event whose label is divisible by three schedules a
// child (with a label derived deterministically from its own), and
// labels divisible by five cancel the child they scheduled one beat
// earlier. Both sides derive children independently, so any divergence
// in execution order cascades into a visible log mismatch.
func TestSchedulerEquivalenceNested(t *testing.T) {
	for name, policy := range queuePolicies {
		t.Run(name, func(t *testing.T) { testEquivalenceNested(t, policy) })
	}
}

func testEquivalenceNested(t *testing.T, policy QueuePolicy) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		s := NewSchedulerPolicy(1, policy)
		ref := &refScheduler{}
		var gotLog, wantLog []int

		var simFn func(l, depth int) func()
		simFn = func(l, depth int) func() {
			return func() {
				gotLog = append(gotLog, l)
				if depth > 0 && l%3 == 0 {
					d := time.Duration(l%11) * time.Millisecond
					id := s.After(d, simFn(l*5+1, depth-1))
					if l%5 == 0 {
						s.Cancel(id)
					}
				}
			}
		}
		var refFn func(l, depth int) func()
		refFn = func(l, depth int) func() {
			return func() {
				wantLog = append(wantLog, l)
				if depth > 0 && l%3 == 0 {
					d := time.Duration(l%11) * time.Millisecond
					id := ref.schedule(d, refFn(l*5+1, depth-1))
					if l%5 == 0 {
						ref.cancel(id)
					}
				}
			}
		}

		for i := 0; i < 120; i++ {
			l := rng.Intn(1000)
			d := time.Duration(rng.Intn(30)) * time.Millisecond
			s.After(d, simFn(l, 4))
			ref.schedule(d, refFn(l, 4))
		}
		s.Run()
		for ref.step() {
		}

		if len(gotLog) != len(wantLog) {
			t.Fatalf("trial %d: executed %d events, reference %d", trial, len(gotLog), len(wantLog))
		}
		for i := range wantLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("trial %d: execution order diverges at index %d: got %d, want %d",
					trial, i, gotLog[i], wantLog[i])
			}
		}
		if s.Now() != ref.now || s.Processed != ref.processed {
			t.Fatalf("trial %d: clock/processed (%v, %d) vs reference (%v, %d)",
				trial, s.Now(), s.Processed, ref.now, ref.processed)
		}
	}
}
