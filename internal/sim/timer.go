package sim

import "time"

// Timer is a restartable one-shot timer bound to a Scheduler. Protocol
// state machines (BCP wake-up ack timeouts, receiver data timeouts, MAC
// backoffs) use it to express "fire once at t unless reset or stopped".
//
// The zero Timer is not usable; create one with NewTimer.
type Timer struct {
	sched *Scheduler
	fn    func()
	id    EventID
	armed bool
}

// NewTimer returns a timer that invokes fn on expiry.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	return &Timer{sched: sched, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any previous
// schedule.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.armed = true
	t.id = t.sched.After(d, t.fire)
}

// Stop disarms the timer. It reports whether the timer was armed.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.sched.Cancel(t.id)
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

func (t *Timer) fire() {
	t.armed = false
	t.fn()
}
