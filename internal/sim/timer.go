package sim

import "time"

// Timer is a restartable one-shot timer bound to a Scheduler. Protocol
// state machines (BCP wake-up ack timeouts, receiver data timeouts, MAC
// backoffs) use it to express "fire once at t unless reset or stopped".
//
// A Timer is designed to be embedded by value in protocol structs: call
// Init once, then Reset/Stop freely — both are allocation-free, because
// the expiry callback is bound at Init time and cancellation is lazy
// (an O(1) handle retire; see the package comment).
//
// The zero Timer is not usable; initialise one with Init (or NewTimer).
type Timer struct {
	sched  *Scheduler
	fireFn func() // t.fire bound once so Reset never allocates
	fn     func()
	id     EventID
	armed  bool
}

// Init binds the timer to a scheduler and expiry callback. It must be
// called exactly once, before any Reset.
func (t *Timer) Init(sched *Scheduler, fn func()) {
	t.sched = sched
	t.fn = fn
	t.fireFn = t.fire
}

// NewTimer returns a heap-allocated timer that invokes fn on expiry.
// Prefer embedding a Timer by value and calling Init.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	t := &Timer{}
	t.Init(sched, fn)
	return t
}

// Reset (re)arms the timer to fire d from now, cancelling any previous
// schedule.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.armed = true
	t.id = t.sched.After(d, t.fireFn)
}

// Stop disarms the timer. It reports whether the timer was armed.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.sched.Cancel(t.id)
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

func (t *Timer) fire() {
	t.armed = false
	t.fn()
}
