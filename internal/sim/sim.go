// Package sim implements the discrete-event simulation engine that
// underlies every experiment in this repository.
//
// The engine is deliberately small: a virtual clock, a priority queue of
// timestamped events and a deterministic random source. Determinism is a
// hard requirement — the paper reports averages over 20 seeded runs with
// confidence intervals, so a given seed must always produce the same
// trajectory. Ties between events scheduled for the same instant are
// broken by scheduling order (a monotone sequence number).
//
// # Design
//
// The hot path is engineered to be allocation-free:
//
//   - Events live in a value-typed 4-ary heap ordered by (time, seq).
//     Value entries avoid the per-event pointer allocation of a
//     []*event heap, and the 4-ary layout halves the tree depth,
//     trading a few extra comparisons per level for far fewer
//     cache-missing swaps.
//   - Callbacks live in a free-list-backed slot table. An EventID is a
//     handle packing the slot index and a per-slot generation counter,
//     so Cancel validates in O(1) without a map.
//   - Cancellation is lazy: Cancel only retires the slot (bumping its
//     generation); the heap entry stays behind and is discarded when it
//     surfaces at the root. A stale entry is recognised because the
//     slot's current sequence number no longer matches — the 64-bit
//     sequence never wraps, so pop-time liveness checks are exact and
//     the executed-event order is identical to eager removal.
//   - When more than half the queue is cancelled debris, the queue is
//     compacted in place (O(n) filter + re-heapify, or a bucket sweep
//     on the calendar backend), bounding memory for workloads that
//     cancel almost everything they schedule, such as protocol timers
//     that are reset on every frame.
//
// # Queue backends
//
// Two pending-set backends sit behind the same Schedule/After/Cancel
// API: the 4-ary heap described above, and a calendar queue
// (calendar.go) whose push/pop are O(1) amortized on large pending
// sets. Under the default QueueAuto policy a scheduler starts on the
// heap and migrates one-way to the calendar when the live pending set
// exceeds CalendarThreshold; QueueHeap and QueueCalendar pin a backend
// explicitly. Both backends extract the exact (time, seq) minimum, so
// the executed-event order — and therefore every fixed-seed result —
// is identical whichever backend is active, including across a
// mid-run migration. The equivalence and fingerprint tests pin this.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured as an offset from the start of the
// simulation. It reuses time.Duration so that arithmetic and formatting
// come for free.
type Time = time.Duration

// EventID is a handle to a scheduled event, usable with Cancel. It packs
// a slot-table index (low 32 bits, offset by one) and the slot's
// generation at issue time (high 32 bits). The zero EventID is never
// issued. A handle stays valid until its event runs or is cancelled;
// after that, Cancel on it reports false. (A stale handle could only
// alias a later event after 2^32 reuses of one slot — unreachable in
// any simulation this engine hosts.)
type EventID uint64

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// event is one value-typed heap entry. The callback is not stored here —
// heap swaps move 24 bytes, and the entry stays valid even after its
// slot has been retired (lazy cancellation).
type event struct {
	at   Time
	seq  uint64
	slot uint32
}

// eventSlot holds the callback and liveness state for one handle.
type eventSlot struct {
	fn  func()
	seq uint64 // sequence of the occupying event; 0 when free
	gen uint32 // bumped on every retire; validates EventIDs
}

// before reports whether a runs before b in the deterministic
// (time, seq) order.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// compactMinDead is the minimum amount of cancelled debris in the queue
// before compaction is considered; below it the O(n) sweep costs more
// than it saves.
const compactMinDead = 64

// QueuePolicy selects the pending-set backend for a Scheduler.
type QueuePolicy int

// Queue backend policies. QueueAuto is the zero value and the default:
// it starts on the heap and migrates to the calendar queue once the
// live pending set exceeds CalendarThreshold.
const (
	// QueueAuto starts on the 4-ary heap and switches one-way to the
	// calendar queue above CalendarThreshold live events.
	QueueAuto QueuePolicy = iota
	// QueueHeap pins the 4-ary heap backend.
	QueueHeap
	// QueueCalendar pins the calendar-queue backend from construction.
	QueueCalendar
)

// CalendarThreshold is the live pending-set size above which a
// QueueAuto scheduler migrates from the 4-ary heap to the calendar
// queue. Heap push/pop is O(log n); by a few thousand pending events
// the calendar's O(1) amortized operations win despite its bucket
// bookkeeping. The migration preserves event order exactly, so the
// threshold only affects speed, never results.
const CalendarThreshold = 4096

// Scheduler owns the virtual clock and the pending event set.
// It is not safe for concurrent use; simulations are single-goroutine by
// design (determinism).
type Scheduler struct {
	now     Time
	queue   []event     // 4-ary min-heap on (at, seq); unused once cal != nil
	cal     *calendar   // calendar backend; nil while the heap is active
	policy  QueuePolicy // backend selection, fixed at construction
	slots   []eventSlot // handle table
	free    []uint32    // retired slot indices, reused LIFO
	live    int         // scheduled and not yet run or cancelled
	dead    int         // cancelled entries still buried in queue
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// benchmarks and run diagnostics. Cancelled events never count.
	Processed uint64
}

// NewScheduler returns a scheduler starting at virtual time zero with a
// deterministic random source derived from seed, using the QueueAuto
// backend policy.
func NewScheduler(seed int64) *Scheduler {
	return NewSchedulerPolicy(seed, QueueAuto)
}

// NewSchedulerPolicy is NewScheduler with an explicit queue backend
// policy. All policies produce identical event orderings (and therefore
// identical fixed-seed results); the policy only selects the data
// structure holding the pending set.
func NewSchedulerPolicy(seed int64, policy QueuePolicy) *Scheduler {
	s := &Scheduler{rng: rand.New(rand.NewSource(seed)), policy: policy}
	if policy == QueueCalendar {
		s.calInit(minCalendarBuckets, nil)
	}
	return s
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Schedule registers fn to run at virtual time at. It returns an EventID
// usable with Cancel, or an error if at precedes the current time.
func (s *Scheduler) Schedule(at Time, fn func()) (EventID, error) {
	if at < s.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, s.now)
	}
	s.nextSeq++
	seq := s.nextSeq
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, eventSlot{})
		idx = uint32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.fn = fn
	sl.seq = seq
	e := event{at: at, seq: seq, slot: idx}
	if s.cal != nil {
		s.calPush(e)
	} else {
		s.push(e)
	}
	s.live++
	if s.cal == nil && s.policy == QueueAuto && s.live > CalendarThreshold {
		s.migrateToCalendar()
	}
	return EventID(uint64(sl.gen)<<32 | uint64(idx+1)), nil
}

// After schedules fn to run d from now. Negative d is clamped to now, so
// protocol code can express "immediately" with zero.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	id, err := s.Schedule(s.now+d, fn)
	if err != nil {
		// Unreachable: s.now+d >= s.now for d >= 0. Guard anyway.
		return 0
	}
	return id
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already ran, was cancelled, or never existed).
// The heap entry is retired lazily: it is skipped when it reaches the
// queue head, so Cancel itself is O(1).
func (s *Scheduler) Cancel(id EventID) bool {
	idx := uint32(id & 0xffffffff)
	if idx == 0 || int(idx) > len(s.slots) {
		return false
	}
	sl := &s.slots[idx-1]
	if sl.seq == 0 || sl.gen != uint32(id>>32) {
		return false
	}
	s.retire(idx - 1)
	s.live--
	s.dead++
	if s.dead >= compactMinDead && s.dead > s.queueLen()/2 {
		s.compact()
	}
	return true
}

// queueLen returns the number of entries (live + cancelled debris)
// stored in whichever backend is active, for the compaction trigger.
func (s *Scheduler) queueLen() int {
	if s.cal != nil {
		return s.cal.n
	}
	return len(s.queue)
}

// retire frees a slot: the callback is released, the occupying sequence
// cleared (so buried heap entries stop matching) and the generation
// bumped (so outstanding EventIDs stop matching).
func (s *Scheduler) retire(idx uint32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.seq = 0
	sl.gen++
	s.free = append(s.free, idx)
}

// Pending returns the number of events waiting to run. Cancelled events
// are never counted, even while their queue entries await lazy discard,
// and the count is backend-independent: it is unaffected by which queue
// backend is active, by a QueueAuto migration (which Schedule may
// trigger with Pending() at CalendarThreshold+1), and by compaction.
func (s *Scheduler) Pending() int { return s.live }

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if s.cal != nil {
		e, ok := s.calPop()
		if !ok {
			return false
		}
		fn := s.slots[e.slot].fn
		s.retire(e.slot)
		s.live--
		s.now = e.at
		s.Processed++
		fn()
		return true
	}
	for len(s.queue) > 0 {
		e := s.queue[0]
		live := s.slots[e.slot].seq == e.seq
		fn := s.slots[e.slot].fn
		s.pop()
		if !live {
			s.dead--
			continue
		}
		s.retire(e.slot)
		s.live--
		s.now = e.at
		s.Processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events pending, and advances the clock to deadline if the simulation
// did not already pass it. It stops early if Stop is called.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		at, ok := s.peek()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// peek returns the timestamp of the earliest live event, discarding any
// cancelled debris that has surfaced at the heap root (or that the
// calendar scan touches along the way).
func (s *Scheduler) peek() (Time, bool) {
	if s.cal != nil {
		return s.calPeek()
	}
	for len(s.queue) > 0 {
		e := s.queue[0]
		if s.slots[e.slot].seq == e.seq {
			return e.at, true
		}
		s.pop()
		s.dead--
	}
	return 0, false
}

// 4-ary heap primitives. Children of i sit at 4i+1..4i+4.

func (s *Scheduler) push(e event) {
	s.queue = append(s.queue, e)
	i := len(s.queue) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(s.queue[p]) {
			break
		}
		s.queue[i] = s.queue[p]
		i = p
	}
	s.queue[i] = e
}

func (s *Scheduler) pop() {
	n := len(s.queue) - 1
	last := s.queue[n]
	s.queue = s.queue[:n]
	if n > 0 {
		s.siftDown(0, last)
	}
}

// siftDown places e at index i and restores the heap below it.
func (s *Scheduler) siftDown(i int, e event) {
	q := s.queue
	n := len(q)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := min(c+4, n)
		for j := c + 1; j < end; j++ {
			if q[j].before(q[m]) {
				m = j
			}
		}
		if !q[m].before(e) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = e
}

// compact filters cancelled entries out of the active backend: a bucket
// sweep on the calendar, or an in-place filter + re-heapify on the
// heap. Sift-downs only reorder by (at, seq) comparisons, so the
// surviving execution order is unchanged either way.
func (s *Scheduler) compact() {
	if s.cal != nil {
		s.calCompact()
		return
	}
	kept := s.queue[:0]
	for _, e := range s.queue {
		if s.slots[e.slot].seq == e.seq {
			kept = append(kept, e)
		}
	}
	s.queue = kept
	s.dead = 0
	if len(kept) < 2 {
		return
	}
	for i := (len(kept) - 2) / 4; i >= 0; i-- {
		s.siftDown(i, kept[i])
	}
}
