// Package sim implements the discrete-event simulation engine that
// underlies every experiment in this repository.
//
// The engine is deliberately small: a virtual clock, a binary heap of
// timestamped events and a deterministic random source. Determinism is a
// hard requirement — the paper reports averages over 20 seeded runs with
// confidence intervals, so a given seed must always produce the same
// trajectory. Ties between events scheduled for the same instant are
// broken by scheduling order (a monotone sequence number).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured as an offset from the start of the
// simulation. It reuses time.Duration so that arithmetic and formatting
// come for free.
type Time = time.Duration

// EventID identifies a scheduled event so that it can be cancelled.
// The zero EventID is never issued.
type EventID uint64

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// event is a single heap entry.
type event struct {
	at    Time
	seq   uint64
	index int // heap index, maintained by heap.Interface
	fn    func()
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the pending event set.
// It is not safe for concurrent use; simulations are single-goroutine by
// design (determinism).
type Scheduler struct {
	now     Time
	queue   eventQueue
	pending map[EventID]*event
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// benchmarks and run diagnostics.
	Processed uint64
}

// NewScheduler returns a scheduler starting at virtual time zero with a
// deterministic random source derived from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		pending: make(map[EventID]*event),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Schedule registers fn to run at virtual time at. It returns an EventID
// usable with Cancel, or an error if at precedes the current time.
func (s *Scheduler) Schedule(at Time, fn func()) (EventID, error) {
	if at < s.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, s.now)
	}
	s.nextSeq++
	ev := &event{at: at, seq: s.nextSeq, fn: fn}
	heap.Push(&s.queue, ev)
	id := EventID(s.nextSeq)
	s.pending[id] = ev
	return id, nil
}

// After schedules fn to run d from now. Negative d is clamped to now, so
// protocol code can express "immediately" with zero.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	id, err := s.Schedule(s.now+d, fn)
	if err != nil {
		// Unreachable: s.now+d >= s.now for d >= 0. Guard anyway.
		return 0
	}
	return id
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already ran, was cancelled, or never existed).
func (s *Scheduler) Cancel(id EventID) bool {
	ev, ok := s.pending[id]
	if !ok {
		return false
	}
	delete(s.pending, id)
	if ev.index >= 0 {
		heap.Remove(&s.queue, ev.index)
	}
	return true
}

// Pending returns the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.pending) }

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	popped := heap.Pop(&s.queue)
	ev, ok := popped.(*event)
	if !ok {
		return false
	}
	delete(s.pending, EventID(ev.seq))
	s.now = ev.at
	s.Processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events pending, and advances the clock to deadline if the simulation
// did not already pass it. It stops early if Stop is called.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 || s.queue[0].at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }
