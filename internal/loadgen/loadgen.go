// Package loadgen drives a live bcp-serve the way real clients would:
// composable, seed-deterministic sequences of randomized client
// behaviors — mixed single runs, overlapping sweep grids that exercise
// the content-keyed and in-flight dedupe layers, SSE subscribers that
// connect late or disconnect rudely mid-stream, job cancellations
// mid-sweep, and 429 storms against the bounded queue that honor (and
// record) the adaptive Retry-After hint.
//
// The generator is deterministic by construction: BuildSchedule lowers
// (seed, profile) into an explicit ordered op list before a single
// request is sent, so two invocations with the same seed issue the
// identical request schedule, and the report's Counters section —
// requests, dedupe hits, 429 rejections, SSE replays — matches across
// runs against the same server. Wall-clock observations (latency
// percentiles, cells/sec, the observed Retry-After) are reported
// separately in the Observed and Routes sections and are naturally
// machine-dependent.
//
// The deterministic-backpressure trick: the storm first submits
// Profile.JobWorkers "plug" sweeps and waits (via SSE) until every
// executor has started one, then fills the queue with exactly
// Profile.QueueLimit submissions and sends Profile.StormExtras more —
// which must all bounce with 429 because nothing can drain while the
// plugs hold every executor. Everything is then canceled (fills first,
// while they are still safely queued), the advertised Retry-After is
// honored, and a probe submission verifies the queue reopened. This
// requires the target server to run with matching -queue and
// -job-workers values; see docs/OPERATIONS.md.
//
// Results land in BENCH_SERVE.json (see Report) with a regression gate
// shared with cmd/bcp-bench via internal/bench: structural counters
// must match the committed baseline exactly, and the gated throughput
// metrics may not regress beyond -max-regress.
package loadgen

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// Profile scales the generated schedule. The zero value is invalid;
// start from ShortProfile or SoakProfile and override fields.
type Profile struct {
	// Name labels the profile in the report ("short", "soak").
	Name string `json:"name"`
	// Singles is the number of single-run submissions in the mixed
	// phase, each with randomized model/senders and a unique seed.
	Singles int `json:"singles"`
	// SweepPairs is the number of overlapping sweep-grid pairs in the
	// mixed phase: each pair shares grid cells, exercising the pool's
	// cache and in-flight dedupe.
	SweepPairs int `json:"sweep_pairs"`
	// Resubmits is how many duplicate submissions each pair's first
	// grid receives, exercising content-keyed job dedupe.
	Resubmits int `json:"resubmits"`
	// RudeSubs is the number of SSE subscribers that attach to the
	// running cancel-target job and disconnect rudely after one event.
	RudeSubs int `json:"rude_subs"`
	// LateReplays is the number of post-completion SSE connections that
	// must replay the full event history of an already-finished job.
	LateReplays int `json:"late_replays"`
	// StormExtras is the number of storm submissions past the queue
	// limit; every one must be rejected with 429.
	StormExtras int `json:"storm_extras"`
	// QueueLimit must equal the target server's -queue flag: the storm
	// fills exactly this many queue slots before expecting 429s, and
	// the mixed phase keeps at most this many submissions outstanding.
	QueueLimit int `json:"queue_limit"`
	// JobWorkers must equal the target server's -job-workers flag: the
	// storm submits this many plug sweeps to occupy every executor.
	JobWorkers int `json:"job_workers"`
	// RunDurationS is the simulated duration of mixed-phase cells.
	RunDurationS float64 `json:"run_duration_s"`
	// PlugRuns is the seeded repetitions per storm-plug grid; each plug
	// compiles to 2*PlugRuns cells, sized so a plug cannot finish
	// before the storm completes even when an earlier invocation
	// against the same server already cached some of its cells. The
	// sizing guarantees two consecutive invocations (the determinism
	// check); after many repeats the cache eventually swallows the
	// plugs, so run the -compare gate against a freshly started server
	// (scripts/loadgen-smoke.sh does).
	PlugRuns int `json:"plug_runs"`
	// PlugDurationS is the simulated duration of plug and cancel-target
	// cells — the wall-clock knob that keeps executors busy.
	PlugDurationS float64 `json:"plug_duration_s"`
	// RetryAfterCapS caps the honored post-storm Retry-After sleep, so
	// a short CI profile cannot be stalled by a large advertised hint.
	RetryAfterCapS float64 `json:"retry_after_cap_s"`
}

// ShortProfile is the CI profile: a few seconds of load, small enough
// to gate every merge. The server shape it assumes is -queue 4
// -job-workers 2.
func ShortProfile() Profile {
	return Profile{
		Name:           "short",
		Singles:        4,
		SweepPairs:     1,
		Resubmits:      3,
		RudeSubs:       2,
		LateReplays:    3,
		StormExtras:    5,
		QueueLimit:     4,
		JobWorkers:     2,
		RunDurationS:   30,
		PlugRuns:       10,
		PlugDurationS:  480,
		RetryAfterCapS: 2,
	}
}

// SoakProfile is the longer workflow_dispatch profile: the same
// behaviors at several times the volume, for catching regressions that
// only show under sustained traffic.
func SoakProfile() Profile {
	return Profile{
		Name:           "soak",
		Singles:        24,
		SweepPairs:     4,
		Resubmits:      8,
		RudeSubs:       6,
		LateReplays:    12,
		StormExtras:    20,
		QueueLimit:     4,
		JobWorkers:     2,
		RunDurationS:   60,
		PlugRuns:       16,
		PlugDurationS:  480,
		RetryAfterCapS: 5,
	}
}

// ProfileByName resolves a profile flag value ("short", "soak").
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "short":
		return ShortProfile(), nil
	case "soak":
		return SoakProfile(), nil
	default:
		return Profile{}, fmt.Errorf("unknown profile %q (want short or soak)", name)
	}
}

// Validate rejects profiles that cannot produce a deterministic
// schedule.
func (p Profile) Validate() error {
	switch {
	case p.Singles < 0 || p.SweepPairs < 0 || p.Resubmits < 0 ||
		p.RudeSubs < 0 || p.LateReplays < 0 || p.StormExtras < 0:
		return fmt.Errorf("loadgen: profile counts must be >= 0")
	case p.Singles+p.SweepPairs == 0:
		return fmt.Errorf("loadgen: profile needs at least one single or sweep pair")
	case p.QueueLimit < 2:
		return fmt.Errorf("loadgen: queue_limit %d: must be >= 2 (a sweep pair needs two slots)", p.QueueLimit)
	case p.JobWorkers < 1:
		return fmt.Errorf("loadgen: job_workers %d: must be >= 1", p.JobWorkers)
	case p.RunDurationS <= 0 || p.PlugDurationS <= 0:
		return fmt.Errorf("loadgen: durations must be > 0")
	case p.PlugRuns < 2:
		return fmt.Errorf("loadgen: plug_runs %d: must be >= 2 (plugs must outlast the storm)", p.PlugRuns)
	case p.RetryAfterCapS < 0:
		return fmt.Errorf("loadgen: retry_after_cap_s must be >= 0")
	}
	return nil
}

// Options configures one load-generation run.
type Options struct {
	// BaseURL is the target bcp-serve address, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Seed drives every randomized choice; the same seed yields the
	// identical request schedule.
	Seed int64
	// Profile scales the schedule; see ShortProfile and SoakProfile.
	Profile Profile
	// Client issues the HTTP requests; nil selects a fresh client with
	// no global timeout (SSE awaits are bounded by WaitTimeout
	// instead). Tests inject a client whose transport serves an
	// in-process handler.
	Client *http.Client
	// Log receives progress lines; nil discards them.
	Log *slog.Logger
	// WaitTimeout bounds each SSE wait (job completion, started
	// events); zero selects 2 minutes. A hit means the server shape
	// does not match the profile (see Profile.QueueLimit) and fails
	// the run.
	WaitTimeout time.Duration
	// Sleep performs the honored Retry-After wait; nil selects
	// time.Sleep. Tests stub it to keep the suite fast.
	Sleep func(time.Duration)
}
