package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bulktx/internal/service"
	"bulktx/internal/telemetry"
)

// maxErrorDetails caps the report's error-detail list; the counters
// keep the uncapped totals.
const maxErrorDetails = 20

// requestTimeout bounds every non-SSE request.
const requestTimeout = 30 * time.Second

// runner executes one schedule against one server.
type runner struct {
	o     Options
	ops   []Op
	rec   *recorder
	c     Counters
	obs   Observed
	errs  []string
	ids   []string // job id per submission index ("" until accepted)
	cells []int    // compiled cell count per submission index
	sleep func(time.Duration)
}

// Run builds the (seed, profile) schedule and drives it against
// Options.BaseURL, returning the filled report. Behavior failures —
// wrong status codes, broken SSE replays, missed dedupes — are
// recorded in the report's counters and error details rather than
// aborting the run; only context cancellation and schedule
// construction fail it outright.
func Run(ctx context.Context, o Options) (*Report, error) {
	ops, err := BuildSchedule(o.Seed, o.Profile)
	if err != nil {
		return nil, err
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Log == nil {
		o.Log = telemetry.NopLogger()
	}
	if o.WaitTimeout <= 0 {
		o.WaitTimeout = 2 * time.Minute
	}
	r := &runner{
		o:     o,
		ops:   ops,
		rec:   newRecorder(),
		ids:   make([]string, countSubmits(ops)),
		cells: make([]int, countSubmits(ops)),
		sleep: o.Sleep,
	}
	if r.sleep == nil {
		r.sleep = time.Sleep
	}
	start := time.Now()
	phase := ""
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("loadgen: aborted at op %d/%d: %w", i, len(ops), err)
		}
		if op.Phase != phase {
			phase = op.Phase
			o.Log.Info("phase", "name", phase)
		}
		r.exec(ctx, op)
	}
	r.obs.WallClockS = time.Since(start).Seconds()
	if r.obs.ExecutionS > 0 {
		r.obs.CellsPerSec = float64(r.obs.CellsDone) / r.obs.ExecutionS
	}
	rep := &Report{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		Seed:           o.Seed,
		Profile:        o.Profile,
		ScheduleSHA256: ScheduleSHA256(ops),
		ScheduleOps:    len(ops),
		Counters:       r.c,
		Observed:       r.obs,
		Routes:         r.rec.routes(),
		Errors:         r.errs,
	}
	return rep, nil
}

// countSubmits counts the schedule's submission ops.
func countSubmits(ops []Op) int {
	n := 0
	for _, op := range ops {
		if op.Kind == OpSubmit {
			n++
		}
	}
	return n
}

// fail records one behavior failure in the counters and the capped
// detail list.
func (r *runner) fail(op Op, format string, a ...any) {
	r.c.UnexpectedErrors++
	detail := fmt.Sprintf("%s[%s] ref=%d: %s", op.Kind, op.Phase, op.Ref, fmt.Sprintf(format, a...))
	if len(r.errs) < maxErrorDetails {
		r.errs = append(r.errs, detail)
	}
	r.o.Log.Warn("unexpected behavior", "op", string(op.Kind), "phase", op.Phase, "detail", detail)
}

// exec dispatches one op.
func (r *runner) exec(ctx context.Context, op Op) {
	switch op.Kind {
	case OpSubmit:
		r.submit(ctx, op, op.Body, op.Path)
	case OpResubmit:
		r.resubmit(ctx, op)
	case OpStatus:
		r.status(ctx, op)
	case OpCancel:
		r.cancel(ctx, op)
	case OpAwait, OpAwaitStarted, OpReplay, OpRude:
		r.sse(ctx, op)
	case OpHonorRetryAfter:
		r.honorRetryAfter()
	}
}

// post issues one submission POST and returns the parsed response.
func (r *runner) post(ctx context.Context, path string, body []byte) (*http.Response, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.o.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.o.Client.Do(req)
	r.c.Requests++
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	r.rec.observe("POST "+path, time.Since(start))
	if err != nil {
		return resp, nil, err
	}
	return resp, data, nil
}

// submit executes a scheduled submission, recording acceptance or the
// expected 429 rejection.
func (r *runner) submit(ctx context.Context, op Op, body []byte, path string) {
	r.c.Submissions++
	resp, data, err := r.post(ctx, path, body)
	if err != nil {
		r.fail(op, "POST %s: %v", path, err)
		return
	}
	if op.Want == http.StatusTooManyRequests {
		if resp.StatusCode != http.StatusTooManyRequests {
			r.fail(op, "expected 429, got %d: %s", resp.StatusCode, truncate(data))
			return
		}
		r.c.Rejected429++
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			sec := float64(ra)
			if r.obs.RetryAfterMinS == 0 || sec < r.obs.RetryAfterMinS {
				r.obs.RetryAfterMinS = sec
			}
			if sec > r.obs.RetryAfterMaxS {
				r.obs.RetryAfterMaxS = sec
			}
		} else {
			r.fail(op, "429 without a parsable Retry-After header (%q)", resp.Header.Get("Retry-After"))
		}
		return
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		r.fail(op, "POST %s = %d, want 202/200: %s", path, resp.StatusCode, truncate(data))
		return
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		r.fail(op, "undecodable submit response: %v (%s)", err, truncate(data))
		return
	}
	r.c.Accepted++
	r.ids[op.Ref] = st.ID
	r.cells[op.Ref] = st.Cells
}

// resubmit re-POSTs an earlier submission's body, expecting the
// content-keyed dedupe to answer with the original job's id.
func (r *runner) resubmit(ctx context.Context, op Op) {
	r.c.DedupeAttempts++
	src := r.findSubmit(op.Ref)
	if src == nil || r.ids[op.Ref] == "" {
		r.fail(op, "resubmit target was never accepted")
		return
	}
	resp, data, err := r.post(ctx, src.Path, src.Body)
	if err != nil {
		r.fail(op, "POST %s: %v", src.Path, err)
		return
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		r.fail(op, "undecodable resubmit response: %v (%s)", err, truncate(data))
		return
	}
	if resp.StatusCode != http.StatusOK || !st.Deduped || st.ID != r.ids[op.Ref] {
		r.fail(op, "resubmit not deduped: status %d deduped=%v id=%s want %s",
			resp.StatusCode, st.Deduped, st.ID, r.ids[op.Ref])
		return
	}
	r.c.DedupeHits++
}

// findSubmit locates the submit op with the given submission index.
func (r *runner) findSubmit(ref int) *Op {
	for i := range r.ops {
		if r.ops[i].Kind == OpSubmit && r.ops[i].Ref == ref {
			return &r.ops[i]
		}
	}
	return nil
}

// status GETs a job's status, folding done-job timings into the
// throughput observation.
func (r *runner) status(ctx context.Context, op Op) {
	id := r.ids[op.Ref]
	if id == "" {
		r.fail(op, "status target was never accepted")
		return
	}
	rctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, r.o.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		r.fail(op, "build status request: %v", err)
		return
	}
	start := time.Now()
	resp, err := r.o.Client.Do(req)
	r.c.Requests++
	if err != nil {
		r.fail(op, "GET status: %v", err)
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	r.rec.observe("GET /v1/jobs/{id}", time.Since(start))
	if resp.StatusCode != http.StatusOK {
		r.fail(op, "GET status = %d: %s", resp.StatusCode, truncate(data))
		return
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		r.fail(op, "undecodable status: %v (%s)", err, truncate(data))
		return
	}
	if st.State == "done" {
		r.obs.JobsDone++
		r.obs.CellsDone += st.Cells
		r.obs.CellsCached += st.CellsCached
		if st.Timings != nil {
			r.obs.ExecutionS += st.Timings.ExecutionS
		}
	}
}

// cancel DELETEs a job mid-flight.
func (r *runner) cancel(ctx context.Context, op Op) {
	id := r.ids[op.Ref]
	if id == "" {
		r.fail(op, "cancel target was never accepted")
		return
	}
	rctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodDelete, r.o.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		r.fail(op, "build cancel request: %v", err)
		return
	}
	start := time.Now()
	resp, err := r.o.Client.Do(req)
	r.c.Requests++
	if err != nil {
		r.fail(op, "DELETE: %v", err)
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	r.rec.observe("DELETE /v1/jobs/{id}", time.Since(start))
	if resp.StatusCode != http.StatusAccepted {
		r.fail(op, "DELETE = %d, want 202: %s", resp.StatusCode, truncate(data))
		return
	}
	r.c.Cancels++
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id   int
	name string
	data []byte
}

// terminalEvents are the SSE names that end a job's stream.
var terminalEvents = map[string]bool{"done": true, "failed": true, "canceled": true}

// sse runs one of the streaming behaviors: await (read to terminal),
// await-started and rude (early rude disconnects), replay (read a
// finished job's history to EOF).
func (r *runner) sse(ctx context.Context, op Op) {
	id := r.ids[op.Ref]
	if id == "" {
		r.fail(op, "sse target was never accepted")
		return
	}
	sctx, cancel := context.WithTimeout(ctx, r.o.WaitTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, r.o.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		r.fail(op, "build events request: %v", err)
		return
	}
	start := time.Now()
	resp, err := r.o.Client.Do(req)
	r.c.Requests++
	r.c.SSEStreams++
	if err != nil {
		r.fail(op, "GET events: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.rec.observe("GET /v1/jobs/{id}/events", time.Since(start))
		r.fail(op, "GET events = %d", resp.StatusCode)
		return
	}

	var events []sseEvent
	firstEvent := time.Duration(0)
	stop := func(ev sseEvent) bool {
		switch op.Kind {
		case OpAwait:
			return terminalEvents[ev.name]
		case OpAwaitStarted:
			return ev.name == "started"
		case OpRude:
			return true
		default: // OpReplay reads to EOF
			return false
		}
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	cur := sseEvent{}
	truncated := false
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(line[len("id: "):])
		case strings.HasPrefix(line, "event: "):
			cur.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(line[len("data: "):])
		case line == "" && cur.name != "":
			if firstEvent == 0 {
				firstEvent = time.Since(start)
			}
			events = append(events, cur)
			done := stop(cur)
			cur = sseEvent{}
			if done {
				truncated = true
			}
		}
		if truncated {
			break
		}
	}
	if firstEvent == 0 {
		firstEvent = time.Since(start)
	}
	r.rec.observe("GET /v1/jobs/{id}/events", firstEvent)
	if err := scanner.Err(); err != nil && !truncated {
		r.fail(op, "reading events: %v", err)
		return
	}

	switch op.Kind {
	case OpAwaitStarted, OpRude:
		// The early close is the point: the server must release the
		// subscriber (asserted by the service's goroutine-leak test).
		r.c.SSERudeDisconnects++
		if len(events) == 0 || events[0].id != 1 {
			r.fail(op, "stream did not replay history from event 1")
		}
	case OpAwait, OpReplay:
		r.c.SSEReplaysChecked++
		if msg := validateReplay(events, op.WantTerminal, r.cells[op.Ref], op.Kind == OpAwait || op.WantTerminal == "done"); msg != "" {
			r.c.SSEReplayErrors++
			if len(r.errs) < maxErrorDetails {
				r.errs = append(r.errs, fmt.Sprintf("%s[%s] ref=%d: %s", op.Kind, op.Phase, op.Ref, msg))
			}
		}
	}
}

// validateReplay checks the append-only history contract: ids are
// contiguous from 1, the stream opens with "queued" and ends with the
// expected terminal event, and — for completed jobs — the stream
// carries exactly one cell event per compiled cell with matching final
// counters.
func validateReplay(events []sseEvent, wantTerminal string, cells int, countCells bool) string {
	if len(events) == 0 {
		return "empty stream"
	}
	for i, ev := range events {
		if ev.id != i+1 {
			return fmt.Sprintf("event %d has id %d, want contiguous ids from 1", i, ev.id)
		}
	}
	if events[0].name != "queued" {
		return fmt.Sprintf("stream opens with %q, want queued", events[0].name)
	}
	last := events[len(events)-1]
	if last.name != wantTerminal {
		return fmt.Sprintf("stream ends with %q, want %q", last.name, wantTerminal)
	}
	if wantTerminal != "done" || !countCells {
		return ""
	}
	cellEvents := 0
	for _, ev := range events {
		if ev.name == "cell" {
			cellEvents++
		}
	}
	if cellEvents != cells {
		return fmt.Sprintf("replay carries %d cell events, want %d", cellEvents, cells)
	}
	var final struct {
		// CellsDone mirrors the done event's final progress counter.
		CellsDone int `json:"cells_done"`
	}
	if err := json.Unmarshal(last.data, &final); err != nil {
		return fmt.Sprintf("undecodable done event: %v", err)
	}
	if final.CellsDone != cells {
		return fmt.Sprintf("done event reports %d cells, want %d", final.CellsDone, cells)
	}
	return ""
}

// honorRetryAfter sleeps the largest advertised Retry-After, capped by
// the profile, before the post-storm probe.
func (r *runner) honorRetryAfter() {
	wait := r.obs.RetryAfterMaxS
	if wait > r.o.Profile.RetryAfterCapS {
		wait = r.o.Profile.RetryAfterCapS
	}
	if wait <= 0 {
		return
	}
	r.obs.HonoredWaitS = wait
	r.o.Log.Info("honoring Retry-After", "wait_s", wait, "advertised_max_s", r.obs.RetryAfterMaxS)
	r.sleep(time.Duration(wait * float64(time.Second)))
}

// truncate bounds response bodies embedded in error details.
func truncate(data []byte) string {
	const max = 200
	s := strings.TrimSpace(string(data))
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}
