package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
)

// OpKind names one client behavior in the schedule.
type OpKind string

// The schedule's op vocabulary.
const (
	// OpSubmit POSTs Body to Path and expects the Want status class.
	OpSubmit OpKind = "submit"
	// OpResubmit re-POSTs the Ref submission's body and expects a
	// dedupe answer carrying the Ref job's id.
	OpResubmit OpKind = "resubmit"
	// OpAwait subscribes to the Ref job's SSE stream until the
	// WantTerminal event, validating the replayed history.
	OpAwait OpKind = "await"
	// OpAwaitStarted subscribes to the Ref job's SSE stream until the
	// "started" event, then disconnects rudely.
	OpAwaitStarted OpKind = "await-started"
	// OpReplay subscribes to an already-terminal Ref job and validates
	// that the full event history replays from id 1.
	OpReplay OpKind = "replay"
	// OpRude subscribes to the Ref job's SSE stream, reads one event,
	// and disconnects rudely mid-stream.
	OpRude OpKind = "rude"
	// OpStatus GETs the Ref job's status, recording execution timings
	// and cache counters.
	OpStatus OpKind = "status"
	// OpCancel DELETEs the Ref job and expects 202.
	OpCancel OpKind = "cancel"
	// OpHonorRetryAfter sleeps the largest Retry-After observed so far
	// (capped by Profile.RetryAfterCapS), honoring the server's
	// backpressure hint before the post-storm probe.
	OpHonorRetryAfter OpKind = "honor-retry-after"
)

// Op is one scheduled client action. The schedule — the ordered op
// list — is a pure function of (seed, profile): it is fully
// materialized, hashable and printable before the first request.
type Op struct {
	// Kind selects the behavior.
	Kind OpKind `json:"kind"`
	// Phase labels the op for progress logs: mixed, cancel, storm.
	Phase string `json:"phase"`
	// Ref is the submission index (in submit-op order) the op targets;
	// meaningful for every kind except submit and honor-retry-after.
	Ref int `json:"ref,omitempty"`
	// Path is the submit route: /v1/runs or /v1/sweeps.
	Path string `json:"path,omitempty"`
	// Body is the submit request body.
	Body json.RawMessage `json:"body,omitempty"`
	// Want is the expected submit status (202 accepted-or-deduped, 429
	// rejected); zero means accepted.
	Want int `json:"want,omitempty"`
	// WantTerminal is the expected terminal SSE event of an await op:
	// "done" or "canceled".
	WantTerminal string `json:"want_terminal,omitempty"`
}

// runBody mirrors the service's RunRequest fields the generator uses.
type runBody struct {
	// Model, Senders, DurationS, RateBps and Seed mirror the
	// like-named POST /v1/runs fields.
	Model     string  `json:"model"`
	Senders   int     `json:"senders"`
	DurationS float64 `json:"duration_s"`
	RateBps   float64 `json:"rate_bps"`
	Seed      int64   `json:"seed"`
}

// sweepBody mirrors the sweep.SpecDoc fields the generator uses.
type sweepBody struct {
	// Models, Senders, Bursts, Runs, DurationS, RateBps and Seed
	// mirror the like-named POST /v1/sweeps fields.
	Models    []string `json:"models"`
	Senders   []int    `json:"senders"`
	Bursts    []int    `json:"bursts"`
	Runs      int      `json:"runs"`
	DurationS float64  `json:"duration_s"`
	RateBps   float64  `json:"rate_bps"`
	Seed      int64    `json:"seed"`
}

// loadRate is the per-sender application rate of every generated
// scenario: low enough that even the largest generated cell simulates
// in well under a second.
const loadRate = 2000

// mustJSON marshals a generator-owned struct; a failure is a
// programming error.
func mustJSON(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal schedule body: %v", err))
	}
	return data
}

// scheduleBuilder accumulates ops and tracks submission indexes.
type scheduleBuilder struct {
	ops     []Op
	submits int
}

// submit appends a submit op and returns its submission index.
func (b *scheduleBuilder) submit(phase, path string, body json.RawMessage, want int) int {
	ref := b.submits
	b.submits++
	b.ops = append(b.ops, Op{Kind: OpSubmit, Phase: phase, Ref: ref, Path: path, Body: body, Want: want})
	return ref
}

// add appends a non-submit op.
func (b *scheduleBuilder) add(op Op) { b.ops = append(b.ops, op) }

// mixedItem is one shuffled unit of the mixed phase: a single run or
// an overlapping sweep pair.
type mixedItem struct {
	pair bool
}

// BuildSchedule lowers (seed, profile) into the full ordered op list.
// It is the determinism boundary: every randomized choice — scenario
// parameters, per-submission seeds, phase interleaving — draws from
// one rand.Rand seeded here, so equal inputs produce byte-identical
// schedules (see ScheduleSHA256).
func BuildSchedule(seed int64, p Profile) ([]Op, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := &scheduleBuilder{}

	// Mixed phase: singles and overlapping sweep pairs, shuffled, with
	// at most QueueLimit submissions outstanding so the queue can never
	// reject mixed traffic even if no executor drains it.
	items := make([]mixedItem, 0, p.Singles+p.SweepPairs)
	for i := 0; i < p.Singles; i++ {
		items = append(items, mixedItem{})
	}
	for i := 0; i < p.SweepPairs; i++ {
		items = append(items, mixedItem{pair: true})
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	models := []string{"sensor", "dual"}
	senderChoices := []int{5, 10, 15}
	var outstanding []int // refs awaiting completion in the current batch
	var mixedRefs []int   // every mixed submission that completes as done
	flush := func() {
		for _, ref := range outstanding {
			b.add(Op{Kind: OpAwait, Phase: "mixed", Ref: ref, WantTerminal: "done"})
			b.add(Op{Kind: OpStatus, Phase: "mixed", Ref: ref})
		}
		outstanding = outstanding[:0]
	}
	for _, it := range items {
		slots := 1
		if it.pair {
			slots = 2
		}
		if len(outstanding)+slots > p.QueueLimit {
			flush()
		}
		if !it.pair {
			body := mustJSON(runBody{
				Model:     models[rng.Intn(len(models))],
				Senders:   senderChoices[rng.Intn(len(senderChoices))],
				DurationS: p.RunDurationS,
				RateBps:   loadRate,
				Seed:      rng.Int63n(1 << 40),
			})
			ref := b.submit("mixed", "/v1/runs", body, 0)
			outstanding = append(outstanding, ref)
			mixedRefs = append(mixedRefs, ref)
			continue
		}
		// An overlapping pair: grid G over senders {a,b}, grid Gov over
		// {b,c} with the same seed and scenario, so the b-cells are
		// identical configurations resolved once between the two jobs
		// (in-flight dedupe or cache, depending on interleaving).
		perm := rng.Perm(len(senderChoices))
		a, bb, c := senderChoices[perm[0]], senderChoices[perm[1]], senderChoices[perm[2]]
		pairSeed := rng.Int63n(1 << 40)
		g := mustJSON(sweepBody{
			Models: []string{"sensor"}, Senders: []int{a, bb}, Bursts: []int{10},
			Runs: 2, DurationS: p.RunDurationS, RateBps: loadRate, Seed: pairSeed,
		})
		gov := mustJSON(sweepBody{
			Models: []string{"sensor"}, Senders: []int{bb, c}, Bursts: []int{10},
			Runs: 2, DurationS: p.RunDurationS, RateBps: loadRate, Seed: pairSeed,
		})
		gRef := b.submit("mixed", "/v1/sweeps", g, 0)
		govRef := b.submit("mixed", "/v1/sweeps", gov, 0)
		for r := 0; r < p.Resubmits; r++ {
			b.add(Op{Kind: OpResubmit, Phase: "mixed", Ref: gRef})
		}
		outstanding = append(outstanding, gRef, govRef)
		mixedRefs = append(mixedRefs, gRef, govRef)
	}
	flush()

	// Late subscribers: full-history replays of jobs that already
	// finished, validating the append-only SSE history contract.
	for i := 0; i < p.LateReplays; i++ {
		b.add(Op{Kind: OpReplay, Phase: "mixed", Ref: mixedRefs[rng.Intn(len(mixedRefs))], WantTerminal: "done"})
	}

	// Cancel phase: a moderately large sweep, rude mid-stream
	// disconnects while it runs, then a mid-sweep DELETE.
	// The target is sized like a storm plug (2*PlugRuns cells): a
	// canceled job's in-flight cells still finish and land in the
	// result cache, so the next invocation's resubmission starts with a
	// head start — the cell count must dwarf what one cancel window can
	// cache or run 2's DELETE races the job's completion.
	ct := b.submit("cancel", "/v1/sweeps", mustJSON(sweepBody{
		Models: []string{"sensor"}, Senders: []int{5, 10}, Bursts: []int{10},
		Runs: p.PlugRuns, DurationS: p.PlugDurationS, RateBps: loadRate, Seed: rng.Int63n(1 << 40),
	}), 0)
	b.add(Op{Kind: OpAwaitStarted, Phase: "cancel", Ref: ct})
	for i := 0; i < p.RudeSubs; i++ {
		b.add(Op{Kind: OpRude, Phase: "cancel", Ref: ct})
	}
	b.add(Op{Kind: OpCancel, Phase: "cancel", Ref: ct})
	b.add(Op{Kind: OpAwait, Phase: "cancel", Ref: ct, WantTerminal: "canceled"})

	// Storm phase: plug every executor, fill the queue exactly, then
	// overflow it — each overflow submission must bounce with 429.
	plugs := make([]int, p.JobWorkers)
	for i := range plugs {
		plugs[i] = b.submit("storm", "/v1/sweeps", mustJSON(sweepBody{
			Models: []string{"sensor"}, Senders: []int{5, 10}, Bursts: []int{10},
			Runs: p.PlugRuns, DurationS: p.PlugDurationS, RateBps: loadRate, Seed: rng.Int63n(1 << 40),
		}), 0)
	}
	for _, ref := range plugs {
		b.add(Op{Kind: OpAwaitStarted, Phase: "storm", Ref: ref})
	}
	fills := make([]int, p.QueueLimit)
	for i := range fills {
		fills[i] = b.submit("storm", "/v1/runs", mustJSON(runBody{
			Model: "sensor", Senders: 5, DurationS: 10, RateBps: loadRate, Seed: rng.Int63n(1 << 40),
		}), 0)
	}
	for i := 0; i < p.StormExtras; i++ {
		b.submit("storm", "/v1/runs", mustJSON(runBody{
			Model: "sensor", Senders: 5, DurationS: 10, RateBps: loadRate, Seed: rng.Int63n(1 << 40),
		}), 429)
	}
	// Tear down fills first: the plugs still hold every executor, so
	// the fills are deterministically still queued when DELETEd.
	for _, ref := range fills {
		b.add(Op{Kind: OpCancel, Phase: "storm", Ref: ref})
	}
	for _, ref := range plugs {
		b.add(Op{Kind: OpCancel, Phase: "storm", Ref: ref})
	}
	for _, ref := range fills {
		b.add(Op{Kind: OpAwait, Phase: "storm", Ref: ref, WantTerminal: "canceled"})
	}
	for _, ref := range plugs {
		b.add(Op{Kind: OpAwait, Phase: "storm", Ref: ref, WantTerminal: "canceled"})
	}
	// Honor the advertised backoff, then verify the queue reopened.
	b.add(Op{Kind: OpHonorRetryAfter, Phase: "storm"})
	probe := b.submit("storm", "/v1/runs", mustJSON(runBody{
		Model: "sensor", Senders: 5, DurationS: 10, RateBps: loadRate, Seed: rng.Int63n(1 << 40),
	}), 0)
	b.add(Op{Kind: OpAwait, Phase: "storm", Ref: probe, WantTerminal: "done"})
	b.add(Op{Kind: OpStatus, Phase: "storm", Ref: probe})
	return b.ops, nil
}

// ScheduleSHA256 hashes the marshaled schedule — the report pins it so
// a baseline comparison can prove both runs issued the identical
// request schedule.
func ScheduleSHA256(ops []Op) string {
	data, err := json.Marshal(ops)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal schedule: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
