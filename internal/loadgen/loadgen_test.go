package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bulktx/internal/service"
)

// testProfile is a scaled-down ShortProfile: every behavior once or
// twice, short simulated durations, no honored sleep — the whole run
// completes in well under a second against the in-process service.
func testProfile() Profile {
	return Profile{
		Name:           "test",
		Singles:        2,
		SweepPairs:     1,
		Resubmits:      2,
		RudeSubs:       1,
		LateReplays:    2,
		StormExtras:    2,
		QueueLimit:     4,
		JobWorkers:     2,
		RunDurationS:   5,
		PlugRuns:       6,
		PlugDurationS:  120,
		RetryAfterCapS: 0.001,
	}
}

// pipeWriter adapts an io.Pipe into a streaming http.ResponseWriter:
// the SSE handler's Flush and WriteHeader work, and body bytes reach
// the client as they are written — no real listener involved.
type pipeWriter struct {
	pw     *io.PipeWriter
	header http.Header
	mu     sync.Mutex
	status int
	ready  chan struct{} // closed once the status line is decided
}

func (w *pipeWriter) Header() http.Header { return w.header }

func (w *pipeWriter) WriteHeader(code int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.status == 0 {
		w.status = code
		close(w.ready)
	}
}

func (w *pipeWriter) Write(p []byte) (int, error) {
	w.WriteHeader(http.StatusOK)
	return w.pw.Write(p)
}

func (w *pipeWriter) Flush() {}

// pipeTransport serves every request straight from an http.Handler:
// RoundTrip returns as soon as the handler commits its status line,
// while the body streams through an in-memory pipe. Closing the
// response body (or canceling the request context) unblocks the
// handler the same way a dropped TCP connection would.
type pipeTransport struct{ h http.Handler }

func (t pipeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pr, pw := io.Pipe()
	w := &pipeWriter{pw: pw, header: make(http.Header), ready: make(chan struct{})}
	go func() {
		t.h.ServeHTTP(w, req)
		w.WriteHeader(http.StatusOK) // handler wrote nothing: commit 200
		pw.Close()
	}()
	select {
	case <-w.ready:
	case <-req.Context().Done():
		pr.Close()
		return nil, req.Context().Err()
	}
	w.mu.Lock()
	status := w.status
	w.mu.Unlock()
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  w.header,
		Body:    &cancelBody{pr: pr, cancel: req.Context()},
		Request: req,
	}, nil
}

// cancelBody closes the pipe's read end on Close and drains reads
// until the handler observes the cancellation.
type cancelBody struct {
	pr     *io.PipeReader
	cancel context.Context
}

func (b *cancelBody) Read(p []byte) (int, error) {
	if err := b.cancel.Err(); err != nil {
		return 0, io.EOF
	}
	return b.pr.Read(p)
}

func (b *cancelBody) Close() error { return b.pr.Close() }

// newInProcess builds a service matching the test profile's shape and
// an Options driving it entirely in-process.
func newInProcess(t *testing.T, seed int64) Options {
	t.Helper()
	p := testProfile()
	svc, err := service.New(service.Options{
		Workers:    2,
		QueueLimit: p.QueueLimit,
		JobWorkers: p.JobWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx) //nolint:errcheck // best-effort teardown
	})
	return Options{
		BaseURL:     "http://in-process",
		Seed:        seed,
		Profile:     p,
		Client:      &http.Client{Transport: pipeTransport{h: svc}},
		WaitTimeout: 30 * time.Second,
		Sleep:       func(time.Duration) {},
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	p := testProfile()
	a, err := BuildSchedule(7, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(7, p)
	if err != nil {
		t.Fatal(err)
	}
	if ScheduleSHA256(a) != ScheduleSHA256(b) {
		t.Error("same seed produced different schedules")
	}
	c, err := BuildSchedule(8, p)
	if err != nil {
		t.Fatal(err)
	}
	if ScheduleSHA256(a) == ScheduleSHA256(c) {
		t.Error("different seeds produced identical schedules")
	}
	// The storm must overflow the queue by exactly StormExtras 429s.
	want429 := 0
	for _, op := range a {
		if op.Kind == OpSubmit && op.Want == http.StatusTooManyRequests {
			want429++
		}
	}
	if want429 != p.StormExtras {
		t.Errorf("schedule has %d expected 429s, want %d", want429, p.StormExtras)
	}
}

func TestBuildScheduleRejectsBadProfiles(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.Singles = -1 },
		func(p *Profile) { p.Singles, p.SweepPairs = 0, 0 },
		func(p *Profile) { p.QueueLimit = 1 },
		func(p *Profile) { p.JobWorkers = 0 },
		func(p *Profile) { p.PlugRuns = 1 },
		func(p *Profile) { p.RunDurationS = 0 },
		func(p *Profile) { p.RetryAfterCapS = -1 },
	}
	for i, mutate := range bad {
		p := testProfile()
		mutate(&p)
		if _, err := BuildSchedule(1, p); err == nil {
			t.Errorf("bad profile %d: BuildSchedule accepted it", i)
		}
	}
}

// TestRunDeterministicAgainstSameService is the acceptance criterion
// in miniature: two runs with the same seed against the same live
// service must be behaviorally clean and produce identical
// deterministic counters, and the compare gate must accept run 2
// against run 1's report.
func TestRunDeterministicAgainstSameService(t *testing.T) {
	o := newInProcess(t, 3)
	ctx := context.Background()
	rep1, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Report{rep1, rep2} {
		if rep.Counters.UnexpectedErrors != 0 || rep.Counters.SSEReplayErrors != 0 {
			t.Fatalf("run not clean: %+v\nerrors: %v", rep.Counters, rep.Errors)
		}
	}
	if rep1.Counters != rep2.Counters {
		t.Errorf("counters diverged:\nrun1 %+v\nrun2 %+v", rep1.Counters, rep2.Counters)
	}
	if rep1.ScheduleSHA256 != rep2.ScheduleSHA256 {
		t.Error("schedule hashes diverged across runs")
	}
	p := o.Profile
	if got, want := rep1.Counters.Rejected429, p.StormExtras; got != want {
		t.Errorf("rejected_429 = %d, want %d", got, want)
	}
	if got, want := rep1.Counters.DedupeHits, p.SweepPairs*p.Resubmits; got != want {
		t.Errorf("dedupe_hits = %d, want %d", got, want)
	}
	if rep1.Observed.RetryAfterMaxS <= 0 {
		t.Error("storm recorded no Retry-After hint")
	}
	var sb strings.Builder
	if err := CompareReports(&sb, rep1, rep2, 0.9); err != nil {
		t.Errorf("gate rejected run 2 against run 1: %v\n%s", err, sb.String())
	}
}

// TestReportSchema pins the BENCH_SERVE.json schema: the committed
// baseline is parsed with DisallowUnknownFields, so renaming or
// dropping a field must be a conscious, test-visible change.
func TestReportSchema(t *testing.T) {
	o := newInProcess(t, 5)
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"go_version", "goos", "goarch", "num_cpu", "seed", "profile",
		"schedule_sha256", "schedule_ops", "counters", "observed", "routes",
	} {
		if _, ok := top[key]; !ok {
			t.Errorf("report is missing top-level key %q", key)
		}
	}
	var counters map[string]int
	if err := json.Unmarshal(top["counters"], &counters); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "submissions", "accepted", "dedupe_attempts",
		"dedupe_hits", "rejected_429", "cancels", "sse_streams",
		"sse_replays_checked", "sse_replay_errors", "sse_rude_disconnects",
		"unexpected_errors",
	} {
		if _, ok := counters[key]; !ok {
			t.Errorf("counters are missing key %q", key)
		}
	}
	// Round-tripping through the strict baseline loader must work: this
	// is exactly how the CI gate reads the committed file.
	var roundTrip Report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&roundTrip); err != nil {
		t.Fatalf("report does not survive the strict baseline decode: %v", err)
	}
	if roundTrip.Counters != rep.Counters {
		t.Error("counters changed across the JSON round trip")
	}
}

func TestCompareReportsRejects(t *testing.T) {
	base := &Report{
		Seed:           1,
		ScheduleSHA256: "aaaa",
		Counters:       Counters{Requests: 10, DedupeAttempts: 2, DedupeHits: 2},
		Observed:       Observed{CellsPerSec: 100},
	}
	clean := func() *Report {
		r := *base
		return &r
	}
	t.Run("seed mismatch", func(t *testing.T) {
		cur := clean()
		cur.Seed = 2
		if err := CompareReports(io.Discard, base, cur, 0.5); err == nil || !strings.Contains(err.Error(), "seed mismatch") {
			t.Errorf("got %v, want seed mismatch", err)
		}
	})
	t.Run("schedule mismatch", func(t *testing.T) {
		cur := clean()
		cur.ScheduleSHA256 = "bbbb"
		if err := CompareReports(io.Discard, base, cur, 0.5); err == nil || !strings.Contains(err.Error(), "schedule mismatch") {
			t.Errorf("got %v, want schedule mismatch", err)
		}
	})
	t.Run("unclean run", func(t *testing.T) {
		cur := clean()
		cur.Counters.UnexpectedErrors = 1
		if err := CompareReports(io.Discard, base, cur, 0.5); err == nil || !strings.Contains(err.Error(), "not clean") {
			t.Errorf("got %v, want not clean", err)
		}
	})
	t.Run("counter divergence", func(t *testing.T) {
		cur := clean()
		cur.Counters.Requests = 11
		err := CompareReports(io.Discard, base, cur, 0.5)
		if err == nil || !strings.Contains(err.Error(), "requests: baseline 10, current 11") {
			t.Errorf("got %v, want a requests divergence", err)
		}
	})
	t.Run("throughput regression", func(t *testing.T) {
		cur := clean()
		cur.Observed.CellsPerSec = 10
		if err := CompareReports(io.Discard, base, cur, 0.5); err == nil || !strings.Contains(err.Error(), "regression gate failed") {
			t.Errorf("got %v, want regression failure", err)
		}
	})
	t.Run("identical passes", func(t *testing.T) {
		if err := CompareReports(io.Discard, base, clean(), 0.5); err != nil {
			t.Errorf("identical reports failed the gate: %v", err)
		}
	})
}

func TestPercentileNearestRank(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    int
		want time.Duration
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentile(ds, c.p); got != c.want {
			t.Errorf("percentile(%d) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile of empty = %d, want 0", got)
	}
}
