package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	"bulktx/internal/bench"
)

// Counters are the deterministic outcomes of one run: with the same
// seed, profile and server shape, two invocations — even against the
// same still-running server — produce identical counters, so the
// -compare gate checks them for exact equality against the committed
// baseline.
type Counters struct {
	// Requests is every HTTP request issued, across all routes.
	Requests int `json:"requests"`
	// Submissions is the scheduled POSTs to /v1/runs and /v1/sweeps,
	// storm overflow included; Accepted counts the ones the server took
	// (202 new or 200 deduped).
	Submissions int `json:"submissions"`
	// Accepted counts submissions the server accepted.
	Accepted int `json:"accepted"`
	// DedupeAttempts is the scheduled duplicate submissions;
	// DedupeHits counts the ones answered by the already-known job id.
	DedupeAttempts int `json:"dedupe_attempts"`
	// DedupeHits counts resubmissions the content-keyed dedupe caught.
	DedupeHits int `json:"dedupe_hits"`
	// Rejected429 counts storm submissions bounced by the full queue.
	Rejected429 int `json:"rejected_429"`
	// Cancels counts accepted DELETE /v1/jobs/{id} requests.
	Cancels int `json:"cancels"`
	// SSEStreams is every event-stream connection opened.
	SSEStreams int `json:"sse_streams"`
	// SSEReplaysChecked counts streams validated against the
	// append-only history contract; SSEReplayErrors counts violations.
	SSEReplaysChecked int `json:"sse_replays_checked"`
	// SSEReplayErrors counts replay-contract violations (must be 0).
	SSEReplayErrors int `json:"sse_replay_errors"`
	// SSERudeDisconnects counts streams closed rudely mid-job on
	// purpose; the service must release each subscriber (asserted by
	// the internal/service goroutine-leak test).
	SSERudeDisconnects int `json:"sse_rude_disconnects"`
	// UnexpectedErrors counts every behavior the server got wrong —
	// bad status codes, missed dedupes, unparsable responses. Any
	// nonzero value fails the -compare gate outright.
	UnexpectedErrors int `json:"unexpected_errors"`
}

// Observed are the machine-dependent measurements of one run. Only
// CellsPerSec is gated (through bench.Compare, with the -max-regress
// allowance); the rest are recorded for capacity planning.
type Observed struct {
	// WallClockS is the whole run's duration in seconds.
	WallClockS float64 `json:"wall_clock_s"`
	// JobsDone counts jobs observed in state done via status GETs.
	JobsDone int `json:"jobs_done"`
	// CellsDone and CellsCached sum those jobs' cell counters.
	CellsDone int `json:"cells_done"`
	// CellsCached counts cells served from the result cache.
	CellsCached int `json:"cells_cached"`
	// ExecutionS sums the done jobs' execution phases; CellsPerSec is
	// CellsDone/ExecutionS — the gated service-throughput metric.
	ExecutionS float64 `json:"execution_s"`
	// CellsPerSec is the gated throughput: completed cells per second
	// of job execution time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// RetryAfterMinS and RetryAfterMaxS bracket the Retry-After hints
	// advertised with 429 rejections during the storm.
	RetryAfterMinS float64 `json:"retry_after_min_s"`
	// RetryAfterMaxS is the largest advertised Retry-After hint.
	RetryAfterMaxS float64 `json:"retry_after_max_s"`
	// HonoredWaitS is how long the generator actually slept honoring
	// the hint (capped by Profile.RetryAfterCapS).
	HonoredWaitS float64 `json:"honored_wait_s"`
}

// RouteLatency is one route's client-observed latency distribution.
// For the SSE route the latency is time-to-first-event.
type RouteLatency struct {
	// Count is the number of observations.
	Count int `json:"count"`
	// P50Ms, P95Ms, P99Ms and MaxMs are nearest-rank percentiles in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	// P95Ms is the 95th-percentile latency.
	P95Ms float64 `json:"p95_ms"`
	// P99Ms is the 99th-percentile latency.
	P99Ms float64 `json:"p99_ms"`
	// MaxMs is the slowest observation.
	MaxMs float64 `json:"max_ms"`
}

// Report is the serialized outcome of one loadgen run — the schema of
// the committed BENCH_SERVE.json baseline.
type Report struct {
	// GoVersion, GOOS, GOARCH and NumCPU describe the machine that
	// produced the report.
	GoVersion string `json:"go_version"`
	// GOOS is the operating system the report was produced on.
	GOOS string `json:"goos"`
	// GOARCH is the architecture the report was produced on.
	GOARCH string `json:"goarch"`
	// NumCPU is the logical CPU count of the producing machine.
	NumCPU int `json:"num_cpu"`
	// Seed is the schedule seed; the gate requires baseline and
	// current to match.
	Seed int64 `json:"seed"`
	// Profile is the full profile the schedule was built from.
	Profile Profile `json:"profile"`
	// ScheduleSHA256 fingerprints the materialized op list; identical
	// (seed, profile, loadgen version) ⇒ identical hash.
	ScheduleSHA256 string `json:"schedule_sha256"`
	// ScheduleOps is the op count behind the hash, for quick reading.
	ScheduleOps int `json:"schedule_ops"`
	// Counters are the deterministic outcomes (gated for equality).
	Counters Counters `json:"counters"`
	// Observed are the wall-clock measurements (CellsPerSec gated).
	Observed Observed `json:"observed"`
	// Routes maps each route to its latency distribution.
	Routes map[string]RouteLatency `json:"routes"`
	// Errors details the first UnexpectedErrors/SSEReplayErrors
	// occurrences (capped; the counters are uncapped).
	Errors []string `json:"errors,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// recorder accumulates per-route latency samples.
type recorder struct {
	samples map[string][]time.Duration
}

func newRecorder() *recorder {
	return &recorder{samples: make(map[string][]time.Duration)}
}

// observe records one sample for a route.
func (r *recorder) observe(route string, d time.Duration) {
	r.samples[route] = append(r.samples[route], d)
}

// routes summarizes the samples into per-route distributions.
func (r *recorder) routes() map[string]RouteLatency {
	out := make(map[string]RouteLatency, len(r.samples))
	for route, ds := range r.samples {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		out[route] = RouteLatency{
			Count: len(ds),
			P50Ms: ms(percentile(ds, 50)),
			P95Ms: ms(percentile(ds, 95)),
			P99Ms: ms(percentile(ds, 99)),
			MaxMs: ms(ds[len(ds)-1]),
		}
	}
	return out
}

// percentile returns the nearest-rank p-th percentile of sorted ds.
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	rank := (p*len(ds) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(ds) {
		rank = len(ds)
	}
	return ds[rank-1]
}

// CompareReports gates a fresh report against the committed baseline:
// the current run must be behaviorally clean (zero unexpected errors,
// zero replay violations), the schedules must be the same experiment
// (matching seed and schedule hash), the deterministic counters must
// match exactly, and the throughput metrics may not regress beyond
// maxRegress (via the bench.Compare gate shared with bcp-bench).
// Latency percentiles are reported but not gated — they swing too
// wildly across runner hardware for a fractional threshold.
func CompareReports(w io.Writer, baseline, current *Report, maxRegress float64) error {
	if err := bench.ValidateMaxRegress(maxRegress); err != nil {
		return err
	}
	if current.Counters.UnexpectedErrors > 0 || current.Counters.SSEReplayErrors > 0 {
		return fmt.Errorf("run was not clean: %d unexpected errors, %d SSE replay errors\n  %s",
			current.Counters.UnexpectedErrors, current.Counters.SSEReplayErrors,
			strings.Join(current.Errors, "\n  "))
	}
	if baseline.Seed != current.Seed {
		return fmt.Errorf("seed mismatch: baseline %d, current %d (rerun with -seed %d or regenerate the baseline)",
			baseline.Seed, current.Seed, baseline.Seed)
	}
	if baseline.ScheduleSHA256 != current.ScheduleSHA256 {
		return fmt.Errorf("schedule mismatch: baseline %s, current %s (profile or generator changed; regenerate the baseline)",
			baseline.ScheduleSHA256, current.ScheduleSHA256)
	}
	if diffs := diffCounters(baseline.Counters, current.Counters); len(diffs) > 0 {
		return fmt.Errorf("deterministic counters diverged from baseline:\n  %s", strings.Join(diffs, "\n  "))
	}
	fmt.Fprintf(w, "counters match baseline (%d requests, %d dedupe hits, %d x 429)\n",
		current.Counters.Requests, current.Counters.DedupeHits, current.Counters.Rejected429)
	metrics := []bench.Metric{{
		Name:           "cells/s",
		Baseline:       baseline.Observed.CellsPerSec,
		Current:        current.Observed.CellsPerSec,
		HigherIsBetter: true,
	}}
	if baseline.Counters.DedupeAttempts > 0 && current.Counters.DedupeAttempts > 0 {
		metrics = append(metrics, bench.Metric{
			Name:           "dedupe hit rate",
			Baseline:       float64(baseline.Counters.DedupeHits) / float64(baseline.Counters.DedupeAttempts),
			Current:        float64(current.Counters.DedupeHits) / float64(current.Counters.DedupeAttempts),
			HigherIsBetter: true,
		})
	}
	return bench.Compare(w, metrics, maxRegress)
}

// diffCounters lists the counter fields whose values differ, by their
// JSON names.
func diffCounters(baseline, current Counters) []string {
	var diffs []string
	bv := reflect.ValueOf(baseline)
	cv := reflect.ValueOf(current)
	t := bv.Type()
	for i := 0; i < t.NumField(); i++ {
		b, c := bv.Field(i).Int(), cv.Field(i).Int()
		if b != c {
			name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
			diffs = append(diffs, fmt.Sprintf("%s: baseline %d, current %d", name, b, c))
		}
	}
	return diffs
}
