// Package faultinject provides deterministic, opt-in fault injection
// for resilience tests and chaos smokes. Production code calls the
// cheap evaluation hooks (MaybePanic, Stall, Error) at named injection
// points; with no plan active — the default — every hook is a single
// atomic load and a nil check, so shipping the hooks costs nothing.
//
// A plan activates faults either programmatically (tests call Parse +
// Activate) or, for the real binaries, through the BULKTX_FAULTS
// environment variable (cmd/bcp-serve calls LoadEnv and logs loudly
// when a plan is active). The spec grammar is
//
//	point[:opt=val[,opt=val...]][;point...]
//
// with options p (fire probability, default 1), count (max fires,
// default unlimited), delay (stall duration) and seed (decision seed).
// Example: "cell.panic:count=2;cell.stall:delay=200ms,p=0.5,seed=7".
//
// Decisions are seed-driven and deterministic: whether a probabilistic
// rule fires for a given key is a pure function of (seed, point, key),
// so a fixed plan against a fixed workload injects the same faults on
// every run — flaky chaos is not chaos worth debugging.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Injection point names, one per failure mode the resilience layer
// defends against.
const (
	// CellPanic panics inside a sweep worker's cell execution, before
	// the simulation runs (exercises per-cell panic isolation + retry).
	CellPanic = "cell.panic"
	// CellStall sleeps inside cell execution for the rule's delay
	// (exercises deadlines, cancellation and mid-sweep crashes).
	CellStall = "cell.stall"
	// CachePut fails the disk write of a sweep result-cache entry
	// (exercises mem-only fallback).
	CachePut = "cache.put"
	// JournalAppend fails a job-journal append (exercises the
	// availability-over-durability policy).
	JournalAppend = "journal.append"
)

// EnvVar is the environment variable LoadEnv reads a plan spec from.
const EnvVar = "BULKTX_FAULTS"

// points is the closed set of valid injection points; Parse rejects
// anything else so a typo in a chaos spec fails fast instead of
// silently injecting nothing.
var points = map[string]bool{
	CellPanic:     true,
	CellStall:     true,
	CachePut:      true,
	JournalAppend: true,
}

// Rule configures one injection point of a plan.
type Rule struct {
	// Point is the injection point name (CellPanic, ...).
	Point string
	// Prob is the fire probability per evaluation, decided
	// deterministically from Seed and the evaluation key (default 1).
	Prob float64
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
	// Delay is the stall duration of CellStall-style points.
	Delay time.Duration
	// Seed seeds the probabilistic fire decision.
	Seed int64
}

// ruleState is a rule plus its live fire counter.
type ruleState struct {
	Rule
	evals atomic.Int64 // fires so far (bounded by Count when set)
}

// Plan is a parsed set of injection rules, at most one per point.
type Plan struct {
	rules map[string]*ruleState
}

// active is the process-wide plan; nil means fault injection is off
// and every hook returns immediately.
var active atomic.Pointer[Plan]

// Parse compiles a plan spec (see the package comment for the
// grammar). An empty spec yields a nil plan, i.e. injection off.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{rules: make(map[string]*ruleState)}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, opts, _ := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		if !points[name] {
			return nil, fmt.Errorf("faultinject: unknown point %q (want one of %s)", name, knownPoints())
		}
		if _, dup := p.rules[name]; dup {
			return nil, fmt.Errorf("faultinject: duplicate rule for point %q", name)
		}
		rule := Rule{Point: name, Prob: 1}
		for _, opt := range strings.Split(opts, ",") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: option %q of point %q is not key=value", opt, name)
			}
			var err error
			switch k {
			case "p":
				rule.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (rule.Prob < 0 || rule.Prob > 1) {
					err = errors.New("probability outside [0,1]")
				}
			case "count":
				rule.Count, err = strconv.Atoi(v)
				if err == nil && rule.Count < 0 {
					err = errors.New("negative count")
				}
			case "delay":
				rule.Delay, err = time.ParseDuration(v)
				if err == nil && rule.Delay < 0 {
					err = errors.New("negative delay")
				}
			case "seed":
				rule.Seed, err = strconv.ParseInt(v, 10, 64)
			default:
				err = errors.New("unknown option")
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: point %q option %q: %v", name, opt, err)
			}
		}
		p.rules[name] = &ruleState{Rule: rule}
	}
	if len(p.rules) == 0 {
		return nil, nil
	}
	return p, nil
}

// knownPoints lists the valid point names for error messages.
func knownPoints() string {
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Activate installs the plan process-wide (nil deactivates injection)
// and returns a restore function that reinstates the previous plan —
// tests defer it so plans never leak across test cases.
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// LoadEnv parses and activates the plan spec in BULKTX_FAULTS,
// returning the raw spec so callers can log that injection is active.
// An empty or unset variable deactivates injection and returns "".
func LoadEnv() (spec string, err error) {
	spec = os.Getenv(EnvVar)
	p, err := Parse(spec)
	if err != nil {
		return spec, err
	}
	if p == nil {
		spec = ""
	}
	Activate(p)
	return spec, nil
}

// Active reports whether any plan is installed.
func Active() bool { return active.Load() != nil }

// Fired reports how many times the point has fired under the active
// plan (0 when no plan or no rule) — test introspection.
func Fired(point string) int64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	rs, ok := p.rules[point]
	if !ok {
		return 0
	}
	n := rs.evals.Load()
	if rs.Count > 0 && n > int64(rs.Count) {
		return int64(rs.Count)
	}
	return n
}

// fire evaluates the point for key: it reports whether the rule fires
// and, if so, under which configuration. The decision is deterministic
// in (seed, point, key); the count cap is a live counter.
func fire(point, key string) (Rule, bool) {
	p := active.Load()
	if p == nil {
		return Rule{}, false
	}
	rs, ok := p.rules[point]
	if !ok {
		return Rule{}, false
	}
	if rs.Prob < 1 && hash01(rs.Seed, point, key) >= rs.Prob {
		return Rule{}, false
	}
	if n := rs.evals.Add(1); rs.Count > 0 && n > int64(rs.Count) {
		return Rule{}, false
	}
	return rs.Rule, true
}

// hash01 maps (seed, point, key) to a uniform-enough value in [0,1).
// The FNV digest goes through a splitmix64-style finalizer because raw
// FNV of short, similar strings clusters in the high bits.
func hash01(seed int64, point, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, point, key)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// MaybePanic panics when the point fires for key — the injected
// failure the sweep workers' recover path turns into a per-cell error.
func MaybePanic(point, key string) {
	if _, ok := fire(point, key); ok {
		panic(fmt.Sprintf("faultinject: %s (key %.16s)", point, key))
	}
}

// Stall sleeps the rule's delay when the point fires for key,
// returning early if ctx ends first.
func Stall(ctx context.Context, point, key string) {
	rule, ok := fire(point, key)
	if !ok || rule.Delay <= 0 {
		return
	}
	t := time.NewTimer(rule.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Error returns an injected error when the point fires for key, nil
// otherwise — spliced into disk-write paths (cache, journal) ahead of
// the real I/O.
func Error(point, key string) error {
	if _, ok := fire(point, key); ok {
		return fmt.Errorf("faultinject: injected %s failure (key %.16s)", point, key)
	}
	return nil
}
