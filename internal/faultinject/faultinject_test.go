package faultinject

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nosuch.point",
		"cell.panic:count=-1",
		"cell.panic:p=1.5",
		"cell.stall:delay=-5ms",
		"cell.panic:frequency=2",
		"cell.panic:p",
		"cell.panic;cell.panic",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseEmptyMeansOff(t *testing.T) {
	for _, spec := range []string{"", "  ", ";", " ; "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p != nil {
			t.Errorf("Parse(%q) = non-nil plan", spec)
		}
	}
}

func TestInactiveHooksAreNoops(t *testing.T) {
	defer Activate(nil)()
	if Active() {
		t.Fatal("plan active without activation")
	}
	MaybePanic(CellPanic, "k") // must not panic
	if err := Error(CachePut, "k"); err != nil {
		t.Errorf("inactive Error = %v", err)
	}
	start := time.Now()
	Stall(context.Background(), CellStall, "k")
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("inactive Stall slept %v", d)
	}
}

func TestCountCapsFires(t *testing.T) {
	p, err := Parse("cache.put:count=2")
	if err != nil {
		t.Fatal(err)
	}
	defer Activate(p)()
	var fired int
	for i := 0; i < 5; i++ {
		if Error(CachePut, "key") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("count=2 rule fired %d times", fired)
	}
	if got := Fired(CachePut); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestProbabilityIsDeterministicPerKey(t *testing.T) {
	p, err := Parse("cell.panic:p=0.5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	defer Activate(p)()
	first := make(map[string]bool)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for _, k := range keys {
		first[k] = Error(CellPanic, k) != nil
	}
	// Re-evaluating the same keys fires identically: the decision is a
	// pure function of (seed, point, key).
	for _, k := range keys {
		if again := Error(CellPanic, k) != nil; again != first[k] {
			t.Errorf("key %q: fire decision flipped %v -> %v", k, first[k], again)
		}
	}
	// With p=0.5 over 10 keys, both outcomes should occur.
	var hits int
	for _, f := range first {
		if f {
			hits++
		}
	}
	if hits == 0 || hits == len(first) {
		t.Errorf("p=0.5 fired on %d/%d keys; expected a mix", hits, len(first))
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	decide := func(seed string) string {
		p, err := Parse("cell.panic:p=0.5,seed=" + seed)
		if err != nil {
			t.Fatal(err)
		}
		defer Activate(p)()
		var b strings.Builder
		for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"} {
			if Error(CellPanic, k) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	if decide("1") == decide("2") {
		t.Error("seeds 1 and 2 produced identical decision vectors")
	}
}

func TestMaybePanicPanics(t *testing.T) {
	p, err := Parse("cell.panic")
	if err != nil {
		t.Fatal(err)
	}
	defer Activate(p)()
	defer func() {
		if recover() == nil {
			t.Error("MaybePanic did not panic under an always-on rule")
		}
	}()
	MaybePanic(CellPanic, "key")
}

func TestStallHonorsContext(t *testing.T) {
	p, err := Parse("cell.stall:delay=10s")
	if err != nil {
		t.Fatal(err)
	}
	defer Activate(p)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Stall(ctx, CellStall, "key")
	if d := time.Since(start); d > time.Second {
		t.Errorf("canceled Stall slept %v", d)
	}
}

func TestLoadEnv(t *testing.T) {
	t.Cleanup(func() { Activate(nil) })
	t.Setenv(EnvVar, "cache.put:count=1")
	spec, err := LoadEnv()
	if err != nil || spec == "" {
		t.Fatalf("LoadEnv = %q, %v", spec, err)
	}
	if !Active() {
		t.Fatal("LoadEnv did not activate the plan")
	}
	t.Setenv(EnvVar, "bogus")
	if _, err := LoadEnv(); err == nil {
		t.Error("LoadEnv accepted a bogus spec")
	}
	t.Setenv(EnvVar, "")
	if spec, err := LoadEnv(); err != nil || spec != "" {
		t.Errorf("empty env: LoadEnv = %q, %v", spec, err)
	}
	if Active() {
		t.Error("empty env left a plan active")
	}
}
