package core

import (
	"testing"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/mac"
	"bulktx/internal/params"
	"bulktx/internal/radio"
	"bulktx/internal/routing"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// harness assembles a full dual-radio stack (two channels, two MACs per
// node, mesh + wifi tree routing, BCP agents) over a line topology.
type harness struct {
	sched     *sim.Scheduler
	layout    *topo.Layout
	sensorCh  *radio.Channel
	wifiCh    *radio.Channel
	agents    []*Agent
	delivered map[int][]Packet // per receiving node
}

type harnessOpts struct {
	nodes         int
	spacing       units.Meters
	wifiRange     units.Meters
	sensorLoss    float64
	wifiLoss      float64
	burstPackets  int
	cfgMut        func(i int, c *Config)
	wifiTreeRange units.Meters // range used for the wifi routing tree
}

func newHarness(t *testing.T, o harnessOpts) *harness {
	t.Helper()
	if o.spacing == 0 {
		o.spacing = 30
	}
	if o.wifiRange == 0 {
		o.wifiRange = 40
	}
	if o.wifiTreeRange == 0 {
		o.wifiTreeRange = o.wifiRange
	}
	if o.burstPackets == 0 {
		o.burstPackets = 10
	}
	h := &harness{
		sched:     sim.NewScheduler(1234),
		delivered: make(map[int][]Packet),
	}
	layout, err := topo.Line(o.nodes, o.spacing)
	if err != nil {
		t.Fatal(err)
	}
	h.layout = layout

	h.sensorCh, err = radio.NewChannel(h.sched, radio.Config{
		Name:       "sensor",
		Profile:    energy.Micaz(),
		LossProb:   o.sensorLoss,
		HeaderSize: params.SensorHeader,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	h.wifiCh, err = radio.NewChannel(h.sched, radio.Config{
		Name:          "wifi",
		Profile:       energy.Lucent11(),
		Range:         o.wifiRange,
		LossProb:      o.wifiLoss,
		WakeupLatency: params.WifiWakeupLatency,
		HeaderSize:    params.WifiHeader,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}

	// Sink at the last node; both trees route toward it.
	sink := o.nodes - 1
	mesh, err := routing.BuildMesh(layout, 40)
	if err != nil {
		t.Fatal(err)
	}
	wifiTree, err := routing.BuildTree(layout, sink, o.wifiTreeRange)
	if err != nil {
		t.Fatal(err)
	}
	addr := routing.IdentityAddrMap(o.nodes)

	h.agents = make([]*Agent, o.nodes)
	for i := 0; i < o.nodes; i++ {
		sx, err := h.sensorCh.Attach(radio.NodeID(i), radio.OverhearFree, true)
		if err != nil {
			t.Fatal(err)
		}
		wx, err := h.wifiCh.Attach(radio.NodeID(i), radio.OverhearFull, false)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := mac.New(mac.SensorParams(), h.sched, sx)
		if err != nil {
			t.Fatal(err)
		}
		wm, err := mac.New(mac.WifiParams(), h.sched, wx)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(i, o.burstPackets)
		if o.cfgMut != nil {
			o.cfgMut(i, &cfg)
		}
		node := i
		h.agents[i], err = NewAgent(cfg, h.sched, sm, wm, mesh, wifiTree, addr,
			func(p Packet) { h.delivered[node] = append(h.delivered[node], p) })
		if err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// generate injects n packets at node src destined for dst.
func (h *harness) generate(src, dst, n int) {
	for i := 0; i < n; i++ {
		h.agents[src].Buffer(Packet{
			Src:     src,
			Dst:     dst,
			Seq:     uint64(i + 1),
			Size:    params.SensorPayload,
			Created: h.sched.Now(),
		})
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(0, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative node", func(c *Config) { c.NodeID = -1 }},
		{"zero threshold", func(c *Config) { c.BurstThreshold = 0 }},
		{"cap below threshold", func(c *Config) { c.BufferCap = c.BurstThreshold - 1 }},
		{"zero payload", func(c *Config) { c.SensorPayload = 0 }},
		{"negative header", func(c *Config) { c.WifiHeader = -1 }},
		{"zero ack timeout", func(c *Config) { c.AckTimeout = 0 }},
		{"negative retries", func(c *Config) { c.MaxWakeupRetries = -1 }},
		{"negative backoff", func(c *Config) { c.RetryBackoff = -1 }},
		{"zero recv timeout", func(c *Config) { c.ReceiverIdleTimeout = 0 }},
		{"negative linger", func(c *Config) { c.PostBurstLinger = -1 }},
		{"negative min grant", func(c *Config) { c.MinGrant = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig(0, 10)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate accepted invalid config")
			}
		})
	}
}

func TestNewAgentValidation(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2})
	cfg := DefaultConfig(0, 10)
	if _, err := NewAgent(cfg, h.sched, nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("NewAgent accepted nil dependencies")
	}
	bad := cfg
	bad.BurstThreshold = 0
	mesh, err := routing.BuildMesh(h.layout, 40)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.BuildTree(h.layout, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	sm := h.agents[0] // reuse wired MACs is not possible; only validate config path
	_ = sm
	if _, err := NewAgent(bad, h.sched, nil, nil, mesh, tree,
		routing.IdentityAddrMap(2), nil); err == nil {
		t.Error("NewAgent accepted invalid config")
	}
}

func TestSingleHopBurstDelivery(t *testing.T) {
	// Two nodes: sender 0, sink 1. Threshold 10 packets. Generating 10
	// packets must trigger exactly one handshake and deliver all 10.
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	h.generate(0, 1, 10)
	h.sched.RunUntil(10 * time.Second)

	got := h.delivered[1]
	if len(got) != 10 {
		t.Fatalf("sink received %d packets, want 10", len(got))
	}
	st := h.agents[0].Stats()
	if st.Handshakes != 1 {
		t.Errorf("handshakes = %d, want 1", st.Handshakes)
	}
	if st.BurstsSent != 1 {
		t.Errorf("bursts sent = %d, want 1", st.BurstsSent)
	}
	if st.FramesSent != 1 {
		t.Errorf("frames sent = %d, want 1 (10 x 32 B fits one 1024 B frame)", st.FramesSent)
	}
	rst := h.agents[1].Stats()
	if rst.BurstsReceived != 1 {
		t.Errorf("bursts received = %d, want 1", rst.BurstsReceived)
	}
	if rst.PacketsDelivered != 10 {
		t.Errorf("packets delivered = %d, want 10", rst.PacketsDelivered)
	}
}

func TestBelowThresholdNoHandshake(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	h.generate(0, 1, 9)
	h.sched.RunUntil(10 * time.Second)
	if len(h.delivered[1]) != 0 {
		t.Errorf("sink received %d packets below threshold", len(h.delivered[1]))
	}
	if st := h.agents[0].Stats(); st.Handshakes != 0 {
		t.Errorf("handshakes = %d, want 0", st.Handshakes)
	}
	if got := h.agents[0].BufferedBytes(); got != 9*32 {
		t.Errorf("buffered %v, want 288 B", got)
	}
	// The radio must never have been woken.
	if w := h.agents[0].wifi.Transceiver().Meter().Wakeups(); w != 0 {
		t.Errorf("sender wifi wakeups = %d, want 0", w)
	}
}

func TestLargeBurstFragmentation(t *testing.T) {
	// 100 packets of 32 B = 3200 B: 4 wifi frames (32 packets each, last 4).
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 100})
	h.generate(0, 1, 100)
	h.sched.RunUntil(30 * time.Second)
	if got := len(h.delivered[1]); got != 100 {
		t.Fatalf("sink received %d packets, want 100", got)
	}
	if st := h.agents[0].Stats(); st.FramesSent != 4 {
		t.Errorf("frames sent = %d, want 4", st.FramesSent)
	}
	// Packets preserve order and content through fragmentation.
	for i, p := range h.delivered[1] {
		if p.Seq != uint64(i+1) {
			t.Fatalf("packet %d has seq %d: order not preserved", i, p.Seq)
		}
		if p.Src != 0 || p.Dst != 1 {
			t.Fatalf("packet endpoints corrupted: %+v", p)
		}
	}
}

func TestRadioTurnsOffAfterBurst(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	h.generate(0, 1, 10)
	h.sched.RunUntil(20 * time.Second)
	for i, a := range h.agents {
		x := a.wifi.Transceiver()
		if x.On() || x.Waking() {
			t.Errorf("node %d wifi radio still on after burst", i)
		}
	}
	// Exactly one wake-up per side.
	if w := h.agents[0].wifi.Transceiver().Meter().Wakeups(); w != 1 {
		t.Errorf("sender wakeups = %d, want 1", w)
	}
	if w := h.agents[1].wifi.Transceiver().Meter().Wakeups(); w != 1 {
		t.Errorf("receiver wakeups = %d, want 1", w)
	}
}

func TestMultipleBursts(t *testing.T) {
	// 35 packets injected at once with threshold 10: the first handshake
	// fires at packet 10 and ships the 10 packets requested; the agent
	// then "tries to empty its buffer" (paper Section 3), so a second
	// handshake ships the remaining 25 in one burst.
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	h.generate(0, 1, 35)
	h.sched.RunUntil(60 * time.Second)
	if got := len(h.delivered[1]); got != 35 {
		t.Errorf("sink received %d packets, want 35", got)
	}
	if st := h.agents[0].Stats(); st.BurstsSent != 2 {
		t.Errorf("bursts = %d, want 2 (10 then the remaining 25)", st.BurstsSent)
	}
	if got := h.agents[0].BufferedBytes(); got != 0 {
		t.Errorf("left buffered %v, want 0", got)
	}
}

func TestStoreAndForwardRelay(t *testing.T) {
	// Three nodes, wifi range = one hop: 0 -> 1 -> 2. Node 1 re-buffers
	// node 0's packets and relays them with its own handshake.
	h := newHarness(t, harnessOpts{nodes: 3, burstPackets: 10})
	h.generate(0, 2, 10)
	h.sched.RunUntil(60 * time.Second)
	if got := len(h.delivered[2]); got != 10 {
		t.Fatalf("sink received %d packets, want 10", got)
	}
	mid := h.agents[1].Stats()
	if mid.PacketsForwarded != 10 {
		t.Errorf("relay forwarded = %d, want 10", mid.PacketsForwarded)
	}
	if mid.BurstsSent != 1 || mid.BurstsReceived != 1 {
		t.Errorf("relay bursts sent/received = %d/%d, want 1/1",
			mid.BurstsSent, mid.BurstsReceived)
	}
}

func TestMultiHopWakeupLongRangeWifi(t *testing.T) {
	// The paper's MH case: wifi reaches the sink directly (wifi tree is
	// one hop) while the wake-up message travels hop-by-hop over the
	// sensor radio.
	h := newHarness(t, harnessOpts{
		nodes:         5,
		spacing:       40,
		wifiRange:     250,
		wifiTreeRange: 250,
		burstPackets:  10,
	})
	h.generate(0, 4, 10)
	h.sched.RunUntil(30 * time.Second)
	if got := len(h.delivered[4]); got != 10 {
		t.Fatalf("sink received %d packets, want 10", got)
	}
	// Intermediate nodes never buffer data or touch their wifi radios.
	for i := 1; i <= 3; i++ {
		st := h.agents[i].Stats()
		if st.PacketsForwarded != 0 {
			t.Errorf("node %d forwarded %d packets over wifi path", i, st.PacketsForwarded)
		}
		if w := h.agents[i].wifi.Transceiver().Meter().Wakeups(); w != 0 {
			t.Errorf("node %d woke its wifi radio %d times", i, w)
		}
	}
	// Sender completed in a single one-hop burst.
	if st := h.agents[0].Stats(); st.BurstsSent != 1 {
		t.Errorf("sender bursts = %d, want 1", st.BurstsSent)
	}
}

func TestWakeupRetryUnderLoss(t *testing.T) {
	// 30% sensor loss: wake-up or ack may vanish; the sender must retry
	// and eventually deliver.
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10, sensorLoss: 0.3})
	h.generate(0, 1, 10)
	h.sched.RunUntil(120 * time.Second)
	if got := len(h.delivered[1]); got != 10 {
		t.Fatalf("sink received %d packets under loss, want 10", got)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	// Cap the buffer at 20 packets and inject 50 without letting the
	// simulation run: 30 must drop. (The handshake that fires at packet
	// 20 cannot consume anything until the scheduler runs.)
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 20,
		cfgMut: func(i int, c *Config) {
			c.BufferCap = 20 * params.SensorPayload
		},
	})
	h.generate(0, 1, 50)
	st := h.agents[0].Stats()
	if st.PacketsBuffered != 20 {
		t.Errorf("buffered = %d, want 20", st.PacketsBuffered)
	}
	if st.PacketsDropped != 30 {
		t.Errorf("dropped = %d, want 30", st.PacketsDropped)
	}
}

func TestReceiverGrantReducedByBufferSpace(t *testing.T) {
	// Relay node 1 has a small buffer; sender 0 requests more than fits.
	// Node 1 must grant less, and the remainder stays at node 0.
	h := newHarness(t, harnessOpts{
		nodes:        3,
		burstPackets: 40,
		cfgMut: func(i int, c *Config) {
			if i == 1 {
				c.BufferCap = 25 * params.SensorPayload
				c.BurstThreshold = 25 * params.SensorPayload
			}
		},
	})
	h.generate(0, 2, 40)
	h.sched.RunUntil(2 * time.Second)
	rst := h.agents[1].Stats()
	if rst.GrantsReduced == 0 {
		t.Error("relay never reduced a grant despite a small buffer")
	}
	h.sched.RunUntil(120 * time.Second)
	// The reduced grant ships 25 packets; the remaining 15 sit below the
	// sender's threshold awaiting more data (correct BCP behaviour).
	if got := len(h.delivered[2]); got != 25 {
		t.Errorf("sink received %d packets, want 25", got)
	}
	if got := h.agents[0].BufferedBytes(); got != 15*32 {
		t.Errorf("sender kept %v buffered, want 480 B", got)
	}
	// Topping the sender back over its threshold releases another
	// relay-buffer's worth (again capped at 25 by the grant).
	h.generate(0, 2, 25)
	h.sched.RunUntil(240 * time.Second)
	if got := len(h.delivered[2]); got != 50 {
		t.Errorf("sink received %d packets after refill, want 50", got)
	}
	if got := h.agents[0].BufferedBytes(); got != 15*32 {
		t.Errorf("sender kept %v buffered after refill, want 480 B", got)
	}
}

func TestSinkGrantsFullBuffer(t *testing.T) {
	// Packets destined to the receiving node are delivered, not buffered,
	// so the sink's grant never shrinks.
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 100})
	h.generate(0, 1, 100)
	h.sched.RunUntil(30 * time.Second)
	if st := h.agents[1].Stats(); st.GrantsReduced != 0 {
		t.Errorf("sink reduced %d grants", st.GrantsReduced)
	}
	if got := h.agents[1].BufferedBytes(); got != 0 {
		t.Errorf("sink buffered %v, want 0", got)
	}
}

func TestMinGrantDecline(t *testing.T) {
	// Paper extension: sender declines when the grant falls below s*.
	h := newHarness(t, harnessOpts{
		nodes:        3,
		burstPackets: 40,
		cfgMut: func(i int, c *Config) {
			switch i {
			case 0:
				c.MinGrant = 30 * params.SensorPayload
				c.RetryBackoff = time.Hour // do not retry within the test
			case 1:
				// Relay with room for only 10 packets: grant below MinGrant.
				c.BufferCap = 10 * params.SensorPayload
				c.BurstThreshold = 10 * params.SensorPayload
			}
		},
	})
	h.generate(0, 2, 40)
	h.sched.RunUntil(5 * time.Second)
	st := h.agents[0].Stats()
	if st.GrantsDeclined != 1 {
		t.Errorf("grants declined = %d, want 1", st.GrantsDeclined)
	}
	if st.BurstsSent != 0 {
		t.Errorf("bursts sent = %d, want 0 after decline", st.BurstsSent)
	}
	// Data stays buffered at the sender.
	if got := h.agents[0].BufferedBytes(); got != 40*32 {
		t.Errorf("buffered %v, want 1280 B", got)
	}
}

func TestGrantDeniedWhenReceiverFull(t *testing.T) {
	// Relay buffer completely occupied: wake-up gets no ack; sender
	// retries then fails the handshake.
	h := newHarness(t, harnessOpts{
		nodes:        3,
		burstPackets: 10,
		cfgMut: func(i int, c *Config) {
			if i == 0 {
				c.MaxWakeupRetries = 1
				c.RetryBackoff = time.Hour
				c.AckTimeout = 50 * time.Millisecond
			}
			if i == 1 {
				c.BufferCap = 10 * params.SensorPayload
				c.BurstThreshold = 10 * params.SensorPayload
				// Keep node 1 from draining its buffer during the test.
				c.MinGrant = 0
			}
		},
	})
	// Pre-fill the relay's buffer with its own traffic toward the sink;
	// its handshake to the sink is suppressed by making its threshold
	// unreachable after filling.
	relay := h.agents[1]
	relay.cfg.BurstThreshold = 11 * params.SensorPayload
	h.generate(1, 2, 10) // fills relay buffer exactly
	h.generate(0, 2, 10) // sender 0 now asks relay for space
	h.sched.RunUntil(5 * time.Second)

	if st := relay.Stats(); st.GrantsDenied == 0 {
		t.Error("full relay never denied a grant")
	}
	if st := h.agents[0].Stats(); st.HandshakeFailures == 0 {
		t.Error("sender never abandoned the handshake")
	}
}

func TestDeliveryDelayRecorded(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	h.generate(0, 1, 10)
	h.sched.RunUntil(10 * time.Second)
	for _, p := range h.delivered[1] {
		if p.Created != 0 {
			t.Errorf("packet created at %v, want 0 (generation time preserved)", p.Created)
		}
	}
}

func TestBufferToSelfDeliversImmediately(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	h.agents[0].Buffer(Packet{Src: 0, Dst: 0, Seq: 1, Size: 32})
	if got := len(h.delivered[0]); got != 1 {
		t.Errorf("self-addressed packet delivered %d times, want 1", got)
	}
	if h.agents[0].BufferedBytes() != 0 {
		t.Error("self-addressed packet was buffered")
	}
}

func TestEnergyFollowsBreakEvenDirection(t *testing.T) {
	// End-to-end energy sanity: shipping 500 packets (16 KB) in bulk via
	// BCP must cost less total 802.11+overhead energy than the same data
	// would cost over the sensor radio, and sending only 10 packets (320
	// B, below s*) must cost more. This is the paper's core claim played
	// through the full protocol stack.
	run := func(packets int) (units.Energy, int) {
		h := newHarness(t, harnessOpts{nodes: 2, burstPackets: packets})
		h.generate(0, 1, packets)
		h.sched.RunUntil(5 * time.Minute)
		var wifi units.Energy
		for _, a := range h.agents {
			wifi += a.wifi.Transceiver().Meter().Total()
			wifi += a.sensor.Transceiver().Meter().ByState()[energy.Tx]
			wifi += a.sensor.Transceiver().Meter().ByState()[energy.Rx]
		}
		return wifi, len(h.delivered[1])
	}
	sensorCost := func(packets int) units.Energy {
		perBit := energy.Micaz().LinkEnergyPerBit()
		bits := float64(packets) * float64((params.SensorPayload + params.SensorHeader).Bits())
		return units.Energy(bits) * perBit
	}

	bigDual, gotBig := run(500)
	if gotBig != 500 {
		t.Fatalf("bulk run delivered %d/500", gotBig)
	}
	if bigDual >= sensorCost(500) {
		t.Errorf("bulk: dual-radio cost %v not below sensor cost %v (above s*)",
			bigDual, sensorCost(500))
	}

	smallDual, gotSmall := run(10)
	if gotSmall != 10 {
		t.Fatalf("small run delivered %d/10", gotSmall)
	}
	if smallDual <= sensorCost(10) {
		t.Errorf("small: dual-radio cost %v not above sensor cost %v (below s*)",
			smallDual, sensorCost(10))
	}
}
