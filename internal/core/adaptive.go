package core

import (
	"sort"
	"time"

	"bulktx/internal/analysis"
	"bulktx/internal/radio"
	"bulktx/internal/units"
)

// Adaptive threshold control: the paper leaves "adapting s* based on
// retransmissions as future work" (Section 3). This file implements that
// extension: after every burst the agent re-estimates the expected
// transmissions per packet on both links from its MACs' counters,
// re-solves the break-even equation with those factors and updates the
// burst threshold to alpha times the new s*.

// adaptThreshold recomputes the burst threshold from observed link
// quality. Called after each completed burst when the extension is
// enabled.
func (a *Agent) adaptThreshold() {
	if !a.cfg.AdaptiveThreshold {
		return
	}
	low := a.sensor.Transceiver().Channel().Config().Profile
	high := a.wifi.Transceiver().Channel().Config().Profile

	link := analysis.DefaultLink()
	link.PayloadL, link.HeaderL = a.cfg.SensorPayload, a.cfg.SensorHeader
	link.PayloadH, link.HeaderH = a.cfg.WifiPayload, a.cfg.WifiHeader
	link.Control = a.cfg.ControlPayload
	link.RetxL = observedRetx(a.sensor.Stats().Sent, a.sensor.Stats().Retries)
	link.RetxH = observedRetx(a.wifi.Stats().Sent, a.wifi.Stats().Retries)

	model, err := analysis.NewModel(low, high, analysis.WithLink(link))
	if err != nil {
		return // profiles unusable for analysis: keep the static threshold
	}
	sStar, err := model.BreakEven()
	if err != nil {
		// The high-power radio is currently never profitable (e.g. the
		// 802.11 link is so lossy that its per-bit cost exceeds the
		// sensor radio's). Back off to the most conservative threshold:
		// the full buffer.
		a.cfg.BurstThreshold = a.cfg.BufferCap
		a.stats.ThresholdAdaptations++
		return
	}
	threshold := units.ByteSize(a.cfg.ThresholdAlpha * float64(sStar))
	threshold -= threshold % a.cfg.SensorPayload // whole packets
	if threshold < a.cfg.SensorPayload {
		threshold = a.cfg.SensorPayload
	}
	if threshold > a.cfg.BufferCap {
		threshold = a.cfg.BufferCap
	}
	if threshold != a.cfg.BurstThreshold {
		a.cfg.BurstThreshold = threshold
		a.stats.ThresholdAdaptations++
	}
}

// observedRetx converts MAC counters into an expected-transmissions
// factor: (sent + retries) / sent, clamped to [1, 8].
func observedRetx(sent, retries uint64) float64 {
	if sent == 0 {
		return 1
	}
	f := 1 + float64(retries)/float64(sent)
	if f < 1 {
		return 1
	}
	if f > 8 {
		return 8
	}
	return f
}

// Delay-bounded low-power data path: the paper closes with "Based on
// delay constraints, the low-power radio can also be allowed to send
// data. However, now, we are faced with the question: is it best to send
// immediately with the low-power radio or to buffer as much as allowed
// by the delay constraints and send with the high-power radio?" — left
// as future work. This extension implements the mechanism: packets that
// would overrun the delay bound while waiting for the threshold are
// pulled out of the buffer and sent hop-by-hop over the always-on sensor
// radio.

// startDeadlineMonitor arms the periodic age check (a quarter of the
// bound keeps worst-case overshoot at 25%).
func (a *Agent) startDeadlineMonitor() {
	if a.cfg.DelayBound <= 0 {
		return
	}
	a.deadlineTimer.Init(a.sched, a.checkDeadlines)
	a.deadlineTimer.Reset(a.deadlinePeriod())
}

func (a *Agent) deadlinePeriod() time.Duration {
	period := a.cfg.DelayBound / 4
	if period <= 0 {
		period = time.Millisecond
	}
	return period
}

// checkDeadlines walks the buffers and reroutes overdue packets over the
// low-power radio. Reroutes are paced by the sensor MAC's queue headroom
// so a large overdue backlog drains across checks instead of overflowing
// the link-layer queue in one batch (the remainder stays buffered and
// goes out on the next period).
func (a *Agent) checkDeadlines() {
	now := a.sched.Now()
	budget := a.cfg.DelayBound - a.deadlinePeriod()
	// Keep a few queue slots free for wake-up control traffic.
	const controlSlack = 8
	headroom := a.sensor.Params().QueueCap - a.sensor.QueueLen() - controlSlack
	backlog := false
	// Walk next hops in ascending order: map iteration order would vary
	// run to run, and both the reroute order into the shared sensor MAC
	// and the choice of which overdue packets wait when headroom runs
	// out must be deterministic for fixed-seed reproducibility.
	hops := make([]int, 0, len(a.buffers))
	for nh := range a.buffers {
		hops = append(hops, nh)
	}
	sort.Ints(hops)
	for _, nh := range hops {
		q := a.buffers[nh]
		kept := q.pkts[:0]
		for _, p := range q.pkts {
			if now-p.Created >= budget {
				if headroom <= 0 {
					backlog = true
					kept = append(kept, p)
					continue
				}
				a.bufferedBytes -= p.Size
				q.bytes -= p.Size
				a.stats.SensorSends++
				a.sendDataViaSensor(p)
				headroom--
				continue
			}
			kept = append(kept, p)
		}
		q.pkts = kept
	}
	// Overdue packets stuck behind a full link-layer queue: recheck as
	// soon as the queue can have drained rather than a full period later.
	period := a.deadlinePeriod()
	if backlog {
		if fast := 100 * time.Millisecond; fast < period {
			period = fast
		}
	}
	a.deadlineTimer.Reset(period)
}

// sendDataViaSensor forwards one packet over the sensor radio toward its
// destination (next mesh hop; intermediate agents relay).
func (a *Agent) sendDataViaSensor(p Packet) {
	hop, ok := a.mesh.NextHop(a.cfg.NodeID, p.Dst)
	if !ok {
		a.stats.PacketsDropped++
		a.notePacket(PacketDroppedNoRoute, p)
		return
	}
	frame := radio.Frame{
		Kind:    radio.KindData,
		Dst:     radio.NodeID(hop),
		Size:    p.Size + a.cfg.SensorHeader,
		Payload: p,
	}
	// A full sensor queue loses the packet; the delay bound was the
	// caller's priority, so no re-buffering.
	if err := a.sensor.Send(frame); err != nil {
		a.stats.PacketsLost++
		a.notePacket(PacketLost, p)
	}
}

// handleSensorData relays or delivers a low-power data packet.
func (a *Agent) handleSensorData(p Packet) {
	if p.Dst == a.cfg.NodeID {
		a.stats.PacketsDelivered++
		if a.onDeliver != nil {
			a.onDeliver(p)
		}
		return
	}
	a.stats.SensorForwards++
	a.notePacket(PacketForwarded, p)
	a.sendDataViaSensor(p)
}
