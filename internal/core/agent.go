package core

import (
	"fmt"

	"bulktx/internal/mac"
	"bulktx/internal/radio"
	"bulktx/internal/routing"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// NextHopper resolves a node's high-power next hop toward its data sink.
// *routing.Tree (a tree built over the high-power connectivity graph) and
// *routing.Learner (sensor-tree routes upgraded by shortcut learning)
// both satisfy it.
type NextHopper interface {
	NextHop(i int) (int, bool)
}

// burstObserver is implemented by NextHoppers that learn from completed
// bursts (route shortcut learning, Section 3).
type burstObserver interface {
	ObserveBurst(i int)
}

// Compile-time interface checks for the routing implementations.
var (
	_ NextHopper    = (*routing.Tree)(nil)
	_ NextHopper    = (*routing.Learner)(nil)
	_ burstObserver = (*routing.Learner)(nil)
)

// recvSession tracks one in-progress incoming burst.
type recvSession struct {
	id      uint64
	granted units.ByteSize
	total   int
	got     map[int]bool
	idle    sim.Timer
}

// Agent is one node's BCP instance, owning its two MAC layers.
type Agent struct {
	cfg   Config
	sched *sim.Scheduler

	sensor *mac.MAC
	wifi   *mac.MAC

	mesh      *routing.Mesh
	wifiRoute NextHopper
	addr      *routing.AddrMap

	// buffers holds one queue per high-power next hop. Byte totals are
	// maintained incrementally, so the threshold check on every buffered
	// packet is O(hops) instead of a rescan of the queues.
	buffers       map[int]*hopQueue
	bufferedBytes units.ByteSize

	// Sender state: one handshake/burst in flight at a time.
	sending       bool
	curTarget     int
	curID         uint64
	curBurstReq   units.ByteSize
	wakeupTries   int
	pendingFrames int
	ackTimer      sim.Timer
	retryTimer    sim.Timer

	// Receiver state, keyed by burst origin. lastDone remembers the most
	// recently completed handshake per origin so trailing duplicate
	// frames do not resurrect a session.
	recv     map[int]*recvSession
	lastDone map[int]uint64

	// High-power radio power management: reference-counted users with a
	// linger timer for delayed shutdown.
	wifiUsers   int
	wifiWaiters []func()
	lingerTimer sim.Timer

	handshakeSeq  uint64
	flushing      bool
	deadlineTimer sim.Timer
	onDeliver     func(Packet)
	onPacket      func(PacketEvent, Packet)
	stats         Stats
}

// PacketEvent classifies a per-packet provenance notification from an
// agent (see SetOnPacket). Deliveries are not among them: the onDeliver
// callback already carries those.
type PacketEvent int

// Packet provenance events.
const (
	// PacketForwarded marks a packet re-buffered (store-and-forward) or
	// relayed over the low-power radio at an intermediate node.
	PacketForwarded PacketEvent = iota + 1
	// PacketDroppedNoRoute marks a packet refused because the node has
	// no high-power next hop toward the sink.
	PacketDroppedNoRoute
	// PacketDroppedBufferFull marks a packet refused at admission by a
	// full buffer.
	PacketDroppedBufferFull
	// PacketLost marks a packet abandoned in flight (a burst frame the
	// MAC gave up on, an unreachable burst target, a full low-power
	// queue on the delay-bound path).
	PacketLost
)

// String names the event (drop events name their reason).
func (e PacketEvent) String() string {
	switch e {
	case PacketForwarded:
		return "forwarded"
	case PacketDroppedNoRoute:
		return "no-route"
	case PacketDroppedBufferFull:
		return "buffer-full"
	case PacketLost:
		return "lost"
	default:
		return fmt.Sprintf("PacketEvent(%d)", int(e))
	}
}

// SetOnPacket registers a per-packet provenance observer (nil
// disables). The trace subsystem uses it to follow packets hop by hop;
// a disabled observer costs one nil check per event site.
func (a *Agent) SetOnPacket(fn func(PacketEvent, Packet)) { a.onPacket = fn }

// notePacket reports one provenance event to the observer, if any.
func (a *Agent) notePacket(ev PacketEvent, p Packet) {
	if a.onPacket != nil {
		a.onPacket(ev, p)
	}
}

// NewAgent wires a BCP agent over its two MACs and routing state. The
// onDeliver callback fires for every packet whose destination is this
// node. The agent takes ownership of both MACs' callbacks.
func NewAgent(
	cfg Config,
	sched *sim.Scheduler,
	sensorMAC, wifiMAC *mac.MAC,
	mesh *routing.Mesh,
	wifiRoute NextHopper,
	addr *routing.AddrMap,
	onDeliver func(Packet),
) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sensorMAC == nil || wifiMAC == nil {
		return nil, fmt.Errorf("core: agent %d needs both MACs", cfg.NodeID)
	}
	if mesh == nil || wifiRoute == nil || addr == nil {
		return nil, fmt.Errorf("core: agent %d needs mesh, wifi route and address map", cfg.NodeID)
	}
	a := &Agent{
		cfg:       cfg,
		sched:     sched,
		sensor:    sensorMAC,
		wifi:      wifiMAC,
		mesh:      mesh,
		wifiRoute: wifiRoute,
		addr:      addr,
		onDeliver: onDeliver,
	}
	if pool := cfg.Pool; pool != nil {
		a.buffers = pool.getBuffers()
		a.recv = pool.getRecv()
		a.lastDone = pool.getLastDone()
		pool.agents = append(pool.agents, a)
	} else {
		a.buffers = make(map[int]*hopQueue)
		a.recv = make(map[int]*recvSession)
		a.lastDone = make(map[int]uint64)
	}
	a.ackTimer.Init(sched, a.onAckTimeout)
	a.retryTimer.Init(sched, a.maybeStart)
	a.lingerTimer.Init(sched, a.tryPowerOff)
	sensorMAC.SetOnReceive(a.handleSensorFrame)
	wifiMAC.SetOnReceive(a.handleWifiFrame)
	wifiMAC.SetOnSent(a.handleWifiSent)
	wifiMAC.SetOnDrop(a.handleWifiDrop)
	wifiMAC.Transceiver().SetOnWake(a.onWifiWake)
	a.startDeadlineMonitor()
	return a, nil
}

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() Stats { return a.stats }

// BufferedBytes returns the total data waiting across all next hops.
func (a *Agent) BufferedBytes() units.ByteSize { return a.bufferedBytes }

// Config returns the agent configuration.
func (a *Agent) Config() Config { return a.cfg }

// Buffer accepts a locally generated or forwarded packet. Packets
// destined to this node are delivered immediately; others are buffered
// toward the high-power next hop, subject to the buffer capacity.
func (a *Agent) Buffer(p Packet) {
	if p.Dst == a.cfg.NodeID {
		a.stats.PacketsDelivered++
		if a.onDeliver != nil {
			a.onDeliver(p)
		}
		return
	}
	nh, ok := a.wifiRoute.NextHop(a.cfg.NodeID)
	if !ok {
		a.stats.PacketsDropped++
		a.notePacket(PacketDroppedNoRoute, p)
		return
	}
	if a.bufferedBytes+p.Size > a.cfg.BufferCap {
		a.stats.PacketsDropped++
		a.notePacket(PacketDroppedBufferFull, p)
		return
	}
	q := a.buffers[nh]
	if q == nil {
		if a.cfg.Pool != nil {
			q = a.cfg.Pool.getHopQueue()
		} else {
			q = &hopQueue{}
		}
		a.buffers[nh] = q
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	a.bufferedBytes += p.Size
	a.stats.PacketsBuffered++
	a.maybeStart()
}

// hopQueue is the buffered backlog toward one high-power next hop.
type hopQueue struct {
	pkts  []Packet
	bytes units.ByteSize
}

// bufferedFor returns the bytes waiting for one next hop (maintained
// incrementally by Buffer and the drain paths).
func (a *Agent) bufferedFor(nh int) units.ByteSize {
	if q := a.buffers[nh]; q != nil {
		return q.bytes
	}
	return 0
}

// Flush requests transmission of all buffered data regardless of the
// burst threshold (graceful drain, e.g. at the end of a measurement run
// or before node shutdown). The agent keeps draining until its buffers
// empty, then reverts to threshold-triggered operation.
func (a *Agent) Flush() {
	a.flushing = true
	a.maybeStart()
}

// maybeStart begins a handshake when idle and some next hop has passed
// the burst threshold. Next hops are scanned in ascending order for
// determinism.
func (a *Agent) maybeStart() {
	if a.sending {
		return
	}
	threshold := a.cfg.BurstThreshold
	if a.flushing {
		if a.bufferedBytes == 0 {
			a.flushing = false
		} else {
			threshold = 1
		}
	}
	// Lowest qualifying next hop wins, for determinism (equivalent to
	// collecting and sorting, without the allocation).
	target := -1
	for nh, q := range a.buffers {
		if q.bytes >= threshold && (target < 0 || nh < target) {
			target = nh
		}
	}
	if target < 0 {
		return
	}
	a.sending = true
	a.curTarget = target
	a.handshakeSeq++
	a.curID = a.handshakeSeq
	a.curBurstReq = a.bufferedFor(a.curTarget)
	a.wakeupTries = 0
	a.stats.Handshakes++
	a.sendWakeup()
}

// sendWakeup emits (or re-emits) the wake-up message toward the current
// target over the low-power radio.
func (a *Agent) sendWakeup() {
	hop, ok := a.mesh.NextHop(a.cfg.NodeID, a.curTarget)
	if !ok {
		a.failHandshake()
		return
	}
	msg := wakeupMsg{
		ID:     a.curID,
		Origin: a.cfg.NodeID,
		Target: a.curTarget,
		Burst:  a.curBurstReq,
		Path:   []int{a.cfg.NodeID},
	}
	a.sendControl(hop, msg)
	a.ackTimer.Reset(a.cfg.AckTimeout)
}

// sendControl queues one control frame on the sensor MAC.
func (a *Agent) sendControl(dst int, payload any) {
	frame := radio.Frame{
		Kind:    radio.KindControl,
		Dst:     radio.NodeID(dst),
		Size:    a.cfg.ControlPayload + a.cfg.SensorHeader,
		Payload: payload,
	}
	// A full control queue surfaces as a lost wake-up/ack; the handshake
	// timers recover.
	_ = a.sensor.Send(frame)
}

// onAckTimeout retries or abandons the pending handshake.
func (a *Agent) onAckTimeout() {
	if !a.sending {
		return
	}
	a.wakeupTries++
	if a.wakeupTries > a.cfg.MaxWakeupRetries {
		a.failHandshake()
		return
	}
	a.stats.WakeupResends++
	a.sendWakeup()
}

// failHandshake abandons the current attempt and schedules a later retry.
func (a *Agent) failHandshake() {
	a.stats.HandshakeFailures++
	a.ackTimer.Stop()
	a.sending = false
	if a.cfg.RetryBackoff > 0 {
		a.retryTimer.Reset(a.cfg.RetryBackoff)
	}
}

// handleSensorFrame demultiplexes low-power control traffic.
func (a *Agent) handleSensorFrame(f radio.Frame) {
	switch payload := f.Payload.(type) {
	case wakeupMsg:
		a.handleWakeupMsg(payload)
	case wakeupAck:
		a.handleWakeupAck(payload)
	case Packet:
		// Data over the low-power radio: only the delay-bound extension
		// produces these.
		a.handleSensorData(payload)
	default:
		// Anything else on the sensor channel is not ours.
	}
}

// handleWakeupMsg forwards or answers a wake-up message.
func (a *Agent) handleWakeupMsg(m wakeupMsg) {
	if m.Target != a.cfg.NodeID {
		hop, ok := a.mesh.NextHop(a.cfg.NodeID, m.Target)
		if !ok {
			return
		}
		fwd := m
		fwd.Path = append(append([]int(nil), m.Path...), a.cfg.NodeID)
		a.sendControl(hop, fwd)
		return
	}
	a.receiverAdmit(m)
}

// receiverAdmit grants buffer space and acks the wake-up ("On reception
// of a wake-up message, the receiver wakes up its high-power radio and
// sends back a wake-up ack specifying the amount of data the sender can
// transmit").
func (a *Agent) receiverAdmit(m wakeupMsg) {
	if session, dup := a.recv[m.Origin]; dup {
		if session.id == m.ID {
			// Duplicate wake-up (our ack may have been lost): re-grant
			// idempotently and keep the session alive.
			a.sendAckBack(m, session.granted)
			session.idle.Reset(a.cfg.ReceiverIdleTimeout)
			return
		}
		// A newer handshake supersedes a stale session (its burst ended
		// incompletely); close it so its radio reference is released.
		a.closeSession(m.Origin)
	}
	free := a.cfg.BufferCap - a.bufferedBytes
	if free <= 0 {
		a.stats.GrantsDenied++
		return // full buffer: no ack; the sender times out
	}
	grant := m.Burst
	if grant > free {
		grant = free
		a.stats.GrantsReduced++
	}
	session := &recvSession{
		id:      m.ID,
		granted: grant,
		got:     make(map[int]bool),
	}
	session.idle.Init(a.sched, func() { a.receiverTimeout(m.Origin) })
	a.recv[m.Origin] = session
	a.acquireWifi(nil)
	a.sendAckBack(m, grant)
	session.idle.Reset(a.cfg.ReceiverIdleTimeout)
}

// sendAckBack routes a wake-up ack along the recorded reverse path.
func (a *Agent) sendAckBack(m wakeupMsg, grant units.ByteSize) {
	path := append([]int(nil), m.Path...)
	next := path[len(path)-1]
	ack := wakeupAck{
		ID:      m.ID,
		Origin:  m.Origin,
		Target:  m.Target,
		Granted: grant,
		Path:    path[:len(path)-1],
	}
	a.sendControl(next, ack)
}

// handleWakeupAck consumes or relays a returning ack.
func (a *Agent) handleWakeupAck(ack wakeupAck) {
	if ack.Origin != a.cfg.NodeID {
		if len(ack.Path) == 0 {
			return // malformed
		}
		next := ack.Path[len(ack.Path)-1]
		fwd := ack
		fwd.Path = append([]int(nil), ack.Path[:len(ack.Path)-1]...)
		a.sendControl(next, fwd)
		return
	}
	a.senderHandleAck(ack)
}

// senderHandleAck turns the high-power radio on and ships the granted
// burst.
func (a *Agent) senderHandleAck(ack wakeupAck) {
	if !a.sending || ack.ID != a.curID {
		return // stale handshake
	}
	if !a.ackTimer.Stop() {
		return // already timed out and moved on
	}
	if a.cfg.MinGrant > 0 && ack.Granted < a.cfg.MinGrant {
		// Paper extension: give up when the grant is below s*.
		a.stats.GrantsDeclined++
		a.sending = false
		if a.cfg.RetryBackoff > 0 {
			a.retryTimer.Reset(a.cfg.RetryBackoff)
		}
		return
	}
	sendBytes := ack.Granted
	if buffered := a.bufferedFor(a.curTarget); buffered < sendBytes {
		sendBytes = buffered
	}
	a.acquireWifi(func() { a.startBurst(sendBytes) })
}

// startBurst assembles buffered packets into high-power frames and hands
// them to the DCF MAC.
func (a *Agent) startBurst(sendBytes units.ByteSize) {
	if !a.sending {
		return
	}
	q := a.buffers[a.curTarget]
	var queue []Packet
	if q != nil {
		queue = q.pkts
	}
	nPackets := int(sendBytes / a.cfg.SensorPayload)
	if nPackets > len(queue) {
		nPackets = len(queue)
	}
	if nPackets == 0 {
		a.finishBurst()
		return
	}
	burst := queue[:nPackets]
	q.pkts = queue[nPackets:]
	for _, p := range burst {
		a.bufferedBytes -= p.Size
		q.bytes -= p.Size
	}

	perFrame := int(a.cfg.WifiPayload / a.cfg.SensorPayload)
	if perFrame < 1 {
		perFrame = 1
	}
	total := (nPackets + perFrame - 1) / perFrame
	highDst, ok := a.addr.High(a.curTarget)
	if !ok {
		// No high-power identity for the target: the data cannot be
		// shipped. Count the packets as lost and close out.
		a.stats.PacketsLost += uint64(nPackets)
		for _, p := range burst {
			a.notePacket(PacketLost, p)
		}
		a.finishBurst()
		return
	}
	a.pendingFrames = total
	for i := 0; i < total; i++ {
		lo, hi := i*perFrame, (i+1)*perFrame
		if hi > nPackets {
			hi = nPackets
		}
		chunk := append([]Packet(nil), burst[lo:hi]...)
		var size units.ByteSize
		for _, p := range chunk {
			size += p.Size
		}
		frame := radio.Frame{
			Kind: radio.KindData,
			Dst:  radio.NodeID(highDst),
			Size: size + a.cfg.WifiHeader,
			Payload: burstFrame{
				ID:      a.curID,
				Origin:  a.cfg.NodeID,
				Target:  a.curTarget,
				Index:   i + 1,
				Total:   total,
				Packets: chunk,
			},
		}
		if err := a.wifi.Send(frame); err != nil {
			// Queue overflow: the MAC already counted the drop; mirror the
			// packet loss here and shrink the expected completion count.
			a.stats.FramesLost++
			a.stats.PacketsLost += uint64(len(chunk))
			for _, p := range chunk {
				a.notePacket(PacketLost, p)
			}
			a.pendingFrames--
			continue
		}
		a.stats.FramesSent++
	}
	if a.pendingFrames == 0 {
		a.finishBurst()
	}
}

// handleWifiSent tracks burst completion.
func (a *Agent) handleWifiSent(f radio.Frame) {
	if _, ok := f.Payload.(burstFrame); !ok {
		return
	}
	if !a.sending || a.pendingFrames == 0 {
		return
	}
	a.pendingFrames--
	if a.pendingFrames == 0 {
		a.finishBurst()
	}
}

// handleWifiDrop accounts for frames the DCF MAC abandoned.
func (a *Agent) handleWifiDrop(f radio.Frame, _ mac.DropReason) {
	b, ok := f.Payload.(burstFrame)
	if !ok {
		return
	}
	a.stats.FramesLost++
	a.stats.PacketsLost += uint64(len(b.Packets))
	for _, p := range b.Packets {
		a.notePacket(PacketLost, p)
	}
	if !a.sending || a.pendingFrames == 0 {
		return
	}
	a.pendingFrames--
	if a.pendingFrames == 0 {
		a.finishBurst()
	}
}

// finishBurst closes the sender side of a transfer.
func (a *Agent) finishBurst() {
	a.stats.BurstsSent++
	if obs, ok := a.wifiRoute.(burstObserver); ok {
		obs.ObserveBurst(a.cfg.NodeID)
	}
	a.adaptThreshold()
	a.sending = false
	a.releaseWifi()
	a.maybeStart()
}

// handleWifiFrame fragments an incoming burst frame back into packets.
func (a *Agent) handleWifiFrame(f radio.Frame) {
	b, ok := f.Payload.(burstFrame)
	if !ok || b.Target != a.cfg.NodeID {
		return
	}
	if a.lastDone[b.Origin] == b.ID {
		return // trailing duplicate of a completed burst
	}
	session := a.recv[b.Origin]
	if session != nil && session.id != b.ID {
		// Frames for a newer handshake: the stale session is dead weight;
		// release its radio reference before admitting the new burst.
		a.closeSession(b.Origin)
		session = nil
	}
	if session == nil {
		// The session timed out (or the ack grant raced the timeout) but
		// data still arrived: admit it under a fresh implicit session so
		// the radio stays on until the burst completes.
		session = &recvSession{id: b.ID, got: make(map[int]bool)}
		session.idle.Init(a.sched, func() { a.receiverTimeout(b.Origin) })
		a.recv[b.Origin] = session
		a.acquireWifi(nil)
	}
	session.idle.Reset(a.cfg.ReceiverIdleTimeout)
	if session.total == 0 {
		session.total = b.Total
	}
	if session.got[b.Index] {
		return // duplicate frame
	}
	session.got[b.Index] = true
	for _, p := range b.Packets {
		a.acceptPacket(p)
	}
	if session.total > 0 && len(session.got) >= session.total {
		a.stats.BurstsReceived++
		a.lastDone[b.Origin] = b.ID
		a.closeSession(b.Origin)
	}
}

// acceptPacket delivers or re-buffers one fragmented packet.
func (a *Agent) acceptPacket(p Packet) {
	if p.Dst == a.cfg.NodeID {
		a.stats.PacketsDelivered++
		if a.onDeliver != nil {
			a.onDeliver(p)
		}
		return
	}
	a.stats.PacketsForwarded++
	a.notePacket(PacketForwarded, p)
	a.Buffer(p)
}

// receiverTimeout fires when an expected burst stalls.
func (a *Agent) receiverTimeout(origin int) {
	a.stats.ReceiverTimeouts++
	a.closeSession(origin)
}

// closeSession tears down a receive session and releases the radio.
func (a *Agent) closeSession(origin int) {
	session := a.recv[origin]
	if session == nil {
		return
	}
	session.idle.Stop()
	delete(a.recv, origin)
	a.releaseWifi()
}

// acquireWifi registers a radio user; ready runs once the radio is
// usable (immediately if already on).
func (a *Agent) acquireWifi(ready func()) {
	a.wifiUsers++
	a.lingerTimer.Stop()
	x := a.wifi.Transceiver()
	if x.On() {
		if ready != nil {
			ready()
		}
		return
	}
	if ready != nil {
		a.wifiWaiters = append(a.wifiWaiters, ready)
	}
	x.PowerOn()
}

// onWifiWake runs the queued radio-ready thunks.
func (a *Agent) onWifiWake() {
	waiters := a.wifiWaiters
	a.wifiWaiters = nil
	for _, fn := range waiters {
		fn()
	}
}

// releaseWifi drops a radio user and schedules shutdown when idle.
func (a *Agent) releaseWifi() {
	if a.wifiUsers > 0 {
		a.wifiUsers--
	}
	if a.wifiUsers > 0 {
		return
	}
	if a.cfg.PostBurstLinger > 0 {
		a.lingerTimer.Reset(a.cfg.PostBurstLinger)
		return
	}
	a.tryPowerOff()
}

// tryPowerOff turns the radio off once it has drained; a busy radio is
// retried shortly.
func (a *Agent) tryPowerOff() {
	if a.wifiUsers > 0 {
		return
	}
	x := a.wifi.Transceiver()
	if !x.On() && !x.Waking() {
		return
	}
	if !a.wifi.Idle() || x.Busy() {
		a.lingerTimer.Reset(a.cfg.ReceiverIdleTimeout / 10)
		return
	}
	a.wifi.Flush()
	if err := x.PowerOff(); err != nil {
		a.lingerTimer.Reset(a.cfg.ReceiverIdleTimeout / 10)
	}
}
