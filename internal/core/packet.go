// Package core implements the paper's primary contribution: the Bulk
// Communication Protocol (BCP) of Section 3.
//
// A BCP agent runs on every node of a dual-radio platform. Data packets
// are buffered per high-power next hop until the buffer passes the
// alpha-s* threshold; the agent then runs a wake-up handshake over the
// always-on low-power radio (wake-up message carrying the burst size,
// answered by a wake-up ack carrying the granted amount), turns the
// high-power radio on, ships the granted data as a bulk burst of
// high-power frames, and turns the radio back off. Receivers fragment
// bursts back into the original packets, deliver or re-buffer them
// (store-and-forward), and bound their idle time with timeouts.
package core

import (
	"fmt"

	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// Packet is the end-to-end application data unit (a sensor packet).
// Payload content is not simulated; Size carries its length.
type Packet struct {
	// Src and Dst are end-to-end node indices (low-power addresses).
	Src, Dst int
	// Seq is the source-assigned sequence number.
	Seq uint64
	// Size is the payload size (the paper uses 32 B).
	Size units.ByteSize
	// Created is the generation timestamp, used for delay metrics.
	Created sim.Time
}

// String formats the packet for logs.
func (p Packet) String() string {
	return fmt.Sprintf("pkt %d->%d seq=%d size=%v", p.Src, p.Dst, p.Seq, p.Size)
}

// wakeupMsg travels over the low-power radio from the BCP sender toward
// the high-power next hop, possibly across multiple sensor hops.
type wakeupMsg struct {
	// ID identifies the handshake attempt.
	ID uint64
	// Origin is the BCP sender (low-power address).
	Origin int
	// Target is the intended BCP receiver (low-power address).
	Target int
	// Burst is the amount of buffered data the sender wants to ship.
	Burst units.ByteSize
	// Path records the nodes traversed so far (origin first); the ack
	// retraces it backwards.
	Path []int
}

// wakeupAck returns the granted burst size along the recorded path.
type wakeupAck struct {
	// ID echoes the handshake ID.
	ID uint64
	// Origin and Target echo the handshake endpoints.
	Origin, Target int
	// Granted is the data amount the receiver admits (0 < Granted <=
	// requested burst; a full buffer yields no ack at all).
	Granted units.ByteSize
	// Path is the remaining return route (a stack; the last element is
	// the next node to visit).
	Path []int
}

// burstFrame is the payload of one high-power frame: a bulk assembly of
// original packets (paper: "Data messages are received as an assembly of
// multiple packets from the MAC layer of the high-power radio and are
// fragmented into the original packets by BCP").
type burstFrame struct {
	// ID echoes the handshake ID.
	ID uint64
	// Origin and Target are the BCP endpoints (low-power addresses).
	Origin, Target int
	// Index and Total number this frame within the burst (1-based).
	Index, Total int
	// Packets are the original sensor packets carried by this frame.
	Packets []Packet
}
