package core

import (
	"testing"
	"time"

	"bulktx/internal/params"
	"bulktx/internal/units"
)

func TestObservedRetx(t *testing.T) {
	tests := []struct {
		sent, retries uint64
		want          float64
	}{
		{0, 0, 1},
		{0, 100, 1},
		{100, 0, 1},
		{100, 50, 1.5},
		{100, 100, 2},
		{10, 1000, 8}, // clamped
	}
	for _, tt := range tests {
		if got := observedRetx(tt.sent, tt.retries); got != tt.want {
			t.Errorf("observedRetx(%d, %d) = %v, want %v",
				tt.sent, tt.retries, got, tt.want)
		}
	}
}

func TestAdaptiveThresholdConverges(t *testing.T) {
	// On clean links the adaptive threshold should settle at alpha times
	// the analytic s* regardless of a (too large) starting value.
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 100, // deliberately far from alpha*s*
		cfgMut: func(i int, c *Config) {
			c.AdaptiveThreshold = true
			c.ThresholdAlpha = 2
		},
	})
	h.generate(0, 1, 100)
	h.sched.RunUntil(time.Minute)
	st := h.agents[0].Stats()
	if st.ThresholdAdaptations == 0 {
		t.Fatal("threshold never adapted")
	}
	got := h.agents[0].Config().BurstThreshold
	// Analytic s* for Micaz/Lucent11 with our defaults is 672 B; alpha=2
	// gives 1344 B, rounded down to whole packets.
	want := units.ByteSize(1344)
	if got != want {
		t.Errorf("adapted threshold = %v, want %v (2 x s*)", got, want)
	}
}

func TestAdaptiveThresholdRisesUnderWifiLoss(t *testing.T) {
	// Heavy 802.11 loss raises the per-bit cost of the high-power path,
	// pushing the recomputed threshold up (or to the buffer cap when the
	// path stops being profitable).
	clean := adaptedThreshold(t, 0)
	lossy := adaptedThreshold(t, 0.45)
	if lossy <= clean {
		t.Errorf("threshold under 45%% wifi loss (%v) not above clean (%v)", lossy, clean)
	}
}

func adaptedThreshold(t *testing.T, wifiLoss float64) units.ByteSize {
	t.Helper()
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 50,
		wifiLoss:     wifiLoss,
		cfgMut: func(i int, c *Config) {
			c.AdaptiveThreshold = true
			c.ThresholdAlpha = 1
		},
	})
	h.generate(0, 1, 400)
	h.sched.RunUntil(5 * time.Minute)
	if st := h.agents[0].Stats(); st.BurstsSent == 0 {
		t.Fatal("no bursts completed")
	}
	return h.agents[0].Config().BurstThreshold
}

func TestDelayBoundReroutesOverdueData(t *testing.T) {
	// Threshold 100 packets but only 10 generated: without the bound the
	// packets would sit forever; with a 2 s bound they arrive over the
	// sensor radio.
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 100,
		cfgMut: func(i int, c *Config) {
			c.DelayBound = 2 * time.Second
		},
	})
	h.generate(0, 1, 10)
	h.sched.RunUntil(10 * time.Second)
	if got := len(h.delivered[1]); got != 10 {
		t.Fatalf("delivered %d/10 under delay bound", got)
	}
	st := h.agents[0].Stats()
	if st.SensorSends != 10 {
		t.Errorf("SensorSends = %d, want 10", st.SensorSends)
	}
	if st.BurstsSent != 0 {
		t.Errorf("BurstsSent = %d, want 0 (below threshold)", st.BurstsSent)
	}
	// The 802.11 radio must never have woken.
	if w := h.agents[0].wifi.Transceiver().Meter().Wakeups(); w != 0 {
		t.Errorf("wifi wakeups = %d, want 0", w)
	}
}

func TestDelayBoundRespectsDeadline(t *testing.T) {
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 100,
		cfgMut: func(i int, c *Config) {
			c.DelayBound = 2 * time.Second
		},
	})
	var deliveredAt []time.Duration
	agentDeliver := h.delivered
	_ = agentDeliver
	// Wrap: record delivery times relative to creation.
	h.agents[1].onDeliver = func(p Packet) {
		deliveredAt = append(deliveredAt, time.Duration(h.sched.Now()-p.Created))
	}
	h.generate(0, 1, 5)
	h.sched.RunUntil(30 * time.Second)
	if len(deliveredAt) != 5 {
		t.Fatalf("delivered %d/5", len(deliveredAt))
	}
	for i, d := range deliveredAt {
		// Bound 2 s, monitor period 0.5 s, plus transmission time: allow
		// 2.6 s.
		if d > 2600*time.Millisecond {
			t.Errorf("packet %d delivered after %v, bound was 2 s", i, d)
		}
	}
}

func TestDelayBoundMultiHopRelay(t *testing.T) {
	// Three nodes: overdue data from node 0 must relay through node 1's
	// sensor radio to reach node 2.
	h := newHarness(t, harnessOpts{
		nodes:        3,
		burstPackets: 100,
		cfgMut: func(i int, c *Config) {
			c.DelayBound = 2 * time.Second
		},
	})
	h.generate(0, 2, 5)
	h.sched.RunUntil(15 * time.Second)
	if got := len(h.delivered[2]); got != 5 {
		t.Fatalf("delivered %d/5 across two sensor hops", got)
	}
	if st := h.agents[1].Stats(); st.SensorForwards != 5 {
		t.Errorf("relay SensorForwards = %d, want 5", st.SensorForwards)
	}
}

func TestDelayBoundStillBulksAboveThreshold(t *testing.T) {
	// With plenty of data the threshold fires long before the bound:
	// everything still goes over the 802.11 radio.
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 10,
		cfgMut: func(i int, c *Config) {
			c.DelayBound = time.Minute
		},
	})
	h.generate(0, 1, 100)
	h.sched.RunUntil(30 * time.Second)
	st := h.agents[0].Stats()
	if st.SensorSends != 0 {
		t.Errorf("SensorSends = %d, want 0 (threshold fires first)", st.SensorSends)
	}
	if got := len(h.delivered[1]); got != 100 {
		t.Errorf("delivered %d/100", got)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	c := DefaultConfig(0, 10)
	c.AdaptiveThreshold = true
	if err := c.Validate(); err == nil {
		t.Error("adaptive without alpha accepted")
	}
	c.ThresholdAlpha = 1.5
	if err := c.Validate(); err != nil {
		t.Errorf("valid adaptive config rejected: %v", err)
	}
	c.DelayBound = -time.Second
	if err := c.Validate(); err == nil {
		t.Error("negative delay bound accepted")
	}
}

// Sanity: params referenced by the extensions stay consistent.
func TestExtensionDefaultsOff(t *testing.T) {
	c := DefaultConfig(0, 10)
	if c.AdaptiveThreshold || c.DelayBound != 0 {
		t.Error("extensions enabled by default")
	}
	_ = params.BurstSizes
}
