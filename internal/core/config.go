package core

import (
	"fmt"
	"time"

	"bulktx/internal/params"
	"bulktx/internal/units"
)

// Config parameterizes one node's BCP agent.
type Config struct {
	// NodeID is this node's index (identical low/high logical identity;
	// the address map translates radio addresses).
	NodeID int

	// BurstThreshold is alpha-s*: the buffered amount per next hop that
	// triggers the wake-up handshake.
	BurstThreshold units.ByteSize

	// BufferCap bounds the node's total data buffer (the paper uses
	// 5000 x 32 B). Packets arriving beyond it are dropped.
	BufferCap units.ByteSize

	// SensorPayload and SensorHeader describe low-power packetization.
	SensorPayload, SensorHeader units.ByteSize

	// WifiPayload and WifiHeader describe high-power packetization.
	WifiPayload, WifiHeader units.ByteSize

	// ControlPayload sizes wake-up and ack messages.
	ControlPayload units.ByteSize

	// AckTimeout bounds the wait for a wake-up ack before resending the
	// wake-up message.
	AckTimeout time.Duration

	// MaxWakeupRetries bounds wake-up resends before abandoning the
	// handshake attempt.
	MaxWakeupRetries int

	// RetryBackoff is the pause after an abandoned handshake before the
	// agent re-examines its buffers.
	RetryBackoff time.Duration

	// ReceiverIdleTimeout bounds receiver-side high-power idling between
	// burst frames ("To avoid waiting for the sender data indefinitely,
	// the receiver times out and turns its high-power radio off").
	ReceiverIdleTimeout time.Duration

	// PostBurstLinger keeps the sender radio on after its last frame,
	// modelling imperfect shutdown (Figure 4's "idle" scenario). Zero
	// turns the radio off immediately.
	PostBurstLinger time.Duration

	// MinGrant optionally implements the paper's unevaluated extension:
	// "If this data size is less than s*, the sender might give up
	// sending." When positive, grants below MinGrant abort the attempt.
	MinGrant units.ByteSize

	// AdaptiveThreshold enables the paper's stated future work: after
	// each burst the threshold is recomputed as ThresholdAlpha times the
	// break-even size solved with the *observed* retransmission factors
	// of both links.
	AdaptiveThreshold bool

	// ThresholdAlpha is the alpha multiplier applied to the recomputed
	// s* (must be positive when AdaptiveThreshold is set).
	ThresholdAlpha float64

	// DelayBound enables the paper's second stated future work: packets
	// that would exceed this age waiting for the threshold are sent
	// immediately over the low-power radio instead. Zero disables.
	DelayBound time.Duration

	// Pool, when non-nil, supplies the per-run allocator the agent draws
	// hop queues and bookkeeping maps from; the caller recycles them all
	// with Pool.Reset once the run is over. Nil means plain allocation.
	Pool *Pool
}

// DefaultConfig returns the evaluation defaults of Section 4.1 for a
// given node and burst threshold (in sensor packets).
func DefaultConfig(nodeID, burstPackets int) Config {
	return Config{
		NodeID:              nodeID,
		BurstThreshold:      units.ByteSize(burstPackets) * params.SensorPayload,
		BufferCap:           params.BufferPackets * params.SensorPayload,
		SensorPayload:       params.SensorPayload,
		SensorHeader:        params.SensorHeader,
		WifiPayload:         params.WifiPayload,
		WifiHeader:          params.WifiHeader,
		ControlPayload:      params.ControlPayload,
		AckTimeout:          params.SenderAckTimeout,
		MaxWakeupRetries:    params.WakeupMaxRetries,
		RetryBackoff:        time.Second,
		ReceiverIdleTimeout: params.ReceiverIdleTimeout,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NodeID < 0:
		return fmt.Errorf("core: negative node id %d", c.NodeID)
	case c.BurstThreshold <= 0:
		return fmt.Errorf("core: burst threshold %v must be positive", c.BurstThreshold)
	case c.BufferCap < c.BurstThreshold:
		return fmt.Errorf("core: buffer cap %v below burst threshold %v",
			c.BufferCap, c.BurstThreshold)
	case c.SensorPayload <= 0 || c.WifiPayload <= 0:
		return fmt.Errorf("core: non-positive payload sizes")
	case c.SensorHeader < 0 || c.WifiHeader < 0 || c.ControlPayload < 0:
		return fmt.Errorf("core: negative header/control sizes")
	case c.AckTimeout <= 0:
		return fmt.Errorf("core: ack timeout must be positive")
	case c.MaxWakeupRetries < 0:
		return fmt.Errorf("core: negative wakeup retries")
	case c.RetryBackoff < 0:
		return fmt.Errorf("core: negative retry backoff")
	case c.ReceiverIdleTimeout <= 0:
		return fmt.Errorf("core: receiver idle timeout must be positive")
	case c.PostBurstLinger < 0:
		return fmt.Errorf("core: negative post-burst linger")
	case c.MinGrant < 0:
		return fmt.Errorf("core: negative minimum grant")
	case c.AdaptiveThreshold && c.ThresholdAlpha <= 0:
		return fmt.Errorf("core: adaptive threshold needs positive alpha, got %v",
			c.ThresholdAlpha)
	case c.DelayBound < 0:
		return fmt.Errorf("core: negative delay bound")
	}
	return nil
}

// Stats counts protocol events at one agent.
type Stats struct {
	// PacketsBuffered counts packets accepted into the buffer.
	PacketsBuffered uint64
	// PacketsDropped counts packets rejected by a full buffer.
	PacketsDropped uint64
	// PacketsDelivered counts packets delivered locally (this node was
	// the destination).
	PacketsDelivered uint64
	// PacketsForwarded counts packets re-buffered toward the next hop.
	PacketsForwarded uint64
	// PacketsLost counts packets abandoned when the high-power MAC gave
	// up on their frame.
	PacketsLost uint64

	// Handshakes counts wake-up handshakes started.
	Handshakes uint64
	// HandshakeFailures counts handshakes abandoned after retries.
	HandshakeFailures uint64
	// WakeupResends counts wake-up message retransmissions.
	WakeupResends uint64
	// GrantsDenied counts wake-ups ignored for lack of buffer space.
	GrantsDenied uint64
	// GrantsReduced counts acks granting less than requested.
	GrantsReduced uint64
	// GrantsDeclined counts sender-side aborts under MinGrant.
	GrantsDeclined uint64

	// BurstsSent counts completed sender bursts.
	BurstsSent uint64
	// BurstsReceived counts completed receiver bursts.
	BurstsReceived uint64
	// FramesSent and FramesLost count high-power frames handed to and
	// abandoned by the MAC.
	FramesSent, FramesLost uint64
	// ReceiverTimeouts counts receiver idle-timer expiries.
	ReceiverTimeouts uint64

	// ThresholdAdaptations counts adaptive-threshold updates.
	ThresholdAdaptations uint64
	// SensorSends counts packets rerouted over the low-power radio by
	// the delay bound.
	SensorSends uint64
	// SensorForwards counts low-power data packets relayed for others.
	SensorForwards uint64
}
