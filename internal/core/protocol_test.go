package core

import (
	"testing"
	"time"

	"bulktx/internal/params"
	"bulktx/internal/radio"
	"bulktx/internal/units"
)

// White-box tests for handshake edge cases that statistical loss tests
// only reach probabilistically.

func TestDuplicateWakeupReAcksIdempotently(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	receiver := h.agents[1]

	msg := wakeupMsg{
		ID:     42,
		Origin: 0,
		Target: 1,
		Burst:  320,
		Path:   []int{0},
	}
	receiver.receiverAdmit(msg)
	if len(receiver.recv) != 1 {
		t.Fatal("no session created")
	}
	granted := receiver.recv[0].granted
	usersAfterFirst := receiver.wifiUsers

	// The duplicate (sender's retry after a lost ack) must re-grant the
	// same amount without acquiring the radio again.
	receiver.receiverAdmit(msg)
	if got := receiver.recv[0].granted; got != granted {
		t.Errorf("duplicate wakeup changed grant: %v -> %v", granted, got)
	}
	if receiver.wifiUsers != usersAfterFirst {
		t.Errorf("duplicate wakeup leaked a radio user: %d -> %d",
			usersAfterFirst, receiver.wifiUsers)
	}
}

func TestNewerHandshakeSupersedesStaleSession(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	receiver := h.agents[1]

	receiver.receiverAdmit(wakeupMsg{ID: 1, Origin: 0, Target: 1, Burst: 320, Path: []int{0}})
	if receiver.recv[0].id != 1 {
		t.Fatal("first session missing")
	}
	users := receiver.wifiUsers

	receiver.receiverAdmit(wakeupMsg{ID: 2, Origin: 0, Target: 1, Burst: 320, Path: []int{0}})
	if receiver.recv[0].id != 2 {
		t.Errorf("session id = %d, want 2 (superseded)", receiver.recv[0].id)
	}
	// The stale session's radio reference was released, the new one
	// acquired: net zero.
	if receiver.wifiUsers != users {
		t.Errorf("radio users leaked across supersession: %d -> %d",
			users, receiver.wifiUsers)
	}
}

func TestStaleAckIgnored(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	sender := h.agents[0]
	h.generate(0, 1, 10) // starts handshake (curID = 1)
	if !sender.sending {
		t.Fatal("handshake not started")
	}
	// An ack for a different handshake must be ignored.
	sender.senderHandleAck(wakeupAck{ID: 99, Origin: 0, Target: 1, Granted: 320})
	if !sender.sending {
		t.Error("stale ack terminated the live handshake")
	}
	if sender.wifiUsers != 0 {
		t.Error("stale ack acquired the radio")
	}
}

func TestMalformedAckPathDropped(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 3, burstPackets: 10})
	relay := h.agents[1]
	// An ack in transit with an exhausted path at a non-origin node is
	// malformed; it must be dropped without panic.
	relay.handleWakeupAck(wakeupAck{ID: 1, Origin: 0, Target: 2, Granted: 320, Path: nil})
}

func TestReceiverTimeoutReleasesRadio(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	receiver := h.agents[1]
	receiver.receiverAdmit(wakeupMsg{ID: 7, Origin: 0, Target: 1, Burst: 320, Path: []int{0}})
	if receiver.wifiUsers != 1 {
		t.Fatalf("wifiUsers = %d after admit", receiver.wifiUsers)
	}
	// No data ever arrives: the idle timer must fire and release.
	h.sched.RunUntil(5 * time.Second)
	if receiver.wifiUsers != 0 {
		t.Errorf("wifiUsers = %d after timeout, want 0", receiver.wifiUsers)
	}
	if st := receiver.Stats(); st.ReceiverTimeouts != 1 {
		t.Errorf("ReceiverTimeouts = %d, want 1", st.ReceiverTimeouts)
	}
	if x := receiver.wifi.Transceiver(); x.On() || x.Waking() {
		t.Error("radio still on after timeout")
	}
}

func TestZeroGrantWhenFullNoAck(t *testing.T) {
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 10,
		cfgMut: func(i int, c *Config) {
			c.BufferCap = 10 * params.SensorPayload
		},
	})
	receiver := h.agents[1]
	// Fill the receiver's buffer by hand (packets not destined to it).
	q := &hopQueue{}
	receiver.buffers[0] = q
	for i := 0; i < 10; i++ {
		q.pkts = append(q.pkts,
			Packet{Src: 1, Dst: 0, Seq: uint64(i), Size: params.SensorPayload})
		q.bytes += params.SensorPayload
		receiver.bufferedBytes += params.SensorPayload
	}
	receiver.receiverAdmit(wakeupMsg{ID: 3, Origin: 0, Target: 1, Burst: 320, Path: []int{0}})
	if len(receiver.recv) != 0 {
		t.Error("full receiver created a session")
	}
	if st := receiver.Stats(); st.GrantsDenied != 1 {
		t.Errorf("GrantsDenied = %d, want 1", st.GrantsDenied)
	}
	if receiver.wifiUsers != 0 {
		t.Error("denied grant acquired the radio")
	}
}

func TestBurstFrameForAnotherTargetIgnored(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 3, burstPackets: 10})
	bystander := h.agents[1]
	before := bystander.Stats()
	bystander.handleWifiFrame(wifiDataFrame(t, burstFrame{
		ID: 1, Origin: 0, Target: 2, Index: 1, Total: 1,
		Packets: []Packet{{Src: 0, Dst: 2, Seq: 1, Size: 32}},
	}))
	after := bystander.Stats()
	if after.PacketsDelivered != before.PacketsDelivered ||
		after.PacketsForwarded != before.PacketsForwarded {
		t.Error("bystander consumed a frame addressed to another target")
	}
}

func TestDuplicateBurstFrameCountedOnce(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	receiver := h.agents[1]
	receiver.receiverAdmit(wakeupMsg{ID: 5, Origin: 0, Target: 1, Burst: 64, Path: []int{0}})
	frame := burstFrame{
		ID: 5, Origin: 0, Target: 1, Index: 1, Total: 2,
		Packets: []Packet{{Src: 0, Dst: 1, Seq: 1, Size: 32}},
	}
	receiver.handleWifiFrame(wifiDataFrame(t, frame))
	receiver.handleWifiFrame(wifiDataFrame(t, frame)) // duplicate
	if st := receiver.Stats(); st.PacketsDelivered != 1 {
		t.Errorf("PacketsDelivered = %d, want 1 (duplicate suppressed)", st.PacketsDelivered)
	}
	// Session still open (frame 2 of 2 missing).
	if len(receiver.recv) != 1 {
		t.Error("session closed on duplicate")
	}
}

func TestTrailingDuplicateAfterCompletionIgnored(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	receiver := h.agents[1]
	receiver.receiverAdmit(wakeupMsg{ID: 6, Origin: 0, Target: 1, Burst: 32, Path: []int{0}})
	frame := burstFrame{
		ID: 6, Origin: 0, Target: 1, Index: 1, Total: 1,
		Packets: []Packet{{Src: 0, Dst: 1, Seq: 1, Size: 32}},
	}
	receiver.handleWifiFrame(wifiDataFrame(t, frame))
	if len(receiver.recv) != 0 {
		t.Fatal("session not closed on completion")
	}
	users := receiver.wifiUsers
	receiver.handleWifiFrame(wifiDataFrame(t, frame)) // trailing duplicate
	if len(receiver.recv) != 0 {
		t.Error("trailing duplicate resurrected the session")
	}
	if receiver.wifiUsers != users {
		t.Error("trailing duplicate changed radio users")
	}
}

func wifiDataFrame(t *testing.T, b burstFrame) (f frameAlias) {
	t.Helper()
	var size units.ByteSize
	for _, p := range b.Packets {
		size += p.Size
	}
	return frameAlias{
		Kind:    frameKindData,
		Dst:     frameNodeID(b.Target),
		Size:    size + params.WifiHeader,
		Payload: b,
	}
}

// Aliases keep the frame-construction helper readable.
type frameAlias = radio.Frame

const frameKindData = radio.KindData

func frameNodeID(i int) radio.NodeID { return radio.NodeID(i) }
