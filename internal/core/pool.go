package core

// Pool recycles the per-run allocations of BCP agents across repeated
// simulations: hop-queue entries (with their packet backing arrays —
// Packet is pointer-free, so retained capacity holds nothing alive) and
// the per-agent bookkeeping maps. Agents built with a Config carrying
// the pool register themselves; Reset harvests their storage once the
// run owning them is finished. Not safe for concurrent use; sweep
// workers each own one.
type Pool struct {
	hopQueues []*hopQueue
	buffers   []map[int]*hopQueue
	recvs     []map[int]*recvSession
	dones     []map[int]uint64
	agents    []*Agent
}

// getHopQueue hands out a recycled (emptied) hop queue.
func (p *Pool) getHopQueue() *hopQueue {
	if n := len(p.hopQueues); n > 0 {
		q := p.hopQueues[n-1]
		p.hopQueues = p.hopQueues[:n-1]
		return q
	}
	return &hopQueue{}
}

// getBuffers hands out a recycled (cleared) next-hop buffer map.
func (p *Pool) getBuffers() map[int]*hopQueue {
	if n := len(p.buffers); n > 0 {
		m := p.buffers[n-1]
		p.buffers = p.buffers[:n-1]
		return m
	}
	return make(map[int]*hopQueue)
}

// getRecv hands out a recycled (cleared) receive-session map.
func (p *Pool) getRecv() map[int]*recvSession {
	if n := len(p.recvs); n > 0 {
		m := p.recvs[n-1]
		p.recvs = p.recvs[:n-1]
		return m
	}
	return make(map[int]*recvSession)
}

// getLastDone hands out a recycled (cleared) completed-handshake map.
func (p *Pool) getLastDone() map[int]uint64 {
	if n := len(p.dones); n > 0 {
		m := p.dones[n-1]
		p.dones = p.dones[:n-1]
		return m
	}
	return make(map[int]uint64)
}

// Reset reclaims the storage of every agent built from the pool since
// the previous reset. Hop queues are emptied but keep their packet
// capacity; maps are cleared and kept. Receive sessions are dropped
// (they carry timers bound to the finished run's scheduler). Callers
// must not touch the harvested agents afterwards.
func (p *Pool) Reset() {
	for _, a := range p.agents {
		for nh, q := range a.buffers {
			q.pkts = q.pkts[:0]
			q.bytes = 0
			p.hopQueues = append(p.hopQueues, q)
			delete(a.buffers, nh)
		}
		p.buffers = append(p.buffers, a.buffers)
		clear(a.recv)
		p.recvs = append(p.recvs, a.recv)
		clear(a.lastDone)
		p.dones = append(p.dones, a.lastDone)
		a.buffers, a.recv, a.lastDone = nil, nil, nil
	}
	p.agents = p.agents[:0]
}
