package core

import (
	"testing"
	"time"

	"bulktx/internal/radio"
	"bulktx/internal/routing"
)

func TestFlushDrainsBelowThreshold(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 100})
	h.generate(0, 1, 7) // far below threshold
	h.sched.RunUntil(time.Second)
	if len(h.delivered[1]) != 0 {
		t.Fatal("delivered before flush")
	}
	h.agents[0].Flush()
	h.sched.RunUntil(30 * time.Second)
	if got := len(h.delivered[1]); got != 7 {
		t.Errorf("flush delivered %d/7", got)
	}
	if got := h.agents[0].BufferedBytes(); got != 0 {
		t.Errorf("buffer not drained: %v", got)
	}
}

func TestFlushEmptyBufferNoop(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 100})
	h.agents[0].Flush()
	h.sched.RunUntil(5 * time.Second)
	if st := h.agents[0].Stats(); st.Handshakes != 0 {
		t.Errorf("flush of empty buffer started %d handshakes", st.Handshakes)
	}
}

func TestFlushRevertsToThresholdMode(t *testing.T) {
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 100})
	h.generate(0, 1, 5)
	h.agents[0].Flush()
	h.sched.RunUntil(30 * time.Second)
	if got := len(h.delivered[1]); got != 5 {
		t.Fatalf("flush delivered %d/5", got)
	}
	// New sub-threshold data must sit buffered again (flushing cleared).
	h.generate(0, 1, 5)
	h.sched.RunUntil(60 * time.Second)
	if got := len(h.delivered[1]); got != 5 {
		t.Errorf("post-flush data sent below threshold: delivered %d", got)
	}
	if got := h.agents[0].BufferedBytes(); got != 5*32 {
		t.Errorf("post-flush buffer = %v, want 160 B", got)
	}
}

func TestWifiFrameLossAccounting(t *testing.T) {
	// Heavy wifi loss forces MAC retry exhaustion on some burst frames:
	// the agent must count the losses and still terminate its bursts.
	h := newHarness(t, harnessOpts{
		nodes:        2,
		burstPackets: 100,
		wifiLoss:     0.6,
	})
	h.generate(0, 1, 400)
	h.sched.RunUntil(5 * time.Minute)
	st := h.agents[0].Stats()
	if st.FramesLost == 0 {
		t.Skip("no frames lost at this seed despite 60% loss (unlikely)")
	}
	if st.PacketsLost == 0 {
		t.Error("frames lost but no packets counted lost")
	}
	// All bursts must have terminated (no stuck sender).
	if st.BurstsSent != st.Handshakes {
		t.Errorf("bursts %d != handshakes %d: a burst never finished",
			st.BurstsSent, st.Handshakes)
	}
	// Conservation: PacketsLost is sender-side pessimism — when only the
	// MAC acks die, the data still arrives, so delivered + lost can
	// exceed generated. The two valid bounds:
	delivered := uint64(len(h.delivered[1]))
	buffered := uint64(h.agents[0].BufferedBytes() / 32)
	if delivered+buffered+st.PacketsDropped > 400 {
		t.Errorf("over-delivery: %d delivered + %d buffered + %d dropped > 400",
			delivered, buffered, st.PacketsDropped)
	}
	if delivered+buffered+st.PacketsDropped+st.PacketsLost < 400 {
		t.Errorf("unaccounted packets: %d delivered + %d buffered + %d dropped + %d lost < 400",
			delivered, buffered, st.PacketsDropped, st.PacketsLost)
	}
	// The radios must end up off.
	if h.agents[0].wifi.Transceiver().On() || h.agents[1].wifi.Transceiver().On() {
		t.Error("a wifi radio is still on after the run")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, Seq: 3, Size: 32}
	if got := p.String(); got != "pkt 1->2 seq=3 size=32 B" {
		t.Errorf("String() = %q", got)
	}
}

func TestHandshakeToUnroutableTarget(t *testing.T) {
	// An agent whose wifi next hop is outside the address map must count
	// the packets lost rather than wedge.
	h := newHarness(t, harnessOpts{nodes: 2, burstPackets: 10})
	// Replace the address map with an empty one after construction.
	h.agents[0].addr = mustAddrMap(t)
	h.generate(0, 1, 10)
	h.sched.RunUntil(30 * time.Second)
	st := h.agents[0].Stats()
	if st.PacketsLost != 10 {
		t.Errorf("PacketsLost = %d, want 10 (unroutable)", st.PacketsLost)
	}
	if h.agents[0].wifi.Transceiver().On() {
		t.Error("wifi radio left on after unroutable burst")
	}
}

func mustAddrMap(t *testing.T) *addrMapAlias {
	t.Helper()
	m, err := newEmptyAddrMap()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type addrMapAlias = routing.AddrMap

func newEmptyAddrMap() (*routing.AddrMap, error) {
	return routing.NewAddrMap(nil)
}

var _ = radio.Frame{} // keep the import when tests above change
