package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"bulktx/internal/netsim"
)

// ScalingNodes is the canonical node-count sweep for the big-topology
// scaling benchmark; BENCH_PR6.json commits one ScalingPoint per entry.
var ScalingNodes = []int{1000, 5000, 10000, 50000, 100000}

// ScalingDuration is the simulated horizon of each scaling run. Two
// seconds keeps even the 100k-node point in single-digit wall seconds
// while still processing enough events for a stable events/s figure.
const ScalingDuration = 2 * time.Second

// ScalingPoint records one node count of the scaling sweep. Events is
// fully deterministic in (Nodes, duration) — the comparison gate holds
// it to exact equality — while the wall-clock and allocation figures
// are machine-dependent and gate only within a regression threshold.
type ScalingPoint struct {
	// Nodes is the grid size of this point.
	Nodes int `json:"nodes"`
	// BuildNs is the wall time of NewScalingScenario: topology layout,
	// spatial-hash construction and the connectivity check.
	BuildNs int64 `json:"build_ns"`
	// RunNs is the wall time of RunScenario.
	RunNs int64 `json:"run_ns"`
	// Events counts scheduler events processed (deterministic).
	Events uint64 `json:"events"`
	// EventsPerSec is Events divided by the run wall time.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocBytesPerNode is total heap allocation across build and run
	// divided by Nodes — the figure the pooled per-run allocators are
	// meant to hold flat as N grows.
	AllocBytesPerNode float64 `json:"alloc_bytes_per_node"`
}

// MeasureScaling builds and runs the canonical scaling scenario at one
// node count and reports the point.
func MeasureScaling(nodes int, duration time.Duration) (ScalingPoint, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	s, err := netsim.NewScalingScenario(nodes, duration)
	if err != nil {
		return ScalingPoint{}, err
	}
	buildNs := time.Since(start).Nanoseconds()
	start = time.Now()
	res, err := netsim.RunScenario(s)
	if err != nil {
		return ScalingPoint{}, err
	}
	runNs := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	p := ScalingPoint{
		Nodes:             nodes,
		BuildNs:           buildNs,
		RunNs:             runNs,
		Events:            res.Events,
		AllocBytesPerNode: float64(after.TotalAlloc-before.TotalAlloc) / float64(nodes),
	}
	if runNs > 0 {
		p.EventsPerSec = float64(res.Events) / (float64(runNs) / 1e9)
	}
	return p, nil
}

// ScalingCurve sweeps MeasureScaling over the given node counts,
// logging one progress line per point to w (pass io.Discard to
// silence).
func ScalingCurve(w io.Writer, nodeCounts []int, duration time.Duration) ([]ScalingPoint, error) {
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("bench: empty scaling node list")
	}
	points := make([]ScalingPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		fmt.Fprintf(w, "scaling N=%d...\n", n)
		p, err := MeasureScaling(n, duration)
		if err != nil {
			return nil, fmt.Errorf("bench: scaling N=%d: %w", n, err)
		}
		fmt.Fprintf(w, "  build %.2fs  run %.2fs  %d events  %.0f events/s  %.0f B/node\n",
			float64(p.BuildNs)/1e9, float64(p.RunNs)/1e9, p.Events, p.EventsPerSec, p.AllocBytesPerNode)
		points = append(points, p)
	}
	return points, nil
}

// CompareScaling gates a fresh scaling sweep against a committed
// baseline curve. Event counts are deterministic and must match
// exactly per node count (any drift means simulation behavior changed,
// which belongs in a fingerprint-reviewed PR, not a perf run);
// events/s goes through the shared Compare gate with maxRegress.
// Build time and bytes/node are reported in the curve but not gated —
// both are too machine-sensitive to hold to a threshold in CI.
func CompareScaling(w io.Writer, baseline, current []ScalingPoint, maxRegress float64) error {
	if len(baseline) == 0 {
		return fmt.Errorf("bench: empty baseline scaling curve")
	}
	base := make(map[int]ScalingPoint, len(baseline))
	for _, p := range baseline {
		base[p.Nodes] = p
	}
	var metrics []Metric
	for _, p := range current {
		b, ok := base[p.Nodes]
		if !ok {
			return fmt.Errorf("bench: baseline has no N=%d point (regenerate it)", p.Nodes)
		}
		if p.Events != b.Events {
			return fmt.Errorf("bench: N=%d processed %d events, baseline %d — the run is no longer equivalent; regenerate the baseline only alongside a fingerprint review",
				p.Nodes, p.Events, b.Events)
		}
		metrics = append(metrics, Metric{
			Name:           fmt.Sprintf("scaling N=%d events/s", p.Nodes),
			Baseline:       b.EventsPerSec,
			Current:        p.EventsPerSec,
			HigherIsBetter: true,
		})
	}
	return Compare(w, metrics, maxRegress)
}
