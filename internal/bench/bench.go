// Package bench hosts the repository's core benchmark bodies in one
// place, so the in-tree `go test -bench` benchmarks, the cmd/bcp-bench
// baseline emitter (BENCH_PR*.json) and CI's bench smoke all measure
// the identical workloads — a baseline cannot silently drift from what
// the test benchmarks run.
package bench

import (
	"testing"
	"time"

	"bulktx"
	"bulktx/internal/sim"
)

// ScheduleRun measures raw event throughput: schedule + execute.
func ScheduleRun(b *testing.B) {
	s := sim.NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// ScheduleCancel measures the cancel path (lazy handle retire).
func ScheduleCancel(b *testing.B) {
	s := sim.NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		s.Cancel(id)
	}
}

// TimerReset measures the protocol-timer rearm pattern.
func TimerReset(b *testing.B) {
	s := sim.NewScheduler(1)
	tm := sim.NewTimer(s, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond)
	}
	tm.Stop()
}

// SimulationThroughput measures raw simulator speed: events per second
// on one dual-radio run (15 senders, burst 100, 2 Kbps).
func SimulationThroughput(b *testing.B) {
	cfg := bulktx.NewSimConfig(bulktx.ModelDual, 15, 100, 1)
	cfg.Duration = 60 * time.Second
	cfg.Rate = 2 * bulktx.Kbps
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := bulktx.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
