package bench

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateMaxRegress(t *testing.T) {
	for _, v := range []float64{0, 0.25, 0.999} {
		if err := ValidateMaxRegress(v); err != nil {
			t.Errorf("ValidateMaxRegress(%v) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{-0.01, 1, 1.5} {
		if err := ValidateMaxRegress(v); err == nil {
			t.Errorf("ValidateMaxRegress(%v) = nil, want error", v)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name       string
		metrics    []Metric
		maxRegress float64
		wantErr    string // substring; empty means the gate must pass
	}{
		{
			name:    "no metrics",
			wantErr: "no metrics",
		},
		{
			name:       "bad threshold",
			metrics:    []Metric{{Name: "m", Baseline: 1, Current: 1, HigherIsBetter: true}},
			maxRegress: 1.0,
			wantErr:    "outside [0, 1)",
		},
		{
			name:    "zero baseline fails outright",
			metrics: []Metric{{Name: "m", Baseline: 0, Current: 5, HigherIsBetter: true}},
			wantErr: "baseline value 0 is not positive",
		},
		{
			name:    "zero measurement fails outright",
			metrics: []Metric{{Name: "m", Baseline: 5, Current: 0, HigherIsBetter: true}},
			wantErr: "measured value 0 is not positive",
		},
		{
			// Exactly at the threshold passes: the gate fails only
			// strictly beyond the allowed fraction.
			name:       "regression exactly at threshold",
			metrics:    []Metric{{Name: "m", Baseline: 100, Current: 75, HigherIsBetter: true}},
			maxRegress: 0.25,
		},
		{
			name:       "regression just beyond threshold",
			metrics:    []Metric{{Name: "m", Baseline: 100, Current: 74.9, HigherIsBetter: true}},
			maxRegress: 0.25,
			wantErr:    "regression gate failed",
		},
		{
			name:       "improvement passes",
			metrics:    []Metric{{Name: "m", Baseline: 100, Current: 250, HigherIsBetter: true}},
			maxRegress: 0.25,
		},
		{
			// Latency-like metrics regress upward.
			name:       "lower-is-better regression",
			metrics:    []Metric{{Name: "lat", Baseline: 100, Current: 130, HigherIsBetter: false}},
			maxRegress: 0.25,
			wantErr:    "regression gate failed",
		},
		{
			name:       "lower-is-better exactly at threshold",
			metrics:    []Metric{{Name: "lat", Baseline: 100, Current: 125, HigherIsBetter: false}},
			maxRegress: 0.25,
		},
		{
			// Every failing metric is named, not just the first.
			name: "multiple failures aggregate",
			metrics: []Metric{
				{Name: "a", Baseline: 100, Current: 10, HigherIsBetter: true},
				{Name: "b", Baseline: 100, Current: 99, HigherIsBetter: true},
				{Name: "c", Baseline: 100, Current: 900, HigherIsBetter: false},
			},
			maxRegress: 0.25,
			wantErr:    "a regressed",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Compare(io.Discard, c.metrics, c.maxRegress)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Compare = %v, want pass", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Compare = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestCompareAggregatesEveryFailure(t *testing.T) {
	err := Compare(io.Discard, []Metric{
		{Name: "a", Baseline: 100, Current: 10, HigherIsBetter: true},
		{Name: "b", Baseline: 100, Current: 10, HigherIsBetter: true},
	}, 0.25)
	if err == nil {
		t.Fatal("want failure")
	}
	for _, name := range []string{"a regressed", "b regressed"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("failure message %q is missing %q", err, name)
		}
	}
}

func TestLoadBaseline(t *testing.T) {
	type doc struct {
		// Value is the only known field of the test schema.
		Value float64 `json:"value"`
	}
	write := func(t *testing.T, content string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	t.Run("missing file", func(t *testing.T) {
		var d doc
		err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"), &d)
		if err == nil || !strings.Contains(err.Error(), "reading baseline") {
			t.Fatalf("got %v, want reading-baseline error", err)
		}
	})
	t.Run("malformed JSON", func(t *testing.T) {
		var d doc
		err := LoadBaseline(write(t, `{"value": `), &d)
		if err == nil || !strings.Contains(err.Error(), "parsing baseline") {
			t.Fatalf("got %v, want parsing-baseline error", err)
		}
	})
	t.Run("unknown fields rejected", func(t *testing.T) {
		// A baseline from a different schema must fail loudly instead
		// of decoding to zeros and gating against garbage.
		var d doc
		err := LoadBaseline(write(t, `{"value": 1, "stray": 2}`), &d)
		if err == nil || !strings.Contains(err.Error(), "stray") {
			t.Fatalf("got %v, want unknown-field error", err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		var d doc
		if err := LoadBaseline(write(t, `{"value": 42.5}`), &d); err != nil {
			t.Fatal(err)
		}
		if d.Value != 42.5 {
			t.Errorf("value = %v, want 42.5", d.Value)
		}
	})
}
