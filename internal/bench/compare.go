package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Metric is one measurement under a -compare regression gate: the
// committed baseline value against the value just measured. Direction
// matters — throughput regresses downward, latency upward — so each
// metric declares which way is better.
type Metric struct {
	// Name labels the metric in gate output and failure messages.
	Name string
	// Baseline is the committed value; Current is the fresh measurement.
	Baseline, Current float64
	// HigherIsBetter selects the regression direction: true gates
	// Current falling below Baseline (throughput-like), false gates it
	// rising above (latency-like).
	HigherIsBetter bool
}

// ValidateMaxRegress rejects gate thresholds outside [0, 1): the
// allowed regression is a fraction of the baseline, so 1 or more would
// accept any value and a negative threshold rejects even perfect runs.
func ValidateMaxRegress(maxRegress float64) error {
	if maxRegress < 0 || maxRegress >= 1 {
		return fmt.Errorf("max-regress %v outside [0, 1)", maxRegress)
	}
	return nil
}

// Compare gates the metrics against maxRegress, printing one line per
// metric to w, and returns an error naming every metric that regressed
// beyond the threshold. Wall-clock metrics are machine-dependent, so
// the gate is only as sound as the baseline's provenance: regenerate
// baselines on the runner class that enforces the gate, and widen the
// threshold rather than deleting the gate when hardware is
// heterogeneous.
//
// A metric whose baseline or current value is not positive fails the
// gate outright: a zero baseline means the committed file predates the
// metric (regenerate it), and a zero measurement means the run never
// produced it — both are gate misconfigurations, not regressions.
func Compare(w io.Writer, metrics []Metric, maxRegress float64) error {
	if err := ValidateMaxRegress(maxRegress); err != nil {
		return err
	}
	if len(metrics) == 0 {
		return fmt.Errorf("no metrics to compare")
	}
	var failures []string
	for _, m := range metrics {
		if m.Baseline <= 0 {
			failures = append(failures, fmt.Sprintf("%s: baseline value %g is not positive (regenerate the baseline)", m.Name, m.Baseline))
			continue
		}
		if m.Current <= 0 {
			failures = append(failures, fmt.Sprintf("%s: measured value %g is not positive", m.Name, m.Current))
			continue
		}
		change := m.Current/m.Baseline - 1
		fmt.Fprintf(w, "%s: %g vs baseline %g (%+.1f%%)\n", m.Name, m.Current, m.Baseline, change*100)
		if m.HigherIsBetter {
			if m.Current < m.Baseline*(1-maxRegress) {
				failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%): %g vs baseline %g",
					m.Name, -change*100, maxRegress*100, m.Current, m.Baseline))
			}
		} else if m.Current > m.Baseline*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%): %g vs baseline %g",
				m.Name, change*100, maxRegress*100, m.Current, m.Baseline))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// LoadBaseline reads a committed baseline JSON file into v, rejecting
// unknown fields so a baseline from a different schema (or a stray
// file) fails loudly instead of gating against zeros.
func LoadBaseline(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return nil
}
