package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// exportCell is the stable JSON shape of one summarized grid point.
type exportCell struct {
	Model   string `json:"model"`
	Senders int    `json:"senders"`
	Burst   int    `json:"burst_packets"`
	Traffic string `json:"traffic"`
	// Topology and ChurnRate are the scenario axes. In JSON they are
	// omitted for default-scenario cells (pre-redesign exports keep
	// their shape); in CSV they append as trailing columns so legacy
	// positional consumers are unaffected.
	Topology  string  `json:"topology,omitempty"`
	ChurnRate float64 `json:"churn_rate,omitempty"`
	Runs      int     `json:"runs"`

	Goodput       float64 `json:"goodput"`
	GoodputCI     float64 `json:"goodput_ci95"`
	NormEnergy    float64 `json:"norm_energy_j_per_kbit"`
	NormEnergyCI  float64 `json:"norm_energy_ci95"`
	IdealEnergy   float64 `json:"ideal_energy_j_per_kbit"`
	IdealEnergyCI float64 `json:"ideal_energy_ci95"`
	MeanDelayS    float64 `json:"mean_delay_s"`
}

func toExportCell(c CellSummary) exportCell {
	return exportCell{
		Model:         c.Point.Model.String(),
		Senders:       c.Point.Senders,
		Burst:         c.Point.Burst,
		Traffic:       c.Point.Traffic.String(),
		Topology:      c.Point.Topology,
		ChurnRate:     c.Point.Churn,
		Runs:          c.Runs,
		Goodput:       c.Goodput.Mean,
		GoodputCI:     c.Goodput.CI95,
		NormEnergy:    c.NormEnergy.Mean,
		NormEnergyCI:  c.NormEnergy.CI95,
		IdealEnergy:   c.IdealEnergy.Mean,
		IdealEnergyCI: c.IdealEnergy.CI95,
		MeanDelayS:    c.MeanDelay.Seconds(),
	}
}

// WriteJSON exports the outcome's per-cell summaries as an indented
// JSON document: {"cells": [...], "jobs": N, "cached": M}.
func WriteJSON(w io.Writer, o *Outcome) error {
	doc := struct {
		Jobs   int          `json:"jobs"`
		Cached int          `json:"cached"`
		Cells  []exportCell `json:"cells"`
		// Failed and Errors surface quarantined jobs of a partial
		// sweep; both are omitted for fully successful outcomes, so
		// the document shape (and byte-identity) of clean sweeps is
		// unchanged.
		Failed int           `json:"failed,omitempty"`
		Errors []exportError `json:"errors,omitempty"`
	}{Jobs: len(o.Jobs), Cached: o.Cached, Cells: []exportCell{}}
	for _, c := range o.Cells() {
		doc.Cells = append(doc.Cells, toExportCell(c))
	}
	doc.Failed = len(o.Errors)
	for _, ce := range o.Errors {
		doc.Errors = append(doc.Errors, exportError{
			Index: ce.Index, Point: ce.Point.String(), Rep: ce.Rep,
			Attempts: ce.Attempts, Error: ce.Err.Error(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// exportError is the stable JSON shape of one quarantined job.
type exportError struct {
	// Index is the job's position in the sweep's job list.
	Index int `json:"index"`
	// Point and Rep identify the cell within the grid.
	Point string `json:"point"`
	// Rep is the seeded repetition index within the point.
	Rep int `json:"rep"`
	// Attempts is how many executions the cell got before quarantine.
	Attempts int `json:"attempts"`
	// Error is the cell's final failure.
	Error string `json:"error"`
}

// csvHeader is the fixed column order of WriteCSV.
var csvHeader = []string{
	"model", "senders", "burst_packets", "traffic", "runs",
	"goodput", "goodput_ci95",
	"norm_energy_j_per_kbit", "norm_energy_ci95",
	"ideal_energy_j_per_kbit", "ideal_energy_ci95",
	"mean_delay_s",
	// The scenario axes append after every legacy column so positional
	// consumers of pre-redesign CSVs keep reading the same fields.
	"topology", "churn_rate",
}

// WriteCSV exports the outcome's per-cell summaries as CSV, one row
// per grid point, with a header row.
func WriteCSV(w io.Writer, o *Outcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("sweep: csv export: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, cell := range o.Cells() {
		e := toExportCell(cell)
		row := []string{
			e.Model, strconv.Itoa(e.Senders), strconv.Itoa(e.Burst),
			e.Traffic, strconv.Itoa(e.Runs),
			f(e.Goodput), f(e.GoodputCI),
			f(e.NormEnergy), f(e.NormEnergyCI),
			f(e.IdealEnergy), f(e.IdealEnergyCI),
			f(e.MeanDelayS),
			e.Topology, f(e.ChurnRate),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sweep: csv export: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: csv export: %w", err)
	}
	return nil
}
