// Package sweep orchestrates grids of seeded network-simulation runs —
// the shape of every evaluation in the paper (Section 4.1: senders x
// burst sizes x models x 20 seeds) and of the ablations around it.
//
// A Spec declares the grid as axes over a base netsim.Config template.
// Spec.Jobs compiles it into a flat, deterministically ordered and
// seeded job list; a Pool executes jobs on a fixed-size worker pool
// (default runtime.NumCPU) and returns results indexed by job, so
// parallel output is byte-identical to serial execution of the same
// list. An optional Cache (in-memory, optionally backed by an on-disk
// directory) keys results by a hash of the full run configuration, so
// re-running an overlapping sweep only simulates the new points.
// Outcome groups results back per grid point, summarizes them
// (mean / 95% CI over seeds) and exports JSON, CSV or metrics.Table.
package sweep

import (
	"fmt"

	"bulktx/internal/netsim"
)

// Point identifies one cell of a sweep grid: the axis coordinates
// shared by all of the cell's seeded repetitions. Burst is 0 for
// non-dual models (the threshold axis collapses: it has no effect on
// the baseline models). Topology and Churn are the scenario axes;
// their zero values ("" and 0) are the default grid-without-churn
// scenario, so legacy points compare (and cache) exactly as before.
type Point struct {
	// Model selects sensor / 802.11 / dual-radio.
	Model netsim.Model
	// Senders is the cell's CBR sender count.
	Senders int
	// Burst is the dual model's alpha-s* threshold in sensor packets.
	Burst int
	// Traffic is the arrival process of the cell's senders.
	Traffic netsim.Traffic

	// Topology is the layout family ("" = the default grid; see
	// netsim.TopologyKinds).
	Topology string
	// Churn is the failure rate in expected failures per node-hour
	// (0 = no churn).
	Churn float64
}

// String renders the point compactly ("dual-radio/s15/b500/cbr",
// with "/linear" and "/churn3" suffixes when the scenario axes are
// swept).
func (p Point) String() string {
	s := fmt.Sprintf("%s/s%d/b%d/%s", p.Model, p.Senders, p.Burst, p.Traffic)
	if p.Topology != "" {
		s += "/" + p.Topology
	}
	if p.Churn > 0 {
		s += fmt.Sprintf("/churn%g", p.Churn)
	}
	return s
}

// Job is one simulation run of a sweep: a grid point, the repetition
// index within the point, and the fully resolved run configuration.
type Job struct {
	// Point is the grid cell the job belongs to.
	Point Point
	// Rep is the repetition index within the point (seed BaseSeed+Rep).
	Rep int
	// Config is the fully resolved run configuration.
	Config netsim.Config
}

// Spec declares a sweep grid over a base configuration template. Axis
// slices left nil default to the base config's own value, so a zero
// axis means "don't sweep this dimension".
type Spec struct {
	// Base is the configuration template: every job starts as a copy of
	// Base and then has its axis fields and seed overwritten.
	Base netsim.Config

	// Models, Senders, Bursts and Traffics are the swept axes.
	Models   []netsim.Model
	Senders  []int
	Bursts   []int
	Traffics []netsim.Traffic

	// Topologies and ChurnRates are the scenario axes: layout families
	// (netsim.TopologyKinds; "" selects the base config's topology) and
	// failure rates in expected failures per node-hour. Left nil they
	// default to the base config's own values, like every other axis.
	Topologies []string
	ChurnRates []float64

	// Runs is the number of seeded repetitions per grid point
	// (default 1).
	Runs int

	// BaseSeed seeds the repetitions: rep r runs with seed BaseSeed+r,
	// identically across grid points (the paper's common-random-numbers
	// convention).
	BaseSeed int64
}

// axes resolves the axis slices against the base template.
func (s Spec) axes() (models []netsim.Model, senders, bursts []int, traffics []netsim.Traffic, topologies []string, churns []float64, runs int) {
	models = s.Models
	if len(models) == 0 {
		models = []netsim.Model{s.Base.Model}
	}
	senders = s.Senders
	if len(senders) == 0 {
		senders = []int{s.Base.Senders}
	}
	bursts = s.Bursts
	if len(bursts) == 0 {
		bursts = []int{s.Base.BurstPackets}
	}
	traffics = s.Traffics
	if len(traffics) == 0 {
		traffics = []netsim.Traffic{s.Base.Traffic}
	}
	topologies = s.Topologies
	if len(topologies) == 0 {
		topologies = []string{s.Base.Topology}
	}
	churns = s.ChurnRates
	if len(churns) == 0 {
		churns = []float64{s.Base.ChurnRate}
	}
	runs = s.Runs
	if runs == 0 {
		runs = 1
	}
	return models, senders, bursts, traffics, topologies, churns, runs
}

// Jobs compiles the spec into its flat job list, ordered
// topology-major, then churn, model, senders, bursts, traffic,
// repetition (so legacy specs — one topology, no churn — keep their
// pre-redesign job order). For non-dual models the burst axis collapses
// to a single job per (senders, traffic, rep) with BurstPackets pinned
// to 1 (validated but unused by those models), so baselines are not
// redundantly re-simulated per burst size. Every job's configuration is
// validated.
func (s Spec) Jobs() ([]Job, error) {
	if s.Runs < 0 {
		return nil, fieldErr("runs", "negative runs %d", s.Runs)
	}
	models, senders, bursts, traffics, topologies, churns, runs := s.axes()
	var jobs []Job
	for _, topol := range topologies {
		if topol == "" {
			// An empty axis value selects the base config's topology, as
			// the Topologies doc promises.
			topol = s.Base.Topology
		}
		if topol == netsim.TopoGrid {
			// An explicit "grid" axis value is the default scenario:
			// normalize it so its cells (and cache keys) are identical to
			// legacy sweeps that never named a topology.
			topol = ""
		}
		for _, churn := range churns {
			for _, m := range models {
				mBursts := bursts
				if m != netsim.ModelDual {
					mBursts = []int{0}
				}
				for _, n := range senders {
					for _, b := range mBursts {
						for _, tr := range traffics {
							for r := 0; r < runs; r++ {
								cfg := s.Base
								cfg.Topology = topol
								cfg.ChurnRate = churn
								cfg.Model = m
								cfg.Senders = n
								cfg.BurstPackets = b
								if m != netsim.ModelDual {
									cfg.BurstPackets = 1
								}
								cfg.Traffic = tr
								cfg.Seed = s.BaseSeed + int64(r)
								pt := Point{
									Model: m, Senders: n, Burst: b, Traffic: tr,
									Topology: topol, Churn: churn,
								}
								if err := cfg.Validate(); err != nil {
									return nil, fmt.Errorf("sweep: job %v rep %d: %w", pt, r, err)
								}
								jobs = append(jobs, Job{Point: pt, Rep: r, Config: cfg})
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// Size is the number of jobs the spec compiles to, without validating
// them.
func (s Spec) Size() int {
	models, senders, bursts, traffics, topologies, churns, runs := s.axes()
	n := 0
	for _, m := range models {
		per := len(senders) * len(traffics) * runs
		if m == netsim.ModelDual {
			per *= len(bursts)
		}
		n += per
	}
	return n * len(topologies) * len(churns)
}
