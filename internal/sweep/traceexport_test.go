package sweep

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/trace"
)

// tracedResult runs a short traced simulation once per test binary.
func tracedResult(t *testing.T) netsim.Result {
	t.Helper()
	cfg := netsim.DefaultConfig(netsim.ModelDual, 5, 100, 1)
	cfg.Duration = 120 * time.Second
	cfg.Rate = 2000 // 2 Kbps so bursts fire within the short run
	s, err := cfg.Scenario(netsim.WithTrace(trace.Options{
		Packets:     true,
		States:      true,
		SampleEvery: 30 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := netsim.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteTraceJSONL(t *testing.T) {
	res := tracedResult(t)
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, []TracedRun{{Label: "dual", Result: res}}); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		if rec["label"] != "dual" {
			t.Fatalf("line missing label: %v", rec)
		}
		types[rec["type"].(string)]++
		// Per-type schemas are fixed: zero values are written, never
		// omitted (a zero-energy radio still carries total_j/wakeups).
		switch rec["type"] {
		case "node-energy":
			for _, key := range []string{"node", "radio", "total_j", "wakeups", "states"} {
				if _, ok := rec[key]; !ok {
					t.Fatalf("node-energy record missing %q: %v", key, rec)
				}
			}
		case "sample":
			for _, key := range []string{"at_s", "energy_j", "state"} {
				if _, ok := rec[key]; !ok {
					t.Fatalf("sample record missing %q: %v", key, rec)
				}
			}
		case "event":
			if _, ok := rec["at_s"]; !ok {
				t.Fatalf("event record missing at_s: %v", rec)
			}
			if rec["kind"] == "state" {
				if _, ok := rec["from"]; !ok {
					t.Fatalf("state event missing from: %v", rec)
				}
			} else if _, ok := rec["hop_latency_s"]; !ok {
				t.Fatalf("provenance event missing hop_latency_s: %v", rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"node-energy", "event", "sample"} {
		if types[want] == 0 {
			t.Errorf("no %q records in JSONL export (saw %v)", want, types)
		}
	}
	// One node-energy record per (node, radio): 36 dual-radio nodes.
	if got := types["node-energy"]; got != 72 {
		t.Errorf("got %d node-energy records, want 72", got)
	}
}

func TestWriteNodeEnergyCSV(t *testing.T) {
	res := tracedResult(t)
	var buf bytes.Buffer
	if err := WriteNodeEnergyCSV(&buf, []TracedRun{{Label: "dual", Result: res}}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("no data rows")
	}
	if got, want := len(rows[0]), len(nodeEnergyHeader); got != want {
		t.Fatalf("header has %d columns, want %d", got, want)
	}
	var totals int
	for _, row := range rows[1:] {
		if len(row) != len(nodeEnergyHeader) {
			t.Fatalf("ragged row %v", row)
		}
		if row[3] == "total" {
			totals++
			if row[6] == "" {
				t.Errorf("total row missing wakeups: %v", row)
			}
		}
	}
	if totals != 72 {
		t.Errorf("got %d total rows, want one per (node, radio) = 72", totals)
	}
}

func TestWriteTraceEventsCSV(t *testing.T) {
	res := tracedResult(t)
	var buf bytes.Buffer
	if err := WriteTraceEventsCSV(&buf, []TracedRun{{Label: "dual", Result: res}}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(res.Trace.Events) {
		t.Fatalf("got %d rows, want header + %d events", len(rows), len(res.Trace.Events))
	}
	// State rows carry radio columns; provenance rows carry packet
	// columns — never both.
	for _, row := range rows[1:] {
		isState := row[2] == "state"
		if isState && (row[4] != "" || row[8] == "") {
			t.Fatalf("state row misfiled: %v", row)
		}
		if !isState && (row[4] == "" || row[8] != "") {
			t.Fatalf("provenance row misfiled: %v", row)
		}
	}
}

func TestTraceOptionsFor(t *testing.T) {
	o := TraceOptionsFor("", "", 0)
	if o.Packets || o.States || o.SampleEvery != 0 {
		t.Errorf("no exports requested, got %+v", o)
	}
	o = TraceOptionsFor("t.jsonl", "", 30*time.Second)
	if !o.Packets || !o.States || o.SampleEvery != 30*time.Second {
		t.Errorf("jsonl export should enable event streams, got %+v", o)
	}
	o = TraceOptionsFor("", "ev.csv", 0)
	if !o.Packets || !o.States {
		t.Errorf("events-csv export should enable event streams, got %+v", o)
	}
}

func TestTraceExportsSkipUntracedRuns(t *testing.T) {
	res, err := netsim.Run(netsim.DefaultConfig(netsim.ModelSensor, 5, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, csvBuf bytes.Buffer
	runs := []TracedRun{{Label: "plain", Result: res}}
	if err := WriteTraceJSONL(&jsonl, runs); err != nil {
		t.Fatal(err)
	}
	if jsonl.Len() != 0 {
		t.Errorf("untraced run produced JSONL output: %q", jsonl.String())
	}
	if err := WriteNodeEnergyCSV(&csvBuf, runs); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(csvBuf.Bytes(), []byte("\n")); got != 1 {
		t.Errorf("untraced run produced %d CSV lines, want header only", got)
	}
}
