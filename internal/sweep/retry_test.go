package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"bulktx/internal/faultinject"
	"bulktx/internal/netsim"
	"bulktx/internal/params"
)

// fastRetry keeps the retry tests quick while still exercising the
// backoff path.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}

// retryJobs compiles a small distinct-config job list (one job per
// sender count).
func retryJobs(t *testing.T, senders ...int) []Job {
	t.Helper()
	base := netsim.DefaultConfig(netsim.ModelSensor, 5, 1, 7)
	base.Rate = params.HighRate
	base.Duration = 30 * time.Second
	jobs, err := Spec{Base: base, Senders: senders, BaseSeed: 7}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestInjectedPanicIsRetriedToSuccess(t *testing.T) {
	plan, err := faultinject.Parse("cell.panic:count=2")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	jobs := retryJobs(t, 5)
	pool := &Pool{Workers: 1, Cache: NewCache(), Retry: fastRetry}
	var updates []JobUpdate
	out, err := pool.RunJobsProgressContext(context.Background(), jobs, func(u JobUpdate) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Errors) != 0 {
		t.Fatalf("retried cell still quarantined: %v", out.Errors)
	}
	if len(updates) != 1 || updates[0].Attempts != 3 || updates[0].Err != nil {
		t.Fatalf("update = %+v, want success on attempt 3", updates)
	}
	if out.Results[0].Events == 0 {
		t.Error("retried cell produced an empty result")
	}
}

func TestPersistentPanicQuarantinesCell(t *testing.T) {
	plan, err := faultinject.Parse("cell.panic")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	jobs := retryJobs(t, 5, 6)
	pool := &Pool{Workers: 1, Cache: NewCache(), Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}}
	var updates []JobUpdate
	out, err := pool.RunJobsProgressContext(context.Background(), jobs, func(u JobUpdate) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatalf("partial run returned a run-level error: %v", err)
	}
	if len(out.Errors) != len(jobs) {
		t.Fatalf("quarantined %d of %d cells", len(out.Errors), len(jobs))
	}
	for i, ce := range out.Errors {
		if ce.Index != i || ce.Attempts != 2 {
			t.Errorf("cell error %d = %+v, want index %d after 2 attempts", i, ce, i)
		}
		var pe *PanicError
		if !errors.As(ce.Err, &pe) {
			t.Errorf("cell error %d is %T, want *PanicError", i, ce.Err)
		} else if len(pe.Stack) == 0 {
			t.Errorf("cell error %d carries no stack", i)
		}
	}
	if len(updates) != len(jobs) {
		t.Fatalf("got %d updates, want %d (quarantined cells still count)", len(updates), len(jobs))
	}
	for _, u := range updates {
		if u.Err == nil || u.Done == 0 {
			t.Errorf("quarantine update %+v lacks error or progress", u)
		}
	}
	// Quarantined cells disappear from summaries instead of polluting
	// them with zero results.
	if cells := out.Cells(); len(cells) != 0 {
		t.Errorf("fully failed sweep still summarizes %d cells", len(cells))
	}
}

func TestPartialSweepSummarizesSurvivors(t *testing.T) {
	// With one worker and a fire-count of MaxAttempts, exactly the
	// first job burns the whole fault budget and quarantines; the
	// remaining jobs run clean.
	plan, err := faultinject.Parse("cell.panic:count=2")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	jobs := retryJobs(t, 5, 6, 7)
	pool := &Pool{Workers: 1, Cache: NewCache(), Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}}
	out, err := pool.RunJobsProgressContext(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Errors) != 1 || out.Errors[0].Index != 0 {
		t.Fatalf("errors = %+v, want exactly job 0 quarantined", out.Errors)
	}
	cells := out.Cells()
	if len(cells) != 2 {
		t.Fatalf("summarized %d cells, want the 2 survivors", len(cells))
	}
	for _, c := range cells {
		if c.Point.Senders == 5 {
			t.Error("quarantined point still summarized")
		}
	}
}

func TestWholesaleRunConvertsPanicToError(t *testing.T) {
	plan, err := faultinject.Parse("cell.panic")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	pool := &Pool{Workers: 2, Cache: NewCache()}
	_, err = pool.Run(retryJobs(t, 5))
	if err == nil {
		t.Fatal("Run swallowed a panicking cell")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run error %v (%T) does not unwrap to *PanicError", err, err)
	}
}

func TestCancellationStopsBetweenCells(t *testing.T) {
	plan, err := faultinject.Parse("cell.stall:delay=10s")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	ctx, cancel := context.WithCancel(context.Background())
	pool := &Pool{Workers: 1, Cache: NewCache()}
	done := make(chan error, 1)
	go func() {
		_, err := pool.RunJobsProgressContext(ctx, retryJobs(t, 5, 6, 7), nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unwind the stalled run")
	}
}

func TestDeadlinePropagatesCause(t *testing.T) {
	plan, err := faultinject.Parse("cell.stall:delay=10s")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	pool := &Pool{Workers: 1, Cache: NewCache()}
	_, err = pool.RunJobsProgressContext(ctx, retryJobs(t, 5), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run returned %v, want context.DeadlineExceeded", err)
	}
}

func TestCacheWriteFailureKeepsResult(t *testing.T) {
	plan, err := faultinject.Parse("cache.put")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var hookErrs []error
	pool := &Pool{Workers: 1, Cache: cache, OnCacheError: func(key string, err error) {
		hookErrs = append(hookErrs, err)
	}}
	jobs := retryJobs(t, 5)
	out, err := pool.RunJobsProgressContext(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("cache write failure escalated to run failure: %v", err)
	}
	if len(out.Errors) != 0 {
		t.Fatalf("cache write failure quarantined the cell: %v", out.Errors)
	}
	if out.Results[0].Events == 0 {
		t.Error("result lost on cache write failure")
	}
	if len(hookErrs) != 1 {
		t.Fatalf("OnCacheError called %d times, want 1", len(hookErrs))
	}
	// The mem tier kept the entry: a warm re-run is served cached.
	out2, err := pool.RunJobsProgressContext(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cached != 1 {
		t.Errorf("warm re-run cached %d, want 1 (mem-only fallback)", out2.Cached)
	}
}

func TestBackoffDeterministicCappedGrowing(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 8, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	if a, b := rp.backoff("k", 3), rp.backoff("k", 3); a != b {
		t.Errorf("backoff not deterministic: %v vs %v", a, b)
	}
	if rp.backoff("k", 1) == rp.backoff("other", 1) {
		t.Error("distinct keys share identical jitter (suspicious)")
	}
	for att := 1; att <= 8; att++ {
		d := rp.backoff("k", att)
		if d < rp.BaseBackoff/2 {
			t.Errorf("attempt %d backoff %v below jittered floor", att, d)
		}
		if d > rp.MaxBackoff*3/2 {
			t.Errorf("attempt %d backoff %v above jittered cap", att, d)
		}
	}
}
