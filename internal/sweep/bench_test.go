package sweep

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/params"
)

// benchSpec is a 16-cell dual grid, sized so one serial pass takes
// long enough for the pool's speedup to dominate scheduling overhead.
func benchSpec() Spec {
	base := netsim.DefaultConfig(netsim.ModelDual, 5, 10, 1)
	base.Rate = params.HighRate
	base.Duration = 120 * time.Second
	return Spec{
		Base:     base,
		Senders:  []int{5, 10, 15, 20},
		Bursts:   []int{10, 100},
		Runs:     2,
		BaseSeed: 1,
	}
}

// BenchmarkSweepParallel compares 1 worker against runtime.NumCPU
// workers over the same uncached sweep; the ratio of the two ns/op
// figures is the pool's wall-clock speedup on this machine.
func BenchmarkSweepParallel(b *testing.B) {
	jobs, err := benchSpec().Jobs()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pool := &Pool{Workers: workers} // no cache: measure simulation
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Run(jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepCached measures a fully warm cache pass: the cost of
// re-running an already-simulated sweep.
func BenchmarkSweepCached(b *testing.B) {
	jobs, err := benchSpec().Jobs()
	if err != nil {
		b.Fatal(err)
	}
	pool := &Pool{Cache: NewCache()}
	if _, err := pool.Run(jobs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
}
