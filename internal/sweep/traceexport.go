package sweep

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/trace"
)

// TracedRun pairs an export label with the result of one traced run
// (netsim.WithTrace). The label distinguishes runs in shared streams —
// a model name, a seed, a grid-point key.
type TracedRun struct {
	// Label tags every exported row/record of the run.
	Label string
	// Result is the run's outcome; its PerNode and Trace fields feed
	// the exporters (untraced results simply contribute no rows).
	Result netsim.Result
}

// TraceOptionsFor returns the trace.Options a planned export set
// needs — the single home of the "which export carries which stream"
// policy shared by the CLIs: JSONL and events-CSV exports carry the
// event streams, so requesting either enables packet and state
// recording; node-energy CSV needs only the always-on breakdowns.
func TraceOptionsFor(jsonlPath, eventsCSVPath string, sampleEvery time.Duration) trace.Options {
	wantEvents := jsonlPath != "" || eventsCSVPath != ""
	return trace.Options{
		Packets:     wantEvents,
		States:      wantEvents,
		SampleEvery: sampleEvery,
	}
}

// ExportTraceFile writes one trace export to path using the given
// writer (WriteTraceJSONL, WriteNodeEnergyCSV or WriteTraceEventsCSV).
func ExportTraceFile(path string, runs []TracedRun, write func(io.Writer, []TracedRun) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ExportTraceFiles is the shared engine behind the CLIs' -trace-*
// flags: it writes the JSONL, events-CSV and node-energy-CSV exports
// of the traced runs to the given paths, skipping empty ones.
func ExportTraceFiles(runs []TracedRun, jsonlPath, eventsCSVPath, energyCSVPath string) error {
	for _, exp := range []struct {
		path  string
		write func(io.Writer, []TracedRun) error
	}{
		{jsonlPath, WriteTraceJSONL},
		{eventsCSVPath, WriteTraceEventsCSV},
		{energyCSVPath, WriteNodeEnergyCSV},
	} {
		if exp.path == "" {
			continue
		}
		if err := ExportTraceFile(exp.path, runs, exp.write); err != nil {
			return err
		}
	}
	return nil
}

// The JSONL wire shapes of WriteTraceJSONL: one record per line,
// discriminated by "type" ("node-energy", "event", "sample"). Each
// type carries a fixed field set — zero values are written, never
// omitted, so consumers can validate a stable per-type schema. Times
// are seconds of simulated time; energies joules.

// nodeEnergyRecord is one radio's end-of-run energy breakdown.
type nodeEnergyRecord struct {
	Type    string            `json:"type"` // "node-energy"
	Label   string            `json:"label"`
	Node    int               `json:"node"`
	Radio   string            `json:"radio"`
	TotalJ  float64           `json:"total_j"`
	Wakeups int               `json:"wakeups"`
	States  []traceStateShare `json:"states"`
}

// traceStateShare is one power state's share inside a node-energy
// record.
type traceStateShare struct {
	State   string  `json:"state"`
	EnergyJ float64 `json:"energy_j"`
	TimeS   float64 `json:"time_s"`
}

// pktEventRecord is one packet-provenance event ("generated",
// "forwarded", "delivered", "dropped").
type pktEventRecord struct {
	Type       string  `json:"type"` // "event"
	Label      string  `json:"label"`
	AtS        float64 `json:"at_s"`
	Kind       string  `json:"kind"`
	Node       int     `json:"node"`
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	Seq        uint64  `json:"seq"`
	HopLatency float64 `json:"hop_latency_s"`
	Reason     string  `json:"reason,omitempty"` // drops only
}

// stateEventRecord is one radio power-state transition.
type stateEventRecord struct {
	Type  string  `json:"type"` // "event"
	Label string  `json:"label"`
	AtS   float64 `json:"at_s"`
	Kind  string  `json:"kind"` // "state"
	Node  int     `json:"node"`
	Radio string  `json:"radio"`
	From  string  `json:"from"`
	To    string  `json:"to"`
}

// sampleRecord is one periodic cumulative-energy sample.
type sampleRecord struct {
	Type    string  `json:"type"` // "sample"
	Label   string  `json:"label"`
	AtS     float64 `json:"at_s"`
	Node    int     `json:"node"`
	Radio   string  `json:"radio"`
	EnergyJ float64 `json:"energy_j"`
	State   string  `json:"state"`
}

// WriteTraceJSONL streams the traced runs as JSON lines: per-radio
// node-energy records first (per run), then the event stream, then the
// samples, each tagged with the run's label. The record order is fixed
// by construction, so the output is byte-stable for a fixed seed.
func WriteTraceJSONL(w io.Writer, runs []TracedRun) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(rec any) error {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("sweep: trace jsonl: %w", err)
		}
		return nil
	}
	for _, run := range runs {
		for _, n := range run.Result.PerNode {
			for _, r := range n.Radios {
				rec := nodeEnergyRecord{
					Type: "node-energy", Label: run.Label,
					Node: n.Node, Radio: r.Radio,
					TotalJ: r.Total.Joules(), Wakeups: r.Wakeups,
					States: make([]traceStateShare, 0, len(r.States)),
				}
				for _, s := range r.States {
					rec.States = append(rec.States, traceStateShare{
						State: s.State, EnergyJ: s.Energy.Joules(), TimeS: s.Time.Seconds(),
					})
				}
				if err := emit(rec); err != nil {
					return err
				}
			}
		}
		rec := run.Result.Trace
		if rec == nil {
			continue
		}
		for _, ev := range rec.Events {
			var out any
			if ev.Kind == trace.KindState {
				out = stateEventRecord{
					Type: "event", Label: run.Label,
					AtS: ev.At.Seconds(), Kind: ev.Kind.String(), Node: ev.Node,
					Radio: ev.Radio, From: ev.From.String(), To: ev.To.String(),
				}
			} else {
				out = pktEventRecord{
					Type: "event", Label: run.Label,
					AtS: ev.At.Seconds(), Kind: ev.Kind.String(), Node: ev.Node,
					Src: ev.Src, Dst: ev.Dst, Seq: ev.Seq,
					HopLatency: ev.HopLatency.Seconds(), Reason: ev.Reason,
				}
			}
			if err := emit(out); err != nil {
				return err
			}
		}
		for _, sm := range rec.Samples {
			if err := emit(sampleRecord{
				Type: "sample", Label: run.Label,
				AtS: sm.At.Seconds(), Node: sm.Node, Radio: sm.Radio,
				EnergyJ: sm.Energy.Joules(), State: sm.State.String(),
			}); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sweep: trace jsonl: %w", err)
	}
	return nil
}

// nodeEnergyHeader is the fixed column order of WriteNodeEnergyCSV.
// Rows with state "total" carry the radio's total energy and wake-up
// count; per-state rows follow in canonical state order.
var nodeEnergyHeader = []string{
	"label", "node", "radio", "state", "energy_j", "time_s", "wakeups",
}

// WriteNodeEnergyCSV exports the per-node per-radio per-state energy
// breakdowns of traced runs as CSV: for each (node, radio) a "total"
// row followed by one row per power state.
func WriteNodeEnergyCSV(w io.Writer, runs []TracedRun) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(nodeEnergyHeader); err != nil {
		return fmt.Errorf("sweep: node-energy csv: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, run := range runs {
		for _, n := range run.Result.PerNode {
			for _, r := range n.Radios {
				rows := [][]string{{
					run.Label, strconv.Itoa(n.Node), r.Radio, "total",
					f(r.Total.Joules()), "", strconv.Itoa(r.Wakeups),
				}}
				for _, s := range r.States {
					rows = append(rows, []string{
						run.Label, strconv.Itoa(n.Node), r.Radio, s.State,
						f(s.Energy.Joules()), f(s.Time.Seconds()), "",
					})
				}
				for _, row := range rows {
					if err := cw.Write(row); err != nil {
						return fmt.Errorf("sweep: node-energy csv: %w", err)
					}
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: node-energy csv: %w", err)
	}
	return nil
}

// traceEventHeader is the fixed column order of WriteTraceEventsCSV.
var traceEventHeader = []string{
	"label", "at_s", "kind", "node", "src", "dst", "seq",
	"hop_latency_s", "radio", "from", "to", "reason",
}

// WriteTraceEventsCSV exports the event streams of traced runs as CSV,
// one row per event in simulated-time order. Packet-provenance columns
// are empty on state rows and vice versa.
func WriteTraceEventsCSV(w io.Writer, runs []TracedRun) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceEventHeader); err != nil {
		return fmt.Errorf("sweep: trace-events csv: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, run := range runs {
		if run.Result.Trace == nil {
			continue
		}
		for _, ev := range run.Result.Trace.Events {
			row := []string{
				run.Label, f(ev.At.Seconds()), ev.Kind.String(),
				strconv.Itoa(ev.Node), "", "", "", "", "", "", "", "",
			}
			if ev.Kind == trace.KindState {
				row[8] = ev.Radio
				row[9] = ev.From.String()
				row[10] = ev.To.String()
			} else {
				row[4] = strconv.Itoa(ev.Src)
				row[5] = strconv.Itoa(ev.Dst)
				row[6] = strconv.FormatUint(ev.Seq, 10)
				row[7] = f(ev.HopLatency.Seconds())
				row[11] = ev.Reason
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("sweep: trace-events csv: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: trace-events csv: %w", err)
	}
	return nil
}
