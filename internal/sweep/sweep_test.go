package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/params"
)

// testSpec is a small but real grid: dual cells plus a baseline model,
// two seeds each, at a duration that keeps each run to milliseconds.
func testSpec() Spec {
	base := netsim.DefaultConfig(netsim.ModelDual, 5, 10, 1)
	base.Rate = params.HighRate
	base.Duration = 60 * time.Second
	return Spec{
		Base:     base,
		Models:   []netsim.Model{netsim.ModelDual, netsim.ModelSensor},
		Senders:  []int{5, 15},
		Bursts:   []int{10, 100},
		Runs:     2,
		BaseSeed: 1,
	}
}

func TestSpecJobs(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// dual: 2 senders x 2 bursts x 2 reps = 8; sensor collapses the
	// burst axis: 2 senders x 2 reps = 4.
	if want := 12; len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	if got := spec.Size(); got != len(jobs) {
		t.Errorf("Size() = %d, want %d", got, len(jobs))
	}
	for _, job := range jobs {
		if job.Config.Seed != spec.BaseSeed+int64(job.Rep) {
			t.Errorf("job %v rep %d has seed %d", job.Point, job.Rep, job.Config.Seed)
		}
		if job.Point.Model != netsim.ModelDual {
			if job.Point.Burst != 0 {
				t.Errorf("baseline point %v carries a burst coordinate", job.Point)
			}
			if job.Config.BurstPackets != 1 {
				t.Errorf("baseline config burst = %d, want 1", job.Config.BurstPackets)
			}
		}
		if err := job.Config.Validate(); err != nil {
			t.Errorf("job %v: %v", job.Point, err)
		}
	}
}

func TestSpecAxisDefaults(t *testing.T) {
	base := netsim.DefaultConfig(netsim.ModelDual, 7, 100, 3)
	base.Duration = 60 * time.Second
	jobs, err := Spec{Base: base, BaseSeed: 3}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 (all axes defaulted)", len(jobs))
	}
	if jobs[0].Config != base {
		t.Errorf("defaulted job diverges from base: %+v", jobs[0].Config)
	}
}

func TestSpecRejectsInvalid(t *testing.T) {
	spec := testSpec()
	spec.Senders = []int{0}
	if _, err := spec.Jobs(); err == nil {
		t.Error("invalid senders compiled without error")
	}
	spec = testSpec()
	spec.Runs = -1
	if _, err := spec.Jobs(); err == nil {
		t.Error("negative runs compiled without error")
	}
}

// serialResults is the ground truth: the job list executed one run at
// a time, in order, by netsim directly.
func serialResults(t *testing.T, jobs []Job) []netsim.Result {
	t.Helper()
	out := make([]netsim.Result, len(jobs))
	for i, job := range jobs {
		res, err := netsim.Run(job.Config)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

// resultsEqual compares full results (counters, energies, and every
// per-packet delay), not just summaries.
func resultsEqual(a, b netsim.Result) bool {
	if a.RunResult.GeneratedBits != b.RunResult.GeneratedBits ||
		a.RunResult.DeliveredBits != b.RunResult.DeliveredBits ||
		a.RunResult.TotalEnergy != b.RunResult.TotalEnergy ||
		a.IdealEnergy != b.IdealEnergy ||
		a.SensorStats != b.SensorStats ||
		a.WifiStats != b.WifiStats ||
		a.AgentStats != b.AgentStats ||
		a.Events != b.Events ||
		len(a.RunResult.Delays) != len(b.RunResult.Delays) {
		return false
	}
	for i := range a.RunResult.Delays {
		if a.RunResult.Delays[i] != b.RunResult.Delays[i] {
			return false
		}
	}
	return true
}

func TestPoolParallelMatchesSerial(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := serialResults(t, jobs)
	for _, workers := range []int{1, 4, 16} {
		pool := &Pool{Workers: workers}
		got, err := pool.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !resultsEqual(got[i], want[i]) {
				t.Errorf("workers=%d: job %d (%v rep %d) diverges from serial execution",
					workers, i, jobs[i].Point, jobs[i].Rep)
			}
		}
	}
}

func TestPoolProgress(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	pool := &Pool{Workers: 4, Progress: func(done, total int) {
		if total != len(jobs) {
			t.Errorf("progress total = %d, want %d", total, len(jobs))
		}
		if done < last {
			t.Errorf("progress went backwards: %d after %d", done, last)
		}
		last = done
	}}
	if _, err := pool.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if last != len(jobs) {
		t.Errorf("final progress = %d, want %d", last, len(jobs))
	}
}

func TestPoolError(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	jobs[3].Config.Nodes = 0 // invalid: fails Validate inside netsim.Run
	pool := &Pool{Workers: 4}
	if _, err := pool.Run(jobs); err == nil {
		t.Error("pool swallowed a failing job")
	} else if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("error %v does not name the failing job", err)
	}
}

func TestKeyDistinguishesConfigs(t *testing.T) {
	a := netsim.DefaultConfig(netsim.ModelDual, 5, 10, 1)
	ka, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	ka2, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	if ka != ka2 {
		t.Error("key not deterministic for equal configs")
	}
	b := a
	b.Seed = 2
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Error("different seeds share a key")
	}
	c := a
	c.WifiLoss = 0.1
	kc, err := Key(c)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kc {
		t.Error("different loss configs share a key")
	}
}

func TestCacheMemoizesAcrossRuns(t *testing.T) {
	spec := testSpec()
	pool := &Pool{Workers: 4, Cache: NewCache()}
	first, err := pool.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached != 0 {
		t.Errorf("fresh cache served %d jobs", first.Cached)
	}
	second, err := pool.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != len(second.Jobs) {
		t.Errorf("warm cache served %d/%d jobs", second.Cached, len(second.Jobs))
	}
	for i := range first.Results {
		if !resultsEqual(first.Results[i], second.Results[i]) {
			t.Errorf("cached result %d diverges", i)
		}
	}
	// An overlapping sweep (superset of senders) only simulates the
	// new cells.
	wider := spec
	wider.Senders = []int{5, 15, 25}
	third, err := pool.RunSpec(wider)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached != len(second.Jobs) {
		t.Errorf("overlapping sweep reused %d jobs, want %d", third.Cached, len(second.Jobs))
	}
}

func TestDiskCachePersistsExactResults(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	cache1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := (&Pool{Workers: 4, Cache: cache1}).RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no cache entries written to disk")
	}

	// A second process (fresh Cache over the same dir) must reload
	// byte-identical results without simulating.
	cache2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := (&Pool{Workers: 4, Cache: cache2}).RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != len(second.Jobs) {
		t.Errorf("disk cache served %d/%d jobs", second.Cached, len(second.Jobs))
	}
	for i := range first.Results {
		if !resultsEqual(first.Results[i], second.Results[i]) {
			t.Errorf("disk round-trip changed result %d", i)
		}
	}

	// Corrupt entries degrade to misses, never errors.
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cache3, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Pool{Workers: 4, Cache: cache3}).RunSpec(spec); err != nil {
		t.Errorf("corrupt cache entry surfaced as error: %v", err)
	}
}

func TestGridGroupsPerConfig(t *testing.T) {
	base := netsim.DefaultConfig(netsim.ModelDual, 5, 10, 1)
	base.Rate = params.HighRate
	base.Duration = 60 * time.Second
	other := base
	other.Senders = 15
	pool := &Pool{Workers: 4, Cache: NewCache()}
	groups, err := pool.Grid([]netsim.Config{base, other}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 3 {
		t.Fatalf("bad grouping shape: %d groups", len(groups))
	}
	want, err := netsim.RunMany(base, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !resultsEqual(groups[0][i], want[i]) {
			t.Errorf("Grid rep %d diverges from RunMany", i)
		}
	}
}

func TestOutcomeCellsAndExport(t *testing.T) {
	spec := testSpec()
	pool := &Pool{Workers: 4, Cache: NewCache()}
	out, err := pool.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := out.Cells()
	// 4 dual points + 2 baseline points.
	if want := 6; len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Runs != spec.Runs {
			t.Errorf("cell %v has %d runs, want %d", c.Point, c.Runs, spec.Runs)
		}
		if c.Goodput.Mean < 0 || c.Goodput.Mean > 1.0001 {
			t.Errorf("cell %v goodput %v outside [0,1]", c.Point, c.Goodput.Mean)
		}
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Jobs   int `json:"jobs"`
		Cached int `json:"cached"`
		Cells  []struct {
			Model   string  `json:"model"`
			Senders int     `json:"senders"`
			Goodput float64 `json:"goodput"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON export not parseable: %v", err)
	}
	if doc.Jobs != len(out.Jobs) || len(doc.Cells) != len(cells) {
		t.Errorf("JSON export shape: jobs=%d cells=%d", doc.Jobs, len(doc.Cells))
	}

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, out); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatalf("CSV export not parseable: %v", err)
	}
	if len(rows) != len(cells)+1 {
		t.Errorf("CSV rows = %d, want %d", len(rows), len(cells)+1)
	}
	if rows[0][0] != "model" {
		t.Errorf("CSV header = %v", rows[0])
	}

	tbl := out.Table("goodput", MetricGoodput)
	// One curve per burst (10, 100) plus the sensor baseline.
	if want := 3; len(tbl.Series) != want {
		t.Errorf("table series = %d, want %d", len(tbl.Series), want)
	}
	if !strings.Contains(tbl.Series[0].Label, "DualRadio-10") {
		t.Errorf("table series label %q", tbl.Series[0].Label)
	}
}

func TestParseSpecJSON(t *testing.T) {
	data := []byte(`{
		"case": "multi-hop",
		"models": ["dual", "sensor"],
		"senders": [5, 15],
		"bursts": [10, 100],
		"traffics": ["cbr", "poisson"],
		"runs": 4,
		"seed": 9,
		"duration_s": 120,
		"wifi_loss": 0.1
	}`)
	spec, err := ParseSpecJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Base.WifiProfile.Name != "Cabletron" {
		t.Errorf("multi-hop base profile = %q", spec.Base.WifiProfile.Name)
	}
	if spec.Base.Duration != 120*time.Second || spec.Base.WifiLoss != 0.1 {
		t.Errorf("base overrides not applied: %+v", spec.Base)
	}
	if spec.Runs != 4 || spec.BaseSeed != 9 {
		t.Errorf("runs/seed = %d/%d", spec.Runs, spec.BaseSeed)
	}
	if len(spec.Models) != 2 || len(spec.Traffics) != 2 {
		t.Errorf("axes = %d models, %d traffics", len(spec.Models), len(spec.Traffics))
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// dual: 2 senders x 2 bursts x 2 traffics x 4 reps = 32;
	// sensor (burst axis collapsed): 2 x 2 x 4 = 16.
	if want := 48; len(jobs) != want {
		t.Errorf("jobs = %d, want %d", len(jobs), want)
	}

	if _, err := ParseSpecJSON([]byte(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpecJSON([]byte(`{"models": ["zigbee"]}`)); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := ParseSpecJSON([]byte(`{"case": "teleport"}`)); err == nil {
		t.Error("unknown case accepted")
	}
}
