package sweep_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"bulktx/internal/cluster"
	"bulktx/internal/netsim"
	"bulktx/internal/sweep"
)

// shardSpec compiles a small real grid: 2 models x 3 sender counts =
// 6 unique cells, fast enough to simulate repeatedly.
func shardSpec(t *testing.T) []sweep.Job {
	t.Helper()
	spec, err := sweep.ParseSpecJSON([]byte(`{
		"models": ["sensor", "dual"], "senders": [5, 10, 15],
		"bursts": [10], "runs": 1, "duration_s": 30, "rate_bps": 2000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestJobKeysMatchCellKeys: JobKeys is index-aligned and derives the
// exact per-cell key sweep.Key produces — the identity contract the
// whole fleet relies on.
func TestJobKeysMatchCellKeys(t *testing.T) {
	jobs := shardSpec(t)
	keys, err := sweep.JobKeys(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(jobs) {
		t.Fatalf("JobKeys returned %d keys for %d jobs", len(keys), len(jobs))
	}
	for i, job := range jobs {
		want, err := sweep.Key(job.Config)
		if err != nil {
			t.Fatal(err)
		}
		if keys[i] != want {
			t.Errorf("key[%d] = %s, want %s", i, keys[i], want)
		}
	}
}

// TestShardInvarianceUnderWorkerCount: sharding the same job list
// across 1, 2 and 7 workers leaves the cell keys and the JobsKey
// untouched, and the merged Outcome — and its results.csv — is
// byte-identical to single-process execution every time.
func TestShardInvarianceUnderWorkerCount(t *testing.T) {
	jobs := shardSpec(t)
	baseKeys, err := sweep.JobKeys(jobs)
	if err != nil {
		t.Fatal(err)
	}
	baseJobsKey, err := sweep.JobsKey(jobs)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&sweep.Pool{Cache: sweep.NewCache()}).RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := sweep.WriteCSV(&wantCSV, single); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			workers := make([]string, n)
			for i := range workers {
				workers[i] = fmt.Sprintf("w%d", i+1)
			}
			keys, err := sweep.JobKeys(jobs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if keys[i] != baseKeys[i] {
					t.Fatalf("cell key %d changed under %d workers", i, n)
				}
			}
			jk, err := sweep.JobsKey(jobs)
			if err != nil {
				t.Fatal(err)
			}
			if jk != baseJobsKey {
				t.Fatalf("JobsKey changed under %d workers: %s != %s", n, jk, baseJobsKey)
			}

			// Execute each worker's share on its own pool and cache —
			// fully independent "processes" — then merge.
			plan := cluster.Assign(keys, workers)
			var cells []sweep.CellOutcome
			for _, w := range workers {
				var shard []sweep.Job
				var indices []int
				for i, job := range jobs {
					if plan[keys[i]] == w {
						shard = append(shard, job)
						indices = append(indices, i)
					}
				}
				if len(shard) == 0 {
					continue
				}
				out, err := (&sweep.Pool{Cache: sweep.NewCache()}).RunJobs(shard)
				if err != nil {
					t.Fatal(err)
				}
				for si, i := range indices {
					cells = append(cells, sweep.CellOutcome{
						Index: i, Result: out.Results[si], Attempts: 1,
					})
				}
			}
			merged, err := sweep.MergeOutcome(jobs, cells)
			if err != nil {
				t.Fatal(err)
			}
			var gotCSV bytes.Buffer
			if err := sweep.WriteCSV(&gotCSV, merged); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
				t.Errorf("merged results.csv under %d workers diverges from single-process run:\n got: %s\nwant: %s",
					n, gotCSV.Bytes(), wantCSV.Bytes())
			}
		})
	}
}

// TestMergeOutcomeValidation: the merger rejects incomplete, duplicate
// and out-of-range cell sets instead of fabricating a partial Outcome.
func TestMergeOutcomeValidation(t *testing.T) {
	jobs := shardSpec(t)[:2]
	ok := []sweep.CellOutcome{{Index: 0}, {Index: 1}}
	if _, err := sweep.MergeOutcome(jobs, ok); err != nil {
		t.Errorf("complete set rejected: %v", err)
	}
	cases := []struct {
		name  string
		cells []sweep.CellOutcome
	}{
		{"missing cell", []sweep.CellOutcome{{Index: 0}}},
		{"duplicate index", []sweep.CellOutcome{{Index: 0}, {Index: 0}}},
		{"out of range", []sweep.CellOutcome{{Index: 0}, {Index: 2}}},
		{"negative index", []sweep.CellOutcome{{Index: 0}, {Index: -1}}},
	}
	for _, c := range cases {
		if _, err := sweep.MergeOutcome(jobs, c.cells); err == nil {
			t.Errorf("%s: merge accepted invalid cell set", c.name)
		}
	}
}

// TestMergeOutcomeErrorsAndCached: quarantined cells land on
// Outcome.Errors sorted by index regardless of arrival order, and
// Cached counts every flagged cell.
func TestMergeOutcomeErrorsAndCached(t *testing.T) {
	jobs := shardSpec(t)[:3]
	boom := errors.New("boom")
	cells := []sweep.CellOutcome{
		{Index: 2, Err: boom, Attempts: 3},
		{Index: 1, Result: netsim.Result{}, Cached: true},
		{Index: 0, Err: boom, Attempts: 1},
	}
	out, err := sweep.MergeOutcome(jobs, cells)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached != 1 {
		t.Errorf("Cached = %d, want 1", out.Cached)
	}
	if len(out.Errors) != 2 || out.Errors[0].Index != 0 || out.Errors[1].Index != 2 {
		t.Errorf("Errors = %+v, want indices [0 2]", out.Errors)
	}
	if out.Errors[0].Attempts != 1 || out.Errors[1].Attempts != 3 {
		t.Errorf("error attempts = %d/%d, want 1/3", out.Errors[0].Attempts, out.Errors[1].Attempts)
	}
}
