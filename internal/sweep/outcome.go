package sweep

import (
	"fmt"
	"time"

	"bulktx/internal/metrics"
	"bulktx/internal/netsim"
)

// Outcome is an executed sweep: the job list and one result per job,
// plus how many jobs resolved without simulating.
type Outcome struct {
	// Jobs is the executed job list in spec order.
	Jobs []Job
	// Results holds one result per job, index-aligned with Jobs. The
	// entry of a quarantined job (see Errors) is the zero Result and is
	// excluded from grouping and summaries.
	Results []netsim.Result
	// Cached counts the jobs served without simulating: result-cache
	// hits, intra-batch duplicates, and adoptions of another Run
	// call's in-flight execution (it matches the number of JobUpdates
	// delivered with Cached true).
	Cached int
	// Errors lists the quarantined jobs of a partially failed sweep in
	// index order — cells that still failed (or panicked) after their
	// retry budget. Empty for fully successful sweeps, so existing
	// consumers and serialized shapes are unchanged.
	Errors []CellError
}

// failedSet indexes the quarantined jobs for exclusion from grouping.
func (o *Outcome) failedSet() map[int]bool {
	if len(o.Errors) == 0 {
		return nil
	}
	set := make(map[int]bool, len(o.Errors))
	for _, ce := range o.Errors {
		set[ce.Index] = true
	}
	return set
}

// PointResults returns the successful results of one grid point in
// repetition order (nil if the point is not part of the sweep or every
// repetition was quarantined).
func (o *Outcome) PointResults(pt Point) []netsim.Result {
	failed := o.failedSet()
	var out []netsim.Result
	for i, job := range o.Jobs {
		if job.Point == pt && !failed[i] {
			out = append(out, o.Results[i])
		}
	}
	return out
}

// CellSummary reduces one grid point's repetitions to the paper's
// metrics: mean and 95% CI over seeds for goodput and normalized
// energy (total and overhearing-free), plus the mean delay.
type CellSummary struct {
	// Point is the grid cell the summaries describe.
	Point Point
	// Runs is the number of seeded repetitions behind the summaries.
	Runs int
	// Goodput is delivered over generated bits, summarized over seeds.
	Goodput metrics.Summary
	// NormEnergy is normalized energy under the model's full charging
	// policy; IdealEnergy excludes overhearing charges (sensor model).
	NormEnergy, IdealEnergy metrics.Summary
	MeanDelay               time.Duration
}

// Cells groups the outcome per grid point (in first-appearance job
// order) and summarizes each. Quarantined jobs are excluded: a point
// with failed repetitions summarizes over the successful ones, and a
// point whose every repetition failed is omitted entirely (it is still
// visible through Errors).
func (o *Outcome) Cells() []CellSummary {
	failed := o.failedSet()
	var order []Point
	grouped := make(map[Point][]netsim.Result)
	for i, job := range o.Jobs {
		if failed[i] {
			continue
		}
		if _, ok := grouped[job.Point]; !ok {
			order = append(order, job.Point)
		}
		grouped[job.Point] = append(grouped[job.Point], o.Results[i])
	}
	cells := make([]CellSummary, 0, len(order))
	for _, pt := range order {
		rs := grouped[pt]
		g, e, ie, d := netsim.Summaries(rs)
		cells = append(cells, CellSummary{
			Point:       pt,
			Runs:        len(rs),
			Goodput:     g,
			NormEnergy:  e,
			IdealEnergy: ie,
			MeanDelay:   d,
		})
	}
	return cells
}

// Metric selects which summarized quantity a table or export column
// carries.
type Metric int

// Exportable metrics.
const (
	// MetricGoodput is delivered over generated bits.
	MetricGoodput Metric = iota
	// MetricNormEnergy is J/Kbit under the model's charging policy.
	MetricNormEnergy
	// MetricIdealEnergy is J/Kbit without overhearing charges.
	MetricIdealEnergy
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricNormEnergy:
		return "norm-energy(J/Kbit)"
	case MetricIdealEnergy:
		return "ideal-energy(J/Kbit)"
	default:
		return "goodput"
	}
}

// value extracts the metric from a cell.
func (m Metric) value(c CellSummary) metrics.Summary {
	switch m {
	case MetricNormEnergy:
		return c.NormEnergy
	case MetricIdealEnergy:
		return c.IdealEnergy
	default:
		return c.Goodput
	}
}

// Table renders the outcome as a metrics.Table: senders on the x axis,
// one series per (model, burst, traffic) combination present in the
// sweep, carrying the chosen metric.
func (o *Outcome) Table(title string, metric Metric) metrics.Table {
	tbl := metrics.Table{
		Title:  title,
		XLabel: "senders",
		YLabel: metric.String(),
	}
	type curve struct {
		Model    netsim.Model
		Burst    int
		Traffic  netsim.Traffic
		Topology string
		Churn    float64
	}
	var order []curve
	series := make(map[curve]*metrics.Series)
	for _, c := range o.Cells() {
		k := curve{c.Point.Model, c.Point.Burst, c.Point.Traffic,
			c.Point.Topology, c.Point.Churn}
		s, ok := series[k]
		if !ok {
			label := k.Model.String()
			if k.Model == netsim.ModelDual {
				label = fmt.Sprintf("DualRadio-%d", k.Burst)
			}
			if k.Traffic != netsim.TrafficCBR {
				label += "/" + k.Traffic.String()
			}
			if k.Topology != "" {
				label += "/" + k.Topology
			}
			if k.Churn > 0 {
				label += fmt.Sprintf("/churn%g", k.Churn)
			}
			s = &metrics.Series{Label: label}
			series[k] = s
			order = append(order, k)
		}
		s.X = append(s.X, float64(c.Point.Senders))
		s.Y = append(s.Y, metric.value(c))
	}
	for _, k := range order {
		tbl.Series = append(tbl.Series, *series[k])
	}
	return tbl
}
