package sweep

import (
	"sync"
	"testing"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/params"
)

// smallJob compiles one fast single-run job list for the dedupe tests.
func smallJob(t *testing.T, seed int64) []Job {
	t.Helper()
	base := netsim.DefaultConfig(netsim.ModelSensor, 5, 1, seed)
	base.Rate = params.HighRate
	base.Duration = 30 * time.Second
	jobs, err := Spec{Base: base, BaseSeed: seed}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestRunJobsProgressReportsEveryJob(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	pool := &Pool{Workers: 4, Cache: NewCache()}
	var updates []JobUpdate
	out, err := pool.RunJobsProgress(jobs, func(u JobUpdate) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != len(jobs) {
		t.Fatalf("updates = %d, want %d", len(updates), len(jobs))
	}
	seen := make(map[int]bool)
	for i, u := range updates {
		if u.Done != i+1 || u.Total != len(jobs) {
			t.Errorf("update %d: done/total = %d/%d", i, u.Done, u.Total)
		}
		if u.Index < 0 || u.Index >= len(jobs) || seen[u.Index] {
			t.Errorf("update %d: bad or repeated index %d", i, u.Index)
		}
		seen[u.Index] = true
		if u.Point != jobs[u.Index].Point || u.Rep != jobs[u.Index].Rep {
			t.Errorf("update %d: point/rep do not match job %d", i, u.Index)
		}
		if u.Cached {
			t.Errorf("update %d: cold-cache job %d reported cached", i, u.Index)
		}
		if u.Duration <= 0 {
			t.Errorf("update %d: simulated job %d has no duration", i, u.Index)
		}
	}
	if out.Cached != 0 {
		t.Errorf("cold run reported %d cached jobs", out.Cached)
	}

	// A warm re-run resolves every job from the cache, flagged as such.
	var warm []JobUpdate
	out2, err := pool.RunJobsProgress(jobs, func(u JobUpdate) { warm = append(warm, u) })
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cached != len(jobs) {
		t.Fatalf("warm run cached = %d, want %d", out2.Cached, len(jobs))
	}
	for _, u := range warm {
		if !u.Cached {
			t.Errorf("warm update for job %d not flagged cached", u.Index)
		}
		if u.Duration != 0 {
			t.Errorf("cached update for job %d carries duration %v", u.Index, u.Duration)
		}
	}
}

func TestInflightDedupeAdoptsOtherRunsResult(t *testing.T) {
	jobs := smallJob(t, 42)
	key, err := Key(jobs[0].Config)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-claim the job's key as if another Run call were simulating
	// it, then resolve the flight with a sentinel result: if the pool
	// returns the sentinel, the waiter adopted the in-flight execution
	// instead of re-simulating.
	pool := &Pool{Workers: 2} // no cache: the flight is the only source
	f, owner := pool.claim(key)
	if !owner {
		t.Fatal("fresh pool already had the key in flight")
	}
	var sentinel netsim.Result
	sentinel.Events = 12345

	var (
		got     []netsim.Result
		updates []JobUpdate
		runErr  error
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		out, err := pool.RunJobsProgress(jobs, func(u JobUpdate) {
			updates = append(updates, u)
		})
		if err != nil {
			runErr = err
			return
		}
		got = out.Results
	}()

	select {
	case <-done:
		t.Fatal("Run completed while the key was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	pool.release(key, f, sentinel, nil)
	<-done

	if runErr != nil {
		t.Fatal(runErr)
	}
	if got[0].Events != sentinel.Events {
		t.Errorf("waiter re-simulated instead of adopting the in-flight result (events = %d)",
			got[0].Events)
	}
	if len(updates) != 1 || !updates[0].Cached {
		t.Errorf("in-flight adoption not reported as cached: %+v", updates)
	}
	pool.mu.Lock()
	if len(pool.inflight) != 0 {
		t.Errorf("inflight table not drained: %d entries", len(pool.inflight))
	}
	pool.mu.Unlock()
}

func TestInflightDedupePropagatesError(t *testing.T) {
	jobs := smallJob(t, 43)
	key, err := Key(jobs[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	pool := &Pool{Workers: 1}
	f, _ := pool.claim(key)

	done := make(chan error, 1)
	go func() {
		_, err := pool.Run(jobs)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	pool.release(key, f, netsim.Result{}, errTest)
	if err := <-done; err == nil {
		t.Error("in-flight error not propagated to the waiting Run call")
	}
}

// errTest is a distinguishable failure for the in-flight error test.
var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test failure" }

func TestConcurrentRunsShareOnePool(t *testing.T) {
	// A stress companion to the deterministic dedupe tests: many
	// concurrent Run calls over one pool and one configuration must all
	// succeed and agree (exercised under -race in CI).
	jobs := smallJob(t, 44)
	pool := &Pool{Workers: 2, Cache: NewCache()}
	const callers = 6
	results := make([][]netsim.Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pool.Run(jobs)
			if err != nil {
				t.Error(err)
				return
			}
			results[c] = res
		}()
	}
	wg.Wait()
	for c := 1; c < callers; c++ {
		if results[c] == nil || results[0] == nil {
			continue // already reported
		}
		if !resultsEqual(results[c][0], results[0][0]) {
			t.Errorf("caller %d diverges from caller 0", c)
		}
	}
}

func TestJobsKeyIdentity(t *testing.T) {
	a := smallJob(t, 1)
	b := smallJob(t, 1)
	ka, err := JobsKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := JobsKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("identical job lists have different keys")
	}
	kc, err := JobsKey(smallJob(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Error("different seeds share a job-list key")
	}
	empty, err := JobsKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty == ka {
		t.Error("empty job list shares a key with a non-empty one")
	}
}
