package sweep

import (
	"errors"
	"testing"
	"time"

	"bulktx/internal/netsim"
)

// The scenario axes round-trip through the JSON spec into jobs.
func TestSpecJSONScenarioAxes(t *testing.T) {
	spec, err := ParseSpecJSON([]byte(`{
		"models": ["dual"],
		"senders": [5],
		"bursts": [100],
		"topologies": ["grid", "linear"],
		"topology_seed": 9,
		"clusters": 3,
		"churn_rates": [0, 2.5],
		"churn_mean_down_s": 45,
		"runs": 2,
		"seed": 7
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spec.Topologies, []string{"grid", "linear"}; len(got) != 2 ||
		got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Topologies = %v", got)
	}
	if len(spec.ChurnRates) != 2 || spec.ChurnRates[1] != 2.5 {
		t.Errorf("ChurnRates = %v", spec.ChurnRates)
	}
	if spec.Base.TopologySeed != 9 || spec.Base.Clusters != 3 {
		t.Errorf("base topology fields = %d/%d", spec.Base.TopologySeed, spec.Base.Clusters)
	}
	if spec.Base.ChurnMeanDowntime != 45*time.Second {
		t.Errorf("ChurnMeanDowntime = %v", spec.Base.ChurnMeanDowntime)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// 2 topologies x 2 churn rates x 2 reps.
	if len(jobs) != 8 {
		t.Fatalf("got %d jobs, want 8", len(jobs))
	}
	if spec.Size() != len(jobs) {
		t.Errorf("Size() = %d, want %d", spec.Size(), len(jobs))
	}
	seen := map[string]bool{}
	gridJobs := 0
	for _, j := range jobs {
		if j.Point.Topology == "" {
			gridJobs++
			if key, err := Key(j.Config); err != nil || key == "" {
				t.Fatalf("grid job key: %q, %v", key, err)
			}
		}
		if j.Config.Topology != j.Point.Topology || j.Config.ChurnRate != j.Point.Churn {
			t.Errorf("job point %v disagrees with config %q/%v",
				j.Point, j.Config.Topology, j.Config.ChurnRate)
		}
		seen[j.Point.String()] = true
	}
	// "grid" normalizes to the default empty topology, so grid cells
	// carry no suffix and remain comparable (and cache-compatible) with
	// legacy sweeps.
	if gridJobs != 4 {
		t.Errorf("grid-normalized jobs = %d, want 4", gridJobs)
	}
	for _, want := range []string{
		"dual-radio/s5/b100/cbr",
		"dual-radio/s5/b100/cbr/churn2.5",
		"dual-radio/s5/b100/cbr/linear",
		"dual-radio/s5/b100/cbr/linear/churn2.5",
	} {
		if !seen[want] {
			t.Errorf("missing point %q in %v", want, seen)
		}
	}
}

func TestSpecJSONRejectsUnknownFieldsAndTopologies(t *testing.T) {
	if _, err := ParseSpecJSON([]byte(`{"topolojies": ["grid"]}`)); err == nil {
		t.Error("misspelled field accepted")
	}
	if _, err := ParseSpecJSON([]byte(`{"churn_rate": 1}`)); err == nil {
		t.Error("singular churn_rate accepted (axis is churn_rates)")
	}
	if _, err := ParseSpecJSON([]byte(`{"topologies": ["moebius"]}`)); err == nil {
		t.Error("unknown topology name accepted")
	}
}

// Cache keys must not depend on JSON field ordering of the spec
// document: two reordered documents describing the same grid produce
// identical job configurations and therefore identical content keys.
func TestCacheKeyStableAcrossFieldReordering(t *testing.T) {
	a, err := ParseSpecJSON([]byte(`{
		"topologies": ["clustered"],
		"churn_rates": [1.5],
		"senders": [5],
		"models": ["dual"],
		"bursts": [100],
		"seed": 3,
		"clusters": 2,
		"topology_seed": 11
	}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpecJSON([]byte(`{
		"topology_seed": 11,
		"clusters": 2,
		"seed": 3,
		"bursts": [100],
		"models": ["dual"],
		"senders": [5],
		"churn_rates": [1.5],
		"topologies": ["clustered"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ja) != len(jb) || len(ja) == 0 {
		t.Fatalf("job counts %d/%d", len(ja), len(jb))
	}
	for i := range ja {
		ka, err := Key(ja[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := Key(jb[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb {
			t.Errorf("job %d: keys differ across field reordering", i)
		}
	}
}

// Legacy configurations (no scenario axes) must keep their
// pre-redesign content keys: the new Config fields marshal to nothing
// when unset, so warm caches stay valid.
func TestCacheKeyBackwardCompatible(t *testing.T) {
	cfg := netsim.DefaultConfig(netsim.ModelDual, 5, 100, 1)
	key, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The PR 2 content key of the default dual config (cache schema 1):
	// the scenario fields carry omitempty tags and sit after every
	// legacy field, so unset they vanish from the canonical JSON and
	// warm caches stay valid across the redesign.
	const pr2Key = "89c1c9f8ff0c63bab3db14d81b96734a8b96ae109aef0a02841421c23e490a5c"
	if key != pr2Key {
		t.Errorf("legacy content key drifted:\n got %s\nwant %s", key, pr2Key)
	}
	// A config that sets-then-clears the scenario fields keys
	// identically to one that never set them.
	touched := cfg
	touched.Topology = netsim.TopoLinear
	touched.ChurnRate = 2
	touched.Topology = ""
	touched.ChurnRate = 0
	k2, err := Key(touched)
	if err != nil {
		t.Fatal(err)
	}
	if key != k2 {
		t.Error("zeroed scenario fields changed the content key")
	}
	// And the scenario axes do change the key.
	churny := cfg
	churny.ChurnRate = 2
	k3, err := Key(churny)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == key {
		t.Error("churn rate not part of the content key")
	}
	linear := cfg
	linear.Topology = netsim.TopoLinear
	k4, err := Key(linear)
	if err != nil {
		t.Fatal(err)
	}
	if k4 == key {
		t.Error("topology not part of the content key")
	}
}

func TestSpecErrorsNameOffendingField(t *testing.T) {
	cases := []struct {
		doc   string
		field string
	}{
		{`{"case": "teleport"}`, "case"},
		{`{"models": ["zigbee"]}`, "models"},
		{`{"traffics": ["fractal"]}`, "traffics"},
		{`{"topologies": ["torus"]}`, "topologies"},
	}
	for _, tc := range cases {
		_, err := ParseSpecJSON([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.doc)
			continue
		}
		var fe *netsim.FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a FieldError", tc.doc, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q", tc.doc, fe.Field, tc.field)
		}
	}

	// Negative runs surface through Spec.Jobs with the "runs" field.
	spec := testSpec()
	spec.Runs = -2
	_, err := spec.Jobs()
	var fe *netsim.FieldError
	if !errors.As(err, &fe) || fe.Field != "runs" {
		t.Errorf("negative runs error %v does not name the runs field", err)
	}

	// Config-level failures keep their Config field names through job
	// compilation.
	spec = testSpec()
	spec.Senders = []int{0}
	_, err = spec.Jobs()
	if !errors.As(err, &fe) || fe.Field != "Senders" {
		t.Errorf("invalid senders error %v does not name the Senders field", err)
	}
}
