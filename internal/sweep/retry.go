package sweep

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"
)

// Retry defaults used when a RetryPolicy enables retries but leaves
// the backoff fields zero.
const (
	// DefaultBaseBackoff is the delay before the first retry.
	DefaultBaseBackoff = 25 * time.Millisecond
	// DefaultMaxBackoff caps the exponential backoff growth.
	DefaultMaxBackoff = 2 * time.Second
)

// RetryPolicy governs per-cell retry of failed or panicked
// simulations. The zero value disables retries (one attempt per cell,
// the pre-resilience behavior); MaxAttempts > 1 turns transient cell
// failures into retries with capped exponential backoff and
// deterministic jitter, after which the cell is quarantined — reported
// as a per-cell error instead of retried forever.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per cell before
	// quarantine (values < 1 mean 1: no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; retry n waits
	// BaseBackoff << (n-1), jittered (0 selects DefaultBaseBackoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 selects
	// DefaultMaxBackoff).
	MaxBackoff time.Duration
}

// attempts resolves the per-cell attempt budget.
func (rp RetryPolicy) attempts() int {
	if rp.MaxAttempts < 1 {
		return 1
	}
	return rp.MaxAttempts
}

// backoff computes the delay before retrying a cell after its n-th
// failed attempt (n >= 1): capped exponential growth with a
// deterministic jitter factor in [0.5, 1.5) derived from the cell key
// and attempt — spreading simultaneous retries without making reruns
// diverge.
func (rp RetryPolicy) backoff(key string, attempt int) time.Duration {
	base := rp.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	maxB := rp.MaxBackoff
	if maxB <= 0 {
		maxB = DefaultMaxBackoff
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", key, attempt)
	jitter := 0.5 + float64(h.Sum64()>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// PanicError is a recovered panic from a cell simulation, converted to
// an ordinary error so one corrupt configuration cannot crash the
// worker pool (or the process hosting it).
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic value; the stack stays available on the
// struct for logs that want it.
func (e *PanicError) Error() string {
	return fmt.Sprintf("cell panicked: %v", e.Value)
}

// CellError records one quarantined cell of a partially failed sweep:
// the job that could not be simulated, after how many attempts, and
// why. A sweep executed with RunJobsProgressContext completes with
// CellErrors on its Outcome instead of failing wholesale.
type CellError struct {
	// Index is the failed job's position in the job list.
	Index int
	// Point and Rep identify the cell within the sweep grid.
	Point Point
	// Rep is the seeded repetition index within the point.
	Rep int
	// Attempts is how many times the cell was tried before quarantine.
	Attempts int
	// Err is the cell's final error (a *PanicError when the cell
	// panicked).
	Err error
}

// Error summarizes the quarantined cell.
func (e CellError) Error() string {
	return fmt.Sprintf("cell %d (%v rep %d) failed after %d attempt(s): %v",
		e.Index, e.Point, e.Rep, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cell failure to errors.Is/As.
func (e CellError) Unwrap() error { return e.Err }
