package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bulktx/internal/netsim"
)

// Pool executes sweep jobs on a fixed-size worker pool. The zero value
// is usable: runtime.NumCPU workers, no cache, no progress reporting.
// A Pool is safe for concurrent use; one Run call's jobs never
// interleave state with another's (netsim runs share nothing).
type Pool struct {
	// Workers is the concurrency limit; values < 1 select
	// runtime.NumCPU().
	Workers int

	// Cache, when non-nil, memoizes results by content key across Run
	// calls (and across processes for disk-backed caches).
	Cache *Cache

	// Progress, when non-nil, is called after each job resolves with
	// the number of jobs done so far and the total. Calls are
	// serialized but may come from any worker goroutine.
	Progress func(done, total int)
}

func (p *Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.NumCPU()
}

// Run executes the jobs and returns one result per job, in job order
// regardless of scheduling: result i is always job i's, so a parallel
// pool is byte-identical to serial execution. Jobs with identical
// configurations (same content key) are simulated once and fanned out.
// On failure Run reports the lowest-indexed error among the jobs that
// ran (remaining jobs are abandoned, so which jobs ran — and hence
// which error surfaces — can vary with scheduling).
func (p *Pool) Run(jobs []Job) ([]netsim.Result, error) {
	results, _, err := p.run(jobs)
	return results, err
}

// run is Run plus the number of jobs served from the cache.
func (p *Pool) run(jobs []Job) ([]netsim.Result, int, error) {
	total := len(jobs)
	results := make([]netsim.Result, total)
	if total == 0 {
		return results, 0, nil
	}

	// Resolve duplicates and cache hits up front. primary maps a
	// content key to the first job index carrying it; later indices
	// with the same key become aliases filled in after execution.
	keys := make([]string, total)
	primary := make(map[string]int, total)
	var execIdx []int // indices to actually simulate
	cached := 0
	var done int
	var progressMu sync.Mutex
	report := func(n int) {
		progressMu.Lock()
		done += n
		if p.Progress != nil {
			p.Progress(done, total)
		}
		progressMu.Unlock()
	}
	for i, job := range jobs {
		key, err := Key(job.Config)
		if err != nil {
			return nil, 0, err
		}
		keys[i] = key
		if _, dup := primary[key]; dup {
			continue
		}
		primary[key] = i
		if res, ok := p.Cache.Get(key); ok {
			results[i] = res
			cached++
			continue
		}
		execIdx = append(execIdx, i)
	}

	// Execute the unique misses on the worker pool.
	var (
		failed  atomic.Bool
		errMu   sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	work := make(chan int)
	workers := p.workers()
	if workers > len(execIdx) {
		workers = len(execIdx)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if failed.Load() {
					continue
				}
				res, err := netsim.Run(jobs[i].Config)
				if err != nil {
					failed.Store(true)
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstEr = i, err
					}
					errMu.Unlock()
					continue
				}
				results[i] = res
				if err := p.Cache.Put(keys[i], res); err != nil {
					failed.Store(true)
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstEr = i, err
					}
					errMu.Unlock()
					continue
				}
				report(1)
			}
		}()
	}
	for _, i := range execIdx {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstEr != nil {
		return nil, 0, fmt.Errorf("sweep: job %d (%v rep %d): %w",
			errIdx, jobs[errIdx].Point, jobs[errIdx].Rep, firstEr)
	}

	// Fan primaries out to their aliases and account cached jobs.
	fanned := 0
	for i := range jobs {
		if pi := primary[keys[i]]; pi != i {
			results[i] = results[pi]
			fanned++
		}
	}
	if n := cached + fanned; n > 0 {
		report(n)
	}
	return results, cached, nil
}

// RunSpec compiles the spec and executes it, returning the grouped
// outcome.
func (p *Pool) RunSpec(spec Spec) (*Outcome, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	return p.RunJobs(jobs)
}

// RunJobs executes an explicit job list (e.g. several specs' jobs
// concatenated into one batch) and returns the grouped outcome.
func (p *Pool) RunJobs(jobs []Job) (*Outcome, error) {
	results, cached, err := p.run(jobs)
	if err != nil {
		return nil, err
	}
	return &Outcome{Jobs: jobs, Results: results, Cached: cached}, nil
}

// Grid runs every configuration with runs seeded repetitions (seeds
// baseSeed..baseSeed+runs-1, common across configs) and returns the
// per-configuration result groups, in input order. It is the batched,
// cached, parallel replacement for calling netsim.RunMany per cell.
func (p *Pool) Grid(cfgs []netsim.Config, runs int, baseSeed int64) ([][]netsim.Result, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sweep: runs %d < 1", runs)
	}
	jobs := make([]Job, 0, len(cfgs)*runs)
	for _, cfg := range cfgs {
		for r := 0; r < runs; r++ {
			c := cfg
			c.Seed = baseSeed + int64(r)
			jobs = append(jobs, Job{
				Point: Point{
					Model:   c.Model,
					Senders: c.Senders,
					Burst:   c.BurstPackets,
					Traffic: c.Traffic,
				},
				Rep:    r,
				Config: c,
			})
		}
	}
	flat, err := p.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]netsim.Result, len(cfgs))
	for i := range cfgs {
		out[i] = flat[i*runs : (i+1)*runs : (i+1)*runs]
	}
	return out, nil
}

// Reps runs one configuration with runs seeded repetitions — the
// pooled, cached equivalent of netsim.RunMany.
func (p *Pool) Reps(cfg netsim.Config, runs int, baseSeed int64) ([]netsim.Result, error) {
	groups, err := p.Grid([]netsim.Config{cfg}, runs, baseSeed)
	if err != nil {
		return nil, err
	}
	return groups[0], nil
}
