package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bulktx/internal/faultinject"
	"bulktx/internal/netsim"
)

// Pool executes sweep jobs on a fixed-size worker pool. The zero value
// is usable: runtime.NumCPU workers, no cache, no progress reporting,
// no retries. A Pool is safe for concurrent use; one Run call's jobs
// never interleave state with another's (netsim runs share nothing),
// and concurrent Run calls submitting the same configuration collapse
// onto one in-flight simulation (the later call waits for the earlier
// one's result instead of re-simulating).
//
// Cell execution is panic-isolated: a panicking simulation is
// recovered into a *PanicError on that cell instead of crashing the
// process, and — when Retry enables it — retried with capped
// exponential backoff before the cell is quarantined.
type Pool struct {
	// Workers is the concurrency limit; values < 1 select
	// runtime.NumCPU().
	Workers int

	// Cache, when non-nil, memoizes results by content key across Run
	// calls (and across processes for disk-backed caches).
	Cache *Cache

	// Retry governs per-cell retry of failed or panicked simulations;
	// the zero value runs each cell once.
	Retry RetryPolicy

	// Progress, when non-nil, is called after each job resolves with
	// the number of jobs done so far and the total. Calls are
	// serialized but may come from any worker goroutine.
	Progress func(done, total int)

	// OnCacheError, when non-nil, observes result-cache write failures
	// (disk full, permissions, ...). Cache writes are not load-bearing:
	// the result is already in memory and the cell succeeds regardless,
	// so the hook exists for logging and counting, never for control
	// flow. Calls may come from any worker goroutine.
	OnCacheError func(key string, err error)

	// mu guards inflight, the cross-Run-call dedupe table: content key
	// -> the flight currently simulating that configuration.
	mu       sync.Mutex
	inflight map[string]*flight
}

// flight is one in-flight simulation of a unique configuration. The
// worker that claims a key fills res/err/attempts and closes done;
// workers of other Run calls carrying the same key wait on done
// instead of re-simulating.
type flight struct {
	done     chan struct{}
	res      netsim.Result
	err      error
	attempts int
}

// JobUpdate describes one resolved job of a Run call, as delivered to
// the per-job progress hook (RunJobsProgress).
type JobUpdate struct {
	// Index is the job's position in the Run call's job list.
	Index int
	// Point and Rep identify the job within its sweep grid.
	Point Point
	// Rep is the seeded repetition index within the point.
	Rep int
	// Cached reports that the job resolved without simulating: a cache
	// hit, an intra-batch duplicate, or a wait on another Run call's
	// in-flight execution of the same configuration.
	Cached bool
	// Attempts is how many times the cell was executed (1 for a
	// first-try success, more after retries; 0 for cached jobs).
	Attempts int
	// Err is the cell's final error when it was quarantined after
	// exhausting its attempts; nil for successful and cached jobs.
	// Quarantined cells still count toward Done.
	Err error
	// Duration is the wall-clock time the simulation took on its
	// worker; zero for cached jobs, which never simulate. It feeds the
	// per-cell latency histograms of telemetry consumers (the HTTP
	// service's bulktx_cell_simulation_seconds).
	Duration time.Duration
	// Worker names the fleet worker that simulated the cell when the
	// sweep executed on a cluster dispatch (internal/cluster); empty
	// for local pool execution and cached cells.
	Worker string
	// Done and Total are the Run call's resolved-job counter after this
	// job and its total job count.
	Done, Total int
}

func (p *Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.NumCPU()
}

// claim registers interest in simulating key. It returns the flight to
// fill (owner true) or the flight some other Run call is already
// filling (owner false).
func (p *Pool) claim(key string) (f *flight, owner bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.inflight[key]; ok {
		return f, false
	}
	if p.inflight == nil {
		p.inflight = make(map[string]*flight)
	}
	f = &flight{done: make(chan struct{})}
	p.inflight[key] = f
	return f, true
}

// release resolves an owned flight: the result becomes visible to
// waiters and the key is freed (later arrivals hit the cache instead).
func (p *Pool) release(key string, f *flight, res netsim.Result, err error) {
	f.res, f.err = res, err
	p.mu.Lock()
	delete(p.inflight, key)
	p.mu.Unlock()
	close(f.done)
}

// isCtxErr distinguishes cancellation/deadline unwinding from genuine
// cell failures: the former ends the whole run, the latter quarantines
// one cell.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// attemptKey names one execution attempt of a cell for fault-injection
// decisions, so probabilistic plans can flake per attempt while
// staying deterministic.
func attemptKey(key string, attempt int) string {
	return fmt.Sprintf("%s#%d", key, attempt)
}

// runCell executes one simulation attempt, converting panics —
// injected or genuine — into *PanicError so a corrupt cell cannot take
// down the worker pool.
func runCell(cfg netsim.Config, faultKey string) (res netsim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	faultinject.MaybePanic(faultinject.CellPanic, faultKey)
	return netsim.Run(cfg)
}

// Run executes the jobs and returns one result per job, in job order
// regardless of scheduling: result i is always job i's, so a parallel
// pool is byte-identical to serial execution. Jobs with identical
// configurations (same content key) are simulated once and fanned out.
// On failure Run reports the lowest-indexed error among the jobs that
// ran (remaining jobs are abandoned, so which jobs ran — and hence
// which error surfaces — can vary with scheduling).
func (p *Pool) Run(jobs []Job) ([]netsim.Result, error) {
	results, _, _, err := p.run(context.Background(), jobs, nil, false)
	return results, err
}

// run executes jobs with per-job progress reporting. In wholesale mode
// (partial false, the Run/Grid/Reps path) the first final cell error
// aborts the batch and is returned. In partial mode (partial true, the
// RunJobsProgressContext path) every cell is attempted; quarantined
// cells are returned as CellErrors — sorted by index — alongside the
// results, and the only run-level errors are key-encoding failures and
// ctx cancellation. The int result counts jobs resolved without
// simulating (see Outcome.Cached).
func (p *Pool) run(ctx context.Context, jobs []Job, onJob func(JobUpdate), partial bool) ([]netsim.Result, int, []CellError, error) {
	total := len(jobs)
	results := make([]netsim.Result, total)
	if total == 0 {
		return results, 0, nil, nil
	}

	// Resolve duplicates and cache hits up front. primary maps a
	// content key to the first job index carrying it; later indices
	// with the same key become aliases filled in after execution.
	// cached counts every job resolved without simulating — cache
	// hits, intra-batch aliases, and adoptions of another Run call's
	// in-flight execution — matching the Cached flag of the JobUpdates.
	keys := make([]string, total)
	primary := make(map[string]int, total)
	var execIdx []int // indices to actually simulate
	var done, cached int
	var progressMu sync.Mutex
	notify := func(i int, fromCache bool, attempts int, cellErr error, dur time.Duration) {
		progressMu.Lock()
		done++
		if fromCache {
			cached++
		}
		if p.Progress != nil {
			p.Progress(done, total)
		}
		if onJob != nil {
			onJob(JobUpdate{
				Index: i, Point: jobs[i].Point, Rep: jobs[i].Rep,
				Cached: fromCache, Attempts: attempts, Err: cellErr,
				Duration: dur, Done: done, Total: total,
			})
		}
		progressMu.Unlock()
	}
	for i, job := range jobs {
		key, err := Key(job.Config)
		if err != nil {
			return nil, 0, nil, err
		}
		keys[i] = key
		if _, dup := primary[key]; dup {
			continue
		}
		primary[key] = i
		if res, ok := p.Cache.Get(key); ok {
			results[i] = res
			notify(i, true, 0, nil, 0)
			continue
		}
		execIdx = append(execIdx, i)
	}

	// Execute the unique misses on the worker pool. failed short-
	// circuits remaining work in wholesale mode only; cellErrs
	// accumulates quarantined cells in partial mode.
	var (
		failed   atomic.Bool
		errMu    sync.Mutex
		errIdx   = -1
		firstEr  error
		cellErrs []CellError
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		failed.Store(true)
		errMu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstEr = i, err
		}
		errMu.Unlock()
	}
	// quarantine records one cell's final error: a batch abort in
	// wholesale mode, a per-cell error entry in partial mode. Ctx
	// unwinding is not a cell failure — the run-level return handles it.
	quarantine := func(i, attempts int, err error) {
		if isCtxErr(err) {
			return
		}
		if !partial {
			fail(i, err)
			return
		}
		errMu.Lock()
		cellErrs = append(cellErrs, CellError{
			Index: i, Point: jobs[i].Point, Rep: jobs[i].Rep,
			Attempts: attempts, Err: err,
		})
		errMu.Unlock()
		notify(i, false, attempts, err, 0)
	}
	execute := func(i int) {
		for {
			f, owner := p.claim(keys[i])
			if !owner {
				// Another Run call is simulating this exact
				// configuration; adopt its result instead of
				// duplicating the work.
				<-f.done
				if f.err != nil {
					// The owner may have unwound for its own
					// cancellation, not because the cell is bad; if we
					// are still live, claim the key ourselves.
					if isCtxErr(f.err) && ctx.Err() == nil {
						continue
					}
					quarantine(i, f.attempts, f.err)
					return
				}
				results[i] = f.res
				notify(i, true, 0, nil, 0)
				return
			}
			// Re-check the cache now that we own the key: another
			// Run call may have finished (and cached) this
			// configuration between our pre-scan and this claim.
			if res, ok := p.Cache.Get(keys[i]); ok {
				p.release(keys[i], f, res, nil)
				results[i] = res
				notify(i, true, 0, nil, 0)
				return
			}
			attempts := p.Retry.attempts()
			var (
				res    netsim.Result
				err    error
				simDur time.Duration
				att    int
			)
			for att = 1; att <= attempts; att++ {
				if err = ctx.Err(); err != nil {
					break
				}
				faultinject.Stall(ctx, faultinject.CellStall, attemptKey(keys[i], att))
				if err = ctx.Err(); err != nil {
					break
				}
				simStart := time.Now()
				res, err = runCell(jobs[i].Config, attemptKey(keys[i], att))
				simDur = time.Since(simStart)
				if err == nil {
					break
				}
				if att < attempts && !sleepCtx(ctx, p.Retry.backoff(keys[i], att)) {
					err = ctx.Err()
					break
				}
			}
			if att > attempts {
				att = attempts
			}
			if err == nil {
				// A failed cache write is not a failed cell: the result
				// is already held in memory, so degrade to mem-only and
				// let the hook log/count the disk problem.
				if cerr := p.Cache.Put(keys[i], res); cerr != nil && p.OnCacheError != nil {
					p.OnCacheError(keys[i], cerr)
				}
			}
			f.attempts = att
			p.release(keys[i], f, res, err)
			if err != nil {
				quarantine(i, att, err)
				return
			}
			results[i] = res
			notify(i, false, att, nil, simDur)
			return
		}
	}
	work := make(chan int)
	workers := p.workers()
	if workers > len(execIdx) {
		workers = len(execIdx)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if failed.Load() || ctx.Err() != nil {
					continue
				}
				execute(i)
			}
		}()
	}
	for _, i := range execIdx {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			err = cause
		}
		return nil, 0, nil, err
	}
	if firstEr != nil {
		return nil, 0, nil, fmt.Errorf("sweep: job %d (%v rep %d): %w",
			errIdx, jobs[errIdx].Point, jobs[errIdx].Rep, firstEr)
	}

	// Fan primaries out to their aliases — results and quarantines
	// alike, so every alias of a failed primary carries the error too.
	failedAt := make(map[int]CellError, len(cellErrs))
	for _, ce := range cellErrs {
		failedAt[ce.Index] = ce
	}
	for i := range jobs {
		pi := primary[keys[i]]
		if pi == i {
			continue
		}
		if ce, bad := failedAt[pi]; bad {
			errMu.Lock()
			cellErrs = append(cellErrs, CellError{
				Index: i, Point: jobs[i].Point, Rep: jobs[i].Rep,
				Attempts: ce.Attempts, Err: ce.Err,
			})
			errMu.Unlock()
			notify(i, false, ce.Attempts, ce.Err, 0)
			continue
		}
		results[i] = results[pi]
		notify(i, true, 0, nil, 0)
	}
	sort.Slice(cellErrs, func(a, b int) bool { return cellErrs[a].Index < cellErrs[b].Index })
	return results, cached, cellErrs, nil
}

// RunSpec compiles the spec and executes it, returning the grouped
// outcome.
func (p *Pool) RunSpec(spec Spec) (*Outcome, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	return p.RunJobs(jobs)
}

// RunJobs executes an explicit job list (e.g. several specs' jobs
// concatenated into one batch) and returns the grouped outcome.
func (p *Pool) RunJobs(jobs []Job) (*Outcome, error) {
	return p.RunJobsProgress(jobs, nil)
}

// RunJobsProgress is RunJobsProgressContext without cancellation.
func (p *Pool) RunJobsProgress(jobs []Job, onJob func(JobUpdate)) (*Outcome, error) {
	return p.RunJobsProgressContext(context.Background(), jobs, onJob)
}

// RunJobsProgressContext executes an explicit job list, delivering one
// JobUpdate per resolved job to onJob (when non-nil). Calls are
// serialized but may come from any worker goroutine; Done strictly
// increments from 1 to len(jobs). This is the progress feed behind
// streaming consumers such as the HTTP service's per-cell SSE events.
//
// Execution is partial-failure tolerant: a cell that still fails after
// its retry budget is quarantined — recorded on Outcome.Errors and
// reported through its JobUpdate — while the rest of the sweep
// completes. The returned error is non-nil only for spec-level
// problems (unencodable configs) or when ctx ends, in which case it is
// ctx's cause; cancellation takes effect between cell executions (a
// cell already simulating finishes first).
func (p *Pool) RunJobsProgressContext(ctx context.Context, jobs []Job, onJob func(JobUpdate)) (*Outcome, error) {
	results, cached, cellErrs, err := p.run(ctx, jobs, onJob, true)
	if err != nil {
		return nil, err
	}
	return &Outcome{Jobs: jobs, Results: results, Cached: cached, Errors: cellErrs}, nil
}

// Grid runs every configuration with runs seeded repetitions (seeds
// baseSeed..baseSeed+runs-1, common across configs) and returns the
// per-configuration result groups, in input order. It is the batched,
// cached, parallel replacement for calling netsim.RunMany per cell.
func (p *Pool) Grid(cfgs []netsim.Config, runs int, baseSeed int64) ([][]netsim.Result, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sweep: runs %d < 1", runs)
	}
	jobs := make([]Job, 0, len(cfgs)*runs)
	for _, cfg := range cfgs {
		for r := 0; r < runs; r++ {
			c := cfg
			c.Seed = baseSeed + int64(r)
			jobs = append(jobs, Job{
				Point: Point{
					Model:   c.Model,
					Senders: c.Senders,
					Burst:   c.BurstPackets,
					Traffic: c.Traffic,
				},
				Rep:    r,
				Config: c,
			})
		}
	}
	flat, err := p.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]netsim.Result, len(cfgs))
	for i := range cfgs {
		out[i] = flat[i*runs : (i+1)*runs : (i+1)*runs]
	}
	return out, nil
}

// Reps runs one configuration with runs seeded repetitions — the
// pooled, cached equivalent of netsim.RunMany.
func (p *Pool) Reps(cfg netsim.Config, runs int, baseSeed int64) ([]netsim.Result, error) {
	groups, err := p.Grid([]netsim.Config{cfg}, runs, baseSeed)
	if err != nil {
		return nil, err
	}
	return groups[0], nil
}
