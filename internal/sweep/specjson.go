package sweep

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/units"
)

// SpecDoc is the human-editable JSON form of a Spec, as consumed by
// cmd/bcp-sweep. Radios, rates and durations use friendly units;
// omitted fields fall back to the paper's scenario ("case" selects the
// single-hop or multi-hop template).
type SpecDoc struct {
	// Case is "single-hop" (default; Lucent 11 Mbps at sensor range) or
	// "multi-hop" (Cabletron reaching the sink in one hop).
	Case string `json:"case,omitempty"`

	// Models are swept model names: "dual", "sensor", "802.11"/"wifi".
	Models []string `json:"models,omitempty"`
	// Senders and Bursts are the swept sender counts and alpha-s*
	// thresholds (sensor packets).
	Senders []int `json:"senders,omitempty"`
	Bursts  []int `json:"bursts,omitempty"`
	// Traffics are swept arrival processes: "cbr", "poisson", "onoff".
	Traffics []string `json:"traffics,omitempty"`

	// Topologies are swept layout families: "grid", "uniform",
	// "clustered", "linear" (empty = the template's grid).
	Topologies []string `json:"topologies,omitempty"`
	// TopologySeed fixes random-topology placement independently of the
	// run seed (0 selects a fixed default placement).
	TopologySeed int64 `json:"topology_seed,omitempty"`
	// Clusters is the hotspot count of the clustered topology.
	Clusters int `json:"clusters,omitempty"`

	// ChurnRates are swept failure rates in expected failures per
	// node-hour (empty = no churn).
	ChurnRates []float64 `json:"churn_rates,omitempty"`
	// ChurnMeanDownS is the mean outage length in seconds under churn.
	ChurnMeanDownS float64 `json:"churn_mean_down_s,omitempty"`

	// Runs and Seed control the seeded repetitions per point.
	Runs int   `json:"runs,omitempty"`
	Seed int64 `json:"seed,omitempty"`

	// RateBps and DurationS override the per-sender application rate
	// and the simulated run length.
	RateBps   float64 `json:"rate_bps,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`

	// Scenario knobs carried into every job's configuration.
	SensorLoss        float64 `json:"sensor_loss,omitempty"`
	WifiLoss          float64 `json:"wifi_loss,omitempty"`
	MinGrantPackets   int     `json:"min_grant_packets,omitempty"`
	AdaptiveAlpha     float64 `json:"adaptive_alpha,omitempty"`
	DelayBoundS       float64 `json:"delay_bound_s,omitempty"`
	PostBurstLingerMs float64 `json:"post_burst_linger_ms,omitempty"`
	ShortcutLearner   bool    `json:"shortcut_learner,omitempty"`
}

// ParseModel resolves a model name ("dual", "sensor", "802.11",
// "wifi").
func ParseModel(name string) (netsim.Model, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "sensor":
		return netsim.ModelSensor, nil
	case "wifi", "802.11":
		return netsim.ModelWifi, nil
	case "dual", "dual-radio":
		return netsim.ModelDual, nil
	default:
		return 0, fmt.Errorf("sweep: unknown model %q (want dual, sensor or 802.11)", name)
	}
}

// ParseTraffic resolves a traffic-model name ("cbr", "poisson",
// "onoff").
func ParseTraffic(name string) (netsim.Traffic, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "cbr":
		return netsim.TrafficCBR, nil
	case "poisson":
		return netsim.TrafficPoisson, nil
	case "onoff", "on-off":
		return netsim.TrafficOnOff, nil
	default:
		return 0, fmt.Errorf("sweep: unknown traffic model %q (want cbr, poisson or onoff)", name)
	}
}

// fieldErr builds a spec-document failure annotated (via
// netsim.FieldError, extractable with errors.As) with the JSON field
// that carries the offending value.
func fieldErr(field, format string, a ...any) error {
	return fmt.Errorf("sweep: %w", &netsim.FieldError{Field: field, Reason: fmt.Sprintf(format, a...)})
}

// Spec materializes the document into an executable Spec. Failures
// carry the offending JSON field name as a netsim.FieldError.
func (d SpecDoc) Spec() (Spec, error) {
	senders := d.Senders
	if len(senders) == 0 {
		senders = []int{15}
	}
	bursts := d.Bursts
	if len(bursts) == 0 {
		bursts = []int{100}
	}

	var base netsim.Config
	switch strings.ToLower(strings.TrimSpace(d.Case)) {
	case "", "sh", "single-hop":
		base = netsim.DefaultConfig(netsim.ModelDual, senders[0], bursts[0], d.Seed)
	case "mh", "multi-hop":
		base = netsim.MultiHopConfig(senders[0], bursts[0], d.Seed)
	default:
		return Spec{}, fieldErr("case", "unknown case %q (want single-hop or multi-hop)", d.Case)
	}
	if d.RateBps > 0 {
		base.Rate = units.BitRate(d.RateBps)
	}
	if d.DurationS > 0 {
		base.Duration = time.Duration(d.DurationS * float64(time.Second))
	}
	base.SensorLoss = d.SensorLoss
	base.WifiLoss = d.WifiLoss
	base.MinGrantPackets = d.MinGrantPackets
	base.AdaptiveThresholdAlpha = d.AdaptiveAlpha
	base.DelayBound = time.Duration(d.DelayBoundS * float64(time.Second))
	base.PostBurstLinger = time.Duration(d.PostBurstLingerMs * float64(time.Millisecond))
	base.UseShortcutLearner = d.ShortcutLearner
	base.TopologySeed = d.TopologySeed
	base.Clusters = d.Clusters
	base.ChurnMeanDowntime = time.Duration(d.ChurnMeanDownS * float64(time.Second))

	spec := Spec{
		Base:       base,
		Senders:    senders,
		Bursts:     bursts,
		Topologies: d.Topologies,
		ChurnRates: d.ChurnRates,
		Runs:       d.Runs,
		BaseSeed:   d.Seed,
	}
	for _, name := range d.Topologies {
		if name == "" || name == netsim.TopoGrid {
			continue
		}
		known := false
		for _, k := range netsim.TopologyKinds() {
			known = known || name == k
		}
		if !known {
			return Spec{}, fieldErr("topologies", "unknown topology %q (want one of %v)",
				name, netsim.TopologyKinds())
		}
	}
	for _, name := range d.Models {
		m, err := ParseModel(name)
		if err != nil {
			return Spec{}, fieldErr("models", "unknown model %q (want dual, sensor or 802.11)", name)
		}
		spec.Models = append(spec.Models, m)
	}
	for _, name := range d.Traffics {
		tr, err := ParseTraffic(name)
		if err != nil {
			return Spec{}, fieldErr("traffics", "unknown traffic model %q (want cbr, poisson or onoff)", name)
		}
		spec.Traffics = append(spec.Traffics, tr)
	}
	return spec, nil
}

// ParseSpecJSON decodes a SpecDoc document (rejecting unknown fields,
// so typos fail loudly) and materializes it.
func ParseSpecJSON(data []byte) (Spec, error) {
	var doc SpecDoc
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return Spec{}, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	return doc.Spec()
}
