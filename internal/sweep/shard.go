package sweep

import (
	"fmt"
	"sort"
	"time"

	"bulktx/internal/netsim"
)

// JobKeys derives the per-cell content key of every job in the list —
// the same keys Pool uses for its cache and in-flight dedupe, and the
// identity a cluster coordinator ships to workers so the whole fleet
// agrees on which cells are the same simulation. Index i of the result
// is job i's key; duplicate configurations yield duplicate keys.
func JobKeys(jobs []Job) ([]string, error) {
	keys := make([]string, len(jobs))
	for i, job := range jobs {
		key, err := Key(job.Config)
		if err != nil {
			return nil, err
		}
		keys[i] = key
	}
	return keys, nil
}

// CellOutcome is one resolved cell of a sharded sweep: the building
// block MergeOutcome reassembles a full Outcome from, regardless of
// which worker (or process) executed the cell. Exactly one CellOutcome
// per job index must exist; the Cached/Attempts fields mirror
// JobUpdate's semantics so a merged Outcome counts like a local one.
type CellOutcome struct {
	// Index is the cell's position in the sweep's job list.
	Index int
	// Result is the cell's simulation result (zero when Err is set).
	Result netsim.Result
	// Cached marks cells resolved without simulating (cache hits and
	// intra-sweep duplicates).
	Cached bool
	// Attempts is how many executions the cell consumed (0 for cached).
	Attempts int
	// Err marks a quarantined cell; it becomes an Outcome.Errors entry.
	Err error
	// Duration is the cell's simulation wall-clock (zero for cached).
	Duration time.Duration
}

// MergeOutcome reassembles the Outcome of a sweep executed in shards:
// given the full job list and exactly one CellOutcome per job index —
// in any order, from any number of shards — it produces an Outcome
// indistinguishable from single-process execution of the same list:
// Results index-aligned with Jobs, Errors sorted by index, Cached
// counting every cell resolved without simulating. Because Results are
// placed by index and the exporters consume Jobs/Results/Errors only,
// a merged sweep's results.csv is byte-identical to a local run's.
func MergeOutcome(jobs []Job, cells []CellOutcome) (*Outcome, error) {
	if len(cells) != len(jobs) {
		return nil, fmt.Errorf("sweep: merge: %d cell outcomes for %d jobs", len(cells), len(jobs))
	}
	results := make([]netsim.Result, len(jobs))
	seen := make([]bool, len(jobs))
	cached := 0
	var errs []CellError
	for _, c := range cells {
		if c.Index < 0 || c.Index >= len(jobs) {
			return nil, fmt.Errorf("sweep: merge: cell index %d outside job list of %d", c.Index, len(jobs))
		}
		if seen[c.Index] {
			return nil, fmt.Errorf("sweep: merge: duplicate outcome for cell %d", c.Index)
		}
		seen[c.Index] = true
		if c.Err != nil {
			errs = append(errs, CellError{
				Index: c.Index, Point: jobs[c.Index].Point, Rep: jobs[c.Index].Rep,
				Attempts: c.Attempts, Err: c.Err,
			})
			continue
		}
		results[c.Index] = c.Result
		if c.Cached {
			cached++
		}
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return &Outcome{Jobs: jobs, Results: results, Cached: cached, Errors: errs}, nil
}
