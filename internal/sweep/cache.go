package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bulktx/internal/faultinject"
	"bulktx/internal/netsim"
)

// cacheSchema versions the cache key space. Bump it whenever the
// simulator's behavior changes (new charging rule, protocol fix, ...):
// old entries become unreachable instead of silently stale. Deleting
// the cache directory is always safe — entries are pure memoization.
//
// Known exception kept at schema 1: the Scenario redesign changed
// topo.Grid's degenerate n<=3 layouts (corner frame -> mid-field row).
// Entries for such configs — which cannot host a meaningful sweep
// (at most n-1 senders) and were never produced by the shipped specs —
// would be stale; delete the cache directory if you ever swept them.
const cacheSchema = 1

// Key derives the content key of one run: a SHA-256 over the cache
// schema version and the canonical JSON encoding of the full
// configuration (including the seed). Two configs share a key iff they
// describe the same simulation.
func Key(cfg netsim.Config) (string, error) {
	enc, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("sweep: encoding config key: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "bulktx-sweep-v%d:", cacheSchema)
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// JobsKey derives the content key of a whole compiled job list: a
// SHA-256 over the cache schema version and every job's configuration
// key, in job order. Two submissions share a key iff they compile to
// the same simulations in the same order — the dedupe identity used by
// the HTTP service to collapse identical spec submissions onto one job.
func JobsKey(jobs []Job) (string, error) {
	keys, err := JobKeys(jobs)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "bulktx-sweep-jobs-v%d:", cacheSchema)
	for _, key := range keys {
		fmt.Fprintf(h, "%s\n", key)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Cache memoizes run results by content key. The in-memory map is
// always on; when constructed with NewDiskCache, entries are also
// persisted as one JSON file per key under the cache directory, so
// results survive across processes. All methods are safe for
// concurrent use.
type Cache struct {
	mu  sync.Mutex
	mem map[string]netsim.Result
	dir string // "" = memory only
}

// NewCache returns an in-memory (process-lifetime) cache.
func NewCache() *Cache {
	return &Cache{mem: make(map[string]netsim.Result)}
}

// NewDiskCache returns a cache backed by dir (created if missing) in
// addition to the in-memory map.
func NewDiskCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: creating cache dir: %w", err)
	}
	return &Cache{mem: make(map[string]netsim.Result), dir: dir}, nil
}

// Dir reports the on-disk directory ("" for memory-only caches).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get looks the key up in memory, then (if configured) on disk.
// Disk corruption is treated as a miss, never an error.
func (c *Cache) Get(key string) (netsim.Result, bool) {
	if c == nil {
		return netsim.Result{}, false
	}
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok || c.dir == "" {
		return res, ok
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return netsim.Result{}, false
	}
	var disk netsim.Result
	if err := json.Unmarshal(data, &disk); err != nil {
		return netsim.Result{}, false
	}
	c.mu.Lock()
	c.mem[key] = disk
	c.mu.Unlock()
	return disk, true
}

// Put stores the result under key, persisting it to disk when the
// cache has a directory. Disk writes are atomic (temp file + rename)
// so a crashed run never leaves a truncated entry behind.
func (c *Cache) Put(key string, res netsim.Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.mem[key] = res
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	// Deterministic chaos hook: lets tests and smokes fail the disk
	// tier without unplugging a disk. Free when no plan is active.
	if err := faultinject.Error(faultinject.CachePut, key); err != nil {
		return fmt.Errorf("sweep: writing cache entry: %w", err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: encoding cached result: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("sweep: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing cache entry: %w", err)
	}
	return nil
}
