package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sampleBreakdown() []NodeEnergy {
	return []NodeEnergy{
		{
			Node: 0, Total: 0.5,
			Radios: []RadioEnergy{
				{
					Radio: "sensor", Total: 0.2,
					States: []StateEnergy{
						{State: "rx", Energy: 0.15, Time: 2 * time.Second},
						{State: "tx", Energy: 0.05, Time: time.Second},
					},
				},
				{
					Radio: "wifi", Total: 0.3, Wakeups: 4,
					States: []StateEnergy{
						{State: "idle", Energy: 0.1, Time: 3 * time.Second},
						{State: "tx", Energy: 0.2, Time: time.Second},
					},
				},
			},
		},
		{
			Node: 7, Total: 0.25,
			Radios: []RadioEnergy{
				{
					Radio: "sensor", Total: 0.25,
					States: []StateEnergy{
						{State: "rx", Energy: 0.25, Time: 5 * time.Second},
					},
				},
			},
		},
	}
}

func TestTotalPerNode(t *testing.T) {
	if got := TotalPerNode(nil); got != 0 {
		t.Errorf("TotalPerNode(nil) = %v, want 0", got)
	}
	got := TotalPerNode(sampleBreakdown())
	if math.Abs(got.Joules()-0.75) > 1e-12 {
		t.Errorf("TotalPerNode = %v, want 0.75 J", got)
	}
}

func TestEnergyBreakdownTable(t *testing.T) {
	out := EnergyBreakdownTable(sampleBreakdown())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Comment, header, then one row per (node, radio) pair.
	if len(lines) != 2+3 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	header := lines[1]
	// State columns appear in first-appearance order.
	for _, col := range []string{"node", "radio", "total", "wakeups", "rx", "tx", "idle"} {
		if !strings.Contains(header, col) {
			t.Errorf("header %q missing column %q", header, col)
		}
	}
	if strings.Index(header, "rx") > strings.Index(header, "idle") {
		t.Errorf("state columns out of first-appearance order: %q", header)
	}
	if !strings.Contains(lines[2], "sensor") || !strings.Contains(lines[3], "wifi") {
		t.Errorf("rows out of order:\n%s", out)
	}
	// Missing states render as zero, not as misaligned gaps: every row
	// splits into the same number of fields.
	wantFields := len(strings.Fields(header))
	for _, row := range lines[2:] {
		if got := len(strings.Fields(row)); got != wantFields {
			t.Errorf("row %q has %d fields, want %d", row, got, wantFields)
		}
	}
}

func TestEnergyBreakdownTableEmpty(t *testing.T) {
	out := EnergyBreakdownTable(nil)
	if !strings.Contains(out, "per-node energy breakdown") {
		t.Errorf("empty table lost its header: %q", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("empty breakdown rendered rows:\n%s", out)
	}
}

// The paper metrics must stay well-defined at the edges the sweep and
// report layers feed them: no deliveries, no runs, infinite energy.
func TestNormalizedEnergyInf(t *testing.T) {
	r := RunResult{TotalEnergy: 1}
	if got := r.NormalizedEnergy(); !math.IsInf(got, 1) {
		t.Errorf("energy spent with nothing delivered = %v, want +Inf", got)
	}
	if got := (RunResult{}).NormalizedEnergy(); got != 0 {
		t.Errorf("idle run normalized energy = %v, want 0", got)
	}
}

func TestSummarizeInfSamples(t *testing.T) {
	s := Summarize([]float64{math.Inf(1), math.Inf(1)})
	if !math.IsInf(s.Mean, 1) {
		t.Errorf("mean of +Inf samples = %v, want +Inf", s.Mean)
	}
	if s.N != 2 {
		t.Errorf("N = %d, want 2", s.N)
	}
	// A mixed sample keeps an infinite mean rather than poisoning N.
	s = Summarize([]float64{1, math.Inf(1)})
	if !math.IsInf(s.Mean, 1) || s.N != 2 {
		t.Errorf("mixed Inf summary = %+v", s)
	}
}
