package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"bulktx/internal/units"
)

func TestGoodput(t *testing.T) {
	tests := []struct {
		name string
		r    RunResult
		want float64
	}{
		{"perfect", RunResult{GeneratedBits: 1000, DeliveredBits: 1000}, 1},
		{"half", RunResult{GeneratedBits: 1000, DeliveredBits: 500}, 0.5},
		{"nothing generated", RunResult{}, 0},
		{"nothing delivered", RunResult{GeneratedBits: 10}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Goodput(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Goodput = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNormalizedEnergy(t *testing.T) {
	r := RunResult{DeliveredBits: 2000, TotalEnergy: 4 * units.Joule}
	// 4 J over 2 Kbit = 2 J/Kbit.
	if got := r.NormalizedEnergy(); math.Abs(got-2) > 1e-12 {
		t.Errorf("NormalizedEnergy = %v, want 2", got)
	}
	inf := RunResult{TotalEnergy: 1}
	if got := inf.NormalizedEnergy(); !math.IsInf(got, 1) {
		t.Errorf("NormalizedEnergy with zero delivery = %v, want +Inf", got)
	}
	zero := RunResult{}
	if got := zero.NormalizedEnergy(); got != 0 {
		t.Errorf("NormalizedEnergy all-zero = %v, want 0", got)
	}
}

func TestMeanDelay(t *testing.T) {
	r := RunResult{Delays: []time.Duration{time.Second, 3 * time.Second}}
	if got := r.MeanDelay(); got != 2*time.Second {
		t.Errorf("MeanDelay = %v, want 2s", got)
	}
	if got := (RunResult{}).MeanDelay(); got != 0 {
		t.Errorf("empty MeanDelay = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev = sqrt(32/7) ≈ 2.1381; CI = 1.96*stddev/sqrt(8).
	wantCI := 1.96 * math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
}

func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.CI95 != 0 || s.N != 1 {
		t.Errorf("Summarize single = %+v", s)
	}
}

// Property: identical samples give zero-width intervals; the mean lies
// within [min, max].
func TestSummarizeProperties(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return s.Mean >= lo-1e-9 && s.Mean <= hi+1e-9 && s.CI95 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 0.5, CI95: 0.01}
	if got := s.String(); got != "0.5000 ± 0.0100" {
		t.Errorf("String() = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "Figure X: demo",
		XLabel: "senders",
		YLabel: "goodput",
		Series: []Series{
			{
				Label: "DualRadio-500",
				X:     []float64{5, 10},
				Y:     []Summary{{Mean: 0.9, CI95: 0.02}, {Mean: 0.8, CI95: 0.03}},
			},
			{
				Label: "Sensor",
				X:     []float64{5},
				Y:     []Summary{{Mean: 0.7, CI95: 0.05}},
			},
		},
	}
	out := tbl.Render()
	for _, want := range []string{"Figure X: demo", "DualRadio-500", "Sensor", "goodput"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 2 comment lines + header + 2 x rows.
	if len(lines) != 5 {
		t.Errorf("Render produced %d lines, want 5:\n%s", len(lines), out)
	}
	// The x=10 row must have a blank cell for the Sensor series.
	if !strings.Contains(lines[4], "0.8") {
		t.Errorf("x=10 row wrong: %q", lines[4])
	}
}
