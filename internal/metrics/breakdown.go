package metrics

import (
	"fmt"
	"strings"
	"time"

	"bulktx/internal/units"
)

// StateEnergy is one power state's share of a radio's energy ledger.
type StateEnergy struct {
	// State names the power state ("idle", "rx", "tx", ...).
	State string `json:"state"`
	// Energy is the total energy charged to the state over the run.
	Energy units.Energy `json:"energy_j"`
	// Time is the cumulative residency in the state (zero for
	// ledger-only pseudo-states such as "overhear").
	Time time.Duration `json:"time"`
}

// RadioEnergy is one radio's per-state energy breakdown on one node.
type RadioEnergy struct {
	// Radio names the channel the radio is attached to ("sensor",
	// "wifi").
	Radio string `json:"radio"`
	// Total is the radio's charged energy across all states.
	Total units.Energy `json:"total_j"`
	// Wakeups counts off->on transitions.
	Wakeups int `json:"wakeups"`
	// States is the per-state ledger in canonical state order.
	States []StateEnergy `json:"states"`
}

// NodeEnergy is one node's complete energy breakdown: every radio, every
// power state. A run's []NodeEnergy is the observability counterpart of
// the scalar TotalEnergy — TotalPerNode over it reproduces the scalar.
type NodeEnergy struct {
	// Node is the node index.
	Node int `json:"node"`
	// Total is the node's charged energy across all radios.
	Total units.Energy `json:"total_j"`
	// Radios holds one breakdown per attached radio, in channel
	// attachment order (sensor before wifi on dual-radio nodes).
	Radios []RadioEnergy `json:"radios"`
}

// TotalPerNode sums a per-node breakdown back to a whole-run energy
// total. Summation follows slice order (nodes, then radios, then
// states), which is fixed by construction, so the result is bit-stable
// across repeated runs of the same seed.
func TotalPerNode(nodes []NodeEnergy) units.Energy {
	var total units.Energy
	for _, n := range nodes {
		for _, r := range n.Radios {
			for _, s := range r.States {
				total += s.Energy
			}
		}
	}
	return total
}

// EnergyBreakdownTable renders a per-node breakdown as a fixed-width
// table in the style of Table.Render: one row per (node, radio) pair,
// one energy column per power state observed anywhere in the breakdown
// (in first-appearance order, which construction keeps canonical).
func EnergyBreakdownTable(nodes []NodeEnergy) string {
	var b strings.Builder
	b.WriteString("# per-node energy breakdown (J)\n")

	// Column set: union of state names in first-appearance order.
	var states []string
	seen := make(map[string]bool)
	for _, n := range nodes {
		for _, r := range n.Radios {
			for _, s := range r.States {
				if !seen[s.State] {
					seen[s.State] = true
					states = append(states, s.State)
				}
			}
		}
	}

	fmt.Fprintf(&b, "%-6s %-8s %12s %8s", "node", "radio", "total", "wakeups")
	for _, s := range states {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteString("\n")
	for _, n := range nodes {
		for _, r := range n.Radios {
			fmt.Fprintf(&b, "%-6d %-8s %12.6g %8d", n.Node, r.Radio, r.Total.Joules(), r.Wakeups)
			byState := make(map[string]units.Energy, len(r.States))
			for _, s := range r.States {
				byState[s.State] = s.Energy
			}
			for _, s := range states {
				fmt.Fprintf(&b, " %12.6g", byState[s].Joules())
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
