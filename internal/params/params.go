// Package params centralizes the protocol and evaluation constants shared
// by the analytic models, the network simulator and the mote emulation.
//
// The paper fixes the data packet sizes (32 B sensor, 1024 B IEEE 802.11)
// and the buffer size (5000 x 32 B) but leaves header and control sizes to
// the underlying stacks; the defaults here follow the CC2420/TinyOS and
// IEEE 802.11b conventions and are recorded per experiment in
// EXPERIMENTS.md so every figure is regenerable from first principles.
package params

import (
	"time"

	"bulktx/internal/units"
)

// Packet geometry (paper Section 4.1 plus stack conventions).
const (
	// SensorPayload is the sensor-radio data packet payload (paper: 32 B).
	SensorPayload units.ByteSize = 32
	// SensorHeader approximates the TinyOS/CC2420 frame overhead: 802.15.4
	// MAC header + CRC as used by mote-class stacks.
	SensorHeader units.ByteSize = 11
	// WifiPayload is the 802.11 data packet payload (paper: 1024 B).
	WifiPayload units.ByteSize = 1024
	// WifiHeader approximates 802.11b overhead: 34 B MAC header/FCS plus
	// a PLCP preamble+header equivalent of 24 B at the data rate.
	WifiHeader units.ByteSize = 58
	// ControlPayload is the size of BCP control messages (wake-up,
	// wake-up ack) carried over the sensor radio.
	ControlPayload units.ByteSize = 16
)

// Buffering (paper Section 4.1).
const (
	// BufferPackets is the per-node data buffer in sensor packets
	// (paper: 5000 x 32 B).
	BufferPackets = 5000
)

// BurstSizes are the alpha-s* thresholds evaluated in the paper, expressed
// in sensor packets (10/100/500/1000/2500 x 32 B).
func BurstSizes() []int { return []int{10, 100, 500, 1000, 2500} }

// Radio timing defaults. The paper charges a fixed wake-up energy; the
// wake-up latency below models the off->on transition time during which
// the high-power radio is unusable (milliseconds-scale, consistent with
// the 802.11 power-cycling literature the paper builds on).
const (
	// WifiWakeupLatency is the off->idle transition time of the
	// high-power radio.
	WifiWakeupLatency = 2 * time.Millisecond
	// ReceiverIdleTimeout bounds how long a receiver keeps its 802.11
	// radio idling while waiting for announced burst data.
	ReceiverIdleTimeout = 100 * time.Millisecond
	// SenderAckTimeout bounds how long a BCP sender waits for a wake-up
	// ack before re-sending the wake-up message.
	SenderAckTimeout = 250 * time.Millisecond
	// WakeupMaxRetries bounds wake-up message retransmissions before the
	// sender abandons the handshake attempt (it retries after more data
	// accumulates or the retry backoff elapses).
	WakeupMaxRetries = 5
	// PostBurstIdle is the Fig. 4 "idle" scenario: radios idle this long
	// before turning off after a burst.
	PostBurstIdle = 100 * time.Millisecond
)

// Evaluation geometry (paper Section 4.1).
const (
	// FieldSize is the square deployment edge length.
	FieldSize units.Meters = 200
	// GridNodes is the number of nodes in the evaluation grid.
	GridNodes = 36
	// SensorRange is the sensor-radio transmission range (Section 2.2).
	SensorRange units.Meters = 40
	// WifiLongRange is the 802.11 range at low rate (Cabletron / Lucent
	// 2 Mbps, Section 2.2).
	WifiLongRange units.Meters = 250
	// WifiShortRange is the 802.11 range at 11 Mbps, which the paper
	// assumes equals the sensor radio's range.
	WifiShortRange units.Meters = 40
	// SimDuration is the default simulated run length.
	SimDuration = 5000 * time.Second
	// Runs is the number of seeded repetitions behind each reported point.
	Runs = 20
)

// Traffic rates evaluated in Section 4.1.
const (
	// LowRate is the slow per-sender data rate.
	LowRate units.BitRate = 200 // 0.2 Kbps
	// HighRate is the fast per-sender data rate.
	HighRate units.BitRate = 2000 // 2 Kbps
)
