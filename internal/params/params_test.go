package params

import (
	"testing"
	"time"

	"bulktx/internal/units"
)

func TestBurstSizesOrderedAndPositive(t *testing.T) {
	sizes := BurstSizes()
	if len(sizes) == 0 {
		t.Fatal("no burst sizes")
	}
	prev := 0
	for i, s := range sizes {
		if s <= 0 {
			t.Errorf("burst size %d at index %d is not positive", s, i)
		}
		if s <= prev {
			t.Errorf("burst sizes not strictly increasing at index %d: %d after %d", i, s, prev)
		}
		prev = s
	}
}

func TestBurstSizesMatchPaper(t *testing.T) {
	// Section 4.1 evaluates alpha-s* thresholds of 10/100/500/1000/2500
	// sensor packets.
	want := []int{10, 100, 500, 1000, 2500}
	got := BurstSizes()
	if len(got) != len(want) {
		t.Fatalf("burst sizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("burst size[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBurstSizesReturnsFreshSlice(t *testing.T) {
	a := BurstSizes()
	a[0] = -1
	if b := BurstSizes(); b[0] != 10 {
		t.Error("BurstSizes shares backing storage with its callers")
	}
}

func TestPacketGeometryMatchesPaper(t *testing.T) {
	// Section 4.1 fixes the payloads: 32 B sensor packets, 1024 B
	// 802.11 packets, and a 5000-packet buffer.
	if SensorPayload != 32 {
		t.Errorf("SensorPayload = %v, want 32 B", SensorPayload)
	}
	if WifiPayload != 1024 {
		t.Errorf("WifiPayload = %v, want 1024 B", WifiPayload)
	}
	if BufferPackets != 5000 {
		t.Errorf("BufferPackets = %v, want 5000", BufferPackets)
	}
	// Headers and control sizes are stack conventions, not paper
	// values, but must stay positive and small relative to payloads.
	if SensorHeader <= 0 || SensorHeader >= SensorPayload {
		t.Errorf("SensorHeader = %v outside (0, %v)", SensorHeader, SensorPayload)
	}
	if WifiHeader <= 0 || WifiHeader >= WifiPayload {
		t.Errorf("WifiHeader = %v outside (0, %v)", WifiHeader, WifiPayload)
	}
	if ControlPayload <= 0 {
		t.Errorf("ControlPayload = %v, want positive", ControlPayload)
	}
}

func TestEvaluationGeometryMatchesPaper(t *testing.T) {
	// Section 4.1: 36 nodes on a 200 m field, 5000 s runs, 20 seeds.
	if GridNodes != 36 {
		t.Errorf("GridNodes = %v, want 36", GridNodes)
	}
	if FieldSize != units.Meters(200) {
		t.Errorf("FieldSize = %v, want 200 m", FieldSize)
	}
	if SimDuration != 5000*time.Second {
		t.Errorf("SimDuration = %v, want 5000 s", SimDuration)
	}
	if Runs != 20 {
		t.Errorf("Runs = %v, want 20", Runs)
	}
}

func TestRadioRangesMatchPaper(t *testing.T) {
	// Section 2.2 / Table 1: 40 m sensor radio; 250 m 802.11 at low
	// rate; 11 Mbps 802.11 assumed equal to the sensor range.
	if SensorRange != units.Meters(40) {
		t.Errorf("SensorRange = %v, want 40 m", SensorRange)
	}
	if WifiLongRange != units.Meters(250) {
		t.Errorf("WifiLongRange = %v, want 250 m", WifiLongRange)
	}
	if WifiShortRange != SensorRange {
		t.Errorf("WifiShortRange = %v, want the sensor range %v", WifiShortRange, SensorRange)
	}
}

func TestTrafficRatesMatchPaper(t *testing.T) {
	// Section 4.1 evaluates 0.2 Kbps (single-hop) and 2 Kbps
	// (multi-hop) per-sender rates.
	if LowRate != units.BitRate(200) {
		t.Errorf("LowRate = %v, want 200 b/s", LowRate)
	}
	if HighRate != units.BitRate(2000) {
		t.Errorf("HighRate = %v, want 2000 b/s", HighRate)
	}
	if HighRate <= LowRate {
		t.Error("HighRate not above LowRate")
	}
}

func TestTimingBoundsSane(t *testing.T) {
	for name, d := range map[string]time.Duration{
		"WifiWakeupLatency":   WifiWakeupLatency,
		"ReceiverIdleTimeout": ReceiverIdleTimeout,
		"SenderAckTimeout":    SenderAckTimeout,
		"PostBurstIdle":       PostBurstIdle,
	} {
		if d <= 0 {
			t.Errorf("%s = %v, want positive", name, d)
		}
	}
	if WakeupMaxRetries < 1 {
		t.Errorf("WakeupMaxRetries = %v, want >= 1", WakeupMaxRetries)
	}
}
