// Package report renders the repository's paper-reproduction report: a
// markdown document regenerating the paper's tables and figures from
// the experiment registry, followed by traced per-node energy
// breakdowns for each evaluation model — the observability evidence
// behind the headline numbers.
//
// Reports are byte-stable: for a fixed scale and seed, Build always
// produces the same bytes (no wall-clock timestamps, no map-order
// iteration, deterministic simulations), so reports can be diffed
// across commits and pinned by golden tests.
package report

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"bulktx/internal/experiments"
	"bulktx/internal/metrics"
	"bulktx/internal/netsim"
	"bulktx/internal/params"
	"bulktx/internal/sweep"
	"bulktx/internal/trace"
)

// DefaultBreakdownDuration is the simulated length of the traced
// per-model breakdown runs when Options leaves it zero.
const DefaultBreakdownDuration = 300 * time.Second

// Options configures one report build.
type Options struct {
	// Experiments are the registry names to regenerate, in order.
	// Empty selects every experiment in stable name order.
	Experiments []string
	// Scale trades fidelity for wall-clock time on the simulated
	// figures (analytic artifacts ignore it).
	Scale experiments.Scale
	// ScaleName labels the scale in the report header ("quick",
	// "full", ...).
	ScaleName string

	// BreakdownModels are the evaluation models traced for the
	// per-node energy section. Empty selects all three.
	BreakdownModels []netsim.Model
	// BreakdownDuration is the simulated length of each traced run
	// (zero selects DefaultBreakdownDuration). A negative value skips
	// the section.
	BreakdownDuration time.Duration
	// BreakdownSenders and BreakdownBurst fix the traced scenario
	// (zero selects 5 senders, burst 100).
	BreakdownSenders, BreakdownBurst int
	// BreakdownSeed seeds the traced runs (zero selects seed 1).
	BreakdownSeed int64
	// TraceOptions selects what the traced runs record beyond the
	// breakdowns (the report itself only needs breakdowns; callers
	// exporting the runs afterwards may want events and samples).
	TraceOptions trace.Options
}

// Report is one built report: the rendered markdown plus the traced
// runs behind its breakdown section, ready for the sweep trace
// exporters.
type Report struct {
	// Markdown is the rendered document.
	Markdown []byte
	// Breakdowns holds the traced per-model runs, labelled by model.
	Breakdowns []sweep.TracedRun
}

// normalize fills defaulted options in place.
func (o *Options) normalize() {
	if len(o.Experiments) == 0 {
		o.Experiments = experiments.Names()
	}
	if o.ScaleName == "" {
		o.ScaleName = "custom"
	}
	if len(o.BreakdownModels) == 0 {
		o.BreakdownModels = []netsim.Model{netsim.ModelSensor, netsim.ModelWifi, netsim.ModelDual}
	}
	if o.BreakdownDuration == 0 {
		o.BreakdownDuration = DefaultBreakdownDuration
	}
	if o.BreakdownSenders == 0 {
		o.BreakdownSenders = 5
	}
	if o.BreakdownBurst == 0 {
		o.BreakdownBurst = 100
	}
	if o.BreakdownSeed == 0 {
		o.BreakdownSeed = 1
	}
}

// Build runs the selected experiments and traced runs and renders the
// report.
func Build(o Options) (*Report, error) {
	o.normalize()
	var b bytes.Buffer

	fmt.Fprintf(&b, "# bulktx paper-reproduction report\n\n")
	fmt.Fprintf(&b, "Regenerated tables and figures of \"Improving Energy Conservation\n")
	fmt.Fprintf(&b, "Using Bulk Transmission over High-Power Radios in Sensor Networks\"\n")
	fmt.Fprintf(&b, "(ICDCS 2008), followed by the traced per-node energy breakdowns\n")
	fmt.Fprintf(&b, "behind the headline metrics. Byte-stable under fixed seeds.\n\n")
	fmt.Fprintf(&b, "- scale: %s (%v simulated, %d runs per point, base seed %d)\n",
		o.ScaleName, o.Scale.Duration, o.Scale.Runs, o.Scale.BaseSeed)
	fmt.Fprintf(&b, "- experiments: %d\n\n", len(o.Experiments))

	fmt.Fprintf(&b, "## Reproduced artifacts\n\n")
	for _, name := range o.Experiments {
		tbl, err := experiments.Run(name, o.Scale)
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", name, err)
		}
		fmt.Fprintf(&b, "### %s\n\n", name)
		if desc := experiments.Describe(name); desc != "" {
			fmt.Fprintf(&b, "%s\n\n", desc)
		}
		fmt.Fprintf(&b, "```text\n%s```\n\n", tbl.Render())
	}

	rep := &Report{}
	if o.BreakdownDuration > 0 {
		if err := renderBreakdowns(&b, rep, o); err != nil {
			return nil, err
		}
	}
	rep.Markdown = b.Bytes()
	return rep, nil
}

// renderBreakdowns runs one traced simulation per model and renders
// the per-node energy section.
func renderBreakdowns(b *bytes.Buffer, rep *Report, o Options) error {
	fmt.Fprintf(b, "## Per-node energy breakdowns\n\n")
	fmt.Fprintf(b, "One traced run per evaluation model: %d senders, burst %d,\n",
		o.BreakdownSenders, o.BreakdownBurst)
	fmt.Fprintf(b, "%v simulated at %v per sender, seed %d. The breakdown tables\n",
		o.BreakdownDuration, params.HighRate, o.BreakdownSeed)
	fmt.Fprintf(b, "attribute every charged joule to a (node, radio, power-state)\n")
	fmt.Fprintf(b, "cell; each table sums back to its run's total energy.\n\n")

	for _, model := range o.BreakdownModels {
		cfg := netsim.DefaultConfig(model, o.BreakdownSenders, o.BreakdownBurst, o.BreakdownSeed)
		if model != netsim.ModelDual {
			cfg.BurstPackets = 1 // validated but unused by the baselines
		}
		cfg.Duration = o.BreakdownDuration
		cfg.Rate = params.HighRate
		s, err := cfg.Scenario(netsim.WithTrace(o.TraceOptions))
		if err != nil {
			return fmt.Errorf("report: breakdown %s: %w", model, err)
		}
		res, err := netsim.RunScenario(s)
		if err != nil {
			return fmt.Errorf("report: breakdown %s: %w", model, err)
		}
		rep.Breakdowns = append(rep.Breakdowns, sweep.TracedRun{
			Label: model.String(), Result: res,
		})

		fmt.Fprintf(b, "### %s\n\n", model)
		fmt.Fprintf(b, "- goodput: %.4f\n", res.Goodput())
		fmt.Fprintf(b, "- normalized energy: %s J/Kbit\n", formatG(res.NormalizedEnergy()))
		fmt.Fprintf(b, "- mean delay: %v\n", res.MeanDelay().Round(time.Millisecond))
		sum := metrics.TotalPerNode(res.PerNode)
		fmt.Fprintf(b, "- total energy: %s J (per-node breakdown sums to %s J)\n\n",
			formatG(res.TotalEnergy.Joules()), formatG(sum.Joules()))
		fmt.Fprintf(b, "```text\n%s```\n\n", metrics.EnergyBreakdownTable(res.PerNode))
	}
	return nil
}

// formatG renders a float compactly and deterministically, keeping
// +Inf readable in markdown.
func formatG(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.6g", v)
}
