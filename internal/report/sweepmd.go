package report

import (
	"bytes"
	"fmt"

	"bulktx/internal/sweep"
)

// SweepMarkdown renders an executed sweep outcome as a byte-stable
// markdown document: a header with the job/cache accounting, the
// goodput and normalized-energy tables, and a per-cell summary list.
// It is the report.md artifact of the HTTP service's jobs; like Build,
// the output contains no wall-clock timestamps, so identical outcomes
// render to identical bytes.
func SweepMarkdown(title string, o *sweep.Outcome) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# %s\n\n", title)
	cells := o.Cells()
	fmt.Fprintf(&b, "- jobs: %d (%d served from cache)\n", len(o.Jobs), o.Cached)
	fmt.Fprintf(&b, "- grid points: %d\n\n", len(cells))

	fmt.Fprintf(&b, "## Goodput\n\n")
	fmt.Fprintf(&b, "```text\n%s```\n\n", o.Table(title+": goodput", sweep.MetricGoodput).Render())
	fmt.Fprintf(&b, "## Normalized energy\n\n")
	fmt.Fprintf(&b, "```text\n%s```\n\n", o.Table(title+": normalized energy", sweep.MetricNormEnergy).Render())

	fmt.Fprintf(&b, "## Cells\n\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "- `%s` (%d runs): goodput %.4f ± %.4f, energy %s ± %s J/Kbit, mean delay %v\n",
			c.Point, c.Runs,
			c.Goodput.Mean, c.Goodput.CI95,
			formatG(c.NormEnergy.Mean), formatG(c.NormEnergy.CI95),
			c.MeanDelay)
	}
	b.WriteByte('\n')
	return b.Bytes()
}
