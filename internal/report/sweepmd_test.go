package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bulktx/internal/netsim"
	"bulktx/internal/params"
	"bulktx/internal/sweep"
)

func sweepOutcome(t *testing.T) *sweep.Outcome {
	t.Helper()
	base := netsim.DefaultConfig(netsim.ModelDual, 5, 10, 1)
	base.Rate = params.HighRate
	base.Duration = 30 * time.Second
	pool := &sweep.Pool{Cache: sweep.NewCache()}
	out, err := pool.RunSpec(sweep.Spec{
		Base:    base,
		Models:  []netsim.Model{netsim.ModelDual, netsim.ModelSensor},
		Senders: []int{5, 10},
		Runs:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSweepMarkdown(t *testing.T) {
	out := sweepOutcome(t)
	md := SweepMarkdown("service job abc123", out)
	text := string(md)
	for _, want := range []string{
		"# service job abc123",
		"## Goodput",
		"## Normalized energy",
		"## Cells",
		"dual-radio/s5/b10/cbr",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if again := SweepMarkdown("service job abc123", out); !bytes.Equal(md, again) {
		t.Error("SweepMarkdown is not byte-stable for the same outcome")
	}
}
