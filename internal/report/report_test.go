package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bulktx/internal/experiments"
	"bulktx/internal/netsim"
	"bulktx/internal/params"
	"bulktx/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyScale keeps simulated figures to a fraction of a second.
func tinyScale() experiments.Scale {
	return experiments.Scale{
		Duration: 60 * time.Second,
		Runs:     1,
		BaseSeed: 1,
		Senders:  []int{5},
		Bursts:   []int{100},
		SHRate:   params.HighRate,
		MHRate:   params.HighRate,
	}
}

// The golden pins the exact bytes of a small report: analytic artifact
// plus all three traced breakdowns. Regenerate with `go test
// ./internal/report -run Golden -update` after intentional changes.
func TestReportGolden(t *testing.T) {
	rep, err := Build(Options{
		Experiments:       []string{"table1", "fig2"},
		Scale:             tinyScale(),
		ScaleName:         "tiny",
		BreakdownDuration: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_tiny.md")
	if *update {
		if err := os.WriteFile(golden, rep.Markdown, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(rep.Markdown, want) {
		t.Errorf("report drifted from golden %s (run with -update if intentional)\ngot %d bytes, want %d",
			golden, len(rep.Markdown), len(want))
	}
}

// Byte stability through the full pipeline, including a simulated
// figure on the shared sweep engine and event-recording trace options.
func TestReportByteStable(t *testing.T) {
	opts := Options{
		Experiments:       []string{"fig5"},
		Scale:             tinyScale(),
		ScaleName:         "tiny",
		BreakdownDuration: 60 * time.Second,
		BreakdownModels:   []netsim.Model{netsim.ModelDual},
		TraceOptions:      trace.Options{Packets: true, SampleEvery: 10 * time.Second},
	}
	a, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Markdown, b.Markdown) {
		t.Error("two builds at the same seed produced different bytes")
	}
	if len(a.Breakdowns) != 1 || a.Breakdowns[0].Label != "dual-radio" {
		t.Fatalf("breakdown runs = %+v", a.Breakdowns)
	}
	if a.Breakdowns[0].Result.Trace == nil {
		t.Error("breakdown run carried no trace despite event options")
	}
}

func TestReportStructure(t *testing.T) {
	rep, err := Build(Options{
		Experiments:       []string{"table1"},
		Scale:             tinyScale(),
		ScaleName:         "tiny",
		BreakdownDuration: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	md := string(rep.Markdown)
	for _, want := range []string{
		"# bulktx paper-reproduction report",
		"## Reproduced artifacts",
		"### table1",
		experiments.Describe("table1"),
		"## Per-node energy breakdowns",
		"### sensor",
		"### 802.11",
		"### dual-radio",
		"# per-node energy breakdown (J)",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(rep.Breakdowns) != 3 {
		t.Errorf("got %d breakdown runs, want 3", len(rep.Breakdowns))
	}
}

func TestReportUnknownExperiment(t *testing.T) {
	_, err := Build(Options{
		Experiments:       []string{"fig99"},
		Scale:             tinyScale(),
		BreakdownDuration: -1,
	})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportSkipsBreakdownsWhenNegative(t *testing.T) {
	rep, err := Build(Options{
		Experiments:       []string{"table1"},
		Scale:             tinyScale(),
		BreakdownDuration: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rep.Markdown), "Per-node energy breakdowns") {
		t.Error("negative breakdown duration still rendered the section")
	}
	if len(rep.Breakdowns) != 0 {
		t.Errorf("got %d breakdown runs, want none", len(rep.Breakdowns))
	}
}
