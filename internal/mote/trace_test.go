package mote

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	cfg := DefaultConfig(1500)
	cfg.Messages = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) == 0 {
		t.Fatal("empty log")
	}
	var buf bytes.Buffer
	if err := res.Log.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Log) {
		t.Fatalf("round trip length %d, want %d", len(back), len(res.Log))
	}
	for i := range back {
		a, b := res.Log[i], back[i]
		// Microsecond truncation of At is the only permitted difference.
		if a.Node != b.Node || a.Radio != b.Radio || a.Event != b.Event || a.Size != b.Size {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
		if d := a.At - b.At; d < 0 || d >= 1000 {
			t.Fatalf("entry %d time drift %v", i, d)
		}
	}
	// The reconstructed log computes the same energy (timestamps enter
	// only through idle intervals; sub-microsecond truncation is
	// negligible at milliwatt draws).
	orig := res.Log.Energy(cfg.SensorProfile, cfg.WifiProfile).Joules()
	rt := back.Energy(cfg.SensorProfile, cfg.WifiProfile).Joules()
	if rel := (orig - rt) / orig; rel > 1e-3 || rel < -1e-3 {
		t.Errorf("energy drift through trace: %.6f vs %.6f", orig, rt)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader(
		`{"node":0,"radio":"laser","event":"tx-start","atMicros":1}` + "\n")); err == nil {
		t.Error("unknown radio accepted")
	}
	if _, err := ReadTrace(strings.NewReader(
		`{"node":0,"radio":"wifi","event":"warp","atMicros":1}` + "\n")); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestReadTraceEmpty(t *testing.T) {
	log, err := ReadTrace(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Errorf("empty input produced %d entries", len(log))
	}
}
