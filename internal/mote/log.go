package mote

import (
	"fmt"

	"bulktx/internal/energy"
	"bulktx/internal/radio"
	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// RadioKind distinguishes the two radios in log entries.
type RadioKind int

// Radio kinds.
const (
	// RadioSensor is the CC2420-class low-power radio.
	RadioSensor RadioKind = iota + 1
	// RadioWifi is the emulated IEEE 802.11 radio.
	RadioWifi
)

// String names the radio kind.
func (k RadioKind) String() string {
	switch k {
	case RadioSensor:
		return "sensor"
	case RadioWifi:
		return "wifi"
	default:
		return fmt.Sprintf("RadioKind(%d)", int(k))
	}
}

// Entry is one logged radio event: which node, which radio, what
// happened, when, and the frame size for tx/rx events.
type Entry struct {
	// Node is the mote the event happened on.
	Node int
	// Radio identifies which of the node's radios acted.
	Radio RadioKind
	// Event is the observed transceiver activity.
	Event radio.EventKind
	// At is the simulated event time.
	At sim.Time
	// Size is the frame size for tx/rx events (zero otherwise).
	Size units.ByteSize
}

// Log is a time-ordered event log (events are appended in simulation
// order, which is already time-ordered).
type Log []Entry

// Logger collects transceiver events across nodes and radios.
type Logger struct {
	sched   *sim.Scheduler
	entries Log
}

// NewLogger builds an empty logger.
func NewLogger(sched *sim.Scheduler) *Logger {
	return &Logger{sched: sched}
}

// Observer returns a transceiver observer that records into the log
// under the given node and radio labels.
func (l *Logger) Observer(node int, kind RadioKind) func(radio.Event) {
	return func(ev radio.Event) {
		l.entries = append(l.entries, Entry{
			Node:  node,
			Radio: kind,
			Event: ev.Kind,
			At:    ev.At,
			Size:  ev.Size,
		})
	}
}

// Events returns the collected log.
func (l *Logger) Events() Log {
	out := make(Log, len(l.entries))
	copy(out, l.entries)
	return out
}

// Energy reconstructs total energy from the log, the way the paper
// post-processed its TinyOS logs:
//
//   - sensor radio: tx/rx airtime at the profile's tx/rx draws (idle is a
//     base cost, not charged — matching the evaluation's sensor model);
//   - 802.11 radio: fixed wake-up energy per wake-up, tx/rx airtime at
//     tx/rx draws, and everything else between power-on and power-off
//     charged as idle.
func (g Log) Energy(sensor, wifi energy.Profile) units.Energy {
	type radioKey struct {
		node  int
		radio RadioKind
	}
	type radioState struct {
		onSince    sim.Time
		on         bool
		activeFrom sim.Time // current tx/rx start
		busyTime   sim.Time // accumulated tx+rx residency this power cycle
		depth      int      // nested tx/rx (overlapping rx while tx impossible, but rx can overlap rx)
	}
	var total units.Energy
	states := make(map[radioKey]*radioState)
	get := func(e Entry) *radioState {
		k := radioKey{e.Node, e.Radio}
		st, ok := states[k]
		if !ok {
			st = &radioState{}
			// Sensor radios are never power-cycled: treat them as on from
			// the start for busy-time bookkeeping.
			if e.Radio == RadioSensor {
				st.on = true
			}
			states[k] = st
		}
		return st
	}
	profileOf := func(k RadioKind) energy.Profile {
		if k == RadioSensor {
			return sensor
		}
		return wifi
	}

	for _, e := range g {
		st := get(e)
		p := profileOf(e.Radio)
		switch e.Event {
		case radio.EventWakeupStart:
			total += p.Wakeup
			st.onSince = e.At
			st.busyTime = 0
		case radio.EventPowerOn:
			st.on = true
		case radio.EventPowerOff:
			if e.Radio == RadioWifi {
				// Idle = on-interval minus tx/rx residency.
				onFor := e.At - st.onSince
				idle := onFor - st.busyTime
				if idle > 0 {
					total += p.Idle.Over(idle)
				}
			}
			st.on = false
			st.busyTime = 0
			st.depth = 0
		case radio.EventTxStart, radio.EventRxStart:
			if st.depth == 0 {
				st.activeFrom = e.At
			}
			st.depth++
		case radio.EventTxEnd, radio.EventRxEnd:
			if st.depth > 0 {
				st.depth--
				if st.depth == 0 {
					st.busyTime += e.At - st.activeFrom
				}
			}
			airtime := p.Rate.TimeFor(e.Size)
			if e.Event == radio.EventTxEnd {
				total += p.Tx.Over(airtime)
			} else {
				total += p.Rx.Over(airtime)
			}
		}
	}
	return total
}

// WakeupCount returns the number of wake-ups of one radio kind.
func (g Log) WakeupCount(kind RadioKind) int {
	n := 0
	for _, e := range g {
		if e.Radio == kind && e.Event == radio.EventWakeupStart {
			n++
		}
	}
	return n
}
