// Package mote reproduces the paper's prototype experiments (Section
// 4.2): a Tmote-Sky-class dual-radio node pair where the low-power radio
// is a real CC2420-class stack and the IEEE 802.11 radio is *emulated*
// behind a second MAC interface, exactly as the authors did ("we chose to
// emulate the high-power radio... a second MAC interface, which is
// basically a wrapper around the standard TinyOS MAC interface").
//
// A single sender streams a fixed number of messages to a single
// receiver while every radio event (wake-ups, transmissions, receptions,
// power transitions) is logged; energy consumption and delay are then
// computed from the logs, mirroring the paper's methodology. Figures 11
// and 12 come from sweeping the alpha-s* threshold.
package mote

import (
	"fmt"
	"time"

	"bulktx/internal/core"
	"bulktx/internal/energy"
	"bulktx/internal/mac"
	"bulktx/internal/params"
	"bulktx/internal/radio"
	"bulktx/internal/routing"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// Config parameterizes one prototype run.
type Config struct {
	// Threshold is the alpha-s* buffering threshold in bytes (the paper
	// sweeps 500-5000 B; Tmote memory capped it at ~4 KB).
	Threshold units.ByteSize
	// Messages is the number of application messages per run (paper: 500).
	Messages int
	// MessageSize is the application payload per message (32 B).
	MessageSize units.ByteSize
	// Interval is the application generation period.
	Interval time.Duration
	// SensorProfile is the low-power radio (CC2420-class: Micaz profile).
	SensorProfile energy.Profile
	// WifiProfile is the emulated high-power radio.
	WifiProfile energy.Profile
	// Seed drives the run's randomness.
	Seed int64
}

// DefaultConfig returns the paper's prototype setup for a threshold.
func DefaultConfig(threshold units.ByteSize) Config {
	return Config{
		Threshold:     threshold,
		Messages:      500,
		MessageSize:   params.SensorPayload,
		Interval:      100 * time.Millisecond,
		SensorProfile: energy.Micaz(),
		WifiProfile:   energy.Lucent11(),
		Seed:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Threshold < c.MessageSize:
		return fmt.Errorf("mote: threshold %v below one message (%v)", c.Threshold, c.MessageSize)
	case c.Messages < 1:
		return fmt.Errorf("mote: need at least one message")
	case c.MessageSize <= 0:
		return fmt.Errorf("mote: non-positive message size")
	case c.Interval <= 0:
		return fmt.Errorf("mote: non-positive interval")
	}
	return nil
}

// Result carries one prototype run's outcomes.
type Result struct {
	// Delivered counts messages received.
	Delivered int
	// DualEnergyPerPacket is the log-computed dual-radio energy per
	// delivered packet (sensor control + emulated 802.11, both endpoints).
	DualEnergyPerPacket units.Energy
	// SensorEnergyPerPacket is the baseline: the same messages sent
	// immediately over the sensor radio, per packet.
	SensorEnergyPerPacket units.Energy
	// MeanDelayPerPacket is the average generation-to-delivery latency.
	MeanDelayPerPacket time.Duration
	// Log is the merged event log of all radios (paper methodology).
	Log Log
	// MeterEnergy is the ground-truth meter total for the dual system,
	// used to validate the log-based computation.
	MeterEnergy units.Energy
}

// Run executes one prototype experiment.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	dual, err := runDual(cfg)
	if err != nil {
		return Result{}, err
	}
	sensorPer, err := runSensorBaseline(cfg)
	if err != nil {
		return Result{}, err
	}
	dual.SensorEnergyPerPacket = sensorPer
	return dual, nil
}

// runDual executes the BCP pair with full event logging.
func runDual(cfg Config) (Result, error) {
	sched := sim.NewScheduler(cfg.Seed)
	layout, err := topo.Line(2, 10)
	if err != nil {
		return Result{}, err
	}
	sensorCh, err := radio.NewChannel(sched, radio.Config{
		Name:       "cc2420",
		Profile:    cfg.SensorProfile,
		HeaderSize: params.SensorHeader,
	}, layout)
	if err != nil {
		return Result{}, err
	}
	wifiCh, err := radio.NewChannel(sched, radio.Config{
		Name:          "emulated-80211",
		Profile:       cfg.WifiProfile,
		Range:         10,
		WakeupLatency: params.WifiWakeupLatency,
		HeaderSize:    params.WifiHeader,
	}, layout)
	if err != nil {
		return Result{}, err
	}
	mesh, err := routing.BuildMesh(layout, cfg.SensorProfile.Range)
	if err != nil {
		return Result{}, err
	}
	tree, err := routing.BuildTree(layout, 1, cfg.SensorProfile.Range)
	if err != nil {
		return Result{}, err
	}
	addr := routing.IdentityAddrMap(2)

	logger := NewLogger(sched)
	var delivered int
	var delaySum time.Duration
	agents := make([]*core.Agent, 2)
	for i := 0; i < 2; i++ {
		sx, err := sensorCh.Attach(radio.NodeID(i), radio.OverhearFree, true)
		if err != nil {
			return Result{}, err
		}
		sx.Meter().SetFreeState(energy.Idle, true)
		sx.SetObserver(logger.Observer(i, RadioSensor))
		wx, err := wifiCh.Attach(radio.NodeID(i), radio.OverhearFull, false)
		if err != nil {
			return Result{}, err
		}
		wx.SetObserver(logger.Observer(i, RadioWifi))
		sm, err := mac.New(mac.SensorParams(), sched, sx)
		if err != nil {
			return Result{}, err
		}
		wm, err := mac.New(mac.WifiParams(), sched, wx)
		if err != nil {
			return Result{}, err
		}
		agentCfg := core.DefaultConfig(i, 1)
		agentCfg.BurstThreshold = cfg.Threshold
		var deliver func(core.Packet)
		if i == 1 {
			deliver = func(p core.Packet) {
				delivered++
				delaySum += sched.Now() - p.Created
			}
		}
		agents[i], err = core.NewAgent(agentCfg, sched, sm, wm, mesh, tree, addr, deliver)
		if err != nil {
			return Result{}, err
		}
	}

	// Application: Messages packets at the configured interval, then a
	// final flush handshake for any remainder below the threshold (the
	// prototype measured complete transfers of all 500 messages).
	for i := 0; i < cfg.Messages; i++ {
		n := i
		at := sim.Time(n+1) * cfg.Interval
		if _, err := sched.Schedule(at, func() {
			agents[0].Buffer(core.Packet{
				Src:     0,
				Dst:     1,
				Seq:     uint64(n + 1),
				Size:    cfg.MessageSize,
				Created: sched.Now(),
			})
		}); err != nil {
			return Result{}, err
		}
	}
	flushAt := sim.Time(cfg.Messages+1) * cfg.Interval
	if _, err := sched.Schedule(flushAt, agents[0].Flush); err != nil {
		return Result{}, err
	}
	deadline := flushAt + 10*time.Minute
	sched.RunUntil(deadline)

	res := Result{
		Delivered: delivered,
		Log:       logger.Events(),
	}
	if delivered > 0 {
		res.MeanDelayPerPacket = delaySum / time.Duration(delivered)
	}
	// Log-driven energy computation (the paper's methodology) over both
	// nodes and both radios.
	logEnergy := res.Log.Energy(cfg.SensorProfile, cfg.WifiProfile)
	if delivered > 0 {
		res.DualEnergyPerPacket = logEnergy / units.Energy(float64(delivered))
	}
	res.MeterEnergy = meterTotal(sensorCh, wifiCh)
	return res, nil
}

// meterTotal sums ground-truth meter energy across both channels' nodes.
func meterTotal(chs ...*radio.Channel) units.Energy {
	var total units.Energy
	for _, ch := range chs {
		for id := 0; id < ch.Len(); id++ {
			x, ok := ch.Lookup(radio.NodeID(id))
			if !ok {
				continue
			}
			total += x.Meter().Total()
		}
	}
	return total
}

// runSensorBaseline sends the same messages immediately over the sensor
// radio and returns the per-packet energy (flat in the threshold, the
// paper's "Sensor Radio" line in Figure 11).
func runSensorBaseline(cfg Config) (units.Energy, error) {
	sched := sim.NewScheduler(cfg.Seed)
	layout, err := topo.Line(2, 10)
	if err != nil {
		return 0, err
	}
	ch, err := radio.NewChannel(sched, radio.Config{
		Name:       "cc2420",
		Profile:    cfg.SensorProfile,
		HeaderSize: params.SensorHeader,
	}, layout)
	if err != nil {
		return 0, err
	}
	logger := NewLogger(sched)
	var macs [2]*mac.MAC
	delivered := 0
	for i := 0; i < 2; i++ {
		x, err := ch.Attach(radio.NodeID(i), radio.OverhearFree, true)
		if err != nil {
			return 0, err
		}
		x.Meter().SetFreeState(energy.Idle, true)
		x.SetObserver(logger.Observer(i, RadioSensor))
		if macs[i], err = mac.New(mac.SensorParams(), sched, x); err != nil {
			return 0, err
		}
	}
	macs[1].SetOnReceive(func(radio.Frame) { delivered++ })
	for i := 0; i < cfg.Messages; i++ {
		at := sim.Time(i+1) * cfg.Interval
		if _, err := sched.Schedule(at, func() {
			_ = macs[0].Send(radio.Frame{
				Kind: radio.KindData,
				Dst:  1,
				Size: cfg.MessageSize + params.SensorHeader,
			})
		}); err != nil {
			return 0, err
		}
	}
	sched.RunUntil(sim.Time(cfg.Messages+2)*cfg.Interval + time.Minute)
	if delivered == 0 {
		return 0, fmt.Errorf("mote: sensor baseline delivered nothing")
	}
	total := logger.Events().Energy(cfg.SensorProfile, cfg.WifiProfile)
	return total / units.Energy(float64(delivered)), nil
}
