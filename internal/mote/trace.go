package mote

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bulktx/internal/radio"
	"bulktx/internal/units"
)

// traceRecord is the JSON-lines wire form of one log entry, mirroring
// how the paper's prototype persisted its TinyOS event logs for offline
// energy computation.
type traceRecord struct {
	Node      int    `json:"node"`
	Radio     string `json:"radio"`
	Event     string `json:"event"`
	AtMicros  int64  `json:"atMicros"`
	SizeBytes int64  `json:"sizeBytes,omitempty"`
}

// WriteTrace streams the log as JSON lines.
func (g Log) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range g {
		rec := traceRecord{
			Node:      e.Node,
			Radio:     e.Radio.String(),
			Event:     e.Event.String(),
			AtMicros:  e.At.Microseconds(),
			SizeBytes: e.Size.Bytes(),
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("mote: trace entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSON-lines trace back into a Log. Radio and event
// names must match the String() forms produced by WriteTrace.
func ReadTrace(r io.Reader) (Log, error) {
	dec := json.NewDecoder(r)
	var out Log
	for {
		var rec traceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("mote: trace entry %d: %w", len(out), err)
		}
		radioKind, err := parseRadioKind(rec.Radio)
		if err != nil {
			return nil, fmt.Errorf("mote: trace entry %d: %w", len(out), err)
		}
		eventKind, err := parseEventKind(rec.Event)
		if err != nil {
			return nil, fmt.Errorf("mote: trace entry %d: %w", len(out), err)
		}
		out = append(out, Entry{
			Node:  rec.Node,
			Radio: radioKind,
			Event: eventKind,
			At:    time.Duration(rec.AtMicros) * time.Microsecond,
			Size:  units.ByteSize(rec.SizeBytes),
		})
	}
	return out, nil
}

func parseRadioKind(s string) (RadioKind, error) {
	for _, k := range []RadioKind{RadioSensor, RadioWifi} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown radio kind %q", s)
}

func parseEventKind(s string) (radio.EventKind, error) {
	kinds := []radio.EventKind{
		radio.EventWakeupStart, radio.EventPowerOn, radio.EventPowerOff,
		radio.EventTxStart, radio.EventTxEnd, radio.EventRxStart, radio.EventRxEnd,
	}
	for _, k := range kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown event kind %q", s)
}
