package mote

import (
	"math"
	"testing"
	"time"

	"bulktx/internal/radio"
	"bulktx/internal/units"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(2000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"threshold below message", func(c *Config) { c.Threshold = 16 }},
		{"zero messages", func(c *Config) { c.Messages = 0 }},
		{"zero size", func(c *Config) { c.MessageSize = 0 }},
		{"zero interval", func(c *Config) { c.Interval = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate accepted invalid config")
			}
		})
	}
}

func TestAllMessagesDelivered(t *testing.T) {
	cfg := DefaultConfig(2000)
	cfg.Messages = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 200 {
		t.Errorf("delivered %d/200", res.Delivered)
	}
}

func TestLogEnergyMatchesMeters(t *testing.T) {
	// The log-driven energy reconstruction (the paper's methodology) must
	// agree with the simulator's ground-truth meters.
	cfg := DefaultConfig(1500)
	cfg.Messages = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logTotal := res.DualEnergyPerPacket.Joules() * float64(res.Delivered)
	meter := res.MeterEnergy.Joules()
	if meter == 0 {
		t.Fatal("meter energy zero")
	}
	if rel := math.Abs(logTotal-meter) / meter; rel > 0.01 {
		t.Errorf("log energy %.6f J vs meter %.6f J: %.2f%% apart",
			logTotal, meter, rel*100)
	}
}

func TestPaperShapeFig11(t *testing.T) {
	// Figure 11: dual-radio energy per packet drops sharply as the
	// threshold grows, crosses the flat sensor-radio line, and flattens;
	// the sensor line does not move.
	// The paper's full 500-message runs: shorter runs leave a flush
	// remainder that distorts the average at large thresholds.
	thresholds := []units.ByteSize{500, 1000, 2000, 4000}
	var dual []float64
	var sensorLine []float64
	for _, th := range thresholds {
		cfg := DefaultConfig(th)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dual = append(dual, res.DualEnergyPerPacket.Microjoules())
		sensorLine = append(sensorLine, res.SensorEnergyPerPacket.Microjoules())
	}
	// Dual decreases (strictly across this coarse sweep).
	for i := 1; i < len(dual); i++ {
		if dual[i] >= dual[i-1] {
			t.Errorf("dual energy/packet not decreasing: %v", dual)
			break
		}
	}
	// Sensor is flat.
	for i := 1; i < len(sensorLine); i++ {
		if math.Abs(sensorLine[i]-sensorLine[0]) > 1e-6 {
			t.Errorf("sensor energy/packet not flat: %v", sensorLine)
			break
		}
	}
	// Crossover: above the sensor line at 500 B, below at 4000 B.
	if dual[0] <= sensorLine[0] {
		t.Errorf("dual %v µJ below sensor %v µJ at 500 B (should not cross yet)",
			dual[0], sensorLine[0])
	}
	if dual[len(dual)-1] >= sensorLine[0] {
		t.Errorf("dual %v µJ above sensor %v µJ at 4000 B (should have crossed)",
			dual[len(dual)-1], sensorLine[0])
	}
	// The rate of decrease diminishes past the break-even point (the
	// paper's diminishing-returns observation).
	drop1 := dual[0] - dual[1]
	drop3 := dual[2] - dual[3]
	if drop3 >= drop1 {
		t.Errorf("energy drop not diminishing: first %v, last %v", drop1, drop3)
	}
}

func TestPaperShapeFig12DelayTradeoff(t *testing.T) {
	// Figure 12: delay per packet grows with the threshold while energy
	// per packet falls; past a region, more delay buys little energy.
	var prevDelay time.Duration
	var prevEnergy float64 = math.Inf(1)
	for _, th := range []units.ByteSize{500, 1500, 3000} {
		cfg := DefaultConfig(th)
		cfg.Messages = 300
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanDelayPerPacket <= prevDelay {
			t.Errorf("delay %v at threshold %v not above previous %v",
				res.MeanDelayPerPacket, th, prevDelay)
		}
		if res.DualEnergyPerPacket.Microjoules() >= prevEnergy {
			t.Errorf("energy %v at threshold %v not below previous %v",
				res.DualEnergyPerPacket.Microjoules(), th, prevEnergy)
		}
		prevDelay = res.MeanDelayPerPacket
		prevEnergy = res.DualEnergyPerPacket.Microjoules()
	}
}

func TestWakeupsScaleInversely(t *testing.T) {
	// Doubling the threshold halves the number of wake-up cycles.
	small, err := Run(DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	ws, wl := small.Log.WakeupCount(RadioWifi), large.Log.WakeupCount(RadioWifi)
	if wl*2 != ws {
		t.Errorf("wakeups %d (1000 B) vs %d (2000 B): want exact halving", ws, wl)
	}
}

func TestLogOrderedAndPaired(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Messages = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) == 0 {
		t.Fatal("empty log")
	}
	var prev Entry
	starts := make(map[[2]int]int) // (node, radio) -> outstanding tx/rx starts
	for i, e := range res.Log {
		if i > 0 && e.At < prev.At {
			t.Fatalf("log out of order at %d: %v after %v", i, e.At, prev.At)
		}
		prev = e
		k := [2]int{e.Node, int(e.Radio)}
		switch e.Event {
		case radio.EventTxStart, radio.EventRxStart:
			starts[k]++
		case radio.EventTxEnd, radio.EventRxEnd:
			starts[k]--
			if starts[k] < 0 {
				t.Fatalf("unpaired end event at %d for %v", i, k)
			}
		}
	}
}

func TestRadioKindString(t *testing.T) {
	if RadioSensor.String() != "sensor" || RadioWifi.String() != "wifi" {
		t.Error("radio kind names wrong")
	}
	if RadioKind(8).String() != "RadioKind(8)" {
		t.Error("unknown radio kind name wrong")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[radio.EventKind]string{
		radio.EventWakeupStart: "wakeup-start",
		radio.EventPowerOn:     "power-on",
		radio.EventPowerOff:    "power-off",
		radio.EventTxStart:     "tx-start",
		radio.EventTxEnd:       "tx-end",
		radio.EventRxStart:     "rx-start",
		radio.EventRxEnd:       "rx-end",
		radio.EventKind(99):    "EventKind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
