// Package cli carries the shared command-line conventions of the
// bcp-* binaries: help requests exit 0, usage-class failures (flag
// parse errors, unknown enum names, bad flag values) print a usage
// hint and exit with status 2, and runtime failures exit with
// status 1. Every command funnels its top-level error through Exit so
// the exit-code contract is identical across the suite.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// UsageError marks a failure as a command-line usage problem, mapped
// to exit status 2 by Exit.
type UsageError struct {
	// Err is the underlying failure.
	Err error
	// printed records that the flag package already reported the error
	// and usage text (Parse with a ContinueOnError FlagSet does this),
	// so Exit must not repeat it.
	printed bool
}

// Error reports the underlying failure's text.
func (e *UsageError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a usage-class error, as returned for bad flag values
// ("unknown model", "unknown format", ...).
func Usagef(format string, a ...any) error {
	return &UsageError{Err: fmt.Errorf(format, a...)}
}

// Usage wraps an existing error as usage-class, preserving its chain
// for errors.Is/As.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &UsageError{Err: err}
}

// Parse parses args with fs, which must use flag.ContinueOnError.
// Help requests pass through as flag.ErrHelp (the flag package already
// printed the usage); parse failures come back as usage-class errors
// that the flag package already reported, so Exit maps them straight
// to status 2 without reprinting.
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &UsageError{Err: err, printed: true}
	}
	return nil
}

// exit is swapped out by the tests.
var exit = os.Exit

// Exit terminates the command according to the shared convention:
// nil returns (status 0 at main's end), flag.ErrHelp exits 0, usage
// errors print "run '<name> -h' for usage" and exit 2, anything else
// prints the error and exits 1.
func Exit(name string, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, flag.ErrHelp) {
		exit(0)
		return
	}
	var u *UsageError
	if errors.As(err, &u) {
		if !u.printed {
			fmt.Fprintf(os.Stderr, "%s: %s\nrun '%s -h' for usage\n", name, u.Err, name)
		}
		exit(2)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", name, err)
	exit(1)
}
