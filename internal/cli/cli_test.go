package cli

import (
	"errors"
	"flag"
	"io"
	"testing"
)

// withExit captures the status Exit would have used.
func withExit(t *testing.T, fn func()) int {
	t.Helper()
	status := -1
	old := exit
	exit = func(code int) { status = code }
	defer func() { exit = old }()
	fn()
	return status
}

func TestExitCodes(t *testing.T) {
	if got := withExit(t, func() { Exit("x", nil) }); got != -1 {
		t.Errorf("nil error exited %d", got)
	}
	if got := withExit(t, func() { Exit("x", flag.ErrHelp) }); got != 0 {
		t.Errorf("help exited %d, want 0", got)
	}
	if got := withExit(t, func() { Exit("x", Usagef("bad value %q", "v")) }); got != 2 {
		t.Errorf("usage error exited %d, want 2", got)
	}
	if got := withExit(t, func() { Exit("x", errors.New("boom")) }); got != 1 {
		t.Errorf("runtime error exited %d, want 1", got)
	}
	wrapped := Usage(errors.New("inner"))
	if got := withExit(t, func() { Exit("x", wrapped) }); got != 2 {
		t.Errorf("wrapped usage error exited %d, want 2", got)
	}
}

func TestParseClassifiesErrors(t *testing.T) {
	newFS := func() *flag.FlagSet {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		fs.Int("n", 0, "")
		return fs
	}
	if err := Parse(newFS(), []string{"-n", "3"}); err != nil {
		t.Errorf("good args: %v", err)
	}
	err := Parse(newFS(), []string{"-n", "notanint"})
	var u *UsageError
	if !errors.As(err, &u) {
		t.Errorf("parse error %v is not usage-class", err)
	} else if !u.printed {
		t.Error("parse error not marked as already printed")
	}
	if err := Parse(newFS(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestUsageNil(t *testing.T) {
	if Usage(nil) != nil {
		t.Error("Usage(nil) != nil")
	}
}
