package radio

import (
	"testing"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
)

// BenchmarkBroadcastDomain measures one transmission delivered to a full
// 36-node broadcast domain (the multi-hop case's single collision
// domain).
func BenchmarkBroadcastDomain(b *testing.B) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Grid(36, 200)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChannel(sched, Config{
		Name:       "wifi",
		Profile:    energy.Cabletron(),
		Range:      300, // everyone hears everyone
		HeaderSize: 58,
	}, layout)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]*Transceiver, 36)
	for i := range xs {
		if xs[i], err = ch.Attach(NodeID(i), OverhearFull, true); err != nil {
			b.Fatal(err)
		}
	}
	f := Frame{Kind: KindData, Dst: 1, Size: 1082}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := xs[0].Transmit(f); err != nil {
			b.Fatal(err)
		}
		sched.Run()
	}
}

// BenchmarkMeterTransition measures the energy-accounting hot path.
func BenchmarkMeterTransition(b *testing.B) {
	sched := sim.NewScheduler(1)
	m := energy.NewMeter(energy.Micaz(), sched.Now)
	states := []energy.State{energy.Idle, energy.Rx, energy.Tx}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Transition(states[i%len(states)])
	}
}
