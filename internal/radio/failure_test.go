package radio

import (
	"errors"
	"testing"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/units"
)

func TestFailedTransceiverIsSilent(t *testing.T) {
	sched, ch, xs := testNet(t, 2, nil)
	var got []Frame
	xs[1].SetOnReceive(func(f Frame) { got = append(got, f) })

	xs[1].SetFailed(true)
	if xs[1].On() {
		t.Error("failed transceiver reports On")
	}
	if !xs[1].Failed() {
		t.Error("Failed() false after SetFailed(true)")
	}
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(got) != 0 {
		t.Fatalf("failed node received %d frames", len(got))
	}
	if err := xs[1].Transmit(Frame{Kind: KindData, Dst: 0, Size: 43}); !errors.Is(err, ErrRadioOff) {
		t.Errorf("Transmit on failed node: %v, want ErrRadioOff", err)
	}

	// Recovery restores the pre-failure (always-on) state.
	xs[1].SetFailed(false)
	if !xs[1].On() {
		t.Error("recovered transceiver not On")
	}
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(got) != 1 {
		t.Fatalf("recovered node received %d frames, want 1", len(got))
	}
	if st := ch.Stats(); st.Deliveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFailureAbortsReceptionAndBlocksPowerOn(t *testing.T) {
	sched, _, xs := testNet(t, 2, nil)
	var got int
	xs[1].SetOnReceive(func(Frame) { got++ })
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 430}); err != nil {
		t.Fatal(err)
	}
	// Crash mid-reception (the frame is still on the air): the arrival
	// must abort, not deliver.
	xs[1].SetFailed(true)
	sched.Run()
	if got != 0 {
		t.Error("aborted reception still delivered")
	}
	if xs[1].Meter().State() != energy.Off {
		t.Errorf("failed node meter in %v, want Off", xs[1].Meter().State())
	}

	// PowerOn cannot take effect while failed, but the request survives
	// the outage: the recovery reboot starts the wake-up, so protocol
	// logic parked on onWake is released rather than deadlocked.
	if err := xs[1].PowerOff(); err != nil {
		t.Fatal(err)
	}
	xs[1].PowerOn()
	if xs[1].On() || xs[1].Waking() {
		t.Error("PowerOn took effect on a failed node")
	}
	xs[1].SetFailed(false)
	sched.Run()
	if !xs[1].On() {
		t.Error("wake requested during the outage did not resume on recovery")
	}
}

// A crash mid-wake must not strand whoever waits on the wake callback:
// the recovery reboot restarts the interrupted wake-up.
func TestFailureDuringWakeResumesOnRecovery(t *testing.T) {
	sched, _, xs := testNet(t, 2, func(c *Config) {
		c.WakeupLatency = 50 * time.Millisecond
	})
	if err := xs[1].PowerOff(); err != nil {
		t.Fatal(err)
	}
	woke := 0
	xs[1].SetOnWake(func() { woke++ })
	xs[1].PowerOn()
	if !xs[1].Waking() {
		t.Fatal("not waking after PowerOn")
	}
	xs[1].SetFailed(true)
	sched.Run()
	if woke != 0 || xs[1].On() {
		t.Fatal("crashed node completed its wake-up")
	}
	xs[1].SetFailed(false)
	sched.Run()
	if woke != 1 {
		t.Errorf("onWake fired %d times after recovery, want 1", woke)
	}
	if !xs[1].On() {
		t.Error("radio not up after the recovery reboot")
	}
	// An explicit shutdown cancels the pending reboot wake.
	xs2 := xs[0]
	if err := xs2.PowerOff(); err != nil {
		t.Fatal(err)
	}
	xs2.PowerOn()
	xs2.SetFailed(true)
	if err := xs2.PowerOff(); err != nil {
		t.Fatal(err)
	}
	xs2.SetFailed(false)
	sched.Run()
	if xs2.On() || xs2.Waking() {
		t.Error("PowerOff during outage did not cancel the reboot wake")
	}
}

func TestDistanceDependentLinkLoss(t *testing.T) {
	// Loss 1 beyond 25 m: the 30 m line neighbors lose every frame while
	// a 0-loss floor would deliver.
	sched, ch, xs := testNet(t, 2, func(c *Config) {
		c.LossAt = func(d units.Meters) float64 {
			if d > 25 {
				return 1
			}
			return 0
		}
	})
	var got int
	xs[1].SetOnReceive(func(Frame) { got++ })
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 0 {
		t.Error("fully lossy link delivered")
	}
	if st := ch.Stats(); st.NoiseLosses != 1 {
		t.Errorf("stats = %+v, want 1 noise loss", st)
	}

	// Same geometry with the cliff beyond the link distance: delivers.
	sched2, ch2, xs2 := testNet(t, 2, func(c *Config) {
		c.LossAt = func(d units.Meters) float64 {
			if d > 35 {
				return 1
			}
			return 0
		}
	})
	got2 := 0
	xs2[1].SetOnReceive(func(Frame) { got2++ })
	if err := xs2[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched2.Run()
	if got2 != 1 {
		t.Errorf("clean short link delivered %d frames, want 1", got2)
	}
	if st := ch2.Stats(); st.NoiseLosses != 0 {
		t.Errorf("stats = %+v, want 0 noise losses", st)
	}
}

func TestPairLossClamping(t *testing.T) {
	// Out-of-range model outputs clamp to [0, 1] instead of corrupting
	// the probability draw.
	_, ch, _ := testNet(t, 3, func(c *Config) {
		c.LossAt = func(d units.Meters) float64 {
			if d < 35 {
				return -2 // clamps to 0
			}
			return 7 // clamps to 1
		}
	})
	if p := ch.lossProb(0, 1); p != 0 {
		t.Errorf("lossProb(0,1) = %v, want 0 (clamped)", p)
	}
	if p := ch.lossProb(0, 2); p != 1 {
		t.Errorf("lossProb(0,2) = %v, want 1 (clamped)", p)
	}
}
